(* The reproduction harness: regenerates every table and figure of the paper
   over the synthetic population, then runs Bechamel micro-benchmarks of the
   core machinery (hashing, codecs, topology analysis, one build+validate per
   client profile, and the backtracking ablation).

   Usage:
     main.exe                 run everything at the default 5% scale
     main.exe --scale 0.5     choose the population scale (1.0 = Top-1M)
     main.exe --only table9   one experiment (tableN / figureN / section5.2 /
                              dataset)
     main.exe --jobs 4        Domain-pool size for the measurement pipeline
                              (-j 4; default: all cores; 1 = sequential)
     main.exe --no-micro      skip the Bechamel micro-benchmarks
     main.exe --micro-only    only the Bechamel micro-benchmarks *)

open Chaoschain_measurement
open Chaoschain_core

(* Aliased before the Bechamel opens, which shadow [Monotonic_clock]. *)
module Mclock = Monotonic_clock

open Bechamel
open Bechamel.Toolkit

(* Wall-clock seconds on the monotonic clock; Sys.time would report CPU time,
   which overstates elapsed time as soon as the pipeline runs several
   Domains. *)
let wall_s () = Int64.to_float (Mclock.now ()) /. 1e9

let parse_args () =
  let scale = ref 0.05 and only = ref None and micro = ref true and tables = ref true in
  let jobs = ref (Pipeline.default_jobs ()) in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        go rest
    | "--only" :: v :: rest ->
        only := Some v;
        go rest
    | ("--jobs" | "-j") :: v :: rest ->
        jobs := int_of_string v;
        if !jobs < 1 then failwith "--jobs must be >= 1";
        go rest
    | "--no-micro" :: rest ->
        micro := false;
        go rest
    | "--micro-only" :: rest ->
        tables := false;
        go rest
    | arg :: _ -> failwith ("unknown argument " ^ arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  (!scale, !only, !micro, !tables, !jobs)

let run_experiments ~scale ~only ~jobs =
  Printf.printf "== Synthetic population (scale %.3f => ~%d domains, %d job%s) ==\n%!"
    scale
    (int_of_float (Float.round (float_of_int Calibration.full_population *. scale)))
    jobs
    (if jobs = 1 then "" else "s");
  let t0 = wall_s () in
  let pop = Population.generate ~scale () in
  Printf.printf "generated in %.1fs; analyzing...\n%!" (wall_s () -. t0);
  let analysis = Experiments.analyze ~jobs pop in
  Printf.printf "analysis complete at %.1fs\n\n%!" (wall_s () -. t0);
  let results = Experiments.run_all analysis in
  let selected =
    match only with
    | None -> results
    | Some id -> List.filter (fun r -> r.Experiments.id = id) results
  in
  List.iter
    (fun r ->
      print_endline r.Experiments.body;
      print_newline ())
    selected

let micro_tests () =
  let fx_order = Capability.fixture Capability.Order_reorganization in
  let fx_aia = Capability.fixture Capability.Aia_completion in
  let chain_bytes = Chaoschain_tlssim.Certmsg.encode_tls12 fx_order.Capability.served in
  let sample_der = Chaoschain_x509.Cert.to_der (List.hd fx_order.Capability.served) in
  let pem_text = Chaoschain_deployment.Pem.encode_certs fx_order.Capability.served in
  let topo_chain = fx_order.Capability.served in
  let mini_pop = Population.generate ~scale:0.001 () in
  let env = Population.env mini_pop in
  let moex =
    Array.to_list mini_pop.Population.domains
    |> List.find (fun r -> r.Population.scenario = Calibration.Fig_moex)
  in
  let client_bench (client : Clients.t) fx =
    Test.make
      ~name:(Printf.sprintf "build+validate/%s" client.Clients.name)
      (Staged.stage (fun () -> ignore (Capability.run_client client fx)))
  in
  let one_client id =
    Difftest.run_case_clients env [ Clients.by_id id ] ~domain:moex.Population.domain
      moex.Population.chain
  in
  [ Test.make ~name:"sha256/1KiB"
      (Staged.stage
         (let buf = String.make 1024 'x' in
          fun () -> ignore (Chaoschain_crypto.Sha256.digest buf)));
    Test.make ~name:"der/decode-certificate"
      (Staged.stage (fun () -> ignore (Chaoschain_x509.Cert.of_der sample_der)));
    Test.make ~name:"pem/decode-chain"
      (Staged.stage (fun () -> ignore (Chaoschain_deployment.Pem.decode_certs pem_text)));
    Test.make ~name:"tls/certificate-message-decode"
      (Staged.stage (fun () -> ignore (Chaoschain_tlssim.Certmsg.decode_tls12 chain_bytes)));
    Test.make ~name:"topology/build+paths"
      (Staged.stage (fun () ->
           let t = Topology.build topo_chain in
           ignore (Topology.paths t)));
    client_bench (Clients.by_id Clients.Openssl) fx_order;
    client_bench (Clients.by_id Clients.Mbedtls) fx_order;
    client_bench (Clients.by_id Clients.Cryptoapi) fx_aia;
    client_bench (Clients.by_id Clients.Chrome) fx_order;
    client_bench Clients.reference fx_order;
    Test.make ~name:"compliance/full-report"
      (Staged.stage
         (let r = mini_pop.Population.domains.(0) in
          fun () -> ignore (Population.compliance_report mini_pop r)));
    Test.make ~name:"ablation/moex-no-backtracking(OpenSSL)"
      (Staged.stage (fun () -> ignore (one_client Clients.Openssl)));
    Test.make ~name:"ablation/moex-backtracking(CryptoAPI)"
      (Staged.stage (fun () -> ignore (one_client Clients.Cryptoapi))) ]

let run_micro () =
  Printf.printf "== Bechamel micro-benchmarks ==\n%!";
  Printf.printf "%-45s %15s %10s\n" "benchmark" "ns/run" "r^2";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let instances = [ Instance.monotonic_clock ] in
  let analyze raw =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = analyze raw in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> Printf.sprintf "%.1f" e
            | _ -> "n/a"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          Printf.printf "%-45s %15s %10s\n%!" name estimate r2)
        results)
    (micro_tests ())

let () =
  let scale, only, micro, tables, jobs = parse_args () in
  if tables then run_experiments ~scale ~only ~jobs;
  if micro then run_micro ()
