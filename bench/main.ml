(* The reproduction harness: regenerates every table and figure of the paper
   over the synthetic population, then runs Bechamel micro-benchmarks of the
   core machinery (hashing, codecs, topology analysis, one build+validate per
   client profile, and the backtracking ablation).

   Usage: see [usage] below (also printed by --help). *)

open Chaoschain_measurement
open Chaoschain_core
module Json = Chaoschain_service.Json

(* Aliased before the Bechamel opens, which shadow [Monotonic_clock]. *)
module Mclock = Monotonic_clock

open Bechamel
open Bechamel.Toolkit

(* Wall-clock seconds on the monotonic clock; Sys.time would report CPU time,
   which overstates elapsed time as soon as the pipeline runs several
   Domains. *)
let wall_s () = Int64.to_float (Mclock.now ()) /. 1e9

(* --- argument parsing --- *)

let usage =
  "usage: main.exe [options]\n\
   \n\
   Regenerate the paper's tables and figures over the synthetic population,\n\
   then run the Bechamel micro-benchmarks.\n\
   \n\
   options:\n\
  \  --scale F      population scale in (0, 1]; 1.0 = Tranco Top-1M\n\
  \                 (default 0.05)\n\
  \  --only ID      run a single experiment (tableN / figureN / section5.2 /\n\
  \                 section6 / dataset)\n\
  \  --jobs N, -j N Domain-pool size for the measurement pipeline\n\
  \                 (default: all cores; 1 = purely sequential; the output\n\
  \                 is identical for every value)\n\
  \  --json FILE    also write machine-readable wall-clock timings per\n\
  \                 experiment and micro-benchmark estimates to FILE\n\
  \  --filter GLOB  run only workloads whose name matches GLOB (* and ?\n\
  \                 wildcards, e.g. 'store/*'). Heavy workloads — the\n\
  \                 65536/1M-leaf Merkle trees and the store/audit(100k)\n\
  \                 wall-clock run — are skipped by default and run only\n\
  \                 when a --filter explicitly matches them\n\
  \  --no-micro     skip the Bechamel micro-benchmarks\n\
  \  --micro-only   only the Bechamel micro-benchmarks\n\
  \  --smoke        correctness cross-checks of the fast paths (digest and\n\
  \                 decode must match the reference paths), then a tiny-scale\n\
  \                 micro-bench pass; exits non-zero on any mismatch\n\
  \  --help, -h     print this help\n"

type config = {
  scale : float;
  only : string option;
  micro : bool;
  tables : bool;
  smoke : bool;
  jobs : int;
  json : string option;
  filter : string option;
}

(* Workload selection: shell-style glob with [*] (any run) and [?] (any one
   character); everything else matches literally. *)
let glob_match pat name =
  let np = String.length pat and nn = String.length name in
  let rec go i j =
    if i = np then j = nn
    else
      match pat.[i] with
      | '*' -> go (i + 1) j || (j < nn && go i (j + 1))
      | '?' -> j < nn && go (i + 1) (j + 1)
      | c -> j < nn && name.[j] = c && go (i + 1) (j + 1)
  in
  go 0 0

let die msg =
  Printf.eprintf "main.exe: %s\n\n%s" msg usage;
  exit 2

let parse_args () =
  let cfg =
    ref
      {
        scale = 0.05;
        only = None;
        micro = true;
        tables = true;
        smoke = false;
        jobs = Pipeline.default_jobs ();
        json = None;
        filter = None;
      }
  in
  let float_value flag v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> die (Printf.sprintf "%s expects a number, got %S" flag v)
  in
  let int_value flag v =
    match int_of_string_opt v with
    | Some i -> i
    | None -> die (Printf.sprintf "%s expects an integer, got %S" flag v)
  in
  let rec go = function
    | [] -> ()
    | ("--help" | "-h") :: _ ->
        print_string usage;
        exit 0
    | "--scale" :: v :: rest ->
        let scale = float_value "--scale" v in
        if not (scale > 0.0 && scale <= 1.0) then
          die (Printf.sprintf "--scale must be in (0, 1], got %g" scale);
        cfg := { !cfg with scale };
        go rest
    | "--only" :: v :: rest ->
        cfg := { !cfg with only = Some v };
        go rest
    | ("--jobs" | "-j") :: v :: rest ->
        let jobs = int_value "--jobs" v in
        if jobs < 1 then die "--jobs must be >= 1";
        cfg := { !cfg with jobs };
        go rest
    | "--json" :: v :: rest ->
        cfg := { !cfg with json = Some v };
        go rest
    | "--filter" :: v :: rest ->
        cfg := { !cfg with filter = Some v };
        go rest
    | "--no-micro" :: rest ->
        cfg := { !cfg with micro = false };
        go rest
    | "--micro-only" :: rest ->
        cfg := { !cfg with tables = false };
        go rest
    | "--smoke" :: rest ->
        cfg := { !cfg with smoke = true; tables = false };
        go rest
    | [ flag ] when flag = "--scale" || flag = "--only" || flag = "--jobs"
                    || flag = "-j" || flag = "--json" || flag = "--filter" ->
        die (flag ^ " expects a value")
    | arg :: _ -> die ("unknown argument " ^ arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  !cfg

(* --- experiments, with per-experiment wall timing --- *)

type exp_timing = { exp_id : string; seconds : float }

type run_report = {
  generate_s : float;
  analyze_s : float;
  timings : exp_timing list;  (* per rendered experiment, in paper order *)
}

let run_experiments ~scale ~only ~jobs =
  Printf.printf "== Synthetic population (scale %.3f => ~%d domains, %d job%s) ==\n%!"
    scale
    (int_of_float (Float.round (float_of_int Calibration.full_population *. scale)))
    jobs
    (if jobs = 1 then "" else "s");
  let t0 = wall_s () in
  let pop = Population.generate ~scale () in
  let generate_s = wall_s () -. t0 in
  Printf.printf "generated in %.1fs; analyzing...\n%!" generate_s;
  let t1 = wall_s () in
  let analysis = Experiments.analyze ~jobs pop in
  let analyze_s = wall_s () -. t1 in
  Printf.printf "analysis complete at %.1fs\n\n%!" (wall_s () -. t0);
  (* Mirrors [Experiments.run_all], with a wall clock around each entry so
     --json can record a per-experiment perf trajectory. *)
  let suite : (unit -> Experiments.result) list =
    [ (fun () -> Experiments.dataset_overview analysis);
      (fun () -> Experiments.table1 ());
      (fun () -> Experiments.table2 ());
      (fun () -> Experiments.table3 analysis);
      (fun () -> Experiments.table4 ());
      (fun () -> Experiments.table5 analysis);
      (fun () -> Experiments.table6 analysis);
      (fun () -> Experiments.table7 analysis);
      (fun () -> Experiments.table8 analysis);
      (fun () -> Experiments.table9 ());
      (fun () -> Experiments.table10 analysis);
      (fun () -> Experiments.table11 analysis);
      (fun () -> Experiments.figure1 analysis);
      (fun () -> Experiments.figure2 analysis);
      (fun () -> Experiments.figure3 analysis);
      (fun () -> Experiments.figure4 analysis);
      (fun () -> Experiments.figure5 analysis);
      (fun () -> Experiments.section5_2 analysis);
      (fun () -> Experiments.section6 analysis) ]
  in
  let timed =
    List.map
      (fun f ->
        let t = wall_s () in
        let r = f () in
        (r, wall_s () -. t))
      suite
  in
  let selected =
    match only with
    | None -> timed
    | Some id -> List.filter (fun (r, _) -> r.Experiments.id = id) timed
  in
  if selected = [] then die "unknown experiment id";
  List.iter
    (fun (r, _) ->
      print_endline (Chaoschain_report.Report.to_text r);
      print_newline ())
    selected;
  {
    generate_s;
    analyze_s;
    timings =
      List.map
        (fun ((r : Experiments.result), s) ->
          { exp_id = r.Experiments.id; seconds = s })
        selected;
  }

(* --- micro-benchmarks --- *)

(* Workloads are (name, thunk) pairs so the harness can warm each one up
   directly before handing it to Bechamel. *)
let micro_workloads () =
  let fx_order = Capability.fixture Capability.Order_reorganization in
  let fx_aia = Capability.fixture Capability.Aia_completion in
  let module Certmsg = Chaoschain_tlssim.Certmsg in
  let certmsg_of fmt = Certmsg.of_certs fmt fx_order.Capability.served in
  let msg12 = certmsg_of Certmsg.Tls12 and msg13 = certmsg_of Certmsg.Tls13 in
  let wire12 = Certmsg.encode msg12 and wire13 = Certmsg.encode msg13 in
  let sample_der = Chaoschain_x509.Cert.to_der (List.hd fx_order.Capability.served) in
  let derfuzz_corpus =
    Array.of_list
      (List.map Chaoschain_x509.Cert.to_der fx_order.Capability.served)
  in
  let pem_text = Chaoschain_deployment.Pem.encode_certs fx_order.Capability.served in
  let topo_chain = fx_order.Capability.served in
  let mini_pop = Population.generate ~scale:0.001 () in
  let env = Population.env mini_pop in
  let moex =
    Array.to_list mini_pop.Population.domains
    |> List.find (fun r -> r.Population.scenario = Calibration.Fig_moex)
  in
  let client_bench (client : Clients.t) fx =
    ( Printf.sprintf "build+validate/%s" client.Clients.name,
      fun () -> ignore (Capability.run_client client fx) )
  in
  let one_client id =
    Difftest.run_case_clients env [ Clients.by_id id ] ~domain:moex.Population.domain
      moex.Population.chain
  in
  let sha_buf = String.make 1024 'x' in
  let compliance_rec = mini_pop.Population.domains.(0) in
  (* chainstore codec: one ~200 B observation-sized payload per run. The
     append side frames + CRCs into a reused buffer; the replay side decodes
     (and CRC-checks) frames off a prebuilt segment, cycling through it. *)
  let module Frame = Chaoschain_store.Frame in
  let module Merkle = Chaoschain_store.Merkle in
  let store_payload = String.init 200 (fun i -> Char.chr (i * 7 land 0xff)) in
  let append_buf = Buffer.create (1 lsl 16) in
  let replay_seg =
    let b = Buffer.create (256 * (200 + Frame.header_size)) in
    for _ = 1 to 256 do
      Frame.add b ~kind:2 store_payload
    done;
    Buffer.contents b
  in
  let replay_cursor = Frame.Cursor.create replay_seg in
  let merkle_leaves =
    Array.init 1024 (fun i -> Merkle.leaf_hash (Printf.sprintf "leaf %d" i))
  in
  let merkle_tree = Merkle.Tree.of_leaf_hashes merkle_leaves in
  let merkle_root = Merkle.Tree.root merkle_tree in
  let merkle_idx = ref 0 in
  (* netd poller: one zero-timeout wait over 64 registered descriptors with
     exactly one ready — the steady-state readiness probe the event loop
     issues every iteration, on each backend the platform offers. *)
  let module Poller = Chaoschain_net.Poller in
  let poll_wait backend =
    let p = Poller.create backend in
    let pairs =
      Array.init 64 (fun _ -> Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
    in
    Array.iter (fun (r, _) -> Poller.set p r ~read:true ~write:false) pairs;
    let _, w0 = pairs.(0) in
    ignore (Unix.write_substring w0 "x" 0 1 : int);
    ( Printf.sprintf "net/poll-wait(%s,64fd)" (Poller.backend_name backend),
      fun () ->
        match Poller.wait p ~timeout:0. with
        | [ _ ] -> ()
        | _ -> failwith "poll-wait bench: expected exactly one ready fd" )
  in
  let poll_workloads =
    List.filter_map
      (fun b -> if Poller.available b then Some (poll_wait b) else None)
      [ Poller.Select; Poller.Epoll ]
  in
  [ ("sha256/1KiB", fun () -> ignore (Chaoschain_crypto.Sha256.digest sha_buf));
    ( "der/decode-certificate",
      fun () -> ignore (Chaoschain_x509.Cert.of_der sample_der) );
    ( "der2/decode-certificate",
      (* The independent table-driven decoder over the same bytes; the gap
         to plain TLV decoding through lib/der is the X.509 typing cost. *)
      fun () -> ignore (Chaoschain_der2.Der2.decode sample_der) );
    ( "derfuzz/campaign(32)",
      (* One bounded differential campaign: mutate, decode through both
         readers, classify — the per-mutant cost of `chaoscheck derfuzz`. *)
      fun () ->
        let r =
          Chaoschain_fuzz.Derfuzz.run ~seed:4242 ~iters:32 derfuzz_corpus
        in
        if Chaoschain_fuzz.Derfuzz.divergence_count r <> 0 then
          failwith "derfuzz bench found a divergence" );
    ( "pem/decode-chain",
      fun () -> ignore (Chaoschain_deployment.Pem.decode_certs pem_text) );
    ( "pem/decode-chain(no-intern)",
      fun () ->
        Chaoschain_pki.Intern.set_enabled false;
        ignore (Chaoschain_deployment.Pem.decode_certs pem_text);
        Chaoschain_pki.Intern.set_enabled true );
    ( "certmsg/encode-1.2",
      fun () -> ignore (Chaoschain_tlssim.Certmsg.encode msg12) );
    ( "certmsg/encode-1.3",
      fun () -> ignore (Chaoschain_tlssim.Certmsg.encode msg13) );
    ( "certmsg/decode-1.2",
      fun () ->
        ignore (Chaoschain_tlssim.Certmsg.decode Chaoschain_tlssim.Certmsg.Tls12 wire12) );
    ( "certmsg/decode-1.3",
      fun () ->
        ignore (Chaoschain_tlssim.Certmsg.decode Chaoschain_tlssim.Certmsg.Tls13 wire13) );
    ( "topology/build+paths",
      fun () ->
        let t = Topology.build topo_chain in
        ignore (Topology.paths t) );
    client_bench (Clients.by_id Clients.Openssl) fx_order;
    client_bench (Clients.by_id Clients.Mbedtls) fx_order;
    client_bench (Clients.by_id Clients.Cryptoapi) fx_aia;
    client_bench (Clients.by_id Clients.Chrome) fx_order;
    client_bench Clients.reference fx_order;
    ( "compliance/full-report",
      fun () -> ignore (Population.compliance_report mini_pop compliance_rec) );
    ( "ablation/moex-no-backtracking(OpenSSL)",
      fun () -> ignore (one_client Clients.Openssl) );
    ( "ablation/moex-backtracking(CryptoAPI)",
      fun () -> ignore (one_client Clients.Cryptoapi) );
    ( "store/append-record",
      fun () ->
        if Buffer.length append_buf > 1 lsl 20 then Buffer.clear append_buf;
        Frame.add append_buf ~kind:2 store_payload );
    ( "store/replay-record",
      (* The strict-reader hot path: header decode + CRC verify of one
         frame through the reusable cursor — no payload copy, no result
         record, zero allocation per record. *)
      fun () ->
        match Frame.Cursor.next replay_cursor with
        | Frame.Cursor.Item -> ()
        | Frame.Cursor.Done -> Frame.Cursor.reset replay_cursor replay_seg
        | _ -> failwith "replay bench segment damaged" );
    ( "store/merkle-proof(1024)",
      (* O(log n) reads off the prebuilt layers — what `chaoscheck proof`
         does against the persisted tree.mrk. *)
      fun () ->
        let i = !merkle_idx in
        merkle_idx := (i + 41) land 1023;
        let path = Merkle.Tree.proof merkle_tree i in
        if
          not
            (Merkle.verify ~root:merkle_root ~index:i ~count:1024
               merkle_leaves.(i) path)
        then failwith "merkle bench proof rejected" ) ]
  @ poll_workloads

(* Heavy micro-workloads: skipped unless --filter explicitly matches them
   (the setup builds 65k/1M-leaf trees — O(n) hashing). The proof cost
   across 1024/65536/1M is the O(log n) scaling probe. *)
let heavy_workloads =
  let module Merkle = Chaoschain_store.Merkle in
  List.map
    (fun (name, n) ->
      ( name,
        fun () ->
          let leaves =
            Array.init n (fun i -> Merkle.leaf_hash (Printf.sprintf "leaf %d" i))
          in
          let tree = Merkle.Tree.of_leaf_hashes leaves in
          let root = Merkle.Tree.root tree in
          let idx = ref 0 in
          fun () ->
            let i = !idx in
            idx := (i + 40961) mod n;
            let path = Merkle.Tree.proof tree i in
            if
              not
                (Merkle.verify ~root ~index:i ~count:n (Merkle.Tree.leaf tree i)
                   path)
            then failwith "merkle bench proof rejected" ))
    [ ("store/merkle-proof(65536)", 65536);
      ("store/merkle-proof(1048576)", 1 lsl 20) ]

(* Wall-clock workloads: one timed end-to-end run each, reported in
   seconds rather than Bechamel ns/run. Skipped unless --filter matches. *)
type wall_result = { w_name : string; w_seconds : float; w_note : string }

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let wall_workloads =
  let module Store = Chaoschain_store.Store in
  [ ( "store/audit(100k)",
      fun () ->
        let n = 100_000 in
        let dir = Filename.temp_dir "chaosbench-store" "" in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let rng = Chaoschain_crypto.Prng.create 4242L in
            let blob len =
              String.init len (fun _ ->
                  Char.chr (Chaoschain_crypto.Prng.int rng 256))
            in
            let w = Store.create dir in
            for _ = 1 to 64 do
              ignore (Store.add_cert w (blob 600) : string)
            done;
            for _ = 1 to n do
              Store.add_obs w (blob 32)
            done;
            Store.add_env w (blob 128);
            ignore (Store.close w ~scale:1.0 : string);
            let t0 = wall_s () in
            let r = Store.audit dir in
            let dt = wall_s () -. t0 in
            if not r.Store.a_ok then failwith "audit bench: store not clean";
            if r.Store.a_repaired then failwith "audit bench: unexpected repair";
            {
              w_name = "store/audit(100k)";
              w_seconds = dt;
              w_note = Printf.sprintf "%d records, repair-free" n;
            }) ) ]

let run_wall ~filter =
  let selected =
    match filter with
    | None -> []
    | Some g -> List.filter (fun (name, _) -> glob_match g name) wall_workloads
  in
  if selected = [] then []
  else begin
    Printf.printf "== wall-clock workloads ==\n%!";
    List.map
      (fun (name, run) ->
        Printf.printf "%-45s ...\r%!" name;
        let r = run () in
        Printf.printf "%-45s %12.3f s   (%s)\n%!" name r.w_seconds r.w_note;
        r)
      selected
  end

type micro_result = {
  bench : string;
  ns_per_run : float option;
  r2 : float option;
  minor_words : float option;  (* minor-heap words allocated per run *)
}

(* Warmup + a min-runs floor: each workload runs for [warmup_s] before
   measurement (fills caches, triggers any lazy initialisation, lets the
   allocator reach steady state), and the sampling quota is high enough that
   fast workloads get thousands of measured runs; r^2 of the OLS fit is
   reported so a noisy estimate is visible in the output. *)
let run_micro ?(quota_s = 1.0) ?(warmup_s = 0.05) ?filter () =
  let matches name =
    match filter with None -> true | Some g -> glob_match g name
  in
  let workloads =
    List.filter (fun (name, _) -> matches name) (micro_workloads ())
    @ (match filter with
      | None -> []  (* heavy trees are built only on explicit request *)
      | Some _ ->
          List.filter_map
            (fun (name, setup) ->
              if matches name then Some (name, setup ()) else None)
            heavy_workloads)
  in
  if workloads = [] then begin
    Printf.printf "== Bechamel micro-benchmarks ==\n(no workload matches the filter)\n%!";
    []
  end
  else begin
  Printf.printf "== Bechamel micro-benchmarks ==\n%!";
  Printf.printf "%-45s %15s %10s %12s\n" "benchmark" "ns/run" "r^2" "mnr-w/run";
  let cfg =
    Benchmark.cfg ~limit:5000 ~quota:(Time.second quota_s) ~stabilize:true ()
  in
  (* Bechamel's minor-allocated instance reads [Gc.quick_stat], which OCaml 5
     only refreshes at collection boundaries — it reports 0 for workloads that
     fit in the minor heap.  Allocation is measured directly instead:
     [Gc.minor_words] around a counted loop. *)
  let instances = [ Instance.monotonic_clock ] in
  let estimate_of instance raw =
    let results =
      Analyze.all
        (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
        instance raw
    in
    let found = ref None in
    Hashtbl.iter (fun _ ols -> found := Some ols) results;
    match !found with
    | None -> (None, None)
    | Some ols ->
        ( (match Analyze.OLS.estimates ols with Some (e :: _) -> Some e | _ -> None),
          Analyze.OLS.r_square ols )
  in
  let collected = ref [] in
  List.iter
    (fun (name, fn) ->
      let t0 = wall_s () in
      while wall_s () -. t0 < warmup_s do
        fn ()
      done;
      let mw =
        let runs = 64 in
        let m0 = Gc.minor_words () in
        for _ = 1 to runs do fn () done;
        let m1 = Gc.minor_words () in
        Some ((m1 -. m0) /. float_of_int runs)
      in
      let test = Test.make ~name (Staged.stage fn) in
      let raw = Benchmark.all cfg instances test in
      let ns, r2 = estimate_of Instance.monotonic_clock raw in
      Printf.printf "%-45s %15s %10s %12s\n%!" name
        (match ns with Some e -> Printf.sprintf "%.1f" e | None -> "n/a")
        (match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-")
        (match mw with Some w -> Printf.sprintf "%.1f" w | None -> "n/a");
      collected :=
        { bench = name; ns_per_run = ns; r2; minor_words = mw } :: !collected)
    workloads;
  List.rev !collected
  end

(* --- smoke: fast paths must agree with the reference paths --- *)

let smoke_checks () =
  let module Sha256 = Chaoschain_crypto.Sha256 in
  let module Der = Chaoschain_der.Der in
  let module Cert = Chaoschain_x509.Cert in
  let module Intern = Chaoschain_pki.Intern in
  let module Pem = Chaoschain_deployment.Pem in
  let module Base64 = Chaoschain_deployment.Base64 in
  let failures = ref 0 in
  let check what ok =
    if not ok then begin
      incr failures;
      Printf.eprintf "SMOKE FAIL: %s\n%!" what
    end
  in
  (* FIPS 180-4 vectors. *)
  List.iter
    (fun (msg, hex) -> check ("sha256 " ^ hex) (Sha256.hexdigest msg = hex))
    [ ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" ) ];
  (* Streaming equals one-shot across split points. *)
  let msg = String.init 300 (fun i -> Char.chr (i land 0xFF)) in
  List.iter
    (fun cut ->
      let ctx = Sha256.init () in
      Sha256.feed ctx (String.sub msg 0 cut);
      Sha256.feed ctx (String.sub msg cut (String.length msg - cut));
      check
        (Printf.sprintf "sha256 streaming split %d" cut)
        (Sha256.finalize ctx = Sha256.digest msg))
    [ 0; 1; 63; 64; 65; 128; 300 ];
  check "sha256 digest_sub"
    (Sha256.digest_sub msg 17 100 = Sha256.digest (String.sub msg 17 100));
  (* Slice decode equals tree decode on fixture certificates. *)
  let fx = Capability.fixture Capability.Order_reorganization in
  List.iter
    (fun cert ->
      let raw = Cert.to_der cert in
      check "der slice=tree"
        (Der.decode_slice (Der.slice_of_string raw) = Der.decode raw);
      (* The independent second decoder agrees structurally on the same
         certificates (the derfuzz precondition). *)
      check "der2 agrees with der"
        (match (Der.decode raw, Chaoschain_der2.Der2.decode raw) with
        | Ok t, Ok t2 -> Chaoschain_fuzz.Oracle.agree t t2
        | _ -> false))
    fx.Capability.served;
  (* Interned decode is byte-identical to a fresh parse. *)
  let pem_text = Pem.encode_certs fx.Capability.served in
  let ders certs = List.map Cert.to_der certs in
  Intern.set_enabled false;
  let plain = Pem.decode_certs pem_text in
  Intern.set_enabled true;
  let interned = Pem.decode_certs pem_text in
  check "intern on/off byte-identity"
    (match (plain, interned) with
    | Ok a, Ok b -> ders a = ders b
    | _ -> false);
  (* Base64 round-trip. *)
  let blob = String.init 257 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  check "base64 round-trip" (Base64.decode (Base64.encode blob) = Ok blob);
  check "base64 malformed length" (Base64.decode "abc" = Error "base64: length not a multiple of 4");
  !failures

let run_smoke () =
  Printf.printf "== smoke: fast-path cross-checks ==\n%!";
  let failures = smoke_checks () in
  if failures > 0 then begin
    Printf.eprintf "%d smoke check(s) failed\n%!" failures;
    exit 1
  end;
  Printf.printf "all fast-path cross-checks passed\n%!"

(* --- machine-readable timing dump (--json) --- *)

let json_of_run ~cfg ~(experiments : run_report option) ~(micro : micro_result list)
    ~(wall : wall_result list) =
  let opt_float = function Some f -> Json.Float f | None -> Json.Null in
  let experiments_json =
    match experiments with
    | None -> []
    | Some rr ->
        [ ( "phases",
            Json.Obj
              [ ("generate_s", Json.Float rr.generate_s);
                ("analyze_s", Json.Float rr.analyze_s) ] );
          ( "experiments",
            Json.List
              (List.map
                 (fun t ->
                   Json.Obj
                     [ ("id", Json.String t.exp_id);
                       ("seconds", Json.Float t.seconds) ])
                 rr.timings) ) ]
  in
  let micro_json =
    match micro with
    | [] -> []
    | l ->
        [ ( "micro",
            Json.List
              (List.map
                 (fun m ->
                   Json.Obj
                     [ ("name", Json.String m.bench);
                       ("ns_per_run", opt_float m.ns_per_run);
                       ("r_square", opt_float m.r2);
                       ("minor_words_per_run", opt_float m.minor_words) ])
                 l) ) ]
  in
  let wall_json =
    match wall with
    | [] -> []
    | l ->
        [ ( "wall",
            Json.List
              (List.map
                 (fun w ->
                   Json.Obj
                     [ ("name", Json.String w.w_name);
                       ("seconds", Json.Float w.w_seconds);
                       ("note", Json.String w.w_note) ])
                 l) ) ]
  in
  Json.Obj
    ([ ("scale", Json.Float cfg.scale); ("jobs", Json.Int cfg.jobs) ]
    @ experiments_json @ micro_json @ wall_json)

let () =
  let cfg = parse_args () in
  if cfg.smoke then run_smoke ();
  let experiments =
    if cfg.tables then
      Some (run_experiments ~scale:cfg.scale ~only:cfg.only ~jobs:cfg.jobs)
    else None
  in
  let micro =
    if cfg.smoke then run_micro ~quota_s:0.02 ~warmup_s:0.005 ?filter:cfg.filter ()
    else if cfg.micro then run_micro ?filter:cfg.filter ()
    else []
  in
  let wall = if cfg.micro then run_wall ~filter:cfg.filter else [] in
  match cfg.json with
  | None -> ()
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            (Json.to_string (json_of_run ~cfg ~experiments ~micro ~wall));
          Out_channel.output_char oc '\n');
      Printf.printf "timings written to %s\n%!" path
