(** Fingerprint-keyed, Domain-safe certificate intern table.

    Decode paths that receive raw certificate DER (PEM files, TLS
    certificate messages, service requests) parse each distinct certificate
    once and share the immutable {!Chaoschain_x509.Cert.t} thereafter.
    Lookups are keyed by the SHA-256 of the DER — the same digest that is
    the certificate's identity everywhere else — and verified against the
    raw bytes on a hit, so aliasing is impossible even under hash collision.

    The table is sharded by fingerprint prefix with one mutex per shard;
    parsing happens outside the lock. Interning only affects sharing, never
    results: a cached certificate is byte-for-byte the value a fresh parse
    would produce, so verdicts and tables are identical across hit/miss and
    across [--jobs]. *)

val cert_of_der : string -> (Chaoschain_x509.Cert.t, string) result
(** Parse-or-share the certificate encoded by the whole input. Equivalent to
    [Cert.of_der] but returns the interned value when the bytes have been
    seen before. Parse failures are not cached. *)

val cert_of_sub :
  string -> off:int -> len:int -> (Chaoschain_x509.Cert.t, string) result
(** [cert_of_sub s ~off ~len] interns the certificate occupying the given
    window of [s]. On a cache hit no copy of the window is made (the hash
    and the equality check both walk [s] in place). Raises
    [Invalid_argument] if the range is out of bounds. *)

val set_enabled : bool -> unit
(** Globally enable/disable interning (default: enabled). When disabled the
    functions above parse unconditionally — used by [--no-intern] for A/B
    debugging. *)

val enabled : unit -> bool

type stats = { entries : int; lookups : int; hits : int }

val stats : unit -> stats
(** Aggregate counters across all shards. *)

val clear : unit -> unit
(** Drop all entries and reset counters (tests). *)
