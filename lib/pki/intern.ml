module Cert = Chaoschain_x509.Cert
module Sha256 = Chaoschain_crypto.Sha256

(* A Domain-safe certificate intern table.

   Every decode path that receives raw certificate DER (PEM files, TLS
   certificate messages, service requests) funnels through here: the raw
   bytes are fingerprinted (SHA-256, the same digest the certificate record
   carries as its identity) and each distinct certificate is parsed exactly
   once; later sightings share the immutable [Cert.t].

   The table is sharded by the first fingerprint byte so Domains hammering
   distinct certificates rarely contend on the same mutex.  Parsing happens
   OUTSIDE the shard lock — only the lookup and the insert hold it — so a
   slow parse never blocks other shard traffic; two Domains racing on the
   same new certificate may both parse it, and the first insert wins (the
   loser's equal value is dropped), keeping results deterministic either
   way.  On a fingerprint hit the stored certificate's raw DER is compared
   to the probe bytes, so even a SHA-256 collision could not alias two
   different certificates. *)

let shard_bits = 6
let shard_count = 1 lsl shard_bits (* 64 *)

type shard = {
  lock : Mutex.t;
  table : (string, Cert.t) Hashtbl.t;
  mutable s_lookups : int;
  mutable s_hits : int;
}

type stats = { entries : int; lookups : int; hits : int }

let shards =
  Array.init shard_count (fun _ ->
      { lock = Mutex.create ();
        table = Hashtbl.create 64;
        s_lookups = 0;
        s_hits = 0 })

let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let shard_of_fp fp = shards.(Char.code (String.unsafe_get fp 0) land (shard_count - 1))

let with_lock shard f =
  Mutex.lock shard.lock;
  match f () with
  | v -> Mutex.unlock shard.lock; v
  | exception e -> Mutex.unlock shard.lock; raise e

(* [raw_matches c s off len] — the stored certificate's DER equals the probe
   window, compared without materialising the window. *)
let raw_matches c s off len =
  let raw = Cert.to_der c in
  String.length raw = len
  &&
  let i = ref 0 in
  while !i < len && String.unsafe_get raw !i = String.unsafe_get s (off + !i) do
    incr i
  done;
  !i = len

let lookup shard fp s off len =
  with_lock shard (fun () ->
      shard.s_lookups <- shard.s_lookups + 1;
      match Hashtbl.find_opt shard.table fp with
      | Some c when raw_matches c s off len ->
          shard.s_hits <- shard.s_hits + 1;
          Some c
      | _ -> None)

let insert shard fp c =
  (* First insert wins: a concurrent Domain may have parsed the same bytes;
     return whichever value is in the table so all callers share one. *)
  with_lock shard (fun () ->
      match Hashtbl.find_opt shard.table fp with
      | Some existing -> existing
      | None -> Hashtbl.add shard.table fp c; c)

let cert_of_sub s ~off ~len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Intern.cert_of_sub";
  if not (enabled ()) then Cert.of_der (String.sub s off len)
  else
    let fp = Sha256.digest_sub s off len in
    let shard = shard_of_fp fp in
    match lookup shard fp s off len with
    | Some c -> Ok c
    | None -> (
        match Cert.of_der_keyed ~fp (String.sub s off len) with
        | Error _ as e -> e
        | Ok c -> Ok (insert shard fp c))

let cert_of_der raw =
  if not (enabled ()) then Cert.of_der raw
  else
    let fp = Sha256.digest raw in
    let shard = shard_of_fp fp in
    match lookup shard fp raw 0 (String.length raw) with
    | Some c -> Ok c
    | None -> (
        match Cert.of_der_keyed ~fp raw with
        | Error _ as e -> e
        | Ok c -> Ok (insert shard fp c))

let stats () =
  Array.fold_left
    (fun acc shard ->
      with_lock shard (fun () ->
          { entries = acc.entries + Hashtbl.length shard.table;
            lookups = acc.lookups + shard.s_lookups;
            hits = acc.hits + shard.s_hits }))
    { entries = 0; lookups = 0; hits = 0 }
    shards

let clear () =
  Array.iter
    (fun shard ->
      with_lock shard (fun () ->
          Hashtbl.reset shard.table;
          shard.s_lookups <- 0;
          shard.s_hits <- 0))
    shards
