(** The simulated HTTP endpoint behind Authority Information Access.

    Real clients that support AIA completion download missing issuer
    certificates from the caIssuers URI embedded in a certificate. This
    repository stands in for that plain-HTTP fetch: certificates are
    published under URIs, and failure modes (404, timeout, a wrong
    certificate being served — the CAcert self-reference case from section
    4.3) can be injected per URI. Fetch accounting supports the paper's
    privacy/efficiency discussion. *)

open Chaoschain_x509

type t

type outcome =
  | Served of Cert.t      (** 200 OK with a certificate body *)
  | Http_not_found        (** the URI resolves but returns 404 *)
  | Timeout               (** the URI never answers *)

val create : unit -> t

val publish : t -> uri:string -> Cert.t -> unit
(** Serve [cert] at [uri]; later publications overwrite earlier ones. *)

val inject_failure : t -> uri:string -> [ `Not_found | `Timeout ] -> unit
(** Make [uri] fail. Overrides any published certificate. *)

val entries : t -> (string * [ `Cert of Cert.t | `Not_found | `Timeout ]) list
(** Everything published or injected, sorted by URI (the backing table's own
    iteration order is nondeterministic) — what a persisted corpus stores so
    replay can rebuild the repository exactly. *)

val fetch : t -> string -> outcome
(** One simulated HTTP GET. URIs never published behave as {!Http_not_found}.
    Every call is counted. *)

val fetch_count : t -> int
(** Total number of {!fetch} calls since creation or the last reset. *)

val fetch_count_for : t -> string -> int
val reset_counters : t -> unit

val chase : t -> ?limit:int -> Cert.t -> (Cert.t list, string) result
(** Recursively follow caIssuers from the given certificate until a
    self-signed certificate is reached, returning the downloaded certificates
    leaf-most first. [limit] (default 8) bounds the recursion; cycles and
    certificates that fetch themselves (the CAcert case) are reported as
    errors, as are missing AIA fields and HTTP failures. *)
