open Chaoschain_x509

type entry = Cert_entry of Cert.t | Fail_not_found | Fail_timeout
type outcome = Served of Cert.t | Http_not_found | Timeout

(* [entries] is written only while the repository is being populated; during a
   measurement run it is read-only, so concurrent lookups from several Domains
   are safe. The fetch accounting, by contrast, is written on every lookup and
   must be serialised. *)
type t = {
  entries : (string, entry) Hashtbl.t;
  counts : (string, int) Hashtbl.t;
  counters_lock : Mutex.t;
  mutable total_fetches : int;
}

let create () =
  { entries = Hashtbl.create 64;
    counts = Hashtbl.create 64;
    counters_lock = Mutex.create ();
    total_fetches = 0 }

let publish t ~uri cert = Hashtbl.replace t.entries uri (Cert_entry cert)

let inject_failure t ~uri mode =
  Hashtbl.replace t.entries uri
    (match mode with `Not_found -> Fail_not_found | `Timeout -> Fail_timeout)

let fetch t uri =
  Mutex.lock t.counters_lock;
  t.total_fetches <- t.total_fetches + 1;
  Hashtbl.replace t.counts uri (1 + Option.value (Hashtbl.find_opt t.counts uri) ~default:0);
  Mutex.unlock t.counters_lock;
  match Hashtbl.find_opt t.entries uri with
  | Some (Cert_entry c) -> Served c
  | Some Fail_not_found | None -> Http_not_found
  | Some Fail_timeout -> Timeout

let entries t =
  Hashtbl.fold
    (fun uri entry acc ->
      let e =
        match entry with
        | Cert_entry c -> `Cert c
        | Fail_not_found -> `Not_found
        | Fail_timeout -> `Timeout
      in
      (uri, e) :: acc)
    t.entries []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let fetch_count t = t.total_fetches
let fetch_count_for t uri = Option.value (Hashtbl.find_opt t.counts uri) ~default:0

let reset_counters t =
  Mutex.lock t.counters_lock;
  t.total_fetches <- 0;
  Hashtbl.reset t.counts;
  Mutex.unlock t.counters_lock

let chase t ?(limit = 8) cert =
  let rec go acc seen current n =
    if n >= limit then Error "AIA chase: recursion limit reached"
    else if Cert.is_self_signed current then Ok (List.rev acc)
    else
      match Cert.aia_ca_issuers current with
      | [] -> Error "AIA chase: certificate has no caIssuers URI"
      | uri :: _ -> (
          match fetch t uri with
          | Http_not_found -> Error (Printf.sprintf "AIA chase: %s not found" uri)
          | Timeout -> Error (Printf.sprintf "AIA chase: %s timed out" uri)
          | Served issuer ->
              if Cert.equal issuer current then
                Error (Printf.sprintf "AIA chase: %s serves the certificate itself" uri)
              else if List.exists (Cert.equal issuer) seen then
                Error "AIA chase: cycle detected"
              else if not (Relation.issued_by_name ~issuer ~child:current) then
                Error (Printf.sprintf "AIA chase: %s serves a non-issuer certificate" uri)
              else go (issuer :: acc) (issuer :: seen) issuer (n + 1))
  in
  go [] [ cert ] cert 0
