
type report = {
  domain : string;
  leaf : Leaf_check.verdict;
  order : Order_check.report;
  completeness : Completeness.report;
  topology : Topology.t;
}

(* The domain-independent part of the report: topology construction, order
   and completeness analysis all consume only the served certificate list (and
   the store/AIA environment), so their result can be computed once per unique
   chain and fanned out to every domain serving it. Only the leaf-placement
   verdict inspects the scanned domain name, and it is cheap. *)
type chain_report = {
  c_order : Order_check.report;
  c_completeness : Completeness.report;
  c_topology : Topology.t;
}

let analyze_chain ?(aia_enabled = true) ~store ~aia certs =
  let topology = Topology.build certs in
  { c_order = Order_check.analyze topology;
    c_completeness = Completeness.analyze ~aia_enabled ~store ~aia topology;
    c_topology = topology }

let localize ~domain certs cr =
  { domain;
    leaf = Leaf_check.classify ~domain certs;
    order = cr.c_order;
    completeness = cr.c_completeness;
    topology = cr.c_topology }

let analyze ?(aia_enabled = true) ~store ~aia ~domain certs =
  localize ~domain certs (analyze_chain ~aia_enabled ~store ~aia certs)

let compliant r =
  Leaf_check.compliant r.leaf && r.order.Order_check.ordered
  && Completeness.compliant r.completeness

let non_compliance_reasons r =
  (if Leaf_check.compliant r.leaf then []
   else [ "leaf placement: " ^ Leaf_check.verdict_to_string r.leaf ])
  @ Order_check.violations r.order
  @
  if Completeness.compliant r.completeness then []
  else
    [ Printf.sprintf "incomplete chain%s"
        (match r.completeness.Completeness.cause with
        | Some c -> " (" ^ Completeness.incomplete_cause_to_string c ^ ")"
        | None -> "") ]

(* The audit report as report IR: typed cells for the counts and the verdict,
   the topology drawing as a raw block. [pp_report] prints its text
   rendering, so the CLI bytes are unchanged; [--format json] and [md] reuse
   the other renderers. *)
let report_ir r =
  let module R = Chaoschain_report.Report in
  {
    R.id = "compliance";
    title = "Compliance report";
    blocks =
      [ R.line [ R.S "domain: "; R.C (R.text r.domain) ];
        R.line
          [ R.S "certificates: ";
            R.C (R.int (Topology.list_length r.topology)); R.S " (";
            R.C (R.int (Topology.node_count r.topology)); R.S " unique)" ];
        R.line
          [ R.S "leaf placement: ";
            R.C (R.text (Leaf_check.verdict_to_string r.leaf)) ];
        R.line
          [ R.S "issuance order: ";
            R.C
              (R.text
                 (if r.order.Order_check.ordered then "compliant"
                  else String.concat "; " (Order_check.violations r.order))) ];
        R.line
          [ R.S "completeness: ";
            R.C
              (R.text
                 (Completeness.verdict_to_string
                    r.completeness.Completeness.verdict
                 ^
                 match r.completeness.Completeness.cause with
                 | Some c ->
                     " — " ^ Completeness.incomplete_cause_to_string c
                 | None -> "")) ];
        R.line
          [ R.S "verdict: ";
            R.C
              (R.verdict (compliant r) ~yes:"COMPLIANT" ~no:"NON-COMPLIANT") ];
        R.line [];
        R.raw (Topology.render r.topology) ];
  }

let pp_report ppf r =
  Format.pp_print_string ppf (Chaoschain_report.Report.to_text (report_ir r))
