
type report = {
  domain : string;
  leaf : Leaf_check.verdict;
  order : Order_check.report;
  completeness : Completeness.report;
  topology : Topology.t;
}

(* The domain-independent part of the report: topology construction, order
   and completeness analysis all consume only the served certificate list (and
   the store/AIA environment), so their result can be computed once per unique
   chain and fanned out to every domain serving it. Only the leaf-placement
   verdict inspects the scanned domain name, and it is cheap. *)
type chain_report = {
  c_order : Order_check.report;
  c_completeness : Completeness.report;
  c_topology : Topology.t;
}

let analyze_chain ?(aia_enabled = true) ~store ~aia certs =
  let topology = Topology.build certs in
  { c_order = Order_check.analyze topology;
    c_completeness = Completeness.analyze ~aia_enabled ~store ~aia topology;
    c_topology = topology }

let localize ~domain certs cr =
  { domain;
    leaf = Leaf_check.classify ~domain certs;
    order = cr.c_order;
    completeness = cr.c_completeness;
    topology = cr.c_topology }

let analyze ?(aia_enabled = true) ~store ~aia ~domain certs =
  localize ~domain certs (analyze_chain ~aia_enabled ~store ~aia certs)

let compliant r =
  Leaf_check.compliant r.leaf && r.order.Order_check.ordered
  && Completeness.compliant r.completeness

let non_compliance_reasons r =
  (if Leaf_check.compliant r.leaf then []
   else [ "leaf placement: " ^ Leaf_check.verdict_to_string r.leaf ])
  @ Order_check.violations r.order
  @
  if Completeness.compliant r.completeness then []
  else
    [ Printf.sprintf "incomplete chain%s"
        (match r.completeness.Completeness.cause with
        | Some c -> " (" ^ Completeness.incomplete_cause_to_string c ^ ")"
        | None -> "") ]

let pp_report ppf r =
  Format.fprintf ppf "@[<v>domain: %s@,certificates: %d (%d unique)@,"
    r.domain
    (Topology.list_length r.topology)
    (Topology.node_count r.topology);
  Format.fprintf ppf "leaf placement: %s@," (Leaf_check.verdict_to_string r.leaf);
  Format.fprintf ppf "issuance order: %s@,"
    (if r.order.Order_check.ordered then "compliant"
     else String.concat "; " (Order_check.violations r.order));
  Format.fprintf ppf "completeness: %s%s@,"
    (Completeness.verdict_to_string r.completeness.Completeness.verdict)
    (match r.completeness.Completeness.cause with
    | Some c -> " — " ^ Completeness.incomplete_cause_to_string c
    | None -> "");
  Format.fprintf ppf "verdict: %s@,@,%s@]"
    (if compliant r then "COMPLIANT" else "NON-COMPLIANT")
    (Topology.render r.topology)
