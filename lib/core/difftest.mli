(** Differential testing of the eight clients over real(istic) server chains
    (section 5.2).

    Every client validates the same served list against its own root program,
    cache and network capabilities; diverging verdicts are grouped and
    attributed to the findings the paper reports (I-1 reorganization, I-2
    list-length limits, I-3 backtracking, I-4 AIA completion) plus the
    root-store and priority divergences that fall outside those four. *)

open Chaoschain_x509
open Chaoschain_pki

type env = {
  store_of : Root_store.program -> Root_store.t;
  aia : Aia_repo.t;
  firefox_cache : Cert.t list;  (** intermediates Firefox has cached *)
  os_store : Cert.t list;       (** the Windows intermediate store *)
  now : Vtime.t;
}

type client_result = {
  client : Clients.t;
  outcome : Engine.outcome;
  message : string;  (** the client-specific rendering, "OK" on success *)
}

type case = {
  domain : string;
  certs : Cert.t list;
  results : client_result list;
}

type cause =
  | I1_no_reorder        (** only order-insensitive clients fail *)
  | I2_list_limit        (** GnuTLS rejects the over-long input list *)
  | I3_no_backtracking   (** non-backtracking clients committed to a bad path *)
  | I4_no_aia            (** chain completes only by fetching via AIA/cache *)
  | Store_difference     (** divergence explained by root-program membership *)
  | Priority_divergence  (** clients accepted different paths *)
  | Other_divergence

val cause_to_string : cause -> string

val run_case : env -> domain:string -> Cert.t list -> case
(** Validate one served list in all eight clients. *)

val chain_key : domain:string -> Cert.t list -> string
(** Memo key for deduplicating [run_case] across domains: the chain
    fingerprint (SHA-256 over the certificate fingerprints) extended with the
    one bit of domain dependence — whether the served head certificate matches
    the scanned domain. Equal keys guarantee identical client outcomes. *)

val with_domain : domain:string -> case -> case
(** Relabel a (possibly cached) case with the domain it is being fanned out
    to; outcomes are unchanged. *)

val run_case_clients : env -> Clients.t list -> domain:string -> Cert.t list -> case

val result_of : case -> Clients.id -> client_result
val accepted_by : case -> Clients.id -> bool

val browsers_agree : case -> bool
(** Chrome, Edge and Firefox produce the same verdict (the paper excludes
    Safari from the browser-consistency statistic). *)

val libraries_agree : case -> bool
val all_browsers_pass : case -> bool
(** Chrome, Edge, Firefox all accept. *)

val all_libraries_pass : case -> bool
val classify : case -> cause list
(** Empty when every client agrees. *)

type summary = {
  total : int;
  browsers_all_pass : int;
  libraries_all_pass : int;
  browser_discrepancies : int;
  library_discrepancies : int;
  by_cause : (cause * int) list;
  library_build_issue : int;  (** at least one library rejects *)
  browser_build_issue : int;  (** at least one of Chrome/Edge/Firefox rejects *)
}

val summarize : case list -> summary
