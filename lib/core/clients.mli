(** Behavioural profiles of the eight TLS implementations the paper evaluates
    (4 libraries, 4 browsers), as configurations of the parameterized
    builder, plus the root program each client consults and the
    user-visible error vocabulary used in differential-testing reports. *)

open Chaoschain_x509
open Chaoschain_pki

type id =
  | Openssl
  | Gnutls
  | Mbedtls
  | Cryptoapi
  | Chrome
  | Edge
  | Safari
  | Firefox

type kind = Library | Browser

type tls_format = Tls12 | Tls13
(** The Certificate-message wire framings a client implements. All eight
    paper profiles ship both; scenarios probe legacy behaviour by
    overriding [supported_formats] (a client offered a framing outside the
    list refuses the handshake instead of mis-parsing the message). *)

type t = {
  id : id;
  name : string;
  version : string;     (** the version the paper tested *)
  kind : kind;
  params : Build_params.t;
  root_program : Root_store.program;
  supported_formats : tls_format list;
      (** Certificate-message framings this client can parse *)
  uses_os_intermediate_store : bool;
      (** CryptoAPI: the Windows intermediate store that rescued 180 chains
          in the paper's AIA-disabled ablation *)
  uses_intermediate_cache : bool;
      (** Firefox: cached intermediates substitute for AIA fetching *)
}

val all : t list
(** The eight clients, libraries first, in Table 9 column order. *)

val libraries : t list
val browsers : t list
val by_id : id -> t
val reference : t
(** A ninth, non-paper profile: the RFC 4158 / section 6.2 recommended
    builder, used as the ablation baseline. *)

val context :
  ?crls:Crl_registry.t ->
  t -> store:Root_store.t -> aia:Aia_repo.t -> cache:Cert.t list ->
  now:Vtime.t -> Path_builder.context
(** Assemble the builder context, honouring the client's capabilities: the
    AIA repository is disconnected for clients without AIA fetching, and the
    cache is dropped for clients without one. [crls] is consulted according
    to the client's revocation integration style. *)

val render_error : t -> Engine.error -> string
(** The message this client would surface, e.g. MbedTLS's
    [X509_BADCERT_NOT_TRUSTED] or Firefox's [SEC_ERROR_UNKNOWN_ISSUER]. *)
