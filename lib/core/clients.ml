open Chaoschain_pki

type id = Openssl | Gnutls | Mbedtls | Cryptoapi | Chrome | Edge | Safari | Firefox
type kind = Library | Browser
type tls_format = Tls12 | Tls13

type t = {
  id : id;
  name : string;
  version : string;
  kind : kind;
  params : Build_params.t;
  root_program : Root_store.program;
  supported_formats : tls_format list;
  uses_os_intermediate_store : bool;
  uses_intermediate_cache : bool;
}

(* Every profiled version implements both Certificate framings; scenarios
   probe legacy clients by overriding this list. *)
let both_formats = [ Tls12; Tls13 ]

let base = Build_params.default

let openssl =
  { id = Openssl;
    name = "OpenSSL";
    version = "3.0.2";
    kind = Library;
    params =
      { base with
        Build_params.aia_fetch = false;
        intermediate_cache = false;
        validity_priority = Build_params.VP_first_valid;
        kid_priority = Build_params.KP1;
        ku_priority = false;
        bc_priority = false;
        prefer_self_signed = false;
        check_sig_alg = true;
        length_limit = Build_params.Unlimited;
        backtracking = false };
    root_program = Root_store.Mozilla;
    supported_formats = both_formats;
    uses_os_intermediate_store = false;
    uses_intermediate_cache = false }

let gnutls =
  { id = Gnutls;
    name = "GnuTLS";
    version = "3.7.3";
    kind = Library;
    params =
      { base with
        Build_params.aia_fetch = false;
        intermediate_cache = false;
        validity_priority = Build_params.VP_none;
        kid_priority = Build_params.KP1;
        ku_priority = false;
        bc_priority = false;
        prefer_self_signed = false;
        check_sig_alg = false;
        length_limit = Build_params.Max_input_list 16;
        backtracking = false };
    root_program = Root_store.Mozilla;
    supported_formats = both_formats;
    uses_os_intermediate_store = false;
    uses_intermediate_cache = false }

let mbedtls =
  { id = Mbedtls;
    name = "MbedTLS";
    version = "3.5.2";
    kind = Library;
    params =
      { base with
        Build_params.reorder = false;
        aia_fetch = false;
        intermediate_cache = false;
        validity_priority = Build_params.VP_first_valid;
        kid_priority = Build_params.KP_none;
        ku_priority = true;
        bc_priority = true;
        prefer_self_signed = false;
        check_sig_alg = false;
        length_limit = Build_params.Max_constructed 10;
        allow_self_signed_leaf = true;
        backtracking = false;
        partial_validation = true;
        revocation = Build_params.During_construction };
    root_program = Root_store.Mozilla;
    supported_formats = both_formats;
    uses_os_intermediate_store = false;
    uses_intermediate_cache = false }

let cryptoapi =
  { id = Cryptoapi;
    name = "CryptoAPI";
    version = "10.0.19041.5072";
    kind = Library;
    params =
      { base with
        Build_params.aia_fetch = true;
        intermediate_cache = true;
        validity_priority = Build_params.VP_recent_longest;
        kid_priority = Build_params.KP2;
        check_sig_alg = false;
        length_limit = Build_params.Max_constructed 13;
        backtracking = true };
    root_program = Root_store.Microsoft;
    supported_formats = both_formats;
    uses_os_intermediate_store = true;
    uses_intermediate_cache = false }

let chrome =
  { id = Chrome;
    name = "Chrome";
    version = "128.0.6613.114";
    kind = Browser;
    params =
      { base with
        Build_params.aia_fetch = true;
        validity_priority = Build_params.VP_recent_longest;
        kid_priority = Build_params.KP2;
        prefer_self_signed = true;
        check_sig_alg = false;
        length_limit = Build_params.Unlimited;
        backtracking = true };
    root_program = Root_store.Chrome;
    supported_formats = both_formats;
    uses_os_intermediate_store = false;
    uses_intermediate_cache = false }

let edge =
  { chrome with
    id = Edge;
    name = "Microsoft Edge";
    version = "128.0.2739.54";
    params = { chrome.params with Build_params.length_limit = Build_params.Max_constructed 21 };
    root_program = Root_store.Microsoft }

let safari =
  { id = Safari;
    name = "Safari";
    version = "17.4";
    kind = Browser;
    params =
      { base with
        Build_params.aia_fetch = true;
        validity_priority = Build_params.VP_recent_longest;
        kid_priority = Build_params.KP1;
        prefer_self_signed = false;
        check_sig_alg = false;
        length_limit = Build_params.Unlimited;
        allow_self_signed_leaf = true;
        backtracking = true };
    root_program = Root_store.Apple;
    supported_formats = both_formats;
    uses_os_intermediate_store = false;
    uses_intermediate_cache = false }

let firefox =
  { id = Firefox;
    name = "Firefox";
    version = "126.0";
    kind = Browser;
    params =
      { base with
        Build_params.aia_fetch = false;
        intermediate_cache = true;
        validity_priority = Build_params.VP_first_valid;
        kid_priority = Build_params.KP_none;
        prefer_self_signed = false;
        check_sig_alg = false;
        length_limit = Build_params.Max_constructed 8;
        backtracking = true };
    root_program = Root_store.Mozilla;
    supported_formats = both_formats;
    uses_os_intermediate_store = false;
    uses_intermediate_cache = true }

let all = [ openssl; gnutls; mbedtls; cryptoapi; chrome; edge; safari; firefox ]
let libraries = List.filter (fun c -> c.kind = Library) all
let browsers = List.filter (fun c -> c.kind = Browser) all
let by_id id = List.find (fun c -> c.id = id) all

let reference =
  { id = Openssl;
    name = "RFC4158-reference";
    version = "n/a";
    kind = Library;
    params = Build_params.rfc4158;
    root_program = Root_store.Mozilla;
    supported_formats = both_formats;
    uses_os_intermediate_store = false;
    uses_intermediate_cache = true }

let context ?crls t ~store ~aia ~cache ~now =
  { Path_builder.params = t.params;
    store;
    aia = (if t.params.Build_params.aia_fetch then Some aia else None);
    cache = (if t.params.Build_params.intermediate_cache then cache else []);
    crls;
    now }

let render_error t err =
  let generic = Engine.error_to_string err in
  match (t.id, err) with
  | Mbedtls, _ -> "X509_BADCERT_NOT_TRUSTED"
  | Openssl, Engine.Build (Path_builder.No_issuer_found _) ->
      "unable to get local issuer certificate"
  | Openssl, Engine.Build Path_builder.Self_signed_leaf_rejected ->
      "self-signed certificate"
  | Openssl, Engine.Validate (Path_validate.Untrusted_root _) ->
      "self-signed certificate in certificate chain"
  | Openssl, Engine.Validate Path_validate.Self_signed_leaf -> "self-signed certificate"
  | Openssl, Engine.Validate (Path_validate.Expired _) -> "certificate has expired"
  | Gnutls, Engine.Build (Path_builder.Input_list_too_long _) ->
      "GNUTLS_E_INTERNAL_ERROR (certificate list too long)"
  | Gnutls, _ -> "The certificate is NOT trusted"
  | Cryptoapi, Engine.Validate (Path_validate.Untrusted_root _) -> "CERT_E_UNTRUSTEDROOT"
  | Cryptoapi, Engine.Build _ -> "CERT_E_CHAINING"
  | (Chrome | Edge), Engine.Validate (Path_validate.Expired _)
  | (Chrome | Edge), Engine.Validate (Path_validate.Not_yet_valid _) ->
      "ERR_CERT_DATE_INVALID"
  | (Chrome | Edge), Engine.Validate (Path_validate.Hostname_mismatch _) ->
      "ERR_CERT_COMMON_NAME_INVALID"
  | (Chrome | Edge), _ -> "ERR_CERT_AUTHORITY_INVALID"
  | Firefox, Engine.Validate (Path_validate.Expired _) -> "SEC_ERROR_EXPIRED_CERTIFICATE"
  | Firefox, Engine.Validate (Path_validate.Hostname_mismatch _) ->
      "SSL_ERROR_BAD_CERT_DOMAIN"
  | Firefox, _ -> "SEC_ERROR_UNKNOWN_ISSUER"
  | Safari, _ -> "This Connection Is Not Private"
  | _, _ -> generic
