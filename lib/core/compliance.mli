(** Combined structural-compliance verdict for one server deployment — the
    paper's definition in section 3: leaf first, issuance order respected,
    and all non-root certificates present. *)

open Chaoschain_x509
open Chaoschain_pki

type report = {
  domain : string;
  leaf : Leaf_check.verdict;
  order : Order_check.report;
  completeness : Completeness.report;
  topology : Topology.t;
}

val analyze :
  ?aia_enabled:bool ->
  store:Root_store.t -> aia:Aia_repo.t -> domain:string -> Cert.t list -> report

type chain_report = {
  c_order : Order_check.report;
  c_completeness : Completeness.report;
  c_topology : Topology.t;
}
(** The domain-independent verdicts: everything except leaf placement is a
    pure function of the served certificate list (plus store and AIA
    repository), so a deduplicating pipeline can evaluate each unique chain
    once and reuse the result across all domains serving it. *)

val analyze_chain :
  ?aia_enabled:bool ->
  store:Root_store.t -> aia:Aia_repo.t -> Cert.t list -> chain_report
(** The expensive, chain-keyed analysis (topology, order, completeness). *)

val localize : domain:string -> Cert.t list -> chain_report -> report
(** Attach the per-domain leaf-placement verdict to a [chain_report].
    [analyze] is [localize] of [analyze_chain]. *)

val compliant : report -> bool
(** All three checks pass. *)

val non_compliance_reasons : report -> string list

val report_ir : report -> Chaoschain_report.Report.t
(** The audit report as typed report IR (one line per check, the topology
    drawing as a raw block). [pp_report] is its text rendering; the CLI's
    [analyze --format json|md] use the other renderers. *)

val pp_report : Format.formatter -> report -> unit
(** Multi-line audit output (used by the CLI's [analyze] command). *)
