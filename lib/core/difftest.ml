open Chaoschain_x509
open Chaoschain_pki

type env = {
  store_of : Root_store.program -> Root_store.t;
  aia : Aia_repo.t;
  firefox_cache : Cert.t list;
  os_store : Cert.t list;
  now : Vtime.t;
}

type client_result = {
  client : Clients.t;
  outcome : Engine.outcome;
  message : string;
}

type case = { domain : string; certs : Cert.t list; results : client_result list }

type cause =
  | I1_no_reorder
  | I2_list_limit
  | I3_no_backtracking
  | I4_no_aia
  | Store_difference
  | Priority_divergence
  | Other_divergence

let cause_to_string = function
  | I1_no_reorder -> "I-1: lack of order reorganization"
  | I2_list_limit -> "I-2: input list exceeds client limit"
  | I3_no_backtracking -> "I-3: lack of backtracking"
  | I4_no_aia -> "I-4: lack of AIA completion"
  | Store_difference -> "root store difference"
  | Priority_divergence -> "priority-selection divergence"
  | Other_divergence -> "other divergence"

let cache_for env (client : Clients.t) =
  if client.Clients.uses_os_intermediate_store then env.os_store
  else if client.Clients.uses_intermediate_cache then env.firefox_cache
  else []

let run_case_clients env clients ~domain certs =
  let results =
    List.map
      (fun client ->
        let store = env.store_of client.Clients.root_program in
        let ctx =
          Clients.context client ~store ~aia:env.aia ~cache:(cache_for env client)
            ~now:env.now
        in
        let outcome = Engine.run ctx ~host:(Some domain) certs in
        let message =
          match outcome.Engine.result with
          | Ok _ -> "OK"
          | Error e -> Clients.render_error client e
        in
        { client; outcome; message })
      clients
  in
  { domain; certs; results }

let run_case env ~domain certs = run_case_clients env Clients.all ~domain certs

(* Every constructed path starts at the served list's head (the engine never
   re-picks the leaf), so the scanned domain influences client outcomes only
   through the single hostname check against that head certificate. Two
   (domain, chain) inputs with the same chain fingerprint and the same
   leaf-matches-domain bit therefore produce identical results, which is what
   makes a chain-keyed memo cache sound. *)
let chain_key ~domain certs =
  let chain_fp =
    Chaoschain_crypto.Sha256.digest
      (String.concat "" (List.map Cert.fingerprint certs))
  in
  let host_bit =
    match certs with
    | [] -> "e"
    | leaf :: _ -> if Cert.matches_hostname leaf domain then "m" else "x"
  in
  chain_fp ^ host_bit

let with_domain ~domain case = { case with domain }

let result_of case id =
  List.find (fun r -> r.client.Clients.id = id) case.results

let accepted_by case id = Engine.accepted (result_of case id).outcome

let verdicts case ids =
  List.map (fun id -> (id, accepted_by case id)) ids

let agree case ids =
  match verdicts case ids with
  | [] -> true
  | (_, first) :: rest -> List.for_all (fun (_, v) -> v = first) rest

let browser_ids = [ Clients.Chrome; Clients.Edge; Clients.Firefox ]
let library_ids = [ Clients.Openssl; Clients.Gnutls; Clients.Mbedtls; Clients.Cryptoapi ]

let browsers_agree case = agree case browser_ids
let libraries_agree case = agree case library_ids
let all_browsers_pass case = List.for_all (accepted_by case) browser_ids
let all_libraries_pass case = List.for_all (accepted_by case) library_ids

let failed_with_build_limit case id =
  match (result_of case id).outcome.Engine.result with
  | Error (Engine.Build (Path_builder.Input_list_too_long _)) -> true
  | _ -> false

let failed_untrusted case id =
  match (result_of case id).outcome.Engine.result with
  | Error (Engine.Validate (Path_validate.Untrusted_root _)) -> true
  | _ -> false

let accepted_via_fetch case id =
  match (result_of case id).outcome.Engine.accepted_attempt with
  | Some a -> a.Path_builder.used_aia || a.Path_builder.used_cache
  | None -> false

let accepted_paths case =
  List.filter_map
    (fun r -> match r.outcome.Engine.result with Ok p -> Some p | Error _ -> None)
    case.results

let classify case =
  if agree case (browser_ids @ library_ids @ [ Clients.Safari ]) then []
  else begin
    let causes = ref [] in
    let add c = if not (List.mem c !causes) then causes := c :: !causes in
    (* I-2: GnuTLS alone rejects the over-long list. *)
    if failed_with_build_limit case Clients.Gnutls then add I2_list_limit;
    (* I-1: MbedTLS dead-ends while reorder-capable libraries accept. *)
    (match (result_of case Clients.Mbedtls).outcome.Engine.result with
    | Error (Engine.Build (Path_builder.No_issuer_found _))
      when accepted_by case Clients.Openssl || accepted_by case Clients.Gnutls ->
        add I1_no_reorder
    | _ -> ());
    (* I-4: a client completes only through AIA or a cache while the three
       network-less libraries dead-end. *)
    let aia_winners =
      List.filter (accepted_via_fetch case)
        [ Clients.Cryptoapi; Clients.Chrome; Clients.Edge; Clients.Safari;
          Clients.Firefox ]
    in
    if aia_winners <> []
       && List.exists
            (fun id -> not (accepted_by case id))
            [ Clients.Openssl; Clients.Gnutls; Clients.Mbedtls ]
    then add I4_no_aia;
    (* I-3: a backtracking client needed >1 attempt while a non-backtracking
       client failed on its committed path. *)
    let backtracked id =
      accepted_by case id && (result_of case id).outcome.Engine.attempts > 1
    in
    if List.exists backtracked
         [ Clients.Cryptoapi; Clients.Chrome; Clients.Edge; Clients.Safari;
           Clients.Firefox ]
       && List.exists (failed_untrusted case)
            [ Clients.Openssl; Clients.Gnutls; Clients.Mbedtls ]
    then add I3_no_backtracking;
    (* Root-store differences: some clients accept (without fetching), and
       every failure is either an untrusted-root verdict or a dead-ended
       construction (the root simply is not in that client's program). *)
    let trust_shaped r =
      match r.outcome.Engine.result with
      | Ok _ -> true
      | Error (Engine.Validate (Path_validate.Untrusted_root _))
      | Error (Engine.Build (Path_builder.No_issuer_found _)) -> true
      | Error _ -> false
    in
    let some_failure = List.exists (fun r -> not (Engine.accepted r.outcome)) case.results
    and some_accept = List.exists (fun r -> Engine.accepted r.outcome) case.results in
    if !causes = [] && some_failure && some_accept
       && List.for_all trust_shaped case.results
    then add Store_difference;
    (* Accepted paths that differ certificate-for-certificate. *)
    (match accepted_paths case with
    | p :: rest when not (List.for_all (fun q -> List.equal Cert.equal p q) rest) ->
        add Priority_divergence
    | _ -> ());
    if !causes = [] then add Other_divergence;
    List.rev !causes
  end

type summary = {
  total : int;
  browsers_all_pass : int;
  libraries_all_pass : int;
  browser_discrepancies : int;
  library_discrepancies : int;
  by_cause : (cause * int) list;
  library_build_issue : int;
  browser_build_issue : int;
}

let summarize cases =
  let count p = List.length (List.filter p cases) in
  let all_causes =
    [ I1_no_reorder; I2_list_limit; I3_no_backtracking; I4_no_aia; Store_difference;
      Priority_divergence; Other_divergence ]
  in
  let cause_counts =
    let tagged = List.map (fun case -> classify case) cases in
    List.map
      (fun c -> (c, List.length (List.filter (fun cs -> List.mem c cs) tagged)))
      all_causes
  in
  { total = List.length cases;
    browsers_all_pass = count all_browsers_pass;
    libraries_all_pass = count all_libraries_pass;
    browser_discrepancies = count (fun c -> not (browsers_agree c));
    library_discrepancies = count (fun c -> not (libraries_agree c));
    by_cause = cause_counts;
    library_build_issue =
      count (fun c -> List.exists (fun id -> not (accepted_by c id)) library_ids);
    browser_build_issue =
      count (fun c -> List.exists (fun id -> not (accepted_by c id)) browser_ids) }
