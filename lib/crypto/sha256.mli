(** SHA-256 (FIPS 180-4), implemented from scratch.

    The rest of the code base uses this both as the real fingerprinting hash
    for certificates (duplicate detection is bit-for-bit over DER, identity is
    a SHA-256 fingerprint, key identifiers are truncated digests as in
    RFC 5280 section 4.2.1.2 method 1) and as the core of the simulated
    signature scheme in {!Keys}. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
(** Fresh context. *)

val reset : ctx -> unit
(** Rewind a context (finalized or not) to the fresh-init state so it can
    hash again. Hot loops over many small inputs reuse one context this
    way instead of paying {!init}'s allocation per digest. *)

val feed : ctx -> string -> unit
(** [feed ctx s] absorbs all bytes of [s]. *)

val feed_bytes : ctx -> bytes -> int -> int -> unit
(** [feed_bytes ctx b off len] absorbs [len] bytes of [b] starting at
    [off]. Raises [Invalid_argument] if the range is out of bounds. *)

val finalize : ctx -> string
(** Padding + final compression; returns the 32-byte raw digest. The context
    must not be reused afterwards. *)

val digest : string -> string
(** One-shot hash: 32-byte raw digest of the whole input. *)

val digest_sub : string -> int -> int -> string
(** [digest_sub s off len]: 32-byte raw digest of [len] bytes of [s] starting
    at [off], without copying the window first. Raises [Invalid_argument] if
    the range is out of bounds. *)

val hexdigest : string -> string
(** [digest] rendered as 64 lowercase hex characters. *)
