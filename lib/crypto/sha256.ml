(* SHA-256 per FIPS 180-4.  The message schedule and compression loop work on
   unboxed native [int]s masked to 32 bits: on a 64-bit OCaml runtime every
   word of the schedule, the eight working variables and all intermediate
   sums live in registers, with a single [land 0xFFFFFFFF] normalisation per
   assignment instead of one boxed [Int32.t] allocation per operation.  Word
   loads from the block use [Bytes.unsafe_get] (the 64-byte block is owned by
   the context and offsets are derived from the loop counter). *)

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b;
     0x59f111f1; 0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01;
     0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7;
     0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
     0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152;
     0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
     0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
     0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819;
     0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116; 0x1e376c08;
     0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f;
     0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array;            (* 8 working hash values, each in [0, 2^32) *)
  block : Bytes.t;          (* 64-byte input block being filled *)
  mutable block_len : int;  (* bytes currently in [block] *)
  mutable total_len : int;  (* total message length in bytes *)
  w : int array;            (* 64-entry message schedule, reused *)
  mutable finalized : bool;
}

let iv =
  [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
     0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |]

let init () =
  {
    h = Array.copy iv;
    block = Bytes.create 64;
    block_len = 0;
    total_len = 0;
    w = Array.make 64 0;
    finalized = false;
  }

(* Rewind to the fresh-init state. The context owns a 64-entry schedule
   array and a block buffer; hot loops hashing many small inputs (Merkle
   interior nodes) reuse one context instead of allocating ~100 words per
   digest. *)
let reset ctx =
  Array.blit iv 0 ctx.h 0 8;
  ctx.block_len <- 0;
  ctx.total_len <- 0;
  ctx.finalized <- false

let mask = 0xFFFFFFFF

(* Unsafe 32-bit big-endian load: one mov + bswap instead of four byte loads.
   The directly-nested primitive chain compiles without boxing the [int32]. *)
external get_32u : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external bswap_32 : int32 -> int32 = "%bswap_int32"

let[@inline] load_be b o = Int32.to_int (bswap_32 (get_32u b o)) land mask

(* 32-bit right-rotations use the doubled-word trick: with
   [xx = x lor (x lsl 32)] (x clean below 2^32), the low 32 bits of
   [xx lsr n] are exactly [rot_r(x, n)] for any n <= 30 — one shift per
   rotation instead of two shifts and an or.  Bits above 31 of the result are
   garbage, which every consumer tolerates: sums are normalised with
   [land mask] exactly where a clean value is next needed. *)

(* [compress_at ctx b o] runs one compression round over the 64 bytes of [b]
   starting at [o]; whole blocks are consumed straight from the caller's
   buffer without staging through [ctx.block]. *)
let compress_at ctx b off =
  let w = ctx.w in
  for i = 0 to 15 do
    Array.unsafe_set w i (load_be b (off + (i * 4)))
  done;
  for i = 16 to 63 do
    let w15 = Array.unsafe_get w (i - 15) in
    let w2 = Array.unsafe_get w (i - 2) in
    let ww15 = w15 lor (w15 lsl 32) and ww2 = w2 lor (w2 lsl 32) in
    let s0 = (ww15 lsr 7) lxor (ww15 lsr 18) lxor (w15 lsr 3)
    and s1 = (ww2 lsr 17) lxor (ww2 lsr 19) lxor (w2 lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + Array.unsafe_get w (i - 7) + s0 + s1)
       land mask)
  done;
  let h = ctx.h in
  (* The eight working variables are immediate-int accumulators of a
     tail-recursive loop: they live in registers for the whole block, with no
     ref-cell traffic.  Intermediate sums like [t1] are left unmasked — high
     garbage bits can never carry down into the low 32 — and normalised only
     at the two assignments that need it. *)
  let rec rounds a b' c d e f g h' i =
    if i = 64 then begin
      Array.unsafe_set h 0 ((Array.unsafe_get h 0 + a) land mask);
      Array.unsafe_set h 1 ((Array.unsafe_get h 1 + b') land mask);
      Array.unsafe_set h 2 ((Array.unsafe_get h 2 + c) land mask);
      Array.unsafe_set h 3 ((Array.unsafe_get h 3 + d) land mask);
      Array.unsafe_set h 4 ((Array.unsafe_get h 4 + e) land mask);
      Array.unsafe_set h 5 ((Array.unsafe_get h 5 + f) land mask);
      Array.unsafe_set h 6 ((Array.unsafe_get h 6 + g) land mask);
      Array.unsafe_set h 7 ((Array.unsafe_get h 7 + h') land mask)
    end
    else begin
      let ee = e lor (e lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = (e land f) lxor (lnot e land g) in
      let t1 = h' + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i in
      let aa = a lor (a lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let maj = (a land b') lxor (a land c) lxor (b' land c) in
      rounds ((t1 + s0 + maj) land mask) a b' c ((d + t1) land mask) e f g
        (i + 1)
    end
  in
  rounds (Array.unsafe_get h 0) (Array.unsafe_get h 1) (Array.unsafe_get h 2)
    (Array.unsafe_get h 3) (Array.unsafe_get h 4) (Array.unsafe_get h 5)
    (Array.unsafe_get h 6) (Array.unsafe_get h 7) 0

let feed_bytes ctx src off len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Sha256.feed_bytes";
  if ctx.finalized then invalid_arg "Sha256: context already finalized";
  ctx.total_len <- ctx.total_len + len;
  let pos = ref off and remaining = ref len in
  (* Fill a partial block first (or a full one when small inputs stream in). *)
  while !remaining > 0 && (ctx.block_len > 0 || !remaining < 64) do
    let take = min !remaining (64 - ctx.block_len) in
    Bytes.blit src !pos ctx.block ctx.block_len take;
    ctx.block_len <- ctx.block_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.block_len = 64 then begin
      compress_at ctx ctx.block 0;
      ctx.block_len <- 0
    end
  done;
  (* Whole blocks straight from the source buffer, no staging blit. *)
  while !remaining >= 64 do
    compress_at ctx src !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit src !pos ctx.block 0 !remaining;
    ctx.block_len <- !remaining
  end

let feed ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) 0 (String.length s)

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha256: context already finalized";
  ctx.finalized <- true;
  let bitlen = ctx.total_len * 8 in
  (* 0x80 terminator, zero pad to 56 mod 64, then 64-bit big-endian length. *)
  Bytes.set ctx.block ctx.block_len '\x80';
  ctx.block_len <- ctx.block_len + 1;
  if ctx.block_len > 56 then begin
    Bytes.fill ctx.block ctx.block_len (64 - ctx.block_len) '\x00';
    compress_at ctx ctx.block 0;
    ctx.block_len <- 0
  end;
  Bytes.fill ctx.block ctx.block_len (56 - ctx.block_len) '\x00';
  for i = 0 to 7 do
    Bytes.set ctx.block (56 + i)
      (Char.unsafe_chr ((bitlen lsr ((7 - i) * 8)) land 0xFF))
  done;
  ctx.block_len <- 64;
  compress_at ctx ctx.block 0;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = Array.unsafe_get ctx.h i in
    Bytes.unsafe_set out (i * 4) (Char.unsafe_chr ((v lsr 24) land 0xFF));
    Bytes.unsafe_set out ((i * 4) + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set out ((i * 4) + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set out ((i * 4) + 3) (Char.unsafe_chr (v land 0xFF))
  done;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let digest_sub s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Sha256.digest_sub";
  let ctx = init () in
  feed_bytes ctx (Bytes.unsafe_of_string s) off len;
  finalize ctx

let hexdigest s = Hex.encode (digest s)
