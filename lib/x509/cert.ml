module Der = Chaoschain_der.Der
module Oid = Chaoschain_der.Oid
module Keys = Chaoschain_crypto.Keys
module Sha256 = Chaoschain_crypto.Sha256
module Hex = Chaoschain_crypto.Hex

type tbs = {
  version : int;
  serial : string;
  sig_alg : Keys.algorithm;
  issuer : Dn.t;
  not_before : Vtime.t;
  not_after : Vtime.t;
  subject : Dn.t;
  public_key : Keys.public_key;
  extensions : Extension.t list;
}

type t = {
  tbs : tbs;
  signature : Keys.signature;
  raw : string;         (* full certificate DER *)
  raw_tbs : string;     (* TBS DER, the signed message *)
  fp : string;          (* SHA-256 of raw *)
}

let alg_identifier (alg : Keys.algorithm) =
  let oid =
    match alg with
    | Keys.Rsa_2048 | Keys.Rsa_4096 -> Oid.alg_sha256_rsa
    | Keys.Rsa_1024 -> Oid.alg_sha1_rsa
    | Keys.Ecdsa_p256 -> Oid.alg_ecdsa_sha256
    | Keys.Ecdsa_p384 -> Oid.alg_ecdsa_sha384
  in
  (* RSA algorithm identifiers carry an explicit NULL parameter. *)
  match alg with
  | Keys.Rsa_2048 | Keys.Rsa_4096 | Keys.Rsa_1024 ->
      Der.sequence [ Der.oid oid; Der.null ]
  | _ -> Der.sequence [ Der.oid oid ]

let spki_to_der (pub : Keys.public_key) =
  let key_oid =
    match pub.Keys.alg with
    | Keys.Rsa_2048 | Keys.Rsa_4096 | Keys.Rsa_1024 -> Oid.alg_rsa_encryption
    | Keys.Ecdsa_p256 | Keys.Ecdsa_p384 -> Oid.alg_ec_public_key
  in
  let alg_id =
    match pub.Keys.alg with
    | Keys.Rsa_2048 | Keys.Rsa_4096 | Keys.Rsa_1024 ->
        Der.sequence [ Der.oid key_oid; Der.null ]
    | _ -> Der.sequence [ Der.oid key_oid ]
  in
  Der.sequence [ alg_id; Der.bit_string pub.Keys.material ]

let tbs_to_der (tbs : tbs) =
  Der.sequence
    ([ Der.context 0 [ Der.integer_of_int tbs.version ];
       Der.integer_bytes tbs.serial;
       alg_identifier tbs.sig_alg;
       Dn.to_der tbs.issuer;
       Der.sequence [ Vtime.to_der_time tbs.not_before; Vtime.to_der_time tbs.not_after ];
       Dn.to_der tbs.subject;
       spki_to_der tbs.public_key ]
    @
    match tbs.extensions with
    | [] -> []
    | exts -> [ Der.context 3 [ Der.sequence (List.map Extension.to_der exts) ] ])

let create tbs signature =
  let raw_tbs = Der.encode (tbs_to_der tbs) in
  let cert_der =
    Der.sequence
      [ (match Der.decode raw_tbs with Ok v -> v | Error _ -> assert false);
        alg_identifier signature.Keys.sig_alg;
        Der.bit_string signature.Keys.sig_bytes ]
  in
  let raw = Der.encode cert_der in
  { tbs; signature; raw; raw_tbs; fp = Sha256.digest raw }

let tbs t = t.tbs
let tbs_der t = t.raw_tbs
let signature t = t.signature
let to_der t = t.raw
let fingerprint t = t.fp
let fingerprint_hex t = Hex.encode t.fp
let equal a b = String.equal a.raw b.raw
let compare a b = String.compare a.raw b.raw

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let sig_family_to_alg family (material_len : int option) =
  (* Disambiguate RSA-2048 vs RSA-4096 (same OID) by key material size when
     decoding an SPKI; for signature fields, default to RSA-2048. *)
  match (family, material_len) with
  | `Sha1_rsa, _ -> Ok Keys.Rsa_1024
  | `Ecdsa_sha256, _ -> Ok Keys.Ecdsa_p256
  | `Ecdsa_sha384, _ -> Ok Keys.Ecdsa_p384
  | `Sha256_rsa, Some 512 -> Ok Keys.Rsa_4096
  | `Sha256_rsa, _ -> Ok Keys.Rsa_2048

(* Decoding runs on the zero-copy slice reader: TLV structure is walked over
   the original buffer and [raw_tbs] is the TBS window of [raw] itself
   (header included), so nothing is re-encoded and large blobs (signature
   bits, key material) are copied exactly once.  Small sub-structures — names,
   extensions — are materialised with [Der.tree_of_node] and reuse the
   tree-based decoders; they are a small share of the bytes. *)

let alg_of_identifier_n n =
  let* fields = Der.as_sequence_n n in
  match fields with
  | oid_n :: _ ->
      let* oid = Der.as_oid_n oid_n in
      if Oid.equal oid Oid.alg_sha256_rsa then Ok `Sha256_rsa
      else if Oid.equal oid Oid.alg_sha1_rsa then Ok `Sha1_rsa
      else if Oid.equal oid Oid.alg_ecdsa_sha256 then Ok `Ecdsa_sha256
      else if Oid.equal oid Oid.alg_ecdsa_sha384 then Ok `Ecdsa_sha384
      else Error ("unknown signature algorithm " ^ Oid.to_string oid)
  | [] -> Error "AlgorithmIdentifier: empty"

let spki_of_node n =
  let* fields = Der.as_sequence_n n in
  match fields with
  | [ alg_n; key_n ] ->
      let* alg_fields = Der.as_sequence_n alg_n in
      let* key_oid =
        match alg_fields with
        | oid_n :: _ -> Der.as_oid_n oid_n
        | [] -> Error "SPKI AlgorithmIdentifier: empty"
      in
      let* _unused, material = Der.as_bit_string_n key_n in
      let* alg =
        if Oid.equal key_oid Oid.alg_rsa_encryption then
          match String.length material with
          | 128 -> Ok Keys.Rsa_1024
          | 256 -> Ok Keys.Rsa_2048
          | 512 -> Ok Keys.Rsa_4096
          | n -> Error (Printf.sprintf "unsupported RSA material size %d" n)
        else if Oid.equal key_oid Oid.alg_ec_public_key then
          match String.length material with
          | 65 -> Ok Keys.Ecdsa_p256
          | 97 -> Ok Keys.Ecdsa_p384
          | n -> Error (Printf.sprintf "unsupported EC material size %d" n)
        else Error ("unknown key algorithm " ^ Oid.to_string key_oid)
      in
      Keys.import_public alg material
  | _ -> Error "SubjectPublicKeyInfo: expected 2 fields"

let time_of_node n =
  match Der.node_tag n with
  | { Der.cls = Universal; constructed = false; number = 23 } ->
      Vtime.of_utctime (Der.node_content n)
  | { Der.cls = Universal; constructed = false; number = 24 } ->
      Vtime.of_generalized (Der.node_content n)
  | _ -> Error "expected UTCTime or GeneralizedTime"

let dn_of_node n =
  let* v = Der.tree_of_node n in
  Dn.of_der v

let ext_of_node n =
  let* v = Der.tree_of_node n in
  Extension.of_der v

let tbs_of_node tbs_n =
  let* fields = Der.as_sequence_n tbs_n in
  let* version, rest =
    match fields with
    | first :: rest when Der.is_context_n 0 first ->
        let* kids = Der.as_context_n 0 first in
        let* v =
          match kids with
          | [ iv ] -> Der.as_integer_int_n iv
          | _ -> Error "version: expected one INTEGER"
        in
        Ok (v, rest)
    | rest -> Ok (0, rest)
  in
  match rest with
  | serial_n :: alg_n :: issuer_n :: validity_n :: subject_n :: spki_n :: tail ->
      let* serial = Der.as_integer_bytes_n serial_n in
      let* family = alg_of_identifier_n alg_n in
      let* issuer = dn_of_node issuer_n in
      let* validity = Der.as_sequence_n validity_n in
      let* not_before, not_after =
        match validity with
        | [ nb; na ] ->
            let* nb = time_of_node nb in
            let* na = time_of_node na in
            Ok (nb, na)
        | _ -> Error "Validity: expected 2 times"
      in
      let* subject = dn_of_node subject_n in
      let* public_key = spki_of_node spki_n in
      let* sig_alg = sig_family_to_alg family (Some (String.length public_key.Keys.material)) in
      let* extensions =
        match tail with
        | [] -> Ok []
        | [ ext_wrapper ] when Der.is_context_n 3 ext_wrapper ->
            let* kids = Der.as_context_n 3 ext_wrapper in
            let* exts_seq =
              match kids with
              | [ s ] -> Der.as_sequence_n s
              | _ -> Error "extensions: expected one SEQUENCE"
            in
            map_result ext_of_node exts_seq
        | _ -> Error "TBSCertificate: unexpected trailing fields"
      in
      Ok { version; serial; sig_alg; issuer; not_before; not_after; subject;
           public_key; extensions }
  | _ -> Error "TBSCertificate: too few fields"

let of_der_impl ~fp raw =
  let* outer, rest = Der.read_node (Der.slice_of_string raw) in
  let* () =
    if rest.Der.len = 0 then Ok ()
    else Error (Printf.sprintf "trailing garbage: %d bytes" rest.Der.len)
  in
  let* fields = Der.as_sequence_n outer in
  match fields with
  | [ tbs_n; sig_alg_n; sig_n ] ->
      let* tbs = tbs_of_node tbs_n in
      let* family = alg_of_identifier_n sig_alg_n in
      let* sig_alg = sig_family_to_alg family None in
      let* _unused, sig_bytes = Der.as_bit_string_n sig_n in
      (* Recover the exact signature algorithm: the outer field must agree
         with the TBS inner field, which knows key sizes. *)
      let sig_alg =
        if Keys.signature_oid_name sig_alg = Keys.signature_oid_name tbs.sig_alg then
          tbs.sig_alg
        else sig_alg
      in
      let raw_tbs = Der.slice_string tbs_n.Der.n_raw in
      let fp = match fp with Some fp -> fp | None -> Sha256.digest raw in
      Ok { tbs; signature = { Keys.sig_alg; sig_bytes }; raw; raw_tbs; fp }
  | _ -> Error "Certificate: expected 3 fields"

let of_der raw = of_der_impl ~fp:None raw

let of_der_keyed ~fp raw = of_der_impl ~fp:(Some fp) raw

let subject t = t.tbs.subject
let issuer t = t.tbs.issuer
let serial t = t.tbs.serial
let not_before t = t.tbs.not_before
let not_after t = t.tbs.not_after
let public_key t = t.tbs.public_key
let extensions t = t.tbs.extensions
let sig_alg t = t.signature.Keys.sig_alg

let find_ext oid t = Extension.find oid t.tbs.extensions

let subject_key_id t =
  match find_ext Oid.ext_subject_key_id t with
  | Some { value = Extension.Subject_key_id k; _ } -> Some k
  | _ -> None

let authority_key_id t =
  match find_ext Oid.ext_authority_key_id t with
  | Some { value = Extension.Authority_key_id a; _ } -> Some a
  | _ -> None

let basic_constraints t =
  match find_ext Oid.ext_basic_constraints t with
  | Some { value = Extension.Basic_constraints bc; _ } -> Some bc
  | _ -> None

let key_usage t =
  match find_ext Oid.ext_key_usage t with
  | Some { value = Extension.Key_usage f; _ } -> Some f
  | _ -> None

let ext_key_usage t =
  match find_ext Oid.ext_ext_key_usage t with
  | Some { value = Extension.Ext_key_usage p; _ } -> Some p
  | _ -> None

let san t =
  match find_ext Oid.ext_subject_alt_name t with
  | Some { value = Extension.Subject_alt_name names; _ } -> names
  | _ -> []

let aia_ca_issuers t =
  match find_ext Oid.ext_authority_info_access t with
  | Some { value = Extension.Authority_info_access a; _ } -> a.Extension.ca_issuers
  | _ -> []

let is_self_issued t = Dn.equal t.tbs.subject t.tbs.issuer

let is_self_signed t =
  is_self_issued t && Keys.verify t.tbs.public_key t.raw_tbs t.signature

let is_ca t = match basic_constraints t with Some { ca; _ } -> ca | None -> false
let validity_days t = Vtime.diff_days t.tbs.not_after t.tbs.not_before

let valid_at t now =
  Vtime.(t.tbs.not_before <= now) && Vtime.(now <= t.tbs.not_after)

(* Case-insensitive single-wildcard match per RFC 6125: the wildcard must be
   the entire left-most label and matches exactly one label. *)
let host_matches_pattern ~pattern ~host =
  let pattern = String.lowercase_ascii pattern and host = String.lowercase_ascii host in
  if String.equal pattern host then true
  else
    match String.index_opt pattern '*' with
    | Some 0 when String.length pattern > 1 && pattern.[1] = '.' -> (
        let suffix = String.sub pattern 1 (String.length pattern - 1) in
        match String.index_opt host '.' with
        | Some i ->
            String.equal suffix (String.sub host i (String.length host - i))
        | None -> false)
    | _ -> false

let matches_hostname t host =
  let dns_names =
    List.filter_map (function Extension.Dns d -> Some d | _ -> None) (san t)
  in
  if dns_names <> [] then
    List.exists (fun pattern -> host_matches_pattern ~pattern ~host) dns_names
  else
    match Dn.common_name t.tbs.subject with
    | Some cn -> host_matches_pattern ~pattern:cn ~host
    | None -> false

let summary t =
  Printf.sprintf "[%s] subject=%s issuer=%s"
    (String.sub (fingerprint_hex t) 0 8)
    (Dn.to_string t.tbs.subject) (Dn.to_string t.tbs.issuer)

let pp ppf t =
  Format.fprintf ppf
    "@[<v 2>Certificate %s@,Subject: %a@,Issuer:  %a@,Serial:  %s@,Validity: %a .. %a@,Key: %a@,%a@]"
    (String.sub (fingerprint_hex t) 0 16)
    Dn.pp t.tbs.subject Dn.pp t.tbs.issuer
    (Hex.encode t.tbs.serial) Vtime.pp t.tbs.not_before Vtime.pp t.tbs.not_after
    Keys.pp_public t.tbs.public_key
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Extension.pp)
    t.tbs.extensions
