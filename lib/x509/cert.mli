(** X.509 v3 certificates.

    A certificate is created either by signing a TBS ({!create}, used by the
    issuance API in {!Issue}) or by decoding DER bytes ({!of_der}). Both paths
    cache the exact DER encoding, so identity ({!equal}), fingerprints and the
    paper's bit-for-bit duplicate detection all operate on real wire bytes. *)

module Der = Chaoschain_der.Der
module Keys = Chaoschain_crypto.Keys

type tbs = {
  version : int;                (** 2 means v3; everything we mint is v3 *)
  serial : string;              (** big-endian INTEGER content octets *)
  sig_alg : Keys.algorithm;     (** inner signature algorithm field *)
  issuer : Dn.t;
  not_before : Vtime.t;
  not_after : Vtime.t;
  subject : Dn.t;
  public_key : Keys.public_key;
  extensions : Extension.t list;
}

type t
(** A signed certificate; immutable. *)

val create : tbs -> Keys.signature -> t
(** Assemble and cache the DER encoding. The signature is taken as given —
    minting syntactically valid but cryptographically broken certificates is
    how the capability tests are built — so no verification happens here. *)

val tbs : t -> tbs
val tbs_der : t -> string
(** The DER bytes of the TBS alone — the message that is signed. *)

val signature : t -> Keys.signature
val to_der : t -> string
val of_der : string -> (t, string) result

val of_der_keyed : fp:string -> string -> (t, string) result
(** [of_der_keyed ~fp raw] is {!of_der} for a caller that has already computed
    the SHA-256 fingerprint of [raw]: the digest is trusted and not
    recomputed. Used by the intern cache, which keys lookups by digest. *)

val fingerprint : t -> string
(** SHA-256 over the full DER encoding; the certificate's identity. *)

val fingerprint_hex : t -> string
val equal : t -> t -> bool
(** Bit-for-bit equality of the DER encodings. *)

val compare : t -> t -> int

(** {1 Field accessors} *)

val subject : t -> Dn.t
val issuer : t -> Dn.t
val serial : t -> string
val not_before : t -> Vtime.t
val not_after : t -> Vtime.t
val public_key : t -> Keys.public_key
val extensions : t -> Extension.t list
val sig_alg : t -> Keys.algorithm

val subject_key_id : t -> string option
(** SKID extension payload, if present. *)

val authority_key_id : t -> Extension.authority_key_id option
val basic_constraints : t -> Extension.basic_constraints option
val key_usage : t -> Extension.key_usage_flag list option
val ext_key_usage : t -> Chaoschain_der.Oid.t list option
val san : t -> Extension.general_name list
val aia_ca_issuers : t -> string list
(** caIssuers URIs from the AIA extension ([] when absent). *)

val is_self_issued : t -> bool
(** Subject DN equals issuer DN (RFC 5280 terminology). *)

val is_self_signed : t -> bool
(** Self-issued and the signature verifies under the certificate's own key.
    This is the predicate the completeness analysis uses to recognise roots. *)

val is_ca : t -> bool
(** BasicConstraints present with [ca = true]. *)

val validity_days : t -> int
(** Length of the validity period in whole days. *)

val valid_at : t -> Vtime.t -> bool
(** Within [notBefore, notAfter] inclusive. *)

val matches_hostname : t -> string -> bool
(** RFC 6125-flavoured host matching: SAN dNSNames (with single left-most
    wildcard label) take precedence; falls back to the subject CN only when
    no SAN of DNS type is present. *)

val summary : t -> string
(** One-line description for logs and rendered figures. *)

val pp : Format.formatter -> t -> unit
