let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let i = ref 0 in
  while !i + 2 < n do
    let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] and b2 = Char.code s.[!i + 2] in
    Buffer.add_char out alphabet.[b0 lsr 2];
    Buffer.add_char out alphabet.[((b0 land 0x3) lsl 4) lor (b1 lsr 4)];
    Buffer.add_char out alphabet.[((b1 land 0xF) lsl 2) lor (b2 lsr 6)];
    Buffer.add_char out alphabet.[b2 land 0x3F];
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let b0 = Char.code s.[!i] in
      Buffer.add_char out alphabet.[b0 lsr 2];
      Buffer.add_char out alphabet.[(b0 land 0x3) lsl 4];
      Buffer.add_string out "=="
  | 2 ->
      let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] in
      Buffer.add_char out alphabet.[b0 lsr 2];
      Buffer.add_char out alphabet.[((b0 land 0x3) lsl 4) lor (b1 lsr 4)];
      Buffer.add_char out alphabet.[(b1 land 0xF) lsl 2];
      Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

(* Decoding uses a 256-entry value table (-1 = not in the alphabet) and
   writes straight into an exactly-sized [Bytes] buffer: each 4-character
   group becomes one 24-bit accumulator and three stores. *)
let decode_table =
  let t = Array.make 256 (-1) in
  String.iteri (fun i c -> t.(Char.code c) <- i) alphabet;
  t

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then Error "base64: length not a multiple of 4"
  else begin
    let padding =
      if n = 0 then 0
      else if s.[n - 2] = '=' then 2
      else if s.[n - 1] = '=' then 1
      else 0
    in
    let groups = n / 4 in
    let out = Bytes.create (groups * 3) in
    let err = ref None in
    (try
       for g = 0 to groups - 1 do
         let o = g * 4 in
         let dec k =
           let c = String.unsafe_get s (o + k) in
           if c = '=' && g = groups - 1 && k >= 4 - padding then 0
           else
             let v = Array.unsafe_get decode_table (Char.code c) in
             if v < 0 then begin
               err := Some (Printf.sprintf "base64: invalid character %C" c);
               raise Exit
             end
             else v
         in
         let triple =
           (dec 0 lsl 18) lor (dec 1 lsl 12) lor (dec 2 lsl 6) lor dec 3
         in
         Bytes.unsafe_set out (g * 3) (Char.unsafe_chr (triple lsr 16));
         Bytes.unsafe_set out ((g * 3) + 1)
           (Char.unsafe_chr ((triple lsr 8) land 0xFF));
         Bytes.unsafe_set out ((g * 3) + 2) (Char.unsafe_chr (triple land 0xFF))
       done
     with Exit -> ());
    match !err with
    | Some e -> Error e
    | None -> Ok (Bytes.sub_string out 0 ((groups * 3) - padding))
  end
