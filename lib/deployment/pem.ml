open Chaoschain_x509
module Intern = Chaoschain_pki.Intern

let header = "-----BEGIN CERTIFICATE-----"
let footer = "-----END CERTIFICATE-----"

let wrap64 s =
  let buf = Buffer.create (String.length s + (String.length s / 64) + 2) in
  String.iteri
    (fun i c ->
      if i > 0 && i mod 64 = 0 then Buffer.add_char buf '\n';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let encode_cert cert =
  Printf.sprintf "%s\n%s\n%s\n" header (wrap64 (Base64.encode (Cert.to_der cert))) footer

let encode_certs certs = String.concat "" (List.map encode_cert certs)

let ( let* ) = Result.bind

let decode_certs text =
  (* Body lines accumulate into one reused [Buffer] (no per-block list of
     line strings), and each decoded DER blob goes through the intern table
     so a certificate repeated across chains is parsed once. *)
  let lines = String.split_on_char '\n' text in
  let body = Buffer.create 4096 in
  let rec scan acc in_block lines =
    match lines with
    | [] ->
        if in_block then Error "PEM: unterminated CERTIFICATE block"
        else Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if not in_block then
          if String.equal line header then begin
            Buffer.clear body;
            scan acc true rest
          end
          else scan acc false rest
        else if String.equal line footer then begin
          let* der = Base64.decode (Buffer.contents body) in
          let* cert = Intern.cert_of_der der in
          scan (cert :: acc) false rest
        end
        else begin
          Buffer.add_string body line;
          scan acc true rest
        end
  in
  scan [] false lines
