(** Versioned binary record codec: length-prefixed, CRC-protected frames.

    A segment file is a flat concatenation of frames. Each frame is

    {v
      u8  kind        record kind tag (segment-specific)
      u32 length      payload length, little-endian
      u32 crc         CRC-32 of the payload bytes, little-endian
      ... payload
    v}

    Decoding distinguishes a {e truncated tail} (the file ends mid-frame —
    the expected outcome of a crash during append, recoverable by truncating
    back to the last good frame) from {e corruption} (a CRC mismatch inside
    the file — not recoverable). *)

val header_size : int
(** Bytes of framing overhead per record (9). *)

val add : Buffer.t -> kind:int -> string -> unit
(** Append one frame to a buffer. [kind] must fit a byte. *)

type read_result =
  | Frame of { kind : int; payload : string; next : int }
      (** A complete, CRC-valid frame; [next] is the offset just past it. *)
  | End  (** Exactly at end of input: a clean segment boundary. *)
  | Truncated  (** Input ends before the frame completes. *)
  | Corrupt of string  (** CRC mismatch or nonsensical header. *)

val read : string -> int -> read_result
(** [read seg off] decodes the frame starting at byte [off] of [seg]. *)

type tail = Clean | Truncated_at of int | Corrupt_at of int * string
(** How a segment scan ended: cleanly at EOF, with a partial frame whose
    last good byte offset is given, or with corruption at an offset. *)

val fold :
  string -> init:'a -> f:('a -> kind:int -> payload:string -> 'a) -> 'a * tail
(** Scan every frame of a segment from offset 0, accumulating with [f], and
    report how the scan ended. *)

(** Allocation-free frame scanner — the segment-scan hot path. {!Cursor.next}
    advances over one frame without materialising the payload (no
    [String.sub], no result record); CRC-verifying a whole segment this way
    allocates nothing. Callers that keep a payload copy it out explicitly
    with {!Cursor.payload}. *)
module Cursor : sig
  type t

  type status =
    | Item  (** A complete, CRC-valid frame; see {!kind}/{!pos}/{!len}. *)
    | Done  (** Clean end of segment. *)
    | Truncated  (** Segment ends mid-frame at {!start}. *)
    | Corrupt  (** CRC mismatch at {!start}; see {!error}. *)

  val create : string -> t

  val reset : t -> string -> unit
  (** Rewind onto a (possibly different) segment, reusing the cursor. *)

  val next : t -> status
  (** Decode the next frame header and verify its CRC. *)

  val kind : t -> int
  (** Kind tag of the current frame (valid after [Item]). *)

  val pos : t -> int
  (** Payload start offset of the current frame (valid after [Item]). *)

  val len : t -> int
  (** Payload length of the current frame (valid after [Item]). *)

  val start : t -> int
  (** Start offset of the current frame (the damage offset after
      [Truncated]/[Corrupt]). *)

  val payload : t -> string
  (** Copy the current payload out (allocates). *)

  val error : t -> string
  (** Human-readable description of the damage after [Corrupt]. *)
end

val check : string -> int -> kind:int -> next:int -> bool
(** [check seg off ~kind ~next]: does a whole, CRC-correct frame of [kind]
    sit at [off] and end exactly at [next]? Allocation-free — the
    per-record probe used to validate an offset index against the frames
    it claims to describe. *)

(** Payload serialization helpers: little-endian fixed-width integers and
    length-prefixed strings over [Buffer]/cursor pairs. *)
module Wire : sig
  val u8 : Buffer.t -> int -> unit
  val u16 : Buffer.t -> int -> unit
  val u32 : Buffer.t -> int -> unit

  val u64 : Buffer.t -> int -> unit
  (** Two little-endian u32 halves; accepts any non-negative OCaml int. *)

  val str : Buffer.t -> string -> unit
  (** u32 length followed by the raw bytes. *)

  type cursor

  val cursor : string -> cursor

  val r_u8 : cursor -> int
  val r_u16 : cursor -> int
  val r_u32 : cursor -> int

  val r_u64 : cursor -> int
  (** Inverse of {!u64}; raises {!Short} if the value cannot fit a 63-bit
      OCaml int. *)

  val r_str : cursor -> string
  (** Inverse of {!str}. *)

  val r_fixed : cursor -> int -> string
  (** Read exactly [n] raw bytes. *)

  val at_end : cursor -> bool

  exception Short
  (** Raised by the [r_*] readers on malformed or short input. *)
end
