(* Per-segment offset index: the sidecar that turns a flat frame segment
   into a random-access array of records.

   The index is DERIVED data — the frames are always authoritative. Every
   consumer therefore (a) CRC-protects the index itself (the whole file is
   one Frame of kind [frame_kind]), (b) validates that the offsets tile
   the exact segment it is being used against, and (c) falls back to a
   sequential scan of the segment whenever anything disagrees. An index
   can be lost or corrupted without losing any data: [of_segment] rebuilds
   it from the frames. *)

let frame_kind = 4
let version = 1

type t = {
  count : int;
  seg_len : int;  (** segment byte length the offsets describe *)
  offsets : int array;  (** frame START offsets, strictly increasing *)
}

let of_segment seg =
  let c = Frame.Cursor.create seg in
  let rec go acc n =
    match Frame.Cursor.next c with
    | Frame.Cursor.Item -> go (Frame.Cursor.start c :: acc) (n + 1)
    | Frame.Cursor.Done -> (acc, n, Frame.Clean)
    | Frame.Cursor.Truncated -> (acc, n, Frame.Truncated_at (Frame.Cursor.start c))
    | Frame.Cursor.Corrupt ->
        (acc, n, Frame.Corrupt_at (Frame.Cursor.start c, Frame.Cursor.error c))
  in
  let offs_rev, count, tail = go [] 0 in
  let offsets = Array.make count 0 in
  List.iteri (fun i off -> offsets.(count - 1 - i) <- off) offs_rev;
  let seg_len =
    (* The byte length the whole-frame prefix covers: up to the damage
       offset when the scan did not end cleanly. *)
    match tail with
    | Frame.Clean -> String.length seg
    | Frame.Truncated_at off | Frame.Corrupt_at (off, _) -> off
  in
  ({ count; seg_len; offsets }, tail)

let encode t =
  let b = Buffer.create (16 + (8 * t.count)) in
  Frame.Wire.u8 b version;
  Frame.Wire.u64 b t.seg_len;
  Frame.Wire.u32 b t.count;
  Array.iter (Frame.Wire.u64 b) t.offsets;
  Buffer.contents b

let decode payload =
  match
    let c = Frame.Wire.cursor payload in
    let v = Frame.Wire.r_u8 c in
    if v <> version then Error (Printf.sprintf "unsupported index version %d" v)
    else begin
      let seg_len = Frame.Wire.r_u64 c in
      let count = Frame.Wire.r_u32 c in
      let offsets = Array.init count (fun _ -> Frame.Wire.r_u64 c) in
      if not (Frame.Wire.at_end c) then Error "trailing bytes"
      else begin
        (* Structural sanity: offsets strictly increasing, first at 0,
           all inside the segment. Frame-level agreement is checked by
           the consumer against the segment bytes themselves. *)
        let ok = ref (count = 0 || offsets.(0) = 0) in
        for i = 0 to count - 1 do
          if offsets.(i) < 0 || offsets.(i) >= seg_len then ok := false;
          if i > 0 && offsets.(i) <= offsets.(i - 1) then ok := false
        done;
        if (not !ok) || (count = 0 && seg_len <> 0) then
          Error "inconsistent offsets"
        else Ok { count; seg_len; offsets }
      end
    end
  with
  | r -> r
  | exception Frame.Wire.Short -> Error "short index payload"

let save path t =
  let b = Buffer.create (16 + (8 * t.count)) in
  Frame.add b ~kind:frame_kind (encode t);
  let oc = open_out_bin path in
  Buffer.output_buffer oc b;
  close_out oc

let load path ~seg_len =
  match open_in_bin path with
  | exception Sys_error _ -> Error "missing"
  | ic -> (
      let data =
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match Frame.read data 0 with
      | Frame.Frame { kind; payload; next } when kind = frame_kind ->
          if next <> String.length data then Error "trailing bytes"
          else (
            match decode payload with
            | Error e -> Error e
            | Ok t ->
                if t.seg_len <> seg_len then
                  Error
                    (Printf.sprintf "built for a %d-byte segment, found %d bytes"
                       t.seg_len seg_len)
                else Ok t)
      | Frame.Frame { kind; _ } ->
          Error (Printf.sprintf "unexpected record kind %d" kind)
      | Frame.End -> Error "empty"
      | Frame.Truncated -> Error "truncated"
      | Frame.Corrupt msg -> Error msg)

(* Frame-level agreement: every indexed frame is whole, CRC-valid, of the
   right kind, and the frames tile the segment exactly (each ends where
   the next begins, the last at end-of-segment). Chunked through [par] so
   a million-record probe spreads over the Domain pool. *)
let agrees ?(par = Par.seq) t seg ~kind =
  String.length seg = t.seg_len
  && (t.count > 0 || t.seg_len = 0)
  &&
  let ok = Atomic.make true in
  let probe i =
    if Atomic.get ok then begin
      let next = if i + 1 < t.count then t.offsets.(i + 1) else t.seg_len in
      if not (Frame.check seg t.offsets.(i) ~kind ~next) then
        Atomic.set ok false
    end
  in
  if t.count >= Par.min_parallel then
    Par.slices par ~n:t.count ~chunk:1024 (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          probe i
        done)
  else
    for i = 0 to t.count - 1 do
      probe i
    done;
  Atomic.get ok
