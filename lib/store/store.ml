open Chaoschain_crypto

(* Segment record kinds. Each segment file carries exactly one kind, so a
   frame of the wrong kind is as fatal as a bad CRC. Kinds 4 and 5 are the
   derived sidecars: per-segment offset indexes and the persisted Merkle
   layers. *)
let kind_cert = 1
let kind_obs = 2
let kind_env = 3
let kind_tree = 5

let manifest_file = "MANIFEST"
let root_file = "ROOT"
let cert_seg = "certs.seg"
let obs_seg = "obs.seg"
let env_seg = "env.seg"
let tree_file = "tree.mrk"
let format_version = 1

(* Sidecar offset index of a segment: derived, CRC-protected, rebuilt
   from the frames whenever missing or disagreeing. *)
let idx_of = function
  | "certs.seg" -> "certs.idx"
  | "obs.seg" -> "obs.idx"
  | "env.seg" -> "env.idx"
  | name -> name ^ ".idx"

let ( // ) = Filename.concat

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* The "signature" over the Merkle root: a keyed self-authentication tag, so
   a ROOT file can't be swapped in from a different record count without
   detection. A real deployment would sign this with [Keys]. *)
let root_auth ~count ~root_hex =
  Sha256.hexdigest (Printf.sprintf "chainstore-root\n%d\n%s\n" count root_hex)

let manifest_text ~scale ~certs ~obs ~env =
  Printf.sprintf "chainstore %d\nscale %h\ncerts %d\nobs %d\nenv %d\n"
    format_version scale certs obs env

let root_text ~count ~root_hex =
  Printf.sprintf "count %d\nroot %s\nauth %s\n" count root_hex
    (root_auth ~count ~root_hex)

type manifest = { m_scale : float; m_certs : int; m_obs : int; m_env : int }

let parse_kv text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         match String.index_opt line ' ' with
         | None -> None
         | Some i ->
             Some
               ( String.sub line 0 i,
                 String.sub line (i + 1) (String.length line - i - 1) ))

let parse_manifest text =
  let kv = parse_kv text in
  let get k = List.assoc_opt k kv in
  match (get "chainstore", get "scale", get "certs", get "obs", get "env") with
  | Some v, Some scale, Some certs, Some obs, Some env -> (
      match
        ( int_of_string_opt v,
          float_of_string_opt scale,
          int_of_string_opt certs,
          int_of_string_opt obs,
          int_of_string_opt env )
      with
      | Some v, Some m_scale, Some m_certs, Some m_obs, Some m_env
        when v = format_version ->
          Ok { m_scale; m_certs; m_obs; m_env }
      | Some v, _, _, _, _ when v <> format_version ->
          Error (Printf.sprintf "unsupported chainstore format version %d" v)
      | _ -> Error "malformed MANIFEST")
  | _ -> Error "malformed MANIFEST"

let parse_root text =
  let kv = parse_kv text in
  let get k = List.assoc_opt k kv in
  match (get "count", get "root", get "auth") with
  | Some count, Some root, Some auth -> (
      match int_of_string_opt count with
      | Some count -> Ok (count, root, auth)
      | None -> Error "malformed ROOT")
  | _ -> Error "malformed ROOT"

(* The persisted Merkle layers: a single CRC-protected frame of
   [kind_tree] holding [Merkle.Tree.serialize]. Derived data, exactly like
   the offset indexes: consumers anchor it against ROOT before serving
   proofs from it, and audit rebuilds it when stale. *)
let write_tree dir tree =
  let b = Buffer.create 4096 in
  Frame.add b ~kind:kind_tree (Merkle.Tree.serialize tree);
  write_file (dir // tree_file) (Buffer.contents b)

let load_tree dir =
  match read_file (dir // tree_file) with
  | None -> Error "missing"
  | Some data -> (
      match Frame.read data 0 with
      | Frame.Frame { kind; payload; next }
        when kind = kind_tree && next = String.length data ->
          Merkle.Tree.deserialize payload
      | Frame.Frame { kind; next; _ } when kind = kind_tree && next <> String.length data ->
          Error "trailing bytes"
      | Frame.Frame { kind; _ } ->
          Error (Printf.sprintf "unexpected record kind %d" kind)
      | Frame.End -> Error "empty"
      | Frame.Truncated -> Error "truncated"
      | Frame.Corrupt msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type seg_writer = {
  oc : out_channel;
  mutable size : int;  (** bytes written so far = offset of the next frame *)
  mutable offs_rev : int list;
  mutable count : int;
}

type writer = {
  w_dir : string;
  cert_w : seg_writer;
  obs_w : seg_writer;
  env_w : seg_writer;
  scratch : Buffer.t;
  seen : (string, unit) Hashtbl.t;  (** cert fingerprints already stored *)
  frontier : Merkle.Frontier.t;  (** incremental root over obs leaves *)
  mutable leaves_rev : string list;  (** obs leaf hashes, newest first *)
}

let create dir =
  (if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   else if not (Sys.is_directory dir) then
     invalid_arg (Printf.sprintf "Store.create: %s is not a directory" dir));
  let open_seg name =
    { oc = open_out_bin (dir // name); size = 0; offs_rev = []; count = 0 }
  in
  {
    w_dir = dir;
    cert_w = open_seg cert_seg;
    obs_w = open_seg obs_seg;
    env_w = open_seg env_seg;
    scratch = Buffer.create 4096;
    seen = Hashtbl.create 256;
    frontier = Merkle.Frontier.create ();
    leaves_rev = [];
  }

let append w sw ~kind payload =
  Buffer.clear w.scratch;
  Frame.add w.scratch ~kind payload;
  sw.offs_rev <- sw.size :: sw.offs_rev;
  sw.size <- sw.size + Buffer.length w.scratch;
  sw.count <- sw.count + 1;
  Buffer.output_buffer sw.oc w.scratch

let add_cert w der =
  let fp = Sha256.digest der in
  if not (Hashtbl.mem w.seen fp) then begin
    Hashtbl.add w.seen fp ();
    append w w.cert_w ~kind:kind_cert der
  end;
  fp

let add_obs w payload =
  append w w.obs_w ~kind:kind_obs payload;
  let leaf = Merkle.leaf_hash payload in
  Merkle.Frontier.add w.frontier leaf;
  w.leaves_rev <- leaf :: w.leaves_rev

let add_env w payload = append w w.env_w ~kind:kind_env payload

let index_of_seg_writer sw =
  let offsets = Array.make sw.count 0 in
  List.iteri (fun i off -> offsets.(sw.count - 1 - i) <- off) sw.offs_rev;
  { Index.count = sw.count; seg_len = sw.size; offsets }

let close ?(par = Par.seq) w ~scale =
  let close_seg name sw =
    close_out sw.oc;
    Index.save (w.w_dir // idx_of name) (index_of_seg_writer sw)
  in
  close_seg cert_seg w.cert_w;
  close_seg obs_seg w.obs_w;
  close_seg env_seg w.env_w;
  let leaves = Array.of_list (List.rev w.leaves_rev) in
  let tree = Merkle.Tree.of_leaf_hashes ~par leaves in
  (* The incremental frontier and the full rebuild must agree — a cheap
     internal cross-check of the two implementations on every close. *)
  assert (String.equal (Merkle.Frontier.root w.frontier) (Merkle.Tree.root tree));
  write_tree w.w_dir tree;
  let root_hex = Hex.encode (Merkle.Tree.root tree) in
  write_file (w.w_dir // manifest_file)
    (manifest_text ~scale ~certs:w.cert_w.count ~obs:w.obs_w.count
       ~env:w.env_w.count);
  write_file (w.w_dir // root_file) (root_text ~count:w.obs_w.count ~root_hex);
  root_hex

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  obs : string array;
  env : string array;
  cert_order : string array;  (** DER blobs in append order *)
  certs : (string, string) Hashtbl.t;  (** fingerprint -> DER *)
  t_scale : float;
  t_root_hex : string;
  t_tree : Merkle.Tree.t;
}

let observations t = t.obs
let env_entries t = t.env
let find_cert t fp = Hashtbl.find_opt t.certs fp
let cert_count t = Hashtbl.length t.certs
let scale t = t.t_scale
let root_hex t = t.t_root_hex
let tree t = t.t_tree

(* Strict segment read: every frame whole, CRC-valid and of the expected
   kind, or a message saying what is wrong and where.

   Fast path: when the sidecar offset index is present and agrees with the
   frames (every indexed frame whole, CRC-valid, right kind, tiling the
   segment exactly — verified, never assumed), payload extraction is
   random access, chunked over [par]. Any disagreement falls back to the
   authoritative sequential scan; a bad index can therefore never corrupt
   a read, only slow it down. *)
let read_segment ?(par = Par.seq) ?(use_index = true) dir name ~kind =
  match read_file (dir // name) with
  | None -> Error (Printf.sprintf "%s: missing" name)
  | Some data -> (
      let indexed =
        if not use_index then None
        else
          match Index.load (dir // idx_of name) ~seg_len:(String.length data) with
          | Error _ -> None
          | Ok idx ->
              if not (Index.agrees ~par idx data ~kind) then None
              else begin
                let out = Array.make idx.Index.count "" in
                let extract i =
                  let off = idx.Index.offsets.(i) in
                  let next =
                    if i + 1 < idx.Index.count then idx.Index.offsets.(i + 1)
                    else idx.Index.seg_len
                  in
                  out.(i) <-
                    String.sub data (off + Frame.header_size)
                      (next - off - Frame.header_size)
                in
                if idx.Index.count >= Par.min_parallel then
                  Par.slices par ~n:idx.Index.count ~chunk:1024
                    (fun ~lo ~hi ->
                      for i = lo to hi - 1 do
                        extract i
                      done)
                else
                  for i = 0 to idx.Index.count - 1 do
                    extract i
                  done;
                Some out
              end
      in
      match indexed with
      | Some out -> Ok (String.length data, out)
      | None -> (
          let payloads, tail =
            Frame.fold data ~init:[] ~f:(fun acc ~kind:k ~payload ->
                (k, payload) :: acc)
          in
          match tail with
          | Frame.Truncated_at off ->
              Error
                (Printf.sprintf
                   "%s: truncated tail at offset %d; run `chaoscheck audit`" name
                   off)
          | Frame.Corrupt_at (off, msg) ->
              Error (Printf.sprintf "%s: corrupt at offset %d (%s)" name off msg)
          | Frame.Clean -> (
              let payloads = List.rev payloads in
              match List.find_opt (fun (k, _) -> k <> kind) payloads with
              | Some (k, _) ->
                  Error (Printf.sprintf "%s: unexpected record kind %d" name k)
              | None ->
                  Ok
                    ( String.length data,
                      Array.of_list (List.map snd payloads) ))))

let ( let* ) = Result.bind

let open_ ?(par = Par.seq) ?(use_index = true) dir =
  let* manifest =
    match read_file (dir // manifest_file) with
    | None -> Error "MANIFEST: missing"
    | Some text -> parse_manifest text
  in
  let* _, cert_ders = read_segment ~par ~use_index dir cert_seg ~kind:kind_cert in
  let* _, obs = read_segment ~par ~use_index dir obs_seg ~kind:kind_obs in
  let* _, env = read_segment ~par ~use_index dir env_seg ~kind:kind_env in
  let check_count name actual expected =
    if actual = expected then Ok ()
    else
      Error
        (Printf.sprintf "%s: %d records but MANIFEST says %d" name actual
           expected)
  in
  let* () = check_count cert_seg (Array.length cert_ders) manifest.m_certs in
  let* () = check_count obs_seg (Array.length obs) manifest.m_obs in
  let* () = check_count env_seg (Array.length env) manifest.m_env in
  let* count, stored_root, stored_auth =
    match read_file (dir // root_file) with
    | None -> Error "ROOT: missing"
    | Some text -> parse_root text
  in
  let* () =
    if String.equal stored_auth (root_auth ~count ~root_hex:stored_root) then
      Ok ()
    else Error "ROOT: authentication tag mismatch"
  in
  let* () =
    if count = Array.length obs then Ok ()
    else
      Error
        (Printf.sprintf "ROOT: count %d but %d observation records" count
           (Array.length obs))
  in
  let tree = Merkle.Tree.of_payloads ~par obs in
  let computed = Hex.encode (Merkle.Tree.root tree) in
  let* () =
    if String.equal computed stored_root then Ok ()
    else Error "ROOT: Merkle root mismatch; run `chaoscheck audit`"
  in
  let certs = Hashtbl.create (Array.length cert_ders) in
  Array.iter (fun der -> Hashtbl.replace certs (Sha256.digest der) der) cert_ders;
  Ok
    {
      obs;
      env;
      cert_order = cert_ders;
      certs;
      t_scale = manifest.m_scale;
      t_root_hex = computed;
      t_tree = tree;
    }

(* ------------------------------------------------------------------ *)
(* Random access                                                       *)
(* ------------------------------------------------------------------ *)

type segment = Certs | Obs | Env

let seg_name = function Certs -> cert_seg | Obs -> obs_seg | Env -> env_seg
let seg_kind = function Certs -> kind_cert | Obs -> kind_obs | Env -> kind_env

(* Sequential record fetch: walk the frames from the start, never touching
   the index — the authoritative reference the indexed path is compared
   against (in tests and in CI). *)
let read_record_seq dir seg i =
  let name = seg_name seg in
  if i < 0 then Error (Printf.sprintf "%s: record %d out of range" name i)
  else
    match read_file (dir // name) with
    | None -> Error (Printf.sprintf "%s: missing" name)
    | Some data -> (
        let c = Frame.Cursor.create data in
        let rec go k =
          match Frame.Cursor.next c with
          | Frame.Cursor.Item ->
              if Frame.Cursor.kind c <> seg_kind seg then
                Error
                  (Printf.sprintf "%s: unexpected record kind %d" name
                     (Frame.Cursor.kind c))
              else if k = i then Ok (Frame.Cursor.payload c)
              else go (k + 1)
          | Frame.Cursor.Done ->
              Error
                (Printf.sprintf "%s: record %d out of range (%d records)" name i
                   k)
          | Frame.Cursor.Truncated ->
              Error
                (Printf.sprintf
                   "%s: truncated tail at offset %d; run `chaoscheck audit`"
                   name (Frame.Cursor.start c))
          | Frame.Cursor.Corrupt ->
              Error
                (Printf.sprintf "%s: corrupt at offset %d; run `chaoscheck audit`"
                   name (Frame.Cursor.start c))
        in
        go 0)

(* Indexed record fetch: two bounded reads (the sidecar index, then one
   seek + one frame) instead of decoding the whole segment — O(1) I/O per
   record. The single frame is still CRC-verified against its header, and
   any index problem (missing, stale, offsets that do not parse as a
   whole frame of the right kind) falls back to the sequential walk: the
   segment always wins. *)
let read_record_at dir seg i =
  let name = seg_name seg in
  let path = dir // name in
  let fast () =
    match Unix.stat path with
    | exception Unix.Unix_error _ -> None
    | st -> (
        let seg_len = st.Unix.st_size in
        match Index.load (dir // idx_of name) ~seg_len with
        | Error _ -> None
        | Ok idx ->
            if i < 0 || i >= idx.Index.count then None
            else begin
              let off = idx.Index.offsets.(i) in
              let next =
                if i + 1 < idx.Index.count then idx.Index.offsets.(i + 1)
                else seg_len
              in
              match open_in_bin path with
              | exception Sys_error _ -> None
              | ic -> (
                  let frame =
                    match seek_in ic off; really_input_string ic (next - off) with
                    | exception _ -> None
                    | bytes -> Some bytes
                  in
                  close_in ic;
                  match frame with
                  | None -> None
                  | Some bytes -> (
                      match Frame.read bytes 0 with
                      | Frame.Frame { kind; payload; next = consumed }
                        when kind = seg_kind seg
                             && consumed = String.length bytes ->
                          Some payload
                      | _ -> None))
            end)
  in
  match fast () with Some payload -> Ok payload | None -> read_record_seq dir seg i

(* ------------------------------------------------------------------ *)
(* Inclusion proofs from the persisted layers                          *)
(* ------------------------------------------------------------------ *)

type proof = {
  p_index : int;
  p_count : int;
  p_root_hex : string;
  p_leaf : string;
  p_path : string list;
}

let inclusion_proof dir i =
  let* count, stored_root, stored_auth =
    match read_file (dir // root_file) with
    | None -> Error "ROOT: missing"
    | Some text -> parse_root text
  in
  let* () =
    if String.equal stored_auth (root_auth ~count ~root_hex:stored_root) then
      Ok ()
    else Error "ROOT: authentication tag mismatch"
  in
  let* () =
    if i >= 0 && i < count then Ok ()
    else Error (Printf.sprintf "record %d out of range (%d records)" i count)
  in
  let* root =
    match Hex.decode stored_root with
    | Ok r when String.length r = 32 -> Ok r
    | _ -> Error "ROOT: malformed root hash"
  in
  let* payload = read_record_at dir Obs i in
  let leaf = Merkle.leaf_hash payload in
  (* Fast path: read the path off the persisted layers — O(log n) hashing
     to re-verify it against the authenticated ROOT, no tree rebuild. The
     layer file is derived data, so a failed verification (or a missing /
     damaged file) silently falls back to rebuilding the tree from the
     observation segment. *)
  let from_layers =
    match load_tree dir with
    | Error _ -> None
    | Ok tree ->
        if Merkle.Tree.leaf_count tree <> count then None
        else if not (String.equal (Merkle.Tree.leaf tree i) leaf) then None
        else
          let path = Merkle.Tree.proof tree i in
          if Merkle.verify ~root ~index:i ~count leaf path then Some path
          else None
  in
  let* path =
    match from_layers with
    | Some path -> Ok path
    | None -> (
        let* _, obs = read_segment dir obs_seg ~kind:kind_obs in
        if Array.length obs <> count then
          Error
            (Printf.sprintf "ROOT: count %d but %d observation records" count
               (Array.length obs))
        else
          let tree = Merkle.Tree.of_payloads obs in
          let path = Merkle.Tree.proof tree i in
          if Merkle.verify ~root ~index:i ~count leaf path then Ok path
          else Error "ROOT: Merkle root mismatch; run `chaoscheck audit`")
  in
  Ok { p_index = i; p_count = count; p_root_hex = stored_root; p_leaf = leaf; p_path = path }

(* ------------------------------------------------------------------ *)
(* Audit                                                               *)
(* ------------------------------------------------------------------ *)

type audit_report = {
  a_ok : bool;
  a_repaired : bool;
  a_messages : string list;
}

let audit ?(par = Par.seq) ?(repair = true) ?(samples = 8) dir =
  let ok = ref true in
  let repaired = ref false in
  let messages = ref [] in
  let say fmt = Printf.ksprintf (fun m -> messages := m :: !messages) fmt in
  let manifest =
    match read_file (dir // manifest_file) with
    | None ->
        ok := false;
        say "MANIFEST: missing";
        None
    | Some text -> (
        match parse_manifest text with
        | Ok m -> Some m
        | Error msg ->
            ok := false;
            say "%s" msg;
            None)
  in
  (* Scan one segment with the allocation-free cursor; truncated tails are
     the expected crash artifact and repairable, CRC damage inside the
     good prefix is not. Payloads are only materialised when [keep] (the
     observation segment, whose payloads feed the Merkle rebuild).
     Returns (record count, kept payloads, authoritative index of the
     good prefix) — the index the sidecar file is then compared against:
     the segment wins, always. *)
  let scan name ~kind ~keep =
    match read_file (dir // name) with
    | None ->
        ok := false;
        say "%s: missing" name;
        (0, [||], None)
    | Some data ->
        let c = Frame.Cursor.create data in
        let payloads = ref [] in
        let offs_rev = ref [] in
        let n = ref 0 in
        let rec go () =
          match Frame.Cursor.next c with
          | Frame.Cursor.Item ->
              if Frame.Cursor.kind c <> kind then begin
                ok := false;
                say "%s: unexpected record kind %d" name (Frame.Cursor.kind c)
              end;
              offs_rev := Frame.Cursor.start c :: !offs_rev;
              if keep then payloads := Frame.Cursor.payload c :: !payloads;
              incr n;
              go ()
          | Frame.Cursor.Done -> Frame.Clean
          | Frame.Cursor.Truncated -> Frame.Truncated_at (Frame.Cursor.start c)
          | Frame.Cursor.Corrupt ->
              Frame.Corrupt_at (Frame.Cursor.start c, Frame.Cursor.error c)
        in
        let tail = go () in
        let good_len =
          match tail with
          | Frame.Clean -> String.length data
          | Frame.Truncated_at off | Frame.Corrupt_at (off, _) -> off
        in
        (match tail with
        | Frame.Clean -> ()
        | Frame.Corrupt_at (off, msg) ->
            ok := false;
            say "%s: unrecoverable corruption at offset %d (%s)" name off msg
        | Frame.Truncated_at off ->
            say "%s: truncated tail at offset %d (%d whole records)" name off !n;
            if repair then begin
              Unix.truncate (dir // name) off;
              repaired := true;
              say "%s: cut back to last whole record" name
            end);
        let offsets = Array.make !n 0 in
        List.iteri (fun i off -> offsets.(!n - 1 - i) <- off) !offs_rev;
        ( !n,
          Array.of_list (List.rev !payloads),
          Some { Index.count = !n; seg_len = good_len; offsets } )
  in
  (* Sidecar offset index: silent when it matches the authoritative scan,
     otherwise named and (when the store is otherwise sound) rebuilt.
     Never rebuilt over unrecoverable damage — same rule as MANIFEST and
     ROOT: repairs only happen on a store whose frames are trustworthy. *)
  let check_index name expected =
    match expected with
    | None -> ()
    | Some expected -> (
        let idx_path = dir // idx_of name in
        let verdict =
          match Index.load idx_path ~seg_len:expected.Index.seg_len with
          | Error e -> Some e
          | Ok idx ->
              if
                idx.Index.count = expected.Index.count
                && idx.Index.offsets = expected.Index.offsets
              then None
              else Some "disagrees with the segment frames"
        in
        match verdict with
        | None -> ()
        | Some why ->
            if repair && !ok then begin
              Index.save idx_path expected;
              repaired := true;
              say "%s: offset index rebuilt (%s)" (idx_of name) why
            end
            else say "%s: offset index %s" (idx_of name) why)
  in
  let n_certs, _, cert_idx = scan cert_seg ~kind:kind_cert ~keep:false in
  let n_obs, obs, obs_idx = scan obs_seg ~kind:kind_obs ~keep:true in
  let n_env, _, env_idx = scan env_seg ~kind:kind_env ~keep:false in
  check_index cert_seg cert_idx;
  check_index obs_seg obs_idx;
  check_index env_seg env_idx;
  (* Merkle rebuild: leaf hashing and layer construction fan out over the
     Domain pool; proofs below are O(log n) reads off this tree. *)
  let tree = Merkle.Tree.of_payloads ~par obs in
  let computed_root = Hex.encode (Merkle.Tree.root tree) in
  let n = n_obs in
  (* MANIFEST counts must match the (possibly repaired) segments. *)
  (match manifest with
  | None -> ()
  | Some m ->
      let stale = m.m_certs <> n_certs || m.m_obs <> n || m.m_env <> n_env in
      if stale then
        if repair && !ok then begin
          write_file (dir // manifest_file)
            (manifest_text ~scale:m.m_scale ~certs:n_certs ~obs:n ~env:n_env);
          repaired := true;
          say "MANIFEST: record counts rewritten"
        end
        else say "MANIFEST: record counts are stale");
  (* ROOT: the auth tag guards against a swapped-in root; a merely stale
     root (e.g. after tail truncation) is re-anchored under repair. *)
  (match read_file (dir // root_file) with
  | None ->
      ok := false;
      say "ROOT: missing"
  | Some text -> (
      match parse_root text with
      | Error msg ->
          ok := false;
          say "%s" msg
      | Ok (count, stored_root, stored_auth) ->
          if not (String.equal stored_auth (root_auth ~count ~root_hex:stored_root))
          then begin
            ok := false;
            say "ROOT: authentication tag mismatch"
          end
          else if count <> n || not (String.equal stored_root computed_root)
          then
            (* Never re-anchor over a store with unrecoverable damage: the
               authentic ROOT is the only evidence of what the full corpus
               hashed to. *)
            if repair && !ok then begin
              write_file (dir // root_file)
                (root_text ~count:n ~root_hex:computed_root);
              repaired := true;
              say "ROOT: Merkle root re-anchored over %d records" n
            end
            else say "ROOT: Merkle root is stale (%d records on disk)" n));
  (* Persisted Merkle layers: compared level-by-level against the rebuild
     (root equality alone would not catch a damaged interior level). *)
  (match load_tree dir with
  | Ok stored when Merkle.Tree.layers stored = Merkle.Tree.layers tree -> ()
  | verdict ->
      let why = match verdict with Error e -> e | Ok _ -> "stale layers" in
      if repair && !ok then begin
        write_tree dir tree;
        repaired := true;
        say "%s: Merkle layers rebuilt (%s)" tree_file why
      end
      else say "%s: Merkle layers %s" tree_file why);
  (* Inclusion proofs for a deterministic, evenly spread sample — O(log n)
     reads each off the rebuilt layers. *)
  if n > 0 then begin
    let k = min samples n in
    let idx i = if k = 1 then 0 else i * (n - 1) / (k - 1) in
    let raw_root = Merkle.Tree.root tree in
    let failures = ref 0 in
    for i = 0 to k - 1 do
      let j = idx i in
      let path = Merkle.Tree.proof tree j in
      if
        not
          (Merkle.verify ~root:raw_root ~index:j ~count:n
             (Merkle.Tree.leaf tree j) path)
      then incr failures
    done;
    if !failures = 0 then
      say "verified %d Merkle inclusion proofs over %d records" k n
    else begin
      ok := false;
      say "%d of %d Merkle inclusion proofs FAILED" !failures k
    end
  end;
  { a_ok = !ok; a_repaired = !repaired; a_messages = List.rev !messages }

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)
(* ------------------------------------------------------------------ *)

type compact_report = {
  c_kept : int;
  c_dropped : int;
  c_bytes_before : int;
  c_bytes_after : int;
}

(* Rewrite the content-addressed certificate segment keeping only the
   certificates [live] wants (in their original append order), dropping
   blobs orphaned by e.g. a truncation repair of the observation log.
   ROOT's self-authentication is untouched by construction: the Merkle
   tree covers observation payloads only, and those segments are never
   rewritten here. The new segment lands via write-to-temp + rename, so a
   crash mid-compaction leaves either the old or the new segment whole;
   a crash between the rename and the MANIFEST rewrite leaves a stale
   cert count, which audit repairs. *)
let compact ?(par = Par.seq) ~live dir =
  let* t = open_ ~par dir in
  let before =
    match Unix.stat (dir // cert_seg) with
    | st -> st.Unix.st_size
    | exception Unix.Unix_error _ -> 0
  in
  let b = Buffer.create (1 lsl 16) in
  let offs_rev = ref [] in
  let kept = ref 0 in
  Array.iter
    (fun der ->
      if live (Sha256.digest der) then begin
        offs_rev := Buffer.length b :: !offs_rev;
        Frame.add b ~kind:kind_cert der;
        incr kept
      end)
    t.cert_order;
  let dropped = Array.length t.cert_order - !kept in
  if dropped > 0 then begin
    let tmp = dir // (cert_seg ^ ".tmp") in
    write_file tmp (Buffer.contents b);
    Unix.rename tmp (dir // cert_seg);
    let offsets = Array.make !kept 0 in
    List.iteri (fun i off -> offsets.(!kept - 1 - i) <- off) !offs_rev;
    Index.save (dir // idx_of cert_seg)
      { Index.count = !kept; seg_len = Buffer.length b; offsets };
    write_file (dir // manifest_file)
      (manifest_text ~scale:t.t_scale ~certs:!kept ~obs:(Array.length t.obs)
         ~env:(Array.length t.env))
  end;
  Ok
    {
      c_kept = !kept;
      c_dropped = dropped;
      c_bytes_before = before;
      c_bytes_after = (if dropped > 0 then Buffer.length b else before);
    }
