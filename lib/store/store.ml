open Chaoschain_crypto

(* Segment record kinds. Each segment file carries exactly one kind, so a
   frame of the wrong kind is as fatal as a bad CRC. *)
let kind_cert = 1
let kind_obs = 2
let kind_env = 3

let manifest_file = "MANIFEST"
let root_file = "ROOT"
let cert_seg = "certs.seg"
let obs_seg = "obs.seg"
let env_seg = "env.seg"
let format_version = 1

let ( // ) = Filename.concat

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* The "signature" over the Merkle root: a keyed self-authentication tag, so
   a ROOT file can't be swapped in from a different record count without
   detection. A real deployment would sign this with [Keys]. *)
let root_auth ~count ~root_hex =
  Sha256.hexdigest (Printf.sprintf "chainstore-root\n%d\n%s\n" count root_hex)

let manifest_text ~scale ~certs ~obs ~env =
  Printf.sprintf "chainstore %d\nscale %h\ncerts %d\nobs %d\nenv %d\n"
    format_version scale certs obs env

let root_text ~count ~root_hex =
  Printf.sprintf "count %d\nroot %s\nauth %s\n" count root_hex
    (root_auth ~count ~root_hex)

type manifest = { m_scale : float; m_certs : int; m_obs : int; m_env : int }

let parse_kv text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         match String.index_opt line ' ' with
         | None -> None
         | Some i ->
             Some
               ( String.sub line 0 i,
                 String.sub line (i + 1) (String.length line - i - 1) ))

let parse_manifest text =
  let kv = parse_kv text in
  let get k = List.assoc_opt k kv in
  match (get "chainstore", get "scale", get "certs", get "obs", get "env") with
  | Some v, Some scale, Some certs, Some obs, Some env -> (
      match
        ( int_of_string_opt v,
          float_of_string_opt scale,
          int_of_string_opt certs,
          int_of_string_opt obs,
          int_of_string_opt env )
      with
      | Some v, Some m_scale, Some m_certs, Some m_obs, Some m_env
        when v = format_version ->
          Ok { m_scale; m_certs; m_obs; m_env }
      | Some v, _, _, _, _ when v <> format_version ->
          Error (Printf.sprintf "unsupported chainstore format version %d" v)
      | _ -> Error "malformed MANIFEST")
  | _ -> Error "malformed MANIFEST"

let parse_root text =
  let kv = parse_kv text in
  let get k = List.assoc_opt k kv in
  match (get "count", get "root", get "auth") with
  | Some count, Some root, Some auth -> (
      match int_of_string_opt count with
      | Some count -> Ok (count, root, auth)
      | None -> Error "malformed ROOT")
  | _ -> Error "malformed ROOT"

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = {
  w_dir : string;
  cert_oc : out_channel;
  obs_oc : out_channel;
  env_oc : out_channel;
  scratch : Buffer.t;
  seen : (string, unit) Hashtbl.t;  (** cert fingerprints already stored *)
  mutable n_certs : int;
  mutable n_obs : int;
  mutable n_env : int;
  mutable leaves_rev : string list;  (** obs leaf hashes, newest first *)
}

let create dir =
  (if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   else if not (Sys.is_directory dir) then
     invalid_arg (Printf.sprintf "Store.create: %s is not a directory" dir));
  let open_seg name = open_out_bin (dir // name) in
  {
    w_dir = dir;
    cert_oc = open_seg cert_seg;
    obs_oc = open_seg obs_seg;
    env_oc = open_seg env_seg;
    scratch = Buffer.create 4096;
    seen = Hashtbl.create 256;
    n_certs = 0;
    n_obs = 0;
    n_env = 0;
    leaves_rev = [];
  }

let append w oc ~kind payload =
  Buffer.clear w.scratch;
  Frame.add w.scratch ~kind payload;
  Buffer.output_buffer oc w.scratch

let add_cert w der =
  let fp = Sha256.digest der in
  if not (Hashtbl.mem w.seen fp) then begin
    Hashtbl.add w.seen fp ();
    append w w.cert_oc ~kind:kind_cert der;
    w.n_certs <- w.n_certs + 1
  end;
  fp

let add_obs w payload =
  append w w.obs_oc ~kind:kind_obs payload;
  w.leaves_rev <- Merkle.leaf_hash payload :: w.leaves_rev;
  w.n_obs <- w.n_obs + 1

let add_env w payload =
  append w w.env_oc ~kind:kind_env payload;
  w.n_env <- w.n_env + 1

let close w ~scale =
  close_out w.cert_oc;
  close_out w.obs_oc;
  close_out w.env_oc;
  let leaves = Array.of_list (List.rev w.leaves_rev) in
  let root_hex = Hex.encode (Merkle.root leaves) in
  write_file (w.w_dir // manifest_file)
    (manifest_text ~scale ~certs:w.n_certs ~obs:w.n_obs ~env:w.n_env);
  write_file (w.w_dir // root_file) (root_text ~count:w.n_obs ~root_hex);
  root_hex

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  obs : string array;
  env : string array;
  certs : (string, string) Hashtbl.t;  (** fingerprint -> DER *)
  t_scale : float;
  t_root_hex : string;
}

let observations t = t.obs
let env_entries t = t.env
let find_cert t fp = Hashtbl.find_opt t.certs fp
let cert_count t = Hashtbl.length t.certs
let scale t = t.t_scale
let root_hex t = t.t_root_hex

(* Strict segment read: every frame whole, CRC-valid and of the expected
   kind, or a message saying what is wrong and where. *)
let read_segment dir name ~kind =
  match read_file (dir // name) with
  | None -> Error (Printf.sprintf "%s: missing" name)
  | Some data -> (
      let payloads, tail =
        Frame.fold data ~init:[] ~f:(fun acc ~kind:k ~payload ->
            (k, payload) :: acc)
      in
      match tail with
      | Frame.Truncated_at off ->
          Error
            (Printf.sprintf
               "%s: truncated tail at offset %d; run `chaoscheck audit`" name
               off)
      | Frame.Corrupt_at (off, msg) ->
          Error (Printf.sprintf "%s: corrupt at offset %d (%s)" name off msg)
      | Frame.Clean -> (
          let payloads = List.rev payloads in
          match List.find_opt (fun (k, _) -> k <> kind) payloads with
          | Some (k, _) ->
              Error (Printf.sprintf "%s: unexpected record kind %d" name k)
          | None -> Ok (Array.of_list (List.map snd payloads))))

let ( let* ) = Result.bind

let open_ dir =
  let* manifest =
    match read_file (dir // manifest_file) with
    | None -> Error "MANIFEST: missing"
    | Some text -> parse_manifest text
  in
  let* cert_ders = read_segment dir cert_seg ~kind:kind_cert in
  let* obs = read_segment dir obs_seg ~kind:kind_obs in
  let* env = read_segment dir env_seg ~kind:kind_env in
  let check_count name actual expected =
    if actual = expected then Ok ()
    else
      Error
        (Printf.sprintf "%s: %d records but MANIFEST says %d" name actual
           expected)
  in
  let* () = check_count cert_seg (Array.length cert_ders) manifest.m_certs in
  let* () = check_count obs_seg (Array.length obs) manifest.m_obs in
  let* () = check_count env_seg (Array.length env) manifest.m_env in
  let* count, stored_root, stored_auth =
    match read_file (dir // root_file) with
    | None -> Error "ROOT: missing"
    | Some text -> parse_root text
  in
  let* () =
    if String.equal stored_auth (root_auth ~count ~root_hex:stored_root) then
      Ok ()
    else Error "ROOT: authentication tag mismatch"
  in
  let* () =
    if count = Array.length obs then Ok ()
    else
      Error
        (Printf.sprintf "ROOT: count %d but %d observation records" count
           (Array.length obs))
  in
  let computed = Hex.encode (Merkle.root (Array.map Merkle.leaf_hash obs)) in
  let* () =
    if String.equal computed stored_root then Ok ()
    else Error "ROOT: Merkle root mismatch; run `chaoscheck audit`"
  in
  let certs = Hashtbl.create (Array.length cert_ders) in
  Array.iter (fun der -> Hashtbl.replace certs (Sha256.digest der) der) cert_ders;
  Ok
    {
      obs;
      env;
      certs;
      t_scale = manifest.m_scale;
      t_root_hex = computed;
    }

(* ------------------------------------------------------------------ *)
(* Audit                                                               *)
(* ------------------------------------------------------------------ *)

type audit_report = {
  a_ok : bool;
  a_repaired : bool;
  a_messages : string list;
}

let audit ?(repair = true) ?(samples = 8) dir =
  let ok = ref true in
  let repaired = ref false in
  let messages = ref [] in
  let say fmt = Printf.ksprintf (fun m -> messages := m :: !messages) fmt in
  let manifest =
    match read_file (dir // manifest_file) with
    | None ->
        ok := false;
        say "MANIFEST: missing";
        None
    | Some text -> (
        match parse_manifest text with
        | Ok m -> Some m
        | Error msg ->
            ok := false;
            say "%s" msg;
            None)
  in
  (* Scan one segment; truncated tails are the expected crash artifact and
     repairable, CRC damage inside the good prefix is not. Returns the
     good-prefix payloads (i.e. segment content after any repair). *)
  let scan name ~kind =
    match read_file (dir // name) with
    | None ->
        ok := false;
        say "%s: missing" name;
        [||]
    | Some data ->
        let payloads, tail =
          Frame.fold data ~init:[] ~f:(fun acc ~kind:k ~payload ->
              if k <> kind then begin
                ok := false;
                say "%s: unexpected record kind %d" name k
              end;
              payload :: acc)
        in
        let payloads = Array.of_list (List.rev payloads) in
        (match tail with
        | Frame.Clean -> ()
        | Frame.Corrupt_at (off, msg) ->
            ok := false;
            say "%s: unrecoverable corruption at offset %d (%s)" name off msg
        | Frame.Truncated_at off ->
            say "%s: truncated tail at offset %d (%d whole records)" name off
              (Array.length payloads);
            if repair then begin
              Unix.truncate (dir // name) off;
              repaired := true;
              say "%s: cut back to last whole record" name
            end);
        payloads
  in
  let cert_ders = scan cert_seg ~kind:kind_cert in
  let obs = scan obs_seg ~kind:kind_obs in
  let env = scan env_seg ~kind:kind_env in
  let leaves = Array.map Merkle.leaf_hash obs in
  let computed_root = Hex.encode (Merkle.root leaves) in
  let n = Array.length obs in
  (* MANIFEST counts must match the (possibly repaired) segments. *)
  (match manifest with
  | None -> ()
  | Some m ->
      let stale =
        m.m_certs <> Array.length cert_ders
        || m.m_obs <> n
        || m.m_env <> Array.length env
      in
      if stale then
        if repair && !ok then begin
          write_file (dir // manifest_file)
            (manifest_text ~scale:m.m_scale ~certs:(Array.length cert_ders)
               ~obs:n ~env:(Array.length env));
          repaired := true;
          say "MANIFEST: record counts rewritten"
        end
        else say "MANIFEST: record counts are stale");
  (* ROOT: the auth tag guards against a swapped-in root; a merely stale
     root (e.g. after tail truncation) is re-anchored under repair. *)
  (match read_file (dir // root_file) with
  | None ->
      ok := false;
      say "ROOT: missing"
  | Some text -> (
      match parse_root text with
      | Error msg ->
          ok := false;
          say "%s" msg
      | Ok (count, stored_root, stored_auth) ->
          if not (String.equal stored_auth (root_auth ~count ~root_hex:stored_root))
          then begin
            ok := false;
            say "ROOT: authentication tag mismatch"
          end
          else if count <> n || not (String.equal stored_root computed_root)
          then
            (* Never re-anchor over a store with unrecoverable damage: the
               authentic ROOT is the only evidence of what the full corpus
               hashed to. *)
            if repair && !ok then begin
              write_file (dir // root_file)
                (root_text ~count:n ~root_hex:computed_root);
              repaired := true;
              say "ROOT: Merkle root re-anchored over %d records" n
            end
            else say "ROOT: Merkle root is stale (%d records on disk)" n));
  (* Inclusion proofs for a deterministic, evenly spread sample. *)
  if n > 0 then begin
    let k = min samples n in
    let idx i = if k = 1 then 0 else i * (n - 1) / (k - 1) in
    let raw_root = Merkle.root leaves in
    let failures = ref 0 in
    for i = 0 to k - 1 do
      let j = idx i in
      let path = Merkle.proof leaves j in
      if not (Merkle.verify ~root:raw_root ~index:j ~count:n leaves.(j) path)
      then incr failures
    done;
    if !failures = 0 then
      say "verified %d Merkle inclusion proofs over %d records" k n
    else begin
      ok := false;
      say "%d of %d Merkle inclusion proofs FAILED" !failures k
    end
  end;
  { a_ok = !ok; a_repaired = !repaired; a_messages = List.rev !messages }
