(** Per-segment offset index: the sidecar that turns a flat {!Frame}
    segment into a random-access array of records.

    The index is {e derived} data — the frames are always authoritative.
    The whole sidecar file is one CRC-protected frame; {!load} validates
    structure (strictly increasing offsets starting at 0, matching
    segment length) and {!agrees} additionally probes every indexed
    frame against the segment bytes (kind, CRC, exact tiling). Anything
    that disagrees means the index is discarded and rebuilt from the
    segment with {!of_segment} — an index can be lost or corrupted
    without losing any data, and is never trusted over the frames. *)

val frame_kind : int
(** Record-kind tag of the index sidecar frame (4). *)

type t = {
  count : int;  (** number of indexed records *)
  seg_len : int;  (** segment byte length the offsets describe *)
  offsets : int array;  (** frame start offsets, strictly increasing *)
}

val of_segment : string -> t * Frame.tail
(** Rebuild the index by scanning the segment; the index covers the
    whole-frame prefix and the tail reports how the scan ended (exactly
    as {!Frame.fold} would). *)

val encode : t -> string
(** The index frame payload: u8 version, u64 segment length, u32 count,
    count × u64 offsets. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}, with structural validation. *)

val save : string -> t -> unit
(** Write the sidecar file (a single CRC-protected frame) at a path. *)

val load : string -> seg_len:int -> (t, string) result
(** Read and validate a sidecar against the actual segment byte length;
    every failure mode (missing file, truncation, CRC damage, version or
    shape mismatch, stale length) is an [Error] naming the problem. *)

val agrees : ?par:Par.t -> t -> string -> kind:int -> bool
(** [agrees t seg ~kind]: is every indexed frame whole, CRC-valid, of
    [kind], and do the frames tile [seg] exactly? O(segment) CRC work,
    chunked through [par]; allocation-free. [true] means the index can
    be trusted for random access into this segment. *)
