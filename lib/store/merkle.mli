(** RFC 6962-style Merkle tree over record payloads.

    Leaves are hashed with a [0x00] domain-separation prefix and interior
    nodes with [0x01], so a leaf can never be confused for a node. The tree
    over [n] leaves splits at [k], the largest power of two strictly less
    than [n], exactly as Certificate Transparency does — which keeps audit
    paths stable as the log grows.

    Two scalable representations sit alongside the flat-array
    conveniences: {!Tree} precomputes every interior layer once (O(n))
    so that each inclusion proof afterwards is O(log n) array reads with
    near-zero allocation, and {!Frontier} maintains the incremental
    append state (one subtree root per set bit of the count) so a writer
    tracks the root in O(log n) memory without ever rebuilding. *)

val leaf_hash : string -> string
(** SHA-256(0x00 ‖ payload), 32 raw bytes. *)

val node_hash : string -> string -> string
(** SHA-256(0x01 ‖ left ‖ right). *)

(** Incremental appender: the classic CT "frontier" of perfect-subtree
    roots. [add] is amortised O(1) hashing (a binary increment); [root]
    is O(log n); total memory is O(log n). The root after [n] adds is
    exactly [root] of the corresponding leaf array — pinned by a QCheck
    differential. *)
module Frontier : sig
  type t

  val create : unit -> t

  val add : t -> string -> unit
  (** Append one {e leaf hash}. *)

  val count : t -> int

  val root : t -> string
  (** Root over everything appended so far; the empty frontier hashes to
      SHA-256 of the empty string. *)
end

(** The fully materialised tree: every level, bottom-up, with an
    unpaired last node promoted unchanged — byte-identical roots and
    audit paths to the recursive RFC 6962 definition. Build once
    (optionally Domain-parallel), then proofs are O(log n) reads. *)
module Tree : sig
  type t

  val of_leaf_hashes : ?par:Par.t -> string array -> t
  (** Build from precomputed leaf hashes. The array is kept as level 0 —
      callers must not mutate it afterwards. O(n) hashing; levels wider
      than {!Par.min_parallel} are built through [par]. *)

  val of_payloads : ?par:Par.t -> string array -> t
  (** [of_leaf_hashes] over [leaf_hash] of every payload, with the leaf
      hashing itself also run through [par]. *)

  val leaf_count : t -> int

  val leaf : t -> int -> string
  (** Leaf hash at an index. *)

  val root : t -> string

  val proof : t -> int -> string list
  (** Audit path for leaf [i], ordered leaf-to-root: O(log n) array
      reads, allocating only the returned list. Raises
      [Invalid_argument] if [i] is out of range (including the empty
      tree). *)

  val layers : t -> string array array
  (** The raw levels, bottom-up ([layers.(0)] = leaf hashes). Do not
      mutate. *)

  val serialize : t -> string
  (** Compact byte encoding of every level (u32 leaf count, u32 level
      count, then each level as u32 width + raw 32-byte hashes) — what
      the store persists so proofs need no rebuild. *)

  val deserialize : string -> (t, string) result
  (** Inverse of {!serialize}; any shape damage (width/level mismatch,
      short or trailing bytes) is an [Error]. Hashes are NOT re-derived
      here — callers must anchor the result against a trusted root
      before serving proofs from it. *)
end

val root : string array -> string
(** Merkle tree hash of an array of {e leaf hashes} (as produced by
    {!leaf_hash}); O(n) hashing, O(log n) memory via {!Frontier}. The
    empty tree hashes to SHA-256 of the empty string. *)

val proof : string array -> int -> string list
(** [proof leaves i] is the audit path for leaf [i]: sibling hashes ordered
    from the leaf up to (but excluding) the root. Convenience wrapper that
    builds a {!Tree} per call — use {!Tree.proof} on a prebuilt tree
    anywhere more than one proof is needed. Raises [Invalid_argument] if
    [i] is out of range. *)

val verify :
  root:string -> index:int -> count:int -> string -> string list -> bool
(** [verify ~root ~index ~count leaf path] checks an inclusion proof: does
    [path] connect the [index]-th of [count] leaves, with leaf hash [leaf],
    to [root]? *)
