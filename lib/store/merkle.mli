(** RFC 6962-style Merkle tree over record payloads.

    Leaves are hashed with a [0x00] domain-separation prefix and interior
    nodes with [0x01], so a leaf can never be confused for a node. The tree
    over [n] leaves splits at [k], the largest power of two strictly less
    than [n], exactly as Certificate Transparency does — which keeps audit
    paths stable as the log grows. Inclusion proofs are O(log n). *)

val leaf_hash : string -> string
(** SHA-256(0x00 ‖ payload), 32 raw bytes. *)

val node_hash : string -> string -> string
(** SHA-256(0x01 ‖ left ‖ right). *)

val root : string array -> string
(** Merkle tree hash of an array of {e leaf hashes} (as produced by
    {!leaf_hash}). The empty tree hashes to SHA-256 of the empty string. *)

val proof : string array -> int -> string list
(** [proof leaves i] is the audit path for leaf [i]: sibling hashes ordered
    from the leaf up to (but excluding) the root. Raises [Invalid_argument]
    if [i] is out of range. *)

val verify :
  root:string -> index:int -> count:int -> string -> string list -> bool
(** [verify ~root ~index ~count leaf path] checks an inclusion proof: does
    [path] connect the [index]-th of [count] leaves, with leaf hash [leaf],
    to [root]? *)
