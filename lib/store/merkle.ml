open Chaoschain_crypto

let leaf_hash payload =
  let ctx = Sha256.init () in
  Sha256.feed ctx "\x00";
  Sha256.feed ctx payload;
  Sha256.finalize ctx

let node_hash l r =
  let ctx = Sha256.init () in
  Sha256.feed ctx "\x01";
  Sha256.feed ctx l;
  Sha256.feed ctx r;
  Sha256.finalize ctx

(* Context-reusing variants for the hot loops (tree construction hashes n
   nodes, verification log n): one [reset] instead of a ~100-word [init]
   per digest. *)
let node_hash_with ctx l r =
  Sha256.reset ctx;
  Sha256.feed ctx "\x01";
  Sha256.feed ctx l;
  Sha256.feed ctx r;
  Sha256.finalize ctx

let leaf_hash_with ctx payload =
  Sha256.reset ctx;
  Sha256.feed ctx "\x00";
  Sha256.feed ctx payload;
  Sha256.finalize ctx

let empty_root = lazy (Sha256.digest "")

(* ------------------------------------------------------------------ *)
(* Frontier: O(log n) incremental appender                             *)
(* ------------------------------------------------------------------ *)

(* The RFC 6962 tree over n leaves decomposes into perfect subtrees, one
   per set bit of n. The frontier is exactly that list of subtree roots
   (height strictly increasing towards the tail, i.e. towards the OLDEST
   data): appending a leaf is a binary increment — push a height-0 entry,
   then merge equal-height neighbours with [node_hash left right]. The
   resulting root is provably the same as a full rebuild (pinned by the
   QCheck frontier-vs-rebuild test). *)
module Frontier = struct
  type t = {
    mutable stack : (int * string) list;
        (** (height, root), head = rightmost = lowest height *)
    mutable count : int;
  }

  let create () = { stack = []; count = 0 }
  let count t = t.count

  let add t leaf =
    let rec merge h node = function
      | (h', left) :: rest when h' = h -> merge (h + 1) (node_hash left node) rest
      | stack -> (h, node) :: stack
    in
    t.stack <- merge 0 leaf t.stack;
    t.count <- t.count + 1

  let root t =
    match t.stack with
    | [] -> Lazy.force empty_root
    | (_, h) :: rest -> List.fold_left (fun acc (_, left) -> node_hash left acc) h rest
end

(* ------------------------------------------------------------------ *)
(* Layered tree: O(n) build once, O(log n) proofs forever              *)
(* ------------------------------------------------------------------ *)

module Tree = struct
  (* layers.(0) is the leaf-hash level; each level above pairs adjacent
     nodes, PROMOTING an unpaired last node unchanged. That bottom-up
     construction is exactly the RFC 6962 shape (split at the largest
     power of two strictly below n), so proofs read off the layers are
     byte-identical to the recursive definition. *)
  type t = { layers : string array array }

  let leaf_count t = Array.length t.layers.(0)
  let leaf t i = t.layers.(0).(i)
  let layers t = t.layers

  let level_widths n =
    if n = 0 then [ 0 ]
    else begin
      let rec go acc w = if w = 1 then List.rev acc else go (((w + 1) / 2) :: acc) ((w + 1) / 2) in
      n :: go [] n
    end

  let of_leaf_hashes ?(par = Par.seq) leaves =
    let n = Array.length leaves in
    if n = 0 then { layers = [| [||] |] }
    else begin
      let rec build acc level =
        let w = Array.length level in
        if w = 1 then List.rev acc
        else begin
          let w' = (w + 1) / 2 in
          let next = Array.make w' "" in
          let fill ctx j =
            let l = level.(2 * j) in
            next.(j) <-
              (if (2 * j) + 1 < w then node_hash_with ctx l level.((2 * j) + 1)
               else l)
          in
          if w' >= Par.min_parallel then
            Par.slices par ~n:w' ~chunk:2048 (fun ~lo ~hi ->
                let ctx = Sha256.init () in
                for j = lo to hi - 1 do
                  fill ctx j
                done)
          else begin
            let ctx = Sha256.init () in
            for j = 0 to w' - 1 do
              fill ctx j
            done
          end;
          build (next :: acc) next
        end
      in
      { layers = Array.of_list (leaves :: build [] leaves) }
    end

  let of_payloads ?(par = Par.seq) payloads =
    let n = Array.length payloads in
    let leaves = Array.make n "" in
    if n >= Par.min_parallel then
      Par.slices par ~n ~chunk:1024 (fun ~lo ~hi ->
          let ctx = Sha256.init () in
          for i = lo to hi - 1 do
            leaves.(i) <- leaf_hash_with ctx payloads.(i)
          done)
    else begin
      let ctx = Sha256.init () in
      for i = 0 to n - 1 do
        leaves.(i) <- leaf_hash_with ctx payloads.(i)
      done
    end;
    of_leaf_hashes ~par leaves

  let root t =
    if leaf_count t = 0 then Lazy.force empty_root
    else t.layers.(Array.length t.layers - 1).(0)

  let proof t i =
    let n = leaf_count t in
    if i < 0 || i >= n then invalid_arg "Merkle.Tree.proof";
    (* Leaf-to-root sibling walk. A promoted node has no sibling at its
       level (sib = width), so nothing is emitted and the index carries
       up — [idx/2] is correct for promoted nodes too since a promoted
       index is always the even width-1. *)
    let acc = ref [] in
    let idx = ref i in
    for l = 0 to Array.length t.layers - 2 do
      let level = t.layers.(l) in
      let sib = !idx lxor 1 in
      if sib < Array.length level then acc := level.(sib) :: !acc;
      idx := !idx / 2
    done;
    List.rev !acc

  (* Serialization: u32 leaf count, u32 level count, then every level
     bottom-up as (u32 width, width * 32 raw bytes). Widths are derivable
     from the leaf count; writing them makes any shape damage a decode
     error rather than a silently wrong tree. *)
  let hash_len = 32

  let serialize t =
    let b = Buffer.create (64 + (2 * leaf_count t * hash_len)) in
    Frame.Wire.u32 b (leaf_count t);
    Frame.Wire.u32 b (Array.length t.layers);
    Array.iter
      (fun level ->
        Frame.Wire.u32 b (Array.length level);
        Array.iter
          (fun h ->
            if String.length h <> hash_len then
              invalid_arg "Merkle.Tree.serialize: bad hash length";
            Buffer.add_string b h)
          level)
      t.layers;
    Buffer.contents b

  let deserialize s =
    match
      let c = Frame.Wire.cursor s in
      let n = Frame.Wire.r_u32 c in
      let n_levels = Frame.Wire.r_u32 c in
      let widths = level_widths n in
      if List.length widths <> n_levels then Error "level count mismatch"
      else begin
        let layers =
          List.map
            (fun w ->
              if Frame.Wire.r_u32 c <> w then failwith "width mismatch"
              else Array.init w (fun _ -> Frame.Wire.r_fixed c hash_len))
            widths
        in
        if not (Frame.Wire.at_end c) then Error "trailing bytes"
        else Ok { layers = Array.of_list layers }
      end
    with
    | r -> r
    | exception Frame.Wire.Short -> Error "short input"
    | exception Failure msg -> Error msg
end

(* ------------------------------------------------------------------ *)
(* Flat-array conveniences                                             *)
(* ------------------------------------------------------------------ *)

let root leaves =
  (* Frontier accumulation: O(n) hashing, O(log n) live memory. *)
  let f = Frontier.create () in
  Array.iter (Frontier.add f) leaves;
  Frontier.root f

let proof leaves i = Tree.proof (Tree.of_leaf_hashes leaves) i

let verify ~root ~index ~count leaf path =
  if count <= 0 || index < 0 || index >= count then false
  else begin
    (* The iterative leaf-to-root walk of RFC 9162 §2.1.3.2: [fn] is the
       node index at the current level, [sn] the last index of that level.
       A set LSB (or fn = sn, the promoted right edge) means the sibling
       sits on the left. Allocates nothing beyond the log n interior
       hashes themselves. *)
    let fn = ref index and sn = ref (count - 1) in
    let r = ref leaf in
    let ok = ref true in
    let ctx = Sha256.init () in
    let node_hash = node_hash_with ctx in
    List.iter
      (fun p ->
        if !ok then
          if !sn = 0 then ok := false
          else begin
            if !fn land 1 = 1 || !fn = !sn then begin
              r := node_hash p !r;
              if !fn land 1 = 0 then
                while !fn land 1 = 0 && !fn <> 0 do
                  fn := !fn lsr 1;
                  sn := !sn lsr 1
                done
            end
            else r := node_hash !r p;
            fn := !fn lsr 1;
            sn := !sn lsr 1
          end)
      path;
    !ok && !sn = 0 && String.equal !r root
  end
