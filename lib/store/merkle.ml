open Chaoschain_crypto

let leaf_hash payload =
  let ctx = Sha256.init () in
  Sha256.feed ctx "\x00";
  Sha256.feed ctx payload;
  Sha256.finalize ctx

let node_hash l r =
  let ctx = Sha256.init () in
  Sha256.feed ctx "\x01";
  Sha256.feed ctx l;
  Sha256.feed ctx r;
  Sha256.finalize ctx

(* Largest power of two strictly less than [n] (n >= 2). *)
let split_point n =
  let k = ref 1 in
  while !k * 2 < n do
    k := !k * 2
  done;
  !k

let root leaves =
  let rec mth lo n =
    if n = 1 then leaves.(lo)
    else
      let k = split_point n in
      node_hash (mth lo k) (mth (lo + k) (n - k))
  in
  let n = Array.length leaves in
  if n = 0 then Sha256.digest "" else mth 0 n

let proof leaves i =
  let n = Array.length leaves in
  if i < 0 || i >= n then invalid_arg "Merkle.proof";
  (* Audit path ordered leaf-to-root: at each split, record the sibling
     subtree's root and recurse into the side holding [i]. *)
  let rec path lo n i =
    if n = 1 then []
    else
      let k = split_point n in
      let sub lo n =
        let rec mth lo n =
          if n = 1 then leaves.(lo)
          else
            let k = split_point n in
            node_hash (mth lo k) (mth (lo + k) (n - k))
        in
        mth lo n
      in
      if i < k then path lo k i @ [ sub (lo + k) (n - k) ]
      else path (lo + k) (n - k) (i - k) @ [ sub lo k ]
  in
  path 0 n i

let verify ~root ~index ~count leaf path =
  if count <= 0 || index < 0 || index >= count then false
  else
    (* Walk the path root-downwards by peeling siblings off the far end,
       mirroring the split structure of [proof]. *)
    let split_last l =
      match List.rev l with
      | [] -> None
      | last :: rev_rest -> Some (List.rev rev_rest, last)
    in
    let rec recompute index count path =
      if count = 1 then match path with [] -> Some leaf | _ -> None
      else
        match split_last path with
        | None -> None
        | Some (rest, sib) ->
            let k = split_point count in
            if index < k then
              Option.map (fun h -> node_hash h sib) (recompute index k rest)
            else
              Option.map
                (fun h -> node_hash sib h)
                (recompute (index - k) (count - k) rest)
    in
    match recompute index count path with
    | Some h -> String.equal h root
    | None -> false
