let header_size = 9

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF))

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let add b ~kind payload =
  if kind < 0 || kind > 0xFF then invalid_arg "Frame.add: kind";
  Buffer.add_char b (Char.chr kind);
  put_u32 b (String.length payload);
  put_u32 b (Crc32.digest payload);
  Buffer.add_string b payload

type read_result =
  | Frame of { kind : int; payload : string; next : int }
  | End
  | Truncated
  | Corrupt of string

let read seg off =
  let len = String.length seg in
  if off = len then End
  else if off > len then Corrupt "offset past end of segment"
  else if len - off < header_size then Truncated
  else
    let kind = Char.code seg.[off] in
    let plen = get_u32 seg (off + 1) in
    let crc = get_u32 seg (off + 5) in
    let body = off + header_size in
    if plen < 0 || plen > len - body then Truncated
    else if Crc32.digest_sub seg body plen <> crc then
      Corrupt (Printf.sprintf "CRC mismatch at offset %d" off)
    else
      Frame { kind; payload = String.sub seg body plen; next = body + plen }

type tail = Clean | Truncated_at of int | Corrupt_at of int * string

let fold seg ~init ~f =
  let rec go acc off =
    match read seg off with
    | End -> (acc, Clean)
    | Truncated -> (acc, Truncated_at off)
    | Corrupt msg -> (acc, Corrupt_at (off, msg))
    | Frame { kind; payload; next } -> go (f acc ~kind ~payload) next
  in
  go init 0

module Wire = struct
  exception Short

  let u8 b v =
    if v < 0 || v > 0xFF then invalid_arg "Wire.u8";
    Buffer.add_char b (Char.chr v)

  let u16 b v =
    if v < 0 || v > 0xFFFF then invalid_arg "Wire.u16";
    Buffer.add_char b (Char.chr (v land 0xFF));
    Buffer.add_char b (Char.chr (v lsr 8))

  let u32 b v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire.u32";
    put_u32 b v

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  type cursor = { src : string; mutable pos : int }

  let cursor src = { src; pos = 0 }
  let remaining c = String.length c.src - c.pos
  let at_end c = remaining c = 0

  let r_u8 c =
    if remaining c < 1 then raise Short;
    let v = Char.code c.src.[c.pos] in
    c.pos <- c.pos + 1;
    v

  let r_u16 c =
    if remaining c < 2 then raise Short;
    let v = Char.code c.src.[c.pos] lor (Char.code c.src.[c.pos + 1] lsl 8) in
    c.pos <- c.pos + 2;
    v

  let r_u32 c =
    if remaining c < 4 then raise Short;
    let v = get_u32 c.src c.pos in
    if v < 0 then raise Short;
    c.pos <- c.pos + 4;
    v

  let r_fixed c n =
    if n < 0 || remaining c < n then raise Short;
    let s = String.sub c.src c.pos n in
    c.pos <- c.pos + n;
    s

  let r_str c =
    let n = r_u32 c in
    r_fixed c n
end
