let header_size = 9

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF))

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let add b ~kind payload =
  if kind < 0 || kind > 0xFF then invalid_arg "Frame.add: kind";
  Buffer.add_char b (Char.chr kind);
  put_u32 b (String.length payload);
  put_u32 b (Crc32.digest payload);
  Buffer.add_string b payload

type read_result =
  | Frame of { kind : int; payload : string; next : int }
  | End
  | Truncated
  | Corrupt of string

let read seg off =
  let len = String.length seg in
  if off = len then End
  else if off > len then Corrupt "offset past end of segment"
  else if len - off < header_size then Truncated
  else
    let kind = Char.code seg.[off] in
    let plen = get_u32 seg (off + 1) in
    let crc = get_u32 seg (off + 5) in
    let body = off + header_size in
    if plen < 0 || plen > len - body then Truncated
    else if Crc32.digest_sub seg body plen <> crc then
      Corrupt (Printf.sprintf "CRC mismatch at offset %d" off)
    else
      Frame { kind; payload = String.sub seg body plen; next = body + plen }

type tail = Clean | Truncated_at of int | Corrupt_at of int * string

(* Allocation-free frame scanner: [next] advances over one frame without
   materialising the payload (no [String.sub], no result record), leaving
   the payload window in [kind]/[pos]/[len]. This is the segment-scan hot
   path — CRC-verifying a million-record segment allocates nothing — and
   payloads are only copied out by the callers that keep them. *)
module Cursor = struct
  type status = Item | Done | Truncated | Corrupt

  type t = {
    mutable seg : string;
    mutable off : int;  (** start of the NEXT frame *)
    mutable start : int;  (** start of the current frame *)
    mutable kind : int;
    mutable pos : int;  (** payload start of the current frame *)
    mutable len : int;
    mutable err : string;
  }

  let create seg =
    { seg; off = 0; start = 0; kind = 0; pos = 0; len = 0; err = "" }

  let reset t seg =
    t.seg <- seg;
    t.off <- 0;
    t.start <- 0;
    t.kind <- 0;
    t.pos <- 0;
    t.len <- 0;
    t.err <- ""

  let next t =
    let seg = t.seg in
    let off = t.off in
    let seg_len = String.length seg in
    if off = seg_len then Done
    else if off > seg_len || seg_len - off < header_size then begin
      t.start <- off;
      Truncated
    end
    else begin
      let plen = get_u32 seg (off + 1) in
      let body = off + header_size in
      if plen < 0 || plen > seg_len - body then begin
        t.start <- off;
        Truncated
      end
      else if Crc32.digest_sub seg body plen <> get_u32 seg (off + 5) then begin
        t.start <- off;
        t.err <- "CRC mismatch";
        Corrupt
      end
      else begin
        t.start <- off;
        t.kind <- Char.code seg.[off];
        t.pos <- body;
        t.len <- plen;
        t.off <- body + plen;
        Item
      end
    end

  let kind t = t.kind
  let pos t = t.pos
  let len t = t.len
  let start t = t.start
  let payload t = String.sub t.seg t.pos t.len

  let error t =
    Printf.sprintf "%s at offset %d" (if t.err = "" then "damage" else t.err)
      t.start
end

(* Validate (without allocating) that a whole, CRC-correct frame of [kind]
   sits at [off] and ends exactly at [next] — the per-record probe of an
   offset index: if every indexed frame checks out, the index tiles the
   segment and can be trusted for random access. *)
let check seg off ~kind ~next =
  let seg_len = String.length seg in
  off >= 0 && next <= seg_len
  && next - off >= header_size
  && Char.code seg.[off] = kind
  &&
  let plen = get_u32 seg (off + 1) in
  let body = off + header_size in
  body + plen = next
  && Crc32.digest_sub seg body plen = get_u32 seg (off + 5)

let fold seg ~init ~f =
  let c = Cursor.create seg in
  let rec go acc =
    match Cursor.next c with
    | Cursor.Done -> (acc, Clean)
    | Cursor.Truncated -> (acc, Truncated_at c.Cursor.start)
    | Cursor.Corrupt ->
        (acc, Corrupt_at (c.Cursor.start, Printf.sprintf "CRC mismatch at offset %d" c.Cursor.start))
    | Cursor.Item -> go (f acc ~kind:c.Cursor.kind ~payload:(Cursor.payload c))
  in
  go init

module Wire = struct
  exception Short

  let u8 b v =
    if v < 0 || v > 0xFF then invalid_arg "Wire.u8";
    Buffer.add_char b (Char.chr v)

  let u16 b v =
    if v < 0 || v > 0xFFFF then invalid_arg "Wire.u16";
    Buffer.add_char b (Char.chr (v land 0xFF));
    Buffer.add_char b (Char.chr (v lsr 8))

  let u32 b v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire.u32";
    put_u32 b v

  (* Two little-endian u32 halves. OCaml ints are 63-bit, which bounds
     representable values well past any segment size we will ever index. *)
  let u64 b v =
    if v < 0 then invalid_arg "Wire.u64";
    put_u32 b (v land 0xFFFFFFFF);
    put_u32 b ((v lsr 32) land 0xFFFFFFFF)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  type cursor = { src : string; mutable pos : int }

  let cursor src = { src; pos = 0 }
  let remaining c = String.length c.src - c.pos
  let at_end c = remaining c = 0

  let r_u8 c =
    if remaining c < 1 then raise Short;
    let v = Char.code c.src.[c.pos] in
    c.pos <- c.pos + 1;
    v

  let r_u16 c =
    if remaining c < 2 then raise Short;
    let v = Char.code c.src.[c.pos] lor (Char.code c.src.[c.pos + 1] lsl 8) in
    c.pos <- c.pos + 2;
    v

  let r_u32 c =
    if remaining c < 4 then raise Short;
    let v = get_u32 c.src c.pos in
    if v < 0 then raise Short;
    c.pos <- c.pos + 4;
    v

  let r_u64 c =
    let lo = r_u32 c in
    let hi = r_u32 c in
    (* The top two bits must be clear to fit a 63-bit OCaml int. *)
    if hi land 0xC0000000 <> 0 then raise Short;
    lo lor (hi lsl 32)

  let r_fixed c n =
    if n < 0 || remaining c < n then raise Short;
    let s = String.sub c.src c.pos n in
    c.pos <- c.pos + n;
    s

  let r_str c =
    let n = r_u32 c in
    r_fixed c n
end
