(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the frame
    checksum of the chainstore record codec. Implemented from scratch with a
    precomputed 256-entry table; digests are returned as non-negative [int]s
    in [0, 2^32). *)

val digest : string -> int
(** CRC-32 of the whole string. *)

val digest_sub : string -> int -> int -> int
(** [digest_sub s off len] — CRC-32 of [len] bytes of [s] starting at [off],
    without copying. Raises [Invalid_argument] if the range is out of
    bounds. *)
