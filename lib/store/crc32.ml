(* Reflected CRC-32, polynomial 0xEDB88320 (the PNG/gzip/802.3 one). OCaml
   ints are at least 63 bits on every platform we target, so the running
   register fits a plain [int] with a mask after each table step. *)

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let digest_sub s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc32.digest_sub";
  let crc = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    crc :=
      Array.unsafe_get table ((!crc lxor Char.code (String.unsafe_get s i)) land 0xFF)
      lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let digest s = digest_sub s 0 (String.length s)
