(* Parallel-runner injection point for the store layer.

   lib/store deliberately depends on nothing but the crypto library and
   unix, so it cannot reach the Domain pool in lib/measurement. Instead
   every scalable entry point ([Store.open_], [Store.audit],
   [Merkle.Tree.of_leaf_hashes], ...) accepts a runner of this shape and
   defaults to [seq]; the measurement layer passes
   [Pipeline.Pool.run pool] to fan the same work out over Domains. *)

type t = int -> (int -> unit) -> unit
(** [run n task] must execute [task 0 .. task (n-1)], in any order, and
    return only when all have finished. Tasks must be Domain-safe. *)

let seq : t =
 fun n task ->
  for i = 0 to n - 1 do
    task i
  done

(* Below this many items a parallel hand-off costs more than it saves;
   callers use it to fall back to the sequential loop. *)
let min_parallel = 4096

(* Drain [0, n) as [chunk]-sized slices through [par]: one task per slice
   keeps the per-item cost of the shared work counter negligible even for
   millions of sub-microsecond items. *)
let slices (par : t) ~n ~chunk f =
  if n > 0 then begin
    let chunk = max 1 chunk in
    let chunks = (n + chunk - 1) / chunk in
    par chunks (fun c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) in
        f ~lo ~hi)
  end
