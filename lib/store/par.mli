(** Parallel-runner injection point for the store layer.

    lib/store depends only on the crypto library and unix, so it cannot
    reach the Domain pool in lib/measurement. Scalable entry points
    ([Store.open_], [Store.audit], [Merkle.Tree.of_leaf_hashes], ...)
    instead accept a runner of this shape, defaulting to {!seq}; the
    measurement layer passes [Pipeline.Pool.run pool] to fan the same
    work out over Domains. *)

type t = int -> (int -> unit) -> unit
(** [run n task] must execute [task 0 .. task (n-1)], in any order, and
    return only when all have finished. Tasks must be Domain-safe. *)

val seq : t
(** The sequential runner: a plain [for] loop on the calling Domain. *)

val min_parallel : int
(** Below this many items a parallel hand-off costs more than it saves;
    callers fall back to the sequential loop. *)

val slices : t -> n:int -> chunk:int -> (lo:int -> hi:int -> unit) -> unit
(** [slices par ~n ~chunk f] drains [0, n) as [chunk]-sized half-open
    ranges [f ~lo ~hi] through [par] — one task per slice, so the shared
    work counter is touched once per thousands of items, not once per
    item. *)
