(** chainstore: an append-only, content-addressed, Merkle-indexed corpus
    store on disk.

    A store directory holds three segment files of CRC-protected {!Frame}s —
    [certs.seg] (raw certificate DER, content-addressed by SHA-256
    fingerprint and written exactly once), [obs.seg] (per-domain observation
    records referencing certificates by fingerprint) and [env.seg] (the
    trust environment needed to replay verification) — plus two small text
    files: [MANIFEST] (format version, population scale, record counts) and
    [ROOT] (the RFC 6962-style Merkle root over observation payloads, with a
    keyed self-authentication tag standing in for a log signature).

    Alongside each segment the writer persists {e derived} sidecars that
    make the store scale to Top-1M corpora: a per-segment offset index
    ([*.idx], see {!Index}) giving O(1) random access to record [i], and
    the full Merkle layer stack ([tree.mrk], see {!Merkle.Tree}) so an
    inclusion proof is O(log n) array reads instead of an O(n) rebuild.
    Both are CRC-protected, always validated against the frames before
    use, and rebuilt by {!audit} whenever missing or stale — losing them
    loses no data and can never corrupt a read.

    Writers are append-only; readers are strict (any CRC, count or Merkle
    mismatch refuses to open and points at {!audit}); {!audit} distinguishes
    a truncated tail — the expected crash artifact, repairable by truncating
    back to the last whole frame and re-anchoring the root — from interior
    corruption, which is reported as unrecoverable. *)

(** {1 Writing} *)

type writer

val create : string -> writer
(** [create dir] starts a fresh store, creating [dir] if needed and
    truncating any previous segments in it. *)

val add_cert : writer -> string -> string
(** [add_cert w der] content-addresses one certificate: returns its 32-byte
    SHA-256 fingerprint, appending a frame only the first time a given DER
    blob is seen. *)

val add_obs : writer -> string -> unit
(** Append one observation payload (see {!Frame.Wire} for the encoding
    helpers); it becomes the next Merkle leaf. The writer maintains the
    root incrementally through a {!Merkle.Frontier} — O(log n) memory,
    amortised O(1) hashing per append. *)

val add_env : writer -> string -> unit
(** Append one trust-environment payload. *)

val close : ?par:Par.t -> writer -> scale:float -> string
(** Flush segments, write the [*.idx] offset indexes, persist the Merkle
    layers to [tree.mrk] (built through [par] when provided), write
    [MANIFEST] and [ROOT], and return the Merkle root in hex. The writer
    must not be used afterwards. *)

(** {1 Reading} *)

type t

val open_ : ?par:Par.t -> ?use_index:bool -> string -> (t, string) result
(** Strict open: verifies every frame CRC, the manifest counts, and the
    Merkle root (including its authentication tag). Any mismatch — including
    a truncated tail — yields [Error] with a message naming the problem.

    When the offset indexes are present and agree with the frames
    (verified record-by-record, never assumed), payload extraction is
    random-access and chunked through [par]; pass [par] as
    [Pipeline.Pool.run pool] to spread CRC verification, leaf hashing and
    tree construction over the Domain pool. [use_index:false] forces the
    sequential scan (the two paths are byte-identical — pinned in CI). *)

val observations : t -> string array
(** Observation payloads in append order. *)

val env_entries : t -> string array
(** Environment payloads in append order. *)

val find_cert : t -> string -> string option
(** Look up a certificate's DER by its 32-byte fingerprint. *)

val cert_count : t -> int

val scale : t -> float
(** The population scale recorded at {!close} time. *)

val root_hex : t -> string
(** The verified Merkle root, in hex. *)

val tree : t -> Merkle.Tree.t
(** The Merkle tree over the observation payloads, rebuilt and verified
    at open time — proofs from it are O(log n). *)

(** {1 Random access} *)

type segment = Certs | Obs | Env

val read_record_at : string -> segment -> int -> (string, string) result
(** [read_record_at dir seg i] fetches record [i]'s payload with O(1) I/O:
    the offset index locates the frame, one seek + one bounded read
    fetches it, and the frame's CRC is verified. Any index problem —
    missing, stale, or offsets that do not parse as a whole frame of the
    right kind — silently falls back to {!read_record_seq}: the segment
    always wins over its index. *)

val read_record_seq : string -> segment -> int -> (string, string) result
(** Reference implementation of {!read_record_at}: walk the frames
    sequentially from the start of the segment, never touching the index.
    [Error] on damage or out-of-range index. *)

(** {1 Inclusion proofs} *)

type proof = {
  p_index : int;
  p_count : int;  (** total observation records under the root *)
  p_root_hex : string;  (** the authenticated root the path connects to *)
  p_leaf : string;  (** 32-byte leaf hash of the record payload *)
  p_path : string list;  (** sibling hashes, leaf to root *)
}

val inclusion_proof : string -> int -> (proof, string) result
(** [inclusion_proof dir i] proves observation [i] is covered by the
    store's authenticated ROOT. Fast path: record fetched through the
    offset index, audit path read off the persisted [tree.mrk] layers,
    then re-verified against ROOT — O(log n) hashing, no tree rebuild.
    If [tree.mrk] is missing, damaged, or fails verification, the tree is
    rebuilt from [obs.seg] (derived data never takes precedence over the
    frames). The returned proof always verifies against [p_root_hex]. *)

(** {1 Audit} *)

type audit_report = {
  a_ok : bool;  (** No unrecoverable damage found. *)
  a_repaired : bool;  (** At least one repair was performed. *)
  a_messages : string list;  (** Human-readable findings, in order. *)
}

val audit :
  ?par:Par.t -> ?repair:bool -> ?samples:int -> string -> audit_report
(** [audit dir] scans every segment frame-by-frame with the
    allocation-free cursor, verifies the Merkle root and its
    authentication tag, cross-checks the [*.idx] offset indexes and the
    persisted [tree.mrk] layers against the frames, and checks inclusion
    proofs for [samples] (default 8) evenly spread observation records.
    Leaf hashing and tree construction fan out over [par].

    With [repair] (default [true]) a truncated segment tail is cut back
    to the last whole frame, [MANIFEST]/[ROOT] are rewritten to match,
    and stale or missing sidecars are rebuilt from the frames; CRC
    corruption inside a segment is never repaired, makes [a_ok] false,
    and suppresses all repairs (the damaged store is evidence). *)

(** {1 Compaction} *)

type compact_report = {
  c_kept : int;
  c_dropped : int;
  c_bytes_before : int;  (** certs.seg size before, in bytes *)
  c_bytes_after : int;
}

val compact :
  ?par:Par.t -> live:(string -> bool) -> string -> (compact_report, string) result
(** [compact ~live dir] rewrites the content-addressed certificate
    segment keeping only certificates whose 32-byte fingerprint satisfies
    [live], preserving append order, then rewrites [certs.idx] and the
    MANIFEST count. The observation and environment segments — and hence
    ROOT and its self-authentication tag — are untouched by construction.
    The new segment lands via write-to-temp + atomic rename. Requires a
    store that opens strictly; returns the space reclaimed. *)
