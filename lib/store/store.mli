(** chainstore: an append-only, content-addressed, Merkle-indexed corpus
    store on disk.

    A store directory holds three segment files of CRC-protected {!Frame}s —
    [certs.seg] (raw certificate DER, content-addressed by SHA-256
    fingerprint and written exactly once), [obs.seg] (per-domain observation
    records referencing certificates by fingerprint) and [env.seg] (the
    trust environment needed to replay verification) — plus two small text
    files: [MANIFEST] (format version, population scale, record counts) and
    [ROOT] (the RFC 6962-style Merkle root over observation payloads, with a
    keyed self-authentication tag standing in for a log signature).

    Writers are append-only; readers are strict (any CRC, count or Merkle
    mismatch refuses to open and points at {!audit}); {!audit} distinguishes
    a truncated tail — the expected crash artifact, repairable by truncating
    back to the last whole frame and re-anchoring the root — from interior
    corruption, which is reported as unrecoverable. *)

(** {1 Writing} *)

type writer

val create : string -> writer
(** [create dir] starts a fresh store, creating [dir] if needed and
    truncating any previous segments in it. *)

val add_cert : writer -> string -> string
(** [add_cert w der] content-addresses one certificate: returns its 32-byte
    SHA-256 fingerprint, appending a frame only the first time a given DER
    blob is seen. *)

val add_obs : writer -> string -> unit
(** Append one observation payload (see {!Frame.Wire} for the encoding
    helpers); it becomes the next Merkle leaf. *)

val add_env : writer -> string -> unit
(** Append one trust-environment payload. *)

val close : writer -> scale:float -> string
(** Flush segments, write [MANIFEST] and [ROOT], and return the Merkle root
    in hex. The writer must not be used afterwards. *)

(** {1 Reading} *)

type t

val open_ : string -> (t, string) result
(** Strict open: verifies every frame CRC, the manifest counts, and the
    Merkle root (including its authentication tag). Any mismatch — including
    a truncated tail — yields [Error] with a message naming the problem. *)

val observations : t -> string array
(** Observation payloads in append order. *)

val env_entries : t -> string array
(** Environment payloads in append order. *)

val find_cert : t -> string -> string option
(** Look up a certificate's DER by its 32-byte fingerprint. *)

val cert_count : t -> int

val scale : t -> float
(** The population scale recorded at {!close} time. *)

val root_hex : t -> string
(** The verified Merkle root, in hex. *)

(** {1 Audit} *)

type audit_report = {
  a_ok : bool;  (** No unrecoverable damage found. *)
  a_repaired : bool;  (** At least one repair was performed. *)
  a_messages : string list;  (** Human-readable findings, in order. *)
}

val audit : ?repair:bool -> ?samples:int -> string -> audit_report
(** [audit dir] scans every segment frame-by-frame, verifies the Merkle
    root and its authentication tag, and checks inclusion proofs for
    [samples] (default 8) evenly spread observation records. With [repair]
    (default [true]) a truncated segment tail is cut back to the last whole
    frame and [MANIFEST]/[ROOT] are rewritten to match; CRC corruption
    inside a segment is never repaired and makes [a_ok] false. *)
