open Chaoschain_x509
module Prng = Chaoschain_crypto.Prng
module Certmsg = Chaoschain_tlssim.Certmsg

type vantage = { name : string; reached : int; unreachable : int }

type dataset = {
  vantages : vantage list;
  domains : (string * Cert.t list) array;
  chain_fps : string array;
  flags : int array;
  unique_chains : int;
  unique_certs : int;
  tls12_tls13_identical_pct : float;
}

let flag_us = 1
let flag_au = 2
let flag_identical = 4

(* Loss rates chosen to reproduce the paper's per-vantage totals:
   870,113 / 906,336 and 867,374 / 906,336. *)
let loss_us = 1.0 -. (870_113.0 /. 906_336.0)
let loss_au = 1.0 -. (867_374.0 /. 906_336.0)

(* One scanned domain, before the sequential reduce. *)
type probe = {
  p_domain : string;
  p_certs : Cert.t list;
  p_fp : string;
  p_us : bool;
  p_au : bool;
  p_identical : bool;
}

let chain_fingerprint certs =
  Chaoschain_crypto.Sha256.digest (String.concat "" (List.map Cert.fingerprint certs))

let scan ?(jobs = 1) ?(format = Certmsg.Tls12) (p : Population.t) =
  let n = Population.size p in
  (* The parallel stage: per-shard PRNG streams (derived from the shard index,
     never from a shared generator) decide reachability and TLS 1.2/1.3
     agreement, and every chain takes BOTH wire round-trips — the TLS 1.2
     bare certificate_list and the TLS 1.3 per-entry framing — exactly what
     a dual-version ZGrab would have received. The two decodes must agree
     certificate-for-certificate (a codec divergence here is a bug, not
     noise); [format] selects which framing's parse populates the dataset.
     The shard plan depends only on [n], so the dataset is byte-identical
     for every [jobs] — and for either [format]. *)
  let probes =
    Pipeline.map_shards ~jobs
      (fun ~shard slice ->
        let rng = Prng.of_label (Shard.label ~base:"scanner" shard) in
        Array.map
          (fun r ->
            let us = not (Prng.bernoulli rng loss_us) in
            let au = not (Prng.bernoulli rng loss_au) in
            (* 98.8% of dual-stack domains answer TLS 1.2 and 1.3 identically;
               the simulation serves the same chain on both, minus the same
               noise the paper attributes to version-specific frontends. *)
            let identical = Prng.bernoulli rng 0.988 in
            let decode fmt =
              let wire =
                Certmsg.encode (Certmsg.of_certs fmt r.Population.chain)
              in
              match Certmsg.decode fmt wire with
              | Ok msg -> Certmsg.certs msg
              | Error e ->
                  invalid_arg
                    (Printf.sprintf "Scanner: TLS %s wire round-trip failed: %s"
                       (Certmsg.format_to_string fmt) e)
            in
            let c12 = decode Certmsg.Tls12 and c13 = decode Certmsg.Tls13 in
            if not (List.equal Cert.equal c12 c13) then
              invalid_arg "Scanner: TLS 1.2 and 1.3 decodes disagree";
            let certs =
              match format with Certmsg.Tls12 -> c12 | Certmsg.Tls13 -> c13
            in
            { p_domain = r.Population.domain;
              p_certs = certs;
              p_fp = chain_fingerprint certs;
              p_us = us;
              p_au = au;
              p_identical = identical })
          slice)
      p.Population.domains
  in
  (* The sequential reduce: vantage totals and fingerprint dedup tables. *)
  let reached_us = ref 0 and reached_au = ref 0 and identical = ref 0 in
  let chain_fps = Hashtbl.create (2 * n) and cert_fps = Hashtbl.create (4 * n) in
  Array.iter
    (fun pr ->
      if pr.p_us then incr reached_us;
      if pr.p_au then incr reached_au;
      if pr.p_identical then incr identical;
      Hashtbl.replace chain_fps pr.p_fp ();
      List.iter (fun c -> Hashtbl.replace cert_fps (Cert.fingerprint c) ()) pr.p_certs)
    probes;
  { vantages =
      [ { name = "US"; reached = !reached_us; unreachable = n - !reached_us };
        { name = "AU"; reached = !reached_au; unreachable = n - !reached_au } ];
    domains = Array.map (fun pr -> (pr.p_domain, pr.p_certs)) probes;
    chain_fps = Array.map (fun pr -> pr.p_fp) probes;
    flags =
      Array.map
        (fun pr ->
          (if pr.p_us then flag_us else 0)
          lor (if pr.p_au then flag_au else 0)
          lor if pr.p_identical then flag_identical else 0)
        probes;
    unique_chains = Hashtbl.length chain_fps;
    unique_certs = Hashtbl.length cert_fps;
    tls12_tls13_identical_pct = 100.0 *. float_of_int !identical /. float_of_int n }
