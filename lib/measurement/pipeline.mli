(** The Domain-parallel, deduplicating measurement pipeline.

    Work is cut into the deterministic {!Shard} plan and drained by a
    fixed-size pool of OCaml 5 Domains ([jobs] workers). Results are merged in
    shard order, so for every [jobs >= 1] the output is byte-identical to the
    purely sequential path taken when [jobs = 1]. Per-shard randomness must be
    derived from [Prng.of_label (Shard.label ...)] — never from a shared
    mutable generator — which is what makes the contract hold.

    The {!Memo} cache deduplicates expensive per-chain work (compliance
    classification, differential testing) across the many domains that serve
    an identical chain; it is safe to share one cache between all workers. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the whole machine. *)

(** A reusable worker-Domain pool. The offline maps below create a transient
    pool per call; a long-lived consumer (the chaind query service) creates
    one pool at startup and pushes successive micro-batches through {!Pool.run}
    without paying a Domain spawn/join per batch. *)
module Pool : sig
  type t

  val create : jobs:int -> t
  (** Spawns [jobs - 1] worker Domains ([jobs] is clamped to [>= 1]); the
      calling Domain participates in every {!run}. *)

  val jobs : t -> int

  val run : t -> int -> (int -> unit) -> unit
  (** [run t n task] executes [task 0 .. task (n-1)], drained from a shared
      atomic counter by all workers plus the caller; returns when every task
      has finished. [jobs = 1] (or [n = 1]) runs sequentially on the caller.
      A task exception is captured (the remaining tasks of the batch still
      run) and re-raised here. Not reentrant: one [run] at a time. *)

  val shutdown : t -> unit
  (** Joins the workers. The pool must not be used afterwards. *)
end

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel [Array.map]. [jobs] defaults to 1; any value
    [<= 1] takes the sequential code path ([Array.map] itself). The function
    must be safe to call from multiple Domains (pure, or synchronised). *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map} with the global element index. *)

val map_shards :
  ?jobs:int -> (shard:int -> 'a array -> 'b array) -> 'a array -> 'b array
(** Shard-at-a-time variant: the callback receives the shard index (for PRNG
    derivation via [Shard.label]) and one slice of the input, and must return
    exactly one output per input element. Results are merged in shard order.
    With [jobs <= 1] the shards run sequentially, in index order, on the
    calling Domain — same shards, same labels, same output. *)

(** Memoisation cache keyed by chain fingerprint, shared across workers. *)
module Memo : sig
  type 'a t

  val create : unit -> 'a t

  val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
  (** [find_or_add t key f] returns the cached value for [key], computing it
      with [f] on a miss. Two workers racing on the same key may both run [f];
      deterministic [f] makes that harmless (first insert wins). [f] runs
      outside the cache lock, so it may itself take locks. *)

  val size : 'a t -> int
  (** Distinct keys cached so far. *)

  val hits : 'a t -> int
  (** Lookups answered from the cache (the dedup win). *)
end
