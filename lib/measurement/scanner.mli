(** The simulated ZGrab-style collection (section 3.1): two vantage points
    scan the population over TLS 1.2, each missing a small, partially
    overlapping fraction of domains (network noise); the analysis dataset is
    the union. Certificate messages travel through the real wire codec.

    The scan runs on the {!Pipeline}: domains are cut into the deterministic
    {!Shard} plan, each shard draws from its own label-derived PRNG stream,
    and a pool of [jobs] Domains drains the shards. The dataset is
    byte-identical for every [jobs] value. *)

open Chaoschain_x509

type vantage = { name : string; reached : int; unreachable : int }

type dataset = {
  vantages : vantage list;
  domains : (string * Cert.t list) array;  (** the union dataset *)
  chain_fps : string array;
      (** per-domain chain fingerprint (SHA-256 over the certificate
          fingerprints), aligned with [domains]; the dedup key downstream
          stages memoise on *)
  flags : int array;
      (** per-domain probe outcome bits ({!flag_us}, {!flag_au},
          {!flag_identical}), aligned with [domains] — enough to rebuild the
          vantage totals and the TLS 1.2/1.3 agreement statistic from a
          persisted corpus *)
  unique_chains : int;
  unique_certs : int;
  tls12_tls13_identical_pct : float;
      (** share of domains answering both versions with the same chain *)
}

val flag_us : int
(** The domain answered the US vantage. *)

val flag_au : int
(** The domain answered the AU vantage. *)

val flag_identical : int
(** TLS 1.2 and 1.3 served the same chain. *)

val chain_fingerprint : Cert.t list -> string
(** SHA-256 of the concatenated certificate fingerprints — the canonical
    chain identity used by the memo caches. *)

val scan :
  ?jobs:int -> ?format:Chaoschain_tlssim.Certmsg.format -> Population.t ->
  dataset
(** Deterministic per population, for any [jobs] (default 1 = sequential).
    Every served chain is encoded into a TLS Certificate message under BOTH
    wire formats and re-parsed; the two decodes are cross-checked
    certificate-for-certificate and [format] (default [Tls12]) selects which
    parse populates the dataset — so the dataset contains exactly what the
    wire carried, identically for either framing. *)
