(** Deterministic sharding of the measurement corpus.

    The shard plan is a pure function of the array length alone — never of the
    worker count — so the per-shard PRNG streams (seeded from the shard index,
    see {!label}) and therefore every measured number are identical no matter
    how many Domains execute the plan. A fixed-size Domain pool drains the
    shards as a work queue; results are merged back in shard order, keeping
    the output byte-identical to a sequential run. *)

type slice = {
  index : int;  (** shard number, [0 .. count-1] *)
  start : int;  (** first element (inclusive) *)
  stop : int;   (** last element (exclusive) *)
}

val target_size : int
(** Elements per shard the planner aims for (the last shard may be smaller). *)

val count : int -> int
(** [count n] is the number of shards for an [n]-element corpus: at least 1
    for non-empty input, 0 for [n = 0]. Independent of the worker count. *)

val plan : int -> slice array
(** [plan n] covers [0 .. n-1] with contiguous, disjoint slices in index
    order. *)

val split : 'a array -> 'a array array
(** Materialise the plan: [split arr] is one sub-array per slice, in shard
    order. [merge (split arr)] reconstructs [arr] exactly. *)

val merge : 'a array array -> 'a array
(** Concatenate per-shard results back in shard order. *)

val label : base:string -> int -> string
(** [label ~base i] is the PRNG derivation label for shard [i], e.g.
    ["scanner/shard-0017"]; feed it to [Prng.of_label] so every shard owns a
    disjoint, stable random stream. *)
