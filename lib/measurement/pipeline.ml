let default_jobs () = Domain.recommended_domain_count ()

(* Drain [n] tasks with [jobs] Domains pulling indices from a shared atomic
   counter. The caller's Domain works too, so [jobs = 2] spawns one extra
   Domain. Worker exceptions propagate through Domain.join. *)
let run_tasks ~jobs n task =
  if n > 0 then begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          task i;
          loop ()
        end
      in
      loop ()
    in
    let spawned = min (jobs - 1) (n - 1) in
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end

let map_shards ?(jobs = 1) f arr =
  let slices = Shard.plan (Array.length arr) in
  let run_slice (s : Shard.slice) =
    let out = f ~shard:s.Shard.index (Array.sub arr s.Shard.start (s.Shard.stop - s.Shard.start)) in
    if Array.length out <> s.Shard.stop - s.Shard.start then
      invalid_arg "Pipeline.map_shards: callback changed the slice length";
    out
  in
  if jobs <= 1 then Shard.merge (Array.map run_slice slices)
  else begin
    let results = Array.make (Array.length slices) [||] in
    run_tasks ~jobs (Array.length slices) (fun i -> results.(i) <- run_slice slices.(i));
    Shard.merge results
  end

let mapi ?jobs f arr =
  map_shards ?jobs
    (fun ~shard slice ->
      let base = shard * Shard.target_size in
      Array.mapi (fun i x -> f (base + i) x) slice)
    arr

let map ?jobs f arr = map_shards ?jobs (fun ~shard:_ slice -> Array.map f slice) arr

module Memo = struct
  type 'a t = {
    table : (string, 'a) Hashtbl.t;
    lock : Mutex.t;
    mutable hit_count : int;
  }

  let create () = { table = Hashtbl.create 4096; lock = Mutex.create (); hit_count = 0 }

  let find_or_add t key f =
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.table key with
    | Some v ->
        t.hit_count <- t.hit_count + 1;
        Mutex.unlock t.lock;
        v
    | None ->
        Mutex.unlock t.lock;
        (* Computed outside the lock: [f] may be slow and may itself fetch
           through the (independently locked) AIA repository. A concurrent
           duplicate computation returns an equal value; first insert wins. *)
        let v = f () in
        Mutex.lock t.lock;
        let v =
          match Hashtbl.find_opt t.table key with
          | Some prior -> prior
          | None ->
              Hashtbl.add t.table key v;
              v
        in
        Mutex.unlock t.lock;
        v

  let size t = Hashtbl.length t.table
  let hits t = t.hit_count
end
