let default_jobs () = Domain.recommended_domain_count ()

(* A reusable pool of worker Domains. Batch runs (the offline measurement
   path) create one per map call, exactly as before; the long-lived chaind
   service keeps a single pool alive and pushes micro-batch after micro-batch
   through it, avoiding a Domain spawn/join per batch. Each [run] is an
   epoch: the caller publishes (n, task) under the lock, bumps the epoch and
   wakes the workers; everyone (caller included) drains indices from a shared
   atomic counter; the caller returns when all workers have retired the
   epoch. Worker exceptions are captured and re-raised from [run]. *)
module Pool = struct
  type t = {
    jobs : int;
    lock : Mutex.t;
    work : Condition.t;   (* a new epoch was published, or shutdown *)
    retired : Condition.t;(* a worker finished the current epoch *)
    next : int Atomic.t;
    mutable epoch : int;
    mutable n : int;
    mutable task : int -> unit;
    mutable busy : int;   (* workers still draining the current epoch *)
    mutable failure : exn option;
    mutable closing : bool;
    mutable domains : unit Domain.t list;
  }

  let drain t n task =
    let rec go () =
      let i = Atomic.fetch_and_add t.next 1 in
      if i < n then begin
        (match task i with
        | () -> ()
        | exception e ->
            Mutex.lock t.lock;
            if t.failure = None then t.failure <- Some e;
            Mutex.unlock t.lock);
        go ()
      end
    in
    go ()

  let create ~jobs =
    let jobs = max 1 jobs in
    let t =
      {
        jobs;
        lock = Mutex.create ();
        work = Condition.create ();
        retired = Condition.create ();
        next = Atomic.make 0;
        epoch = 0;
        n = 0;
        task = ignore;
        busy = 0;
        failure = None;
        closing = false;
        domains = [];
      }
    in
    let worker () =
      let seen = ref 0 in
      Mutex.lock t.lock;
      let rec loop () =
        if t.closing then Mutex.unlock t.lock
        else if t.epoch > !seen then begin
          seen := t.epoch;
          let n = t.n and task = t.task in
          Mutex.unlock t.lock;
          drain t n task;
          Mutex.lock t.lock;
          t.busy <- t.busy - 1;
          if t.busy = 0 then Condition.broadcast t.retired;
          loop ()
        end
        else begin
          Condition.wait t.work t.lock;
          loop ()
        end
      in
      loop ()
    in
    t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn worker);
    t

  let jobs t = t.jobs

  let reraise_failure t =
    (* Called with the lock held, after the epoch fully retired. *)
    match t.failure with
    | None -> Mutex.unlock t.lock
    | Some e ->
        t.failure <- None;
        Mutex.unlock t.lock;
        raise e

  let run t n task =
    if n > 0 then
      if t.jobs = 1 || n = 1 then
        for i = 0 to n - 1 do
          task i
        done
      else begin
        Mutex.lock t.lock;
        t.n <- n;
        t.task <- task;
        Atomic.set t.next 0;
        t.busy <- t.jobs - 1;
        t.epoch <- t.epoch + 1;
        Condition.broadcast t.work;
        Mutex.unlock t.lock;
        drain t n task;
        Mutex.lock t.lock;
        while t.busy > 0 do
          Condition.wait t.retired t.lock
        done;
        reraise_failure t
      end

  let shutdown t =
    Mutex.lock t.lock;
    t.closing <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    List.iter Domain.join t.domains;
    t.domains <- []
end

(* Drain [n] tasks with [jobs] Domains pulling indices from a shared atomic
   counter, on a pool created for this one call (the caller's Domain works
   too, so [jobs = 2] spawns one extra Domain). Worker exceptions propagate
   out of [Pool.run]. *)
let run_tasks ~jobs n task =
  if n > 0 then begin
    let pool = Pool.create ~jobs:(min jobs n) in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.run pool n task)
  end

let map_shards ?(jobs = 1) f arr =
  let slices = Shard.plan (Array.length arr) in
  let run_slice (s : Shard.slice) =
    let out = f ~shard:s.Shard.index (Array.sub arr s.Shard.start (s.Shard.stop - s.Shard.start)) in
    if Array.length out <> s.Shard.stop - s.Shard.start then
      invalid_arg "Pipeline.map_shards: callback changed the slice length";
    out
  in
  if jobs <= 1 then Shard.merge (Array.map run_slice slices)
  else begin
    let results = Array.make (Array.length slices) [||] in
    run_tasks ~jobs (Array.length slices) (fun i -> results.(i) <- run_slice slices.(i));
    Shard.merge results
  end

let mapi ?jobs f arr =
  map_shards ?jobs
    (fun ~shard slice ->
      let base = shard * Shard.target_size in
      Array.mapi (fun i x -> f (base + i) x) slice)
    arr

let map ?jobs f arr = map_shards ?jobs (fun ~shard:_ slice -> Array.map f slice) arr

module Memo = struct
  type 'a t = {
    table : (string, 'a) Hashtbl.t;
    lock : Mutex.t;
    mutable hit_count : int;
  }

  let create () = { table = Hashtbl.create 4096; lock = Mutex.create (); hit_count = 0 }

  let find_or_add t key f =
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.table key with
    | Some v ->
        t.hit_count <- t.hit_count + 1;
        Mutex.unlock t.lock;
        v
    | None ->
        Mutex.unlock t.lock;
        (* Computed outside the lock: [f] may be slow and may itself fetch
           through the (independently locked) AIA repository. A concurrent
           duplicate computation returns an equal value; first insert wins. *)
        let v = f () in
        Mutex.lock t.lock;
        let v =
          match Hashtbl.find_opt t.table key with
          | Some prior -> prior
          | None ->
              Hashtbl.add t.table key v;
              v
        in
        Mutex.unlock t.lock;
        v

  let size t = Hashtbl.length t.table
  let hits t = t.hit_count
end
