open Chaoschain_x509
open Chaoschain_core
open Chaoschain_pki
module Store = Chaoschain_store.Store
module Wire = Chaoschain_store.Frame.Wire

(* Record encodings (all payloads little-endian via [Wire]):

   observation (version 1):
     u8 version, str domain, u8 flags, u32 n, n * 32-byte fingerprints

   environment (version 1), one record per entry, tagged:
     tag 0  root store: u8 slot (0-3 = programs, 4 = union), str name, fps
     tag 1  AIA entry: str uri, u8 kind (0 cert / 1 not-found / 2 timeout),
            fingerprint if kind = 0
     tag 2  Firefox intermediate cache: fps
     tag 3  OS intermediate store: fps
     tag 4  timestamp: u16 year, u8 month/day/hh/mm/ss

   Environment records are written in a fixed order (stores by slot, AIA
   sorted by URI, caches, timestamp) so the segment bytes never depend on
   hash-table iteration order. *)

let version = 1
let fp_len = 32

let tag_store = 0
let tag_aia = 1
let tag_firefox = 2
let tag_os = 3
let tag_now = 4

let union_slot = 4

let slot_of_program p =
  match p with
  | Root_store.Mozilla -> 0
  | Root_store.Chrome -> 1
  | Root_store.Microsoft -> 2
  | Root_store.Apple -> 3

type summary = { s_records : int; s_certs : int; s_root_hex : string }

let save ~dir (analysis : Experiments.analysis) =
  let dataset = analysis.Experiments.dataset in
  let pop = analysis.Experiments.pop in
  let env = Population.env pop in
  let w = Store.create dir in
  let certs_seen = Hashtbl.create 1024 in
  let add_cert c =
    let fp = Store.add_cert w (Cert.to_der c) in
    Hashtbl.replace certs_seen fp ();
    fp
  in
  let put_fps b certs =
    let fps = List.map add_cert certs in
    Wire.u32 b (List.length fps);
    List.iter (Buffer.add_string b) fps
  in
  (* Observations, in dataset order. *)
  Array.iteri
    (fun i (domain, certs) ->
      let b = Buffer.create 256 in
      Wire.u8 b version;
      Wire.str b domain;
      Wire.u8 b dataset.Scanner.flags.(i);
      put_fps b certs;
      Store.add_obs w (Buffer.contents b))
    dataset.Scanner.domains;
  (* Environment, in fixed order. *)
  let add_env f =
    let b = Buffer.create 256 in
    Wire.u8 b version;
    f b;
    Store.add_env w (Buffer.contents b)
  in
  let put_store b ~slot st =
    Wire.u8 b tag_store;
    Wire.u8 b slot;
    Wire.str b (Root_store.name st);
    put_fps b (Root_store.certs st)
  in
  List.iter
    (fun p ->
      add_env (fun b ->
          put_store b ~slot:(slot_of_program p) (env.Difftest.store_of p)))
    Root_store.all_programs;
  add_env (fun b ->
      put_store b ~slot:union_slot
        (Universe.union_store pop.Population.universe));
  List.iter
    (fun (uri, entry) ->
      add_env (fun b ->
          Wire.u8 b tag_aia;
          Wire.str b uri;
          match entry with
          | `Cert c ->
              Wire.u8 b 0;
              Buffer.add_string b (add_cert c)
          | `Not_found -> Wire.u8 b 1
          | `Timeout -> Wire.u8 b 2))
    (Aia_repo.entries env.Difftest.aia);
  add_env (fun b ->
      Wire.u8 b tag_firefox;
      put_fps b env.Difftest.firefox_cache);
  add_env (fun b ->
      Wire.u8 b tag_os;
      put_fps b env.Difftest.os_store);
  add_env (fun b ->
      Wire.u8 b tag_now;
      let y, m, d = Vtime.ymd env.Difftest.now in
      let hh, mm, ss = Vtime.hms env.Difftest.now in
      Wire.u16 b y;
      Wire.u8 b m;
      Wire.u8 b d;
      Wire.u8 b hh;
      Wire.u8 b mm;
      Wire.u8 b ss);
  let root_hex = Store.close w ~scale:pop.Population.scale in
  {
    s_records = Array.length dataset.Scanner.domains;
    s_certs = Hashtbl.length certs_seen;
    s_root_hex = root_hex;
  }

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

type loaded = {
  l_dataset : Scanner.dataset;
  l_env : Difftest.env;
  l_union_store : Root_store.t;
  l_scale : float;
  l_records : int;
  l_certs : int;
  l_root_hex : string;
}

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* Light payload walk collecting every certificate fingerprint the
   observation and environment records reference — no certificate
   decoding, no env reconstruction. This is the liveness set segment
   compaction keeps. *)
let referenced_fps st =
  let tbl = Hashtbl.create 1024 in
  let add_fps c =
    let n = Wire.r_u32 c in
    for _ = 1 to n do
      Hashtbl.replace tbl (Wire.r_fixed c fp_len) ()
    done
  in
  Array.iter
    (fun payload ->
      let c = Wire.cursor payload in
      ignore (Wire.r_u8 c : int);
      ignore (Wire.r_str c : string);
      ignore (Wire.r_u8 c : int);
      add_fps c)
    (Store.observations st);
  Array.iter
    (fun payload ->
      let c = Wire.cursor payload in
      ignore (Wire.r_u8 c : int);
      let tag = Wire.r_u8 c in
      if tag = tag_store then begin
        ignore (Wire.r_u8 c : int);
        ignore (Wire.r_str c : string);
        add_fps c
      end
      else if tag = tag_aia then begin
        ignore (Wire.r_str c : string);
        if Wire.r_u8 c = 0 then Hashtbl.replace tbl (Wire.r_fixed c fp_len) ()
      end
      else if tag = tag_firefox || tag = tag_os then add_fps c)
    (Store.env_entries st);
  tbl

(* Segment scanning, leaf hashing and Merkle construction inside
   [Store.open_] fan out over a transient Domain pool when [jobs > 1];
   the decoded result is identical for any [jobs]. *)
let with_par ~jobs f =
  if jobs <= 1 then f Chaoschain_store.Par.seq
  else begin
    let pool = Pipeline.Pool.create ~jobs in
    Fun.protect
      ~finally:(fun () -> Pipeline.Pool.shutdown pool)
      (fun () -> f (Pipeline.Pool.run pool))
  end

let load ?(jobs = 1) ?(use_index = true) dir =
  match with_par ~jobs (fun par -> Store.open_ ~par ~use_index dir) with
  | Error e -> Error e
  | Ok st -> (
      try
        (* Every certificate decodes through [Intern], so replay shares
           parsed certificates exactly like the live wire-decode path. *)
        let by_fp = Hashtbl.create (Store.cert_count st) in
        let cert_of_fp fp =
          match Hashtbl.find_opt by_fp fp with
          | Some c -> c
          | None -> (
              match Store.find_cert st fp with
              | None ->
                  fail "corpus: dangling certificate reference %s"
                    (Chaoschain_crypto.Hex.encode fp)
              | Some der -> (
                  match Intern.cert_of_der der with
                  | Ok c ->
                      Hashtbl.add by_fp fp c;
                      c
                  | Error e -> fail "corpus: certificate does not decode: %s" e))
        in
        let r_fps c =
          let n = Wire.r_u32 c in
          List.init n (fun _ -> cert_of_fp (Wire.r_fixed c fp_len))
        in
        let r_version c =
          let v = Wire.r_u8 c in
          if v <> version then fail "corpus: unsupported record version %d" v
        in
        (* Observations. *)
        let obs =
          Array.map
            (fun payload ->
              let c = Wire.cursor payload in
              r_version c;
              let domain = Wire.r_str c in
              let flags = Wire.r_u8 c in
              let certs = r_fps c in
              if not (Wire.at_end c) then
                fail "corpus: trailing bytes in observation record";
              (domain, flags, certs))
            (Store.observations st)
        in
        (* Environment. *)
        let stores = Array.make 5 None in
        let aia = Aia_repo.create () in
        let firefox = ref None and os = ref None and now = ref None in
        Array.iter
          (fun payload ->
            let c = Wire.cursor payload in
            r_version c;
            let tag = Wire.r_u8 c in
            if tag = tag_store then begin
              let slot = Wire.r_u8 c in
              let name = Wire.r_str c in
              if slot > union_slot then fail "corpus: bad store slot %d" slot;
              stores.(slot) <- Some (Root_store.make name (r_fps c))
            end
            else if tag = tag_aia then begin
              let uri = Wire.r_str c in
              match Wire.r_u8 c with
              | 0 -> Aia_repo.publish aia ~uri (cert_of_fp (Wire.r_fixed c fp_len))
              | 1 -> Aia_repo.inject_failure aia ~uri `Not_found
              | 2 -> Aia_repo.inject_failure aia ~uri `Timeout
              | k -> fail "corpus: bad AIA entry kind %d" k
            end
            else if tag = tag_firefox then firefox := Some (r_fps c)
            else if tag = tag_os then os := Some (r_fps c)
            else if tag = tag_now then begin
              let y = Wire.r_u16 c in
              let m = Wire.r_u8 c in
              let d = Wire.r_u8 c in
              let hh = Wire.r_u8 c in
              let mm = Wire.r_u8 c in
              let ss = Wire.r_u8 c in
              now := Some (Vtime.make ~y ~m ~d ~hh ~mm ~ss ())
            end
            else fail "corpus: unknown environment tag %d" tag;
            if not (Wire.at_end c) then
              fail "corpus: trailing bytes in environment record")
          (Store.env_entries st);
        let required what = function
          | Some v -> v
          | None -> fail "corpus: environment is missing its %s record" what
        in
        let program_stores =
          Array.map
            (fun p ->
              required
                (Printf.sprintf "%s root-store" (Root_store.program_to_string p))
                stores.(slot_of_program p))
            [| Root_store.Mozilla; Root_store.Chrome; Root_store.Microsoft;
               Root_store.Apple |]
        in
        let union_store = required "union root-store" stores.(union_slot) in
        let env =
          {
            Difftest.store_of = (fun p -> program_stores.(slot_of_program p));
            aia;
            firefox_cache = required "Firefox cache" !firefox;
            os_store = required "OS store" !os;
            now = required "timestamp" !now;
          }
        in
        (* Rebuild the dataset statistics from the observation records. *)
        let n = Array.length obs in
        let reached_us = ref 0 and reached_au = ref 0 and identical = ref 0 in
        let chain_tbl = Hashtbl.create (2 * n)
        and cert_tbl = Hashtbl.create (4 * n) in
        let chain_fps =
          Array.map
            (fun (_, flags, certs) ->
              if flags land Scanner.flag_us <> 0 then incr reached_us;
              if flags land Scanner.flag_au <> 0 then incr reached_au;
              if flags land Scanner.flag_identical <> 0 then incr identical;
              let fp = Scanner.chain_fingerprint certs in
              Hashtbl.replace chain_tbl fp ();
              List.iter
                (fun c -> Hashtbl.replace cert_tbl (Cert.fingerprint c) ())
                certs;
              fp)
            obs
        in
        let dataset =
          {
            Scanner.vantages =
              [ { Scanner.name = "US"; reached = !reached_us;
                  unreachable = n - !reached_us };
                { Scanner.name = "AU"; reached = !reached_au;
                  unreachable = n - !reached_au } ];
            domains = Array.map (fun (d, _, certs) -> (d, certs)) obs;
            chain_fps;
            flags = Array.map (fun (_, flags, _) -> flags) obs;
            unique_chains = Hashtbl.length chain_tbl;
            unique_certs = Hashtbl.length cert_tbl;
            tls12_tls13_identical_pct =
              100.0 *. float_of_int !identical /. float_of_int n;
          }
        in
        Ok
          {
            l_dataset = dataset;
            l_env = env;
            l_union_store = union_store;
            l_scale = Store.scale st;
            l_records = n;
            l_certs = Store.cert_count st;
            l_root_hex = Store.root_hex st;
          }
      with
      | Bad msg -> Error msg
      | Wire.Short -> Error "corpus: short or malformed record payload")

let analyze ?(jobs = 1) l =
  (* Mirrors [Experiments.analyze]: classify each unique chain once, keyed
     by its fingerprint, and fan the cached chain report back out. *)
  let store = l.l_union_store in
  let aia = l.l_env.Difftest.aia in
  let memo = Pipeline.Memo.create () in
  let items =
    Pipeline.mapi ~jobs
      (fun i (domain, chain) ->
        let cr =
          Pipeline.Memo.find_or_add memo l.l_dataset.Scanner.chain_fps.(i)
            (fun () -> Compliance.analyze_chain ~store ~aia chain)
        in
        (domain, chain, Compliance.localize ~domain chain cr))
      l.l_dataset.Scanner.domains
  in
  {
    Experiments.v_dataset = l.l_dataset;
    v_env = l.l_env;
    v_items = items;
    v_jobs = jobs;
    v_memo = Pipeline.Memo.create ();
  }
