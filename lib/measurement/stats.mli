(** Counting helpers shared by the experiment suite.

    Formatting lives in [Chaoschain_report.Report.Cell] (these are aliases);
    table construction and rendering moved to the report IR
    ([Chaoschain_report.Report]) entirely. *)

val pct : int -> int -> string
(** [pct part whole] like ["92.5%"]; ["~0%"] for tiny non-zero shares;
    ["n/a"] when [whole] is zero (total — never ["nan%"]). *)

val count_pct : int -> int -> string
(** ["838,354 (92.5%)"]. *)

val with_commas : int -> string
(** Thousands separators. *)

val apportion : total:int -> weights:(string * int) list -> (string * int) list
(** Largest-remainder apportionment of [total] across the weighted buckets;
    the result sums exactly to [total]. Weights of zero receive zero. *)
