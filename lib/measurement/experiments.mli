(** The reproduction suite: one entry per table and figure of the paper, each
    rendering the measured result next to the paper's reported value.

    [analyze] runs the server-side compliance pipeline once over a generated
    population; individual experiments reuse that shared analysis. [run_all]
    is what [bench/main.exe] and EXPERIMENTS.md generation call. *)

open Chaoschain_x509
open Chaoschain_core

type analysis = {
  pop : Population.t;
  dataset : Scanner.dataset;
  reports : (Population.record * Compliance.report) array;
  jobs : int;  (** Domain-pool size the downstream experiments reuse *)
  difftest_memo : Difftest.case Pipeline.Memo.t;
      (** analysis-wide cache: each unique chain is diff-tested once *)
}

val analyze :
  ?jobs:int -> ?format:Chaoschain_tlssim.Certmsg.format -> Population.t ->
  analysis
(** Scan then classify the population on the {!Pipeline}: the corpus is
    sharded deterministically, a pool of [jobs] Domains (default 1 =
    sequential) drains the shards, and each unique chain — keyed by its
    fingerprint from the scan — is classified once and fanned back out. The
    result is byte-identical for every [jobs] value (and for either wire
    [format] the scan parses the dataset from; see {!Scanner.scan}). *)

val difftest_record : analysis -> Population.record -> Difftest.case
(** Differential-test one domain through the analysis-wide memo. *)

type view = {
  v_dataset : Scanner.dataset;
  v_env : Difftest.env;
  v_items : (string * Cert.t list * Compliance.report) array;
      (** one (domain, served chain, report) per domain, in dataset order *)
  v_jobs : int;
  v_memo : Difftest.case Pipeline.Memo.t;
}
(** The slice of an analysis that a persisted corpus can reproduce: served
    chains, compliance reports and the trust environment — no synthetic
    population labels. The live scan builds one with {!view}; replay builds
    one from disk ([Corpus.analyze]); {!scan_results} renders both through
    the same code, which is what makes replayed tables byte-identical. *)

val view : analysis -> view

val difftest_item : view -> domain:string -> Cert.t list -> Difftest.case
(** {!difftest_record} for a view item: memoised by
    [Difftest.chain_key], relabelled with [domain]. *)

type result = Chaoschain_report.Report.t = {
  id : string;  (** e.g. ["table3"] *)
  title : string;
  blocks : Chaoschain_report.Report.block list;
      (** the typed document; render with [Report.to_text] (ASCII, what the
          sprintf bodies used to be), [to_json] or [to_markdown] *)
}

val table1 : unit -> result
val table2 : unit -> result
val table3 : analysis -> result
val table4 : unit -> result
val table5 : analysis -> result
val table6 : analysis -> result
val table7 : analysis -> result
val table8 : analysis -> result
val table9 : unit -> result
val table10 : analysis -> result
val table11 : analysis -> result
val figure1 : analysis -> result
val figure2 : analysis -> result
val figure3 : analysis -> result
val figure4 : analysis -> result
val figure5 : analysis -> result
val section5_2 : analysis -> result

val section6 : analysis -> result
(** Section 6 made executable: remediation advice, the capability-ablation
    ladder behind the section 6.2 claim, and the issuer-tie statistics. *)

val dataset_overview : analysis -> result
(** The section 3.1 collection statistics (vantage totals, unique chains and
    certificates, TLS 1.2/1.3 agreement). *)

val table_results : view -> result list
(** The cheap store-reproducible subset (no differential testing): dataset
    overview and tables 3, 5 and 7. [chaoscheck diff] and the chaind
    [experiments] stats block use this. *)

val scan_results : view -> result list
(** The store-reproducible subset, in paper order: dataset overview, tables
    3, 5 and 7, and section 5.2. [chaoscheck scan] and [chaoscheck replay]
    both print exactly this list. *)

val run_all : analysis -> result list
(** Every experiment, in paper order. *)
