open Chaoschain_x509
module Certmsg = Chaoschain_tlssim.Certmsg
module Report = Chaoschain_report.Report

type chain_stats = { cs_chains : int; cs_domains : int }

type format_agreement = {
  fa_chains : int;
  fa_agree : int;
  fa_bytes12 : int;
  fa_bytes13 : int;
}

type t = {
  domains : int;
  unique_chains : int;
  unique_certs : int;
  subject_keys : int;
  issuer_keys : int;
  ordered : chain_stats;
  unordered : chain_stats;
  with_duplicates : chain_stats;
  self_contained : chain_stats;
  transvalid : chain_stats;
  unbuildable : chain_stats;
  with_unused : chain_stats;
  agreement : format_agreement;
}

(* Loose DN index key: RFC 5280 name chaining compares caseIgnore with
   whitespace runs folded, so the hashtable key lowercases the rendered DN;
   candidates behind one key are still confirmed with [Dn.equal]. *)
let dn_key dn = String.lowercase_ascii (Dn.to_string dn)

(* Walk from the leaf towards a self-signed root, pulling each next hop from
   [lookup] (either the sent list or the corpus-wide subject index); cycles
   are cut on certificate fingerprints. Returns the path and whether it
   reached a self-signed certificate. *)
let build_path ~lookup leaf =
  let rec go acc seen c =
    if Cert.is_self_signed c then (List.rev (c :: acc), true)
    else
      let next =
        List.find_opt
          (fun cand ->
            (not (List.mem (Cert.fingerprint cand) seen))
            && Dn.equal (Cert.subject cand) (Cert.issuer c))
          (lookup (Cert.issuer c))
      in
      match next with
      | None -> (List.rev (c :: acc), false)
      | Some n -> go (c :: acc) (Cert.fingerprint n :: seen) n
  in
  go [] [ Cert.fingerprint leaf ] leaf

(* Leaf-first with every adjacent pair name-chained (RFC 8446: each
   certificate certifies the one preceding it). A single certificate is
   trivially ordered; an empty list is not a chain. *)
let is_ordered = function
  | [] -> false
  | chain ->
      let rec pairs = function
        | a :: (b :: _ as rest) ->
            Dn.equal (Cert.issuer a) (Cert.subject b) && pairs rest
        | [ _ ] | [] -> true
      in
      pairs chain

(* One unique chain's classification. *)
type info = {
  i_domains : int;
  i_dups : bool;
  i_ordered : bool;
  i_self_contained : bool;
  i_built : bool;  (* includes self-contained *)
  i_unused : bool;
}

let classify_chain ~by_subject chain domains =
  let fps = List.map Cert.fingerprint chain in
  let dups = List.length fps <> List.length (List.sort_uniq compare fps) in
  let in_sent dn =
    List.filter (fun c -> Dn.equal (Cert.subject c) dn) chain
  in
  let in_corpus dn =
    (* sent certificates first: a self-contained chain must not be counted
       transvalid just because the corpus also knows its issuers *)
    in_sent dn
    @ (match Hashtbl.find_opt by_subject (dn_key dn) with
      | Some certs -> certs
      | None -> [])
  in
  match chain with
  | [] ->
      { i_domains = domains; i_dups = dups; i_ordered = false;
        i_self_contained = false; i_built = false; i_unused = false }
  | leaf :: _ ->
      let _, self_contained = build_path ~lookup:in_sent leaf in
      let path, built = build_path ~lookup:in_corpus leaf in
      let unused =
        built
        && List.exists
             (fun c ->
               not
                 (List.exists (fun p -> Cert.equal p c) path))
             chain
      in
      { i_domains = domains; i_dups = dups; i_ordered = is_ordered chain;
        i_self_contained = self_contained; i_built = built;
        i_unused = unused }

let round_trip acc chain =
  let encode fmt = Certmsg.encode (Certmsg.of_certs fmt chain) in
  let wire12 = encode Certmsg.Tls12 and wire13 = encode Certmsg.Tls13 in
  let decode fmt wire =
    match Certmsg.decode fmt wire with
    | Ok msg -> Some (Certmsg.certs msg)
    | Error _ -> None
  in
  let agree =
    match (decode Certmsg.Tls12 wire12, decode Certmsg.Tls13 wire13) with
    | Some a, Some b -> List.equal Cert.equal a b
    | _ -> false
  in
  {
    fa_chains = acc.fa_chains + 1;
    fa_agree = (acc.fa_agree + if agree then 1 else 0);
    fa_bytes12 = acc.fa_bytes12 + String.length wire12;
    fa_bytes13 = acc.fa_bytes13 + String.length wire13;
  }

let run pairs =
  (* Dedup chains (by fingerprint concatenation) and certificates. *)
  let chains = Hashtbl.create 256 and order = ref [] in
  let certs = Hashtbl.create 1024 in
  Array.iter
    (fun (_, chain) ->
      let key = String.concat "" (List.map Cert.fingerprint chain) in
      (match Hashtbl.find_opt chains key with
      | Some (c, n) -> Hashtbl.replace chains key (c, n + 1)
      | None ->
          Hashtbl.add chains key (chain, 1);
          order := key :: !order);
      List.iter (fun c -> Hashtbl.replace certs (Cert.fingerprint c) c) chain)
    pairs;
  let order = List.rev !order in
  (* The parsifal-style indexes over unique certificates. *)
  let by_subject = Hashtbl.create (Hashtbl.length certs) in
  let by_issuer = Hashtbl.create (Hashtbl.length certs) in
  let index tbl key c =
    let prev = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
    Hashtbl.replace tbl key (prev @ [ c ])
  in
  Hashtbl.iter
    (fun _ c ->
      index by_subject (dn_key (Cert.subject c)) c;
      index by_issuer (dn_key (Cert.issuer c)) c)
    certs;
  let infos =
    List.map
      (fun key ->
        let chain, n = Hashtbl.find chains key in
        (chain, classify_chain ~by_subject chain n))
      order
  in
  let bucket pred =
    List.fold_left
      (fun acc (_, i) ->
        if pred i then
          { cs_chains = acc.cs_chains + 1;
            cs_domains = acc.cs_domains + i.i_domains }
        else acc)
      { cs_chains = 0; cs_domains = 0 }
      infos
  in
  let agreement =
    List.fold_left
      (fun acc (chain, _) -> round_trip acc chain)
      { fa_chains = 0; fa_agree = 0; fa_bytes12 = 0; fa_bytes13 = 0 }
      infos
  in
  {
    domains = Array.length pairs;
    unique_chains = List.length infos;
    unique_certs = Hashtbl.length certs;
    subject_keys = Hashtbl.length by_subject;
    issuer_keys = Hashtbl.length by_issuer;
    ordered = bucket (fun i -> i.i_ordered);
    unordered = bucket (fun i -> not i.i_ordered);
    with_duplicates = bucket (fun i -> i.i_dups);
    self_contained = bucket (fun i -> i.i_self_contained);
    transvalid = bucket (fun i -> i.i_built && not i.i_self_contained);
    unbuildable = bucket (fun i -> not i.i_built);
    with_unused = bucket (fun i -> i.i_unused);
    agreement;
  }

let report t =
  let open Report in
  let corpus =
    let b = Table.create ~title:"Corpus indexes"
        ~header:[ ""; "count" ] in
    Table.row b [ text "domains"; count t.domains ];
    Table.row b [ text "unique chains"; count t.unique_chains ];
    Table.row b [ text "unique certificates"; count t.unique_certs ];
    Table.row b [ text "distinct subject DNs"; count t.subject_keys ];
    Table.row b [ text "distinct issuer DNs"; count t.issuer_keys ];
    Table.block b
  in
  let classes =
    let b =
      Table.create ~title:"Chain classes"
        ~header:[ "class"; "chains"; "% chains"; "domains" ]
    in
    let row label (s : chain_stats) =
      Table.row b
        [ text label; count s.cs_chains;
          percent ~num:s.cs_chains ~den:t.unique_chains;
          count s.cs_domains ]
    in
    row "ordered (leaf-first)" t.ordered;
    row "unordered" t.unordered;
    row "with duplicate certificates" t.with_duplicates;
    Table.sep b;
    row "self-contained (sent certs reach a root)" t.self_contained;
    row "transvalid (buildable with corpus issuers)" t.transvalid;
    row "unbuildable" t.unbuildable;
    row "with unused certificates" t.with_unused;
    Table.block b
  in
  let formats =
    let a = t.agreement in
    let b =
      Table.create ~title:"Certificate-message framings"
        ~header:[ ""; "value" ]
    in
    Table.row b [ text "chains round-tripped"; count a.fa_chains ];
    Table.row b
      [ text "TLS 1.2/1.3 decode agreement";
        count_pct ~num:a.fa_agree ~den:a.fa_chains ];
    Table.row b [ text "TLS 1.2 wire bytes (total)"; count a.fa_bytes12 ];
    Table.row b [ text "TLS 1.3 wire bytes (total)"; count a.fa_bytes13 ];
    Table.row b
      [ text "TLS 1.3 framing overhead (bytes)";
        count (a.fa_bytes13 - a.fa_bytes12) ];
    Table.block b
  in
  {
    id = "classify";
    title = "Corpus chain classification";
    blocks = [ corpus; classes; formats ];
  }
