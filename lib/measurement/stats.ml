module Report = Chaoschain_report.Report

(* Formatting is centralised in [Report.Cell]; these aliases keep the
   historical call sites (and make [pct] total: a zero denominator renders
   "n/a" instead of a NaN). *)
let with_commas = Report.Cell.with_commas
let pct = Report.Cell.pct_string
let count_pct = Report.Cell.count_pct_string

let apportion ~total ~weights =
  let wsum = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  if wsum = 0 then List.map (fun (k, _) -> (k, 0)) weights
  else begin
    let exact =
      List.map
        (fun (k, w) ->
          let share = float_of_int total *. float_of_int w /. float_of_int wsum in
          (k, int_of_float share, share -. Float.of_int (int_of_float share)))
        weights
    in
    let floor_sum = List.fold_left (fun acc (_, fl, _) -> acc + fl) 0 exact in
    let leftover = total - floor_sum in
    (* Give one extra unit to the largest remainders. *)
    let order =
      List.mapi (fun i (k, fl, rem) -> (i, k, fl, rem)) exact
      |> List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare b a)
    in
    let bumped =
      List.mapi (fun rank (i, k, fl, _) -> (i, k, if rank < leftover then fl + 1 else fl)) order
      |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
    in
    List.map (fun (_, k, v) -> (k, v)) bumped
  end
