(** Persisting a measurement run as a chainstore corpus, and replaying it.

    [save] walks an analysis in dataset order and writes three kinds of
    content-addressed records: every certificate's DER exactly once
    (deduplicated by SHA-256 fingerprint), one observation record per domain
    (domain, probe-outcome flags, chain as a fingerprint list), and the full
    trust environment — the four program root stores plus their union, the
    AIA repository including injected failures, the Firefox intermediate
    cache, the Windows OS store and the measurement timestamp — so that
    [load] can rebuild a {!Difftest.env} without regenerating the synthetic
    population. Certificates are re-decoded through {!Intern}, so a replay
    deduplicates parses exactly like the live decode path.

    [analyze] then reproduces the compliance classification over the loaded
    corpus as an {!Experiments.view}: rendered through
    {!Experiments.scan_results} it is byte-identical to the direct scan, for
    any [jobs]. *)

open Chaoschain_core
open Chaoschain_pki
module Store = Chaoschain_store.Store

type summary = { s_records : int; s_certs : int; s_root_hex : string }

val save : dir:string -> Experiments.analysis -> summary
(** Write the corpus under [dir] (created if needed, truncating any previous
    store there). Deterministic: byte-identical output for any [jobs] the
    analysis ran with. *)

type loaded = {
  l_dataset : Scanner.dataset;  (** rebuilt from observation records *)
  l_env : Difftest.env;
  l_union_store : Root_store.t;
  l_scale : float;  (** population scale recorded at save time *)
  l_records : int;
  l_certs : int;
  l_root_hex : string;  (** the verified Merkle root *)
}

val load : ?jobs:int -> ?use_index:bool -> string -> (loaded, string) result
(** Strict open + decode; any integrity or format problem is an [Error].
    With [jobs > 1] the store open (CRC verification, index probing, leaf
    hashing, Merkle construction) fans out over a transient Domain pool;
    [use_index:false] forces the sequential segment scan. The decoded
    result is identical for any [jobs] and either index setting. *)

val referenced_fps : Store.t -> (string, unit) Hashtbl.t
(** Every certificate fingerprint the observation and environment records
    reference — the liveness set for {!Store.compact}. Light payload walk
    only (no certificate decoding); raises {!Frame.Wire.Short} on a
    malformed record, which a strictly opened store never has. *)

val analyze : ?jobs:int -> loaded -> Experiments.view
(** Re-run the compliance classification from disk, sharded over [jobs]
    Domains (default 1), memoised per unique chain fingerprint — mirroring
    [Experiments.analyze] over the live population. *)
