type slice = { index : int; start : int; stop : int }

(* Small enough that a Top-1M run exposes thousands of units of work (good
   load balancing for any realistic pool size), large enough that the
   per-shard spawn/merge overhead is noise. *)
let target_size = 512

let count n = if n <= 0 then 0 else (n + target_size - 1) / target_size

let plan n =
  Array.init (count n) (fun i ->
      { index = i; start = i * target_size; stop = min n ((i + 1) * target_size) })

let split arr =
  Array.map
    (fun s -> Array.sub arr s.start (s.stop - s.start))
    (plan (Array.length arr))

let merge shards = Array.concat (Array.to_list shards)

let label ~base i = Printf.sprintf "%s/shard-%04d" base i
