(** Corpus chain classification — the parsifal-style query over a scanned
    (or replayed) dataset.

    [run] builds two hashtable indexes over the corpus's unique
    certificates — by subject DN and by issuer DN, keyed loosely per RFC
    5280 name chaining — and classifies every unique chain against them:

    - is the sent list leaf-first and properly ordered?
    - does it contain bit-for-bit duplicate certificates?
    - is it self-contained (a path from the leaf to a self-signed root
      using only sent certificates)?
    - if not, is it {e transvalid} — buildable once the corpus-wide subject
      index supplies the missing issuers?
    - how many sent certificates go unused by the built path?

    Each unique chain is also round-tripped through BOTH TLS Certificate
    wire framings ({!Chaoschain_tlssim.Certmsg}); the decoded lists are
    compared certificate-for-certificate and the per-format message sizes
    accumulated, giving the corpus-wide decode-agreement figure that
    [chaoscheck classify] reports. *)

open Chaoschain_x509

type chain_stats = {
  cs_chains : int;   (** unique chains in this bucket *)
  cs_domains : int;  (** domains serving one of them *)
}

type format_agreement = {
  fa_chains : int;  (** unique chains round-tripped *)
  fa_agree : int;   (** both framings decoded to the same certificate list *)
  fa_bytes12 : int; (** total TLS 1.2 Certificate-message bytes *)
  fa_bytes13 : int; (** total TLS 1.3 Certificate-message bytes *)
}

type t = {
  domains : int;
  unique_chains : int;
  unique_certs : int;
  subject_keys : int;  (** distinct (loose) subject DNs in the corpus *)
  issuer_keys : int;   (** distinct (loose) issuer DNs in the corpus *)
  ordered : chain_stats;
  unordered : chain_stats;
  with_duplicates : chain_stats;
  self_contained : chain_stats;
  transvalid : chain_stats;     (** buildable only with corpus help *)
  unbuildable : chain_stats;
  with_unused : chain_stats;    (** sent certificates off the built path *)
  agreement : format_agreement;
}

val run : (string * Cert.t list) array -> t
(** Classify a dataset's [(domain, served chain)] pairs. Deterministic:
    depends only on the array contents. *)

val report : t -> Chaoschain_report.Report.t
(** Render as the typed report IR ([id = "classify"]) for the text, JSON
    and Markdown renderers. *)
