open Chaoschain_x509
open Chaoschain_core
open Chaoschain_pki
module C = Calibration
module R = Chaoschain_report.Report

type analysis = {
  pop : Population.t;
  dataset : Scanner.dataset;
  reports : (Population.record * Compliance.report) array;
  jobs : int;
  difftest_memo : Difftest.case Pipeline.Memo.t;
}

let analyze ?(jobs = 1) ?format pop =
  let dataset = Scanner.scan ~jobs ?format pop in
  let store = Universe.union_store pop.Population.universe in
  let aia = Universe.aia pop.Population.universe in
  (* Each unique chain is classified once; the per-domain leaf-placement
     verdict is attached when the cached chain report is fanned back out. *)
  let memo = Pipeline.Memo.create () in
  let reports =
    Pipeline.mapi ~jobs
      (fun i r ->
        let cr =
          Pipeline.Memo.find_or_add memo dataset.Scanner.chain_fps.(i) (fun () ->
              Compliance.analyze_chain ~store ~aia r.Population.chain)
        in
        (r, Compliance.localize ~domain:r.Population.domain r.Population.chain cr))
      pop.Population.domains
  in
  { pop; dataset; reports; jobs; difftest_memo = Pipeline.Memo.create () }

(* Differential-test one domain, reusing the analysis-wide memo: chains with
   the same fingerprint (and the same leaf/domain match bit) are tested once
   and relabelled for every domain serving them. *)
let difftest_record analysis (r : Population.record) =
  let env = Population.env analysis.pop in
  let case =
    Pipeline.Memo.find_or_add analysis.difftest_memo
      (Difftest.chain_key ~domain:r.Population.domain r.Population.chain)
      (fun () -> Difftest.run_case env ~domain:r.Population.domain r.Population.chain)
  in
  Difftest.with_domain ~domain:r.Population.domain case

(* One [result] per table/figure: the typed report IR, rendered downstream
   with [Report.to_text] / [to_json] / [to_markdown]. *)
type result = R.t = {
  id : string;
  title : string;
  blocks : R.block list;
}

let count_where analysis p =
  Array.fold_left (fun acc rc -> if p rc then acc + 1 else acc) 0 analysis.reports

(* The paper's non-compliance notion for the 26,361 total: order violation or
   incomplete chain (leaf "Other" chains are excluded, as in section 4). *)
let paper_non_compliant_report rep =
  (not rep.Compliance.order.Order_check.ordered)
  || rep.Compliance.completeness.Completeness.verdict = Completeness.Incomplete

let paper_non_compliant (_, rep) = paper_non_compliant_report rep

(* A [view] is the slice of an analysis the persisted corpus can reproduce:
   no [Population.record]s (vendor and software labels are synthetic and not
   stored), just each domain's served chain and its compliance report plus
   the trust environment. Both the live path ([view] below) and the replay
   path ([Corpus.analyze]) build one, so the replayed tables render through
   exactly the code the direct scan used — byte-identical by construction. *)
type view = {
  v_dataset : Scanner.dataset;
  v_env : Difftest.env;
  v_items : (string * Cert.t list * Compliance.report) array;
  v_jobs : int;
  v_memo : Difftest.case Pipeline.Memo.t;
}

let view analysis =
  {
    v_dataset = analysis.dataset;
    v_env = Population.env analysis.pop;
    v_items =
      Array.map
        (fun (r, rep) -> (r.Population.domain, r.Population.chain, rep))
        analysis.reports;
    v_jobs = analysis.jobs;
    v_memo = analysis.difftest_memo;
  }

let difftest_item view ~domain chain =
  let case =
    Pipeline.Memo.find_or_add view.v_memo (Difftest.chain_key ~domain chain)
      (fun () -> Difftest.run_case view.v_env ~domain chain)
  in
  Difftest.with_domain ~domain case

(* --- Table 1 --- *)

let table1 () =
  let t =
    R.Table.create ~title:"Table 1: client chain-building coverage, BetterTLS vs this work"
      ~header:[ "Capability"; "BetterTLS"; "This work" ]
  in
  List.iter
    (fun c ->
      R.Table.row t
        [ R.text c.Capability.capability;
          R.text (if c.Capability.better_tls then "yes" else "no");
          R.text (if c.Capability.this_work then "yes" else "no") ])
    Capability.betterlts_comparison;
  { id = "table1"; title = "Table 1"; blocks = [ R.Table.block t ] }

(* --- Table 2 --- *)

let table2 () =
  let t =
    R.Table.create ~title:"Table 2: certificate chain construction capability tests"
      ~header:[ "#"; "Capability"; "Test case" ]
  in
  List.iteri
    (fun i test ->
      R.Table.row t
        [ R.int (i + 1);
          R.text (Capability.test_name test);
          R.text (Capability.test_case_notation test) ])
    Capability.all_tests;
  { id = "table2"; title = "Table 2"; blocks = [ R.Table.block t ] }

(* --- Table 3 --- *)

(* The compliance tables (3, 5, 7) depend only on the report array, so they
   have report-level cores shared between the live analysis and a replayed
   corpus view. *)

let count_reports reports p =
  Array.fold_left (fun acc rep -> if p rep then acc + 1 else acc) 0 reports

let table3_reports reports =
  let n = Array.length reports in
  let count v = count_reports reports (fun rep -> rep.Compliance.leaf = v) in
  let t =
    R.Table.create ~title:"Table 3: leaf certificate deployment"
      ~header:[ "Place"; "Match"; "# domains (measured)"; "paper" ]
  in
  let row place mat v ~paper ~pct ~tol =
    R.Table.row t
      [ R.text place; R.text mat;
        R.count_pct ~num:(count v) ~den:n |> R.near ~paper ~pct ~tol;
        R.text paper ]
  in
  row "yes" "yes" Leaf_check.Correct_matched
    ~paper:"838,354 (92.5%)" ~pct:92.5 ~tol:2.0;
  row "yes" "no" Leaf_check.Correct_mismatched
    ~paper:"62,536 (6.9%)" ~pct:6.9 ~tol:2.0;
  row "no" "yes" Leaf_check.Incorrect_matched
    ~paper:"0 (~0%)" ~pct:0.0 ~tol:0.5;
  row "no" "no" Leaf_check.Incorrect_mismatched
    ~paper:"1 (~0%)" ~pct:0.0 ~tol:0.5;
  row "Other" "" Leaf_check.Other ~paper:"5,445 (0.6%)" ~pct:0.6 ~tol:1.0;
  { id = "table3"; title = "Table 3"; blocks = [ R.Table.block t ] }

let table3 analysis = table3_reports (Array.map snd analysis.reports)

(* --- Table 4 --- *)

let table4 () =
  let module H = Chaoschain_deployment.Http_server in
  let softwares =
    [ H.Apache_pre_2_4_8; H.Apache; H.Nginx; H.Azure_app_gateway; H.Iis; H.Aws_elb ]
  in
  let labels = List.map (fun s -> List.map fst (H.table4_row s)) softwares |> List.hd in
  let t =
    R.Table.create ~title:"Table 4: SSL deployment characteristics across HTTP servers"
      ~header:("Characteristic" :: List.map H.software_to_string softwares)
  in
  List.iter
    (fun label ->
      R.Table.row t
        (R.text label
        :: List.map (fun s -> R.text (List.assoc label (H.table4_row s))) softwares))
    labels;
  { id = "table4"; title = "Table 4"; blocks = [ R.Table.block t ] }

(* --- Table 5 --- *)

let table5_reports reports =
  let bad =
    Array.to_list reports
    |> List.filter (fun rep -> not rep.Compliance.order.Order_check.ordered)
  in
  let nbad = List.length bad in
  let c p = List.length (List.filter (fun rep -> p rep.Compliance.order) bad) in
  let t =
    R.Table.create ~title:"Table 5: chains with non-compliant issuance order"
      ~header:[ "Type"; "measured"; "paper" ]
  in
  let row label num ~paper ~pct ~tol =
    R.Table.row t
      [ R.text label;
        R.count_pct ~num ~den:nbad |> R.near ~paper ~pct ~tol;
        R.text paper ]
  in
  row "Duplicate Certificates" (c Order_check.has_duplicates)
    ~paper:"5,974 (35.2%)" ~pct:35.2 ~tol:10.0;
  row "Irrelevant Certificates" (c Order_check.has_irrelevant)
    ~paper:"3,032 (17.9%)" ~pct:17.9 ~tol:10.0;
  row "Multiple Paths" (c (fun o -> o.Order_check.multiple_paths))
    ~paper:"246 (1.5%)" ~pct:1.5 ~tol:12.0;
  row "Reversed Sequences" (c Order_check.has_reversed)
    ~paper:"8,566 (50.5%)" ~pct:50.5 ~tol:12.0;
  R.Table.sep t;
  R.Table.row t
    [ R.text "Total"; R.count nbad; R.text "16,952" |> R.paper "16,952" ];
  (* The section 4.2 sub-statistics. *)
  let dup_kind k =
    List.length
      (List.filter
         (fun rep ->
           List.exists (fun (kind, _) -> kind = k) rep.Compliance.order.Order_check.duplicates)
         bad)
  in
  let all_rev =
    List.length
      (List.filter (fun rep -> rep.Compliance.order.Order_check.all_paths_reversed) bad)
  in
  {
    id = "table5";
    title = "Table 5";
    blocks =
      [ R.Table.block t;
        R.line
          [ R.S "duplicate leaf / intermediate / root chains: ";
            R.C (R.int (dup_kind Order_check.Dup_leaf)); R.S " / ";
            R.C (R.int (dup_kind Order_check.Dup_intermediate)); R.S " / ";
            R.C (R.int (dup_kind Order_check.Dup_root));
            R.S " (paper: 4,730 / 1,354 / 401)" ];
        R.line
          [ R.S "chains with every path reversed: "; R.C (R.int all_rev);
            R.S " (paper: 8,370 of 8,566)" ] ];
  }

let table5 analysis = table5_reports (Array.map snd analysis.reports)

(* --- Table 6 --- *)

let table6 analysis =
  let module V = Chaoschain_deployment.Ca_vendor in
  let u = analysis.pop.Population.universe in
  let vendors =
    [ Universe.Lets_encrypt; Universe.Zerossl; Universe.Gogetssl; Universe.Trustico;
      Universe.Cyber_folks ]
  in
  let rows = List.map (fun v -> (v, V.table6_row u v)) vendors in
  let labels = List.map fst (snd (List.hd rows)) in
  let t =
    R.Table.create ~title:"Table 6: SSL issuance characteristics of CAs/resellers"
      ~header:("Characteristic" :: List.map Universe.vendor_to_string vendors)
  in
  List.iter
    (fun label ->
      R.Table.row t
        (R.text label
        :: List.map (fun (_, row) -> R.text (List.assoc label row)) rows))
    labels;
  { id = "table6"; title = "Table 6"; blocks = [ R.Table.block t ] }

(* --- Table 7 --- *)

let table7_reports reports =
  let n = Array.length reports in
  let c v =
    count_reports reports (fun rep ->
        rep.Compliance.completeness.Completeness.verdict = v)
  in
  let t =
    R.Table.create ~title:"Table 7: completeness of certificate chains"
      ~header:[ "Type"; "measured"; "paper" ]
  in
  let row label num ~paper ~pct ~tol =
    R.Table.row t
      [ R.text label;
        R.count_pct ~num ~den:n |> R.near ~paper ~pct ~tol;
        R.text paper ]
  in
  row "Complete Chain w/ Root" (c Completeness.Complete_with_root)
    ~paper:"79,144 (8.7%)" ~pct:8.7 ~tol:2.0;
  row "Complete Chain w/o Root" (c Completeness.Complete_without_root)
    ~paper:"815,105 (89.9%)" ~pct:89.9 ~tol:2.0;
  row "Incomplete Chain" (c Completeness.Incomplete)
    ~paper:"12,087 (1.3%)" ~pct:1.3 ~tol:2.0;
  let inc =
    Array.to_list reports
    |> List.filter_map (fun rep ->
           match rep.Compliance.completeness.Completeness.verdict with
           | Completeness.Incomplete -> Some rep.Compliance.completeness
           | _ -> None)
  in
  let ninc = List.length inc in
  let cause p = List.length (List.filter p inc) in
  let recoverable =
    cause (fun c -> match c.Completeness.cause with Some (Completeness.Recoverable _) -> true | _ -> false)
  in
  let missing1 =
    cause (fun c -> c.Completeness.cause = Some (Completeness.Recoverable 1))
  in
  {
    id = "table7";
    title = "Table 7";
    blocks =
      [ R.Table.block t;
        R.line
          [ R.S "incomplete chains missing a single intermediate: ";
            R.C
              (R.count_pct ~num:missing1 ~den:ninc
              |> R.near ~paper:"8,729 / 72.2%" ~pct:72.2 ~tol:10.0);
            R.S " (paper: 8,729 / 72.2%)" ];
        R.line
          [ R.S "recoverable via recursive AIA: ";
            R.C
              (R.count_pct ~num:recoverable ~den:ninc
              |> R.near ~paper:"11,419 / 94.5%" ~pct:94.5 ~tol:10.0);
            R.S " (paper: 11,419 / 94.5%)" ];
        R.line
          [ R.S "AIA missing: ";
            R.C (R.int (cause (fun c -> c.Completeness.cause = Some Completeness.Aia_missing)));
            R.S " (paper: 579)   AIA URI fails: ";
            R.C (R.int (cause (fun c -> c.Completeness.cause = Some Completeness.Aia_fetch_failed)));
            R.S " (paper: 88)   wrong cert served: ";
            R.C (R.int (cause (fun c -> c.Completeness.cause = Some Completeness.Aia_wrong_cert)));
            R.S " (paper: 1)" ] ];
  }

let table7 analysis = table7_reports (Array.map snd analysis.reports)

(* --- Table 8 --- *)

let table8 analysis =
  let u = analysis.pop.Population.universe in
  let aia_repo = Universe.aia u in
  let baseline_incomplete =
    Array.map
      (fun (_, rep) ->
        rep.Compliance.completeness.Completeness.verdict = Completeness.Incomplete)
      analysis.reports
  in
  let additional program ~aia_enabled =
    let store = Universe.store u program in
    (* Fresh memo per (store, AIA) configuration: completeness is a pure
       function of the chain under that configuration. *)
    let memo = Pipeline.Memo.create () in
    let incomplete =
      Pipeline.mapi ~jobs:analysis.jobs
        (fun i (_, rep) ->
          if baseline_incomplete.(i) then false
          else
            let c =
              Pipeline.Memo.find_or_add memo analysis.dataset.Scanner.chain_fps.(i)
                (fun () ->
                  Completeness.analyze ~aia_enabled ~store ~aia:aia_repo
                    rep.Compliance.topology)
            in
            c.Completeness.verdict = Completeness.Incomplete)
        analysis.reports
    in
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 incomplete
  in
  let t =
    R.Table.create
      ~title:
        "Table 8: additional incomplete chains per root store, with and without AIA"
      ~header:
        ("Root Store" :: List.map Root_store.program_to_string Root_store.all_programs)
  in
  let row label ~aia_enabled =
    R.Table.row t
      (R.text label
      :: List.map
           (fun p -> R.count (additional p ~aia_enabled))
           Root_store.all_programs)
  in
  row "AIA Supported (measured)" ~aia_enabled:true;
  R.Table.row t
    (R.text "AIA Supported (paper)" :: List.map R.text [ "66"; "66"; "5"; "4" ]);
  R.Table.sep t;
  row "AIA Not Supported (measured)" ~aia_enabled:false;
  R.Table.row t
    (R.text "AIA Not Supported (paper)"
    :: List.map R.text [ "225,608"; "225,608"; "225,538"; "225,360" ]);
  { id = "table8"; title = "Table 8"; blocks = [ R.Table.block t ] }

(* --- Table 9 --- *)

let table9 () =
  let t =
    R.Table.create ~title:"Table 9: capabilities of TLS implementations (measured == paper?)"
      ~header:("Type" :: List.map (fun c -> c.Clients.name) Clients.all)
  in
  List.iter
    (fun test ->
      R.Table.row t
        (R.text (Capability.test_name test)
        :: List.map
             (fun client ->
               let got = Capability.evaluate client test in
               let want = Capability.table9_expected client.Clients.id test in
               R.text got |> R.same_text ~paper:want)
             Clients.all))
    Capability.all_tests;
  { id = "table9"; title = "Table 9"; blocks = [ R.Table.block t ] }

(* --- Tables 10 and 11: cross-tabs --- *)

type violation = V_dup | V_irr | V_multi | V_rev | V_inc

let violations_of rep =
  let o = rep.Compliance.order in
  (if Order_check.has_duplicates o then [ V_dup ] else [])
  @ (if Order_check.has_irrelevant o then [ V_irr ] else [])
  @ (if o.Order_check.multiple_paths then [ V_multi ] else [])
  @ (if Order_check.has_reversed o then [ V_rev ] else [])
  @
  if rep.Compliance.completeness.Completeness.verdict = Completeness.Incomplete then
    [ V_inc ]
  else []

let violation_label = function
  | V_dup -> "Duplicate Certificates"
  | V_irr -> "Irrelevant Certificates"
  | V_multi -> "Multiple Paths"
  | V_rev -> "Reversed Sequences"
  | V_inc -> "Incomplete Chain"

let table10 analysis =
  let servers =
    [ C.S_apache; C.S_nginx; C.S_azure; C.S_cloudflare; C.S_iis; C.S_aws_elb; C.S_other ]
  in
  let count violation server =
    count_where analysis (fun (r, rep) ->
        r.Population.software = server
        && List.mem violation (violations_of rep))
  in
  let overview server =
    count_where analysis (fun (r, rep) ->
        r.Population.software = server && paper_non_compliant (r, rep))
  in
  let t =
    R.Table.create
      ~title:"Table 10: HTTP servers of domains with non-compliant chains (fingerprinted)"
      ~header:("Type" :: List.map C.server_key_to_string servers @ [ "Total" ])
  in
  let ov = List.map overview servers in
  R.Table.row t
    (R.text "Overview" :: List.map R.count ov
    @ [ R.count (List.fold_left ( + ) 0 ov) ]);
  List.iter
    (fun v ->
      let cells = List.map (count v) servers in
      R.Table.row t
        (R.text (violation_label v) :: List.map R.count cells
        @ [ R.count (List.fold_left ( + ) 0 cells) ]))
    [ V_dup; V_irr; V_multi; V_rev; V_inc ];
  { id = "table10"; title = "Table 10"; blocks = [ R.Table.block t ] }

let table11 analysis =
  let vendors =
    [ C.V_lets_encrypt; C.V_digicert; C.V_sectigo; C.V_zerossl; C.V_gogetssl;
      C.V_taiwan_ca; C.V_cyber_folks; C.V_trustico ]
  in
  let issued v = count_where analysis (fun (r, _) -> r.Population.vendor = v) in
  let count violation v =
    count_where analysis (fun (r, rep) ->
        r.Population.vendor = v && List.mem violation (violations_of rep))
  in
  let nc v =
    count_where analysis (fun (r, rep) ->
        r.Population.vendor = v && paper_non_compliant (r, rep))
  in
  let t =
    R.Table.create ~title:"Table 11: CAs/resellers of non-compliant certificate chains"
      ~header:("Type" :: List.map C.vendor_key_to_string vendors)
  in
  R.Table.row t
    (R.text "Non-compliant"
    :: List.map (fun v -> R.count_pct ~num:(nc v) ~den:(max 1 (issued v))) vendors);
  List.iter
    (fun violation ->
      R.Table.row t
        (R.text (violation_label violation)
        :: List.map (fun v -> R.count (count violation v)) vendors))
    [ V_dup; V_irr; V_multi; V_rev; V_inc ];
  R.Table.sep t;
  R.Table.row t ("Total issued" |> R.text |> fun c -> c :: List.map (fun v -> R.count (issued v)) vendors);
  { id = "table11"; title = "Table 11"; blocks = [ R.Table.block t ] }

(* --- Figures --- *)

let find_scenario analysis scenario =
  Array.to_list analysis.reports
  |> List.find_opt (fun (r, _) -> r.Population.scenario = scenario)

let render_record (r, rep) =
  Printf.sprintf "%s (%s)\n%s" r.Population.domain
    (C.scenario_to_string r.Population.scenario)
    (Topology.render rep.Compliance.topology)

let figure1 analysis =
  (* Walk one compliant chain through the two-step pipeline and narrate it. *)
  let env = Population.env analysis.pop in
  let case =
    Array.to_list analysis.reports
    |> List.find (fun (r, _) -> r.Population.scenario = C.Ok_plain)
  in
  let r, _ = case in
  let client = Clients.by_id Clients.Chrome in
  let ctx =
    Clients.context client
      ~store:(env.Difftest.store_of client.Clients.root_program)
      ~aia:env.Difftest.aia ~cache:[] ~now:env.Difftest.now
  in
  let outcome = Engine.run ctx ~host:(Some r.Population.domain) r.Population.chain in
  {
    id = "figure1";
    title = "Figure 1";
    blocks =
      [ R.line
          [ R.S "Certification path processing for ";
            R.C (R.text r.Population.domain); R.S " (client: ";
            R.C (R.text client.Clients.name); R.S "):" ];
        R.line
          [ R.S "  step 1, path construction: ";
            R.C (R.int (List.length r.Population.chain));
            R.S " certificate(s) served, candidate path of length ";
            R.C
              (R.text
                 (match outcome.Engine.constructed with
                 | Some p -> string_of_int (List.length p)
                 | None -> "-"));
            R.S " built" ];
        R.line
          [ R.S "  step 2, path validation: ";
            R.C
              (R.text
                 (match outcome.Engine.result with
                 | Ok p ->
                     Printf.sprintf "valid (anchored at %s)"
                       (Dn.to_string (Cert.subject (List.nth p (List.length p - 1))))
                 | Error e -> Engine.error_to_string e)) ] ];
  }

let figure2 analysis =
  let pick scenario label =
    match find_scenario analysis scenario with
    | Some case -> R.raw (Printf.sprintf "(%s) %s\n" label (render_record case))
    | None -> R.raw (Printf.sprintf "(%s) no instance at this scale\n" label)
  in
  {
    id = "figure2";
    title = "Figure 2";
    blocks =
      [ pick C.Ok_with_root "a: compliant chain";
        pick (C.Irr_stale_leaves 4) "b: stale leaves (webcanny.com shape)";
        pick C.Multi_cross_reversed "c: cross-signing, multiple paths";
        pick C.Irr_foreign_chain "d: foreign chain appended (archives.gov.tw shape)" ];
  }

let client_outcomes analysis (r : Population.record) =
  let case = difftest_record analysis r in
  String.concat "\n"
    (List.map
       (fun cr ->
         Printf.sprintf "  %-14s %s%s" cr.Difftest.client.Clients.name
           cr.Difftest.message
           (let a = cr.Difftest.outcome.Engine.attempts in
            if a > 1 then Printf.sprintf "  (after %d path attempts)" a else ""))
       case.Difftest.results)

let figure3 analysis =
  match find_scenario analysis C.Fig_serpro with
  | None -> { id = "figure3"; title = "Figure 3"; blocks = [ R.raw "not generated" ] }
  | Some (r, _) ->
      {
        id = "figure3";
        title = "Figure 3";
        blocks =
          [ R.raw
              (render_record (r, snd (Option.get (find_scenario analysis C.Fig_serpro)))
              ^ "\n");
            R.line
              [ R.S "Served list has ";
                R.C (R.int (List.length r.Population.chain));
                R.S " certificates; GnuTLS's input-list limit is 16." ];
            R.raw (client_outcomes analysis r ^ "\n") ];
      }

let figure4 analysis =
  match find_scenario analysis C.Fig_moex with
  | None -> { id = "figure4"; title = "Figure 4"; blocks = [ R.raw "not generated" ] }
  | Some ((r, _) as case) ->
      {
        id = "figure4";
        title = "Figure 4";
        blocks =
          [ R.raw (render_record case ^ "\n");
            R.raw
              "Node 1 is a root certificate absent from every store; the correct path\n\
               runs through the cross-signed alternative. Clients without backtracking\n\
               commit to the untrusted path:\n";
            R.raw (client_outcomes analysis r ^ "\n") ];
      }

let figure5 analysis =
  let u = analysis.pop.Population.universe in
  let a = Universe.digicert_ca1_recent u and b = Universe.digicert_ca1_old u in
  let render_candidate label c =
    Printf.sprintf "%s\n  Subject: %s\n  Validity: %s .. %s\n" label
      (Dn.to_string (Cert.subject c))
      (Vtime.to_string (Cert.not_before c))
      (Vtime.to_string (Cert.not_after c))
  in
  let picks =
    match find_scenario analysis C.Multi_validity_variants with
    | None -> ""
    | Some (r, _) ->
        let case = difftest_record analysis r in
        String.concat "\n"
          (List.map
             (fun cr ->
               let chosen =
                 match cr.Difftest.outcome.Engine.constructed with
                 | Some (_ :: i :: _) ->
                     if Cert.equal i a then "candidate A (recent)"
                     else if Cert.equal i b then "candidate B (older)"
                     else "?"
                 | _ -> "no path"
               in
               Printf.sprintf "  %-14s picks %s" cr.Difftest.client.Clients.name chosen)
             case.Difftest.results)
  in
  {
    id = "figure5";
    title = "Figure 5";
    blocks =
      [ R.raw (render_candidate "Candidate A" a);
        R.raw (render_candidate "Candidate B" b);
        R.raw (picks ^ "\n") ];
  }

(* --- Section 5.2 --- *)

let section5_2_view v =
  let env = v.v_env in
  let nc_arr =
    Array.to_list v.v_items
    |> List.filter (fun (_, _, rep) -> paper_non_compliant_report rep)
    |> Array.of_list
  in
  (* The expensive sweep: eight client models per unique non-compliant chain,
     deduplicated through the analysis-wide memo and spread over the Domain
     pool. Shard-order merge keeps the list in domain order, as before. *)
  let cases_arr =
    Pipeline.map ~jobs:v.v_jobs
      (fun (domain, chain, _) -> difftest_item v ~domain chain)
      nc_arr
  in
  let cases = Array.to_list cases_arr in
  let s = Difftest.summarize cases in
  let total = s.Difftest.total in
  let blocks = ref [] in
  let add b = blocks := b :: !blocks in
  add
    (R.line
       [ R.S "Differential testing over "; R.C (R.count total);
         R.S " non-compliant chains (paper: 26,361)" ]);
  let share label gap n ~paper_suffix ~paper ~pct ~tol =
    add
      (R.line
         [ R.S ("  " ^ label ^ gap); R.C (R.count n); R.S " ";
           R.C (R.percent ~num:n ~den:total |> R.near ~paper ~pct ~tol);
           R.S paper_suffix ])
  in
  share "pass in all 3 browsers:" "   " s.Difftest.browsers_all_pass
    ~paper_suffix:"   (paper: 61.1%)" ~paper:"61.1%" ~pct:61.1 ~tol:15.0;
  share "pass in all 4 libraries:" "  " s.Difftest.libraries_all_pass
    ~paper_suffix:"   (paper: 47.4%)" ~paper:"47.4%" ~pct:47.4 ~tol:10.0;
  share "browser discrepancies:" "    " s.Difftest.browser_discrepancies
    ~paper_suffix:"   (paper: 3,295 / 12.5%)" ~paper:"3,295 / 12.5%" ~pct:12.5
    ~tol:10.0;
  share "library discrepancies:" "    " s.Difftest.library_discrepancies
    ~paper_suffix:"   (paper: 10,804 / 41.0%)" ~paper:"10,804 / 41.0%" ~pct:41.0
    ~tol:16.0;
  add
    (R.line
       [ R.S "  chains rejected by >=1 library: ";
         R.C (R.count s.Difftest.library_build_issue); R.S " ";
         R.C (R.percent ~num:s.Difftest.library_build_issue ~den:total) ]);
  add
    (R.line
       [ R.S "  chains rejected by >=1 browser: ";
         R.C (R.count s.Difftest.browser_build_issue); R.S " ";
         R.C (R.percent ~num:s.Difftest.browser_build_issue ~den:total) ]);
  let firefox_gap =
    List.length
      (List.filter
         (fun case ->
           Difftest.accepted_by case Clients.Chrome
           && Difftest.accepted_by case Clients.Edge
           && not (Difftest.accepted_by case Clients.Firefox))
         cases)
  in
  add
    (R.line
       [ R.S "  Chrome+Edge pass but Firefox fails (intermediate-cache miss): ";
         R.C (R.count firefox_gap); R.S "   (paper: 1,074)" ]);
  add (R.line [ R.S "Attribution (a chain can carry several causes):" ]);
  List.iter
    (fun (cause, n) ->
      let paper =
        match cause with
        | Difftest.I1_no_reorder -> "paper: 51 chains"
        | Difftest.I2_list_limit -> "paper: 10 chains"
        | Difftest.I3_no_backtracking -> "paper: 1 case"
        | Difftest.I4_no_aia -> "paper: 8,553 chains"
        | _ -> ""
      in
      add
        (R.line
           [ R.S "  "; R.Cw (-40, R.text (Difftest.cause_to_string cause));
             R.S " "; R.Cw (6, R.count n); R.S "   "; R.S paper ]))
    s.Difftest.by_cause;
  (* The CryptoAPI AIA-ablation: disable AIA and count which of its accepted
     chains survive thanks to the OS intermediate store. *)
  let cryptoapi = Clients.by_id Clients.Cryptoapi in
  let no_aia_params = { cryptoapi.Clients.params with Build_params.aia_fetch = false } in
  let cryptoapi_used_fetch case =
    match (Difftest.result_of case Clients.Cryptoapi).Difftest.outcome
            .Engine.accepted_attempt
    with
    | Some a -> a.Path_builder.used_aia || a.Path_builder.used_cache
    | None -> false
  in
  let ablation_outcomes =
    Pipeline.mapi ~jobs:v.v_jobs
      (fun i (domain, chain, _) ->
        let case = cases_arr.(i) in
        if Difftest.accepted_by case Clients.Cryptoapi && cryptoapi_used_fetch case
        then begin
          let store = env.Difftest.store_of cryptoapi.Clients.root_program in
          let ctx =
            { Path_builder.params = no_aia_params; store; aia = None;
              cache = env.Difftest.os_store; crls = None; now = env.Difftest.now }
          in
          let o = Engine.run ctx ~host:(Some domain) chain in
          Some (Engine.accepted o)
        end
        else None)
      nc_arr
  in
  let rescued = ref 0 and broke = ref 0 in
  Array.iter
    (function
      | Some true -> incr rescued
      | Some false -> incr broke
      | None -> ())
    ablation_outcomes;
  add
    (R.line
       [ R.S "CryptoAPI AIA-disabled ablation: "; R.C (R.int !broke);
         R.S " of its accepted chains fail, "; R.C (R.int !rescued);
         R.S " rescued by the" ]);
  add (R.line [ R.S "OS intermediate store (paper: 8,373 fail, 180 rescued)" ]);
  { id = "section5.2"; title = "Section 5.2"; blocks = List.rev !blocks }

let section5_2 analysis = section5_2_view (view analysis)

(* --- Section 6: recommendations made executable --- *)

let section6 analysis =
  let env = Population.env analysis.pop in
  let blocks = ref [] in
  let add b = blocks := b :: !blocks in
  (* 6.1: remediation advice for one concrete non-compliant deployment. *)
  (match
     Array.to_list analysis.reports
     |> List.find_opt (fun (r, _) -> r.Population.scenario = C.Rev_merge_1int)
   with
  | Some (r, rep) ->
      add
        (R.line
           [ R.S "Section 6.1 — advice for "; R.C (R.text r.Population.domain);
             R.S " (";
             R.C (R.text (C.scenario_to_string r.Population.scenario));
             R.S "):" ]);
      List.iter
        (fun a ->
          add
            (R.line
               [ R.S "  [";
                 R.C
                   (R.text
                      (match a.Recommend.severity with
                      | `Must -> "MUST"
                      | `Should -> "SHOULD"));
                 R.S "] (";
                 R.C (R.text (Recommend.audience_to_string a.Recommend.audience));
                 R.S ") "; R.C (R.text a.Recommend.text) ]))
        (Recommend.server_advice rep);
      (match Recommend.corrected_chain rep with
      | Some fixed ->
          let fixed_report =
            Compliance.analyze
              ~store:(Universe.union_store analysis.pop.Population.universe)
              ~aia:(Universe.aia analysis.pop.Population.universe)
              ~domain:r.Population.domain fixed
          in
          add
            (R.line
               [ R.S "  auto-corrected chain is ";
                 R.C
                   (R.verdict
                      (Compliance.compliant fixed_report)
                      ~yes:"COMPLIANT" ~no:"still broken") ])
      | None ->
          add
            (R.line
               [ R.S "  no self-contained correction (certificates missing)" ]))
  | None -> add (R.line [ R.S "Section 6.1: no reversed instance at this scale" ]));
  (* 6.2: the capability ablation over the non-compliant corpus. *)
  let corpus =
    Array.to_list analysis.reports
    |> List.filter paper_non_compliant
    |> List.map (fun (r, _) -> (r.Population.domain, r.Population.chain))
  in
  add (R.line []);
  add
    (R.line
       [ R.S "Section 6.2 — capability ablation over the ";
         R.C (R.count (List.length corpus)); R.S " non-compliant chains" ]);
  let steps =
    Recommend.capability_ablation
      ~store:(env.Difftest.store_of Chaoschain_pki.Root_store.Mozilla)
      ~aia:env.Difftest.aia ~now:env.Difftest.now corpus
  in
  List.iter
    (fun s ->
      add
        (R.line
           [ R.S "  "; R.Cw (-34, R.text s.Recommend.label); R.S " accepts ";
             R.C (R.count s.Recommend.accepted); R.S " of ";
             R.C (R.count s.Recommend.total); R.S " (";
             R.C (R.percent ~num:s.Recommend.accepted ~den:s.Recommend.total);
             R.S ")" ]))
    steps;
  (* Prioritization ambiguity statistics (the paper's 785 / 744 / 42). *)
  let all_chains =
    Array.to_list analysis.reports
    |> List.map (fun (r, _) -> (r.Population.domain, r.Population.chain))
  in
  let stats =
    Recommend.ambiguity_statistics
      ~store:(Universe.union_store analysis.pop.Population.universe)
      all_chains
  in
  add (R.line []);
  add (R.line [ R.S "Issuer-candidate ties (same subject_DN, compatible KID):" ]);
  add
    (R.line
       [ R.S "  chains with ties: ";
         R.C (R.count stats.Recommend.chains_with_ties); R.S " (paper: 785)" ]);
  add
    (R.line
       [ R.S "  tie includes a trusted self-signed root -> prefer it: ";
         R.C (R.count stats.Recommend.tie_with_trusted_root);
         R.S " (paper: 744)" ]);
  add
    (R.line
       [ R.S "  tie between validity variants -> prefer most recent: ";
         R.C (R.count stats.Recommend.tie_validity_variants);
         R.S " (paper: 42)" ]);
  { id = "section6"; title = "Section 6"; blocks = List.rev !blocks }

let dataset_overview_of d =
  let blocks = ref [] in
  let add b = blocks := b :: !blocks in
  add (R.line [ R.S "Collection (simulated two-vantage ZGrab over TLS 1.2):" ]);
  List.iter
    (fun v ->
      add
        (R.line
           [ R.S "  vantage "; R.C (R.text v.Scanner.name); R.S ": ";
             R.C (R.count v.Scanner.reached);
             R.S " domains reached (paper: US 870,113 / AU 867,374)" ]))
    d.Scanner.vantages;
  add
    (R.line
       [ R.S "  union dataset: ";
         R.C (R.count (Array.length d.Scanner.domains)); R.S " domains, ";
         R.C (R.count d.Scanner.unique_chains); R.S " unique chains, ";
         R.C (R.count d.Scanner.unique_certs); R.S " unique certificates" ]);
  add
    (R.line
       [ R.S "  (paper: 906,336 unique chains, 861,747 unique certificates)" ]);
  add
    (R.line
       [ R.S "  TLS 1.2 vs 1.3 identical chains: ";
         R.C
           (R.cell
              (R.Cell.Float
                 { value = d.Scanner.tls12_tls13_identical_pct; digits = 1;
                   suffix = "%" })
           |> R.near ~paper:"98.8%" ~pct:98.8 ~tol:1.0);
         R.S " (paper: 98.8%)" ]);
  { id = "dataset"; title = "Section 3.1 dataset"; blocks = List.rev !blocks }

let dataset_overview analysis = dataset_overview_of analysis.dataset

let table_results v =
  let reports = Array.map (fun (_, _, rep) -> rep) v.v_items in
  [ dataset_overview_of v.v_dataset;
    table3_reports reports; table5_reports reports; table7_reports reports ]

let scan_results v = table_results v @ [ section5_2_view v ]

let run_all analysis =
  [ dataset_overview analysis;
    table1 (); table2 (); table3 analysis; table4 (); table5 analysis;
    table6 analysis; table7 analysis; table8 analysis; table9 ();
    table10 analysis; table11 analysis;
    figure1 analysis; figure2 analysis; figure3 analysis; figure4 analysis;
    figure5 analysis; section5_2 analysis; section6 analysis ]
