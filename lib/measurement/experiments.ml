open Chaoschain_x509
open Chaoschain_core
open Chaoschain_pki
module C = Calibration

type analysis = {
  pop : Population.t;
  dataset : Scanner.dataset;
  reports : (Population.record * Compliance.report) array;
  jobs : int;
  difftest_memo : Difftest.case Pipeline.Memo.t;
}

let analyze ?(jobs = 1) pop =
  let dataset = Scanner.scan ~jobs pop in
  let store = Universe.union_store pop.Population.universe in
  let aia = Universe.aia pop.Population.universe in
  (* Each unique chain is classified once; the per-domain leaf-placement
     verdict is attached when the cached chain report is fanned back out. *)
  let memo = Pipeline.Memo.create () in
  let reports =
    Pipeline.mapi ~jobs
      (fun i r ->
        let cr =
          Pipeline.Memo.find_or_add memo dataset.Scanner.chain_fps.(i) (fun () ->
              Compliance.analyze_chain ~store ~aia r.Population.chain)
        in
        (r, Compliance.localize ~domain:r.Population.domain r.Population.chain cr))
      pop.Population.domains
  in
  { pop; dataset; reports; jobs; difftest_memo = Pipeline.Memo.create () }

(* Differential-test one domain, reusing the analysis-wide memo: chains with
   the same fingerprint (and the same leaf/domain match bit) are tested once
   and relabelled for every domain serving them. *)
let difftest_record analysis (r : Population.record) =
  let env = Population.env analysis.pop in
  let case =
    Pipeline.Memo.find_or_add analysis.difftest_memo
      (Difftest.chain_key ~domain:r.Population.domain r.Population.chain)
      (fun () -> Difftest.run_case env ~domain:r.Population.domain r.Population.chain)
  in
  Difftest.with_domain ~domain:r.Population.domain case

type result = { id : string; title : string; body : string }

let count_where analysis p =
  Array.fold_left (fun acc rc -> if p rc then acc + 1 else acc) 0 analysis.reports

(* The paper's non-compliance notion for the 26,361 total: order violation or
   incomplete chain (leaf "Other" chains are excluded, as in section 4). *)
let paper_non_compliant_report rep =
  (not rep.Compliance.order.Order_check.ordered)
  || rep.Compliance.completeness.Completeness.verdict = Completeness.Incomplete

let paper_non_compliant (_, rep) = paper_non_compliant_report rep

(* A [view] is the slice of an analysis the persisted corpus can reproduce:
   no [Population.record]s (vendor and software labels are synthetic and not
   stored), just each domain's served chain and its compliance report plus
   the trust environment. Both the live path ([view] below) and the replay
   path ([Corpus.analyze]) build one, so the replayed tables render through
   exactly the code the direct scan used — byte-identical by construction. *)
type view = {
  v_dataset : Scanner.dataset;
  v_env : Difftest.env;
  v_items : (string * Cert.t list * Compliance.report) array;
  v_jobs : int;
  v_memo : Difftest.case Pipeline.Memo.t;
}

let view analysis =
  {
    v_dataset = analysis.dataset;
    v_env = Population.env analysis.pop;
    v_items =
      Array.map
        (fun (r, rep) -> (r.Population.domain, r.Population.chain, rep))
        analysis.reports;
    v_jobs = analysis.jobs;
    v_memo = analysis.difftest_memo;
  }

let difftest_item view ~domain chain =
  let case =
    Pipeline.Memo.find_or_add view.v_memo (Difftest.chain_key ~domain chain)
      (fun () -> Difftest.run_case view.v_env ~domain chain)
  in
  Difftest.with_domain ~domain case

(* --- Table 1 --- *)

let table1 () =
  let t =
    Stats.table ~title:"Table 1: client chain-building coverage, BetterTLS vs this work"
      ~header:[ "Capability"; "BetterTLS"; "This work" ]
  in
  List.iter
    (fun c ->
      Stats.add_row t
        [ c.Capability.capability;
          (if c.Capability.better_tls then "yes" else "no");
          (if c.Capability.this_work then "yes" else "no") ])
    Capability.betterlts_comparison;
  { id = "table1"; title = "Table 1"; body = Stats.render t }

(* --- Table 2 --- *)

let table2 () =
  let t =
    Stats.table ~title:"Table 2: certificate chain construction capability tests"
      ~header:[ "#"; "Capability"; "Test case" ]
  in
  List.iteri
    (fun i test ->
      Stats.add_row t
        [ string_of_int (i + 1);
          Capability.test_name test;
          Capability.test_case_notation test ])
    Capability.all_tests;
  { id = "table2"; title = "Table 2"; body = Stats.render t }

(* --- Table 3 --- *)

(* The compliance tables (3, 5, 7) depend only on the report array, so they
   have report-level cores shared between the live analysis and a replayed
   corpus view. *)

let count_reports reports p =
  Array.fold_left (fun acc rep -> if p rep then acc + 1 else acc) 0 reports

let table3_reports reports =
  let n = Array.length reports in
  let count v = count_reports reports (fun rep -> rep.Compliance.leaf = v) in
  let t =
    Stats.table ~title:"Table 3: leaf certificate deployment"
      ~header:[ "Place"; "Match"; "# domains (measured)"; "paper" ]
  in
  let row place mat v paper =
    Stats.add_row t [ place; mat; Stats.count_pct (count v) n; paper ]
  in
  row "yes" "yes" Leaf_check.Correct_matched "838,354 (92.5%)";
  row "yes" "no" Leaf_check.Correct_mismatched "62,536 (6.9%)";
  row "no" "yes" Leaf_check.Incorrect_matched "0 (~0%)";
  row "no" "no" Leaf_check.Incorrect_mismatched "1 (~0%)";
  row "Other" "" Leaf_check.Other "5,445 (0.6%)";
  { id = "table3"; title = "Table 3"; body = Stats.render t }

let table3 analysis = table3_reports (Array.map snd analysis.reports)

(* --- Table 4 --- *)

let table4 () =
  let module H = Chaoschain_deployment.Http_server in
  let softwares =
    [ H.Apache_pre_2_4_8; H.Apache; H.Nginx; H.Azure_app_gateway; H.Iis; H.Aws_elb ]
  in
  let labels = List.map (fun s -> List.map fst (H.table4_row s)) softwares |> List.hd in
  let t =
    Stats.table ~title:"Table 4: SSL deployment characteristics across HTTP servers"
      ~header:("Characteristic" :: List.map H.software_to_string softwares)
  in
  List.iter
    (fun label ->
      Stats.add_row t
        (label
        :: List.map (fun s -> List.assoc label (H.table4_row s)) softwares))
    labels;
  { id = "table4"; title = "Table 4"; body = Stats.render t }

(* --- Table 5 --- *)

let table5_reports reports =
  let bad =
    Array.to_list reports
    |> List.filter (fun rep -> not rep.Compliance.order.Order_check.ordered)
  in
  let nbad = List.length bad in
  let c p = List.length (List.filter (fun rep -> p rep.Compliance.order) bad) in
  let t =
    Stats.table ~title:"Table 5: chains with non-compliant issuance order"
      ~header:[ "Type"; "measured"; "paper" ]
  in
  Stats.add_row t
    [ "Duplicate Certificates";
      Stats.count_pct (c Order_check.has_duplicates) nbad; "5,974 (35.2%)" ];
  Stats.add_row t
    [ "Irrelevant Certificates";
      Stats.count_pct (c Order_check.has_irrelevant) nbad; "3,032 (17.9%)" ];
  Stats.add_row t
    [ "Multiple Paths";
      Stats.count_pct (c (fun o -> o.Order_check.multiple_paths)) nbad; "246 (1.5%)" ];
  Stats.add_row t
    [ "Reversed Sequences";
      Stats.count_pct (c Order_check.has_reversed) nbad; "8,566 (50.5%)" ];
  Stats.add_separator t;
  Stats.add_row t [ "Total"; Stats.with_commas nbad; "16,952" ];
  (* The section 4.2 sub-statistics. *)
  let dup_kind k =
    List.length
      (List.filter
         (fun rep ->
           List.exists (fun (kind, _) -> kind = k) rep.Compliance.order.Order_check.duplicates)
         bad)
  in
  let all_rev =
    List.length
      (List.filter (fun rep -> rep.Compliance.order.Order_check.all_paths_reversed) bad)
  in
  let extra =
    Printf.sprintf
      "duplicate leaf / intermediate / root chains: %d / %d / %d (paper: 4,730 / 1,354 / 401)\n\
       chains with every path reversed: %d (paper: 8,370 of 8,566)\n"
      (dup_kind Order_check.Dup_leaf) (dup_kind Order_check.Dup_intermediate)
      (dup_kind Order_check.Dup_root) all_rev
  in
  { id = "table5"; title = "Table 5"; body = Stats.render t ^ extra }

let table5 analysis = table5_reports (Array.map snd analysis.reports)

(* --- Table 6 --- *)

let table6 analysis =
  let module V = Chaoschain_deployment.Ca_vendor in
  let u = analysis.pop.Population.universe in
  let vendors =
    [ Universe.Lets_encrypt; Universe.Zerossl; Universe.Gogetssl; Universe.Trustico;
      Universe.Cyber_folks ]
  in
  let rows = List.map (fun v -> (v, V.table6_row u v)) vendors in
  let labels = List.map fst (snd (List.hd rows)) in
  let t =
    Stats.table ~title:"Table 6: SSL issuance characteristics of CAs/resellers"
      ~header:("Characteristic" :: List.map Universe.vendor_to_string vendors)
  in
  List.iter
    (fun label ->
      Stats.add_row t (label :: List.map (fun (_, row) -> List.assoc label row) rows))
    labels;
  { id = "table6"; title = "Table 6"; body = Stats.render t }

(* --- Table 7 --- *)

let table7_reports reports =
  let n = Array.length reports in
  let c v =
    count_reports reports (fun rep ->
        rep.Compliance.completeness.Completeness.verdict = v)
  in
  let t =
    Stats.table ~title:"Table 7: completeness of certificate chains"
      ~header:[ "Type"; "measured"; "paper" ]
  in
  Stats.add_row t
    [ "Complete Chain w/ Root";
      Stats.count_pct (c Completeness.Complete_with_root) n; "79,144 (8.7%)" ];
  Stats.add_row t
    [ "Complete Chain w/o Root";
      Stats.count_pct (c Completeness.Complete_without_root) n; "815,105 (89.9%)" ];
  Stats.add_row t
    [ "Incomplete Chain"; Stats.count_pct (c Completeness.Incomplete) n; "12,087 (1.3%)" ];
  let inc =
    Array.to_list reports
    |> List.filter_map (fun rep ->
           match rep.Compliance.completeness.Completeness.verdict with
           | Completeness.Incomplete -> Some rep.Compliance.completeness
           | _ -> None)
  in
  let ninc = List.length inc in
  let cause p = List.length (List.filter p inc) in
  let recoverable =
    cause (fun c -> match c.Completeness.cause with Some (Completeness.Recoverable _) -> true | _ -> false)
  in
  let missing1 =
    cause (fun c -> c.Completeness.cause = Some (Completeness.Recoverable 1))
  in
  let extra =
    Printf.sprintf
      "incomplete chains missing a single intermediate: %s (paper: 8,729 / 72.2%%)\n\
       recoverable via recursive AIA: %s (paper: 11,419 / 94.5%%)\n\
       AIA missing: %d (paper: 579)   AIA URI fails: %d (paper: 88)   wrong cert served: %d (paper: 1)\n"
      (Stats.count_pct missing1 ninc)
      (Stats.count_pct recoverable ninc)
      (cause (fun c -> c.Completeness.cause = Some Completeness.Aia_missing))
      (cause (fun c -> c.Completeness.cause = Some Completeness.Aia_fetch_failed))
      (cause (fun c -> c.Completeness.cause = Some Completeness.Aia_wrong_cert))
  in
  { id = "table7"; title = "Table 7"; body = Stats.render t ^ extra }

let table7 analysis = table7_reports (Array.map snd analysis.reports)

(* --- Table 8 --- *)

let table8 analysis =
  let u = analysis.pop.Population.universe in
  let aia_repo = Universe.aia u in
  let baseline_incomplete =
    Array.map
      (fun (_, rep) ->
        rep.Compliance.completeness.Completeness.verdict = Completeness.Incomplete)
      analysis.reports
  in
  let additional program ~aia_enabled =
    let store = Universe.store u program in
    (* Fresh memo per (store, AIA) configuration: completeness is a pure
       function of the chain under that configuration. *)
    let memo = Pipeline.Memo.create () in
    let incomplete =
      Pipeline.mapi ~jobs:analysis.jobs
        (fun i (_, rep) ->
          if baseline_incomplete.(i) then false
          else
            let c =
              Pipeline.Memo.find_or_add memo analysis.dataset.Scanner.chain_fps.(i)
                (fun () ->
                  Completeness.analyze ~aia_enabled ~store ~aia:aia_repo
                    rep.Compliance.topology)
            in
            c.Completeness.verdict = Completeness.Incomplete)
        analysis.reports
    in
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 incomplete
  in
  let t =
    Stats.table
      ~title:
        "Table 8: additional incomplete chains per root store, with and without AIA"
      ~header:
        ("Root Store" :: List.map Root_store.program_to_string Root_store.all_programs)
  in
  let row label ~aia_enabled =
    Stats.add_row t
      (label
      :: List.map
           (fun p -> Stats.with_commas (additional p ~aia_enabled))
           Root_store.all_programs)
  in
  row "AIA Supported (measured)" ~aia_enabled:true;
  Stats.add_row t [ "AIA Supported (paper)"; "66"; "66"; "5"; "4" ];
  Stats.add_separator t;
  row "AIA Not Supported (measured)" ~aia_enabled:false;
  Stats.add_row t
    [ "AIA Not Supported (paper)"; "225,608"; "225,608"; "225,538"; "225,360" ];
  { id = "table8"; title = "Table 8"; body = Stats.render t }

(* --- Table 9 --- *)

let table9 () =
  let t =
    Stats.table ~title:"Table 9: capabilities of TLS implementations (measured == paper?)"
      ~header:("Type" :: List.map (fun c -> c.Clients.name) Clients.all)
  in
  List.iter
    (fun test ->
      Stats.add_row t
        (Capability.test_name test
        :: List.map
             (fun client ->
               let got = Capability.evaluate client test in
               let want = Capability.table9_expected client.Clients.id test in
               if got = want then got else Printf.sprintf "%s (paper: %s)" got want)
             Clients.all))
    Capability.all_tests;
  { id = "table9"; title = "Table 9"; body = Stats.render t }

(* --- Tables 10 and 11: cross-tabs --- *)

type violation = V_dup | V_irr | V_multi | V_rev | V_inc

let violations_of rep =
  let o = rep.Compliance.order in
  (if Order_check.has_duplicates o then [ V_dup ] else [])
  @ (if Order_check.has_irrelevant o then [ V_irr ] else [])
  @ (if o.Order_check.multiple_paths then [ V_multi ] else [])
  @ (if Order_check.has_reversed o then [ V_rev ] else [])
  @
  if rep.Compliance.completeness.Completeness.verdict = Completeness.Incomplete then
    [ V_inc ]
  else []

let violation_label = function
  | V_dup -> "Duplicate Certificates"
  | V_irr -> "Irrelevant Certificates"
  | V_multi -> "Multiple Paths"
  | V_rev -> "Reversed Sequences"
  | V_inc -> "Incomplete Chain"

let table10 analysis =
  let servers =
    [ C.S_apache; C.S_nginx; C.S_azure; C.S_cloudflare; C.S_iis; C.S_aws_elb; C.S_other ]
  in
  let count violation server =
    count_where analysis (fun (r, rep) ->
        r.Population.software = server
        && List.mem violation (violations_of rep))
  in
  let overview server =
    count_where analysis (fun (r, rep) ->
        r.Population.software = server && paper_non_compliant (r, rep))
  in
  let t =
    Stats.table
      ~title:"Table 10: HTTP servers of domains with non-compliant chains (fingerprinted)"
      ~header:("Type" :: List.map C.server_key_to_string servers @ [ "Total" ])
  in
  let ov = List.map overview servers in
  Stats.add_row t
    ("Overview" :: List.map Stats.with_commas ov
    @ [ Stats.with_commas (List.fold_left ( + ) 0 ov) ]);
  List.iter
    (fun v ->
      let cells = List.map (count v) servers in
      Stats.add_row t
        (violation_label v :: List.map Stats.with_commas cells
        @ [ Stats.with_commas (List.fold_left ( + ) 0 cells) ]))
    [ V_dup; V_irr; V_multi; V_rev; V_inc ];
  { id = "table10"; title = "Table 10"; body = Stats.render t }

let table11 analysis =
  let vendors =
    [ C.V_lets_encrypt; C.V_digicert; C.V_sectigo; C.V_zerossl; C.V_gogetssl;
      C.V_taiwan_ca; C.V_cyber_folks; C.V_trustico ]
  in
  let issued v = count_where analysis (fun (r, _) -> r.Population.vendor = v) in
  let count violation v =
    count_where analysis (fun (r, rep) ->
        r.Population.vendor = v && List.mem violation (violations_of rep))
  in
  let nc v =
    count_where analysis (fun (r, rep) ->
        r.Population.vendor = v && paper_non_compliant (r, rep))
  in
  let t =
    Stats.table ~title:"Table 11: CAs/resellers of non-compliant certificate chains"
      ~header:("Type" :: List.map C.vendor_key_to_string vendors)
  in
  Stats.add_row t
    ("Non-compliant"
    :: List.map (fun v -> Stats.count_pct (nc v) (max 1 (issued v))) vendors);
  List.iter
    (fun violation ->
      Stats.add_row t
        (violation_label violation
        :: List.map (fun v -> Stats.with_commas (count violation v)) vendors))
    [ V_dup; V_irr; V_multi; V_rev; V_inc ];
  Stats.add_separator t;
  Stats.add_row t ("Total issued" :: List.map (fun v -> Stats.with_commas (issued v)) vendors);
  { id = "table11"; title = "Table 11"; body = Stats.render t }

(* --- Figures --- *)

let find_scenario analysis scenario =
  Array.to_list analysis.reports
  |> List.find_opt (fun (r, _) -> r.Population.scenario = scenario)

let render_record (r, rep) =
  Printf.sprintf "%s (%s)\n%s" r.Population.domain
    (C.scenario_to_string r.Population.scenario)
    (Topology.render rep.Compliance.topology)

let figure1 analysis =
  (* Walk one compliant chain through the two-step pipeline and narrate it. *)
  let env = Population.env analysis.pop in
  let case =
    Array.to_list analysis.reports
    |> List.find (fun (r, _) -> r.Population.scenario = C.Ok_plain)
  in
  let r, _ = case in
  let client = Clients.by_id Clients.Chrome in
  let ctx =
    Clients.context client
      ~store:(env.Difftest.store_of client.Clients.root_program)
      ~aia:env.Difftest.aia ~cache:[] ~now:env.Difftest.now
  in
  let outcome = Engine.run ctx ~host:(Some r.Population.domain) r.Population.chain in
  let body =
    Printf.sprintf
      "Certification path processing for %s (client: %s):\n\
      \  step 1, path construction: %d certificate(s) served, candidate path of length %s built\n\
      \  step 2, path validation: %s\n"
      r.Population.domain client.Clients.name
      (List.length r.Population.chain)
      (match outcome.Engine.constructed with
      | Some p -> string_of_int (List.length p)
      | None -> "-")
      (match outcome.Engine.result with
      | Ok p -> Printf.sprintf "valid (anchored at %s)"
                  (Dn.to_string (Cert.subject (List.nth p (List.length p - 1))))
      | Error e -> Engine.error_to_string e)
  in
  { id = "figure1"; title = "Figure 1"; body }

let figure2 analysis =
  let pick scenario label =
    match find_scenario analysis scenario with
    | Some case -> Printf.sprintf "(%s) %s\n" label (render_record case)
    | None -> Printf.sprintf "(%s) no instance at this scale\n" label
  in
  let body =
    pick C.Ok_with_root "a: compliant chain"
    ^ pick (C.Irr_stale_leaves 4) "b: stale leaves (webcanny.com shape)"
    ^ pick C.Multi_cross_reversed "c: cross-signing, multiple paths"
    ^ pick C.Irr_foreign_chain "d: foreign chain appended (archives.gov.tw shape)"
  in
  { id = "figure2"; title = "Figure 2"; body }

let client_outcomes analysis (r : Population.record) =
  let case = difftest_record analysis r in
  String.concat "\n"
    (List.map
       (fun cr ->
         Printf.sprintf "  %-14s %s%s" cr.Difftest.client.Clients.name
           cr.Difftest.message
           (let a = cr.Difftest.outcome.Engine.attempts in
            if a > 1 then Printf.sprintf "  (after %d path attempts)" a else ""))
       case.Difftest.results)

let figure3 analysis =
  match find_scenario analysis C.Fig_serpro with
  | None -> { id = "figure3"; title = "Figure 3"; body = "not generated" }
  | Some (r, _) ->
      let body =
        Printf.sprintf
          "%s\nServed list has %d certificates; GnuTLS's input-list limit is 16.\n%s\n"
          (render_record (r, snd (Option.get (find_scenario analysis C.Fig_serpro))))
          (List.length r.Population.chain)
          (client_outcomes analysis r)
      in
      { id = "figure3"; title = "Figure 3"; body }

let figure4 analysis =
  match find_scenario analysis C.Fig_moex with
  | None -> { id = "figure4"; title = "Figure 4"; body = "not generated" }
  | Some ((r, _) as case) ->
      let body =
        Printf.sprintf
          "%s\nNode 1 is a root certificate absent from every store; the correct path\n\
           runs through the cross-signed alternative. Clients without backtracking\n\
           commit to the untrusted path:\n%s\n"
          (render_record case) (client_outcomes analysis r)
      in
      { id = "figure4"; title = "Figure 4"; body }

let figure5 analysis =
  let u = analysis.pop.Population.universe in
  let a = Universe.digicert_ca1_recent u and b = Universe.digicert_ca1_old u in
  let render_candidate label c =
    Printf.sprintf "%s\n  Subject: %s\n  Validity: %s .. %s\n" label
      (Dn.to_string (Cert.subject c))
      (Vtime.to_string (Cert.not_before c))
      (Vtime.to_string (Cert.not_after c))
  in
  let picks =
    match find_scenario analysis C.Multi_validity_variants with
    | None -> ""
    | Some (r, _) ->
        let case = difftest_record analysis r in
        String.concat "\n"
          (List.map
             (fun cr ->
               let chosen =
                 match cr.Difftest.outcome.Engine.constructed with
                 | Some (_ :: i :: _) ->
                     if Cert.equal i a then "candidate A (recent)"
                     else if Cert.equal i b then "candidate B (older)"
                     else "?"
                 | _ -> "no path"
               in
               Printf.sprintf "  %-14s picks %s" cr.Difftest.client.Clients.name chosen)
             case.Difftest.results)
  in
  { id = "figure5";
    title = "Figure 5";
    body = render_candidate "Candidate A" a ^ render_candidate "Candidate B" b ^ picks ^ "\n" }

(* --- Section 5.2 --- *)

let section5_2_view v =
  let env = v.v_env in
  let nc_arr =
    Array.to_list v.v_items
    |> List.filter (fun (_, _, rep) -> paper_non_compliant_report rep)
    |> Array.of_list
  in
  (* The expensive sweep: eight client models per unique non-compliant chain,
     deduplicated through the analysis-wide memo and spread over the Domain
     pool. Shard-order merge keeps the list in domain order, as before. *)
  let cases_arr =
    Pipeline.map ~jobs:v.v_jobs
      (fun (domain, chain, _) -> difftest_item v ~domain chain)
      nc_arr
  in
  let cases = Array.to_list cases_arr in
  let s = Difftest.summarize cases in
  let pc part = Stats.pct part s.Difftest.total in
  let b = Buffer.create 1024 in
  Printf.bprintf b "Differential testing over %s non-compliant chains (paper: 26,361)\n"
    (Stats.with_commas s.Difftest.total);
  Printf.bprintf b "  pass in all 3 browsers:   %s %s   (paper: 61.1%%)\n"
    (Stats.with_commas s.Difftest.browsers_all_pass) (pc s.Difftest.browsers_all_pass);
  Printf.bprintf b "  pass in all 4 libraries:  %s %s   (paper: 47.4%%)\n"
    (Stats.with_commas s.Difftest.libraries_all_pass) (pc s.Difftest.libraries_all_pass);
  Printf.bprintf b "  browser discrepancies:    %s %s   (paper: 3,295 / 12.5%%)\n"
    (Stats.with_commas s.Difftest.browser_discrepancies) (pc s.Difftest.browser_discrepancies);
  Printf.bprintf b "  library discrepancies:    %s %s   (paper: 10,804 / 41.0%%)\n"
    (Stats.with_commas s.Difftest.library_discrepancies) (pc s.Difftest.library_discrepancies);
  Printf.bprintf b "  chains rejected by >=1 library: %s %s\n"
    (Stats.with_commas s.Difftest.library_build_issue) (pc s.Difftest.library_build_issue);
  Printf.bprintf b "  chains rejected by >=1 browser: %s %s\n"
    (Stats.with_commas s.Difftest.browser_build_issue) (pc s.Difftest.browser_build_issue);
  let firefox_gap =
    List.length
      (List.filter
         (fun case ->
           Difftest.accepted_by case Clients.Chrome
           && Difftest.accepted_by case Clients.Edge
           && not (Difftest.accepted_by case Clients.Firefox))
         cases)
  in
  Printf.bprintf b
    "  Chrome+Edge pass but Firefox fails (intermediate-cache miss): %s   (paper: 1,074)\n"
    (Stats.with_commas firefox_gap);
  Printf.bprintf b "Attribution (a chain can carry several causes):\n";
  List.iter
    (fun (cause, n) ->
      let paper =
        match cause with
        | Difftest.I1_no_reorder -> "paper: 51 chains"
        | Difftest.I2_list_limit -> "paper: 10 chains"
        | Difftest.I3_no_backtracking -> "paper: 1 case"
        | Difftest.I4_no_aia -> "paper: 8,553 chains"
        | _ -> ""
      in
      Printf.bprintf b "  %-40s %6s   %s\n" (Difftest.cause_to_string cause)
        (Stats.with_commas n) paper)
    s.Difftest.by_cause;
  (* The CryptoAPI AIA-ablation: disable AIA and count which of its accepted
     chains survive thanks to the OS intermediate store. *)
  let cryptoapi = Clients.by_id Clients.Cryptoapi in
  let no_aia_params = { cryptoapi.Clients.params with Build_params.aia_fetch = false } in
  let cryptoapi_used_fetch case =
    match (Difftest.result_of case Clients.Cryptoapi).Difftest.outcome
            .Engine.accepted_attempt
    with
    | Some a -> a.Path_builder.used_aia || a.Path_builder.used_cache
    | None -> false
  in
  let ablation_outcomes =
    Pipeline.mapi ~jobs:v.v_jobs
      (fun i (domain, chain, _) ->
        let case = cases_arr.(i) in
        if Difftest.accepted_by case Clients.Cryptoapi && cryptoapi_used_fetch case
        then begin
          let store = env.Difftest.store_of cryptoapi.Clients.root_program in
          let ctx =
            { Path_builder.params = no_aia_params; store; aia = None;
              cache = env.Difftest.os_store; crls = None; now = env.Difftest.now }
          in
          let o = Engine.run ctx ~host:(Some domain) chain in
          Some (Engine.accepted o)
        end
        else None)
      nc_arr
  in
  let rescued = ref 0 and broke = ref 0 in
  Array.iter
    (function
      | Some true -> incr rescued
      | Some false -> incr broke
      | None -> ())
    ablation_outcomes;
  Printf.bprintf b
    "CryptoAPI AIA-disabled ablation: %d of its accepted chains fail, %d rescued by the\n\
     OS intermediate store (paper: 8,373 fail, 180 rescued)\n"
    !broke !rescued;
  { id = "section5.2"; title = "Section 5.2"; body = Buffer.contents b }

let section5_2 analysis = section5_2_view (view analysis)

(* --- Section 6: recommendations made executable --- *)

let section6 analysis =
  let env = Population.env analysis.pop in
  let b = Buffer.create 1024 in
  (* 6.1: remediation advice for one concrete non-compliant deployment. *)
  (match
     Array.to_list analysis.reports
     |> List.find_opt (fun (r, _) -> r.Population.scenario = C.Rev_merge_1int)
   with
  | Some (r, rep) ->
      Printf.bprintf b "Section 6.1 — advice for %s (%s):\n" r.Population.domain
        (C.scenario_to_string r.Population.scenario);
      List.iter
        (fun a ->
          Printf.bprintf b "  [%s] (%s) %s\n"
            (match a.Recommend.severity with `Must -> "MUST" | `Should -> "SHOULD")
            (Recommend.audience_to_string a.Recommend.audience)
            a.Recommend.text)
        (Recommend.server_advice rep);
      (match Recommend.corrected_chain rep with
      | Some fixed ->
          let fixed_report =
            Compliance.analyze
              ~store:(Universe.union_store analysis.pop.Population.universe)
              ~aia:(Universe.aia analysis.pop.Population.universe)
              ~domain:r.Population.domain fixed
          in
          Printf.bprintf b "  auto-corrected chain is %s\n"
            (if Compliance.compliant fixed_report then "COMPLIANT" else "still broken")
      | None -> Printf.bprintf b "  no self-contained correction (certificates missing)\n")
  | None -> Printf.bprintf b "Section 6.1: no reversed instance at this scale\n");
  (* 6.2: the capability ablation over the non-compliant corpus. *)
  let corpus =
    Array.to_list analysis.reports
    |> List.filter paper_non_compliant
    |> List.map (fun (r, _) -> (r.Population.domain, r.Population.chain))
  in
  Printf.bprintf b
    "\nSection 6.2 — capability ablation over the %s non-compliant chains\n"
    (Stats.with_commas (List.length corpus));
  let steps =
    Recommend.capability_ablation
      ~store:(env.Difftest.store_of Chaoschain_pki.Root_store.Mozilla)
      ~aia:env.Difftest.aia ~now:env.Difftest.now corpus
  in
  List.iter
    (fun s ->
      Printf.bprintf b "  %-34s accepts %s of %s (%s)\n" s.Recommend.label
        (Stats.with_commas s.Recommend.accepted)
        (Stats.with_commas s.Recommend.total)
        (Stats.pct s.Recommend.accepted s.Recommend.total))
    steps;
  (* Prioritization ambiguity statistics (the paper's 785 / 744 / 42). *)
  let all_chains =
    Array.to_list analysis.reports
    |> List.map (fun (r, _) -> (r.Population.domain, r.Population.chain))
  in
  let stats =
    Recommend.ambiguity_statistics
      ~store:(Universe.union_store analysis.pop.Population.universe)
      all_chains
  in
  Printf.bprintf b
    "\nIssuer-candidate ties (same subject_DN, compatible KID):\n\
    \  chains with ties: %s (paper: 785)\n\
    \  tie includes a trusted self-signed root -> prefer it: %s (paper: 744)\n\
    \  tie between validity variants -> prefer most recent: %s (paper: 42)\n"
    (Stats.with_commas stats.Recommend.chains_with_ties)
    (Stats.with_commas stats.Recommend.tie_with_trusted_root)
    (Stats.with_commas stats.Recommend.tie_validity_variants);
  { id = "section6"; title = "Section 6"; body = Buffer.contents b }

let dataset_overview_of d =
  let b = Buffer.create 256 in
  Printf.bprintf b "Collection (simulated two-vantage ZGrab over TLS 1.2):\n";
  List.iter
    (fun v ->
      Printf.bprintf b "  vantage %s: %s domains reached (paper: US 870,113 / AU 867,374)\n"
        v.Scanner.name (Stats.with_commas v.Scanner.reached))
    d.Scanner.vantages;
  Printf.bprintf b "  union dataset: %s domains, %s unique chains, %s unique certificates\n"
    (Stats.with_commas (Array.length d.Scanner.domains))
    (Stats.with_commas d.Scanner.unique_chains)
    (Stats.with_commas d.Scanner.unique_certs);
  Printf.bprintf b "  (paper: 906,336 unique chains, 861,747 unique certificates)\n";
  Printf.bprintf b "  TLS 1.2 vs 1.3 identical chains: %.1f%% (paper: 98.8%%)\n"
    d.Scanner.tls12_tls13_identical_pct;
  { id = "dataset"; title = "Section 3.1 dataset"; body = Buffer.contents b }

let dataset_overview analysis = dataset_overview_of analysis.dataset

let scan_results v =
  let reports = Array.map (fun (_, _, rep) -> rep) v.v_items in
  [ dataset_overview_of v.v_dataset;
    table3_reports reports; table5_reports reports; table7_reports reports;
    section5_2_view v ]

let run_all analysis =
  [ dataset_overview analysis;
    table1 (); table2 (); table3 analysis; table4 (); table5 analysis;
    table6 analysis; table7 analysis; table8 analysis; table9 ();
    table10 analysis; table11 analysis;
    figure1 analysis; figure2 analysis; figure3 analysis; figure4 analysis;
    figure5 analysis; section5_2 analysis; section6 analysis ]
