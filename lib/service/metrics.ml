(* Bucket upper bounds in milliseconds; the implicit last bucket is +inf. *)
let bounds_ms =
  [| 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0;
     500.0; 1000.0; 2500.0; 5000.0 |]

type t = {
  lock : Mutex.t;
  mutable requests : int;
  mutable checks : int;
  mutable hits : int;
  mutable misses : int;
  mutable rejects : int;
  mutable errors : int;
  histogram : int array;  (* Array.length bounds_ms + 1, last = overflow *)
  mutable lat_count : int;
  mutable lat_sum_ms : float;
  mutable lat_max_ms : float;
}

let create () =
  {
    lock = Mutex.create ();
    requests = 0;
    checks = 0;
    hits = 0;
    misses = 0;
    rejects = 0;
    errors = 0;
    histogram = Array.make (Array.length bounds_ms + 1) 0;
    lat_count = 0;
    lat_sum_ms = 0.0;
    lat_max_ms = 0.0;
  }

let locked t f =
  Mutex.lock t.lock;
  f ();
  Mutex.unlock t.lock

let incr_requests t = locked t (fun () -> t.requests <- t.requests + 1)
let incr_checks t = locked t (fun () -> t.checks <- t.checks + 1)
let incr_hits t = locked t (fun () -> t.hits <- t.hits + 1)
let incr_misses t = locked t (fun () -> t.misses <- t.misses + 1)
let incr_rejects t = locked t (fun () -> t.rejects <- t.rejects + 1)
let incr_errors t = locked t (fun () -> t.errors <- t.errors + 1)

let bucket_of ms =
  let n = Array.length bounds_ms in
  let rec go i = if i >= n then n else if ms <= bounds_ms.(i) then i else go (i + 1) in
  go 0

let observe_latency t seconds =
  let ms = seconds *. 1000.0 in
  locked t (fun () ->
      let b = bucket_of ms in
      t.histogram.(b) <- t.histogram.(b) + 1;
      t.lat_count <- t.lat_count + 1;
      t.lat_sum_ms <- t.lat_sum_ms +. ms;
      if ms > t.lat_max_ms then t.lat_max_ms <- ms)

type snapshot = {
  requests : int;
  checks : int;
  hits : int;
  misses : int;
  rejects : int;
  errors : int;
  lat_count : int;
  lat_mean_ms : float;
  lat_max_ms : float;
  lat_p50_ms : float;
  lat_p90_ms : float;
  lat_p95_ms : float;
  lat_p99_ms : float;
  lat_p999_ms : float;
  buckets : (float * int) list;
}

(* Approximate quantile: the upper bound of the first bucket whose cumulative
   count reaches q * total (the overflow bucket reports the observed max). *)
let quantile histogram total max_ms q =
  if total = 0 then 0.0
  else begin
    let target = Float.of_int total *. q in
    let n = Array.length bounds_ms in
    let rec go i cum =
      if i >= n then max_ms
      else
        let cum = cum + histogram.(i) in
        if Float.of_int cum >= target then bounds_ms.(i) else go (i + 1) cum
    in
    go 0 0
  end

(* Render raw counter state (already copied out from under any locks)
   into a snapshot; shared by the single-instance and aggregated paths so
   both derive quantiles the same way. *)
let render ~requests ~checks ~hits ~misses ~rejects ~errors ~histogram
    ~lat_count ~lat_sum_ms ~lat_max_ms =
  {
    requests;
    checks;
    hits;
    misses;
    rejects;
    errors;
    lat_count;
    lat_mean_ms =
      (if lat_count = 0 then 0.0 else lat_sum_ms /. Float.of_int lat_count);
    lat_max_ms;
    lat_p50_ms = quantile histogram lat_count lat_max_ms 0.5;
    lat_p90_ms = quantile histogram lat_count lat_max_ms 0.9;
    lat_p95_ms = quantile histogram lat_count lat_max_ms 0.95;
    lat_p99_ms = quantile histogram lat_count lat_max_ms 0.99;
    lat_p999_ms = quantile histogram lat_count lat_max_ms 0.999;
    buckets =
      List.init
        (Array.length histogram)
        (fun i ->
          let bound =
            if i < Array.length bounds_ms then bounds_ms.(i) else infinity
          in
          (bound, histogram.(i)));
  }

let snapshot t =
  Mutex.lock t.lock;
  let histogram = Array.copy t.histogram in
  let s =
    render ~requests:t.requests ~checks:t.checks ~hits:t.hits
      ~misses:t.misses ~rejects:t.rejects ~errors:t.errors ~histogram
      ~lat_count:t.lat_count ~lat_sum_ms:t.lat_sum_ms ~lat_max_ms:t.lat_max_ms
  in
  Mutex.unlock t.lock;
  s

let aggregate ts =
  let requests = ref 0 and checks = ref 0 and hits = ref 0 in
  let misses = ref 0 and rejects = ref 0 and errors = ref 0 in
  let lat_count = ref 0 and lat_sum_ms = ref 0.0 and lat_max_ms = ref 0.0 in
  let histogram = Array.make (Array.length bounds_ms + 1) 0 in
  List.iter
    (fun t ->
      (* each instance is locked on its own; the union is not one atomic
         cut across shards, but every counter in it is consistent *)
      Mutex.lock t.lock;
      requests := !requests + t.requests;
      checks := !checks + t.checks;
      hits := !hits + t.hits;
      misses := !misses + t.misses;
      rejects := !rejects + t.rejects;
      errors := !errors + t.errors;
      lat_count := !lat_count + t.lat_count;
      lat_sum_ms := !lat_sum_ms +. t.lat_sum_ms;
      if t.lat_max_ms > !lat_max_ms then lat_max_ms := t.lat_max_ms;
      Array.iteri (fun i c -> histogram.(i) <- histogram.(i) + c) t.histogram;
      Mutex.unlock t.lock)
    ts;
  render ~requests:!requests ~checks:!checks ~hits:!hits ~misses:!misses
    ~rejects:!rejects ~errors:!errors ~histogram ~lat_count:!lat_count
    ~lat_sum_ms:!lat_sum_ms ~lat_max_ms:!lat_max_ms

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>chaind: %d requests (%d checks: %d hits / %d misses; %d rejected, \
     %d errors)@,latency: mean %.2fms  p50 <=%.2fms  p95 <=%.2fms  p99 \
     <=%.2fms  p999 <=%.2fms  max %.2fms over %d served@]"
    s.requests s.checks s.hits s.misses s.rejects s.errors s.lat_mean_ms
    s.lat_p50_ms s.lat_p95_ms s.lat_p99_ms s.lat_p999_ms s.lat_max_ms
    s.lat_count
