(** A bounded, thread-safe LRU cache over string keys.

    This is the evicting replacement for [Pipeline.Memo] that a long-lived
    service needs: the offline pipeline can let its memo grow for the length
    of one batch run, but chaind serves an unbounded request stream, so the
    verdict cache must hold a hard capacity. A {!find} refreshes recency; an
    {!add} past capacity evicts the least-recently-used entry. All operations
    are [Mutex]-guarded and O(1) (hash table + intrusive doubly-linked
    list). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity >= 0] (raises [Invalid_argument] otherwise). Capacity 0 is a
    valid degenerate cache: {!find} always misses and {!add} is a no-op —
    how chaind runs with caching disabled. *)

val capacity : 'a t -> int

val find : 'a t -> string -> 'a option
(** Returns the cached value and marks the entry most-recently used. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or refresh) a binding. When the cache is full the
    least-recently-used entry is evicted. Re-adding an existing key updates
    its value and recency without eviction. *)

val mem : 'a t -> string -> bool
(** Membership test that does NOT refresh recency (for tests/inspection). *)

val size : 'a t -> int
val evictions : 'a t -> int
(** Entries dropped so far to make room. *)

val keys_mru_first : 'a t -> string list
(** Current keys, most-recently-used first (for tests). *)

val bindings_lru_first : 'a t -> (string * 'a) list
(** Current (key, value) bindings, least-recently-used first — the order
    to replay them into another cache so recency is preserved (how a
    warmed shard-0 cache is replicated to its sibling shards). *)
