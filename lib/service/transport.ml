module type S = sig
  type conn

  val recv : conn -> block:bool -> [ `Frame of string | `Empty | `Eof | `Overlong ]
  val send : conn -> string -> unit
end

let default_max_frame = 1 lsl 20

module Fd = struct
  type conn = {
    fd : Unix.file_descr;
    out : out_channel;
    buf : Buffer.t;       (* bytes read but not yet returned *)
    chunk : Bytes.t;
    max_frame : int;      (* longest line accepted as a frame *)
    mutable discarding : bool;
        (* an overlong line was reported; drop bytes through its newline *)
    mutable eof : bool;   (* the descriptor reported end-of-file *)
    mutable closed : bool; (* eof AND the buffer has been fully drained *)
    mutable broken : bool
        (* the write side died (EPIPE/ECONNRESET): drop further sends and
           report EOF so the serve loop winds down this conversation *)
  }

  let make ?(max_frame = default_max_frame) fd out =
    if max_frame < 1 then invalid_arg "Transport.Fd.make: max_frame >= 1";
    { fd; out; buf = Buffer.create 4096; chunk = Bytes.create 4096;
      max_frame; discarding = false; eof = false; closed = false;
      broken = false }

  let stdio ?max_frame () = make ?max_frame Unix.stdin stdout

  (* First complete line in [buf], removing it (and its newline). *)
  let take_line c =
    let s = Buffer.contents c.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
        Buffer.clear c.buf;
        Buffer.add_substring c.buf s (i + 1) (String.length s - i - 1);
        Some (String.sub s 0 i)

  let readable fd =
    match Unix.select [ fd ] [] [] 0.0 with
    | [], _, _ -> false
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

  let rec fill c ~block =
    match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
    | 0 -> c.eof <- true
    | n -> Buffer.add_subbytes c.buf c.chunk 0 n
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if block then fill c ~block
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        (* the peer vanished mid-read: treat as end-of-stream, not a crash *)
        c.eof <- true

  let rec recv c ~block =
    if c.discarding then begin
      (* Drop the rest of an already-reported overlong line. The buffer is
         cleared on every pass, so memory stays bounded by the read chunk no
         matter how long the line runs. *)
      let s = Buffer.contents c.buf in
      match String.index_opt s '\n' with
      | Some i ->
          Buffer.clear c.buf;
          Buffer.add_substring c.buf s (i + 1) (String.length s - i - 1);
          c.discarding <- false;
          recv c ~block
      | None ->
          Buffer.clear c.buf;
          if c.eof then begin
            c.closed <- true;
            `Eof
          end
          else if block || readable c.fd then begin
            fill c ~block;
            if (not c.eof) && (not block) && Buffer.length c.buf = 0 then `Empty
            else recv c ~block
          end
          else `Empty
    end
    else
      match take_line c with
      | Some line ->
          if String.length line > c.max_frame then `Overlong else `Frame line
      | None ->
          if Buffer.length c.buf > c.max_frame then begin
            (* No newline yet and already past the bound: report now and
               switch to discard mode rather than buffering without limit. *)
            Buffer.clear c.buf;
            c.discarding <- true;
            `Overlong
          end
          else if c.closed then `Eof
          else if c.eof then begin
            (* deliver a trailing unterminated line, then EOF forever *)
            c.closed <- true;
            let rest = Buffer.contents c.buf in
            Buffer.clear c.buf;
            if rest = "" then `Eof else `Frame rest
          end
          else if block || readable c.fd then begin
            fill c ~block;
            if (not c.eof) && (not block) && Buffer.length c.buf = 0 then `Empty
            else recv c ~block
          end
          else `Empty

  (* One reply, written straight to the descriptor (the out_channel is kept
     only to name it). A peer that disconnected mid-conversation surfaces
     here as EPIPE/ECONNRESET (with SIGPIPE ignored): the connection is
     marked closed — recv answers [`Eof] from then on and later sends are
     dropped — instead of the write killing the process. EINTR retries. *)
  let send c frame =
    if not c.broken then begin
      let fd = Unix.descr_of_out_channel c.out in
      let line = frame ^ "\n" in
      let len = String.length line in
      let rec write off =
        if off < len then
          match Unix.write_substring fd line off (len - off) with
          | n -> write (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
          | exception
              Unix.Unix_error
                ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
              c.broken <- true;
              c.eof <- true;
              c.closed <- true;
              Buffer.clear c.buf
      in
      write 0
    end
end

module Mem = struct
  type conn = {
    mutable input : string list;
    mutable sent : string list;
    max_frame : int;
  }

  let make ?(max_frame = default_max_frame) input =
    { input; sent = []; max_frame }

  let output c = List.rev c.sent

  let recv c ~block:_ =
    match c.input with
    | [] -> `Eof
    | frame :: rest ->
        c.input <- rest;
        if String.length frame > c.max_frame then `Overlong else `Frame frame

  let send c frame = c.sent <- frame :: c.sent
end
