(** netd — wiring chaind's engine into the {!Chaoschain_net.Netloop}
    event loop: address parsing, listener/dial socket plumbing, the engine
    {!Chaoschain_net.Netloop.sink}, and the signal-aware serve runner
    behind [chaoscheck serve --listen].

    The engine is shared with the serial stdio path, so a verdict computed
    for a frame that arrived over netd is byte-identical to the same frame
    fed through [serve]'s stdin — same cache, same batcher, same bytes. *)

type addr =
  | Unix_path of string  (** a filesystem socket path *)
  | Tcp of string * int  (** host, port *)

val parse_addr : string -> (addr, string) result
(** Accepted spellings: ["unix:PATH"], ["tcp:HOST:PORT"], ["HOST:PORT"]
    (numeric port), and anything else as a bare Unix socket path. *)

val addr_to_string : addr -> string

val listen_socket : addr -> (Unix.file_descr, string) result
(** Bind and listen (backlog 128). A stale Unix socket path is unlinked
    first; TCP listeners set [SO_REUSEADDR]. *)

val dial : addr -> Unix.file_descr
(** Open one client connection (used by loadgen and tests). Raises
    [Unix.Unix_error] / [Failure] on refusal or resolution failure. *)

val sink : Engine.t -> Chaoschain_net.Netloop.sink
(** The event-loop view of an engine: submit = {!Engine.submit},
    drain = {!Engine.drain_tagged}, admission gate = {!Engine.can_admit},
    overlong replies = {!Engine.overlong_response}. *)

val serve_listen :
  ?config:Chaoschain_net.Netloop.config ->
  ?backend:Chaoschain_net.Poller.backend ->
  engines:Engine.t list ->
  addr ->
  (Chaoschain_net.Netloop.stats, string) result
(** Run one event loop per engine on [addr] until [SIGTERM]/[SIGINT]
    triggers the graceful drain of every shard (stop accepting and
    adopting, flush in-flight batches and write buffers, close).

    One engine: exactly the single-loop server, on the calling Domain.
    Several: the engines are {!Engine.link_shards}-grouped and each runs
    its own loop — shard 0 on the calling Domain, the rest on spawned
    Domains, joined before returning. A TCP address gets one
    [SO_REUSEPORT] listener per shard (kernel-balanced accepts) where the
    option takes; a Unix-socket address — or a platform without the
    option — gets a single listener on shard 0 whose accepted
    connections are dealt round-robin to the other shards through
    {!Chaoschain_net.Netloop.offer}. Verdict replies are byte-identical
    at every shard count: shards share nothing that affects a verdict
    (per-shard engines; only metrics and the intern table are shared,
    both Mutex-guarded).

    [backend] (default [Select]) must be available — resolve the user's
    choice with {!Chaoschain_net.Poller.choose} first.

    Ignores [SIGPIPE] for the process (client disconnects must surface as
    [EPIPE], not kill chaind) and restores the previous TERM/INT
    dispositions before returning. A Unix socket path is unlinked on the
    way out. Returns the shards' stats summed
    ({!Chaoschain_net.Netloop.aggregate_stats}). *)
