module Netloop = Chaoschain_net.Netloop

type addr = Unix_path of string | Tcp of string * int

let parse_addr s =
  let tcp_of host port_s =
    match int_of_string_opt port_s with
    | Some p when p > 0 && p < 65536 ->
        if host = "" then Error "tcp address needs a host (try 127.0.0.1)"
        else Ok (Tcp (host, p))
    | _ -> Error (Printf.sprintf "invalid port %S" port_s)
  in
  if s = "" then Error "empty listen address"
  else if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_path (String.sub s 5 (String.length s - 5)))
  else if String.length s > 4 && String.sub s 0 4 = "tcp:" then begin
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "tcp address %S needs HOST:PORT" rest)
    | Some i ->
        tcp_of (String.sub rest 0 i)
          (String.sub rest (i + 1) (String.length rest - i - 1))
  end
  else
    match String.rindex_opt s ':' with
    | Some i
      when String.length s > i + 1
           && int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
              <> None ->
        tcp_of (String.sub s 0 i)
          (String.sub s (i + 1) (String.length s - i - 1))
    | _ -> Ok (Unix_path s)

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let resolve host port =
  match Unix.inet_addr_of_string host with
  | a -> Unix.ADDR_INET (a, port)
  | exception Failure _ -> (
      match Unix.getaddrinfo host (string_of_int port)
              [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ ->
          Unix.ADDR_INET (a, port)
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

let listen_socket addr =
  match addr with
  | Unix_path path -> (
      (try
         match (Unix.lstat path).Unix.st_kind with
         | Unix.S_SOCK -> Unix.unlink path
         | _ -> ()
       with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 128
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot listen on %s: %s" path
               (Unix.error_message e)))
  | Tcp (host, port) -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (resolve host port);
        Unix.listen fd 128
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot listen on %s:%d: %s" host port
               (Unix.error_message e))
      | exception Failure msg ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error msg)

let dial = function
  | Unix_path path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (resolve host port)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd

let sink engine =
  {
    Netloop.can_admit = (fun () -> Engine.can_admit engine);
    submit = (fun ~tag frame -> Engine.submit engine ~tag frame);
    drain = (fun () -> Engine.drain_tagged engine);
    pending = (fun () -> Engine.pending engine);
    overlong_reply = (fun () -> Engine.overlong_response engine);
  }

let serve_listen ?config ~engine addr =
  match listen_socket addr with
  | Error _ as e -> e
  | Ok listen ->
      let loop = Netloop.create ?config ~listen (sink engine) in
      let stop_on _ = Netloop.stop loop in
      let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop_on) in
      let old_int = Sys.signal Sys.sigint (Sys.Signal_handle stop_on) in
      let restore () =
        Sys.set_signal Sys.sigpipe old_pipe;
        Sys.set_signal Sys.sigterm old_term;
        Sys.set_signal Sys.sigint old_int;
        match addr with
        | Unix_path path ->
            (try Unix.unlink path with Unix.Unix_error _ -> ())
        | Tcp _ -> ()
      in
      (match Netloop.run loop with
      | () -> restore ()
      | exception e -> restore (); raise e);
      Ok (Netloop.stats loop)
