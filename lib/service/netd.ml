module Netloop = Chaoschain_net.Netloop
module Poller = Chaoschain_net.Poller

type addr = Unix_path of string | Tcp of string * int

let parse_addr s =
  let tcp_of host port_s =
    match int_of_string_opt port_s with
    | Some p when p > 0 && p < 65536 ->
        if host = "" then Error "tcp address needs a host (try 127.0.0.1)"
        else Ok (Tcp (host, p))
    | _ -> Error (Printf.sprintf "invalid port %S" port_s)
  in
  if s = "" then Error "empty listen address"
  else if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_path (String.sub s 5 (String.length s - 5)))
  else if String.length s > 4 && String.sub s 0 4 = "tcp:" then begin
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "tcp address %S needs HOST:PORT" rest)
    | Some i ->
        tcp_of (String.sub rest 0 i)
          (String.sub rest (i + 1) (String.length rest - i - 1))
  end
  else
    match String.rindex_opt s ':' with
    | Some i
      when String.length s > i + 1
           && int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
              <> None ->
        tcp_of (String.sub s 0 i)
          (String.sub s (i + 1) (String.length s - i - 1))
    | _ -> Ok (Unix_path s)

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let resolve host port =
  match Unix.inet_addr_of_string host with
  | a -> Unix.ADDR_INET (a, port)
  | exception Failure _ -> (
      match Unix.getaddrinfo host (string_of_int port)
              [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ ->
          Unix.ADDR_INET (a, port)
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

let listen_socket addr =
  match addr with
  | Unix_path path -> (
      (try
         match (Unix.lstat path).Unix.st_kind with
         | Unix.S_SOCK -> Unix.unlink path
         | _ -> ()
       with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 128
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot listen on %s: %s" path
               (Unix.error_message e)))
  | Tcp (host, port) -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (resolve host port);
        Unix.listen fd 128
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot listen on %s:%d: %s" host port
               (Unix.error_message e))
      | exception Failure msg ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error msg)

let dial = function
  | Unix_path path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (resolve host port)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd

let sink engine =
  {
    Netloop.can_admit = (fun () -> Engine.can_admit engine);
    submit = (fun ~tag frame -> Engine.submit engine ~tag frame);
    drain = (fun () -> Engine.drain_tagged engine);
    pending = (fun () -> Engine.pending engine);
    overlong_reply = (fun () -> Engine.overlong_response engine);
  }

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* One SO_REUSEPORT listener per shard, so the kernel balances accepts
   across the shard loops with no user-space dispatcher. TCP only, and
   only where the option takes: any failure closes what was opened and
   reports [None], sending the caller down the dispatcher path. *)
let reuseport_group addr n =
  match addr with
  | Unix_path _ -> None (* SO_REUSEPORT does not apply to Unix sockets *)
  | Tcp (host, port) ->
      let make () =
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        match
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.setsockopt fd Unix.SO_REUSEPORT true;
          Unix.bind fd (resolve host port);
          Unix.listen fd 128
        with
        | () -> Some fd
        | exception _ ->
            close_quiet fd;
            None
      in
      let rec go acc i =
        if i = n then Some (List.rev acc)
        else
          match make () with
          | Some fd -> go (fd :: acc) (i + 1)
          | None ->
              List.iter close_quiet acc;
              None
      in
      go [] 0

(* Run the shard loops to completion: loop 0 on this Domain, the rest on
   spawned Domains, one set of signal handlers draining them all (stop is
   Domain-safe). Every shard is joined before the sockets' address is
   unlinked and the aggregated stats are returned. *)
let run_loops loops addr =
  let stop_all _ = List.iter Netloop.stop loops in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop_all) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle stop_all) in
  let restore () =
    Sys.set_signal Sys.sigpipe old_pipe;
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    match addr with
    | Unix_path path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  in
  let domains =
    List.map
      (fun loop ->
        Domain.spawn (fun () ->
            match Netloop.run loop with
            | () -> None
            | exception e ->
                (* a dead shard must not strand the others in [run] *)
                stop_all ();
                Some e))
      (List.tl loops)
  in
  let main_exn =
    match Netloop.run (List.hd loops) with
    | () -> None
    | exception e ->
        stop_all ();
        Some e
  in
  let first_exn =
    List.fold_left
      (fun acc d ->
        match (acc, Domain.join d) with
        | (Some _ as e), _ -> e
        | None, e -> e)
      main_exn domains
  in
  restore ();
  match first_exn with
  | Some e -> raise e
  | None -> Ok (Netloop.aggregate_stats (List.map Netloop.stats loops))

let serve_listen ?config ?(backend = Poller.Select) ~engines addr =
  match engines with
  | [] -> Error "serve_listen: at least one engine required"
  | [ engine ] -> (
      (* single shard: the PR-7 shape, one loop owning the listener *)
      match listen_socket addr with
      | Error _ as e -> e
      | Ok listen ->
          run_loops [ Netloop.create ?config ~backend ~listen (sink engine) ] addr)
  | first :: rest as engines -> (
      Engine.link_shards engines;
      let n = List.length engines in
      match reuseport_group addr n with
      | Some listeners ->
          run_loops
            (List.map2
               (fun engine listen ->
                 Netloop.create ?config ~backend ~listen (sink engine))
               engines listeners)
            addr
      | None -> (
          (* shard 0 owns the one listener and deals accepted connections
             round-robin; a shard that refuses (draining, budget spent)
             forfeits its turn and shard 0 keeps the connection *)
          match listen_socket addr with
          | Error _ as e -> e
          | Ok listen ->
              let followers =
                Array.of_list
                  (List.map
                     (fun engine -> Netloop.create ?config ~backend (sink engine))
                     rest)
              in
              let rr = ref 0 in
              let dispatch fd =
                let target = !rr mod (Array.length followers + 1) in
                incr rr;
                target > 0 && Netloop.offer followers.(target - 1) fd
              in
              let loop0 =
                Netloop.create ?config ~backend ~listen ~dispatch (sink first)
              in
              run_loops (loop0 :: Array.to_list followers) addr))
