open Chaoschain_x509
open Chaoschain_core
open Chaoschain_pki
module Pem = Chaoschain_deployment.Pem
module Base64 = Chaoschain_deployment.Base64
module Certmsg = Chaoschain_tlssim.Certmsg
module Pipeline = Chaoschain_measurement.Pipeline
module Scanner = Chaoschain_measurement.Scanner
module Hex = Chaoschain_crypto.Hex

type env = {
  diff_env : Difftest.env;
  union_store : Root_store.t;
  program_store : Root_store.program -> Root_store.t;
  aia : Aia_repo.t;
  find_scenario : string -> (string * Cert.t list) option;
}

type t = {
  env : env;
  cache : string Lru.t;          (* options+chain key -> verdict JSON bytes *)
  metrics : Metrics.t;
  queue : (int * string) Queue.t;
      (* admitted raw frames, tagged with the submitter's connection id
         (0 for the serial transports); the tag rides through drain so a
         multi-connection front end can route each reply home *)
  queue_capacity : int;
  batch : int;
  pool : Pipeline.Pool.t;
  empty_aia : Aia_repo.t;        (* every fetch 404s: the aia:false world *)
  default_format : Certmsg.format option;
      (* assumed framing for "certmsg" checks that do not declare one;
         [None] = auto-detect. NOT part of the verdict key: the verdict
         depends only on the decoded certificate list. *)
  now : unit -> float;           (* injectable clock for latency timing *)
  mutable store_stats : (string * Json.t) list option;
      (* extra "store" block in stats replies, set by --warm-store *)
  mutable experiments_stats : Json.t option;
      (* extra "experiments" block: the warm corpus's compliance tables as
         report-IR JSON *)
  mutable shard_group : t list;
      (* [] = standalone. Non-empty: this engine is one shard of the group
         (itself included), and its stats replies report the union so a
         client gets the same whole-service picture whichever shard
         answers. *)
}

let create ~env ?(cache_capacity = 1024) ?(queue_capacity = 64) ?(batch = 8)
    ?(jobs = 1) ?default_format ?(now = Unix.gettimeofday) () =
  if cache_capacity < 0 then invalid_arg "Engine.create: cache_capacity >= 0";
  if queue_capacity < 1 then invalid_arg "Engine.create: queue_capacity >= 1";
  if batch < 1 then invalid_arg "Engine.create: batch >= 1";
  if jobs < 1 then invalid_arg "Engine.create: jobs >= 1";
  {
    env;
    cache = Lru.create ~capacity:cache_capacity;
    metrics = Metrics.create ();
    queue = Queue.create ();
    queue_capacity;
    batch;
    pool = Pipeline.Pool.create ~jobs;
    empty_aia = Aia_repo.create ();
    default_format;
    now;
    store_stats = None;
    experiments_stats = None;
    shard_group = [];
  }

let metrics t = Metrics.snapshot t.metrics
let cache_size t = Lru.size t.cache
let cache_capacity t = Lru.capacity t.cache
let cache_evictions t = Lru.evictions t.cache
let pending t = Queue.length t.queue
let queue_capacity t = t.queue_capacity
let can_admit t = Queue.length t.queue < t.queue_capacity
let shutdown t = Pipeline.Pool.shutdown t.pool
let set_store_stats t fields = t.store_stats <- Some fields
let set_experiments t j = t.experiments_stats <- Some j

let link_shards ts =
  (match ts with [] | [ _ ] -> invalid_arg "Engine.link_shards: >= 2 engines"
   | _ -> ());
  List.iter (fun t -> t.shard_group <- ts) ts

let aggregate_metrics ts = Metrics.aggregate (List.map (fun t -> t.metrics) ts)

let copy_cache src dst =
  List.iter
    (fun (k, v) -> Lru.add dst.cache k v)
    (Lru.bindings_lru_first src.cache)

(* --- verdict construction --- *)

let json_strings l = Json.List (List.map (fun s -> Json.String s) l)

let compliance_json (report : Compliance.report) =
  let o = report.Compliance.order in
  let c = report.Compliance.completeness in
  Json.Obj
    [ ("compliant", Json.Bool (Compliance.compliant report));
      ("reasons", json_strings (Compliance.non_compliance_reasons report));
      ("leaf", Json.String (Leaf_check.verdict_to_string report.Compliance.leaf));
      ( "order",
        Json.Obj
          [ ("ordered", Json.Bool o.Order_check.ordered);
            ("violations", json_strings (Order_check.violations o));
            ("path_count", Json.Int o.Order_check.path_count);
            ("reversed_paths", Json.Int o.Order_check.reversed_paths) ] );
      ( "completeness",
        Json.Obj
          [ ( "verdict",
              Json.String (Completeness.verdict_to_string c.Completeness.verdict) );
            ( "cause",
              match c.Completeness.cause with
              | None -> Json.Null
              | Some cause ->
                  Json.String (Completeness.incomplete_cause_to_string cause) );
            ("missing_count", Json.Int c.Completeness.missing_count);
            ("via_aia", Json.Bool c.Completeness.via_aia) ] ) ]

let difftest_json ~full (case : Difftest.case) =
  let clients =
    Json.List
      (List.map
         (fun (r : Difftest.client_result) ->
           Json.Obj
             [ ("name", Json.String r.Difftest.client.Clients.name);
               ("version", Json.String r.Difftest.client.Clients.version);
               ("accepted", Json.Bool (Engine.accepted r.Difftest.outcome));
               ("message", Json.String r.Difftest.message) ])
         case.Difftest.results)
  in
  let agreement =
    (* The cause taxonomy and the agreement statistics are defined over the
       full eight-client panel; a subset request only reports per-client
       outcomes. *)
    if not full then []
    else
      [ ( "causes",
          json_strings
            (List.map Difftest.cause_to_string (Difftest.classify case)) );
        ("browsers_agree", Json.Bool (Difftest.browsers_agree case));
        ("libraries_agree", Json.Bool (Difftest.libraries_agree case));
        ("all_browsers_pass", Json.Bool (Difftest.all_browsers_pass case));
        ("all_libraries_pass", Json.Bool (Difftest.all_libraries_pass case)) ]
  in
  Json.Obj (("clients", clients) :: agreement)

let recommend_json (report : Compliance.report) =
  let advice =
    Json.List
      (List.map
         (fun (a : Recommend.advice) ->
           Json.Obj
             [ ( "audience",
                 Json.String (Recommend.audience_to_string a.Recommend.audience) );
               ( "severity",
                 Json.String
                   (match a.Recommend.severity with
                   | `Must -> "must"
                   | `Should -> "should") );
               ("text", Json.String a.Recommend.text) ])
         (Recommend.server_advice report))
  in
  let corrected =
    match Recommend.corrected_chain report with
    | Some certs -> Json.String (Pem.encode_certs certs)
    | None -> Json.Null
  in
  Json.Obj [ ("advice", advice); ("corrected_pem", corrected) ]

let compute_verdict t (c : Protocol.check) ~domain certs =
  let store =
    match c.Protocol.store with
    | Protocol.Union -> t.env.union_store
    | Protocol.Program p -> t.env.program_store p
  in
  let aia_repo = if c.Protocol.aia then t.env.aia else t.empty_aia in
  let report =
    Compliance.analyze ~aia_enabled:c.Protocol.aia ~store ~aia:aia_repo ~domain
      certs
  in
  let denv =
    let base = t.env.diff_env in
    let base =
      match c.Protocol.store with
      | Protocol.Union -> base
      | Protocol.Program _ -> { base with Difftest.store_of = (fun _ -> store) }
    in
    if c.Protocol.aia then base else { base with Difftest.aia = t.empty_aia }
  in
  let full, case =
    match c.Protocol.clients with
    | None -> (true, Difftest.run_case denv ~domain certs)
    | Some ids ->
        ( false,
          Difftest.run_case_clients denv
            (List.map Clients.by_id ids)
            ~domain certs )
  in
  Json.to_string
    (Json.Obj
       [ ("domain", Json.String domain);
         ( "chain",
           Json.Obj
             [ ("length", Json.Int (List.length certs));
               ( "sha256",
                 Json.String (Hex.encode (Scanner.chain_fingerprint certs)) ) ] );
         ( "options",
           Json.Obj
             [ ("store", Json.String (Protocol.store_choice_to_string c.Protocol.store));
               ("aia", Json.Bool c.Protocol.aia);
               ( "clients",
                 match c.Protocol.clients with
                 | None -> Json.String "all"
                 | Some ids ->
                     json_strings (List.map Protocol.client_id_to_string ids) ) ] );
         ("compliance", compliance_json report);
         ("difftest", difftest_json ~full case);
         ("recommend", recommend_json report) ])

(* The cache key: PR 1's chain fingerprint scheme ([Difftest.chain_key] =
   chain SHA-256 + the hostname-match bit) extended with the exact request
   parameters the verdict depends on — the scanned domain (the leaf-placement
   classification reads it beyond the match bit) and the option set. *)
let verdict_key (c : Protocol.check) ~domain certs =
  let opts =
    Printf.sprintf "%s|%c|%s"
      (Protocol.store_choice_to_string c.Protocol.store)
      (if c.Protocol.aia then '1' else '0')
      (match c.Protocol.clients with
      | None -> "all"
      | Some ids ->
          String.concat ","
            (List.sort_uniq compare (List.map Protocol.client_id_to_string ids)))
  in
  Hex.encode (Difftest.chain_key ~domain certs) ^ "|" ^ domain ^ "|" ^ opts

(* --- cache warming --- *)

(* Pre-fill the verdict LRU from a corpus: compute the default-options
   verdict (union store, AIA on, all clients) for each distinct chain and
   install it under the same key a live request would probe. Metrics are NOT
   touched — warming is not traffic, and a warmed engine must answer with
   bytes identical to a cold one (the warm fill shows up only as cache hits
   on later requests, and in the "store" stats block). *)
let warm t pairs =
  let check =
    { Protocol.domain = None; pem = None; scenario = None; certmsg = None;
      format = None; aia = true; store = Protocol.Union; clients = None }
  in
  let cap = Lru.capacity t.cache in
  if cap = 0 then 0
  else begin
    let seen = Hashtbl.create 1024 in
    let todo = ref [] in
    List.iter
      (fun (domain, certs) ->
        if Hashtbl.length seen < cap then begin
          let key = verdict_key check ~domain certs in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            todo := (key, domain, certs) :: !todo
          end
        end)
      pairs;
    let todo = Array.of_list (List.rev !todo) in
    let out = Array.make (Array.length todo) "" in
    Pipeline.Pool.run t.pool (Array.length todo) (fun i ->
        let _, domain, certs = todo.(i) in
        out.(i) <- compute_verdict t check ~domain certs);
    Array.iteri (fun i (key, _, _) -> Lru.add t.cache key out.(i)) todo;
    Array.length todo
  end

(* --- batch processing --- *)

(* A prepared frame. Preparation runs sequentially on the serve thread: it
   parses, resolves the chain, consults the cache and coalesces duplicate
   keys; only [Fresh] slots reach the parallel pool. *)
type fresh = { f_id : string option; f_key : string; compute : unit -> string }

type slot =
  | Ready of string  (* response fully determined (errors, cache hits) *)
  | Stats of string option
  | Fresh of fresh
  | Join of string option * string
      (* (id, key) of an earlier Fresh in this batch: coalesced, counted hit *)

let with_domain (c : Protocol.check) certs =
  match c.Protocol.domain with
  | Some d -> Ok (d, certs)
  | None -> Error ("malformed_frame", "\"domain\" is required")

(* Decode a base64 TLS Certificate message in the declared framing, the
   engine's default framing, or — absent both — by auto-detection. The
   source and framing stop mattering here: downstream, only the decoded
   certificate list (and thus the verdict key) exists, which is what makes
   verdicts byte-identical across the two encodings of one chain. *)
let resolve_certmsg t (c : Protocol.check) b64 =
  match Base64.decode b64 with
  | Error e -> Error ("malformed_certmsg", "invalid base64: " ^ e)
  | Ok wire -> (
      let decoded =
        match (c.Protocol.format, t.default_format) with
        | Some f, _ | None, Some f -> Certmsg.decode f wire
        | None, None -> Certmsg.decode_auto wire
      in
      match decoded with
      | Error e -> Error ("malformed_certmsg", e)
      | Ok msg -> (
          match Certmsg.certs msg with
          | [] -> Error ("malformed_certmsg", "no certificates in message")
          | certs -> with_domain c certs))

let resolve_chain t (c : Protocol.check) =
  match (c.Protocol.pem, c.Protocol.scenario, c.Protocol.certmsg) with
  | Some pem, _, _ -> (
      match Pem.decode_certs pem with
      | Error e -> Error ("malformed_pem", e)
      | Ok [] -> Error ("malformed_pem", "no certificates in input")
      | Ok certs -> with_domain c certs)
  | None, Some scenario, _ -> (
      match t.env.find_scenario scenario with
      | None -> Error ("unknown_scenario", "no scenario matches " ^ scenario)
      | Some (scenario_domain, certs) ->
          Ok (Option.value c.Protocol.domain ~default:scenario_domain, certs))
  | None, None, Some b64 -> resolve_certmsg t c b64
  | None, None, None -> Error ("malformed_frame", "no chain source")

let stats_json t =
  (* Sharded, the reply must describe the whole service, not whichever
     shard the connection landed on: counters and histograms are the
     cross-shard union, cache occupancy is summed, and a "shards" field
     announces the group size. Standalone (the stdio path, --shards 1)
     the reply bytes are exactly the ungrouped ones — no "shards" field. *)
  let s, cache_block, shards_block =
    match t.shard_group with
    | [] ->
        ( Metrics.snapshot t.metrics,
          [ ("size", Json.Int (cache_size t));
            ("capacity", Json.Int (cache_capacity t));
            ("evictions", Json.Int (cache_evictions t)) ],
          [] )
    | group ->
        let sum f = List.fold_left (fun acc g -> acc + f g) 0 group in
        ( aggregate_metrics group,
          [ ("size", Json.Int (sum cache_size));
            ("capacity", Json.Int (sum cache_capacity));
            ("evictions", Json.Int (sum cache_evictions)) ],
          [ ("shards", Json.Int (List.length group)) ] )
  in
  let store_block =
    match t.store_stats with
    | None -> []
    | Some fields -> [ ("store", Json.Obj fields) ]
  in
  let experiments_block =
    match t.experiments_stats with
    | None -> []
    | Some j -> [ ("experiments", j) ]
  in
  Json.Obj
    ([ ("requests", Json.Int s.Metrics.requests);
      ("checks", Json.Int s.Metrics.checks);
      ("hits", Json.Int s.Metrics.hits);
      ("misses", Json.Int s.Metrics.misses);
      ("rejects", Json.Int s.Metrics.rejects);
      ("errors", Json.Int s.Metrics.errors);
      ( "cache", Json.Obj cache_block );
      ( "intern",
        (* The process-wide certificate intern table (distinct from the
           verdict LRU above): the LRU caches whole responses keyed by
           chain + options, the intern table shares parsed [Cert.t] values
           keyed by DER fingerprint, so even LRU misses skip re-parsing any
           certificate seen before. *)
        let i = Intern.stats () in
        Json.Obj
          [ ("entries", Json.Int i.Intern.entries);
            ("lookups", Json.Int i.Intern.lookups);
            ("reused", Json.Int i.Intern.hits) ] );
      ( "config",
        Json.Obj
          [ ("queue_capacity", Json.Int t.queue_capacity);
            ("batch", Json.Int t.batch);
            ("jobs", Json.Int (Pipeline.Pool.jobs t.pool)) ] );
      ( "latency_ms",
        Json.Obj
          [ ("count", Json.Int s.Metrics.lat_count);
            ("mean", Json.Float s.Metrics.lat_mean_ms);
            ("p50", Json.Float s.Metrics.lat_p50_ms);
            ("p90", Json.Float s.Metrics.lat_p90_ms);
            ("p95", Json.Float s.Metrics.lat_p95_ms);
            ("p99", Json.Float s.Metrics.lat_p99_ms);
            ("p999", Json.Float s.Metrics.lat_p999_ms);
            ("max", Json.Float s.Metrics.lat_max_ms);
            ( "buckets",
              Json.List
                (List.map
                   (fun (bound, count) ->
                     Json.Obj
                       [ ( "le",
                           if Float.is_finite bound then Json.Float bound
                           else Json.String "inf" );
                         ("count", Json.Int count) ])
                   s.Metrics.buckets) ) ] ) ]
    @ shards_block @ store_block @ experiments_block)

let prepare t seen frame =
  match Protocol.of_frame frame with
  | Error { Protocol.err_id; code; message } ->
      Metrics.incr_errors t.metrics;
      Ready (Protocol.error_response ~id:err_id ~code message)
  | Ok { Protocol.id; op = Protocol.Stats } -> Stats id
  | Ok { Protocol.id; op = Protocol.Check c } -> (
      Metrics.incr_checks t.metrics;
      match resolve_chain t c with
      | Error (code, message) ->
          Metrics.incr_errors t.metrics;
          Ready (Protocol.error_response ~id ~code message)
      | Ok (domain, certs) -> (
          let key = verdict_key c ~domain certs in
          match Lru.find t.cache key with
          | Some verdict ->
              Metrics.incr_hits t.metrics;
              Ready (Protocol.verdict_response ~id ~verdict)
          | None ->
              if Hashtbl.mem seen key then begin
                Metrics.incr_hits t.metrics;
                Join (id, key)
              end
              else begin
                Hashtbl.add seen key ();
                Metrics.incr_misses t.metrics;
                Fresh
                  {
                    f_id = id;
                    f_key = key;
                    compute = (fun () -> compute_verdict t c ~domain certs);
                  }
              end))

let process_slots t slots =
  let fresh =
    List.filter_map (function Fresh f -> Some f | _ -> None) slots
  in
  let results = Hashtbl.create (List.length fresh * 2 + 1) in
  let fresh = Array.of_list fresh in
  let out = Array.make (Array.length fresh) (Ok "") in
  Pipeline.Pool.run t.pool (Array.length fresh) (fun i ->
      let f = fresh.(i) in
      let t0 = t.now () in
      (out.(i) <-
        (match f.compute () with
        | verdict -> Ok verdict
        | exception e -> Error (Printexc.to_string e)));
      Metrics.observe_latency t.metrics (t.now () -. t0));
  Array.iteri
    (fun i f ->
      match out.(i) with
      | Ok verdict ->
          Lru.add t.cache f.f_key verdict;
          Hashtbl.replace results f.f_key (Ok verdict)
      | Error msg ->
          Metrics.incr_errors t.metrics;
          Hashtbl.replace results f.f_key (Error msg))
    fresh;
  let render_key id key =
    match Hashtbl.find_opt results key with
    | Some (Ok verdict) -> Protocol.verdict_response ~id ~verdict
    | Some (Error msg) -> Protocol.error_response ~id ~code:"internal" msg
    | None ->
        Protocol.error_response ~id ~code:"internal" "lost computation"
  in
  List.map
    (function
      | Ready response -> response
      | Fresh { f_id; f_key; _ } -> render_key f_id f_key
      | Join (id, key) -> render_key id key
      | Stats id ->
          let t0 = t.now () in
          let response = Protocol.stats_response ~id (stats_json t) in
          Metrics.observe_latency t.metrics (t.now () -. t0);
          response)
    slots

(* --- admission and draining --- *)

let overload_response frame =
  let id =
    match Protocol.of_frame frame with
    | Ok { Protocol.id; _ } -> id
    | Error { Protocol.err_id; _ } -> err_id
  in
  Protocol.error_response ~id ~code:"overloaded"
    "admission queue full; retry later"

let submit t ~tag frame =
  if Queue.length t.queue >= t.queue_capacity then begin
    Metrics.incr_rejects t.metrics;
    `Rejected (overload_response frame)
  end
  else begin
    Metrics.incr_requests t.metrics;
    Queue.add (tag, frame) t.queue;
    `Admitted
  end

let admit t frame = submit t ~tag:0 frame

let overlong_response t =
  Metrics.incr_errors t.metrics;
  Protocol.error_response ~id:None ~code:"overlong"
    "request line exceeds the transport's frame-length bound"

let is_stats frame =
  match Protocol.of_frame frame with
  | Ok { Protocol.op = Protocol.Stats; _ } -> true
  | _ -> false

(* Take the next micro-batch: up to [batch] frames, but a stats frame is a
   barrier — it is taken alone, so its reply observes every check admitted
   before it (batch members are processed concurrently). *)
let take_batch t =
  let rec go acc n =
    if n >= t.batch || Queue.is_empty t.queue then List.rev acc
    else
      let _, next = Queue.peek t.queue in
      if is_stats next then
        if acc = [] then [ Queue.pop t.queue ] else List.rev acc
      else go (Queue.pop t.queue :: acc) (n + 1)
  in
  go [] 0

let drain_tagged t =
  match take_batch t with
  | [] -> []
  | tagged ->
      let seen = Hashtbl.create 16 in
      let responses =
        process_slots t (List.map (fun (_, f) -> prepare t seen f) tagged)
      in
      List.map2 (fun (tag, _) response -> (tag, response)) tagged responses

let drain t = List.map snd (drain_tagged t)

let handle_frame t frame =
  let seen = Hashtbl.create 1 in
  match process_slots t [ prepare t seen frame ] with
  | [ response ] -> response
  | _ -> assert false

let serve (type c) t (module T : Transport.S with type conn = c) (conn : c) =
  let eof = ref false in
  (* Read everything immediately available, admitting (or rejecting) each
     frame; with [block:true] wait for at least one frame first. *)
  let rec fill ~block =
    if not !eof then
      match T.recv conn ~block with
      | `Eof -> eof := true
      | `Empty -> ()
      | `Overlong ->
          (* The transport already dropped the line; answer with a
             structured error instead of buffering without bound. *)
          T.send conn (overlong_response t);
          fill ~block:false
      | `Frame frame ->
          (match admit t frame with
          | `Admitted -> ()
          | `Rejected response -> T.send conn response);
          fill ~block:false
  in
  let rec loop () =
    if Queue.is_empty t.queue && not !eof then fill ~block:true;
    fill ~block:false;
    match drain t with
    | [] -> if not !eof then loop ()
    | responses ->
        List.iter (T.send conn) responses;
        loop ()
  in
  loop ()
