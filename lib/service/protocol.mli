(** The chaind wire protocol.

    One JSON object per line in both directions. Requests:

    {v
    {"id":"q1","op":"check","pem":"-----BEGIN ...","domain":"example.com",
     "aia":true,"store":"union","clients":["openssl","chrome"]}
    {"id":"q2","op":"check","scenario":"reversed"}
    {"id":"q3","op":"check","certmsg":"FgMDAA…","format":"1.3",
     "domain":"example.com"}
    {"id":"q4","op":"stats"}
    v}

    [op] is required. A check needs exactly one chain source: [pem] (the
    served certificate list, PEM text with its newlines escaped as [\n]) plus
    a mandatory [domain]; [scenario] (a substring of a lab scenario name;
    [domain] then defaults to the scenario's own domain); or [certmsg] (a
    raw TLS Certificate message, base64-encoded) plus a mandatory [domain].
    [format] ("1.2" or "1.3") names the [certmsg] wire framing and is only
    legal alongside it; when omitted the server auto-detects (or applies its
    configured default). Options: [aia] (default true), [store] ("union" —
    the default — or one of "mozilla", "chrome", "microsoft", "apple"),
    [clients] (subset of client names; omitted = all eight).

    The verdict for a chain is byte-identical whichever source or framing
    delivered it: the engine keys its cache on the decoded certificate list,
    never on the encoding.

    Responses: [{"id":...,"ok":true,"verdict":{...}}],
    [{"id":...,"ok":true,"stats":{...}}] or
    [{"id":...,"ok":false,"code":"...","error":"..."}]. *)

open Chaoschain_core
open Chaoschain_pki

type store_choice = Union | Program of Root_store.program

val store_choice_to_string : store_choice -> string

type check = {
  domain : string option;
  pem : string option;
  scenario : string option;
  certmsg : string option;
      (** base64 of a raw TLS Certificate message (either framing) *)
  format : Chaoschain_tlssim.Certmsg.format option;
      (** declared framing of [certmsg]; [None] = auto-detect *)
  aia : bool;
  store : store_choice;
  clients : Clients.id list option;  (** [None] = all eight clients *)
}

type op = Check of check | Stats

type request = { id : string option; op : op }

type error = {
  err_id : string option;  (** echoed when the frame parsed far enough *)
  code : string;
  message : string;
}

val of_frame : string -> (request, error) result
(** Decode one request line. Error codes produced here:
    ["malformed_frame"]. *)

val to_frame : request -> string
(** Re-encode a request (the round-trip direction clients use; exercised by
    the protocol tests). *)

val client_id_of_string : string -> Clients.id option
(** Case-insensitive client name ("openssl", "gnutls", "mbedtls",
    "cryptoapi", "chrome", "edge", "safari", "firefox"). *)

val client_id_to_string : Clients.id -> string

(** {1 Response builders} *)

val error_response : id:string option -> code:string -> string -> string
val verdict_response : id:string option -> verdict:string -> string
(** [verdict] is an already-encoded JSON object; it is embedded verbatim so
    a cache hit reuses the exact bytes of the original miss. *)

val stats_response : id:string option -> Json.t -> string
