(** Request accounting for chaind: monotonically increasing counters plus a
    fixed-bucket service-latency histogram. All updates are [Mutex]-guarded so
    the micro-batch workers can record concurrently; reads take a consistent
    {!snapshot}. *)

type t

val create : unit -> t

val incr_requests : t -> unit
(** A frame was admitted (check or stats). *)

val incr_checks : t -> unit
val incr_hits : t -> unit
(** Check answered from the verdict cache (including requests coalesced onto
    an identical in-batch computation). *)

val incr_misses : t -> unit
val incr_rejects : t -> unit
(** Frame refused because the admission queue was full. *)

val incr_errors : t -> unit
(** Malformed frame / PEM / scenario, or an internal handler failure. *)

val observe_latency : t -> float -> unit
(** Record one service time, in seconds. *)

type snapshot = {
  requests : int;
  checks : int;
  hits : int;
  misses : int;
  rejects : int;
  errors : int;
  lat_count : int;
  lat_mean_ms : float;
  lat_max_ms : float;
  lat_p50_ms : float;  (** upper bound of the bucket holding the median *)
  lat_p90_ms : float;
  lat_p95_ms : float;
  lat_p99_ms : float;
  lat_p999_ms : float;
      (** tail quantiles, same histogram-derived upper-bound convention;
          what loadgen's open-loop report and chaind's [stats] replies both
          surface so client- and server-side numbers line up *)
  buckets : (float * int) list;
      (** (upper bound in ms, count); the last bucket is [infinity] *)
}

val snapshot : t -> snapshot

val aggregate : t list -> snapshot
(** The cross-shard view: counters and histograms summed, quantiles
    recomputed from the merged histogram, mean weighted by count, max of
    maxes. [aggregate [t]] equals [snapshot t]; [aggregate []] is the
    all-zero snapshot. Each instance is read under its own lock (the
    union is not a single atomic cut across shards). *)

val pp_summary : Format.formatter -> snapshot -> unit
(** The multi-line shutdown summary chaind prints to stderr. *)
