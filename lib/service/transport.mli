(** Framed transport for chaind: one request or response per line
    (newline-delimited JSON). The engine is written against the {!S}
    signature so a socket backend can slot in later; today there are two
    implementations — file descriptors (stdin/stdout for [chaoscheck serve])
    and an in-memory queue for tests.

    Request lines are bounded: a line longer than the transport's
    [max_frame] yields [`Overlong] (once, at the point the bound is crossed)
    and is otherwise discarded without ever being buffered whole — the
    engine answers it with a structured ["overlong"] error instead of
    growing its buffer without limit. *)

val default_max_frame : int
(** 1 MiB. *)

module type S = sig
  type conn

  val recv : conn -> block:bool -> [ `Frame of string | `Empty | `Eof | `Overlong ]
  (** Next complete frame. With [block:false], [`Empty] means no complete
      frame is immediately available — the engine uses this to close a
      micro-batch instead of waiting for more traffic. [`Overlong] reports
      a request line past the length bound (the line itself is consumed and
      dropped). After [`Eof] the connection never yields frames again. *)

  val send : conn -> string -> unit
  (** Write one frame (the implementation appends the newline) and flush. *)
end

(** File-descriptor transport with its own line buffer; readiness is probed
    with a zero-timeout [select], so [recv ~block:false] never blocks even
    though the descriptor is a pipe. A trailing unterminated line is
    delivered as a final frame at EOF. An overlong line is reported as soon
    as the buffer crosses [max_frame] and its remaining bytes are dropped
    chunk-by-chunk through the closing newline, keeping memory bounded.

    Client disconnects are survivable, not fatal: [EPIPE]/[ECONNRESET] on
    either direction (and [EINTR] mid-write, which is retried) mark the
    connection closed — [recv] then reports [`Eof] and [send] becomes a
    no-op — so the serve loop winds down that conversation instead of the
    process dying. Callers that write to sockets or pipes should ignore
    [SIGPIPE] (the CLI does) so a broken pipe surfaces as [EPIPE]. *)
module Fd : sig
  include S

  val make : ?max_frame:int -> Unix.file_descr -> out_channel -> conn
  (** [max_frame] defaults to {!default_max_frame}. *)

  val stdio : ?max_frame:int -> unit -> conn
end

(** In-memory transport for tests: a fixed list of input frames, captured
    output. Frames longer than [max_frame] yield [`Overlong]. *)
module Mem : sig
  include S

  val make : ?max_frame:int -> string list -> conn
  val output : conn -> string list
  (** Frames sent so far, in order. *)
end
