(** Framed transport for chaind: one request or response per line
    (newline-delimited JSON). The engine is written against the {!S}
    signature so a socket backend can slot in later; today there are two
    implementations — file descriptors (stdin/stdout for [chaoscheck serve])
    and an in-memory queue for tests. *)

module type S = sig
  type conn

  val recv : conn -> block:bool -> [ `Frame of string | `Empty | `Eof ]
  (** Next complete frame. With [block:false], [`Empty] means no complete
      frame is immediately available — the engine uses this to close a
      micro-batch instead of waiting for more traffic. After [`Eof] the
      connection never yields frames again. *)

  val send : conn -> string -> unit
  (** Write one frame (the implementation appends the newline) and flush. *)
end

(** File-descriptor transport with its own line buffer; readiness is probed
    with a zero-timeout [select], so [recv ~block:false] never blocks even
    though the descriptor is a pipe. A trailing unterminated line is
    delivered as a final frame at EOF. *)
module Fd : sig
  include S

  val make : Unix.file_descr -> out_channel -> conn
  val stdio : unit -> conn
end

(** In-memory transport for tests: a fixed list of input frames, captured
    output. *)
module Mem : sig
  include S

  val make : string list -> conn
  val output : conn -> string list
  (** Frames sent so far, in order. *)
end
