open Chaoschain_core
open Chaoschain_pki
module Certmsg = Chaoschain_tlssim.Certmsg

type store_choice = Union | Program of Root_store.program

let store_choice_to_string = function
  | Union -> "union"
  | Program p -> String.lowercase_ascii (Root_store.program_to_string p)

let store_choice_of_string s =
  match String.lowercase_ascii s with
  | "union" -> Some Union
  | "mozilla" -> Some (Program Root_store.Mozilla)
  | "chrome" -> Some (Program Root_store.Chrome)
  | "microsoft" -> Some (Program Root_store.Microsoft)
  | "apple" -> Some (Program Root_store.Apple)
  | _ -> None

type check = {
  domain : string option;
  pem : string option;
  scenario : string option;
  certmsg : string option;
  format : Certmsg.format option;
  aia : bool;
  store : store_choice;
  clients : Clients.id list option;
}

type op = Check of check | Stats
type request = { id : string option; op : op }
type error = { err_id : string option; code : string; message : string }

let client_id_of_string s =
  match String.lowercase_ascii s with
  | "openssl" -> Some Clients.Openssl
  | "gnutls" -> Some Clients.Gnutls
  | "mbedtls" -> Some Clients.Mbedtls
  | "cryptoapi" -> Some Clients.Cryptoapi
  | "chrome" -> Some Clients.Chrome
  | "edge" -> Some Clients.Edge
  | "safari" -> Some Clients.Safari
  | "firefox" -> Some Clients.Firefox
  | _ -> None

let client_id_to_string = function
  | Clients.Openssl -> "openssl"
  | Clients.Gnutls -> "gnutls"
  | Clients.Mbedtls -> "mbedtls"
  | Clients.Cryptoapi -> "cryptoapi"
  | Clients.Chrome -> "chrome"
  | Clients.Edge -> "edge"
  | Clients.Safari -> "safari"
  | Clients.Firefox -> "firefox"

(* --- decoding --- *)

exception Bad of string

let get_opt_string json key =
  match Json.member key json with
  | None | Some Json.Null -> None
  | Some v -> (
      match Json.get_string v with
      | Some s -> Some s
      | None -> raise (Bad (Printf.sprintf "field %S must be a string" key)))

let get_opt_bool json key ~default =
  match Json.member key json with
  | None | Some Json.Null -> default
  | Some v -> (
      match Json.get_bool v with
      | Some b -> b
      | None -> raise (Bad (Printf.sprintf "field %S must be a boolean" key)))

let parse_clients json =
  match Json.member "clients" json with
  | None | Some Json.Null -> None
  | Some v -> (
      match Json.get_list v with
      | None -> raise (Bad "field \"clients\" must be an array of names")
      | Some items ->
          let names =
            List.map
              (fun item ->
                match Json.get_string item with
                | None -> raise (Bad "client names must be strings")
                | Some s -> (
                    match client_id_of_string s with
                    | Some id -> id
                    | None -> raise (Bad (Printf.sprintf "unknown client %S" s))))
              items
          in
          if names = [] then raise (Bad "\"clients\" must not be empty");
          Some names)

let parse_check json =
  let domain = get_opt_string json "domain" in
  let pem = get_opt_string json "pem" in
  let scenario = get_opt_string json "scenario" in
  let certmsg = get_opt_string json "certmsg" in
  (match (pem, scenario, certmsg) with
  | None, None, None ->
      raise (Bad "a check needs \"pem\", \"scenario\" or \"certmsg\"")
  | Some _, Some _, _ | Some _, _, Some _ | _, Some _, Some _ ->
      raise (Bad "\"pem\", \"scenario\" and \"certmsg\" are exclusive")
  | _ -> ());
  if (pem <> None || certmsg <> None) && domain = None then
    raise (Bad "\"domain\" is required with \"pem\" or \"certmsg\"");
  let format =
    match get_opt_string json "format" with
    | None -> None
    | Some _ when certmsg = None ->
        raise (Bad "\"format\" only applies to \"certmsg\" checks")
    | Some s -> (
        match Certmsg.format_of_string s with
        | Some f -> Some f
        | None ->
            raise (Bad (Printf.sprintf "unknown format %S (want \"1.2\" or \"1.3\")" s)))
  in
  let aia = get_opt_bool json "aia" ~default:true in
  let store =
    match get_opt_string json "store" with
    | None -> Union
    | Some s -> (
        match store_choice_of_string s with
        | Some c -> c
        | None -> raise (Bad (Printf.sprintf "unknown store %S" s)))
  in
  let clients = parse_clients json in
  { domain; pem; scenario; certmsg; format; aia; store; clients }

let of_frame frame =
  match Json.of_string frame with
  | Error msg ->
      Error { err_id = None; code = "malformed_frame"; message = msg }
  | Ok json -> (
      match json with
      | Json.Obj _ -> (
          let id = try get_opt_string json "id" with Bad _ -> None in
          try
            let op =
              match get_opt_string json "op" with
              | None -> raise (Bad "field \"op\" is required")
              | Some "check" -> Check (parse_check json)
              | Some "stats" -> Stats
              | Some other -> raise (Bad (Printf.sprintf "unknown op %S" other))
            in
            Ok { id; op }
          with Bad message ->
            Error { err_id = id; code = "malformed_frame"; message })
      | _ ->
          Error
            {
              err_id = None;
              code = "malformed_frame";
              message = "request must be a JSON object";
            })

(* --- encoding --- *)

let to_frame { id; op } =
  let base = match id with Some id -> [ ("id", Json.String id) ] | None -> [] in
  let members =
    match op with
    | Stats -> base @ [ ("op", Json.String "stats") ]
    | Check c ->
        let opt key f = function Some v -> [ (key, f v) ] | None -> [] in
        base
        @ [ ("op", Json.String "check") ]
        @ opt "domain" (fun d -> Json.String d) c.domain
        @ opt "pem" (fun p -> Json.String p) c.pem
        @ opt "scenario" (fun s -> Json.String s) c.scenario
        @ opt "certmsg" (fun m -> Json.String m) c.certmsg
        @ opt "format"
            (fun f -> Json.String (Certmsg.format_to_string f))
            c.format
        @ [ ("aia", Json.Bool c.aia);
            ("store", Json.String (store_choice_to_string c.store)) ]
        @ opt "clients"
            (fun ids ->
              Json.List
                (List.map (fun i -> Json.String (client_id_to_string i)) ids))
            c.clients
  in
  Json.to_string (Json.Obj members)

let id_members = function
  | Some id -> [ ("id", Json.String id) ]
  | None -> []

let error_response ~id ~code message =
  Json.to_string
    (Json.Obj
       (id_members id
       @ [ ("ok", Json.Bool false); ("code", Json.String code);
           ("error", Json.String message) ]))

let verdict_response ~id ~verdict =
  (* The verdict is embedded as already-encoded bytes so that a cache hit is
     byte-identical to the miss that populated it. *)
  let buf = Buffer.create (String.length verdict + 64) in
  Buffer.add_char buf '{';
  (match id with
  | Some id ->
      Buffer.add_string buf "\"id\":";
      Buffer.add_string buf (Json.to_string (Json.String id));
      Buffer.add_char buf ','
  | None -> ());
  Buffer.add_string buf "\"ok\":true,\"verdict\":";
  Buffer.add_string buf verdict;
  Buffer.add_char buf '}';
  Buffer.contents buf

let stats_response ~id stats =
  Json.to_string
    (Json.Obj (id_members id @ [ ("ok", Json.Bool true); ("stats", stats) ]))
