(** chaind — the online chain-compliance query engine.

    One request carries a served certificate list (PEM, a named lab
    scenario, or a base64 raw TLS Certificate message in either the 1.2 or
    1.3 framing) plus options; the reply is a structured verdict combining the
    server-side compliance report ({!Chaoschain_core.Compliance}), the
    per-client differential-testing outcomes ({!Chaoschain_core.Difftest})
    and the section-6 remediation advice ({!Chaoschain_core.Recommend}).

    Built for throughput:

    - a bounded {!Lru} verdict cache keyed by [Difftest.chain_key] extended
      with the request options — repeated chains are answered with the
      byte-identical cached verdict;
    - micro-batching: admitted frames queue up and are drained in batches of
      [batch] through a persistent {!Chaoschain_measurement.Pipeline.Pool};
      identical checks inside one batch coalesce onto a single computation;
    - a bounded admission queue with explicit overload rejections
      (backpressure instead of unbounded buffering);
    - per-request {!Metrics} served by the [stats] op and printed on
      shutdown.

    Verdicts are deterministic: byte-identical across [jobs] values and
    across the cache hit/miss paths. *)

open Chaoschain_x509
open Chaoschain_core
open Chaoschain_pki

type env = {
  diff_env : Difftest.env;
  union_store : Root_store.t;
  program_store : Root_store.program -> Root_store.t;
  aia : Aia_repo.t;
  find_scenario : string -> (string * Cert.t list) option;
      (** Resolve a scenario-name substring to (domain, served chain); the
          CLI backs this with the lab population, tests with a fixture. *)
}

type t

val create :
  env:env ->
  ?cache_capacity:int ->
  ?queue_capacity:int ->
  ?batch:int ->
  ?jobs:int ->
  ?default_format:Chaoschain_tlssim.Certmsg.format ->
  ?now:(unit -> float) ->
  unit ->
  t
(** Defaults: [cache_capacity = 1024], [queue_capacity = 64], [batch = 8],
    [jobs = 1]. [cache_capacity] must be [>= 0] (0 disables caching), the
    other three [>= 1] (raises [Invalid_argument]). [default_format] is the
    framing assumed for ["certmsg"] checks that do not declare one; omitted,
    the engine auto-detects ({!Chaoschain_tlssim.Certmsg.decode_auto}). The
    framing never reaches the verdict key, so the same chain delivered under
    either encoding yields byte-identical verdicts (and shares one cache
    entry). [now] is the clock used for latency timing (default
    [Unix.gettimeofday]); injecting a scripted clock makes the latency
    histogram deterministic in tests. *)

val warm : t -> (string * Cert.t list) list -> int
(** [warm t pairs] pre-fills the verdict cache from [(domain, chain)] pairs
    (typically a loaded corpus): each distinct default-options verdict key
    is computed once, over the engine's worker pool, and installed in the
    LRU — at most [cache_capacity] entries, surplus pairs skipped. Returns
    the number of entries computed. Metrics are untouched, so a warmed
    engine's replies are byte-identical to a cold one's; the warm fill
    surfaces as cache hits on later requests. *)

val set_store_stats : t -> (string * Json.t) list -> unit
(** Attach a ["store"] block (e.g. corpus record counts, Merkle root, warm
    fill) that {!stats_json} will append to every stats reply. *)

val set_experiments : t -> Json.t -> unit
(** Attach an ["experiments"] block — the warm corpus's compliance tables
    rendered as report-IR JSON ([Report.to_json] per table) — appended to
    every stats reply after the store block. *)

val link_shards : t list -> unit
(** Declare the engines one shard group (>= 2, or [Invalid_argument]):
    each member's [stats] replies then report the cross-shard union —
    {!Metrics.aggregate} over every member, cache occupancy summed — plus
    a ["shards"] field, so a client sees the whole service whichever
    shard its connection landed on. Verdict processing is untouched: each
    shard keeps its own queue, batcher, worker pool and LRU (an engine is
    not thread-safe; sharing state across shard Domains is confined to
    the Mutex-guarded {!Metrics} and the process-wide intern table). *)

val aggregate_metrics : t list -> Metrics.snapshot
(** {!Metrics.aggregate} over the engines' metric instances (the shutdown
    summary for a sharded run). *)

val copy_cache : t -> t -> unit
(** [copy_cache src dst] replays [src]'s verdict-cache bindings into
    [dst] (least-recently-used first, preserving recency) — how one
    [--warm-store] pass fills every shard without recomputing. *)

val admit : t -> string -> [ `Admitted | `Rejected of string ]
(** Offer one raw frame to the admission queue. [`Rejected response] is
    returned (and counted) when the queue already holds [queue_capacity]
    frames; the response is a ready-to-send ["overloaded"] error.
    Equivalent to [submit ~tag:0]. *)

val submit : t -> tag:int -> string -> [ `Admitted | `Rejected of string ]
(** As {!admit}, but the frame carries an opaque [tag] that
    {!drain_tagged} returns with its response — how the netd event loop
    routes each reply back to the connection that sent the request. *)

val pending : t -> int
(** Frames currently queued. *)

val queue_capacity : t -> int

val can_admit : t -> bool
(** [pending t < queue_capacity t]: the next {!submit} would be admitted.
    A readiness-driven front end polls this to hold parsed frames (and
    pause reading) instead of drawing ["overloaded"] rejections. *)

val drain : t -> string list
(** Process one micro-batch from the queue and return the responses in
    request order. At most [batch] checks per call; a [stats] request acts
    as a batch barrier so its reply reflects every request admitted before
    it. Empty list when the queue is empty. *)

val drain_tagged : t -> (int * string) list
(** As {!drain}, with each response paired with the tag its request was
    submitted under. *)

val overlong_response : t -> string
(** The canonical reply for a request line past the transport's frame
    bound; counts one error. Shared by the serial serve loop and netd. *)

val handle_frame : t -> string -> string
(** Convenience: admit-free, single-request processing (used by tests). *)

val metrics : t -> Metrics.snapshot
val cache_size : t -> int
val cache_capacity : t -> int
val cache_evictions : t -> int

val stats_json : t -> Json.t
(** The payload of a [stats] reply: counters, latency histogram, cache
    occupancy and the engine's configured bounds. *)

val serve : t -> (module Transport.S with type conn = 'c) -> 'c -> unit
(** Run the request loop until EOF: read greedily while frames are
    immediately available (rejecting past the queue bound), then drain
    micro-batches and reply. Returns after the final queued request is
    answered. *)

val shutdown : t -> unit
(** Join the worker pool. *)
