(** Re-export of the shared JSON codec.

    The codec moved to [Chaoschain_report.Json] so the report renderers and
    the chaind wire protocol share one implementation; this module keeps the
    [Chaoschain_service.Json] path (and its type equalities) working. *)

include module type of struct
  include Chaoschain_report.Json
end
