(** A small from-scratch JSON codec (RFC 8259 subset) for the chaind wire
    protocol and the bench timing dumps.

    The encoder is compact (no whitespace) and deterministic: object members
    are emitted in construction order, so equal values produce byte-identical
    text — the property the service's verdict cache and the CI smoke test
    rely on. The decoder accepts standard JSON with arbitrary whitespace and
    [\uXXXX] escapes (surrogate pairs included). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact serialization. Non-finite floats encode as [null] (JSON has no
    NaN/infinity). *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. Numbers
    without fraction or exponent that fit [int] decode as [Int], everything
    else as [Float]. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member k (Obj _)] — [None] for absent keys and non-objects. *)

val get_string : t -> string option
val get_bool : t -> bool option
val get_int : t -> int option
val get_list : t -> t list option
