type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards MRU *)
  mutable next : 'a node option;  (* towards LRU *)
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  lock : Mutex.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: capacity must be >= 0";
  {
    cap = capacity;
    table = Hashtbl.create (min (max capacity 1) 4096);
    lock = Mutex.create ();
    head = None;
    tail = None;
    evicted = 0;
  }

let capacity t = t.cap

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

(* List surgery; caller holds the lock. *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> None
      | Some node ->
          touch t node;
          Some node.value)

let add t key value =
  if t.cap = 0 then ()  (* capacity 0: caching disabled, nothing to evict *)
  else
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
          node.value <- value;
          touch t node
      | None ->
          if Hashtbl.length t.table >= t.cap then (
            match t.tail with
            | None -> assert false
            | Some lru ->
                unlink t lru;
                Hashtbl.remove t.table lru.key;
                t.evicted <- t.evicted + 1);
          let node = { key; value; prev = None; next = None } in
          push_front t node;
          Hashtbl.add t.table key node)

let mem t key = with_lock t (fun () -> Hashtbl.mem t.table key)
let size t = with_lock t (fun () -> Hashtbl.length t.table)
let evictions t = with_lock t (fun () -> t.evicted)

let keys_mru_first t =
  with_lock t (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some node -> go (node.key :: acc) node.next
      in
      go [] t.head)

let bindings_lru_first t =
  with_lock t (fun () ->
      let rec go acc = function
        | None -> acc
        | Some node -> go ((node.key, node.value) :: acc) node.next
      in
      go [] t.head)
