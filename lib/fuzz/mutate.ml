module Prng = Chaoschain_crypto.Prng
module Der = Chaoschain_der.Der

type t =
  | Bit_flip of { pos : int; bit : int }
  | Byte_set of { pos : int; value : int }
  | Truncate of { keep : int }
  | Extend of { tail : string }
  | Length_lie of { site : int; value : int }
  | Tag_smuggle of { site : int; value : int }
  | Nest_bomb of { depth : int }

let max_sites = 4096
let max_site_depth = 64

(* Walk the TLV structure with the production zero-copy reader and record
   where every header starts. Bounded: a mutant that is itself a nesting
   bomb must not stack-overflow the site discovery that targets it. *)
let header_sites s =
  let sites = ref [] in
  let count = ref 0 in
  let rec walk depth (sl : Der.slice) =
    if depth < max_site_depth && !count < max_sites && sl.Der.len > 0 then
      match Der.read_node sl with
      | Error _ -> ()
      | Ok (node, rest) ->
          sites := node.Der.n_raw.Der.off :: !sites;
          incr count;
          (if node.Der.n_tag.Der.constructed then
             match Der.node_children node with
             | Error _ -> ()
             | Ok kids ->
                 List.iter (fun k -> walk (depth + 1) k.Der.n_raw) kids);
          walk depth rest
  in
  walk 0 (Der.slice_of_string s);
  match List.rev !sites with [] -> [ 0 ] | l -> l

let random g s =
  let len = String.length s in
  let pos () = if len = 0 then 0 else Prng.int g len in
  let site () = Prng.pick_list g (header_sites s) in
  match Prng.int g 7 with
  | 0 -> Bit_flip { pos = pos (); bit = Prng.int g 8 }
  | 1 -> Byte_set { pos = pos (); value = Prng.int g 256 }
  | 2 -> Truncate { keep = if len = 0 then 0 else Prng.int g len }
  | 3 -> Extend { tail = Prng.bytes g (1 + Prng.int g 8) }
  | 4 -> Length_lie { site = site (); value = Prng.int g 256 }
  | 5 -> Tag_smuggle { site = site (); value = Prng.int g 256 }
  | _ -> Nest_bomb { depth = 1 + Prng.int g 1600 }

let set_byte s pos value =
  if pos < 0 || pos >= String.length s then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set b pos (Char.chr (value land 0xFF));
    Bytes.to_string b
  end

(* [depth] nested SEQUENCEs around a NULL, built outside-in from a length
   table so construction is O(depth + size), not O(depth^2). *)
let nest_bomb depth =
  let header_len content_len =
    if content_len < 0x80 then 2
    else if content_len < 0x100 then 3
    else if content_len < 0x10000 then 4
    else if content_len < 0x1000000 then 5
    else 6
  in
  let lens = Array.make (depth + 1) 2 (* innermost: NULL "\x05\x00" *) in
  for i = 1 to depth do
    lens.(i) <- lens.(i - 1) + header_len lens.(i - 1)
  done;
  let buf = Buffer.create (lens.(depth) + 8) in
  for i = depth downto 1 do
    let l = lens.(i - 1) in
    Buffer.add_char buf '\x30';
    if l < 0x80 then Buffer.add_char buf (Char.chr l)
    else if l < 0x100 then begin
      Buffer.add_char buf '\x81';
      Buffer.add_char buf (Char.chr l)
    end
    else if l < 0x10000 then begin
      Buffer.add_char buf '\x82';
      Buffer.add_char buf (Char.chr (l lsr 8));
      Buffer.add_char buf (Char.chr (l land 0xFF))
    end
    else if l < 0x1000000 then begin
      Buffer.add_char buf '\x83';
      Buffer.add_char buf (Char.chr (l lsr 16));
      Buffer.add_char buf (Char.chr ((l lsr 8) land 0xFF));
      Buffer.add_char buf (Char.chr (l land 0xFF))
    end
    else begin
      Buffer.add_char buf '\x84';
      Buffer.add_char buf (Char.chr (l lsr 24));
      Buffer.add_char buf (Char.chr ((l lsr 16) land 0xFF));
      Buffer.add_char buf (Char.chr ((l lsr 8) land 0xFF));
      Buffer.add_char buf (Char.chr (l land 0xFF))
    end
  done;
  Buffer.add_string buf "\x05\x00";
  Buffer.contents buf

let apply s = function
  | Bit_flip { pos; bit } ->
      if pos < 0 || pos >= String.length s then s
      else
        set_byte s pos (Char.code s.[pos] lxor (1 lsl (bit land 7)))
  | Byte_set { pos; value } -> set_byte s pos value
  | Truncate { keep } ->
      let keep = max 0 (min keep (String.length s)) in
      String.sub s 0 keep
  | Extend { tail } -> s ^ tail
  | Length_lie { site; value } -> set_byte s (site + 1) value
  | Tag_smuggle { site; value } -> set_byte s site value
  | Nest_bomb { depth } -> nest_bomb (max 1 depth)

let describe = function
  | Bit_flip { pos; bit } -> Printf.sprintf "bit-flip@%d.%d" pos bit
  | Byte_set { pos; value } -> Printf.sprintf "byte-set@%d=0x%02x" pos value
  | Truncate { keep } -> Printf.sprintf "truncate=%d" keep
  | Extend { tail } -> Printf.sprintf "extend+%d" (String.length tail)
  | Length_lie { site; value } ->
      Printf.sprintf "length-lie@%d=0x%02x" site value
  | Tag_smuggle { site; value } ->
      Printf.sprintf "tag-smuggle@%d=0x%02x" site value
  | Nest_bomb { depth } -> Printf.sprintf "nest-bomb=%d" depth
