(** The two-decoder differential oracle.

    Feeds one byte string to the production decoder ([Chaoschain_der.Der],
    both its tree and its zero-copy slice reader) and the independent second
    decoder ([Chaoschain_der2.Der2]) and classifies what happened. The
    classification lattice, from healthy to alarming:

    - {!Agree_accept}: both accept, and the trees are structurally equal;
    - {!Agree_reject}: both reject (error wording may differ — the
      taxonomies are independent by design);
    - [Split side]: exactly one side accepts ([side] names the acceptor) —
      the accept sets differ, the ParsEval failure mode;
    - {!Mismatch}: both accept but the trees differ, or the production
      decoder's own tree and slice readers disagree with each other;
    - [Crash side]: a decoder raised instead of returning [Error _]. *)

type side = First  (** [lib/der], tree + slice readers *)
          | Second  (** [lib/der2] *)

type outcome =
  | Agree_accept
  | Agree_reject
  | Split of side  (** the side that {e accepted} *)
  | Mismatch
  | Crash of side

val key : outcome -> string
(** Stable short key: ["agree-accept"], ["agree-reject"], ["split-der"],
    ["split-der2"], ["mismatch"], ["crash-der"], ["crash-der2"]. *)

val all_keys : string list
(** Every key, in lattice order (used for deterministic count tables). *)

val is_divergence : outcome -> bool
(** True for everything except the two agreement outcomes. *)

val agree : Chaoschain_der.Der.t -> Chaoschain_der2.Der2.tree -> bool
(** Structural equality across the two tree representations. *)

val classify : string -> outcome * string
(** Classify one input; the string is a deterministic human-readable detail
    (error messages, first point of disagreement). Never raises. *)
