module Prng = Chaoschain_crypto.Prng
module Par = Chaoschain_store.Par
module Report = Chaoschain_report.Report

type finding = {
  f_iter : int;
  f_seed_index : int;
  f_mutations : string list;
  f_outcome : string;
  f_detail : string;
  f_bytes : string;
}

type report = {
  r_seed : int;
  r_iters : int;
  r_corpus : int;
  r_max_mutations : int;
  r_counts : (string * int) list;
  r_divergences : finding list;
  r_exemplars : (string * finding list) list;
}

let hex_of_string s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let string_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then None
  else
    let digit c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let buf = Buffer.create (n / 2) in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      match (digit h.[2 * i], digit h.[(2 * i) + 1]) with
      | Some hi, Some lo -> Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Buffer.contents buf) else None

(* One campaign iteration. Everything random it does flows from a generator
   derived from (campaign seed, iteration index) alone, so results do not
   depend on which Domain runs which slot. *)
let one_iteration ~seed ~max_mutations corpus i =
  let g = Prng.of_label (Printf.sprintf "derfuzz/%d/%d" seed i) in
  let seed_index = Prng.int g (Array.length corpus) in
  let n_mut = 1 + Prng.int g max_mutations in
  let rec mutate bytes described n =
    if n = 0 then (bytes, List.rev described)
    else
      let m = Mutate.random g bytes in
      mutate (Mutate.apply bytes m) (Mutate.describe m :: described) (n - 1)
  in
  let bytes, mutations = mutate corpus.(seed_index) [] n_mut in
  let outcome, detail = Oracle.classify bytes in
  {
    f_iter = i;
    f_seed_index = seed_index;
    f_mutations = mutations;
    f_outcome = Oracle.key outcome;
    f_detail = detail;
    f_bytes = bytes;
  }

let run ?(par = Par.seq) ?(max_mutations = 3) ?(exemplars = 8) ~seed ~iters
    corpus =
  if Array.length corpus = 0 then invalid_arg "Derfuzz.run: empty corpus";
  if iters < 0 then invalid_arg "Derfuzz.run: negative iteration count";
  if max_mutations < 1 then invalid_arg "Derfuzz.run: max_mutations < 1";
  let results = Array.make iters None in
  (* Chunked fan-out regardless of Par.min_parallel: classification is heavy
     per item (two full decodes of a possibly nest-bombed mutant), so even
     small campaigns amortise a Domain hand-off. *)
  Par.slices par ~n:iters ~chunk:32 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        results.(i) <- Some (one_iteration ~seed ~max_mutations corpus i)
      done);
  let findings =
    Array.to_list
      (Array.map
         (function Some f -> f | None -> assert false)
         results)
  in
  let counts =
    List.map
      (fun k ->
        (k, List.length (List.filter (fun f -> f.f_outcome = k) findings)))
      Oracle.all_keys
  in
  let divergent k = k <> "agree-accept" && k <> "agree-reject" in
  let divergences = List.filter (fun f -> divergent f.f_outcome) findings in
  let exemplars_per_class =
    List.filter_map
      (fun k ->
        let picked =
          List.filteri
            (fun i _ -> i < exemplars)
            (List.filter (fun f -> f.f_outcome = k) findings)
        in
        if picked = [] then None else Some (k, picked))
      Oracle.all_keys
  in
  {
    r_seed = seed;
    r_iters = iters;
    r_corpus = Array.length corpus;
    r_max_mutations = max_mutations;
    r_counts = counts;
    r_divergences = divergences;
    r_exemplars = exemplars_per_class;
  }

let divergence_count r =
  List.fold_left
    (fun acc (k, n) ->
      if k = "agree-accept" || k = "agree-reject" then acc else acc + n)
    0 r.r_counts

let check_corpus ?(par = Par.seq) corpus =
  let n = Array.length corpus in
  let verdicts = Array.make n None in
  Par.slices par ~n ~chunk:32 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        let outcome, detail = Oracle.classify corpus.(i) in
        if outcome <> Oracle.Agree_accept then
          verdicts.(i) <- Some (Printf.sprintf "%s: %s" (Oracle.key outcome) detail)
      done);
  let bad = ref [] in
  for i = n - 1 downto 0 do
    match verdicts.(i) with
    | Some d -> bad := (i, d) :: !bad
    | None -> ()
  done;
  !bad

let report_ir r =
  let open Report in
  let b = Table.create ~title:"Mutant classification" ~header:[ "outcome"; "mutants"; "share" ] in
  List.iter
    (fun (k, n) ->
      Table.row b [ text k; count n; percent ~num:n ~den:r.r_iters ])
    r.r_counts;
  let divergences = divergence_count r in
  let div_blocks =
    if r.r_divergences = [] then
      [ line [ S "No divergences: the two decoders agreed on every mutant." ] ]
    else
      line [ S "Divergent mutants (first 10):" ]
      :: List.filteri
           (fun i _ -> i < 10)
           (List.map
              (fun f ->
                line
                  [
                    S
                      (Printf.sprintf "  #%d [%s] seed-cert %d via %s: %s" f.f_iter
                         f.f_outcome f.f_seed_index
                         (String.concat ", " f.f_mutations)
                         f.f_detail);
                  ])
              r.r_divergences)
  in
  {
    id = "derfuzz";
    title = "Differential DER fuzz campaign";
    blocks =
      line
        [
          S
            (Printf.sprintf
               "seed %d, %d mutants from %d corpus documents, <=%d mutations each"
               r.r_seed r.r_iters r.r_corpus r.r_max_mutations);
        ]
      :: Table.block b
      :: line
           [
             S "Divergences: ";
             C (count divergences);
             S " (split + mismatch + crash)";
           ]
      :: div_blocks;
  }

let seed_lines r =
  let lines = ref [] in
  List.iter
    (fun (k, fs) ->
      List.iter
        (fun f ->
          if String.length f.f_bytes <= 1024 then
            lines := Printf.sprintf "%s %s" k (hex_of_string f.f_bytes) :: !lines)
        fs)
    r.r_exemplars;
  List.rev !lines

let parse_seed_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.index_opt line ' ' with
    | None -> None
    | Some sp -> (
        let k = String.sub line 0 sp in
        let hex = String.sub line (sp + 1) (String.length line - sp - 1) in
        match string_of_hex (String.trim hex) with
        | Some bytes -> Some (k, bytes)
        | None -> None)
