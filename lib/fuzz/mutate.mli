(** Corpus-seeded DER mutations.

    Each mutation is a small, describable edit of a byte string. The
    structure-aware ones ([Length_lie], [Tag_smuggle]) aim at TLV header
    positions discovered by walking the input with the production reader, so
    mutants hit the places where two decoders can actually disagree —
    length arithmetic and tag classification — rather than only flipping
    bits in content octets. [Nest_bomb] ignores the input and synthesises a
    deeply nested constructed value, probing the decoders' depth bounds. *)

type t =
  | Bit_flip of { pos : int; bit : int }
  | Byte_set of { pos : int; value : int }
  | Truncate of { keep : int }
  | Extend of { tail : string }
  | Length_lie of { site : int; value : int }
      (** Overwrite the first length octet of the TLV header at [site]. *)
  | Tag_smuggle of { site : int; value : int }
      (** Overwrite the identifier octet of the TLV header at [site]. *)
  | Nest_bomb of { depth : int }
      (** Replace the input with [depth] nested SEQUENCEs around a NULL. *)

val header_sites : string -> int list
(** Byte offsets of every TLV header reachable in the input (bounded walk:
    at most 4096 sites, 64 levels deep). [[0]] when the input head is not
    parseable, so the targeted mutations always have somewhere to aim. *)

val random : Chaoschain_crypto.Prng.t -> string -> t
(** Draw one mutation suited to the given input (sites are discovered on
    the current, possibly already-mutated bytes). *)

val apply : string -> t -> string
(** Apply the mutation. Total: out-of-range positions clamp or leave the
    input unchanged rather than raising. *)

val describe : t -> string
(** One-line rendering, e.g. ["length-lie@4=0x83"]; stable across runs. *)
