(** Differential fuzz campaigns over the two DER decoders.

    A campaign draws [iters] mutants from a corpus of well-formed DER
    documents (certificates, in practice), classifies each through
    {!Oracle.classify}, and aggregates the outcome counts plus every
    divergence into a {!report}.

    Determinism contract: iteration [i] of a campaign seeded [s] derives its
    own generator from the label ["derfuzz/<s>/<i>"] and writes its result
    into slot [i] of a pre-sized array. Aggregation reads the array in index
    order, so the report — and its JSON rendering — is byte-identical for
    any parallel runner and any [--jobs]. *)

type finding = {
  f_iter : int;  (** campaign iteration (array slot) *)
  f_seed_index : int;  (** corpus document the mutant grew from *)
  f_mutations : string list;  (** applied mutations, [Mutate.describe]d *)
  f_outcome : string;  (** [Oracle.key] of the classification *)
  f_detail : string;
  f_bytes : string;  (** the mutant itself *)
}

type report = {
  r_seed : int;
  r_iters : int;
  r_corpus : int;
  r_max_mutations : int;
  r_counts : (string * int) list;
      (** one entry per [Oracle.all_keys], in lattice order *)
  r_divergences : finding list;  (** in iteration order *)
  r_exemplars : (string * finding list) list;
      (** per outcome class, the first few findings (iteration order);
          feeds {!seed_lines} *)
}

val run :
  ?par:Chaoschain_store.Par.t ->
  ?max_mutations:int ->
  ?exemplars:int ->
  seed:int ->
  iters:int ->
  string array ->
  report
(** Run a campaign. [par] defaults to sequential; [max_mutations] (default
    3) bounds the mutation stack per mutant; [exemplars] (default 8) bounds
    exemplars kept per class. Raises [Invalid_argument] on an empty corpus
    or [iters < 0]; never raises on any corpus {e content}. *)

val divergence_count : report -> int

val check_corpus :
  ?par:Chaoschain_store.Par.t -> string array -> (int * string) list
(** Decode every (unmutated) corpus document through both decoders; returns
    the indices that are anything other than agree-accept, with the outcome
    key and detail. Empty means the decoders agree structurally on the whole
    corpus — the derfuzz precondition and a tier-1 acceptance check. *)

val report_ir : report -> Chaoschain_report.Report.t
(** Render as the typed report IR (text/json/markdown via the usual
    renderers). *)

val seed_lines : report -> string list
(** The campaign distilled to seed-corpus lines ["<outcome-key> <hex>"], one
    per exemplar (mutants longer than 1024 bytes are skipped to keep the
    checked-in file reviewable). Replaying a line through
    {!Oracle.classify} must reproduce its recorded key. *)

val parse_seed_line : string -> (string * string) option
(** Parse one {!seed_lines} line back to [(outcome-key, bytes)]; [None] for
    blank lines and [#] comments. *)
