module Der = Chaoschain_der.Der
module Der2 = Chaoschain_der2.Der2

type side = First | Second

type outcome =
  | Agree_accept
  | Agree_reject
  | Split of side
  | Mismatch
  | Crash of side

let key = function
  | Agree_accept -> "agree-accept"
  | Agree_reject -> "agree-reject"
  | Split First -> "split-der"
  | Split Second -> "split-der2"
  | Mismatch -> "mismatch"
  | Crash First -> "crash-der"
  | Crash Second -> "crash-der2"

let all_keys =
  [
    "agree-accept";
    "agree-reject";
    "split-der";
    "split-der2";
    "mismatch";
    "crash-der";
    "crash-der2";
  ]

let is_divergence = function
  | Agree_accept | Agree_reject -> false
  | Split _ | Mismatch | Crash _ -> true

let cls_agree (c : Der.tag_class) (c2 : Der2.cls) =
  match (c, c2) with
  | Der.Universal, Der2.Univ -> true
  | Der.Application, Der2.Appl -> true
  | Der.Context_specific, Der2.Ctx -> true
  | Der.Private, Der2.Priv -> true
  | _ -> false

(* Accepted values nest at most [max_depth] (=1024) levels, so plain
   recursion is safe here. *)
let rec agree (t : Der.t) (t2 : Der2.tree) =
  match (t, t2) with
  | Der.Prim (tag, content), Der2.Leaf (hdr, content2) ->
      cls_agree tag.Der.cls hdr.Der2.h_cls
      && (not tag.Der.constructed)
      && (not hdr.Der2.h_constructed)
      && tag.Der.number = hdr.Der2.h_number
      && String.equal content content2
  | Der.Cons (tag, kids), Der2.Node (hdr, kids2) ->
      cls_agree tag.Der.cls hdr.Der2.h_cls
      && tag.Der.constructed && hdr.Der2.h_constructed
      && tag.Der.number = hdr.Der2.h_number
      && List.length kids = List.length kids2
      && List.for_all2 agree kids kids2
  | _ -> false

(* Run a decoder under a catch-all; a decoder that raises instead of
   returning [Error _] is itself a finding ([Crash _]), not a harness
   failure. [Stack_overflow] / [Out_of_memory] are asynchronous-ish but
   catchable in OCaml and exactly what nesting bombs try to provoke. *)
type 'a run = Accept of 'a | Reject of string | Raised of string

let protect f =
  match f () with
  | Ok v -> Accept v
  | Error e -> Reject e
  | exception e -> Raised (Printexc.to_string e)

let classify s =
  let first_tree = protect (fun () -> Der.decode s) in
  let first_slice =
    protect (fun () -> Der.decode_slice (Der.slice_of_string s))
  in
  let second =
    protect (fun () -> Result.map_error Der2.error_to_string (Der2.decode s))
  in
  match (first_tree, first_slice, second) with
  | Raised e, _, _ | _, Raised e, _ ->
      (Crash First, Printf.sprintf "lib/der raised: %s" e)
  | _, _, Raised e -> (Crash Second, Printf.sprintf "lib/der2 raised: %s" e)
  (* The production decoder's two readers must agree with each other before
     the cross-decoder comparison means anything. *)
  | Accept _, Reject e, _ | Reject e, Accept _, _ ->
      ( Mismatch,
        Printf.sprintf "lib/der tree and slice readers disagree (one rejects: %s)"
          e )
  | Accept t, Accept t', Accept t2 ->
      if t <> t' then
        (Mismatch, "lib/der tree and slice readers decode different values")
      else if agree t t2 then (Agree_accept, "")
      else (Mismatch, "decoded trees differ structurally")
  | Accept t, Accept t', Reject e2 ->
      if t <> t' then
        (Mismatch, "lib/der tree and slice readers decode different values")
      else (Split First, Printf.sprintf "lib/der2: %s" e2)
  | Reject e1, Reject _, Accept _ ->
      (Split Second, Printf.sprintf "lib/der: %s" e1)
  | Reject e1, Reject _, Reject e2 ->
      (Agree_reject, Printf.sprintf "lib/der: %s | lib/der2: %s" e1 e2)
