(** Typed report IR for the experiment suite.

    Reports are trees of blocks — typed-cell tables, lines of interleaved
    literal text and cells, raw narrative text — rendered by {!to_text}
    (the CLI's ASCII bodies, byte-identical to the sprintf strings this IR
    replaced), {!to_json} ([--format json], chaind stats) and {!to_markdown}
    (EXPERIMENTS.md). Cells optionally carry the paper's reported value and
    a tolerance, which powers {!check_paper} ([--check-paper]) and {!diff}
    ([chaoscheck diff]). *)

module Json = Json
(** The shared JSON codec lives here; [Chaoschain_service.Json] re-exports
    it. *)

module Cell : sig
  type value =
    | Count of int  (** thousands separators: ["16,952"] *)
    | Int of int  (** plain digits *)
    | Percent of { num : int; den : int }
        (** ["92.5%"]; ["~0%"] for tiny non-zero shares; ["n/a"] when the
            denominator is zero *)
    | Count_pct of { num : int; den : int }  (** ["838,354 (92.5%)"] *)
    | Float of { value : float; digits : int; suffix : string }
    | Text of string
    | Verdict of { v : bool; yes : string; no : string }

  val with_commas : int -> string
  val pct_string : int -> int -> string
  val count_pct_string : int -> int -> string

  val render : value -> string

  val measured_pct : value -> float option
  (** The percentage a [Near_pct] check compares against; [None] when the
      value carries none (or the denominator is zero). *)
end

(** {1 Cells and paper references} *)

type check =
  | Same_text of string
      (** the measured rendering must equal the paper's exactly (Table 9) *)
  | Near_pct of { pct : float; tol : float }
      (** the measured percentage must be within [tol] percentage points of
          the paper's. Percentages are the scale-invariant quantity of the
          quota-sampled population; absolute paper counts are display-only. *)

type paper = { shown : string; check : check option }
type cell = { value : Cell.value; paper : paper option }

val cell : Cell.value -> cell
val text : string -> cell
val count : int -> cell
val int : int -> cell
val percent : num:int -> den:int -> cell
val count_pct : num:int -> den:int -> cell
val verdict : bool -> yes:string -> no:string -> cell

val paper : ?check:check -> string -> cell -> cell
(** Attach a display-only (or explicitly checked) paper reference. *)

val near : paper:string -> pct:float -> tol:float -> cell -> cell
(** Attach a [Near_pct] check: [paper] is the displayed string, [pct] the
    paper's percentage, [tol] the tolerance in percentage points. *)

val same_text : paper:string -> cell -> cell
(** Attach a [Same_text] check. A mismatch renders inline as
    ["measured (paper: want)"] — the Table 9 convention. *)

val cell_text : cell -> string
(** The cell as the text renderer prints it. *)

(** {1 Blocks} *)

type span =
  | S of string
  | C of cell
  | Cw of int * cell
      (** printf field width: [Cw w] right-justifies in [w] columns, negative
          [w] left-justifies (like [%*s] / [%-*s]) *)

type row = Row of cell list | Sep
type table = { t_title : string; t_header : string list; t_rows : row list }
type block = Table of table | Line of span list | Raw of string

type t = { id : string; title : string; blocks : block list }

module Table : sig
  type builder

  val create : title:string -> header:string list -> builder
  val row : builder -> cell list -> unit
  val sep : builder -> unit
  val table : builder -> table
  val block : builder -> block
end

val line : span list -> block
(** One text line; the text renderer appends ["\n"]. *)

val raw : string -> block
(** Pre-rendered text, emitted verbatim. *)

(** {1 Renderers} *)

val render_table : table -> string
(** Column-aligned ASCII with a title banner (the former [Stats.render]). *)

val to_text : t -> string
val to_json : t -> Json.t

val md_escape : string -> string
(** Escape pipe characters for GFM table cells. *)

val to_markdown : t -> string

(** {1 Structured access} *)

val flatten : t -> (string * cell) list
(** Every cell with a stable path like ["table3/yes#2/# domains (measured)"]
    (report id / row-or-line label, [#n]-disambiguated on repetition / column
    header). Raw blocks flatten to one text cell each. *)

type delta = { d_path : string; d_a : string option; d_b : string option }

val diff : t list -> t list -> delta list
(** Per-cell differences between two report lists, in [a]'s path order
    ([b]-only paths last). [None] on a side means the path is absent there. *)

type deviation = { dev_path : string; dev_expected : string; dev_actual : string }

val check_paper : t list -> deviation list
(** Walk every cell carrying a paper check; empty means every measured value
    is within tolerance of (or textually equal to) the paper's. *)

val checked_cell_count : t list -> int

val inject_deviation : t list -> t list
(** Perturb the first tolerance-checked cell far outside its tolerance — the
    CI hook proving [--check-paper] fails (non-zero exit, named cell) on a
    real deviation. *)
