(** A small from-scratch JSON codec (RFC 8259 subset) shared by the report
    renderers ([Report.to_json]), the chaind wire protocol
    ([Chaoschain_service] re-exports this module) and the bench timing dumps.

    The encoder is compact (no whitespace) and deterministic: object members
    are emitted in construction order, so equal values produce byte-identical
    text — the property the service's verdict cache and the CI smoke test
    rely on. The decoder accepts standard JSON with arbitrary whitespace and
    [\uXXXX] escapes (surrogate pairs included). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact serialization. Non-finite floats encode as [null] (JSON has no
    NaN/infinity). *)

val sort_keys : t -> t
(** Recursively sort object members by key — the canonical member order
    {!pretty} emits. *)

val pretty : t -> string
(** Deterministic human-readable rendering: two-space indentation, object
    members sorted by key ({!sort_keys}), the same fixed float formatting as
    {!to_string}, no trailing newline. Equal values (up to member order)
    produce byte-identical text, which is what lets [--format json] output be
    compared with [cmp] across [--jobs] values and across scan vs. replay. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. Numbers
    without fraction or exponent that fit [int] decode as [Int], everything
    else as [Float]. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member k (Obj _)] — [None] for absent keys and non-objects. *)

val get_string : t -> string option
val get_bool : t -> bool option
val get_int : t -> int option
val get_list : t -> t list option
