type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- encoding --- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_into buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          encode buf v)
        l;
      Buffer.add_char buf ']'
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          encode buf v)
        members;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  encode buf v;
  Buffer.contents buf

(* --- deterministic pretty-printing --- *)

let rec sort_keys = function
  | List l -> List (List.map sort_keys l)
  | Obj members ->
      Obj
        (List.map (fun (k, v) -> (k, sort_keys v)) members
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))
  | v -> v

let pretty v =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let scalar v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_into buf s
    | List _ | Obj _ -> assert false
  in
  let rec go indent v =
    match v with
    | List [] -> Buffer.add_string buf "[]"
    | Obj [] -> Buffer.add_string buf "{}"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            go (indent + 2) item)
          items;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf ']'
    | Obj members ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            escape_into buf k;
            Buffer.add_string buf ": ";
            go (indent + 2) v)
          members;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf '}'
    | v -> scalar v
  in
  go 0 (sort_keys v);
  Buffer.contents buf

(* --- decoding: recursive descent over the input string --- *)

exception Parse of string

type state = { text : string; mutable pos : int }

let fail st msg = raise (Parse (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.text && String.sub st.text st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "bad \\u escape"
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    match peek st with
    | Some c ->
        v := (!v * 16) + digit c;
        advance st
    | None -> fail st "truncated \\u escape"
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 32 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let cp = hex4 st in
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  (* high surrogate: a low surrogate must follow *)
                  expect st '\\';
                  expect st 'u';
                  let lo = hex4 st in
                  if lo < 0xDC00 || lo > 0xDFFF then
                    fail st "unpaired surrogate"
                  else
                    utf8_add buf
                      (0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00)))
                end
                else if cp >= 0xDC00 && cp <= 0xDFFF then
                  fail st "unpaired surrogate"
                else utf8_add buf cp
            | _ -> fail st "bad escape");
            go ())
    | Some c when Char.code c < 0x20 -> fail st "raw control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let digits () =
    let seen = ref false in
    let rec go () =
      match peek st with
      | Some '0' .. '9' ->
          seen := true;
          advance st;
          go ()
      | _ -> ()
    in
    go ();
    if not !seen then fail st "expected digit"
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  digits ();
  let fractional = peek st = Some '.' in
  if fractional then begin
    advance st;
    digits ()
  end;
  let exponent = match peek st with Some ('e' | 'E') -> true | _ -> false in
  if exponent then begin
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    digits ()
  end;
  let text = String.sub st.text start (st.pos - start) in
  if (not fractional) && not exponent then
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)
  else Float (float_of_string text)

let rec parse_value st depth =
  if depth > 256 then fail st "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          items := parse_value st (depth + 1) :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              go ()
          | Some ']' -> advance st
          | _ -> fail st "expected ',' or ']'"
        in
        go ();
        List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let members = ref [] in
        let rec go () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st (depth + 1) in
          members := (k, v) :: !members;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              go ()
          | Some '}' -> advance st
          | _ -> fail st "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !members)
      end
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string text =
  let st = { text; pos = 0 } in
  match parse_value st 0 with
  | v ->
      skip_ws st;
      if st.pos <> String.length text then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Parse msg -> Error msg
  | exception Failure msg -> Error msg

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_int = function Int i -> Some i | _ -> None
let get_list = function List l -> Some l | _ -> None
