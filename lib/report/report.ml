(* The typed report IR.

   A report is a tree: sections (one [t] per table/figure of the paper) made
   of blocks — tables whose cells are typed values, lines of interleaved
   literal text and cells, and raw pre-rendered text for narrative passages
   (topology drawings, client transcripts). Three renderers walk the tree:

     to_text      the ASCII bodies the CLI prints (byte-identical to the
                  sprintf-built strings this IR replaced — the golden test
                  in test/golden pins that)
     to_json      machine-readable cells for --format json and chaind stats
     to_markdown  EXPERIMENTS.md

   Cells optionally carry the paper's reported value plus a tolerance, which
   is what makes [check_paper] (the --check-paper flag) and [diff] (the
   chaoscheck diff subcommand) possible without re-parsing rendered text. *)

module Json = Json

module Cell = struct
  type value =
    | Count of int  (* thousands separators: "16,952" *)
    | Int of int    (* plain digits *)
    | Percent of { num : int; den : int }    (* "92.5%", "~0%", "n/a" *)
    | Count_pct of { num : int; den : int }  (* "838,354 (92.5%)" *)
    | Float of { value : float; digits : int; suffix : string }
    | Text of string
    | Verdict of { v : bool; yes : string; no : string }

  let with_commas n =
    let s = string_of_int (abs n) in
    let len = String.length s in
    let buf = Buffer.create (len + (len / 3)) in
    if n < 0 then Buffer.add_char buf '-';
    String.iteri
      (fun i c ->
        if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
        Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* Total: a zero denominator renders "n/a" rather than propagating a NaN
     into the tables (a zero numerator still renders "0.0%"). *)
  let pct_string num den =
    if den = 0 then "n/a"
    else begin
      let p = 100.0 *. float_of_int num /. float_of_int den in
      if num > 0 && p < 0.05 then "~0%" else Printf.sprintf "%.1f%%" p
    end

  let count_pct_string num den =
    Printf.sprintf "%s (%s)" (with_commas num) (pct_string num den)

  let render = function
    | Count n -> with_commas n
    | Int n -> string_of_int n
    | Percent { num; den } -> pct_string num den
    | Count_pct { num; den } -> count_pct_string num den
    | Float { value; digits; suffix } -> Printf.sprintf "%.*f%s" digits value suffix
    | Text s -> s
    | Verdict { v; yes; no } -> if v then yes else no

  (* The share a [Near_pct] paper check compares against; [None] when the
     value carries no percentage (or the denominator is zero). *)
  let measured_pct = function
    | Percent { num; den } | Count_pct { num; den } ->
        if den = 0 then None
        else Some (100.0 *. float_of_int num /. float_of_int den)
    | Float { value; _ } -> Some value
    | _ -> None
end

(* --- cells with paper references --- *)

type check =
  | Same_text of string  (* the measured rendering must equal the paper's *)
  | Near_pct of { pct : float; tol : float }
      (* measured percentage within [tol] percentage points of the paper's.
         Percentages are the scale-invariant quantity of the quota-sampled
         population, so they are what --check-paper compares; absolute paper
         counts are display-only. *)

type paper = { shown : string; check : check option }
type cell = { value : Cell.value; paper : paper option }

let cell value = { value; paper = None }
let text s = cell (Cell.Text s)
let count n = cell (Cell.Count n)
let int n = cell (Cell.Int n)
let percent ~num ~den = cell (Cell.Percent { num; den })
let count_pct ~num ~den = cell (Cell.Count_pct { num; den })
let verdict v ~yes ~no = cell (Cell.Verdict { v; yes; no })

let paper ?check shown c = { c with paper = Some { shown; check } }

let near ~paper:shown ~pct ~tol c =
  { c with paper = Some { shown; check = Some (Near_pct { pct; tol }) } }

let same_text ~paper:want c =
  { c with paper = Some { shown = want; check = Some (Same_text want) } }

(* A [Same_text] mismatch is called out inline, exactly as the Table 9
   renderer always did. *)
let cell_text c =
  let base = Cell.render c.value in
  match c.paper with
  | Some { shown; check = Some (Same_text want) } when base <> want ->
      Printf.sprintf "%s (paper: %s)" base shown
  | _ -> base

(* --- blocks --- *)

type span =
  | S of string
  | C of cell
  | Cw of int * cell
      (* printf-style field width: [Cw w] right-justifies in [w] columns,
         negative [w] left-justifies (like %*s / %-*s) *)

type row = Row of cell list | Sep

type table = { t_title : string; t_header : string list; t_rows : row list }

type block = Table of table | Line of span list | Raw of string

type t = { id : string; title : string; blocks : block list }

module Table = struct
  type builder = {
    b_title : string;
    b_header : string list;
    mutable b_rows : row list;  (* reversed *)
  }

  let create ~title ~header = { b_title = title; b_header = header; b_rows = [] }
  let row b cells = b.b_rows <- Row cells :: b.b_rows
  let sep b = b.b_rows <- Sep :: b.b_rows

  let table b =
    { t_title = b.b_title; t_header = b.b_header; t_rows = List.rev b.b_rows }

  let block b = Table (table b)
end

let line spans = Line spans
let raw s = Raw s

(* --- text rendering --- *)

let span_text = function
  | S s -> s
  | C c -> cell_text c
  | Cw (w, c) ->
      let s = cell_text c in
      let width = abs w in
      let n = String.length s in
      if n >= width then s
      else if w >= 0 then String.make (width - n) ' ' ^ s
      else s ^ String.make (width - n) ' '

let render_table { t_title; t_header; t_rows } =
  let rows =
    List.map
      (function Row cells -> `Row (List.map cell_text cells) | Sep -> `Sep)
      t_rows
  in
  let all_cell_rows =
    t_header :: List.filter_map (function `Row r -> Some r | `Sep -> None) rows
  in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all_cell_rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun r ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) r)
    all_cell_rows;
  let buf = Buffer.create 1024 in
  let total_width = Array.fold_left ( + ) 0 widths + (3 * (max 1 ncols - 1)) in
  let hline = String.make (max total_width (String.length t_title)) '-' in
  Buffer.add_string buf t_title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf hline;
  Buffer.add_char buf '\n';
  let emit_row r =
    List.iteri
      (fun i c ->
        Buffer.add_string buf c;
        if i < List.length r - 1 then begin
          Buffer.add_string buf (String.make (widths.(i) - String.length c) ' ');
          Buffer.add_string buf "   "
        end)
      r;
    Buffer.add_char buf '\n'
  in
  emit_row t_header;
  Buffer.add_string buf hline;
  Buffer.add_char buf '\n';
  List.iter
    (function
      | `Row r -> emit_row r
      | `Sep ->
          Buffer.add_string buf hline;
          Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let block_text = function
  | Table t -> render_table t
  | Line spans -> String.concat "" (List.map span_text spans) ^ "\n"
  | Raw s -> s

let to_text t = String.concat "" (List.map block_text t.blocks)

(* --- JSON rendering --- *)

let json_of_cell c =
  let value_fields =
    match c.value with
    | Cell.Count n -> [ ("type", Json.String "count"); ("n", Json.Int n) ]
    | Cell.Int n -> [ ("type", Json.String "int"); ("n", Json.Int n) ]
    | Cell.Percent { num; den } ->
        [ ("type", Json.String "percent"); ("num", Json.Int num);
          ("den", Json.Int den) ]
    | Cell.Count_pct { num; den } ->
        [ ("type", Json.String "count_pct"); ("num", Json.Int num);
          ("den", Json.Int den) ]
    | Cell.Float { value; _ } ->
        [ ("type", Json.String "float"); ("value", Json.Float value) ]
    | Cell.Text _ -> [ ("type", Json.String "text") ]
    | Cell.Verdict { v; _ } ->
        [ ("type", Json.String "verdict"); ("ok", Json.Bool v) ]
  in
  let paper_fields =
    match c.paper with
    | None -> []
    | Some { shown; check } ->
        let check_fields =
          match check with
          | None -> []
          | Some (Same_text want) -> [ ("expect_text", Json.String want) ]
          | Some (Near_pct { pct; tol }) ->
              [ ("expect_pct", Json.Float pct); ("tolerance_pp", Json.Float tol) ]
        in
        [ ("paper", Json.Obj (("shown", Json.String shown) :: check_fields)) ]
  in
  Json.Obj
    (value_fields @ [ ("text", Json.String (cell_text c)) ] @ paper_fields)

let json_of_block = function
  | Table { t_title; t_header; t_rows } ->
      Json.Obj
        [ ("kind", Json.String "table");
          ("title", Json.String t_title);
          ("header", Json.List (List.map (fun h -> Json.String h) t_header));
          ( "rows",
            Json.List
              (List.map
                 (function
                   | Row cells ->
                       Json.Obj
                         [ ("cells", Json.List (List.map json_of_cell cells)) ]
                   | Sep -> Json.Obj [ ("separator", Json.Bool true) ])
                 t_rows) ) ]
  | Line spans ->
      let cells =
        List.filter_map
          (function S _ -> None | C c | Cw (_, c) -> Some (json_of_cell c))
          spans
      in
      Json.Obj
        [ ("kind", Json.String "line");
          ("text", Json.String (String.concat "" (List.map span_text spans)));
          ("cells", Json.List cells) ]
  | Raw s -> Json.Obj [ ("kind", Json.String "raw"); ("text", Json.String s) ]

let to_json t =
  Json.Obj
    [ ("id", Json.String t.id);
      ("title", Json.String t.title);
      ("blocks", Json.List (List.map json_of_block t.blocks)) ]

(* --- markdown rendering --- *)

let md_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '|' -> Buffer.add_string buf "\\|"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_markdown t =
  let buf = Buffer.create 1024 in
  let pending = Buffer.create 256 in
  let flush_pending () =
    if Buffer.length pending > 0 then begin
      Buffer.add_string buf "```\n";
      Buffer.add_buffer buf pending;
      if Buffer.length pending > 0
         && Buffer.nth pending (Buffer.length pending - 1) <> '\n'
      then Buffer.add_char buf '\n';
      Buffer.add_string buf "```\n\n";
      Buffer.clear pending
    end
  in
  Buffer.add_string buf (Printf.sprintf "## %s\n\n" t.title);
  List.iter
    (fun block ->
      match block with
      | Table { t_title; t_header; t_rows } ->
          flush_pending ();
          Buffer.add_string buf (Printf.sprintf "**%s**\n\n" (md_escape t_title));
          let emit cells =
            Buffer.add_string buf
              ("| " ^ String.concat " | " (List.map md_escape cells) ^ " |\n")
          in
          emit t_header;
          emit (List.map (fun _ -> "---") t_header);
          List.iter
            (function
              | Row cells -> emit (List.map cell_text cells)
              | Sep -> ())
            t_rows;
          Buffer.add_char buf '\n'
      | Line _ | Raw _ -> Buffer.add_string pending (block_text block))
    t.blocks;
  flush_pending ();
  Buffer.contents buf

(* --- flattening: stable per-cell paths for diff and check-paper --- *)

(* Paths look like "table3/yes#2/# domains (measured)" — report id, a row (or
   line) label disambiguated with #n on repetition, and the column header.
   They are derived from the IR, not from rendered text, so they are stable
   across value changes. *)

let flatten t =
  let out = ref [] in
  let seen = Hashtbl.create 16 in
  let uniq label =
    let n = match Hashtbl.find_opt seen label with Some n -> n + 1 | None -> 1 in
    Hashtbl.replace seen label n;
    if n = 1 then label else Printf.sprintf "%s#%d" label n
  in
  let emit path c = out := (path, c) :: !out in
  List.iteri
    (fun bi block ->
      match block with
      | Table { t_header; t_rows; _ } ->
          let header = Array.of_list t_header in
          List.iter
            (function
              | Sep -> ()
              | Row cells ->
                  let label =
                    uniq
                      (match cells with
                      | c :: _ -> cell_text c
                      | [] -> Printf.sprintf "row%d" bi)
                  in
                  List.iteri
                    (fun i c ->
                      let col =
                        if i < Array.length header then header.(i)
                        else Printf.sprintf "col%d" i
                      in
                      emit (Printf.sprintf "%s/%s/%s" t.id label col) c)
                    cells)
            t_rows
      | Line spans ->
          let prefix =
            let rec leading = function
              | S s :: rest -> s ^ leading rest
              | _ -> ""
            in
            String.trim (leading spans)
          in
          let label =
            uniq (if prefix = "" then Printf.sprintf "line%d" bi else prefix)
          in
          let cells =
            List.filter_map
              (function S _ -> None | C c | Cw (_, c) -> Some c)
              spans
          in
          let many = List.length cells > 1 in
          List.iteri
            (fun i c ->
              let path =
                if many then Printf.sprintf "%s/%s/%d" t.id label i
                else Printf.sprintf "%s/%s" t.id label
              in
              emit path c)
            cells
      | Raw s ->
          emit (Printf.sprintf "%s/%s" t.id (uniq (Printf.sprintf "raw%d" bi)))
            (text s))
    t.blocks;
  List.rev !out

(* --- diff --- *)

type delta = { d_path : string; d_a : string option; d_b : string option }

let diff a b =
  let fa = List.concat_map flatten a and fb = List.concat_map flatten b in
  let tb = Hashtbl.create (List.length fb) in
  List.iter (fun (p, c) -> Hashtbl.replace tb p (cell_text c)) fb;
  let deltas = ref [] in
  let seen_a = Hashtbl.create (List.length fa) in
  List.iter
    (fun (p, c) ->
      Hashtbl.replace seen_a p ();
      let va = cell_text c in
      match Hashtbl.find_opt tb p with
      | Some vb when String.equal va vb -> ()
      | Some vb -> deltas := { d_path = p; d_a = Some va; d_b = Some vb } :: !deltas
      | None -> deltas := { d_path = p; d_a = Some va; d_b = None } :: !deltas)
    fa;
  List.iter
    (fun (p, c) ->
      if not (Hashtbl.mem seen_a p) then
        deltas := { d_path = p; d_a = None; d_b = Some (cell_text c) } :: !deltas)
    fb;
  List.rev !deltas

(* --- paper checking --- *)

type deviation = { dev_path : string; dev_expected : string; dev_actual : string }

let checked_cells reports =
  List.concat_map flatten reports
  |> List.filter_map (fun (p, c) ->
         match c.paper with
         | Some { check = Some check; _ } -> Some (p, c, check)
         | _ -> None)

let check_paper reports =
  List.filter_map
    (fun (p, c, check) ->
      match check with
      | Same_text want ->
          let actual = Cell.render c.value in
          if String.equal actual want then None
          else
            Some { dev_path = p; dev_expected = want; dev_actual = actual }
      | Near_pct { pct; tol } -> (
          let expected = Printf.sprintf "%.1f%% (±%.1fpp)" pct tol in
          match Cell.measured_pct c.value with
          | None ->
              Some
                { dev_path = p; dev_expected = expected;
                  dev_actual = Cell.render c.value ^ " (no percentage)" }
          | Some m ->
              if Float.abs (m -. pct) <= tol then None
              else
                Some
                  { dev_path = p; dev_expected = expected;
                    dev_actual = Printf.sprintf "%.1f%%" m }))
    (checked_cells reports)

let checked_cell_count reports = List.length (checked_cells reports)

(* Perturb the first tolerance-checked cell far outside its tolerance — the
   CI hook that proves --check-paper actually fails (non-zero, named cell)
   when a measured value drifts from the paper. *)
let inject_deviation reports =
  let done_ = ref false in
  let map_cell c =
    if !done_ then c
    else
      match c.paper with
      | Some { check = Some (Near_pct { pct; tol }); _ } ->
          done_ := true;
          { c with
            value =
              Cell.Float
                { value = pct +. tol +. 50.0; digits = 1; suffix = "%" } }
      | _ -> c
  in
  let map_block = function
    | Table t ->
        Table
          { t with
            t_rows =
              List.map
                (function
                  | Sep -> Sep
                  | Row cells -> Row (List.map map_cell cells))
                t.t_rows }
    | Line spans ->
        Line
          (List.map
             (function
               | S s -> S s
               | C c -> C (map_cell c)
               | Cw (w, c) -> Cw (w, map_cell c))
             spans)
    | Raw s -> Raw s
  in
  List.map (fun t -> { t with blocks = List.map map_block t.blocks }) reports
