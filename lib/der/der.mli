(** A DER (X.690 Distinguished Encoding Rules) subset sufficient for X.509.

    Values are represented as a generic TLV tree; typed constructors and
    destructors cover the universal types certificates need. Encoding always
    uses definite lengths with minimal length octets; decoding rejects
    indefinite lengths, non-minimal long-form lengths, and truncated input,
    mirroring the strictness real verifiers apply to certificate bytes. *)

type tag_class = Universal | Application | Context_specific | Private

type tag = { cls : tag_class; constructed : bool; number : int }
(** A decoded identifier octet (low-tag-number form only; tag numbers
    above 30 are not used by X.509 and are rejected). *)

type t =
  | Prim of tag * string  (** primitive TLV: tag + raw content octets *)
  | Cons of tag * t list  (** constructed TLV: tag + child values *)

(** {1 Constructors for universal types} *)

val boolean : bool -> t
val integer_of_int : int -> t

val integer_bytes : string -> t
(** Big-endian two's-complement content octets, given verbatim (used for
    large serial numbers). Raises [Invalid_argument] on empty input. *)

val bit_string : ?unused:int -> string -> t
val octet_string : string -> t
val null : t
val oid : Oid.t -> t
val utf8_string : string -> t
val printable_string : string -> t
val ia5_string : string -> t

val utc_time : string -> t
(** Content given pre-rendered, e.g. ["240314000000Z"]. *)

val generalized_time : string -> t
val sequence : t list -> t
val set : t list -> t

val context : int -> t list -> t
(** Constructed context-specific tag [n] (EXPLICIT tagging). *)

val context_prim : int -> string -> t
(** Primitive context-specific tag [n] (IMPLICIT tagging of a primitive). *)

(** {1 Destructors}

    Each returns [Error] with a descriptive message when the value has the
    wrong shape. *)

type 'a or_error = ('a, string) result

val as_boolean : t -> bool or_error
val as_integer_int : t -> int or_error
val as_integer_bytes : t -> string or_error
val as_bit_string : t -> (int * string) or_error
val as_octet_string : t -> string or_error
val as_oid : t -> Oid.t or_error
val as_string : t -> string or_error
(** Accepts UTF8String, PrintableString or IA5String. *)

val as_time : t -> string or_error
(** Accepts UTCTime or GeneralizedTime; returns the raw content. *)

val as_sequence : t -> t list or_error
val as_set : t -> t list or_error

val as_context : int -> t -> t list or_error
(** Children of a constructed context-specific tag [n]. *)

val as_context_prim : int -> t -> string or_error

val tag_of : t -> tag

val tag_name : tag -> string
(** Human-readable tag name ("SEQUENCE", "[3]", ...), as used in decode
    error messages. *)

val is_context : int -> t -> bool
(** Whether the value carries context-specific tag [n] (either form). *)

(** {1 Wire codec} *)

val encode : t -> string
(** DER-encode a value. *)

val encode_many : t list -> string
(** Concatenation of the encodings of several values. *)

val max_depth : int
(** Constructed values nested deeper than this many levels are rejected with
    [Error _]. The bound exists so adversarial "nesting bombs" (a few hundred
    KiB can legally encode tens of thousands of nested SEQUENCEs) cannot turn
    the recursive decoders into a [Stack_overflow]; X.509 structures are
    single-digit deep. The independent second decoder ({!Chaoschain_der2.Der2})
    applies the same bound, keeping the two accept sets identical. *)

val decode : string -> t or_error
(** Decode exactly one value occupying the whole input. Never raises: every
    malformed input — truncation, forbidden length forms, nesting past
    {!max_depth} — is an [Error _]. *)

val decode_prefix : string -> int -> (t * int) or_error
(** [decode_prefix s off] decodes one value starting at [off]; returns it and
    the offset one past its last byte. *)

(** {1 Zero-copy slice reader}

    The hot decode path (certificate parsing, TLS certificate messages) walks
    TLV structure directly over the original buffer: a {!slice} is a
    [{buf; off; len}] window, a {!node} is one decoded TLV whose header has
    been read but whose bytes have not been copied. Content is only
    materialised ([String.sub]) at the leaves a caller actually keeps.
    [decode_slice (slice_of_string s)] accepts exactly the inputs [decode s]
    accepts and returns the same value; on malformed input both fail, though
    the lazy reader may describe an overrun differently than the eager
    decoder. *)

type slice = { buf : string; off : int; len : int }
(** A window into [buf]; never copied by the reader itself. *)

val slice_of_string : string -> slice

val slice_string : slice -> string
(** Materialise the window (returns [buf] itself when the window covers it). *)

type node = {
  n_tag : tag;
  n_raw : slice;      (** the full TLV: header + content octets *)
  n_content : slice;  (** the content octets only *)
}

val read_node : slice -> (node * slice) or_error
(** Read the TLV at the head of the slice; returns the node and the remaining
    bytes after it. No content bytes are copied. *)

val node_children : node -> node list or_error
(** One-level child nodes of a constructed TLV (zero-copy). *)

val node_tag : node -> tag

val node_content : node -> string
(** Copy of the node's content octets. *)

val node_raw : node -> string
(** Copy of the node's full TLV bytes (header + content). *)

val tree_of_node : node -> t or_error
(** Materialise the node as a tree (for reuse of the typed tree
    destructors on small sub-structures). *)

val decode_slice : slice -> t or_error
(** Decode exactly one value occupying the whole slice;
    equals [decode (slice_string s)]. *)

(** Typed destructors over nodes, mirroring the [as_*] family above (same
    error strings). *)

val as_sequence_n : node -> node list or_error
val as_integer_bytes_n : node -> string or_error
val as_integer_int_n : node -> int or_error
val as_bit_string_n : node -> (int * string) or_error
val as_oid_n : node -> Oid.t or_error
val as_context_n : int -> node -> node list or_error
val is_context_n : int -> node -> bool

val pp : Format.formatter -> t -> unit
(** Debugging pretty-printer (openssl asn1parse flavoured). *)
