type tag_class = Universal | Application | Context_specific | Private
type tag = { cls : tag_class; constructed : bool; number : int }
type t = Prim of tag * string | Cons of tag * t list
type 'a or_error = ('a, string) result

let ( let* ) = Result.bind

(* Universal tag numbers used by X.509. *)
let tn_boolean = 1
let tn_integer = 2
let tn_bit_string = 3
let tn_octet_string = 4
let tn_null = 5
let tn_oid = 6
let tn_utf8 = 12
let tn_sequence = 16
let tn_set = 17
let tn_printable = 19
let tn_ia5 = 22
let tn_utc_time = 23
let tn_generalized_time = 24

let utag ?(constructed = false) number =
  { cls = Universal; constructed; number }

let boolean b = Prim (utag tn_boolean, if b then "\xff" else "\x00")

let integer_of_int v =
  (* Minimal two's-complement big-endian content octets. *)
  let rec octets v acc =
    let low = v land 0xFF in
    let rest = v asr 8 in
    let acc = Char.chr low :: acc in
    if (rest = 0 && low < 0x80) || (rest = -1 && low >= 0x80) then acc
    else octets rest acc
  in
  let chars = octets v [] in
  let b = Bytes.create (List.length chars) in
  List.iteri (Bytes.set b) chars;
  Prim (utag tn_integer, Bytes.unsafe_to_string b)

let integer_bytes s =
  if String.length s = 0 then invalid_arg "Der.integer_bytes: empty";
  Prim (utag tn_integer, s)

let bit_string ?(unused = 0) s =
  if unused < 0 || unused > 7 then invalid_arg "Der.bit_string: unused bits";
  Prim (utag tn_bit_string, String.make 1 (Char.chr unused) ^ s)

let octet_string s = Prim (utag tn_octet_string, s)
let null = Prim (utag tn_null, "")

let oid o =
  let buf = Buffer.create 8 in
  let encode_base128 v =
    let rec chunks v acc = if v = 0 then acc else chunks (v lsr 7) ((v land 0x7F) :: acc) in
    let chunks = match chunks v [] with [] -> [ 0 ] | l -> l in
    List.iteri
      (fun i c ->
        let last = i = List.length chunks - 1 in
        Buffer.add_char buf (Char.chr (if last then c else c lor 0x80)))
      chunks
  in
  (match Oid.arcs o with
  | a :: b :: rest ->
      encode_base128 ((a * 40) + b);
      List.iter encode_base128 rest
  | _ -> assert false (* Oid.make guarantees >= 2 arcs *));
  Prim (utag tn_oid, Buffer.contents buf)

let utf8_string s = Prim (utag tn_utf8, s)
let printable_string s = Prim (utag tn_printable, s)
let ia5_string s = Prim (utag tn_ia5, s)
let utc_time s = Prim (utag tn_utc_time, s)
let generalized_time s = Prim (utag tn_generalized_time, s)
let sequence l = Cons (utag ~constructed:true tn_sequence, l)
let set l = Cons (utag ~constructed:true tn_set, l)

let context n children =
  Cons ({ cls = Context_specific; constructed = true; number = n }, children)

let context_prim n content =
  Prim ({ cls = Context_specific; constructed = false; number = n }, content)

let tag_of = function Prim (t, _) -> t | Cons (t, _) -> t

let tag_name tag =
  match (tag.cls, tag.number) with
  | Universal, 1 -> "BOOLEAN"
  | Universal, 2 -> "INTEGER"
  | Universal, 3 -> "BIT STRING"
  | Universal, 4 -> "OCTET STRING"
  | Universal, 5 -> "NULL"
  | Universal, 6 -> "OBJECT IDENTIFIER"
  | Universal, 12 -> "UTF8String"
  | Universal, 16 -> "SEQUENCE"
  | Universal, 17 -> "SET"
  | Universal, 19 -> "PrintableString"
  | Universal, 22 -> "IA5String"
  | Universal, 23 -> "UTCTime"
  | Universal, 24 -> "GeneralizedTime"
  | Universal, n -> Printf.sprintf "UNIVERSAL %d" n
  | Context_specific, n -> Printf.sprintf "[%d]" n
  | Application, n -> Printf.sprintf "APPLICATION %d" n
  | Private, n -> Printf.sprintf "PRIVATE %d" n

let wrong_shape expected v =
  Error (Printf.sprintf "expected %s, found %s" expected (tag_name (tag_of v)))

let as_boolean = function
  | Prim ({ cls = Universal; number = 1; _ }, c) when String.length c = 1 ->
      Ok (c.[0] <> '\x00')
  | v -> wrong_shape "BOOLEAN" v

let as_integer_bytes = function
  | Prim ({ cls = Universal; number = 2; _ }, c) when String.length c > 0 -> Ok c
  | v -> wrong_shape "INTEGER" v

let as_integer_int v =
  let* c = as_integer_bytes v in
  if String.length c > 8 then Error "INTEGER too large for int"
  else begin
    let acc = ref (if Char.code c.[0] >= 0x80 then -1 else 0) in
    String.iter (fun ch -> acc := (!acc lsl 8) lor Char.code ch) c;
    Ok !acc
  end

let as_bit_string = function
  | Prim ({ cls = Universal; number = 3; _ }, c) when String.length c >= 1 ->
      Ok (Char.code c.[0], String.sub c 1 (String.length c - 1))
  | v -> wrong_shape "BIT STRING" v

let as_octet_string = function
  | Prim ({ cls = Universal; number = 4; _ }, c) -> Ok c
  | v -> wrong_shape "OCTET STRING" v

let decode_oid content =
  if String.length content = 0 then Error "OID: empty content"
  else begin
    let arcs = ref [] in
    let v = ref 0 in
    let err = ref None in
    String.iteri
      (fun i ch ->
        let c = Char.code ch in
        v := (!v lsl 7) lor (c land 0x7F);
        if c land 0x80 = 0 then begin
          arcs := !v :: !arcs;
          v := 0
        end
        else if i = String.length content - 1 then
          err := Some "OID: truncated base-128 arc")
      content;
    match !err with
    | Some e -> Error e
    | None -> (
        match List.rev !arcs with
        | first :: rest ->
            let a = if first < 40 then 0 else if first < 80 then 1 else 2 in
            let b = first - (a * 40) in
            (try Ok (Oid.make (a :: b :: rest))
             with Invalid_argument m -> Error m)
        | [] -> Error "OID: no arcs")
  end

let as_oid = function
  | Prim ({ cls = Universal; number = 6; _ }, c) -> decode_oid c
  | v -> wrong_shape "OBJECT IDENTIFIER" v

let as_string = function
  | Prim ({ cls = Universal; number = 12 | 19 | 22; _ }, c) -> Ok c
  | v -> wrong_shape "UTF8String/PrintableString/IA5String" v

let as_time = function
  | Prim ({ cls = Universal; number = 23 | 24; _ }, c) -> Ok c
  | v -> wrong_shape "UTCTime/GeneralizedTime" v

let as_sequence = function
  | Cons ({ cls = Universal; number = 16; _ }, l) -> Ok l
  | v -> wrong_shape "SEQUENCE" v

let as_set = function
  | Cons ({ cls = Universal; number = 17; _ }, l) -> Ok l
  | v -> wrong_shape "SET" v

let as_context n = function
  | Cons ({ cls = Context_specific; number; _ }, l) when number = n -> Ok l
  | v -> wrong_shape (Printf.sprintf "[%d]" n) v

let as_context_prim n = function
  | Prim ({ cls = Context_specific; number; _ }, c) when number = n -> Ok c
  | v -> wrong_shape (Printf.sprintf "[%d] primitive" n) v

let is_context n v =
  match tag_of v with
  | { cls = Context_specific; number; _ } -> number = n
  | _ -> false

(* --- Encoding --- *)

let class_bits = function
  | Universal -> 0x00
  | Application -> 0x40
  | Context_specific -> 0x80
  | Private -> 0xC0

let add_tag buf tag =
  if tag.number > 30 then invalid_arg "Der: high tag numbers unsupported";
  let b =
    class_bits tag.cls lor (if tag.constructed then 0x20 else 0x00) lor tag.number
  in
  Buffer.add_char buf (Char.chr b)

let add_length buf len =
  if len < 0x80 then Buffer.add_char buf (Char.chr len)
  else begin
    let rec octets v acc = if v = 0 then acc else octets (v lsr 8) ((v land 0xFF) :: acc) in
    let os = octets len [] in
    Buffer.add_char buf (Char.chr (0x80 lor List.length os));
    List.iter (fun o -> Buffer.add_char buf (Char.chr o)) os
  end

let rec encode_into buf v =
  match v with
  | Prim (tag, content) ->
      add_tag buf tag;
      add_length buf (String.length content);
      Buffer.add_string buf content
  | Cons (tag, children) ->
      let inner = Buffer.create 64 in
      List.iter (encode_into inner) children;
      add_tag buf { tag with constructed = true };
      add_length buf (Buffer.length inner);
      Buffer.add_buffer buf inner

let encode v =
  let buf = Buffer.create 128 in
  encode_into buf v;
  Buffer.contents buf

let encode_many vs =
  let buf = Buffer.create 256 in
  List.iter (encode_into buf) vs;
  Buffer.contents buf

(* --- Decoding --- *)

(* Constructed nesting is bounded: adversarial inputs can legally encode
   tens of thousands of nested SEQUENCEs in a few hundred KiB (a "nesting
   bomb"), which would otherwise turn the recursive walks below into a
   Stack_overflow — an exception escaping a decoder whose contract is
   [Error _] on every malformed input. X.509 structures are single-digit
   deep; 1024 is three orders of magnitude of headroom. lib/der2 applies
   the same bound so the two independent decoders accept identical inputs. *)
let max_depth = 1024

let nesting_error =
  Printf.sprintf "nesting deeper than %d constructed levels" max_depth

(* The header readers are bounded by an explicit [limit] (one past the last
   readable byte) instead of the buffer length, so the same code serves both
   whole-string decoding and the zero-copy slice reader below. *)

let read_tag_at s ~limit off =
  if off >= limit then Error "truncated: no tag byte"
  else begin
    let b = Char.code (String.unsafe_get s off) in
    let cls =
      match b land 0xC0 with
      | 0x00 -> Universal
      | 0x40 -> Application
      | 0x80 -> Context_specific
      | _ -> Private
    in
    let constructed = b land 0x20 <> 0 in
    let number = b land 0x1F in
    if number = 0x1F then Error "high tag numbers unsupported"
    else Ok ({ cls; constructed; number }, off + 1)
  end

let read_length_at s ~limit off =
  if off >= limit then Error "truncated: no length byte"
  else begin
    let b = Char.code (String.unsafe_get s off) in
    if b < 0x80 then Ok (b, off + 1)
    else if b = 0x80 then Error "indefinite length not allowed in DER"
    else begin
      let n = b land 0x7F in
      if n > 4 then Error "length too large"
      else if off + 1 + n > limit then Error "truncated length octets"
      else begin
        let len = ref 0 in
        for i = 1 to n do
          len := (!len lsl 8) lor Char.code (String.unsafe_get s (off + i))
        done;
        if !len < 0x80 || (n > 1 && !len < 1 lsl ((n - 1) * 8)) then
          Error "non-minimal length encoding"
        else Ok (!len, off + 1 + n)
      end
    end
  end

let read_tag s off = read_tag_at s ~limit:(String.length s) off
let read_length s off = read_length_at s ~limit:(String.length s) off

let rec decode_prefix_at s ~depth off =
  let* tag, off = read_tag s off in
  let* len, off = read_length s off in
  if off + len > String.length s then Error "truncated content"
  else if tag.constructed then
    if depth >= max_depth then Error nesting_error
    else begin
      let stop = off + len in
      let rec children acc pos =
        if pos = stop then Ok (List.rev acc)
        else if pos > stop then Error "constructed content overruns length"
        else
          let* child, pos = decode_prefix_at s ~depth:(depth + 1) pos in
          children (child :: acc) pos
      in
      let* kids = children [] off in
      Ok (Cons (tag, kids), stop)
    end
  else Ok (Prim (tag, String.sub s off len), off + len)

let decode_prefix s off = decode_prefix_at s ~depth:0 off

let decode s =
  let* v, stop = decode_prefix s 0 in
  if stop <> String.length s then
    Error (Printf.sprintf "trailing garbage: %d bytes" (String.length s - stop))
  else Ok v

(* --- Zero-copy slice reader --- *)

type slice = { buf : string; off : int; len : int }

let slice_of_string s = { buf = s; off = 0; len = String.length s }

let slice_string { buf; off; len } =
  if off = 0 && len = String.length buf then buf else String.sub buf off len

type node = { n_tag : tag; n_raw : slice; n_content : slice }

let node_tag n = n.n_tag
let node_content n = slice_string n.n_content
let node_raw n = slice_string n.n_raw

let read_node { buf; off; len } =
  let limit = off + len in
  let* tag, p = read_tag_at buf ~limit off in
  let* clen, p = read_length_at buf ~limit p in
  if p + clen > limit then Error "truncated content"
  else
    Ok
      ( { n_tag = tag;
          n_raw = { buf; off; len = p + clen - off };
          n_content = { buf; off = p; len = clen } },
        { buf; off = p + clen; len = limit - p - clen } )

let node_children n =
  if not n.n_tag.constructed then
    Error
      (Printf.sprintf "expected constructed value, found %s" (tag_name n.n_tag))
  else begin
    let rec go acc rest =
      if rest.len = 0 then Ok (List.rev acc)
      else
        let* child, rest = read_node rest in
        go (child :: acc) rest
    in
    go [] n.n_content
  end

let rec tree_of_node_at ~depth n =
  if n.n_tag.constructed then
    if depth >= max_depth then Error nesting_error
    else
      let* kids = node_children n in
      let* trees = map_result_tree ~depth:(depth + 1) kids in
      Ok (Cons (n.n_tag, trees))
  else Ok (Prim (n.n_tag, slice_string n.n_content))

and map_result_tree ~depth = function
  | [] -> Ok []
  | n :: rest ->
      let* t = tree_of_node_at ~depth n in
      let* ts = map_result_tree ~depth rest in
      Ok (t :: ts)

let tree_of_node n = tree_of_node_at ~depth:0 n

let decode_slice s =
  let* n, rest = read_node s in
  if rest.len <> 0 then
    Error (Printf.sprintf "trailing garbage: %d bytes" rest.len)
  else tree_of_node n

(* Typed node destructors, mirroring the tree [as_*] family (same error
   strings, so the slice-based certificate decoder reports malformed input
   exactly like the tree-based one). *)

let node_wrong_shape expected n =
  Error (Printf.sprintf "expected %s, found %s" expected (tag_name n.n_tag))

let as_sequence_n n =
  match n.n_tag with
  | { cls = Universal; number = 16; constructed = true } -> node_children n
  | _ -> node_wrong_shape "SEQUENCE" n

let as_integer_bytes_n n =
  match n.n_tag with
  | { cls = Universal; number = 2; constructed = false } when n.n_content.len > 0 ->
      Ok (slice_string n.n_content)
  | _ -> node_wrong_shape "INTEGER" n

let as_integer_int_n n =
  let* c = as_integer_bytes_n n in
  if String.length c > 8 then Error "INTEGER too large for int"
  else begin
    let acc = ref (if Char.code c.[0] >= 0x80 then -1 else 0) in
    String.iter (fun ch -> acc := (!acc lsl 8) lor Char.code ch) c;
    Ok !acc
  end

let as_bit_string_n n =
  match n.n_tag with
  | { cls = Universal; number = 3; constructed = false } when n.n_content.len >= 1 ->
      let { buf; off; len } = n.n_content in
      Ok (Char.code buf.[off], String.sub buf (off + 1) (len - 1))
  | _ -> node_wrong_shape "BIT STRING" n

let as_oid_n n =
  match n.n_tag with
  | { cls = Universal; number = 6; constructed = false } ->
      decode_oid (slice_string n.n_content)
  | _ -> node_wrong_shape "OBJECT IDENTIFIER" n

let as_context_n num n =
  match n.n_tag with
  | { cls = Context_specific; number; _ } when number = num -> node_children n
  | _ -> node_wrong_shape (Printf.sprintf "[%d]" num) n

let is_context_n num n =
  match n.n_tag with
  | { cls = Context_specific; number; _ } -> number = num
  | _ -> false

let rec pp ppf v =
  match v with
  | Prim (tag, content) ->
      if tag.number = tn_oid && tag.cls = Universal then
        match decode_oid content with
        | Ok o -> Format.fprintf ppf "OBJECT IDENTIFIER %s" (Oid.name o)
        | Error _ -> Format.fprintf ppf "OBJECT IDENTIFIER <bad>"
      else if
        (tag.number = tn_printable || tag.number = tn_utf8 || tag.number = tn_ia5
       || tag.number = tn_utc_time || tag.number = tn_generalized_time)
        && tag.cls = Universal
      then Format.fprintf ppf "%s %S" (tag_name tag) content
      else
        Format.fprintf ppf "%s (%d bytes) %s" (tag_name tag)
          (String.length content)
          (Chaoschain_crypto.Hex.encode
             (String.sub content 0 (min 8 (String.length content))))
  | Cons (tag, children) ->
      Format.fprintf ppf "@[<v 2>%s {" (tag_name tag);
      List.iter (fun c -> Format.fprintf ppf "@,%a" pp c) children;
      Format.fprintf ppf "@]@,}"
