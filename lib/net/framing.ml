let default_max_frame = 1 lsl 20 (* = Transport.default_max_frame *)

type t = {
  max_frame : int;
  chunks : string Queue.t;   (* fed input not yet scanned *)
  mutable offset : int;      (* consumed prefix of the head chunk *)
  mutable queued : int;      (* unconsumed bytes across [chunks] *)
  partial : Buffer.t;        (* scanned prefix of the current line (no '\n') *)
  mutable discarding : bool; (* dropping an already-reported overlong line *)
  mutable eof : bool;        (* no more input will be fed *)
  mutable closed : bool;     (* eof AND everything buffered was delivered *)
}

let create ?(max_frame = default_max_frame) () =
  if max_frame < 1 then invalid_arg "Framing.create: max_frame >= 1";
  { max_frame; chunks = Queue.create (); offset = 0; queued = 0;
    partial = Buffer.create 256; discarding = false; eof = false;
    closed = false }

let feed t buf pos len =
  if t.eof then invalid_arg "Framing.feed: after eof";
  if len < 0 || pos < 0 || pos + len > Bytes.length buf then
    invalid_arg "Framing.feed: out of bounds";
  if len > 0 then begin
    Queue.add (Bytes.sub_string buf pos len) t.chunks;
    t.queued <- t.queued + len
  end

let feed_string t s =
  if t.eof then invalid_arg "Framing.feed: after eof";
  if String.length s > 0 then begin
    Queue.add s t.chunks;
    t.queued <- t.queued + String.length s
  end

let eof t = t.eof <- true
let at_eof t = t.eof
let buffered t = t.queued + Buffer.length t.partial

(* Drop [n] bytes from the head chunk, popping it once exhausted. *)
let consume t n =
  let head = Queue.peek t.chunks in
  t.offset <- t.offset + n;
  t.queued <- t.queued - n;
  if t.offset >= String.length head then begin
    ignore (Queue.pop t.chunks);
    t.offset <- 0
  end

let rec next t =
  if t.closed then `Eof
  else
    match Queue.peek_opt t.chunks with
    | Some chunk -> (
        let start = t.offset in
        match String.index_from_opt chunk start '\n' with
        | Some i ->
            let seg = i - start in
            if t.discarding then begin
              (* the closing newline of the overlong line: resume framing *)
              consume t (seg + 1);
              t.discarding <- false;
              next t
            end
            else begin
              let line =
                if Buffer.length t.partial = 0 then String.sub chunk start seg
                else begin
                  Buffer.add_substring t.partial chunk start seg;
                  let s = Buffer.contents t.partial in
                  Buffer.clear t.partial;
                  s
                end
              in
              consume t (seg + 1);
              if String.length line > t.max_frame then `Overlong
              else `Frame line
            end
        | None ->
            (* no newline in the rest of this chunk *)
            let seg = String.length chunk - start in
            if not t.discarding then
              Buffer.add_substring t.partial chunk start seg;
            consume t seg;
            if (not t.discarding) && Buffer.length t.partial > t.max_frame
            then begin
              (* past the bound with no newline in sight: report now and
                 drop the rest of the line as it streams through, keeping
                 memory bounded *)
              Buffer.clear t.partial;
              t.discarding <- true;
              `Overlong
            end
            else next t)
    | None ->
        if not t.eof then `Await
        else if t.discarding then begin
          (* the overlong line was cut off by EOF; it was already reported *)
          t.closed <- true;
          `Eof
        end
        else if Buffer.length t.partial > 0 then begin
          (* deliver a trailing unterminated line, then EOF forever *)
          let line = Buffer.contents t.partial in
          Buffer.clear t.partial;
          t.closed <- true;
          if String.length line > t.max_frame then `Overlong else `Frame line
        end
        else begin
          t.closed <- true;
          `Eof
        end
