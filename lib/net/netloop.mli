(** netd — a readiness-driven multi-connection front end.

    One [select]-based event loop multiplexes a listening socket (Unix
    domain or TCP) and every accepted connection over a single thread:

    - per-connection non-blocking NDJSON framing ({!Framing}) accumulates
      partial reads across chunk boundaries and handles overlong lines in
      discard mode;
    - complete frames are submitted to a {!sink} — chaind's micro-batching
      engine behind a thin closure record — in fair round-robin order
      across connections, so one chatty client cannot starve the rest;
    - replies come back tagged with the originating connection and are
      queued on per-connection write buffers, flushed opportunistically
      with non-blocking writes;
    - backpressure is layered: a connection whose write buffer exceeds
      [write_bound] is not read until it drains, reading stops globally
      while more than [inbox_bound] parsed frames await submission, and
      the sink's own admission queue rejects past its bound;
    - {!stop} begins a graceful drain: stop accepting and reading, submit
      what was already parsed, flush every in-flight batch and write
      buffer, then close all connections and the listener.

    Disconnects are survived, never fatal: [EPIPE]/[ECONNRESET] on either
    direction closes that one connection (replies still in flight for it
    are dropped), and [EINTR]/[EAGAIN] are retried or deferred. The loop
    never installs signal handlers; callers wire [SIGTERM]/[SIGINT] to
    {!stop} themselves. *)

type sink = {
  can_admit : unit -> bool;
      (** room in the admission queue? Polled before every submit so
          parsed frames are held (and reading pauses) rather than drawing
          rejections. *)
  submit : tag:int -> string -> [ `Admitted | `Rejected of string ];
      (** Offer one frame; [tag] comes back on the matching reply.
          [`Rejected reply] carries a ready-to-send response (overload). *)
  drain : unit -> (int * string) list;
      (** Process one micro-batch; tagged replies in request order. *)
  pending : unit -> int;  (** frames admitted but not yet drained *)
  overlong_reply : unit -> string;
      (** The response for a request line past [max_frame] (the line
          itself was consumed by the framing layer). *)
}

type config = {
  max_frame : int;   (** per-line bound, as the stdio transport's *)
  max_conns : int;   (** stop accepting while this many are live *)
  write_bound : int; (** pause reading a connection buffering more reply
                         bytes than this *)
  inbox_bound : int; (** pause reading every connection while this many
                         parsed frames await submission *)
}

val default_config : config
(** [max_frame] 1 MiB, [max_conns] 960 (headroom under the [select] fd
    limit), [write_bound] 256 KiB, [inbox_bound] 1024 frames. *)

type t

val create : ?config:config -> listen:Unix.file_descr -> sink -> t
(** The listener must already be bound and listening; it is switched to
    non-blocking mode. The loop takes ownership: {!run} closes it when the
    drain completes. *)

val step : ?timeout:float -> t -> bool
(** One iteration: select, accept, read, submit round-robin, drain one
    micro-batch, flush, reap closed connections. Blocks at most [timeout]
    seconds (default [0.]) and only when the loop is otherwise idle.
    Returns [false] once the loop is finished (stopped and fully drained).
    Exposed so tests can interleave client I/O with loop progress
    deterministically. *)

val run : t -> unit
(** [step] until {!stop} was called and the drain completed. *)

val stop : t -> unit
(** Begin the graceful drain (idempotent, async-signal-safe: it only sets
    a flag that the next iteration observes). *)

val finished : t -> bool

type stats = {
  live_conns : int;
  accepted : int;      (** connections accepted over the loop's lifetime *)
  frames : int;        (** frames submitted to the sink *)
  overlong : int;      (** overlong lines answered with an error reply *)
  dropped_replies : int;  (** replies whose connection was gone *)
}

val stats : t -> stats
