(** netd — a readiness-driven multi-connection front end.

    One event loop multiplexes a listening socket (Unix domain or TCP)
    and every accepted connection over a single thread, driving the
    backend-agnostic {!Poller} (portable [select], or [epoll] on Linux)
    instead of calling [Unix.select] directly:

    - per-connection non-blocking NDJSON framing ({!Framing}) accumulates
      partial reads across chunk boundaries and handles overlong lines in
      discard mode;
    - complete frames are submitted to a {!sink} — chaind's micro-batching
      engine behind a thin closure record — in fair round-robin order
      across connections, so one chatty client cannot starve the rest;
    - replies come back tagged with the originating connection and are
      queued on per-connection write buffers, flushed opportunistically
      with non-blocking writes;
    - backpressure is layered: a connection whose write buffer exceeds
      [write_bound] is not read until it drains, reading stops globally
      while more than [inbox_bound] parsed frames await submission, and
      the sink's own admission queue rejects past its bound;
    - poller interest is cached per descriptor and only deltas are pushed,
      so an [epoll] backend pays O(changes) + O(ready) per iteration;
    - [EMFILE]/[ENFILE] on accept are counted ({!stats.accept_failures})
      and back the listener off for a beat instead of spinning on a
      permanently-ready accept queue;
    - {!stop} begins a graceful drain: stop accepting and reading, submit
      what was already parsed, flush every in-flight batch and write
      buffer, then close all connections, the listener and the poller.

    For sharded serving, a loop can run without its own listener and
    instead {e adopt} connections pushed by a dispatcher shard through
    {!offer} (a mutex-guarded queue plus a self-pipe wakeup — safe to
    call from another Domain), while a listener-owning loop hands
    accepted fds out through its [dispatch] hook. {!stop} is likewise
    Domain-safe (an [Atomic] flag plus a wakeup), so one signal handler
    can drain every shard.

    Disconnects are survived, never fatal: [EPIPE]/[ECONNRESET] on either
    direction closes that one connection (replies still in flight for it
    are dropped), and [EINTR]/[EAGAIN] are retried or deferred. The loop
    never installs signal handlers; callers wire [SIGTERM]/[SIGINT] to
    {!stop} themselves. *)

type sink = {
  can_admit : unit -> bool;
      (** room in the admission queue? Polled before every submit so
          parsed frames are held (and reading pauses) rather than drawing
          rejections. *)
  submit : tag:int -> string -> [ `Admitted | `Rejected of string ];
      (** Offer one frame; [tag] comes back on the matching reply.
          [`Rejected reply] carries a ready-to-send response (overload). *)
  drain : unit -> (int * string) list;
      (** Process one micro-batch; tagged replies in request order. *)
  pending : unit -> int;  (** frames admitted but not yet drained *)
  overlong_reply : unit -> string;
      (** The response for a request line past [max_frame] (the line
          itself was consumed by the framing layer). *)
}

type config = {
  max_frame : int;   (** per-line bound, as the stdio transport's *)
  max_conns : int;   (** stop accepting while this many are live; [0]
                         derives the bound from the active poller
                         ({!Poller.default_max_conns}) *)
  write_bound : int; (** pause reading a connection buffering more reply
                         bytes than this *)
  inbox_bound : int; (** pause reading every connection while this many
                         parsed frames await submission *)
}

val default_config : config
(** [max_frame] 1 MiB, [max_conns] 0 (poller-derived: 960 under [select],
    rlimit-based under [epoll]), [write_bound] 256 KiB, [inbox_bound]
    1024 frames. *)

type t

val create :
  ?config:config ->
  ?backend:Poller.backend ->
  ?listen:Unix.file_descr ->
  ?dispatch:(Unix.file_descr -> bool) ->
  sink ->
  t
(** [backend] defaults to [Poller.Select] (the caller resolves
    availability with {!Poller.choose} first; creating an unavailable
    backend raises [Failure]). The listener, when given, must already be
    bound and listening; it is switched to non-blocking mode and the loop
    takes ownership ({!run} closes it when the drain completes). Without
    a listener the loop serves adopted connections only ({!offer}).
    [dispatch], called on each freshly accepted descriptor, returns
    [true] when it handed the fd to another shard ([false] = this loop
    keeps it). *)

val step : ?timeout:float -> t -> bool
(** One iteration: wait on the poller, accept, adopt offered fds, read,
    submit round-robin, drain one micro-batch, flush, reap closed
    connections. Blocks at most [timeout] seconds (default [0.]) and only
    when the loop is otherwise idle. Returns [false] once the loop is
    finished (stopped and fully drained). Exposed so tests can interleave
    client I/O with loop progress deterministically. *)

val run : t -> unit
(** [step] until {!stop} was called and the drain completed. *)

val stop : t -> unit
(** Begin the graceful drain. Idempotent and Domain-safe (an atomic flag
    plus a self-pipe wakeup), so a signal handler on the main Domain can
    stop shard loops running on other Domains. *)

val offer : t -> Unix.file_descr -> bool
(** Queue an accepted connection for adoption by this loop (the sharded
    dispatcher path; Domain-safe). [false] = refused — the loop is
    draining or its connection budget is spent — and the caller keeps
    ownership of the fd. *)

val finished : t -> bool

val max_conns : t -> int
(** The resolved connection bound (config, or poller-derived when the
    config said [0]). *)

val poller_name : t -> string

type stats = {
  live_conns : int;
  accepted : int;      (** connections accepted or adopted over the
                           loop's lifetime *)
  frames : int;        (** frames submitted to the sink *)
  overlong : int;      (** overlong lines answered with an error reply *)
  dropped_replies : int;  (** replies whose connection was gone *)
  accept_failures : int;
      (** [EMFILE]/[ENFILE] accept attempts (each also backs the
          listener off briefly) *)
}

val stats : t -> stats

val aggregate_stats : stats list -> stats
(** Field-wise sum — the cross-shard view. *)
