type config = {
  dial : unit -> Unix.file_descr;
  conns : int;
  rate : float;
  requests : int;
  max_frame : int;
  is_error : string -> bool;
  now : unit -> float;
  grace : float;
  capture : (int -> string -> unit) option;
  ramp : float;
  backend : Poller.backend;
}

type stats = {
  sent : int;
  received : int;
  ok : int;
  errors : int;
  dropped : int;
  connect_errors : int;
  elapsed_s : float;
  latencies_ms : float array;
}

type conn = {
  mutable fd : Unix.file_descr option;  (* None until dialed or after a
                                           failed connect *)
  framing : Framing.t;
  out : string Queue.t;
  mutable out_off : int;
  mutable out_bytes : int;
  outstanding : (int * float) Queue.t;  (* (seq, scheduled send time) *)
  mutable dead : bool;
  mutable want_w : bool;                (* write interest at the poller *)
}

let flush_conn c =
  match c.fd with
  | None -> ()
  | Some fd ->
      let continue = ref true in
      while !continue && not (Queue.is_empty c.out) do
        let head = Queue.peek c.out in
        let len = String.length head - c.out_off in
        match Unix.write_substring fd head c.out_off len with
        | n ->
            c.out_bytes <- c.out_bytes - n;
            if n = len then begin
              ignore (Queue.pop c.out);
              c.out_off <- 0
            end
            else begin
              c.out_off <- c.out_off + n;
              continue := false
            end
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            continue := false
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | exception Unix.Unix_error (_, _, _) ->
            c.dead <- true;
            continue := false
      done

let run cfg ~frame =
  if cfg.conns < 1 then invalid_arg "Loadgen.run: conns >= 1";
  if not (cfg.rate > 0.0) then invalid_arg "Loadgen.run: rate > 0";
  if cfg.requests < 1 then invalid_arg "Loadgen.run: requests >= 1";
  if cfg.ramp < 0.0 then invalid_arg "Loadgen.run: ramp >= 0";
  let poller = Poller.create cfg.backend in
  let by_fd : (Unix.file_descr, conn) Hashtbl.t =
    Hashtbl.create (2 * cfg.conns)
  in
  let conns =
    Array.init cfg.conns (fun _ ->
        { fd = None; framing = Framing.create ~max_frame:cfg.max_frame ();
          out = Queue.create (); out_off = 0; out_bytes = 0;
          outstanding = Queue.create (); dead = false; want_w = false })
  in
  let chunk = Bytes.create 65536 in
  let latencies = Array.make cfg.requests 0.0 in
  let sent = ref 0 and received = ref 0 and dropped = ref 0 in
  let ok = ref 0 and errors = ref 0 and connect_errors = ref 0 in
  let t0 = cfg.now () in
  let sched i = t0 +. (Float.of_int i /. cfg.rate) in
  (* connection [j] opens at its ramp offset; ramp 0 = everything upfront *)
  let dial_at j = t0 +. (cfg.ramp *. Float.of_int j /. Float.of_int cfg.conns) in
  let give_up = sched (cfg.requests - 1) +. cfg.grace in
  let next = ref 0 in
  let n_open = ref 0 in   (* conns.(0 .. n_open-1) have passed their dial time
                             (possibly straight into [dead] on a refused
                             connect); requests round-robin over this prefix *)
  let kill_fd c =
    match c.fd with
    | None -> ()
    | Some fd ->
        Poller.remove poller fd;
        Hashtbl.remove by_fd fd
  in
  let drop_outstanding c =
    dropped := !dropped + Queue.length c.outstanding;
    Queue.clear c.outstanding
  in
  let kill c =
    if not c.dead then begin
      c.dead <- true;
      kill_fd c;
      drop_outstanding c
    end
  in
  let open_due t =
    while !n_open < cfg.conns && dial_at !n_open <= t do
      let c = conns.(!n_open) in
      incr n_open;
      match cfg.dial () with
      | fd ->
          Unix.set_nonblock fd;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          c.fd <- Some fd;
          Hashtbl.replace by_fd fd c;
          Poller.set poller fd ~read:true ~write:false
      | exception (Unix.Unix_error _ | Failure _) ->
          (* a refused connection loses its share of the schedule, not
             the whole run *)
          incr connect_errors;
          c.dead <- true
    done
  in
  let complete c reply =
    match Queue.take_opt c.outstanding with
    | None -> () (* unsolicited line; nothing to attribute it to *)
    | Some (seq, scheduled) ->
        latencies.(!received) <- (cfg.now () -. scheduled) *. 1000.0;
        incr received;
        if cfg.is_error reply then incr errors else incr ok;
        match cfg.capture with None -> () | Some f -> f seq reply
  in
  let pump c =
    let rec go () =
      match Framing.next c.framing with
      | `Frame reply -> complete c reply; go ()
      | `Overlong -> incr errors; ignore (Queue.take_opt c.outstanding); go ()
      | `Await | `Eof -> ()
    in
    go ()
  in
  let read_conn c =
    match c.fd with
    | None -> ()
    | Some fd -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
            Framing.eof c.framing;
            (* drain frames completed by the final bytes, then give up on
               the connection's remaining outstanding requests *)
            pump c;
            kill c
        | n ->
            Framing.feed c.framing chunk 0 n;
            pump c
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
        | exception Unix.Unix_error (_, _, _) -> kill c)
  in
  while !received + !dropped < cfg.requests do
    let t = cfg.now () in
    open_due t;
    (* open-loop: buffer every request whose scheduled time has arrived,
       whether or not earlier ones were answered; requests round-robin
       over the connections opened so far, so the ramp shifts early load
       onto the early connections without perturbing the schedule *)
    while !next < cfg.requests && sched !next <= t do
      let i = !next in
      let c = conns.(i mod max 1 !n_open) in
      if c.dead || c.fd = None then incr dropped
      else begin
        let line = frame i in
        Queue.add line c.out;
        Queue.add "\n" c.out;
        c.out_bytes <- c.out_bytes + String.length line + 1;
        Queue.add (i, sched i) c.outstanding;
        incr sent
      end;
      incr next
    done;
    if !received + !dropped < cfg.requests then begin
      let all_gone =
        !n_open = cfg.conns
        && Array.for_all (fun c -> c.dead || c.fd = None) conns
      in
      if all_gone then begin
        (* every connection died; everything not yet answered is lost *)
        Array.iter drop_outstanding conns;
        dropped := !dropped + (cfg.requests - !next);
        next := cfg.requests
      end
      else if !next >= cfg.requests && cfg.now () > give_up then
        (* the grace window expired: whatever is still outstanding is lost *)
        Array.iter drop_outstanding conns
      else begin
        Array.iter
          (fun c ->
            match c.fd with
            | Some fd when not c.dead ->
                let want_w = c.out_bytes > 0 in
                if want_w <> c.want_w then begin
                  Poller.set poller fd ~read:true ~write:want_w;
                  c.want_w <- want_w
                end
            | _ -> ())
          conns;
        let tmo =
          let until_request =
            if !next < cfg.requests then
              Float.max 0.0 (sched !next -. cfg.now ())
            else 0.05
          in
          let until_dial =
            if !n_open < cfg.conns then
              Float.max 0.0 (dial_at !n_open -. cfg.now ())
            else infinity
          in
          Float.min 0.25 (Float.min until_request until_dial)
        in
        let events = Poller.wait poller ~timeout:tmo in
        Array.iter
          (fun c -> if (not c.dead) && c.out_bytes > 0 then flush_conn c)
          conns;
        List.iter
          (fun (fd, r, _w) ->
            if r then
              match Hashtbl.find_opt by_fd fd with
              | Some c when not c.dead -> read_conn c
              | _ -> ())
          events
      end
    end
  done;
  let elapsed_s = cfg.now () -. t0 in
  Array.iter
    (fun c ->
      kill_fd c;
      match c.fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ())
    conns;
  Poller.close poller;
  { sent = !sent; received = !received; ok = !ok; errors = !errors;
    dropped = !dropped; connect_errors = !connect_errors; elapsed_s;
    latencies_ms = Array.sub latencies 0 !received }

let quantile samples q =
  let n = Array.length samples in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let rank = Float.to_int (Float.ceil (q *. Float.of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    sorted.(rank - 1)
  end

let mean samples =
  let n = Array.length samples in
  if n = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 samples /. Float.of_int n
