type config = {
  dial : unit -> Unix.file_descr;
  conns : int;
  rate : float;
  requests : int;
  max_frame : int;
  is_error : string -> bool;
  now : unit -> float;
  grace : float;
  capture : (int -> string -> unit) option;
}

type stats = {
  sent : int;
  received : int;
  ok : int;
  errors : int;
  dropped : int;
  elapsed_s : float;
  latencies_ms : float array;
}

type conn = {
  fd : Unix.file_descr;
  framing : Framing.t;
  out : string Queue.t;
  mutable out_off : int;
  mutable out_bytes : int;
  outstanding : (int * float) Queue.t;  (* (seq, scheduled send time) *)
  mutable dead : bool;
}

let flush_conn c =
  let continue = ref true in
  while !continue && not (Queue.is_empty c.out) do
    let head = Queue.peek c.out in
    let len = String.length head - c.out_off in
    match Unix.write_substring c.fd head c.out_off len with
    | n ->
        c.out_bytes <- c.out_bytes - n;
        if n = len then begin
          ignore (Queue.pop c.out);
          c.out_off <- 0
        end
        else begin
          c.out_off <- c.out_off + n;
          continue := false
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
        c.dead <- true;
        continue := false
  done

let run cfg ~frame =
  if cfg.conns < 1 then invalid_arg "Loadgen.run: conns >= 1";
  if not (cfg.rate > 0.0) then invalid_arg "Loadgen.run: rate > 0";
  if cfg.requests < 1 then invalid_arg "Loadgen.run: requests >= 1";
  let conns =
    Array.init cfg.conns (fun _ ->
        let fd = cfg.dial () in
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ | Invalid_argument _ -> ());
        { fd; framing = Framing.create ~max_frame:cfg.max_frame ();
          out = Queue.create (); out_off = 0; out_bytes = 0;
          outstanding = Queue.create (); dead = false })
  in
  let chunk = Bytes.create 65536 in
  let latencies = Array.make cfg.requests 0.0 in
  let sent = ref 0 and received = ref 0 and dropped = ref 0 in
  let ok = ref 0 and errors = ref 0 in
  let t0 = cfg.now () in
  let sched i = t0 +. (Float.of_int i /. cfg.rate) in
  let give_up = sched (cfg.requests - 1) +. cfg.grace in
  let next = ref 0 in
  let drop_outstanding c =
    dropped := !dropped + Queue.length c.outstanding;
    Queue.clear c.outstanding
  in
  let kill c =
    if not c.dead then begin
      c.dead <- true;
      drop_outstanding c
    end
  in
  let complete c reply =
    match Queue.take_opt c.outstanding with
    | None -> () (* unsolicited line; nothing to attribute it to *)
    | Some (seq, scheduled) ->
        latencies.(!received) <- (cfg.now () -. scheduled) *. 1000.0;
        incr received;
        if cfg.is_error reply then incr errors else incr ok;
        match cfg.capture with None -> () | Some f -> f seq reply
  in
  let read_conn c =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 ->
        Framing.eof c.framing;
        (* drain frames completed by the final bytes, then give up on the
           connection's remaining outstanding requests *)
        let rec go () =
          match Framing.next c.framing with
          | `Frame reply -> complete c reply; go ()
          | `Overlong -> incr errors; ignore (Queue.take_opt c.outstanding); go ()
          | `Await | `Eof -> ()
        in
        go ();
        kill c
    | n ->
        Framing.feed c.framing chunk 0 n;
        let rec go () =
          match Framing.next c.framing with
          | `Frame reply -> complete c reply; go ()
          | `Overlong -> incr errors; ignore (Queue.take_opt c.outstanding); go ()
          | `Await | `Eof -> ()
        in
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> kill c
  in
  while !received + !dropped < cfg.requests do
    let t = cfg.now () in
    (* open-loop: buffer every request whose scheduled time has arrived,
       whether or not earlier ones were answered *)
    while !next < cfg.requests && sched !next <= t do
      let i = !next in
      let c = conns.(i mod cfg.conns) in
      if c.dead then incr dropped
      else begin
        let line = frame i in
        Queue.add line c.out;
        Queue.add "\n" c.out;
        c.out_bytes <- c.out_bytes + String.length line + 1;
        Queue.add (i, sched i) c.outstanding;
        incr sent
      end;
      incr next
    done;
    if !received + !dropped < cfg.requests then begin
      if !next >= cfg.requests && cfg.now () > give_up then
        (* the grace window expired: whatever is still outstanding is lost *)
        Array.iter drop_outstanding conns
      else begin
        let readers = ref [] and writers = ref [] in
        Array.iter
          (fun c ->
            if not c.dead then begin
              readers := c.fd :: !readers;
              if c.out_bytes > 0 then writers := c.fd :: !writers
            end)
          conns;
        if !readers = [] then
          (* every connection died; unsent requests drop as they schedule *)
          Array.iter drop_outstanding conns
        else begin
          let tmo =
            if !next < cfg.requests then
              Float.min 0.25 (Float.max 0.0 (sched !next -. cfg.now ()))
            else 0.05
          in
          let rs, _, _ =
            match Unix.select !readers !writers [] tmo with
            | r -> r
            | exception Unix.Unix_error (EINTR, _, _) -> ([], [], [])
          in
          Array.iter
            (fun c -> if (not c.dead) && c.out_bytes > 0 then flush_conn c)
            conns;
          Array.iter
            (fun c -> if (not c.dead) && List.memq c.fd rs then read_conn c)
            conns
        end
      end
    end
  done;
  let elapsed_s = cfg.now () -. t0 in
  Array.iter
    (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    conns;
  { sent = !sent; received = !received; ok = !ok; errors = !errors;
    dropped = !dropped; elapsed_s;
    latencies_ms = Array.sub latencies 0 !received }

let quantile samples q =
  let n = Array.length samples in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let rank = Float.to_int (Float.ceil (q *. Float.of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    sorted.(rank - 1)
  end

let mean samples =
  let n = Array.length samples in
  if n = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 samples /. Float.of_int n
