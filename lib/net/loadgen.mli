(** Open-loop load generation against a netd listener.

    The generator schedules request [i] at [t0 + i / rate] regardless of
    how fast the server answers — the open-loop discipline — and measures
    each request's latency from its *scheduled* start to the arrival of
    its reply. A slow server therefore accrues queueing delay into the
    tail percentiles instead of silently slowing the offered load
    (coordinated omission).

    Requests round-robin over the connections opened so far; replies are
    newline-delimited and, per connection, arrive in request order (the
    engine preserves request order inside and across micro-batches), so
    the k-th reply on a connection completes the k-th request sent on it.
    With [ramp] > 0, connection [j] dials at [t0 + ramp * j / conns], so
    the connection count grows linearly over the ramp window while the
    request schedule is unaffected.

    Single-threaded, poller-driven ({!Poller}; [select] by default),
    non-blocking: socket errors, an early EOF, or a refused connect count
    the affected requests as dropped ([connect_errors] tallies the failed
    dials) rather than aborting the run. *)

type config = {
  dial : unit -> Unix.file_descr;
      (** open one connection to the server (blocking connect is fine;
          the descriptor is switched to non-blocking). A raised
          [Unix.Unix_error] or [Failure] marks that connection dead and
          counts in {!stats.connect_errors}; the run continues. *)
  conns : int;        (** concurrent connections (>= 1) *)
  rate : float;       (** offered load, requests/second (> 0) *)
  requests : int;     (** total requests to send (>= 1) *)
  max_frame : int;    (** reply-line bound for the framing machines *)
  is_error : string -> bool;
      (** classify a reply line (e.g. [ok:false] detection) *)
  now : unit -> float;  (** monotonic clock, seconds *)
  grace : float;
      (** seconds to keep waiting for outstanding replies after the last
          request was sent before giving up and counting them dropped *)
  capture : (int -> string -> unit) option;
      (** observe (request sequence number, raw reply line); used by the
          CI byte-identity check *)
  ramp : float;
      (** seconds over which to open the [conns] connections (>= 0);
          [0.] opens everything upfront *)
  backend : Poller.backend;  (** readiness backend for the client loop *)
}

type stats = {
  sent : int;
  received : int;
  ok : int;
  errors : int;    (** replies the classifier flagged (e.g. ["ok":false]) *)
  dropped : int;   (** requests without a reply: dead connection, failed
                       connect, or grace timeout *)
  connect_errors : int;  (** dials that raised; each also marks its
                             connection dead *)
  elapsed_s : float;  (** first schedule to last reply (or give-up) *)
  latencies_ms : float array;  (** one entry per received reply *)
}

val run : config -> frame:(int -> string) -> stats
(** [frame i] is the i-th request line (without the newline); it is pulled
    lazily just before the request is buffered for write. *)

val quantile : float array -> float -> float
(** Exact sample quantile (nearest-rank on a sorted copy); [0.] on an
    empty array. *)

val mean : float array -> float
