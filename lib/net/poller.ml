type backend = Select | Epoll

(* --- C stubs (poller_stubs.c) --- *)

external epoll_available : unit -> bool = "chaos_epoll_available"
external epoll_create : unit -> int = "chaos_epoll_create"

external epoll_ctl : int -> int -> int -> int -> unit = "chaos_epoll_ctl"
(* epfd, op (0 add / 1 mod / 2 del), fd, interest mask (1 read / 2 write) *)

external epoll_wait : int -> int -> (int * int) array = "chaos_epoll_wait"
(* epfd, timeout ms -> (fd, ready mask) per ready descriptor *)

external rlimit_nofile : unit -> int = "chaos_rlimit_nofile"

(* On Unix a [Unix.file_descr] is the plain kernel int; the epoll backend
   crosses the boundary with the identity (the stubs are only reachable on
   Linux, where this holds). *)
external int_of_fd : Unix.file_descr -> int = "%identity"
external fd_of_int : int -> Unix.file_descr = "%identity"

let available = function Select -> true | Epoll -> epoll_available ()

let backend_name = function Select -> "select" | Epoll -> "epoll"

let choose = function
  | `Select -> Ok Select
  | `Epoll ->
      if available Epoll then Ok Epoll
      else Error "epoll is not available on this platform (try --poller select)"
  | `Auto -> Ok (if available Epoll then Epoll else Select)

(* Headroom below the hard descriptor ceiling: the listener, the wake pipe,
   stdio, the store segments and whatever else the process holds open. *)
let fd_headroom = 64

let default_max_conns = function
  | Select ->
      (* Unix.select is FD_SETSIZE-bound (1024 on the usual libcs)
         regardless of the rlimit. *)
      1024 - fd_headroom
  | Epoll -> max 64 (rlimit_nofile () - fd_headroom)

type select_state = {
  (* fd -> (read interest, write interest) *)
  interest : (Unix.file_descr, bool * bool) Hashtbl.t;
}

type epoll_state = {
  epfd : int;
  (* fd -> interest mask as registered with the kernel (1 read / 2 write);
     interest-less fds are kept here with mask 0 but removed from the
     kernel set, because epoll reports EPOLLHUP/EPOLLERR even for a
     zero-event registration and a paused hung-up connection would spin. *)
  masks : (int, int) Hashtbl.t;
  mutable closed : bool;
}

type t = Sel of select_state | Ep of epoll_state

let create = function
  | Select -> Sel { interest = Hashtbl.create 64 }
  | Epoll ->
      if not (epoll_available ()) then
        failwith "Poller.create: epoll is not available on this platform";
      Ep { epfd = epoll_create (); masks = Hashtbl.create 64; closed = false }

let backend = function Sel _ -> Select | Ep _ -> Epoll
let name t = backend_name (backend t)

let registered = function
  | Sel s -> Hashtbl.length s.interest
  | Ep e -> Hashtbl.length e.masks

let mask_of ~read ~write = (if read then 1 else 0) lor (if write then 2 else 0)

let set t fd ~read ~write =
  match t with
  | Sel s -> Hashtbl.replace s.interest fd (read, write)
  | Ep e ->
      let n = int_of_fd fd in
      let mask = mask_of ~read ~write in
      let old = Hashtbl.find_opt e.masks n in
      if old <> Some mask then begin
        (match (old, mask) with
        | None, 0 | Some 0, 0 -> ()
        | (None | Some 0), _ -> epoll_ctl e.epfd 0 n mask (* ADD *)
        | Some _, 0 -> (
            try epoll_ctl e.epfd 2 n 0 with Unix.Unix_error _ -> ()) (* DEL *)
        | Some _, _ -> epoll_ctl e.epfd 1 n mask (* MOD *));
        Hashtbl.replace e.masks n mask
      end

let remove t fd =
  match t with
  | Sel s -> Hashtbl.remove s.interest fd
  | Ep e -> (
      let n = int_of_fd fd in
      match Hashtbl.find_opt e.masks n with
      | None -> ()
      | Some mask ->
          Hashtbl.remove e.masks n;
          if mask <> 0 then
            (* The fd may already be closed (then the kernel dropped it
               itself); EBADF/ENOENT here are not errors. *)
            try epoll_ctl e.epfd 2 n 0 with Unix.Unix_error _ -> ())

let wait t ~timeout =
  let timeout = if timeout < 0.0 then 0.0 else timeout in
  match t with
  | Sel s ->
      let readers = ref [] and writers = ref [] in
      Hashtbl.iter
        (fun fd (r, w) ->
          if r then readers := fd :: !readers;
          if w then writers := fd :: !writers)
        s.interest;
      if !readers = [] && !writers = [] && timeout = 0.0 then []
      else begin
        let rs, ws, _ =
          match Unix.select !readers !writers [] timeout with
          | r -> r
          | exception Unix.Unix_error (EINTR, _, _) -> ([], [], [])
        in
        (* one entry per ready fd, read/write flags merged *)
        let ready = Hashtbl.create (List.length rs + List.length ws) in
        List.iter (fun fd -> Hashtbl.replace ready fd (true, false)) rs;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt ready fd with
            | Some (r, _) -> Hashtbl.replace ready fd (r, true)
            | None -> Hashtbl.replace ready fd (false, true))
          ws;
        Hashtbl.fold (fun fd (r, w) acc -> (fd, r, w) :: acc) ready []
      end
  | Ep e ->
      if e.closed then []
      else begin
        let ms =
          (* round up so a 0.4 ms timeout does not busy-poll *)
          if timeout = 0.0 then 0
          else max 1 (int_of_float (Float.ceil (timeout *. 1000.0)))
        in
        let events = epoll_wait e.epfd ms in
        Array.fold_left
          (fun acc (n, ready) ->
            (* The kernel folds EPOLLHUP/EPOLLERR into both directions
               unconditionally; report only the directions the caller
               registered interest in, like the select backend does. *)
            let interest =
              Option.value (Hashtbl.find_opt e.masks n) ~default:3
            in
            let m = ready land interest in
            if m = 0 then acc
            else (fd_of_int n, m land 1 <> 0, m land 2 <> 0) :: acc)
          [] events
      end

let close = function
  | Sel s -> Hashtbl.reset s.interest
  | Ep e ->
      if not e.closed then begin
        e.closed <- true;
        Hashtbl.reset e.masks;
        try Unix.close (fd_of_int e.epfd) with Unix.Unix_error _ -> ()
      end
