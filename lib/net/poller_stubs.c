/* C stubs behind lib/net/poller.ml: the Linux epoll backend and the
 * RLIMIT_NOFILE probe. The file compiles on every POSIX platform; the
 * epoll entry points are only reachable when chaos_epoll_available
 * reports true (Linux), everywhere else they fail cleanly and the OCaml
 * side falls back to the select backend. */

#include <errno.h>
#include <string.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/signals.h>
#include <caml/unixsupport.h>

#include <sys/resource.h>

CAMLprim value chaos_rlimit_nofile(value unit)
{
  struct rlimit rl;
  long cur;
  (void)unit;
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(1024);
  if (rl.rlim_cur == RLIM_INFINITY) return Val_long(1 << 20);
  cur = (long)rl.rlim_cur;
  if (cur > (1 << 20)) cur = 1 << 20;
  if (cur < 0) cur = 1024;
  return Val_long(cur);
}

#ifdef __linux__

#include <sys/epoll.h>
#include <unistd.h>

CAMLprim value chaos_epoll_available(value unit)
{
  (void)unit;
  return Val_true;
}

CAMLprim value chaos_epoll_create(value unit)
{
  int fd;
  (void)unit;
  fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd == -1) uerror("epoll_create1", Nothing);
  return Val_long(fd);
}

/* op: 0 = ADD, 1 = MOD, 2 = DEL; interest mask: 1 = read, 2 = write. */
CAMLprim value chaos_epoll_ctl(value vep, value vop, value vfd, value vmask)
{
  struct epoll_event ev;
  int op;
  memset(&ev, 0, sizeof ev);
  if (Long_val(vmask) & 1) ev.events |= EPOLLIN;
  if (Long_val(vmask) & 2) ev.events |= EPOLLOUT;
  ev.data.fd = (int)Long_val(vfd);
  switch (Long_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl((int)Long_val(vep), op, (int)Long_val(vfd), &ev) == -1)
    uerror("epoll_ctl", Nothing);
  return Val_unit;
}

#define CHAOS_EPOLL_MAX_EVENTS 1024

/* -> (fd, ready mask) array; ready mask: 1 = read, 2 = write, with
 * hangup/error folded into both directions (the following read/write
 * observes the actual condition). */
CAMLprim value chaos_epoll_wait(value vep, value vtimeout_ms)
{
  CAMLparam2(vep, vtimeout_ms);
  CAMLlocal2(arr, pair);
  struct epoll_event evs[CHAOS_EPOLL_MAX_EVENTS];
  int n, i;

  caml_enter_blocking_section();
  n = epoll_wait((int)Long_val(vep), evs, CHAOS_EPOLL_MAX_EVENTS,
                 (int)Long_val(vtimeout_ms));
  caml_leave_blocking_section();

  if (n == -1) {
    if (errno == EINTR) n = 0;
    else uerror("epoll_wait", Nothing);
  }
  arr = caml_alloc(n, 0);
  for (i = 0; i < n; i++) {
    int mask = 0;
    if (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP))
      mask |= 1;
    if (evs[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) mask |= 2;
    pair = caml_alloc_tuple(2);
    Store_field(pair, 0, Val_long(evs[i].data.fd));
    Store_field(pair, 1, Val_long(mask));
    Store_field(arr, i, pair);
  }
  CAMLreturn(arr);
}

#else /* !__linux__ */

CAMLprim value chaos_epoll_available(value unit)
{
  (void)unit;
  return Val_false;
}

CAMLprim value chaos_epoll_create(value unit)
{
  (void)unit;
  caml_failwith("epoll is not available on this platform");
}

CAMLprim value chaos_epoll_ctl(value vep, value vop, value vfd, value vmask)
{
  (void)vep; (void)vop; (void)vfd; (void)vmask;
  caml_failwith("epoll is not available on this platform");
}

CAMLprim value chaos_epoll_wait(value vep, value vtimeout_ms)
{
  (void)vep; (void)vtimeout_ms;
  caml_failwith("epoll is not available on this platform");
}

#endif
