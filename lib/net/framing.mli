(** Incremental NDJSON framing for non-blocking connections.

    One state machine per connection: bytes arrive in whatever chunks the
    socket delivers ({!feed}), complete newline-terminated lines come out
    ({!next}). The semantics mirror {!Chaoschain_service.Transport.Fd} —
    the serial stdio transport — exactly, so a frame is identical whichever
    path carried it:

    - a line longer than [max_frame] yields [`Overlong] once, at the point
      the bound is crossed, and the machine switches to discard mode: the
      rest of that line is dropped chunk-by-chunk through its closing
      newline without ever being buffered, then framing resumes cleanly on
      the same connection;
    - a trailing unterminated line is delivered as a final frame at EOF;
    - after the EOF drain the machine answers [`Eof] forever.

    Unlike the stdio transport, {!next} never touches a file descriptor:
    the event loop owns all I/O and feeds raw chunks in. Scanning is
    incremental — each input byte is examined once, independent of how the
    stream is cut into chunks. *)

type t

val default_max_frame : int
(** 1 MiB — the same bound as
    [Chaoschain_service.Transport.default_max_frame]. *)

val create : ?max_frame:int -> unit -> t
(** [max_frame] defaults to [Chaoschain_service.Transport.default_max_frame]
    (1 MiB); it must be [>= 1] (raises [Invalid_argument]). *)

val feed : t -> bytes -> int -> int -> unit
(** [feed t buf pos len] appends [len] bytes of [buf] starting at [pos]
    (the bytes are copied; the caller may reuse [buf]). Feeding after
    {!eof} raises [Invalid_argument]. *)

val feed_string : t -> string -> unit

val eof : t -> unit
(** The peer closed its write side: no more input will arrive. Idempotent. *)

val next : t -> [ `Frame of string | `Overlong | `Await | `Eof ]
(** The next complete frame. [`Await] means more input is needed ([`Eof]
    instead once {!eof} was signalled and everything buffered has been
    delivered). [`Overlong] reports a line past [max_frame]; the line is
    consumed (or scheduled for discard). *)

val buffered : t -> int
(** Bytes currently held: the partial line plus unscanned chunks. Bounded
    by [max_frame] plus the largest fed chunk, even against an endless
    newline-free stream. *)

val at_eof : t -> bool
(** {!eof} has been signalled (buffered frames may still be pending). *)
