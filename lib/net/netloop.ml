type sink = {
  can_admit : unit -> bool;
  submit : tag:int -> string -> [ `Admitted | `Rejected of string ];
  drain : unit -> (int * string) list;
  pending : unit -> int;
  overlong_reply : unit -> string;
}

type config = {
  max_frame : int;
  max_conns : int;   (* 0 = derive from the active poller backend *)
  write_bound : int;
  inbox_bound : int;
}

let default_config =
  { max_frame = Framing.default_max_frame;
    max_conns = 0;
    write_bound = 256 * 1024;
    inbox_bound = 1024 }

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_framing : Framing.t;
  c_inbox : string Queue.t;     (* parsed frames awaiting submission *)
  c_out : string Queue.t;       (* reply bytes awaiting the socket *)
  mutable c_out_off : int;      (* flushed prefix of the head of c_out *)
  mutable c_out_bytes : int;
  mutable c_inflight : int;     (* frames submitted, reply not yet routed *)
  mutable c_read_eof : bool;
  mutable c_dead : bool;        (* socket error: close asap, drop replies *)
  mutable c_want_r : bool;      (* interest currently held by the poller *)
  mutable c_want_w : bool;
}

type stats = {
  live_conns : int;
  accepted : int;
  frames : int;
  overlong : int;
  dropped_replies : int;
  accept_failures : int;
}

let aggregate_stats l =
  List.fold_left
    (fun a s ->
      { live_conns = a.live_conns + s.live_conns;
        accepted = a.accepted + s.accepted;
        frames = a.frames + s.frames;
        overlong = a.overlong + s.overlong;
        dropped_replies = a.dropped_replies + s.dropped_replies;
        accept_failures = a.accept_failures + s.accept_failures })
    { live_conns = 0; accepted = 0; frames = 0; overlong = 0;
      dropped_replies = 0; accept_failures = 0 }
    l

type t = {
  config : config;
  max_conns : int;                  (* resolved: config or poller-derived *)
  poller : Poller.t;
  listen : Unix.file_descr option;
  sink : sink;
  dispatch : (Unix.file_descr -> bool) option;
      (* accept-time hook: [true] = the fd was handed to another shard *)
  conns : (int, conn) Hashtbl.t;
  by_fd : (Unix.file_descr, conn) Hashtbl.t;
  chunk : Bytes.t;
  wake_r : Unix.file_descr;         (* self-pipe: offer/stop wakeups *)
  wake_w : Unix.file_descr;
  adopt_lock : Mutex.t;
  adopt_q : Unix.file_descr Queue.t; (* fds offered by a dispatcher shard *)
  mutable next_id : int;
  mutable rr : int;                 (* round-robin rotation cursor *)
  draining : bool Atomic.t;         (* set cross-Domain by stop *)
  mutable listener_armed : bool;    (* accept interest held by the poller *)
  mutable listener_closed : bool;
  mutable stopped : bool;           (* drain complete; loop is done *)
  mutable inboxed : int;            (* global parsed-but-unsubmitted count *)
  mutable accepted : int;
  mutable frames : int;
  mutable overlong : int;
  mutable dropped_replies : int;
  mutable accept_failures : int;    (* EMFILE/ENFILE on accept *)
  mutable accept_backoff_until : float;
      (* while in the future, the listener is not armed: an fd-exhausted
         process must not spin on a permanently-ready accept queue *)
}

let accept_backoff_s = 0.05

let create ?(config = default_config) ?(backend = Poller.Select) ?listen
    ?dispatch sink =
  if config.max_conns < 0 then invalid_arg "Netloop.create: max_conns >= 0";
  if config.write_bound < 1 then invalid_arg "Netloop.create: write_bound >= 1";
  if config.inbox_bound < 1 then invalid_arg "Netloop.create: inbox_bound >= 1";
  let poller = Poller.create backend in
  let max_conns =
    if config.max_conns = 0 then Poller.default_max_conns backend
    else config.max_conns
  in
  Option.iter Unix.set_nonblock listen;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  Poller.set poller wake_r ~read:true ~write:false;
  (match listen with
  | Some fd ->
      Poller.set poller fd ~read:true ~write:false
  | None -> ());
  { config; max_conns; poller; listen; sink; dispatch;
    conns = Hashtbl.create 64; by_fd = Hashtbl.create 64;
    chunk = Bytes.create 65536; wake_r; wake_w;
    adopt_lock = Mutex.create (); adopt_q = Queue.create ();
    next_id = 0; rr = 0; draining = Atomic.make false;
    listener_armed = listen <> None; listener_closed = false; stopped = false;
    inboxed = 0; accepted = 0; frames = 0; overlong = 0; dropped_replies = 0;
    accept_failures = 0; accept_backoff_until = 0.0 }

let max_conns t = t.max_conns
let poller_name t = Poller.name t.poller
let finished t = t.stopped

let wake t =
  (* A full pipe already guarantees a pending wakeup; write errors after
     the loop tore the pipe down are equally ignorable. *)
  try ignore (Unix.write_substring t.wake_w "!" 0 1 : int)
  with Unix.Unix_error _ -> ()

let stop t =
  Atomic.set t.draining true;
  wake t

let draining t = Atomic.get t.draining

let stats t =
  { live_conns = Hashtbl.length t.conns; accepted = t.accepted;
    frames = t.frames; overlong = t.overlong;
    dropped_replies = t.dropped_replies;
    accept_failures = t.accept_failures }

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Queue an accepted fd for adoption by this loop (called from the
   dispatcher shard's Domain). Refused — [false], caller keeps the fd —
   once this loop drains or its connection budget (live + already queued)
   is spent. *)
let offer t fd =
  if Atomic.get t.draining || t.stopped then false
  else begin
    Mutex.lock t.adopt_lock;
    let accepted =
      Hashtbl.length t.conns + Queue.length t.adopt_q < t.max_conns
      && not (Atomic.get t.draining)
    in
    if accepted then Queue.add fd t.adopt_q;
    Mutex.unlock t.adopt_lock;
    if accepted then wake t;
    accepted
  end

let push_out c s =
  Queue.add s c.c_out;
  Queue.add "\n" c.c_out;
  c.c_out_bytes <- c.c_out_bytes + String.length s + 1

(* Sorted live connections, rotated by the fairness cursor so every
   connection periodically goes first for both reading and submission. *)
let rotated t =
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  let all = List.sort (fun a b -> compare a.c_id b.c_id) all in
  match all with
  | [] -> []
  | _ ->
      (* rotate left by the cursor: [a;b;c;d] at k=1 -> [b;c;d;a] *)
      let k = t.rr mod List.length all in
      let rec drop i xs = if i = 0 then xs else
        match xs with [] -> [] | _ :: r -> drop (i - 1) r in
      let rec take i xs = if i = 0 then [] else
        match xs with [] -> [] | x :: r -> x :: take (i - 1) r in
      drop k all @ take k all

(* --- accepting / adopting --- *)

let register_conn t fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let id = t.next_id in
  t.next_id <- id + 1;
  t.accepted <- t.accepted + 1;
  let c =
    { c_id = id; c_fd = fd;
      c_framing = Framing.create ~max_frame:t.config.max_frame ();
      c_inbox = Queue.create (); c_out = Queue.create ();
      c_out_off = 0; c_out_bytes = 0; c_inflight = 0;
      c_read_eof = false; c_dead = false; c_want_r = true; c_want_w = false }
  in
  Hashtbl.add t.conns id c;
  Hashtbl.replace t.by_fd fd c;
  Poller.set t.poller fd ~read:true ~write:false

let rec accept_ready t =
  if (not (draining t)) && Hashtbl.length t.conns < t.max_conns then
    match t.listen with
    | None -> ()
    | Some listen -> (
        match Unix.accept ~cloexec:true listen with
        | fd, _ ->
            (match t.dispatch with
            | Some handoff when handoff fd -> ()
            | _ -> register_conn t fd);
            accept_ready t
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error (EINTR, _, _) -> accept_ready t
        | exception Unix.Unix_error (ECONNABORTED, _, _) -> accept_ready t
        | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
            (* Out of descriptors: count it and stop arming the listener
               for a beat instead of spinning on the still-ready accept
               queue; existing connections keep draining, which is what
               frees descriptors. *)
            t.accept_failures <- t.accept_failures + 1;
            t.accept_backoff_until <- Unix.gettimeofday () +. accept_backoff_s
        | exception Unix.Unix_error (EBADF, _, _) -> ())

(* Pull fds queued by a dispatcher shard into real connections. *)
let adopt_offered t =
  let pending = ref [] in
  Mutex.lock t.adopt_lock;
  Queue.iter (fun fd -> pending := fd :: !pending) t.adopt_q;
  Queue.clear t.adopt_q;
  Mutex.unlock t.adopt_lock;
  List.iter
    (fun fd ->
      if draining t || Hashtbl.length t.conns >= t.max_conns then close_fd fd
      else register_conn t fd)
    (List.rev !pending)

let drain_wake t =
  let rec go () =
    match Unix.read t.wake_r t.chunk 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

(* --- reading --- *)

(* Pump every frame the machine can deliver right now into the inbox. *)
let pump t c =
  let rec go () =
    match Framing.next c.c_framing with
    | `Frame f ->
        Queue.add f c.c_inbox;
        t.inboxed <- t.inboxed + 1;
        go ()
    | `Overlong ->
        t.overlong <- t.overlong + 1;
        push_out c (t.sink.overlong_reply ());
        go ()
    | `Await | `Eof -> ()
  in
  go ()

let read_ready t c =
  if not (c.c_dead || c.c_read_eof) then begin
    (match Unix.read c.c_fd t.chunk 0 (Bytes.length t.chunk) with
    | 0 ->
        c.c_read_eof <- true;
        Framing.eof c.c_framing
    | n -> Framing.feed c.c_framing t.chunk 0 n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> c.c_dead <- true);
    if not c.c_dead then pump t c
  end

(* --- submission (fair round-robin) --- *)

let submit_frames t =
  if t.inboxed > 0 then begin
    let order = rotated t in
    t.rr <- t.rr + 1;
    let progress = ref true in
    while !progress && t.inboxed > 0 && t.sink.can_admit () do
      progress := false;
      List.iter
        (fun c ->
          if (not c.c_dead)
             && (not (Queue.is_empty c.c_inbox))
             && t.sink.can_admit ()
          then begin
            let frame = Queue.pop c.c_inbox in
            t.inboxed <- t.inboxed - 1;
            (match t.sink.submit ~tag:c.c_id frame with
            | `Admitted ->
                c.c_inflight <- c.c_inflight + 1;
                t.frames <- t.frames + 1
            | `Rejected reply -> push_out c reply);
            progress := true
          end)
        order
    done
  end

(* --- replies --- *)

let route_replies t responses =
  List.iter
    (fun (tag, reply) ->
      match Hashtbl.find_opt t.conns tag with
      | Some c ->
          c.c_inflight <- c.c_inflight - 1;
          if c.c_dead then t.dropped_replies <- t.dropped_replies + 1
          else push_out c reply
      | None -> t.dropped_replies <- t.dropped_replies + 1)
    responses

(* --- writing --- *)

let flush_out c =
  let continue = ref true in
  while !continue && not (Queue.is_empty c.c_out) do
    let head = Queue.peek c.c_out in
    let len = String.length head - c.c_out_off in
    match Unix.write_substring c.c_fd head c.c_out_off len with
    | n ->
        c.c_out_bytes <- c.c_out_bytes - n;
        if n = len then begin
          ignore (Queue.pop c.c_out);
          c.c_out_off <- 0
        end
        else begin
          c.c_out_off <- c.c_out_off + n;
          continue := false
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
        (* EPIPE/ECONNRESET and friends: the peer is gone; close this one
           connection instead of dying *)
        c.c_dead <- true;
        continue := false
  done

(* --- lifecycle --- *)

let reap t =
  let victims =
    Hashtbl.fold
      (fun _ c acc ->
        let finished_naturally =
          c.c_read_eof && Queue.is_empty c.c_inbox && c.c_inflight = 0
          && c.c_out_bytes = 0
        in
        let drained =
          draining t && Queue.is_empty c.c_inbox && c.c_inflight = 0
          && c.c_out_bytes = 0
        in
        if c.c_dead || finished_naturally || drained then c :: acc else acc)
      t.conns []
  in
  List.iter
    (fun c ->
      t.inboxed <- t.inboxed - Queue.length c.c_inbox;
      Queue.clear c.c_inbox;
      Poller.remove t.poller c.c_fd;
      close_fd c.c_fd;
      Hashtbl.remove t.by_fd c.c_fd;
      Hashtbl.remove t.conns c.c_id)
    victims

let readable_conn t c =
  (not c.c_dead) && (not c.c_read_eof) && (not (draining t))
  && c.c_out_bytes <= t.config.write_bound
  && t.inboxed < t.config.inbox_bound

(* Reconcile the poller's interest set with the loop state: the listener
   accepts while there is budget (and no active EMFILE backoff), a
   connection reads under the layered backpressure bounds and writes
   while reply bytes are queued. Only changed interests reach the
   poller — O(changes), which is what lets the epoll backend skip the
   O(n) per-iteration registration cost select pays. *)
let update_interest t ~now =
  (match t.listen with
  | Some listen when not t.listener_closed ->
      let want =
        (not (draining t))
        && Hashtbl.length t.conns < t.max_conns
        && now >= t.accept_backoff_until
      in
      if want <> t.listener_armed then begin
        Poller.set t.poller listen ~read:want ~write:false;
        t.listener_armed <- want
      end
  | _ -> ());
  Hashtbl.iter
    (fun _ c ->
      let want_r = readable_conn t c in
      let want_w = (not c.c_dead) && c.c_out_bytes > 0 in
      if want_r <> c.c_want_r || want_w <> c.c_want_w then begin
        Poller.set t.poller c.c_fd ~read:want_r ~write:want_w;
        c.c_want_r <- want_r;
        c.c_want_w <- want_w
      end)
    t.conns

let teardown t =
  (* Close everything the loop owns; adopt_q fds that were never
     registered are closed too (their peers see a reset, which is the
     drain contract for connections that arrived after stop). *)
  Mutex.lock t.adopt_lock;
  Queue.iter close_fd t.adopt_q;
  Queue.clear t.adopt_q;
  Mutex.unlock t.adopt_lock;
  Poller.remove t.poller t.wake_r;
  close_fd t.wake_r;
  close_fd t.wake_w;
  Poller.close t.poller

let step ?(timeout = 0.0) t =
  if t.stopped then false
  else begin
    if draining t && not t.listener_closed then begin
      (match t.listen with
      | Some listen ->
          Poller.remove t.poller listen;
          close_fd listen
      | None -> ());
      t.listener_armed <- false;
      t.listener_closed <- true
    end;
    (* done? every connection drained and the engine queue empty *)
    if draining t && Hashtbl.length t.conns = 0 && t.inboxed = 0
       && t.sink.pending () = 0
       && (Mutex.lock t.adopt_lock;
           let empty = Queue.is_empty t.adopt_q in
           Mutex.unlock t.adopt_lock;
           empty)
    then begin
      teardown t;
      t.stopped <- true;
      false
    end
    else begin
      let now = Unix.gettimeofday () in
      update_interest t ~now;
      let has_work =
        t.inboxed > 0 || t.sink.pending () > 0
        || Hashtbl.fold (fun _ c acc -> acc || c.c_dead) t.conns false
      in
      let tmo =
        if has_work then 0.0
        else if t.accept_backoff_until > now then
          (* wake up in time to re-arm the listener *)
          Float.min timeout (Float.max 0.001 (t.accept_backoff_until -. now))
        else timeout
      in
      let events = Poller.wait t.poller ~timeout:tmo in
      let accept_now = ref false in
      List.iter
        (fun (fd, r, _w) ->
          if fd = t.wake_r then drain_wake t
          else
            match t.listen with
            | Some listen when fd = listen -> if r then accept_now := true
            | _ -> ())
        events;
      if !accept_now && not t.listener_closed then accept_ready t;
      adopt_offered t;
      (* read in rotated order for fairness; only fds the poller marked
         ready (readiness flags survive the detour through by_fd) *)
      let ready_r = Hashtbl.create 16 in
      List.iter
        (fun (fd, r, _w) ->
          if r then
            match Hashtbl.find_opt t.by_fd fd with
            | Some c -> Hashtbl.replace ready_r c.c_id ()
            | None -> ())
        events;
      List.iter
        (fun c -> if Hashtbl.mem ready_r c.c_id then read_ready t c)
        (rotated t);
      submit_frames t;
      route_replies t (t.sink.drain ());
      (* flush every connection with queued bytes, not only the ones the
         poller saw: replies generated this iteration postdate the wait *)
      Hashtbl.iter
        (fun _ c -> if (not c.c_dead) && c.c_out_bytes > 0 then flush_out c)
        t.conns;
      reap t;
      true
    end
  end

let run t = while step ~timeout:0.5 t do () done
