type sink = {
  can_admit : unit -> bool;
  submit : tag:int -> string -> [ `Admitted | `Rejected of string ];
  drain : unit -> (int * string) list;
  pending : unit -> int;
  overlong_reply : unit -> string;
}

type config = {
  max_frame : int;
  max_conns : int;
  write_bound : int;
  inbox_bound : int;
}

let default_config =
  { max_frame = Framing.default_max_frame;
    max_conns = 960;
    write_bound = 256 * 1024;
    inbox_bound = 1024 }

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_framing : Framing.t;
  c_inbox : string Queue.t;     (* parsed frames awaiting submission *)
  c_out : string Queue.t;       (* reply bytes awaiting the socket *)
  mutable c_out_off : int;      (* flushed prefix of the head of c_out *)
  mutable c_out_bytes : int;
  mutable c_inflight : int;     (* frames submitted, reply not yet routed *)
  mutable c_read_eof : bool;
  mutable c_dead : bool;        (* socket error: close asap, drop replies *)
}

type stats = {
  live_conns : int;
  accepted : int;
  frames : int;
  overlong : int;
  dropped_replies : int;
}

type t = {
  config : config;
  listen : Unix.file_descr;
  sink : sink;
  conns : (int, conn) Hashtbl.t;
  chunk : Bytes.t;
  mutable next_id : int;
  mutable rr : int;                 (* round-robin rotation cursor *)
  mutable draining : bool;
  mutable listener_closed : bool;
  mutable stopped : bool;           (* drain complete; loop is done *)
  mutable inboxed : int;            (* global parsed-but-unsubmitted count *)
  mutable accepted : int;
  mutable frames : int;
  mutable overlong : int;
  mutable dropped_replies : int;
}

let create ?(config = default_config) ~listen sink =
  if config.max_conns < 1 then invalid_arg "Netloop.create: max_conns >= 1";
  if config.write_bound < 1 then invalid_arg "Netloop.create: write_bound >= 1";
  if config.inbox_bound < 1 then invalid_arg "Netloop.create: inbox_bound >= 1";
  Unix.set_nonblock listen;
  { config; listen; sink; conns = Hashtbl.create 64;
    chunk = Bytes.create 65536; next_id = 0; rr = 0; draining = false;
    listener_closed = false; stopped = false; inboxed = 0; accepted = 0;
    frames = 0; overlong = 0; dropped_replies = 0 }

let stop t = t.draining <- true
let finished t = t.stopped

let stats t =
  { live_conns = Hashtbl.length t.conns; accepted = t.accepted;
    frames = t.frames; overlong = t.overlong;
    dropped_replies = t.dropped_replies }

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let push_out c s =
  Queue.add s c.c_out;
  Queue.add "\n" c.c_out;
  c.c_out_bytes <- c.c_out_bytes + String.length s + 1

(* Sorted live connections, rotated by the fairness cursor so every
   connection periodically goes first for both reading and submission. *)
let rotated t =
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  let all = List.sort (fun a b -> compare a.c_id b.c_id) all in
  match all with
  | [] -> []
  | _ ->
      (* rotate left by the cursor: [a;b;c;d] at k=1 -> [b;c;d;a] *)
      let k = t.rr mod List.length all in
      let rec drop i xs = if i = 0 then xs else
        match xs with [] -> [] | _ :: r -> drop (i - 1) r in
      let rec take i xs = if i = 0 then [] else
        match xs with [] -> [] | x :: r -> x :: take (i - 1) r in
      drop k all @ take k all

(* --- accepting --- *)

let rec accept_ready t =
  if (not t.draining) && Hashtbl.length t.conns < t.config.max_conns then
    match Unix.accept ~cloexec:true t.listen with
    | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ | Invalid_argument _ -> ());
        let id = t.next_id in
        t.next_id <- id + 1;
        t.accepted <- t.accepted + 1;
        Hashtbl.add t.conns id
          { c_id = id; c_fd = fd;
            c_framing = Framing.create ~max_frame:t.config.max_frame ();
            c_inbox = Queue.create (); c_out = Queue.create ();
            c_out_off = 0; c_out_bytes = 0; c_inflight = 0;
            c_read_eof = false; c_dead = false };
        accept_ready t
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> accept_ready t
    | exception Unix.Unix_error (ECONNABORTED, _, _) -> accept_ready t
    | exception Unix.Unix_error (EBADF, _, _) -> ()

(* --- reading --- *)

(* Pump every frame the machine can deliver right now into the inbox. *)
let pump t c =
  let rec go () =
    match Framing.next c.c_framing with
    | `Frame f ->
        Queue.add f c.c_inbox;
        t.inboxed <- t.inboxed + 1;
        go ()
    | `Overlong ->
        t.overlong <- t.overlong + 1;
        push_out c (t.sink.overlong_reply ());
        go ()
    | `Await | `Eof -> ()
  in
  go ()

let read_ready t c =
  if not (c.c_dead || c.c_read_eof) then begin
    (match Unix.read c.c_fd t.chunk 0 (Bytes.length t.chunk) with
    | 0 ->
        c.c_read_eof <- true;
        Framing.eof c.c_framing
    | n -> Framing.feed c.c_framing t.chunk 0 n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> c.c_dead <- true);
    if not c.c_dead then pump t c
  end

(* --- submission (fair round-robin) --- *)

let submit_frames t =
  if t.inboxed > 0 then begin
    let order = rotated t in
    t.rr <- t.rr + 1;
    let progress = ref true in
    while !progress && t.inboxed > 0 && t.sink.can_admit () do
      progress := false;
      List.iter
        (fun c ->
          if (not c.c_dead)
             && (not (Queue.is_empty c.c_inbox))
             && t.sink.can_admit ()
          then begin
            let frame = Queue.pop c.c_inbox in
            t.inboxed <- t.inboxed - 1;
            (match t.sink.submit ~tag:c.c_id frame with
            | `Admitted ->
                c.c_inflight <- c.c_inflight + 1;
                t.frames <- t.frames + 1
            | `Rejected reply -> push_out c reply);
            progress := true
          end)
        order
    done
  end

(* --- replies --- *)

let route_replies t responses =
  List.iter
    (fun (tag, reply) ->
      match Hashtbl.find_opt t.conns tag with
      | Some c ->
          c.c_inflight <- c.c_inflight - 1;
          if c.c_dead then t.dropped_replies <- t.dropped_replies + 1
          else push_out c reply
      | None -> t.dropped_replies <- t.dropped_replies + 1)
    responses

(* --- writing --- *)

let flush_out c =
  let continue = ref true in
  while !continue && not (Queue.is_empty c.c_out) do
    let head = Queue.peek c.c_out in
    let len = String.length head - c.c_out_off in
    match Unix.write_substring c.c_fd head c.c_out_off len with
    | n ->
        c.c_out_bytes <- c.c_out_bytes - n;
        if n = len then begin
          ignore (Queue.pop c.c_out);
          c.c_out_off <- 0
        end
        else begin
          c.c_out_off <- c.c_out_off + n;
          continue := false
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
        (* EPIPE/ECONNRESET and friends: the peer is gone; close this one
           connection instead of dying *)
        c.c_dead <- true;
        continue := false
  done

(* --- lifecycle --- *)

let reap t =
  let victims =
    Hashtbl.fold
      (fun _ c acc ->
        let finished_naturally =
          c.c_read_eof && Queue.is_empty c.c_inbox && c.c_inflight = 0
          && c.c_out_bytes = 0
        in
        let drained =
          t.draining && Queue.is_empty c.c_inbox && c.c_inflight = 0
          && c.c_out_bytes = 0
        in
        if c.c_dead || finished_naturally || drained then c :: acc else acc)
      t.conns []
  in
  List.iter
    (fun c ->
      t.inboxed <- t.inboxed - Queue.length c.c_inbox;
      Queue.clear c.c_inbox;
      close_fd c.c_fd;
      Hashtbl.remove t.conns c.c_id)
    victims

let readable_conn t c =
  (not c.c_dead) && (not c.c_read_eof) && (not t.draining)
  && c.c_out_bytes <= t.config.write_bound
  && t.inboxed < t.config.inbox_bound

let step ?(timeout = 0.0) t =
  if t.stopped then false
  else begin
    if t.draining && not t.listener_closed then begin
      close_fd t.listen;
      t.listener_closed <- true
    end;
    (* done? every connection drained and the engine queue empty *)
    if t.draining && Hashtbl.length t.conns = 0 && t.inboxed = 0
       && t.sink.pending () = 0
    then begin
      t.stopped <- true;
      false
    end
    else begin
      let readers = ref [] and writers = ref [] in
      if (not t.draining) && Hashtbl.length t.conns < t.config.max_conns then
        readers := [ t.listen ];
      Hashtbl.iter
        (fun _ c ->
          if readable_conn t c then readers := c.c_fd :: !readers;
          if (not c.c_dead) && c.c_out_bytes > 0 then
            writers := c.c_fd :: !writers)
        t.conns;
      let has_work =
        t.inboxed > 0 || t.sink.pending () > 0
        || Hashtbl.fold (fun _ c acc -> acc || c.c_dead) t.conns false
      in
      let tmo = if has_work then 0.0 else timeout in
      let rs, ws, _ =
        if !readers = [] && !writers = [] && tmo = 0.0 then ([], [], [])
        else
          match Unix.select !readers !writers [] tmo with
          | r -> r
          | exception Unix.Unix_error (EINTR, _, _) -> ([], [], [])
      in
      if (not t.listener_closed) && List.memq t.listen rs then accept_ready t;
      (* read in rotated order for fairness; only fds select marked ready *)
      List.iter
        (fun c -> if List.memq c.c_fd rs then read_ready t c)
        (rotated t);
      submit_frames t;
      route_replies t (t.sink.drain ());
      (* flush every connection with queued bytes, not only the ones select
         saw: replies generated this iteration postdate the select call *)
      Hashtbl.iter
        (fun _ c -> if (not c.c_dead) && c.c_out_bytes > 0 then flush_out c)
        t.conns;
      ignore ws;
      reap t;
      true
    end
  end

let run t = while step ~timeout:0.5 t do () done
