(** Pluggable readiness notification for the netd event loop.

    A {!t} tracks a set of file descriptors with per-descriptor read/write
    interest and reports, on {!wait}, which of them are ready — the
    level-triggered contract shared by [select(2)] and default-mode
    [epoll(7)]:

    - a descriptor registered for reading is reported readable whenever a
      read would not block (data buffered, EOF pending, or a listener with
      a connection to accept), every call until the condition is consumed;
    - a descriptor registered for writing is reported writable whenever a
      write would accept at least one byte;
    - a descriptor registered with neither interest is absent from the
      wait set (it stays known to the poller but produces no events);
    - peer hang-ups and socket errors are folded into readiness (the read
      or write that follows observes the EOF/error), never raised here.

    Two backends implement the contract:

    - [Select]: portable, pure OCaml over [Unix.select]. O(registered)
      per wait and bounded by [FD_SETSIZE] (1024 on the usual libcs).
    - [Epoll]: Linux only, via C stubs over [epoll_create1]/[epoll_ctl]/
      [epoll_wait]. O(changes) registration, O(ready) wait, bounded only
      by the process fd rlimit. {!available} reports [false] for it on
      other platforms (the stubs compile everywhere; only the Linux build
      reaches the syscalls), so callers fall back to [Select].

    Pollers are single-Domain values: each event loop owns one. *)

type backend = Select | Epoll

val available : backend -> bool
(** [Select] is always available; [Epoll] only on Linux builds. *)

val choose : [ `Auto | `Select | `Epoll ] -> (backend, string) result
(** Resolve a CLI-level preference: [`Auto] picks [Epoll] when available
    and [Select] otherwise; [`Epoll] on a platform without it is an
    [Error] naming the fallback. *)

val backend_name : backend -> string
(** ["select"] / ["epoll"]. *)

val default_max_conns : backend -> int
(** How many connections a loop on this backend can reasonably carry:
    [FD_SETSIZE] minus headroom for [Select] (960, matching the historic
    netd bound), the [RLIMIT_NOFILE] soft limit minus headroom for
    [Epoll]. Always at least 64. *)

type t

val create : backend -> t
(** Raises [Failure] if the backend is {!available}[ = false]. *)

val backend : t -> backend
val name : t -> string

val set : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register [fd] or update its interest; idempotent. [read:false
    write:false] keeps the descriptor known but eventless (an [Epoll]
    backend deregisters it from the kernel set to avoid spurious
    hangup wakeups; it is re-added on the next interested {!set}). *)

val remove : t -> Unix.file_descr -> unit
(** Forget [fd] entirely. MUST be called before the descriptor is closed
    (a closed fd in a kernel wait set is undefined behaviour under
    [select] and unremovable under [epoll]). Unknown fds are ignored. *)

val wait : t -> timeout:float -> (Unix.file_descr * bool * bool) list
(** Block until at least one registered descriptor is ready or [timeout]
    seconds (>= 0) elapse; return [(fd, readable, writable)] for every
    ready descriptor. [timeout = 0.] polls. An empty interest set returns
    [[]] after at most [timeout]. [EINTR] returns [[]] early. *)

val registered : t -> int
(** Descriptors currently known (including eventless ones). *)

val close : t -> unit
(** Release backend resources (the epoll fd). The poller must not be
    used afterwards; double close is harmless. *)

val rlimit_nofile : unit -> int
(** The [RLIMIT_NOFILE] soft limit (clamped to [2^20]; 1024 when the
    limit cannot be read). Exposed for diagnostics and tests. *)
