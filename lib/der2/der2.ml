(* The second DER decoder. Independence from lib/der is the whole point:
   table-driven header classification instead of bit arithmetic, an explicit
   heap frame stack instead of OCaml recursion, offsets-in-errors instead of
   formatted strings. See der2.mli for the contract both decoders share. *)

type cls = Univ | Appl | Ctx | Priv
type hdr = { h_cls : cls; h_constructed : bool; h_number : int }
type tree = Leaf of hdr * string | Node of hdr * tree list

type error =
  | Truncated of { at : int; what : string }
  | Forbidden of { at : int; what : string }
  | Nesting of { at : int }
  | Trailing of { at : int; extra : int }

let max_depth = 1024

(* All 256 identifier octets, classified once at load time. [None] is the
   0x1F escape to multi-octet tag numbers, which this X.509 subset forbids. *)
let id_table =
  Array.init 256 (fun b ->
      let number = b land 0x1F in
      if number = 0x1F then None
      else
        let h_cls =
          match b lsr 6 with 0 -> Univ | 1 -> Appl | 2 -> Ctx | _ -> Priv
        in
        Some { h_cls; h_constructed = b land 0x20 <> 0; h_number = number })

(* One open constructed value: its header, where its content octets end, and
   the children decoded so far (reversed). *)
type frame = { fr_hdr : hdr; fr_end : int; mutable fr_kids : tree list }

exception Fail of error

(* Read one header (identifier octet + definite length) starting at [pos],
   never looking past [bound] (the innermost enclosing frame's end, or the
   end of input). Returns the header, the content start and the content
   length. *)
let read_header s ~bound pos =
  if pos >= bound then raise (Fail (Truncated { at = pos; what = "identifier octet" }));
  let hdr =
    match id_table.(Char.code s.[pos]) with
    | Some h -> h
    | None ->
        raise (Fail (Forbidden { at = pos; what = "multi-octet tag number" }))
  in
  let lp = pos + 1 in
  if lp >= bound then raise (Fail (Truncated { at = lp; what = "length octet" }));
  let b = Char.code s.[lp] in
  if b < 0x80 then (hdr, lp + 1, b)
  else if b = 0x80 then
    raise (Fail (Forbidden { at = lp; what = "indefinite length" }))
  else begin
    let k = b land 0x7F in
    if k > 4 then
      raise (Fail (Forbidden { at = lp; what = "length wider than 4 octets" }));
    if lp + k >= bound then
      raise (Fail (Truncated { at = lp; what = "long-form length octets" }));
    let v = ref 0 in
    for i = 1 to k do
      v := (!v lsl 8) lor Char.code s.[lp + i]
    done;
    if !v < 0x80 || (k > 1 && !v < 1 lsl ((k - 1) * 8)) then
      raise (Fail (Forbidden { at = lp; what = "non-minimal length" }));
    (hdr, lp + k + 1, !v)
  end

let decode s =
  let limit = String.length s in
  try
    let result = ref None in
    let stack : frame list ref = ref [] in
    let depth = ref 0 in
    let pos = ref 0 in
    (* Attach a completed value either to the enclosing frame or, at the top
       level, as the final result (after the trailing-bytes check). *)
    let attach t after =
      match !stack with
      | fr :: _ -> fr.fr_kids <- t :: fr.fr_kids
      | [] ->
          if after <> limit then
            raise (Fail (Trailing { at = after; extra = limit - after }));
          result := Some t
    in
    while !result = None do
      match !stack with
      | fr :: rest when !pos = fr.fr_end ->
          (* Frame exactly filled by its children: close it. *)
          stack := rest;
          decr depth;
          attach (Node (fr.fr_hdr, List.rev fr.fr_kids)) fr.fr_end
      | frames ->
          let bound =
            match frames with fr :: _ -> fr.fr_end | [] -> limit
          in
          let hdr, cpos, clen = read_header s ~bound !pos in
          if cpos + clen > bound then
            raise (Fail (Truncated { at = cpos; what = "content octets" }));
          if hdr.h_constructed then begin
            if !depth >= max_depth then raise (Fail (Nesting { at = !pos }));
            stack := { fr_hdr = hdr; fr_end = cpos + clen; fr_kids = [] } :: frames;
            incr depth;
            pos := cpos
          end
          else begin
            pos := cpos + clen;
            attach (Leaf (hdr, String.sub s cpos clen)) !pos
          end
    done;
    match !result with Some t -> Ok t | None -> assert false
  with Fail e -> Error e

let error_to_string = function
  | Truncated { at; what } -> Printf.sprintf "offset %d: input ends inside %s" at what
  | Forbidden { at; what } -> Printf.sprintf "offset %d: %s forbidden in DER" at what
  | Nesting { at } ->
      Printf.sprintf "offset %d: nesting deeper than %d constructed levels" at
        max_depth
  | Trailing { at; extra } ->
      Printf.sprintf "offset %d: %d trailing byte(s) after value" at extra

let cls_letter = function Univ -> 'u' | Appl -> 'a' | Ctx -> 'c' | Priv -> 'p'

let rec pp fmt = function
  | Leaf (h, content) ->
      Format.fprintf fmt "%c%d[%d]" (cls_letter h.h_cls) h.h_number
        (String.length content)
  | Node (h, kids) ->
      Format.fprintf fmt "%c%d(" (cls_letter h.h_cls) h.h_number;
      List.iteri
        (fun i k ->
          if i > 0 then Format.fprintf fmt " ";
          pp fmt k)
        kids;
      Format.fprintf fmt ")"
