(** The second, independent DER decoder of the differential robustness
    harness.

    [Chaoschain_der.Der] — the production decoder every verdict rests on — is
    a recursive-descent reader with bit-twiddling header parsing and a
    zero-copy slice variant. This module re-implements the same DER subset
    from the X.690 text alone, on a deliberately different design, so that
    the two disagree only where at least one of them is wrong:

    - {b table-driven} header classification: all 256 identifier octets are
      decoded once into {!id_table} at load time; parsing a header is an
      array read, not bit arithmetic;
    - an {b iterative} value walk over an explicit heap-allocated frame
      stack, where the production decoder recurses on the OCaml stack;
    - a {b typed error taxonomy} ({!error}) carrying byte offsets, where the
      production decoder formats strings.

    The dune stanza gives this library no dependencies at all, so it cannot
    share a line of code with [lib/der] (nor its bugs). Both decoders accept
    exactly the same inputs: one definite-length, minimally-encoded,
    low-tag-number TLV value occupying the whole input, constructed nesting
    bounded by {!max_depth}. The differential fuzzer
    ([Chaoschain_fuzz.Derfuzz]) pins that equivalence under mutation. *)

type cls = Univ | Appl | Ctx | Priv

type hdr = { h_cls : cls; h_constructed : bool; h_number : int }
(** One decoded identifier octet (low tag numbers only). *)

type tree = Leaf of hdr * string | Node of hdr * tree list
(** The decoded TLV tree: primitive content octets at the leaves. *)

(** Why an input was rejected, with the byte offset of the rejection. The
    four constructors are the taxonomy the divergence classifier reports:
    ran out of bytes, a form DER forbids, the anti-bomb depth bound, and
    bytes left over after the value. *)
type error =
  | Truncated of { at : int; what : string }
      (** The input ended inside [what] (header, length octets, content). *)
  | Forbidden of { at : int; what : string }
      (** Well-formed BER that DER (or this X.509 subset) rejects:
          indefinite or non-minimal lengths, multi-octet tag numbers,
          length fields wider than 4 octets. *)
  | Nesting of { at : int }
      (** Constructed nesting deeper than {!max_depth}. *)
  | Trailing of { at : int; extra : int }
      (** The value ended [extra] bytes before the input did. *)

val max_depth : int
(** Same bound as [Chaoschain_der.Der.max_depth] (1024); both decoders must
    reject the same nesting bombs for the accept sets to stay equal. The
    constant is duplicated, not shared — independence beats DRY here. *)

val id_table : hdr option array
(** The 256-entry identifier-octet table; [None] marks the multi-octet
    tag-number escape (low bits [0x1F]), which this subset rejects.
    Exposed for the harness's own sanity tests. *)

val decode : string -> (tree, error) result
(** Decode exactly one value occupying the whole input. Never raises; the
    walk is iterative, so even million-deep nesting bombs cost a heap
    allocation per level, not OCaml stack. *)

val error_to_string : error -> string

val pp : Format.formatter -> tree -> unit
(** Minimal debugging printer (class/number/length skeleton). *)
