open Chaoschain_x509
module Intern = Chaoschain_pki.Intern

let add_u24 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF))

let add_u16 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF))

let read_u24 s off =
  if off + 3 > String.length s then Error "truncated u24"
  else
    Ok ((Char.code s.[off] lsl 16) lor (Char.code s.[off + 1] lsl 8)
        lor Char.code s.[off + 2])

let read_u16 s off =
  if off + 2 > String.length s then Error "truncated u16"
  else Ok ((Char.code s.[off] lsl 8) lor Char.code s.[off + 1])

let ( let* ) = Result.bind

let encode_tls12 certs =
  let body = Buffer.create 1024 in
  List.iter
    (fun cert ->
      let der = Cert.to_der cert in
      add_u24 body (String.length der);
      Buffer.add_string body der)
    certs;
  let msg = Buffer.create (Buffer.length body + 3) in
  add_u24 msg (Buffer.length body);
  Buffer.add_buffer msg body;
  Buffer.contents msg

let decode_tls12 s =
  let* total = read_u24 s 0 in
  if total + 3 <> String.length s then Error "certificate_list length mismatch"
  else begin
    let rec entries acc off =
      if off = String.length s then Ok (List.rev acc)
      else
        let* len = read_u24 s off in
        if off + 3 + len > String.length s then Error "truncated certificate entry"
        else
          (* Interned by window: on a cache hit the entry's DER is never
             copied out of the message. *)
          let* cert = Intern.cert_of_sub s ~off:(off + 3) ~len in
          entries (cert :: acc) (off + 3 + len)
    in
    entries [] 3
  end

let encode_tls13 ?(context = "") certs =
  let body = Buffer.create 1024 in
  List.iter
    (fun cert ->
      let der = Cert.to_der cert in
      add_u24 body (String.length der);
      Buffer.add_string body der;
      add_u16 body 0 (* empty per-entry extensions *))
    certs;
  let msg = Buffer.create (Buffer.length body + 8) in
  Buffer.add_char msg (Char.chr (String.length context));
  Buffer.add_string msg context;
  add_u24 msg (Buffer.length body);
  Buffer.add_buffer msg body;
  Buffer.contents msg

let decode_tls13 s =
  if String.length s < 1 then Error "truncated context length"
  else begin
    let ctx_len = Char.code s.[0] in
    if 1 + ctx_len > String.length s then Error "truncated context"
    else begin
      let context = String.sub s 1 ctx_len in
      let* total = read_u24 s (1 + ctx_len) in
      let base = 1 + ctx_len + 3 in
      if base + total <> String.length s then Error "certificate_list length mismatch"
      else begin
        let rec entries acc off =
          if off = String.length s then Ok (context, List.rev acc)
          else
            let* len = read_u24 s off in
            if off + 3 + len + 2 > String.length s then Error "truncated entry"
            else
              let* cert = Intern.cert_of_sub s ~off:(off + 3) ~len in
              let* ext_len = read_u16 s (off + 3 + len) in
              entries (cert :: acc) (off + 3 + len + 2 + ext_len)
        in
        entries [] base
      end
    end
  end
