open Chaoschain_x509
module Intern = Chaoschain_pki.Intern

type format = Tls12 | Tls13

let format_to_string = function Tls12 -> "1.2" | Tls13 -> "1.3"

let format_of_string s =
  match String.lowercase_ascii s with
  | "1.2" | "tls12" | "tls1.2" -> Some Tls12
  | "1.3" | "tls13" | "tls1.3" -> Some Tls13
  | _ -> None

type entry = { cert : Cert.t; extensions : (int * string) list }

type t = { context : string; entries : entry list; format : format }

let entry ?(extensions = []) cert = { cert; extensions }

let is_classic t = List.for_all (fun e -> e.extensions = []) t.entries

let of_certs ?(context = "") format certs =
  if format = Tls12 && context <> "" then
    invalid_arg "Certmsg.of_certs: TLS 1.2 has no certificate_request_context";
  { context; entries = List.map (fun c -> { cert = c; extensions = [] }) certs;
    format }

let certs t = List.map (fun e -> e.cert) t.entries

let entry_equal a b =
  Cert.equal a.cert b.cert && a.extensions = b.extensions

let equal a b =
  a.format = b.format && a.context = b.context
  && List.length a.entries = List.length b.entries
  && List.for_all2 entry_equal a.entries b.entries

(* --- wire primitives --- *)

let max_u24 = 0xFF_FFFF
let max_u16 = 0xFFFF

let add_u24 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF))

let add_u16 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF))

let read_u24 s off =
  if off + 3 > String.length s then Error "truncated u24"
  else
    Ok ((Char.code s.[off] lsl 16) lor (Char.code s.[off + 1] lsl 8)
        lor Char.code s.[off + 2])

let read_u16 s off =
  if off + 2 > String.length s then Error "truncated u16"
  else Ok ((Char.code s.[off] lsl 8) lor Char.code s.[off + 1])

let ( let* ) = Result.bind

(* --- encoding --- *)

let der_of_entry e =
  let der = Cert.to_der e.cert in
  if String.length der > max_u24 then
    invalid_arg "Certmsg.encode: certificate exceeds 2^24-1 bytes";
  der

(* The per-entry extension block: a flat list of (u16 type, u16 length,
   data) items, framed by the entry's own u16 block length. *)
let extension_block e =
  let b = Buffer.create 32 in
  List.iter
    (fun (typ, data) ->
      if typ < 0 || typ > max_u16 then
        invalid_arg "Certmsg.encode: extension type outside u16";
      if String.length data > max_u16 - 4 then
        invalid_arg "Certmsg.encode: extension data exceeds its u16 frame";
      add_u16 b typ;
      add_u16 b (String.length data);
      Buffer.add_string b data)
    e.extensions;
  if Buffer.length b > max_u16 then
    invalid_arg "Certmsg.encode: extension block exceeds 2^16-1 bytes";
  Buffer.contents b

let encode t =
  match t.format with
  | Tls12 ->
      if not (is_classic t) then
        invalid_arg
          "Certmsg.encode: per-entry extensions need the TLS 1.3 format";
      if t.context <> "" then
        invalid_arg
          "Certmsg.encode: TLS 1.2 has no certificate_request_context";
      let body = Buffer.create 1024 in
      List.iter
        (fun e ->
          let der = der_of_entry e in
          add_u24 body (String.length der);
          Buffer.add_string body der)
        t.entries;
      if Buffer.length body > max_u24 then
        invalid_arg "Certmsg.encode: certificate_list exceeds 2^24-1 bytes";
      let msg = Buffer.create (Buffer.length body + 3) in
      add_u24 msg (Buffer.length body);
      Buffer.add_buffer msg body;
      Buffer.contents msg
  | Tls13 ->
      if String.length t.context > 0xFF then
        invalid_arg "Certmsg.encode: context exceeds 255 bytes";
      let body = Buffer.create 1024 in
      List.iter
        (fun e ->
          let der = der_of_entry e in
          let exts = extension_block e in
          add_u24 body (String.length der);
          Buffer.add_string body der;
          add_u16 body (String.length exts);
          Buffer.add_string body exts)
        t.entries;
      if Buffer.length body > max_u24 then
        invalid_arg "Certmsg.encode: certificate_list exceeds 2^24-1 bytes";
      let msg = Buffer.create (Buffer.length body + 4 + String.length t.context) in
      Buffer.add_char msg (Char.chr (String.length t.context));
      Buffer.add_string msg t.context;
      add_u24 msg (Buffer.length body);
      Buffer.add_buffer msg body;
      Buffer.contents msg

(* --- decoding --- *)

(* Parse one entry's extension block: items must tile the block exactly;
   an item length that overruns the block is an error, never a silent
   truncation. *)
let read_extensions s ~off ~len =
  let stop = off + len in
  let rec items acc off =
    if off = stop then Ok (List.rev acc)
    else if off + 4 > stop then Error "truncated extension item header"
    else
      let* typ = read_u16 s off in
      let* elen = read_u16 s (off + 2) in
      if off + 4 + elen > stop then
        Error "extension length overruns its block"
      else
        items ((typ, String.sub s (off + 4) elen) :: acc) (off + 4 + elen)
  in
  items [] off

let decode_tls12_ir s =
  let* total = read_u24 s 0 in
  if total + 3 <> String.length s then Error "certificate_list length mismatch"
  else begin
    let rec entries acc off =
      if off = String.length s then
        Ok { context = ""; entries = List.rev acc; format = Tls12 }
      else
        let* len = read_u24 s off in
        if off + 3 + len > String.length s then Error "truncated certificate entry"
        else
          (* Interned by window: on a cache hit the entry's DER is never
             copied out of the message. *)
          let* cert = Intern.cert_of_sub s ~off:(off + 3) ~len in
          entries ({ cert; extensions = [] } :: acc) (off + 3 + len)
    in
    entries [] 3
  end

let decode_tls13_ir s =
  if String.length s < 1 then Error "truncated context length"
  else begin
    let ctx_len = Char.code s.[0] in
    if 1 + ctx_len > String.length s then Error "truncated context"
    else begin
      let context = String.sub s 1 ctx_len in
      let* total = read_u24 s (1 + ctx_len) in
      let base = 1 + ctx_len + 3 in
      if base + total <> String.length s then
        Error "certificate_list length mismatch"
      else begin
        let rec entries acc off =
          if off = String.length s then
            Ok { context; entries = List.rev acc; format = Tls13 }
          else
            let* len = read_u24 s off in
            if off + 3 + len + 2 > String.length s then Error "truncated entry"
            else
              let* cert = Intern.cert_of_sub s ~off:(off + 3) ~len in
              let* ext_len = read_u16 s (off + 3 + len) in
              let ext_off = off + 3 + len + 2 in
              if ext_off + ext_len > String.length s then
                Error "extension block overruns the message"
              else
                let* extensions = read_extensions s ~off:ext_off ~len:ext_len in
                entries ({ cert; extensions } :: acc) (ext_off + ext_len)
        in
        entries [] base
      end
    end
  end

let decode format s =
  match format with Tls12 -> decode_tls12_ir s | Tls13 -> decode_tls13_ir s

let decode_auto s =
  match decode_tls12_ir s with
  | Ok t -> Ok t
  | Error e12 -> (
      match decode_tls13_ir s with
      | Ok t -> Ok t
      | Error e13 ->
          Error
            (Printf.sprintf
               "not a TLS 1.2 certificate message (%s) nor TLS 1.3 (%s)" e12
               e13))

(* --- legacy single-format API --- *)

let encode_tls12 cs = encode (of_certs Tls12 cs)
let decode_tls12 s = Result.map certs (decode_tls12_ir s)
let encode_tls13 ?context cs = encode (of_certs ?context Tls13 cs)
let decode_tls13 s = Result.map (fun t -> (t.context, certs t)) (decode_tls13_ir s)
