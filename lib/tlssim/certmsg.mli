(** The TLS Certificate handshake message, unified over both wire formats.

    TLS 1.2 (RFC 5246 section 7.4.2) frames a bare 24-bit-length vector of
    24-bit-length certificate entries. TLS 1.3 (RFC 8446 section 4.4.2)
    prefixes a certificate_request_context and attaches a 16-bit-length
    extension block to every entry. Both encodings are views of one typed
    message {!t}: a list of {!entry} values (certificate plus per-entry
    extensions) with a request context and the format it travels in. This is
    the byte string a scanner actually receives; the simulated ZGrab parses
    served chains out of it, chaind accepts either framing in requests, and
    the QCheck suite pins the mitls-style codec lemmas (round-trip,
    injectivity, cross-format non-confusability) as executable properties. *)

open Chaoschain_x509

type format = Tls12 | Tls13

val format_to_string : format -> string
(** ["1.2"] / ["1.3"]. *)

val format_of_string : string -> format option
(** Accepts ["1.2"], ["tls12"], ["tls1.2"] (any case), and the 1.3
    spellings. *)

type entry = {
  cert : Cert.t;
  extensions : (int * string) list;
      (** per-entry extension list as (type, opaque data) pairs; always []
          on the TLS 1.2 wire *)
}

type t = {
  context : string;  (** certificate_request_context; "" on the 1.2 wire *)
  entries : entry list;
  format : format;   (** the wire framing this message (en/de)codes with *)
}

val entry : ?extensions:(int * string) list -> Cert.t -> entry

val of_certs : ?context:string -> format -> Cert.t list -> t
(** Extension-free entries. Raises [Invalid_argument] for a non-empty
    [context] with [Tls12] (the 1.2 wire has no context field, so encoding
    one could not round-trip). *)

val certs : t -> Cert.t list
(** The certificate list, extensions dropped (mitls' [chain_down]). *)

val is_classic : t -> bool
(** Every entry's extension list is empty (mitls' [is_classic_chain]) — the
    precondition for re-encoding a 1.3 message in the 1.2 format without
    losing information. *)

val entry_equal : entry -> entry -> bool
val equal : t -> t -> bool

(** {1 Codec}

    [encode]/[decode] dispatch on {!format}. Encoding is total for messages
    built by {!of_certs}; it raises [Invalid_argument] on structure the
    selected wire format cannot carry (an entry over [2^24-1] bytes, an
    extension block over [2^16-1] bytes, a context over 255 bytes, or
    extensions / a context under [Tls12]). Decoding is strict: every length
    field is bounds-checked, per-entry extension blocks are parsed item by
    item (never silently discarded), and trailing garbage after the outer
    vector is an error. *)

val encode : t -> string

val decode : format -> string -> (t, string) result
(** [decode fmt s] parses [s] under the [fmt] framing; the result's
    [format] field records [fmt]. *)

val decode_auto : string -> (t, string) result
(** Try [Tls12] first, then [Tls13]; the error names both failures. For
    realistically sized chains the two framings are non-confusable, so the
    order only matters for pathological inputs. *)

(** {1 Legacy single-format API}

    Thin wrappers over the typed codec; kept for callers that only deal in
    bare certificate lists. *)

val encode_tls12 : Cert.t list -> string
val decode_tls12 : string -> (Cert.t list, string) result
val encode_tls13 : ?context:string -> Cert.t list -> string
val decode_tls13 : string -> (string * Cert.t list, string) result
(** Returns the request context and the certificate list (extensions, if
    any, are surfaced by {!decode} instead). *)
