open Chaoschain_x509
open Chaoschain_core

type version = Certmsg.format = Tls12 | Tls13

let version_to_string = function Tls12 -> "TLS 1.2" | Tls13 -> "TLS 1.3"

type server = {
  server_name : string;
  chain : Cert.t list;
  supports : version list;
}

let server ~name ~chain = { server_name = name; chain; supports = [ Tls12; Tls13 ] }

type user_outcome =
  | Connection_established
  | Connection_refused of string
  | Warning_page of string

let outcome_to_string = function
  | Connection_established -> "connection established"
  | Connection_refused msg -> "connection refused: " ^ msg
  | Warning_page msg -> "warning page: " ^ msg

type transcript = {
  version : version;
  format : Certmsg.format;
  certificate_msg_bytes : int;
  client_outcome : user_outcome;
  engine : Engine.outcome option;
}

let cache_for (env : Difftest.env) (client : Clients.t) =
  if client.Clients.uses_os_intermediate_store then env.Difftest.os_store
  else if client.Clients.uses_intermediate_cache then env.Difftest.firefox_cache
  else []

let format_of_client_format = function
  | Clients.Tls12 -> Tls12
  | Clients.Tls13 -> Tls13

let client_supports (client : Clients.t) v =
  List.exists
    (fun f -> format_of_client_format f = v)
    client.Clients.supported_formats

(* A handshake that fails before the Certificate message: no wire bytes, no
   engine run — every client kind surfaces it as a refused connection (a
   protocol_version alert, not a certificate warning). *)
let refused ~version msg =
  { version;
    format = version;
    certificate_msg_bytes = 0;
    client_outcome = Connection_refused msg;
    engine = None }

(* Version (and with it, Certificate-message format) negotiation: an
   explicitly requested version must be offered by the server and parseable
   by the client; otherwise the highest framing both sides implement wins. *)
let negotiate ~client ~requested srv =
  match requested with
  | Some v ->
      if not (List.mem v srv.supports) then
        Error (v, Printf.sprintf "server does not offer %s" (version_to_string v))
      else if not (client_supports client v) then
        Error
          ( v,
            Printf.sprintf "client does not implement the %s Certificate framing"
              (version_to_string v) )
      else Ok v
  | None -> (
      let common =
        List.filter
          (fun v -> List.mem v srv.supports && client_supports client v)
          [ Tls13; Tls12 ]
      in
      match common with
      | v :: _ -> Ok v
      | [] -> Error (Tls13, "no protocol version in common"))

let connect env ~client ?version srv =
  match negotiate ~client ~requested:version srv with
  | Error (v, msg) -> refused ~version:v msg
  | Ok version ->
      (* Serialize and re-parse the Certificate message: the client consumes
         the wire bytes, not the server's in-memory list. The negotiated
         version selects the wire framing end to end. *)
      let wire = Certmsg.encode (Certmsg.of_certs version srv.chain) in
      let certs =
        match Certmsg.decode version wire with
        | Ok msg -> Certmsg.certs msg
        | Error e ->
            invalid_arg ("Handshake: self-encoded message failed to parse: " ^ e)
      in
      let store = env.Difftest.store_of client.Clients.root_program in
      let ctx =
        Clients.context client ~store ~aia:env.Difftest.aia
          ~cache:(cache_for env client) ~now:env.Difftest.now
      in
      let engine = Engine.run ctx ~host:(Some srv.server_name) certs in
      let client_outcome =
        match engine.Engine.result with
        | Ok _ -> Connection_established
        | Error e -> (
            let msg = Clients.render_error client e in
            match client.Clients.kind with
            | Clients.Library -> Connection_refused msg
            | Clients.Browser -> Warning_page msg)
      in
      { version;
        format = version;
        certificate_msg_bytes = String.length wire;
        client_outcome;
        engine = Some engine }

let availability_impact env srv =
  List.map
    (fun client -> (client, (connect env ~client srv).client_outcome))
    Clients.all
