(** A miniature TLS handshake between a configured server and one of the
    modelled clients, surfacing the availability outcomes the paper
    discusses: libraries abort the connection, browsers interpose a warning
    page, and users may fall back to insecure HTTP.

    The handshake negotiates the protocol version — and with it the
    Certificate-message wire framing — from the server's [supports] list and
    the client's {!Clients.t.supported_formats}; a version either side
    cannot speak yields a refused transcript with no Certificate message at
    all. *)

open Chaoschain_x509
open Chaoschain_core

type version = Certmsg.format = Tls12 | Tls13
(** Protocol versions are identified with their Certificate-message
    framings; the constructors are interchangeable with
    {!Certmsg.format}. *)

val version_to_string : version -> string
(** ["TLS 1.2"] / ["TLS 1.3"]. *)

type server = {
  server_name : string;            (** SNI hostname served *)
  chain : Cert.t list;             (** the certificate list it will send *)
  supports : version list;
}

val server : name:string -> chain:Cert.t list -> server
(** A server speaking both protocol versions. *)

type user_outcome =
  | Connection_established          (** TLS succeeds *)
  | Connection_refused of string    (** library clients: handshake aborted *)
  | Warning_page of string          (** browser clients: interstitial shown *)

val outcome_to_string : user_outcome -> string

type transcript = {
  version : version;                (** the negotiated protocol version *)
  format : Certmsg.format;
      (** the Certificate-message framing actually used on the wire (always
          the negotiated version's framing) *)
  certificate_msg_bytes : int;
      (** size of the Certificate message; 0 when the handshake was refused
          before one was sent *)
  client_outcome : user_outcome;
  engine : Engine.outcome option;
      (** [None] when version negotiation failed: no chain was processed *)
}

val connect :
  Difftest.env -> client:Clients.t -> ?version:version -> server -> transcript
(** Run ClientHello → ServerHello → Certificate → client-side chain
    processing. The Certificate message is actually encoded and re-parsed
    through {!Certmsg} in the negotiated format, so the client sees exactly
    the wire bytes. Omitting [version] negotiates the highest version both
    sides support; requesting one the server does not offer, or whose
    framing the client does not implement, returns a
    [Connection_refused] transcript (engine [None]) instead of raising. *)

val availability_impact : Difftest.env -> server -> (Clients.t * user_outcome) list
(** The paper's service-availability view: every client's user outcome. *)
