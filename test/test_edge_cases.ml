(* Edge cases across the public APIs: degenerate inputs, bounds, and
   invariants not covered by the scenario-driven suites. *)

open Chaoschain_x509
open Chaoschain_pki
open Chaoschain_core
module Prng = Chaoschain_crypto.Prng

let now = Vtime.make ~y:2024 ~m:6 ~d:1 ()

let mk label =
  let rng = Prng.of_label ("edge:" ^ label) in
  let root =
    Issue.self_signed rng
      (Issue.spec ~is_ca:true ~not_before:(Vtime.add_years now (-10))
         ~not_after:(Vtime.add_years now 10) (Dn.make ~o:"E" ~cn:("Root " ^ label) ()))
  in
  let inter = Issue.issue rng ~parent:root (Issue.spec ~is_ca:true (Dn.make ~cn:("I " ^ label) ())) in
  let leaf =
    Issue.issue rng ~parent:inter
      (Issue.spec ~san:[ Extension.Dns "edge.example" ] (Dn.make ~cn:"edge.example" ()))
  in
  (rng, root, inter, leaf)

let engine_empty_chain () =
  let _, root, _, _ = mk "empty" in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  let ctx = Path_builder.context ~now ~params:Build_params.default store in
  match (Engine.run ctx ~host:None []).Engine.result with
  | Error (Engine.Build Path_builder.Empty_chain) -> ()
  | _ -> Alcotest.fail "expected Empty_chain"

let engine_root_only_served () =
  (* A server serving only its trusted root: the "leaf" is a trusted anchor.
     Chain construction terminates immediately and validation accepts the
     anchor (hostname checking against the CA name then fails). *)
  let _, root, _, _ = mk "root-only" in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  let params = { Build_params.default with Build_params.allow_self_signed_leaf = true } in
  let ctx = Path_builder.context ~now ~params store in
  match (Engine.run ctx ~host:(Some "edge.example") [ root.Issue.cert ]).Engine.result with
  | Error (Engine.Validate (Path_validate.Hostname_mismatch _)) -> ()
  | Ok _ -> Alcotest.fail "CA name should not match the host"
  | Error e -> Alcotest.fail (Engine.error_to_string e)

let engine_max_attempts_bound () =
  (* Many same-subject, same-key variants, all failing validation (expired):
     the engine must stop at max_attempts. *)
  let rng, root, inter, _ = mk "attempts" in
  let leaf =
    Issue.issue rng ~parent:inter
      (Issue.spec ~faults:[ Issue.Expired ] ~san:[ Extension.Dns "edge.example" ]
         (Dn.make ~cn:"edge.example" ()))
  in
  let variants =
    List.init 6 (fun i ->
        Issue.cross_sign rng ~parent:root ~existing:inter
          ~not_before:(Vtime.add_years now (-1 - i))
          ~not_after:(Vtime.add_years now (9 - i))
          ())
  in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  let params = { Build_params.default with Build_params.max_attempts = 3 } in
  let ctx = Path_builder.context ~now ~params store in
  let chain = (leaf.Issue.cert :: inter.Issue.cert :: variants) @ [ root.Issue.cert ] in
  let o = Engine.run ctx ~host:(Some "edge.example") chain in
  Alcotest.(check bool) "rejected" false (Engine.accepted o);
  Alcotest.(check bool) "attempts capped at 3" true (o.Engine.attempts <= 3)

let builder_context_defaults () =
  let _, root, inter, leaf = mk "ctx" in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  let ctx = Path_builder.context ~params:Build_params.default store in
  Alcotest.(check bool) "default now validates a current chain" true
    (Engine.accepted
       (Engine.run ctx ~host:(Some "edge.example")
          [ leaf.Issue.cert; inter.Issue.cert ]))

let capability_tiny_length_fixture () =
  let fx = Capability.length_fixture 1 in
  Alcotest.(check int) "3 certificates" 3 (List.length fx.Capability.served);
  Alcotest.(check bool) "reference accepts" true
    (Engine.accepted (Capability.run_client Clients.reference fx))

let vtime_order_helpers () =
  let a = Vtime.make ~y:2020 ~m:1 ~d:1 () and b = Vtime.make ~y:2021 ~m:1 ~d:1 () in
  Alcotest.(check bool) "min" true (Vtime.equal (Vtime.min a b) a);
  Alcotest.(check bool) "max" true (Vtime.equal (Vtime.max a b) b);
  Alcotest.(check bool) "lt" true Vtime.(a < b);
  Alcotest.(check bool) "le refl" true Vtime.(a <= a)

let dn_compare_total () =
  let a = Dn.make ~cn:"A" () and b = Dn.make ~cn:"B" () and e = Dn.empty in
  Alcotest.(check bool) "irreflexive difference" true (Dn.compare a b <> 0);
  Alcotest.(check int) "reflexive" 0 (Dn.compare a a);
  Alcotest.(check bool) "antisymmetric" true
    (Dn.compare a b = -Dn.compare b a);
  Alcotest.(check bool) "empty is empty" true (Dn.is_empty e);
  Alcotest.(check bool) "non-empty" false (Dn.is_empty a)

let leaf_names_of () =
  let _, _, _, leaf = mk "names" in
  let names = Leaf_check.names_of leaf.Issue.cert in
  Alcotest.(check bool) "CN and SAN collected" true
    (List.length names = 2 && List.for_all (String.equal "edge.example") names)

let universe_mint_unique () =
  let u = Universe.create ~seed:3L () in
  let a = Universe.mint_leaf u Universe.Lets_encrypt ~domain:"a.example" () in
  let b = Universe.mint_leaf u Universe.Lets_encrypt ~domain:"a.example" () in
  Alcotest.(check bool) "same domain, distinct certificates" false
    (Cert.equal a.Issue.cert b.Issue.cert)

let handshake_version_guard () =
  let _, root, inter, leaf = mk "hs" in
  let srv =
    { Chaoschain_tlssim.Handshake.server_name = "edge.example";
      chain = [ leaf.Issue.cert; inter.Issue.cert ];
      supports = [ Chaoschain_tlssim.Handshake.Tls13 ] }
  in
  let env =
    { Difftest.store_of = (fun _ -> Root_store.make "s" [ root.Issue.cert ]);
      aia = Aia_repo.create (); firefox_cache = []; os_store = []; now }
  in
  (* Requesting a version outside the server's [supports] is no longer a
     programming error: the handshake is refused before any Certificate
     message is sent. *)
  let t =
    Chaoschain_tlssim.Handshake.connect env
      ~client:(Clients.by_id Clients.Chrome)
      ~version:Chaoschain_tlssim.Handshake.Tls12 srv
  in
  (match t.Chaoschain_tlssim.Handshake.client_outcome with
  | Chaoschain_tlssim.Handshake.Connection_refused _ -> ()
  | o ->
      Alcotest.fail
        ("expected refusal, got "
        ^ Chaoschain_tlssim.Handshake.outcome_to_string o));
  Alcotest.(check int) "no certificate message" 0
    t.Chaoschain_tlssim.Handshake.certificate_msg_bytes;
  Alcotest.(check bool) "no engine run" true
    (t.Chaoschain_tlssim.Handshake.engine = None)

let duplicate_elimination_in_builder () =
  (* A chain with the same intermediate five times: the used-set prevents the
     builder from looping or double-counting. *)
  let _, root, inter, leaf = mk "dups" in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  let chain = leaf.Issue.cert :: List.init 5 (fun _ -> inter.Issue.cert) in
  let ctx = Path_builder.context ~now ~params:Build_params.default store in
  let o = Engine.run ctx ~host:(Some "edge.example") chain in
  Alcotest.(check bool) "accepted" true (Engine.accepted o);
  match o.Engine.result with
  | Ok path -> Alcotest.(check int) "deduplicated path" 3 (List.length path)
  | Error _ -> Alcotest.fail "unexpected"

let akid_by_name_is_absent_for_kid () =
  let rng, root, _, _ = mk "akidname" in
  let inter =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~faults:[ Issue.Akid_by_name ] (Dn.make ~cn:"AN" ()))
  in
  (* An AKID carrying issuer-name/serial but no keyid counts as absent in the
     KID comparison. *)
  Alcotest.(check string) "absent" "absent"
    (Relation.kid_status_to_string
       (Relation.kid_status ~issuer:root.Issue.cert ~child:inter.Issue.cert));
  match Cert.authority_key_id inter.Issue.cert with
  | Some { Extension.akid_key_id = None; akid_serial = Some _; _ } -> ()
  | _ -> Alcotest.fail "expected name+serial AKID"

let suite =
  [ Alcotest.test_case "engine empty chain" `Quick engine_empty_chain;
    Alcotest.test_case "root-only served" `Quick engine_root_only_served;
    Alcotest.test_case "max attempts bound" `Quick engine_max_attempts_bound;
    Alcotest.test_case "context defaults" `Quick builder_context_defaults;
    Alcotest.test_case "tiny length fixture" `Quick capability_tiny_length_fixture;
    Alcotest.test_case "vtime order helpers" `Quick vtime_order_helpers;
    Alcotest.test_case "dn compare total" `Quick dn_compare_total;
    Alcotest.test_case "leaf names_of" `Quick leaf_names_of;
    Alcotest.test_case "universe mint unique" `Quick universe_mint_unique;
    Alcotest.test_case "handshake version guard" `Quick handshake_version_guard;
    Alcotest.test_case "duplicates deduplicated" `Quick duplicate_elimination_in_builder;
    Alcotest.test_case "akid-by-name counts as absent" `Quick akid_by_name_is_absent_for_kid ]
