open Chaoschain_x509
open Chaoschain_pki
open Chaoschain_core
open Chaoschain_tlssim

let lab = lazy (Universe.create ~seed:11L ())

let sample_chain n =
  let u = Lazy.force lab in
  let h = Universe.hierarchy u Universe.Digicert in
  let leaf = Universe.mint_leaf u Universe.Digicert ~domain:"tls.example" () in
  let base = [ leaf.Issue.cert; h.Universe.issuing.Issue.cert ] in
  let rec pad k acc = if k = 0 then acc else pad (k - 1) (acc @ [ h.Universe.issuing.Issue.cert ]) in
  pad (max 0 (n - 2)) base

let certmsg_tls12_roundtrip () =
  let chain = sample_chain 3 in
  match Certmsg.decode_tls12 (Certmsg.encode_tls12 chain) with
  | Ok chain' ->
      Alcotest.(check int) "count" 3 (List.length chain');
      List.iter2 (fun a b -> Alcotest.(check bool) "identical" true (Cert.equal a b)) chain chain'
  | Error e -> Alcotest.fail e

let certmsg_tls13_roundtrip () =
  let chain = sample_chain 2 in
  match Certmsg.decode_tls13 (Certmsg.encode_tls13 ~context:"ctx!" chain) with
  | Ok (ctx, chain') ->
      Alcotest.(check string) "context" "ctx!" ctx;
      Alcotest.(check int) "count" 2 (List.length chain')
  | Error e -> Alcotest.fail e

let certmsg_empty_list () =
  (match Certmsg.decode_tls12 (Certmsg.encode_tls12 []) with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty list must round-trip (1.2)");
  (* Typed API, both framings: a zero-entry message is legal wire. *)
  List.iter
    (fun fmt ->
      let msg = Certmsg.of_certs fmt [] in
      match Certmsg.decode fmt (Certmsg.encode msg) with
      | Ok msg' ->
          Alcotest.(check bool) "zero entries round-trip" true
            (Certmsg.equal msg msg')
      | Error e -> Alcotest.fail e)
    [ Certmsg.Tls12; Certmsg.Tls13 ]

let certmsg_tls13_extensions_surfaced () =
  (* Non-empty per-entry extension blocks must come back as data, not be
     skipped. *)
  let chain = sample_chain 2 in
  let entries =
    List.mapi
      (fun i c ->
        Certmsg.entry ~extensions:[ (5 + i, "status" ^ string_of_int i); (0x12, "") ] c)
      chain
  in
  let msg = { Certmsg.context = "ctx"; entries; format = Certmsg.Tls13 } in
  match Certmsg.decode Certmsg.Tls13 (Certmsg.encode msg) with
  | Ok msg' ->
      Alcotest.(check bool) "extensions survive the wire" true
        (Certmsg.equal msg msg');
      Alcotest.(check bool) "not classic" false (Certmsg.is_classic msg')
  | Error e -> Alcotest.fail e

let certmsg_tls13_malformed_extensions () =
  let chain = sample_chain 1 in
  let wire =
    Certmsg.encode (Certmsg.of_certs Certmsg.Tls13 chain)
  in
  (* The message ends with the single entry's 16-bit extension-block length
     (0x0000). Claiming bytes past the end of the message must be an Error,
     never a silent truncation. *)
  let n = String.length wire in
  let overrun = Bytes.of_string wire in
  Bytes.set overrun (n - 1) '\x05';
  Alcotest.(check bool) "extension block overrun rejected" true
    (Result.is_error (Certmsg.decode Certmsg.Tls13 (Bytes.to_string overrun)));
  (* An extension item whose own length field overruns its block. *)
  let with_ext =
    Certmsg.encode
      { Certmsg.context = "";
        entries =
          [ Certmsg.entry ~extensions:[ (1, "") ] (List.hd chain) ];
        format = Certmsg.Tls13 }
  in
  let m = String.length with_ext in
  (* ... block is [0004 | type=0001 len=0000]; bump the item length. *)
  let bad_item = Bytes.of_string with_ext in
  Bytes.set bad_item (m - 1) '\x09';
  Alcotest.(check bool) "extension item overrun rejected" true
    (Result.is_error (Certmsg.decode Certmsg.Tls13 (Bytes.to_string bad_item)))

let certmsg_encode_guards () =
  let chain = sample_chain 1 in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "1.2 context rejected" true
    (raises (fun () -> Certmsg.of_certs ~context:"x" Certmsg.Tls12 chain));
  Alcotest.(check bool) "1.2 extensions rejected" true
    (raises (fun () ->
         Certmsg.encode
           { Certmsg.context = "";
             entries = [ Certmsg.entry ~extensions:[ (1, "d") ] (List.hd chain) ];
             format = Certmsg.Tls12 }));
  Alcotest.(check bool) "oversized context rejected" true
    (raises (fun () ->
         Certmsg.encode
           (Certmsg.of_certs ~context:(String.make 256 'c') Certmsg.Tls13 chain)));
  Alcotest.(check bool) "oversized extension block rejected" true
    (raises (fun () ->
         Certmsg.encode
           { Certmsg.context = "";
             entries =
               [ Certmsg.entry ~extensions:[ (1, String.make 0x1_0000 'x') ]
                   (List.hd chain) ];
             format = Certmsg.Tls13 }))

let certmsg_u24_boundary () =
  (* Maximum-size 24-bit length claims: a 2^24-1-byte outer vector is walked
     without crashing (the garbage entry fails DER parsing), and length
     fields that claim more than the message holds are errors. *)
  let full = "\xff\xff\xff" ^ String.make 0xFF_FFFF 'A' in
  Alcotest.(check bool) "16MB outer vector handled" true
    (Result.is_error (Certmsg.decode Certmsg.Tls12 full));
  let claims_more = "\xff\xff\xff" ^ String.make 1024 'A' in
  Alcotest.(check bool) "outer overrun rejected" true
    (Result.is_error (Certmsg.decode Certmsg.Tls12 claims_more));
  let entry_overrun = "\x00\x00\x06\xff\xff\xff\x41\x41\x41" in
  Alcotest.(check bool) "entry overrun rejected" true
    (Result.is_error (Certmsg.decode Certmsg.Tls12 entry_overrun));
  (* Same claims under the 1.3 framing (context prefix first). *)
  Alcotest.(check bool) "1.3 outer overrun rejected" true
    (Result.is_error (Certmsg.decode Certmsg.Tls13 ("\x00" ^ claims_more)))

let certmsg_trailing_garbage () =
  List.iter
    (fun fmt ->
      let wire = Certmsg.encode (Certmsg.of_certs fmt (sample_chain 2)) in
      Alcotest.(check bool) "trailing garbage rejected" true
        (Result.is_error (Certmsg.decode fmt (wire ^ "\x00"))))
    [ Certmsg.Tls12; Certmsg.Tls13 ]

let certmsg_fuzz_seeds () =
  (* The committed corpus of mangled messages: every seed must decode to Ok
     or Error under both framings — never raise. *)
  let path =
    List.find Sys.file_exists
      [ "golden/certmsg_fuzz.seeds"; "test/golden/certmsg_fuzz.seeds" ]
  in
  let seeds =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  Alcotest.(check bool) "seed corpus non-trivial" true (List.length seeds >= 20);
  List.iter
    (fun line ->
      let raw = Chaoschain_crypto.Hex.decode_exn line in
      List.iter
        (fun fmt ->
          match Certmsg.decode fmt raw with
          | Ok _ | Error _ -> ()
          | exception e ->
              Alcotest.fail
                (Printf.sprintf "seed %s raised %s" line (Printexc.to_string e)))
        [ Certmsg.Tls12; Certmsg.Tls13 ];
      match Certmsg.decode_auto raw with
      | Ok _ | Error _ -> ()
      | exception e ->
          Alcotest.fail
            (Printf.sprintf "seed %s (auto) raised %s" line
               (Printexc.to_string e)))
    seeds

let certmsg_errors () =
  let good = Certmsg.encode_tls12 (sample_chain 2) in
  let truncated = String.sub good 0 (String.length good - 5) in
  Alcotest.(check bool) "truncated rejected" true
    (Result.is_error (Certmsg.decode_tls12 truncated));
  Alcotest.(check bool) "garbage appended rejected" true
    (Result.is_error (Certmsg.decode_tls12 (good ^ "xx")));
  Alcotest.(check bool) "empty input rejected" true
    (Result.is_error (Certmsg.decode_tls12 ""))

let env () =
  let u = Lazy.force lab in
  { Difftest.store_of = (fun p -> Universe.store u p);
    aia = Universe.aia u;
    firefox_cache = [];
    os_store = [];
    now = Universe.now u }

let handshake_outcomes () =
  let chain = sample_chain 2 in
  let srv = Handshake.server ~name:"tls.example" ~chain in
  let e = env () in
  let t = Handshake.connect e ~client:(Clients.by_id Clients.Chrome) srv in
  Alcotest.(check bool) "chrome connects" true
    (t.Handshake.client_outcome = Handshake.Connection_established);
  Alcotest.(check bool) "message non-empty" true (t.Handshake.certificate_msg_bytes > 100);
  (* A broken chain: browsers warn, libraries refuse. *)
  let broken = [ List.hd chain ] in
  let bad_srv = Handshake.server ~name:"tls.example" ~chain:broken in
  (match (Handshake.connect e ~client:(Clients.by_id Clients.Openssl) bad_srv).Handshake.client_outcome with
  | Handshake.Connection_refused _ -> ()
  | _ -> Alcotest.fail "library should refuse");
  match (Handshake.connect e ~client:(Clients.by_id Clients.Firefox) bad_srv).Handshake.client_outcome with
  | Handshake.Warning_page _ -> ()
  | _ -> Alcotest.fail "browser should warn"

let handshake_both_versions_agree () =
  let chain = sample_chain 2 in
  let srv = Handshake.server ~name:"tls.example" ~chain in
  let e = env () in
  let t12 = Handshake.connect e ~client:(Clients.by_id Clients.Safari) ~version:Handshake.Tls12 srv in
  let t13 = Handshake.connect e ~client:(Clients.by_id Clients.Safari) ~version:Handshake.Tls13 srv in
  Alcotest.(check bool) "same verdict across versions" true
    (t12.Handshake.client_outcome = t13.Handshake.client_outcome)

let availability_impact_shape () =
  let srv = Handshake.server ~name:"tls.example" ~chain:(sample_chain 2) in
  Alcotest.(check int) "eight clients" 8
    (List.length (Handshake.availability_impact (env ()) srv))

let expect_refused name (t : Handshake.transcript) =
  (match t.Handshake.client_outcome with
  | Handshake.Connection_refused _ -> ()
  | o -> Alcotest.fail (name ^ ": expected refusal, got " ^ Handshake.outcome_to_string o));
  Alcotest.(check int) (name ^ ": no certificate message") 0
    t.Handshake.certificate_msg_bytes;
  Alcotest.(check bool) (name ^ ": no engine run") true (t.Handshake.engine = None)

let handshake_refusals () =
  let chain = sample_chain 2 in
  let e = env () in
  (* Server pinned to 1.3: an explicit 1.2 request is refused pre-Certificate,
     for libraries and browsers alike (protocol alert, not a cert warning). *)
  let srv13 =
    { (Handshake.server ~name:"tls.example" ~chain) with
      Handshake.supports = [ Handshake.Tls13 ] }
  in
  expect_refused "library, server-excluded version"
    (Handshake.connect e ~client:(Clients.by_id Clients.Openssl)
       ~version:Handshake.Tls12 srv13);
  expect_refused "browser, server-excluded version"
    (Handshake.connect e ~client:(Clients.by_id Clients.Chrome)
       ~version:Handshake.Tls12 srv13);
  (* A legacy client profile that only implements the 1.2 framing: an
     explicit 1.3 request is refused, and auto-negotiation against the
     1.3-only server finds no version in common. *)
  let legacy =
    { (Clients.by_id Clients.Openssl) with
      Clients.supported_formats = [ Clients.Tls12 ] }
  in
  let srv = Handshake.server ~name:"tls.example" ~chain in
  expect_refused "client missing 1.3 framing"
    (Handshake.connect e ~client:legacy ~version:Handshake.Tls13 srv);
  expect_refused "no version in common"
    (Handshake.connect e ~client:legacy srv13);
  (* Negotiation still lands the legacy client on 1.2 against a dual server,
     and prefers 1.3 for a full client. *)
  let t = Handshake.connect e ~client:legacy srv in
  Alcotest.(check bool) "legacy negotiates 1.2" true
    (t.Handshake.version = Handshake.Tls12
    && t.Handshake.format = Certmsg.Tls12
    && t.Handshake.engine <> None);
  let t13 = Handshake.connect e ~client:(Clients.by_id Clients.Openssl) srv in
  Alcotest.(check bool) "full client negotiates 1.3" true
    (t13.Handshake.version = Handshake.Tls13
    && t13.Handshake.format = Certmsg.Tls13)

let qcheck_certmsg =
  QCheck.Test.make ~name:"certificate message roundtrip at any width" ~count:15
    QCheck.(int_range 1 8)
    (fun n ->
      let chain = sample_chain n in
      match Certmsg.decode_tls12 (Certmsg.encode_tls12 chain) with
      | Ok chain' -> List.length chain' = List.length chain
      | Error _ -> false)

(* The mitls codec lemmas, pinned as executable properties. *)

let ext_gen =
  (* per-entry extension lists: small, arbitrary 16-bit types, short opaque
     payloads (the codec is agnostic to extension semantics) *)
  QCheck.(
    list_of_size Gen.(0 -- 3)
      (pair (int_range 0 0xFFFF) (string_of_size Gen.(0 -- 8))))

let qcheck_ir_roundtrip =
  QCheck.Test.make
    ~name:"typed round-trip in both formats (decode (encode m) = m)" ~count:30
    QCheck.(triple (int_range 1 5) ext_gen bool)
    (fun (n, exts, use13) ->
      let chain = sample_chain n in
      let msg =
        if use13 then
          { Certmsg.context = "rt";
            entries = List.map (Certmsg.entry ~extensions:exts) chain;
            format = Certmsg.Tls13 }
        else Certmsg.of_certs Certmsg.Tls12 chain
      in
      match Certmsg.decode msg.Certmsg.format (Certmsg.encode msg) with
      | Ok msg' -> Certmsg.equal msg msg'
      | Error _ -> false)

let qcheck_injective =
  QCheck.Test.make
    ~name:"encoding injective per format (m <> m' => bytes differ)" ~count:20
    QCheck.(triple (int_range 1 5) (int_range 1 5) bool)
    (fun (n, m, use13) ->
      let fmt = if use13 then Certmsg.Tls13 else Certmsg.Tls12 in
      let a = Certmsg.of_certs fmt (sample_chain n)
      and b = Certmsg.of_certs fmt (sample_chain m) in
      Certmsg.equal a b || Certmsg.encode a <> Certmsg.encode b)

let qcheck_context_injective =
  QCheck.Test.make
    ~name:"1.3 context participates in injectivity" ~count:15
    QCheck.(
      pair (string_of_size Gen.(0 -- 8)) (string_of_size Gen.(0 -- 8)))
    (fun (c1, c2) ->
      let chain = sample_chain 1 in
      let enc c = Certmsg.encode (Certmsg.of_certs ~context:c Certmsg.Tls13 chain) in
      c1 = c2 || enc c1 <> enc c2)

let qcheck_non_confusable =
  (* For realistic message sizes the two framings cannot be mistaken for
     each other: a 1.2 encoding always fails the 1.3 decoder and vice
     versa. This is what lets chaind auto-detect the framing safely. *)
  QCheck.Test.make
    ~name:"cross-format decode always fails (non-confusability)" ~count:15
    QCheck.(int_range 1 6)
    (fun n ->
      let chain = sample_chain n in
      let w12 = Certmsg.encode (Certmsg.of_certs Certmsg.Tls12 chain)
      and w13 = Certmsg.encode (Certmsg.of_certs Certmsg.Tls13 chain) in
      Result.is_error (Certmsg.decode Certmsg.Tls13 w12)
      && Result.is_error (Certmsg.decode Certmsg.Tls12 w13)
      && (match Certmsg.decode_auto w12 with
         | Ok m -> m.Certmsg.format = Certmsg.Tls12
         | Error _ -> false)
      && (match Certmsg.decode_auto w13 with
         | Ok m -> m.Certmsg.format = Certmsg.Tls13
         | Error _ -> false))

let suite =
  [ Alcotest.test_case "tls12 roundtrip" `Quick certmsg_tls12_roundtrip;
    Alcotest.test_case "tls13 roundtrip" `Quick certmsg_tls13_roundtrip;
    Alcotest.test_case "empty list" `Quick certmsg_empty_list;
    Alcotest.test_case "tls13 extensions surfaced" `Quick
      certmsg_tls13_extensions_surfaced;
    Alcotest.test_case "tls13 malformed extensions" `Quick
      certmsg_tls13_malformed_extensions;
    Alcotest.test_case "encode guards" `Quick certmsg_encode_guards;
    Alcotest.test_case "u24 boundaries" `Quick certmsg_u24_boundary;
    Alcotest.test_case "trailing garbage" `Quick certmsg_trailing_garbage;
    Alcotest.test_case "fuzz seed corpus" `Quick certmsg_fuzz_seeds;
    Alcotest.test_case "wire errors" `Quick certmsg_errors;
    Alcotest.test_case "handshake outcomes" `Quick handshake_outcomes;
    Alcotest.test_case "versions agree" `Quick handshake_both_versions_agree;
    Alcotest.test_case "availability impact" `Quick availability_impact_shape;
    Alcotest.test_case "negotiation refusals" `Quick handshake_refusals;
    QCheck_alcotest.to_alcotest qcheck_certmsg;
    QCheck_alcotest.to_alcotest qcheck_ir_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_injective;
    QCheck_alcotest.to_alcotest qcheck_context_injective;
    QCheck_alcotest.to_alcotest qcheck_non_confusable ]
