(* The differential DER harness: lib/der2 against lib/der, the mutation
   engine, the oracle's classification lattice, campaign determinism, and
   the checked-in seed corpus. *)

module Der = Chaoschain_der.Der
module Der2 = Chaoschain_der2.Der2
module Mutate = Chaoschain_fuzz.Mutate
module Oracle = Chaoschain_fuzz.Oracle
module Derfuzz = Chaoschain_fuzz.Derfuzz
module Prng = Chaoschain_crypto.Prng
module Pipeline = Chaoschain_measurement.Pipeline

let random_bytes =
  QCheck.make
    QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (0 -- 80))

(* --- the two decoders agree --- *)

let qcheck_der2_accepts_encodings =
  QCheck.Test.make ~name:"der2 agrees with der on random encodings" ~count:300
    (QCheck.make Test_der.gen_tree) (fun tree ->
      let bytes = Der.encode tree in
      match (Der.decode bytes, Der2.decode bytes) with
      | Ok t, Ok t2 -> Oracle.agree t t2
      | _ -> false)

let qcheck_accept_sets_equal_on_mangled =
  (* Single-byte corruptions and truncations of valid encodings: whatever
     happens, the outcome must stay in the two agreement classes — the
     core accept-set-equality property the whole harness pins. *)
  QCheck.Test.make ~name:"no divergence on mangled encodings" ~count:500
    QCheck.(pair (QCheck.make Test_der.gen_tree) (pair small_nat small_nat))
    (fun (tree, (pos, byte)) ->
      let bytes = Der.encode tree in
      let n = String.length bytes in
      let mangled =
        if n = 0 then ""
        else begin
          let b = Bytes.of_string bytes in
          Bytes.set b (pos mod n) (Char.chr (byte land 0xFF));
          Bytes.to_string b
        end
      in
      let truncated = String.sub bytes 0 (if n = 0 then 0 else pos mod n) in
      List.for_all
        (fun s -> not (Oracle.is_divergence (fst (Oracle.classify s))))
        [ mangled; truncated ])

let qcheck_no_exceptions_random_bytes =
  (* Satellite pin: neither decoder (nor the production slice reader) may
     raise on arbitrary bytes — every failure is a typed [Error _]. *)
  QCheck.Test.make ~name:"decoders never raise on random bytes" ~count:1000
    random_bytes (fun s ->
      let ok1 =
        match Der.decode s with Ok _ | Error _ -> true | exception _ -> false
      in
      let ok2 =
        match Der.decode_slice (Der.slice_of_string s) with
        | Ok _ | Error _ -> true
        | exception _ -> false
      in
      let ok3 =
        match Der2.decode s with Ok _ | Error _ -> true | exception _ -> false
      in
      ok1 && ok2 && ok3)

let nesting_bomb_boundary () =
  (* [Mutate.Nest_bomb depth] wraps a NULL in [depth] SEQUENCEs, so the
     innermost constructed value sits under depth-1 enclosing levels: 1024
     wrappers are exactly at the bound, 1025 are past it. Both decoders
     must land on the same side, as Error, not Stack_overflow. *)
  let bomb depth = Mutate.apply "" (Mutate.Nest_bomb { depth }) in
  let at_bound = bomb Der.max_depth in
  (match (Der.decode at_bound, Der2.decode at_bound) with
  | Ok t, Ok t2 ->
      Alcotest.(check bool) "trees at bound agree" true (Oracle.agree t t2)
  | _ -> Alcotest.fail "depth-1024 bomb must be accepted by both decoders");
  let past_bound = bomb (Der.max_depth + 1) in
  (match Der.decode past_bound with
  | Error e ->
      Alcotest.(check bool) "der names the nesting bound" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "der accepted a depth-1025 bomb");
  (match Der2.decode past_bound with
  | Error (Der2.Nesting _) -> ()
  | Error e ->
      Alcotest.fail
        (Printf.sprintf "der2 rejected the bomb for the wrong reason: %s"
           (Der2.error_to_string e))
  | Ok _ -> Alcotest.fail "der2 accepted a depth-1025 bomb");
  (* A huge bomb stays a classified error on both sides (iterative walk /
     bounded recursion, no Stack_overflow). *)
  let huge = bomb 200_000 in
  Alcotest.(check bool) "huge bomb is agree-reject" true
    (fst (Oracle.classify huge) = Oracle.Agree_reject);
  Alcotest.(check int) "max_depth constants agree" Der.max_depth Der2.max_depth

let der2_error_taxonomy () =
  let check name want s =
    match Der2.decode s with
    | Error e -> Alcotest.(check bool) name true (want e)
    | Ok _ -> Alcotest.fail (name ^ ": unexpectedly accepted")
  in
  check "empty input truncated" (function Der2.Truncated _ -> true | _ -> false) "";
  check "cut content truncated"
    (function Der2.Truncated _ -> true | _ -> false)
    "\x04\x05ab";
  check "indefinite length forbidden"
    (function Der2.Forbidden _ -> true | _ -> false)
    "\x30\x80\x00\x00";
  check "non-minimal length forbidden"
    (function Der2.Forbidden _ -> true | _ -> false)
    "\x04\x81\x01a";
  check "high tag number forbidden"
    (function Der2.Forbidden _ -> true | _ -> false)
    "\x1f\x81\x00";
  check "trailing bytes rejected"
    (function Der2.Trailing { extra; _ } -> extra = 1 | _ -> false)
    "\x05\x00x";
  match Der2.decode "\x05\x00" with
  | Ok (Der2.Leaf (h, "")) ->
      Alcotest.(check bool) "NULL decodes" true
        (h.Der2.h_cls = Der2.Univ && h.Der2.h_number = 5
        && not h.Der2.h_constructed)
  | _ -> Alcotest.fail "NULL must decode as an empty universal-5 leaf"

(* --- mutation engine --- *)

let sample_encoding () =
  Der.encode
    (Der.sequence
       [ Der.integer_of_int 42;
         Der.sequence [ Der.utf8_string "mutate-me"; Der.null ];
         Der.octet_string "payload" ])

let mutate_units () =
  let s = sample_encoding () in
  let sites = Mutate.header_sites s in
  Alcotest.(check bool) "outermost header is a site" true (List.mem 0 sites);
  Alcotest.(check bool) "nested headers are sites" true (List.length sites >= 5);
  Alcotest.(check string) "truncate keeps a prefix" (String.sub s 0 3)
    (Mutate.apply s (Mutate.Truncate { keep = 3 }));
  Alcotest.(check string) "extend appends" (s ^ "zz")
    (Mutate.apply s (Mutate.Extend { tail = "zz" }));
  let flipped = Mutate.apply s (Mutate.Bit_flip { pos = 0; bit = 5 }) in
  Alcotest.(check bool) "bit-flip changes one byte" true
    (flipped <> s && String.length flipped = String.length s);
  Alcotest.(check string) "bit-flip is an involution" s
    (Mutate.apply flipped (Mutate.Bit_flip { pos = 0; bit = 5 }));
  let lied = Mutate.apply s (Mutate.Length_lie { site = 0; value = 0x03 }) in
  Alcotest.(check int) "length-lie rewrites the length octet" 0x03
    (Char.code lied.[1]);
  let smuggled = Mutate.apply s (Mutate.Tag_smuggle { site = 0; value = 0x04 }) in
  Alcotest.(check int) "tag-smuggle rewrites the identifier octet" 0x04
    (Char.code smuggled.[0]);
  Alcotest.(check string) "out-of-range edits are no-ops" s
    (Mutate.apply s (Mutate.Byte_set { pos = 10_000; value = 1 }));
  Alcotest.(check string) "describe is stable" "length-lie@4=0x83"
    (Mutate.describe (Mutate.Length_lie { site = 4; value = 0x83 }));
  (* Site discovery on garbage still aims somewhere, and is bounded even on
     deeply nested input. *)
  Alcotest.(check (list int)) "garbage falls back to offset 0" [ 0 ]
    (Mutate.header_sites "\xff\xff\xff");
  let bomb = Mutate.apply "" (Mutate.Nest_bomb { depth = 100_000 }) in
  Alcotest.(check bool) "site walk bounded on bombs" true
    (List.length (Mutate.header_sites bomb) <= 4096)

let qcheck_mutants_always_classify =
  (* Whatever the mutation engine produces from whatever tree, the oracle
     returns a classification — never an exception. *)
  QCheck.Test.make ~name:"every mutant classifies" ~count:300
    QCheck.(pair (QCheck.make Test_der.gen_tree) small_nat)
    (fun (tree, salt) ->
      let g = Prng.of_label (Printf.sprintf "test-derfuzz/mutant/%d" salt) in
      let rec go bytes n =
        if n = 0 then true
        else begin
          let m = Mutate.random g bytes in
          let bytes = Mutate.apply bytes m in
          let outcome, _detail = Oracle.classify bytes in
          (not (Oracle.is_divergence outcome)) && go bytes (n - 1)
        end
      in
      go (Der.encode tree) 4)

(* --- oracle --- *)

let oracle_units () =
  Alcotest.(check string) "accept key" "agree-accept"
    (Oracle.key Oracle.Agree_accept);
  Alcotest.(check string) "split keys" "split-der,split-der2"
    (Oracle.key (Oracle.Split Oracle.First)
    ^ ","
    ^ Oracle.key (Oracle.Split Oracle.Second));
  Alcotest.(check int) "seven classes" 7 (List.length Oracle.all_keys);
  Alcotest.(check bool) "agreement is not divergence" false
    (Oracle.is_divergence Oracle.Agree_reject);
  Alcotest.(check bool) "crash is divergence" true
    (Oracle.is_divergence (Oracle.Crash Oracle.Second));
  let outcome, detail = Oracle.classify (sample_encoding ()) in
  Alcotest.(check bool) "valid encoding agree-accepts" true
    (outcome = Oracle.Agree_accept && detail = "");
  let outcome, detail = Oracle.classify "" in
  Alcotest.(check bool) "empty input agree-rejects with both details" true
    (outcome = Oracle.Agree_reject
    && String.length detail > 0
    && String.length detail > String.length "lib/der: ")

(* --- campaigns --- *)

let corpus () =
  (* A deterministic corpus of valid encodings, via the same generator the
     der tests use. *)
  let g = Prng.of_label "test-derfuzz/corpus" in
  let rand = Random.State.make [| Int64.to_int (Prng.next_int64 g) |] in
  Array.init 24 (fun _ -> Der.encode (Test_der.gen_tree rand))

let campaign_shape () =
  let corpus = corpus () in
  Alcotest.(check (list (pair int string))) "corpus passes the precondition"
    [] (Derfuzz.check_corpus corpus);
  let r = Derfuzz.run ~seed:11 ~iters:150 corpus in
  Alcotest.(check int) "counts cover every iteration" 150
    (List.fold_left (fun a (_, n) -> a + n) 0 r.Derfuzz.r_counts);
  Alcotest.(check int) "no divergences on this seed" 0
    (Derfuzz.divergence_count r);
  Alcotest.(check (list string)) "count keys in lattice order" Oracle.all_keys
    (List.map fst r.Derfuzz.r_counts);
  Alcotest.(check bool) "exemplars recorded" true (r.Derfuzz.r_exemplars <> []);
  (* The report IR renders under every renderer. *)
  let ir = Derfuzz.report_ir r in
  Alcotest.(check bool) "text renders" true
    (String.length (Chaoschain_report.Report.to_text ir) > 0);
  ignore (Chaoschain_report.Report.to_json ir);
  (* Every seed line replays to its recorded class. *)
  List.iter
    (fun line ->
      match Derfuzz.parse_seed_line line with
      | None -> Alcotest.fail ("unparseable seed line: " ^ line)
      | Some (k, bytes) ->
          Alcotest.(check string) "fresh seed line replays" k
            (Oracle.key (fst (Oracle.classify bytes))))
    (Derfuzz.seed_lines r)

let campaign_determinism () =
  (* Same seed, different runners: byte-identical reports (the --jobs
     determinism contract), including the JSON rendering. *)
  let corpus = corpus () in
  let sequential = Derfuzz.run ~seed:77 ~iters:120 corpus in
  let pool = Pipeline.Pool.create ~jobs:3 in
  let parallel =
    Fun.protect
      ~finally:(fun () -> Pipeline.Pool.shutdown pool)
      (fun () ->
        Derfuzz.run ~par:(Pipeline.Pool.run pool) ~seed:77 ~iters:120 corpus)
  in
  Alcotest.(check bool) "reports equal across runners" true
    (sequential = parallel);
  let json r =
    Chaoschain_report.Report.Json.pretty
      (Chaoschain_report.Report.to_json (Derfuzz.report_ir r))
  in
  Alcotest.(check string) "json byte-identical across runners"
    (json sequential) (json parallel);
  let other = Derfuzz.run ~seed:78 ~iters:120 corpus in
  Alcotest.(check bool) "different seed, different campaign" true
    (sequential <> other)

let golden_seeds_replay () =
  (* The checked-in corpus grown from campaign findings: every line must
     replay through both decoders to exactly its recorded classification. *)
  let path =
    List.find Sys.file_exists
      [ "golden/der_fuzz.seeds"; "test/golden/der_fuzz.seeds" ]
  in
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
  in
  let seeds = List.filter_map Derfuzz.parse_seed_line lines in
  Alcotest.(check bool) "seed corpus non-trivial" true (List.length seeds >= 8);
  Alcotest.(check bool) "both agreement classes present" true
    (List.exists (fun (k, _) -> k = "agree-accept") seeds
    && List.exists (fun (k, _) -> k = "agree-reject") seeds);
  List.iter
    (fun (k, bytes) ->
      let outcome, detail = Oracle.classify bytes in
      Alcotest.(check string)
        (Printf.sprintf "seed (%d bytes) classification" (String.length bytes))
        k
        (Oracle.key outcome);
      ignore detail)
    seeds

let suite =
  [ QCheck_alcotest.to_alcotest qcheck_der2_accepts_encodings;
    QCheck_alcotest.to_alcotest qcheck_accept_sets_equal_on_mangled;
    QCheck_alcotest.to_alcotest qcheck_no_exceptions_random_bytes;
    Alcotest.test_case "nesting bomb boundary" `Quick nesting_bomb_boundary;
    Alcotest.test_case "der2 error taxonomy" `Quick der2_error_taxonomy;
    Alcotest.test_case "mutation engine units" `Quick mutate_units;
    QCheck_alcotest.to_alcotest qcheck_mutants_always_classify;
    Alcotest.test_case "oracle units" `Quick oracle_units;
    Alcotest.test_case "campaign shape" `Quick campaign_shape;
    Alcotest.test_case "campaign determinism" `Quick campaign_determinism;
    Alcotest.test_case "golden seeds replay" `Quick golden_seeds_replay ]
