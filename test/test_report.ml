(* The report IR: cell formatting, renderers, flatten/diff, paper checks and
   the deterministic JSON pretty-printer. *)

module R = Chaoschain_report.Report
module Json = Chaoschain_report.Json

(* --- cell rendering --- *)

let cell_formatting () =
  Alcotest.(check string) "count" "16,952" (R.Cell.render (R.Cell.Count 16_952));
  Alcotest.(check string) "int" "16952" (R.Cell.render (R.Cell.Int 16_952));
  Alcotest.(check string) "percent" "92.5%"
    (R.Cell.render (R.Cell.Percent { num = 838_354; den = 906_336 }));
  Alcotest.(check string) "tiny share" "~0%"
    (R.Cell.render (R.Cell.Percent { num = 1; den = 906_336 }));
  Alcotest.(check string) "zero numerator keeps 0.0%" "0.0%"
    (R.Cell.render (R.Cell.Percent { num = 0; den = 906_336 }));
  Alcotest.(check string) "zero denominator is n/a, not nan%" "n/a"
    (R.Cell.render (R.Cell.Percent { num = 5; den = 0 }));
  Alcotest.(check string) "count_pct with zero denominator" "5 (n/a)"
    (R.Cell.render (R.Cell.Count_pct { num = 5; den = 0 }));
  Alcotest.(check string) "float" "98.8%"
    (R.Cell.render (R.Cell.Float { value = 98.83; digits = 1; suffix = "%" }));
  Alcotest.(check string) "verdict yes" "COMPLIANT"
    (R.Cell.render (R.Cell.Verdict { v = true; yes = "COMPLIANT"; no = "broken" }))

let same_text_rendering () =
  Alcotest.(check string) "match renders plainly" "yes"
    (R.cell_text (R.text "yes" |> R.same_text ~paper:"yes"));
  Alcotest.(check string) "mismatch is called out inline" "no (paper: yes)"
    (R.cell_text (R.text "no" |> R.same_text ~paper:"yes"))

let span_widths () =
  let line = R.line [ R.S "|"; R.Cw (6, R.count 42); R.S "|"; R.Cw (-6, R.text "ab"); R.S "|" ] in
  let t = { R.id = "t"; title = "t"; blocks = [ line ] } in
  Alcotest.(check string) "printf-style %6s / %-6s" "|    42|ab    |\n"
    (R.to_text t)

(* --- a tiny report used by the structural tests --- *)

let sample ~dup_count =
  let t = R.Table.create ~title:"T: demo" ~header:[ "Type"; "measured"; "paper" ] in
  R.Table.row t
    [ R.text "Duplicate Certificates";
      R.count_pct ~num:dup_count ~den:100 |> R.near ~paper:"35.2%" ~pct:35.2 ~tol:10.0;
      R.text "5,974 (35.2%)" ];
  R.Table.sep t;
  R.Table.row t [ R.text "Total"; R.count 100; R.text "16,952" ];
  {
    R.id = "demo";
    title = "Demo";
    blocks =
      [ R.Table.block t;
        R.line [ R.S "all reversed: "; R.C (R.int 7); R.S " (paper: 8,370)" ];
        R.raw "narrative\n" ];
  }

let flatten_paths () =
  let paths = List.map fst (R.flatten (sample ~dup_count:33)) in
  Alcotest.(check (list string)) "stable paths"
    [ "demo/Duplicate Certificates/Type";
      "demo/Duplicate Certificates/measured";
      "demo/Duplicate Certificates/paper";
      "demo/Total/Type"; "demo/Total/measured"; "demo/Total/paper";
      "demo/all reversed:"; "demo/raw2" ]
    paths

let diff_exact () =
  Alcotest.(check int) "identical reports: empty diff" 0
    (List.length (R.diff [ sample ~dup_count:33 ] [ sample ~dup_count:33 ]));
  match R.diff [ sample ~dup_count:33 ] [ sample ~dup_count:34 ] with
  | [ d ] ->
      Alcotest.(check string) "only the changed cell"
        "demo/Duplicate Certificates/measured" d.R.d_path;
      Alcotest.(check (option string)) "a side" (Some "33 (33.0%)") d.R.d_a;
      Alcotest.(check (option string)) "b side" (Some "34 (34.0%)") d.R.d_b
  | deltas ->
      Alcotest.failf "expected exactly one delta, got %d" (List.length deltas)

let check_paper_tolerances () =
  Alcotest.(check int) "33% is within 35.2 +- 10" 0
    (List.length (R.check_paper [ sample ~dup_count:33 ]));
  (match R.check_paper [ sample ~dup_count:90 ] with
  | [ d ] ->
      Alcotest.(check string) "names the cell"
        "demo/Duplicate Certificates/measured" d.R.dev_path
  | devs -> Alcotest.failf "expected one deviation, got %d" (List.length devs));
  Alcotest.(check int) "one checked cell" 1
    (R.checked_cell_count [ sample ~dup_count:33 ])

let inject_deviation_flips () =
  let r = [ sample ~dup_count:33 ] in
  Alcotest.(check int) "clean before" 0 (List.length (R.check_paper r));
  Alcotest.(check int) "one deviation after" 1
    (List.length (R.check_paper (R.inject_deviation r)))

(* --- markdown --- *)

let markdown_shape () =
  let md = R.to_markdown (sample ~dup_count:33) in
  let contains needle =
    let n = String.length needle and h = String.length md in
    let rec go i = i + n <= h && (String.sub md i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "section heading" true (contains "## Demo");
  Alcotest.(check bool) "table title bold" true (contains "**T: demo**");
  Alcotest.(check bool) "pipe row" true
    (contains "| Duplicate Certificates | 33 (33.0%) | 5,974 (35.2%) |");
  Alcotest.(check bool) "lines fall into a code fence" true
    (contains "```\nall reversed: 7 (paper: 8,370)\nnarrative\n```");
  Alcotest.(check string) "pipes escaped" "a\\|b" (R.md_escape "a|b")

(* --- deterministic JSON --- *)

let pretty_sorts_keys () =
  let v = Json.Obj [ ("b", Json.Int 2); ("a", Json.List [ Json.Obj [ ("z", Json.Null); ("y", Json.Bool true) ] ]) ] in
  Alcotest.(check string) "recursively sorted, 2-space indent"
    "{\n  \"a\": [\n    {\n      \"y\": true,\n      \"z\": null\n    }\n  ],\n  \"b\": 2\n}"
    (Json.pretty v)

let pretty_roundtrip =
  (* Round-trip: parse (pretty v) back and compare against the key-sorted
     original. [pretty] must never change the value, only the layout. *)
  let rec gen_value depth =
    let open QCheck.Gen in
    if depth = 0 then
      oneof
        [ return Json.Null; map (fun b -> Json.Bool b) bool;
          map (fun n -> Json.Int n) (int_range (-1_000_000) 1_000_000);
          map (fun f -> Json.Float f) (float_bound_inclusive 1000.0);
          map (fun s -> Json.String s) (string_size ~gen:printable (0 -- 8)) ]
    else
      frequency
        [ (3, gen_value 0);
          ( 1,
            map (fun l -> Json.List l) (list_size (0 -- 4) (gen_value (depth - 1))) );
          ( 1,
            map
              (fun kvs ->
                (* distinct keys: duplicate keys have no canonical order *)
                let seen = Hashtbl.create 8 in
                Json.Obj
                  (List.filter
                     (fun (k, _) ->
                       if Hashtbl.mem seen k then false
                       else (Hashtbl.add seen k (); true))
                     kvs))
              (list_size (0 -- 4)
                 (pair (string_size ~gen:printable (1 -- 6)) (gen_value (depth - 1)))) ) ]
  in
  QCheck.Test.make ~name:"Json.pretty round-trips through Json.of_string"
    ~count:200
    (QCheck.make (gen_value 3))
    (fun v ->
      match Json.of_string (Json.pretty v) with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
      | Ok parsed -> Json.to_string parsed = Json.to_string (Json.sort_keys v))

let pretty_deterministic () =
  (* Same value, different construction order: identical bytes. *)
  let a = Json.Obj [ ("x", Json.Int 1); ("y", Json.Int 2) ] in
  let b = Json.Obj [ ("y", Json.Int 2); ("x", Json.Int 1) ] in
  Alcotest.(check string) "key order canonicalised" (Json.pretty a) (Json.pretty b)

(* --- report JSON shape --- *)

let report_json_shape () =
  let j = R.to_json (sample ~dup_count:33) in
  let s = Json.to_string j in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "id" true (contains "\"id\":\"demo\"");
  Alcotest.(check bool) "typed cell" true (contains "\"type\":\"count_pct\"");
  Alcotest.(check bool) "paper tolerance" true (contains "\"tolerance_pp\":10");
  Alcotest.(check bool) "rendered text rides along" true
    (contains "\"text\":\"33 (33.0%)\"")

let suite =
  [ Alcotest.test_case "cell formatting" `Quick cell_formatting;
    Alcotest.test_case "same-text rendering" `Quick same_text_rendering;
    Alcotest.test_case "span widths" `Quick span_widths;
    Alcotest.test_case "flatten paths" `Quick flatten_paths;
    Alcotest.test_case "diff exactness" `Quick diff_exact;
    Alcotest.test_case "check-paper tolerances" `Quick check_paper_tolerances;
    Alcotest.test_case "inject-deviation flips check" `Quick inject_deviation_flips;
    Alcotest.test_case "markdown shape" `Quick markdown_shape;
    Alcotest.test_case "json pretty sorts keys" `Quick pretty_sorts_keys;
    QCheck_alcotest.to_alcotest pretty_roundtrip;
    Alcotest.test_case "json pretty deterministic" `Quick pretty_deterministic;
    Alcotest.test_case "report json shape" `Quick report_json_shape ]
