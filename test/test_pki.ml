open Chaoschain_x509
open Chaoschain_pki
module Prng = Chaoschain_crypto.Prng

let mk_root label =
  Issue.self_signed (Prng.of_label label)
    (Issue.spec ~is_ca:true (Dn.make ~o:"Store" ~cn:label ()))

let root_store_lookups () =
  let a = mk_root "store-a" and b = mk_root "store-b" in
  let store = Root_store.make "test" [ a.Issue.cert; b.Issue.cert ] in
  Alcotest.(check int) "size" 2 (Root_store.size store);
  Alcotest.(check bool) "mem a" true (Root_store.mem store a.Issue.cert);
  Alcotest.(check bool) "not mem other" false
    (Root_store.mem store (mk_root "store-c").Issue.cert);
  (match Cert.subject_key_id a.Issue.cert with
  | Some skid ->
      Alcotest.(check bool) "skid lookup" true (Root_store.mem_skid store skid);
      Alcotest.(check int) "find by skid" 1 (List.length (Root_store.find_by_skid store skid))
  | None -> Alcotest.fail "root must carry SKID");
  Alcotest.(check bool) "skid miss" false (Root_store.mem_skid store (String.make 20 'z'));
  let leaf =
    Issue.issue_cert (Prng.of_label "store-leaf") ~parent:a
      (Issue.spec (Dn.make ~cn:"s.example" ()))
  in
  Alcotest.(check int) "issuer candidates" 1
    (List.length (Root_store.issuer_candidates store leaf))

let root_store_union_dedup () =
  let a = mk_root "union-a" and b = mk_root "union-b" in
  let s1 = Root_store.make "s1" [ a.Issue.cert; b.Issue.cert ] in
  let s2 = Root_store.make "s2" [ b.Issue.cert ] in
  let u = Root_store.union "u" [ s1; s2 ] in
  Alcotest.(check int) "deduplicated" 2 (Root_store.size u)

let aia_repo_behaviour () =
  let repo = Aia_repo.create () in
  let root = mk_root "aia-root" in
  Aia_repo.publish repo ~uri:"http://x/root.crt" root.Issue.cert;
  (match Aia_repo.fetch repo "http://x/root.crt" with
  | Aia_repo.Served c -> Alcotest.(check bool) "served" true (Cert.equal c root.Issue.cert)
  | _ -> Alcotest.fail "expected Served");
  Alcotest.(check bool) "unknown is 404" true
    (Aia_repo.fetch repo "http://x/none.crt" = Aia_repo.Http_not_found);
  Aia_repo.inject_failure repo ~uri:"http://x/hang.crt" `Timeout;
  Alcotest.(check bool) "timeout" true (Aia_repo.fetch repo "http://x/hang.crt" = Aia_repo.Timeout);
  Alcotest.(check int) "fetch counter" 3 (Aia_repo.fetch_count repo);
  Alcotest.(check int) "per-uri counter" 1 (Aia_repo.fetch_count_for repo "http://x/hang.crt");
  Aia_repo.reset_counters repo;
  Alcotest.(check int) "reset" 0 (Aia_repo.fetch_count repo)

let aia_chase_success_and_failures () =
  let rng = Prng.of_label "chase" in
  let repo = Aia_repo.create () in
  let root = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"CR" ())) in
  let i2 =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~aia_ca_issuers:[ "http://c/root.crt" ] (Dn.make ~cn:"CI2" ()))
  in
  let i1 =
    Issue.issue rng ~parent:i2
      (Issue.spec ~is_ca:true ~aia_ca_issuers:[ "http://c/i2.crt" ] (Dn.make ~cn:"CI1" ()))
  in
  let leaf =
    Issue.issue rng ~parent:i1
      (Issue.spec ~aia_ca_issuers:[ "http://c/i1.crt" ] (Dn.make ~cn:"c.example" ()))
  in
  Aia_repo.publish repo ~uri:"http://c/root.crt" root.Issue.cert;
  Aia_repo.publish repo ~uri:"http://c/i2.crt" i2.Issue.cert;
  Aia_repo.publish repo ~uri:"http://c/i1.crt" i1.Issue.cert;
  (match Aia_repo.chase repo leaf.Issue.cert with
  | Ok downloaded -> Alcotest.(check int) "three hops" 3 (List.length downloaded)
  | Error e -> Alcotest.fail e);
  (* The CAcert self-reference: a URI serving the certificate itself. *)
  let selfref =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~aia_ca_issuers:[ "http://c/self.crt" ] (Dn.make ~cn:"Self" ()))
  in
  Aia_repo.publish repo ~uri:"http://c/self.crt" selfref.Issue.cert;
  (match Aia_repo.chase repo selfref.Issue.cert with
  | Error msg ->
      Alcotest.(check bool) "self-reference detected" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "self-referencing chase must fail");
  (* Missing AIA. *)
  let bare = Issue.issue rng ~parent:root (Issue.spec ~is_ca:true (Dn.make ~cn:"Bare" ())) in
  Alcotest.(check bool) "no caIssuers" true (Result.is_error (Aia_repo.chase repo bare.Issue.cert));
  (* A URI serving a non-issuer. *)
  let stranger = mk_root "chase-stranger" in
  let wrong =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~aia_ca_issuers:[ "http://c/wrong.crt" ] (Dn.make ~cn:"W" ()))
  in
  Aia_repo.publish repo ~uri:"http://c/wrong.crt" stranger.Issue.cert;
  Alcotest.(check bool) "non-issuer rejected" true
    (Result.is_error (Aia_repo.chase repo wrong.Issue.cert))

let universe_hierarchies_sound () =
  let u = Universe.create () in
  let vendors =
    Universe.named_vendors
    @ List.init Universe.other_ca_count (fun i -> Universe.Other_ca i)
  in
  List.iter
    (fun v ->
      let h = Universe.hierarchy u v in
      let leaf = Universe.mint_leaf u v ~domain:"probe.example" () in
      Alcotest.(check bool)
        (Universe.vendor_to_string v ^ " issuing signed leaf")
        true
        (Relation.issued ~issuer:h.Universe.issuing.Issue.cert ~child:leaf.Issue.cert);
      let root = List.find Cert.is_self_signed (List.rev h.Universe.above) in
      Alcotest.(check bool)
        (Universe.vendor_to_string v ^ " root in union store")
        true
        (Root_store.mem (Universe.union_store u) root))
    vendors

let universe_deep_hierarchies () =
  let u = Universe.create () in
  let check v levels expected_inters =
    let h = if levels = 2 then Universe.hierarchy_deep u v else Universe.hierarchy_deep4 u v in
    let inters =
      h.Universe.issuing.Issue.cert
      :: List.filter (fun c -> not (Cert.is_self_signed c)) h.Universe.above
    in
    Alcotest.(check int)
      (Printf.sprintf "%s deep%d intermediates" (Universe.vendor_to_string v) levels)
      expected_inters (List.length inters);
    (* The whole chain is AIA-chaseable from the issuing CA. *)
    match Aia_repo.chase (Universe.aia u) h.Universe.issuing.Issue.cert with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  check Universe.Lets_encrypt 2 2;
  check Universe.Digicert 4 4;
  check (Universe.Other_ca 0) 2 2

let universe_restricted_membership () =
  let u = Universe.create () in
  let r = Universe.restricted_mc_dead_end u in
  Alcotest.(check bool) "absent from Mozilla" false
    (Root_store.mem (Universe.store u Root_store.Mozilla) r.Universe.r_root);
  Alcotest.(check bool) "absent from Chrome" false
    (Root_store.mem (Universe.store u Root_store.Chrome) r.Universe.r_root);
  Alcotest.(check bool) "present in Microsoft" true
    (Root_store.mem (Universe.store u Root_store.Microsoft) r.Universe.r_root);
  Alcotest.(check bool) "present in Apple" true
    (Root_store.mem (Universe.store u Root_store.Apple) r.Universe.r_root);
  Alcotest.(check bool) "present in union" true
    (Root_store.mem (Universe.union_store u) r.Universe.r_root);
  let m = Universe.restricted_ms_recoverable u in
  Alcotest.(check bool) "ms-restricted absent from Microsoft" false
    (Root_store.mem (Universe.store u Root_store.Microsoft) m.Universe.r_root)

let universe_special_constructs () =
  let u = Universe.create () in
  let self = Universe.sectigo_usertrust_self u in
  let cross = Universe.sectigo_usertrust_cross u in
  Alcotest.(check bool) "cross shares subject" true
    (Dn.equal (Cert.subject self) (Cert.subject cross));
  Alcotest.(check bool) "cross shares skid" true
    (Cert.subject_key_id self = Cert.subject_key_id cross);
  Alcotest.(check bool) "self is self-signed" true (Cert.is_self_signed self);
  Alcotest.(check bool) "cross is not" false (Cert.is_self_signed cross);
  let expired = Universe.sectigo_usertrust_cross_expired u in
  Alcotest.(check bool) "expired cross in past" true
    Vtime.(Cert.not_after expired < Universe.now u);
  (* Figure 5 pair: same subject and key, different validity. *)
  let a = Universe.digicert_ca1_recent u and b = Universe.digicert_ca1_old u in
  Alcotest.(check bool) "fig5 same subject" true (Dn.equal (Cert.subject a) (Cert.subject b));
  Alcotest.(check bool) "fig5 recent starts later" true
    Vtime.(Cert.not_before b < Cert.not_before a);
  (* Hidden root trusted nowhere. *)
  let hidden = (Universe.gov_hidden_root u).Issue.cert in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        ("hidden root absent from " ^ Root_store.program_to_string p)
        false
        (Root_store.mem (Universe.store u p) hidden))
    Root_store.all_programs;
  (* CAcert class3's AIA serves itself. *)
  let class3 = Universe.cacert_class3 u in
  (match Cert.aia_ca_issuers class3 with
  | [ uri ] -> (
      match Aia_repo.fetch (Universe.aia u) uri with
      | Aia_repo.Served c -> Alcotest.(check bool) "serves itself" true (Cert.equal c class3)
      | _ -> Alcotest.fail "expected the certificate itself")
  | _ -> Alcotest.fail "class3 must have exactly one caIssuers URI")

let universe_cross_pairs () =
  let u = Universe.create () in
  List.iter
    (fun v ->
      match Universe.cross_pair u v with
      | None -> Alcotest.fail (Universe.vendor_to_string v ^ " should have a cross pair")
      | Some (self, cross) ->
          Alcotest.(check bool)
            (Universe.vendor_to_string v ^ " pair coherent")
            true
            (Dn.equal (Cert.subject self) (Cert.subject cross)
            && Cert.is_self_signed self
            && not (Cert.is_self_signed cross)))
    [ Universe.Lets_encrypt; Universe.Digicert; Universe.Sectigo; Universe.Gogetssl ];
  Alcotest.(check bool) "taiwan has no cross pair" true
    (Universe.cross_pair u Universe.Taiwan_ca = None)

let universe_deterministic () =
  let a = Universe.create ~seed:99L () and b = Universe.create ~seed:99L () in
  Alcotest.(check bool) "same seed, same certs" true
    (Cert.equal (Universe.sectigo_usertrust_self a) (Universe.sectigo_usertrust_self b));
  let c = Universe.create ~seed:100L () in
  Alcotest.(check bool) "different seed differs" false
    (Cert.equal (Universe.sectigo_usertrust_self a) (Universe.sectigo_usertrust_self c))

(* --- certificate intern table --- *)

let intern_chain () =
  let root = mk_root "intern-root" in
  let leaf =
    Issue.issue_cert (Prng.of_label "intern-leaf") ~parent:root
      (Issue.spec (Dn.make ~cn:"intern.example" ()))
  in
  [ leaf; root.Issue.cert ]

let intern_shares_physically () =
  Intern.clear ();
  let der = Cert.to_der (List.hd (intern_chain ())) in
  let a = Result.get_ok (Intern.cert_of_der der) in
  let b = Result.get_ok (Intern.cert_of_der der) in
  Alcotest.(check bool) "same physical value" true (a == b);
  let s = Intern.stats () in
  Alcotest.(check int) "one entry" 1 s.Intern.entries;
  Alcotest.(check int) "two lookups" 2 s.Intern.lookups;
  Alcotest.(check int) "one hit" 1 s.Intern.hits

let intern_sub_window () =
  Intern.clear ();
  let der = Cert.to_der (List.hd (intern_chain ())) in
  let framed = "\x00\x01\x02" ^ der ^ "trailer" in
  let a = Result.get_ok (Intern.cert_of_der der) in
  let b = Result.get_ok (Intern.cert_of_sub framed ~off:3 ~len:(String.length der)) in
  Alcotest.(check bool) "window hit shares" true (a == b);
  Alcotest.check_raises "bad window" (Invalid_argument "Intern.cert_of_sub")
    (fun () -> ignore (Intern.cert_of_sub framed ~off:3 ~len:(String.length framed)))

let intern_disabled_parses_fresh () =
  Intern.clear ();
  let der = Cert.to_der (List.hd (intern_chain ())) in
  Intern.set_enabled false;
  Fun.protect ~finally:(fun () -> Intern.set_enabled true) (fun () ->
      let a = Result.get_ok (Intern.cert_of_der der) in
      let b = Result.get_ok (Intern.cert_of_der der) in
      Alcotest.(check bool) "not shared when disabled" true (not (a == b));
      Alcotest.(check bool) "still equal" true (Cert.equal a b);
      Alcotest.(check int) "no entries" 0 (Intern.stats ()).Intern.entries)

let intern_byte_identity () =
  (* The interned value is byte-for-byte the value a fresh parse produces. *)
  Intern.clear ();
  List.iter
    (fun c ->
      let der = Cert.to_der c in
      let interned = Result.get_ok (Intern.cert_of_der der) in
      let fresh = Result.get_ok (Cert.of_der der) in
      Alcotest.(check bool) "raw equal" true (Cert.equal interned fresh);
      Alcotest.(check bool) "fp equal" true
        (Cert.fingerprint interned = Cert.fingerprint fresh);
      Alcotest.(check bool) "tbs equal" true
        (Cert.tbs_der interned = Cert.tbs_der fresh))
    (intern_chain ())

let intern_errors_not_cached () =
  Intern.clear ();
  Alcotest.(check bool) "malformed errors" true
    (Result.is_error (Intern.cert_of_der "not a certificate"));
  Alcotest.(check int) "no entry for failure" 0 (Intern.stats ()).Intern.entries

let intern_domain_hammer () =
  (* Domains racing on the same certificates all end up sharing one value
     per distinct DER. *)
  Intern.clear ();
  let ders = List.map Cert.to_der (intern_chain ()) in
  let worker () =
    Domain.spawn (fun () ->
        List.init 200 (fun i ->
            let der = List.nth ders (i mod List.length ders) in
            Result.get_ok (Intern.cert_of_der der)))
  in
  let results = List.map Domain.join (List.map worker [ (); (); (); () ]) in
  let canon = List.map (fun der -> Result.get_ok (Intern.cert_of_der der)) ders in
  List.iter
    (fun per_domain ->
      List.iteri
        (fun i c ->
          Alcotest.(check bool) "shared across Domains" true
            (c == List.nth canon (i mod List.length canon)))
        per_domain)
    results;
  Alcotest.(check int) "two entries" 2 (Intern.stats ()).Intern.entries

let suite =
  [ Alcotest.test_case "root store lookups" `Quick root_store_lookups;
    Alcotest.test_case "intern shares physically" `Quick intern_shares_physically;
    Alcotest.test_case "intern window lookup" `Quick intern_sub_window;
    Alcotest.test_case "intern disabled" `Quick intern_disabled_parses_fresh;
    Alcotest.test_case "intern byte-identity" `Quick intern_byte_identity;
    Alcotest.test_case "intern errors not cached" `Quick intern_errors_not_cached;
    Alcotest.test_case "intern Domain hammer" `Quick intern_domain_hammer;
    Alcotest.test_case "root store union dedup" `Quick root_store_union_dedup;
    Alcotest.test_case "aia repo behaviour" `Quick aia_repo_behaviour;
    Alcotest.test_case "aia chase" `Quick aia_chase_success_and_failures;
    Alcotest.test_case "universe hierarchies sound" `Slow universe_hierarchies_sound;
    Alcotest.test_case "universe deep hierarchies" `Slow universe_deep_hierarchies;
    Alcotest.test_case "restricted store membership" `Quick universe_restricted_membership;
    Alcotest.test_case "special constructs" `Quick universe_special_constructs;
    Alcotest.test_case "cross pairs" `Quick universe_cross_pairs;
    Alcotest.test_case "universe deterministic" `Quick universe_deterministic ]
