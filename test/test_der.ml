open Chaoschain_der

let roundtrip v =
  match Der.decode (Der.encode v) with
  | Ok v' -> v' = v
  | Error _ -> false

let primitives_roundtrip () =
  List.iter
    (fun (name, v) -> Alcotest.(check bool) name true (roundtrip v))
    [ ("bool true", Der.boolean true);
      ("bool false", Der.boolean false);
      ("int 0", Der.integer_of_int 0);
      ("int 127", Der.integer_of_int 127);
      ("int 128", Der.integer_of_int 128);
      ("int -1", Der.integer_of_int (-1));
      ("int -128", Der.integer_of_int (-128));
      ("int -129", Der.integer_of_int (-129));
      ("int max", Der.integer_of_int max_int);
      ("int min", Der.integer_of_int min_int);
      ("octets", Der.octet_string "\x00\x01\xff");
      ("null", Der.null);
      ("utf8", Der.utf8_string "héllo");
      ("printable", Der.printable_string "US");
      ("ia5", Der.ia5_string "http://x/");
      ("bit string", Der.bit_string ~unused:3 "\xa8");
      ("utc", Der.utc_time "240314000000Z");
      ("gen", Der.generalized_time "20510314000000Z");
      ("sequence", Der.sequence [ Der.boolean true; Der.null ]);
      ("set", Der.set [ Der.integer_of_int 5 ]);
      ("nested", Der.sequence [ Der.sequence [ Der.sequence [] ] ]);
      ("context", Der.context 3 [ Der.octet_string "x" ]);
      ("context prim", Der.context_prim 6 "uri") ]

let integer_values_decode () =
  List.iter
    (fun n ->
      match Der.as_integer_int (Result.get_ok (Der.decode (Der.encode (Der.integer_of_int n)))) with
      | Ok v -> Alcotest.(check int) (string_of_int n) n v
      | Error e -> Alcotest.fail e)
    [ 0; 1; -1; 127; 128; 255; 256; -127; -128; -129; 65535; -65536; max_int; min_int ]

let long_lengths () =
  let big = Der.octet_string (String.make 300 'x') in
  Alcotest.(check bool) "300-byte content" true (roundtrip big);
  let huge = Der.octet_string (String.make 70_000 'y') in
  Alcotest.(check bool) "70k content" true (roundtrip huge)

let minimal_int_encoding () =
  (* 127 must be one content octet, 128 needs two (leading zero). *)
  Alcotest.(check int) "127 is 3 bytes total" 3
    (String.length (Der.encode (Der.integer_of_int 127)));
  Alcotest.(check int) "128 is 4 bytes total" 4
    (String.length (Der.encode (Der.integer_of_int 128)))

let decode_errors () =
  let is_err s = Result.is_error (Der.decode s) in
  Alcotest.(check bool) "empty" true (is_err "");
  Alcotest.(check bool) "truncated content" true (is_err "\x04\x05ab");
  Alcotest.(check bool) "indefinite length" true (is_err "\x30\x80\x00\x00");
  Alcotest.(check bool) "non-minimal length" true (is_err "\x04\x81\x05hello");
  Alcotest.(check bool) "trailing garbage" true
    (is_err (Der.encode Der.null ^ "\x00"));
  Alcotest.(check bool) "high tag number" true (is_err "\x1f\x81\x00\x00")

let oid_codec () =
  let check_oid arcs =
    let o = Oid.make arcs in
    match Der.as_oid (Result.get_ok (Der.decode (Der.encode (Der.oid o)))) with
    | Ok o' -> Alcotest.(check string) (Oid.to_string o) (Oid.to_string o) (Oid.to_string o')
    | Error e -> Alcotest.fail e
  in
  List.iter check_oid
    [ [ 2; 5; 29; 19 ]; [ 1; 2; 840; 113549; 1; 1; 11 ]; [ 0; 0 ]; [ 2; 999; 3 ];
      [ 1; 3; 6; 1; 5; 5; 7; 48; 2 ] ]

let oid_strings () =
  Alcotest.(check string) "dotted" "2.5.29.19" (Oid.to_string Oid.ext_basic_constraints);
  Alcotest.(check string) "named" "basicConstraints" (Oid.name Oid.ext_basic_constraints);
  (match Oid.of_string "1.2.840.10045.4.3.2" with
  | Ok o -> Alcotest.(check bool) "parse" true (Oid.equal o Oid.alg_ecdsa_sha256)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "reject single arc" true (Result.is_error (Oid.of_string "1"));
  Alcotest.(check bool) "reject junk" true (Result.is_error (Oid.of_string "1.x"));
  Alcotest.check_raises "first arc range" (Invalid_argument "Oid.make: first arc must be 0..2")
    (fun () -> ignore (Oid.make [ 3; 1 ]));
  Alcotest.check_raises "second arc range"
    (Invalid_argument "Oid.make: second arc must be < 40 when first arc is 0 or 1")
    (fun () -> ignore (Oid.make [ 1; 40 ]))

let destructor_shape_errors () =
  Alcotest.(check bool) "bool of int" true
    (Result.is_error (Der.as_boolean (Der.integer_of_int 1)));
  Alcotest.(check bool) "seq of prim" true
    (Result.is_error (Der.as_sequence (Der.octet_string "x")));
  Alcotest.(check bool) "context number mismatch" true
    (Result.is_error (Der.as_context 1 (Der.context 2 [])))

(* Random tree generator for the roundtrip property. *)
let gen_tree =
  let open QCheck.Gen in
  let prim =
    oneof
      [ map Der.boolean bool;
        map Der.integer_of_int int;
        map Der.octet_string (string_size (0 -- 16));
        map Der.utf8_string (string_size ~gen:(char_range 'a' 'z') (0 -- 12));
        return Der.null ]
  in
  fix
    (fun self depth ->
      if depth = 0 then prim
      else
        frequency
          [ (2, prim);
            (1, map Der.sequence (list_size (0 -- 4) (self (depth - 1))));
            (1, map Der.set (list_size (0 -- 3) (self (depth - 1))));
            (1, map (Der.context 0) (list_size (0 -- 2) (self (depth - 1)))) ])
    3

let qcheck_roundtrip =
  QCheck.Test.make ~name:"DER decode . encode = id on random trees" ~count:300
    (QCheck.make gen_tree) roundtrip

(* The zero-copy slice reader must be observably identical to the tree
   decoder: same values on valid input, an error on the same malformed
   inputs. *)
let qcheck_slice_differential =
  QCheck.Test.make ~name:"decode_slice = decode on random encodings" ~count:300
    (QCheck.make gen_tree)
    (fun tree ->
      let bytes = Der.encode tree in
      Der.decode_slice (Der.slice_of_string bytes) = Der.decode bytes)

let qcheck_slice_differential_malformed =
  (* Truncations and single-byte corruptions of valid encodings: the two
     decoders accept exactly the same inputs (and agree on the value), though
     an eager depth-first and a lazy reader may describe the same overrun
     differently, so error text is not compared. *)
  QCheck.Test.make ~name:"decode_slice agrees with decode on mangled input"
    ~count:300
    QCheck.(pair (QCheck.make gen_tree) (pair small_nat small_nat))
    (fun (tree, (pos, byte)) ->
      let bytes = Der.encode tree in
      let n = String.length bytes in
      let mangled =
        if n = 0 then ""
        else
          let b = Bytes.of_string bytes in
          Bytes.set b (pos mod n) (Char.chr (byte land 0xFF));
          Bytes.to_string b
      in
      let truncated = String.sub bytes 0 (if n = 0 then 0 else pos mod n) in
      List.for_all
        (fun s ->
          match (Der.decode s, Der.decode_slice (Der.slice_of_string s)) with
          | Ok a, Ok b -> a = b
          | Error _, Error _ -> true
          | _ -> false)
        [ mangled; truncated ])

let slice_node_walk () =
  (* read_node walks a concatenation exactly like decode_prefix. *)
  let trees = [ Der.integer_of_int 42; Der.sequence [ Der.null ]; Der.octet_string "xy" ] in
  let bytes = Der.encode_many trees in
  let rec walk acc s =
    if s.Der.len = 0 then List.rev acc
    else
      match Der.read_node s with
      | Ok (n, rest) -> walk (n :: acc) rest
      | Error e -> Alcotest.fail e
  in
  let nodes = walk [] (Der.slice_of_string bytes) in
  Alcotest.(check int) "three nodes" 3 (List.length nodes);
  List.iter2
    (fun tree node ->
      Alcotest.(check string) "raw bytes" (Der.encode tree) (Der.node_raw node);
      Alcotest.(check bool) "tree_of_node" true (Der.tree_of_node node = Ok tree))
    trees nodes;
  (* Typed node destructors agree with the tree destructors. *)
  let int_node =
    match Der.read_node (Der.slice_of_string (Der.encode (Der.integer_of_int 7))) with
    | Ok (n, _) -> n
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "as_integer_int_n" true (Der.as_integer_int_n int_node = Ok 7);
  Alcotest.(check bool) "as_sequence_n rejects prim" true
    (Result.is_error (Der.as_sequence_n int_node))

let qcheck_encode_many =
  QCheck.Test.make ~name:"decode_prefix walks encode_many" ~count:100
    (QCheck.make (QCheck.Gen.list_size QCheck.Gen.(1 -- 5) gen_tree))
    (fun trees ->
      let bytes = Der.encode_many trees in
      let rec walk acc off =
        if off = String.length bytes then List.rev acc
        else
          match Der.decode_prefix bytes off with
          | Ok (v, off') -> walk (v :: acc) off'
          | Error _ -> []
      in
      walk [] 0 = trees)

let suite =
  [ Alcotest.test_case "primitive roundtrips" `Quick primitives_roundtrip;
    Alcotest.test_case "integer value decoding" `Quick integer_values_decode;
    Alcotest.test_case "long-form lengths" `Quick long_lengths;
    Alcotest.test_case "minimal integer encoding" `Quick minimal_int_encoding;
    Alcotest.test_case "decode errors" `Quick decode_errors;
    Alcotest.test_case "oid codec" `Quick oid_codec;
    Alcotest.test_case "oid strings" `Quick oid_strings;
    Alcotest.test_case "destructor shape errors" `Quick destructor_shape_errors;
    Alcotest.test_case "slice node walk" `Quick slice_node_walk;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_encode_many;
    QCheck_alcotest.to_alcotest qcheck_slice_differential;
    QCheck_alcotest.to_alcotest qcheck_slice_differential_malformed ]
