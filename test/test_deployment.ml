open Chaoschain_x509
open Chaoschain_pki
open Chaoschain_deployment
module Prng = Chaoschain_crypto.Prng
module Keys = Chaoschain_crypto.Keys

(* --- Base64 / PEM --- *)

let base64_vectors () =
  (* RFC 4648 test vectors. *)
  List.iter
    (fun (plain, enc) ->
      Alcotest.(check string) ("encode " ^ plain) enc (Base64.encode plain);
      Alcotest.(check string) ("decode " ^ enc) plain (Result.get_ok (Base64.decode enc)))
    [ ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v"); ("foob", "Zm9vYg==");
      ("fooba", "Zm9vYmE="); ("foobar", "Zm9vYmFy") ]

let base64_errors () =
  Alcotest.(check bool) "bad length" true (Result.is_error (Base64.decode "abc"));
  Alcotest.(check bool) "bad char" true (Result.is_error (Base64.decode "ab!d"));
  (* Exact messages: callers surface them verbatim in PEM errors. *)
  Alcotest.(check string) "length message"
    "base64: length not a multiple of 4"
    (Result.fold ~ok:(fun _ -> "ok") ~error:Fun.id (Base64.decode "abcde"));
  Alcotest.(check string) "char message" "base64: invalid character '!'"
    (Result.fold ~ok:(fun _ -> "ok") ~error:Fun.id (Base64.decode "ab!d"));
  (* '=' anywhere before the final padding positions is an invalid char. *)
  Alcotest.(check bool) "all padding" true (Result.is_error (Base64.decode "===="));
  Alcotest.(check bool) "pad in first group" true
    (Result.is_error (Base64.decode "a=aaAAAA"))

let qcheck_base64_decode_total =
  (* decode never raises: any 4k-length ASCII string yields Ok or Error. *)
  QCheck.Test.make ~name:"base64 decode is total" ~count:300
    QCheck.(string_of_size Gen.(map (fun n -> n * 4) (0 -- 50)))
    (fun s ->
      match Base64.decode s with
      | Ok _ | Error _ -> true)

let qcheck_base64 =
  QCheck.Test.make ~name:"base64 decode . encode = id" ~count:300
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s -> Base64.decode (Base64.encode s) = Ok s)

let lab = lazy (Universe.create ~seed:7L ())

let sample_chain () =
  let u = Lazy.force lab in
  let h = Universe.hierarchy u Universe.Lets_encrypt in
  let leaf = Universe.mint_leaf u Universe.Lets_encrypt ~domain:"pem.example" () in
  [ leaf.Issue.cert; h.Universe.issuing.Issue.cert ]

let pem_roundtrip () =
  let chain = sample_chain () in
  match Pem.decode_certs (Pem.encode_certs chain) with
  | Ok chain' ->
      Alcotest.(check int) "count" (List.length chain) (List.length chain');
      List.iter2
        (fun a b -> Alcotest.(check bool) "bit-identical" true (Cert.equal a b))
        chain chain'
  | Error e -> Alcotest.fail e

let pem_tolerates_headers () =
  let chain = sample_chain () in
  let noisy =
    "Subject: CN=pem.example\nIssued by robot\n" ^ Pem.encode_certs chain
    ^ "\n# trailing comment\n"
  in
  match Pem.decode_certs noisy with
  | Ok chain' -> Alcotest.(check int) "count" 2 (List.length chain')
  | Error e -> Alcotest.fail e

let pem_errors () =
  Alcotest.(check bool) "unterminated" true
    (Result.is_error (Pem.decode_certs "-----BEGIN CERTIFICATE-----\nAAAA\n"));
  Alcotest.(check bool) "garbage body" true
    (Result.is_error
       (Pem.decode_certs
          "-----BEGIN CERTIFICATE-----\n!!!\n-----END CERTIFICATE-----\n"));
  Alcotest.(check bool) "empty input gives empty list" true
    (Pem.decode_certs "" = Ok [])

(* --- CA vendor deliveries (Table 6 behaviours) --- *)

let vendor_deliveries () =
  let u = Lazy.force lab in
  let delivery v =
    let leaf = Universe.mint_leaf u v ~domain:"vendor.example" () in
    Ca_vendor.issue u v ~leaf:leaf.Issue.cert
  in
  let le = delivery Universe.Lets_encrypt in
  Alcotest.(check bool) "LE automated" true le.Ca_vendor.automated;
  Alcotest.(check bool) "LE fullchain" true (le.Ca_vendor.fullchain_file <> None);
  Alcotest.(check bool) "LE order ok" true le.Ca_vendor.bundle_order_compliant;
  let gg = delivery Universe.Gogetssl in
  Alcotest.(check bool) "GoGetSSL bundle reversed" false gg.Ca_vendor.bundle_order_compliant;
  Alcotest.(check bool) "GoGetSSL ships root" true gg.Ca_vendor.includes_root;
  Alcotest.(check bool) "GoGetSSL no guide" true (gg.Ca_vendor.install_guide = Ca_vendor.No_guide);
  (* The reversed bundle really is upside-down: first certificate is the
     self-signed root. *)
  (match Ca_vendor.bundle_certs gg with
  | Ok (first :: _) -> Alcotest.(check bool) "root first" true (Cert.is_self_signed first)
  | _ -> Alcotest.fail "bundle expected");
  let tw = delivery Universe.Taiwan_ca in
  (match Ca_vendor.bundle_certs tw with
  | Ok [ only ] ->
      Alcotest.(check bool) "TWCA ships only the issuing CA" true
        (not (Cert.is_self_signed only))
  | _ -> Alcotest.fail "TWCA bundle should hold one certificate")

(* --- HTTP server models (Table 4 behaviours) --- *)

let server_checks () =
  let u = Lazy.force lab in
  let leaf = Universe.mint_leaf u Universe.Sectigo ~domain:"http.example" () in
  let h = Universe.hierarchy u Universe.Sectigo in
  let key = Keys.public_of_private leaf.Issue.key in
  let good_sf2 =
    { Http_server.cert_file = [ leaf.Issue.cert; h.Universe.issuing.Issue.cert ];
      chain_file = []; private_key_of = key }
  in
  (match Http_server.deploy Http_server.Nginx good_sf2 with
  | Http_server.Deployed served -> Alcotest.(check int) "served 2" 2 (List.length served)
  | Http_server.Config_error e -> Alcotest.fail e);
  (* Key mismatch is caught by everyone. *)
  let other = Universe.mint_leaf u Universe.Sectigo ~domain:"other.example" () in
  let mismatched = { good_sf2 with Http_server.private_key_of = Keys.public_of_private other.Issue.key } in
  List.iter
    (fun sw ->
      match Http_server.deploy sw mismatched with
      | Http_server.Config_error _ -> ()
      | Http_server.Deployed _ ->
          Alcotest.fail (Http_server.software_to_string sw ^ " accepted a key mismatch"))
    Http_server.all;
  (* Azure and IIS reject a duplicated leaf; Apache and Nginx serve it. *)
  let dup =
    { Http_server.cert_file = [ leaf.Issue.cert; leaf.Issue.cert; h.Universe.issuing.Issue.cert ];
      chain_file = []; private_key_of = key }
  in
  (match Http_server.deploy Http_server.Azure_app_gateway dup with
  | Http_server.Config_error _ -> ()
  | Http_server.Deployed _ -> Alcotest.fail "Azure accepted duplicate leaf");
  (match Http_server.deploy Http_server.Iis dup with
  | Http_server.Config_error _ -> ()
  | Http_server.Deployed _ -> Alcotest.fail "IIS accepted duplicate leaf");
  (match Http_server.deploy Http_server.Nginx dup with
  | Http_server.Deployed served -> Alcotest.(check int) "nginx serves the dup" 3 (List.length served)
  | Http_server.Config_error e -> Alcotest.fail e);
  (* SF1 concatenation order: cert file then chain file. *)
  let sf1 =
    { Http_server.cert_file = [ leaf.Issue.cert ];
      chain_file = [ h.Universe.issuing.Issue.cert ]; private_key_of = key }
  in
  match Http_server.deploy Http_server.Apache_pre_2_4_8 sf1 with
  | Http_server.Deployed (first :: _) ->
      Alcotest.(check bool) "leaf first" true (Cert.equal first leaf.Issue.cert)
  | _ -> Alcotest.fail "apache deploy failed"

let table4_shape () =
  List.iter
    (fun sw ->
      let row = Http_server.table4_row sw in
      Alcotest.(check int)
        (Http_server.software_to_string sw ^ " row has 5 characteristics")
        5 (List.length row))
    Http_server.all

(* --- Admin operators --- *)

let admin_ops () =
  let u = Lazy.force lab in
  let leaf_signer = Universe.mint_leaf u Universe.Gogetssl ~domain:"admin.example" () in
  let delivery = Ca_vendor.issue u Universe.Gogetssl ~leaf:leaf_signer.Issue.cert in
  let assemble ops =
    match Admin.assemble u delivery ~leaf_signer ~ops with
    | Ok o -> o.Admin.chain
    | Error e -> Alcotest.fail e
  in
  let naive = assemble [ Admin.Merge_naive ] in
  Alcotest.(check bool) "naive keeps root right after leaf" true
    (Cert.is_self_signed (List.nth naive 1));
  let corrected = assemble [ Admin.Merge_corrected ] in
  Alcotest.(check bool) "corrected puts issuer after leaf" true
    (Relation.issued ~issuer:(List.nth corrected 1) ~child:(List.hd corrected));
  let doubled = assemble [ Admin.Merge_corrected; Admin.Leaf_into_chain_file ] in
  Alcotest.(check bool) "leaf duplicated" true
    (List.length (List.filter (Cert.equal leaf_signer.Issue.cert) doubled) = 2);
  let stale = assemble [ Admin.Merge_corrected; Admin.Keep_stale_leaves 3 ] in
  Alcotest.(check int) "three extras" (List.length corrected + 3) (List.length stale);
  let leaf_only = assemble [ Admin.Serve_leaf_only ] in
  Alcotest.(check int) "leaf only" 1 (List.length leaf_only);
  let pasted = assemble [ Admin.Merge_corrected; Admin.Duplicate_paste 2 ] in
  Alcotest.(check bool) "pasting grows the chain" true
    (List.length pasted > List.length corrected);
  let dropped = assemble [ Admin.Merge_corrected; Admin.Drop_intermediate 0 ] in
  Alcotest.(check int) "one fewer" (List.length corrected - 1) (List.length dropped)

let suite =
  [ Alcotest.test_case "base64 vectors" `Quick base64_vectors;
    Alcotest.test_case "base64 errors" `Quick base64_errors;
    QCheck_alcotest.to_alcotest qcheck_base64;
    QCheck_alcotest.to_alcotest qcheck_base64_decode_total;
    Alcotest.test_case "pem roundtrip" `Quick pem_roundtrip;
    Alcotest.test_case "pem tolerates headers" `Quick pem_tolerates_headers;
    Alcotest.test_case "pem errors" `Quick pem_errors;
    Alcotest.test_case "vendor deliveries" `Quick vendor_deliveries;
    Alcotest.test_case "server checks" `Quick server_checks;
    Alcotest.test_case "table 4 rows" `Quick table4_shape;
    Alcotest.test_case "admin operators" `Quick admin_ops ]
