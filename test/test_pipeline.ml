open Chaoschain_core
open Chaoschain_pki
open Chaoschain_measurement
module Prng = Chaoschain_crypto.Prng

(* --- shard plan: split/merge round-trip, coverage, determinism --- *)

let shard_round_trip () =
  List.iter
    (fun n ->
      let rng = Prng.of_label (Printf.sprintf "test-shard-%d" n) in
      let arr = Array.init n (fun _ -> Prng.int rng 1_000_000) in
      let shards = Shard.split arr in
      Alcotest.(check int)
        (Printf.sprintf "count for n=%d" n)
        (Shard.count n) (Array.length shards);
      Alcotest.(check (array int))
        (Printf.sprintf "round-trip n=%d" n)
        arr (Shard.merge shards))
    [ 0; 1; 5; 511; 512; 513; 2048 + 17 ]

let shard_plan_contiguous () =
  List.iter
    (fun n ->
      let slices = Shard.plan n in
      let expected_start = ref 0 in
      Array.iteri
        (fun i s ->
          Alcotest.(check int) "index" i s.Shard.index;
          Alcotest.(check int) "contiguous" !expected_start s.Shard.start;
          Alcotest.(check bool) "non-empty" true (s.Shard.stop > s.Shard.start);
          expected_start := s.Shard.stop)
        slices;
      Alcotest.(check int) "covers n" n !expected_start)
    [ 1; 100; 512; 1000; 4096 ]

let shard_plan_ignores_jobs () =
  (* The plan is a function of the length alone — the determinism contract
     hangs on this, because per-shard PRNG labels come from slice indices. *)
  let labels n = Array.map (fun s -> Shard.label ~base:"x" s.Shard.index) (Shard.plan n) in
  Alcotest.(check (array string)) "stable labels" (labels 1813) (labels 1813)

(* --- pipeline map: parallel == sequential == Array.map --- *)

let pipeline_map_matches () =
  let arr = Array.init 1500 (fun i -> i) in
  let f x = (x * 7919) mod 104729 in
  let expected = Array.map f arr in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "map jobs=%d" jobs)
        expected
        (Pipeline.map ~jobs f arr))
    [ 1; 2; 4 ];
  Alcotest.(check (array int)) "mapi indexes globally"
    (Array.mapi (fun i x -> i + x) arr)
    (Pipeline.mapi ~jobs:3 (fun i x -> i + x) arr)

let memo_dedups () =
  let memo = Pipeline.Memo.create () in
  let computed = ref 0 in
  let get k =
    Pipeline.Memo.find_or_add memo k (fun () ->
        incr computed;
        String.length k)
  in
  Alcotest.(check int) "first" 3 (get "abc");
  Alcotest.(check int) "hit" 3 (get "abc");
  Alcotest.(check int) "other key" 2 (get "xy");
  Alcotest.(check int) "computed once per key" 2 !computed;
  Alcotest.(check int) "size" 2 (Pipeline.Memo.size memo);
  Alcotest.(check int) "hits" 1 (Pipeline.Memo.hits memo)

(* --- the determinism contract over the full analysis --- *)

let render_report rep = Format.asprintf "%a" Compliance.pp_report rep

let analysis_jobs_invariant () =
  let pop = Population.generate ~scale:0.002 () in
  let a1 = Experiments.analyze ~jobs:1 pop in
  let a4 = Experiments.analyze ~jobs:4 pop in
  (* Dataset: identical scan, per shard-derived PRNG streams. *)
  List.iter2
    (fun (v1 : Scanner.vantage) v4 ->
      Alcotest.(check int) (v1.Scanner.name ^ " reached") v1.Scanner.reached
        v4.Scanner.reached)
    a1.Experiments.dataset.Scanner.vantages a4.Experiments.dataset.Scanner.vantages;
  Alcotest.(check (array string)) "chain fingerprints"
    a1.Experiments.dataset.Scanner.chain_fps a4.Experiments.dataset.Scanner.chain_fps;
  Alcotest.(check int) "unique chains" a1.Experiments.dataset.Scanner.unique_chains
    a4.Experiments.dataset.Scanner.unique_chains;
  (* Reports: same domains in the same order with the same verdicts. *)
  Alcotest.(check int) "report count" (Array.length a1.Experiments.reports)
    (Array.length a4.Experiments.reports);
  Array.iter2
    (fun (r1, rep1) (r4, rep4) ->
      Alcotest.(check string) "domain order" r1.Population.domain r4.Population.domain;
      Alcotest.(check string) "report" (render_report rep1) (render_report rep4))
    a1.Experiments.reports a4.Experiments.reports;
  (* And the rendered experiments — the actual deliverable — byte for byte. *)
  List.iter2
    (fun r1 r4 ->
      Alcotest.(check string)
        ("body of " ^ r1.Experiments.id)
        (Chaoschain_report.Report.to_text r1)
        (Chaoschain_report.Report.to_text r4))
    (Experiments.run_all a1) (Experiments.run_all a4)

(* --- dedup cache vs direct evaluation, chain by chain --- *)

let memo_matches_direct () =
  let pop = Population.generate ~scale:0.002 () in
  let store = Universe.union_store pop.Population.universe in
  let aia = Universe.aia pop.Population.universe in
  let memo = Pipeline.Memo.create () in
  Array.iter
    (fun r ->
      let direct =
        Compliance.analyze ~store ~aia ~domain:r.Population.domain r.Population.chain
      in
      let cached =
        Pipeline.Memo.find_or_add memo (Scanner.chain_fingerprint r.Population.chain)
          (fun () -> Compliance.analyze_chain ~store ~aia r.Population.chain)
        |> Compliance.localize ~domain:r.Population.domain r.Population.chain
      in
      Alcotest.(check string)
        (r.Population.domain ^ " report")
        (render_report direct) (render_report cached);
      Alcotest.(check bool)
        (r.Population.domain ^ " verdict")
        (Compliance.compliant direct) (Compliance.compliant cached))
    pop.Population.domains;
  let unique =
    Array.to_list pop.Population.domains
    |> List.map (fun r -> Scanner.chain_fingerprint r.Population.chain)
    |> List.sort_uniq String.compare |> List.length
  in
  Alcotest.(check int) "memo covers every unique chain" unique
    (Pipeline.Memo.size memo)

(* --- difftest memo key: the hostname bit separates match from mismatch --- *)

let difftest_key_host_bit () =
  let pop = Population.generate ~scale:0.002 () in
  (* Pick a domain whose served leaf actually covers it; mismatch scenarios
     would put the same "x" bit in both keys. *)
  let r =
    Array.to_list pop.Population.domains
    |> List.find (fun r ->
           match r.Population.chain with
           | leaf :: _ ->
               Chaoschain_x509.Cert.matches_hostname leaf r.Population.domain
           | [] -> false)
  in
  let k_match = Difftest.chain_key ~domain:r.Population.domain r.Population.chain in
  let k_same = Difftest.chain_key ~domain:r.Population.domain r.Population.chain in
  let k_other = Difftest.chain_key ~domain:"definitely-not-served.sim" r.Population.chain in
  Alcotest.(check string) "stable" k_match k_same;
  Alcotest.(check bool) "host bit differs" true (k_match <> k_other)

let suite =
  [ Alcotest.test_case "shard round-trip" `Quick shard_round_trip;
    Alcotest.test_case "shard plan contiguous" `Quick shard_plan_contiguous;
    Alcotest.test_case "shard labels stable" `Quick shard_plan_ignores_jobs;
    Alcotest.test_case "pipeline map matches Array.map" `Quick pipeline_map_matches;
    Alcotest.test_case "memo dedups" `Quick memo_dedups;
    Alcotest.test_case "analysis jobs-invariant" `Slow analysis_jobs_invariant;
    Alcotest.test_case "memo matches direct evaluation" `Slow memo_matches_direct;
    Alcotest.test_case "difftest key host bit" `Slow difftest_key_host_bit ]
