(* chaind (lib/service): JSON codec, protocol round-trip, LRU bounds and
   eviction order, verdict-cache hit/miss byte-identity, micro-batch
   coalescing, jobs-invariance, admission-queue overload, and the serve loop
   over the in-memory transport. *)

open Chaoschain_measurement
open Chaoschain_pki
module S = Chaoschain_service
module Json = S.Json
module Protocol = S.Protocol
module Engine = S.Engine
module Certmsg = Chaoschain_tlssim.Certmsg
module Base64 = Chaoschain_deployment.Base64

(* --- JSON codec --- *)

let json_round_trip () =
  let v =
    Json.Obj
      [ ("s", Json.String "line1\nline2 \"quoted\" \\ tab\t");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.String "x"; Json.Obj [] ]) ]
  in
  match Json.of_string (Json.to_string v) with
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e)
  | Ok v' ->
      Alcotest.(check string) "stable encoding" (Json.to_string v) (Json.to_string v')

let json_decode_escapes () =
  (match Json.of_string {|"a\u0041\n\u00e9"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "escapes" "aA\n\xc3\xa9" s
  | _ -> Alcotest.fail "string with escapes");
  (match Json.of_string {|"\ud83d\ude00"|} with
  | Ok (Json.String s) ->
      Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair");
  match Json.of_string "  [1, 2.5, {\"k\": null}] " with
  | Ok (Json.List [ Json.Int 1; Json.Float 2.5; Json.Obj [ ("k", Json.Null) ] ])
    -> ()
  | _ -> Alcotest.fail "whitespace + mixed numbers"

let json_rejects_malformed () =
  let bad = [ "{"; "[1,]"; "{\"a\":1} trailing"; "\"unterminated"; "nul";
              "{\"a\" 1}"; "\"\\ud800\"" ] in
  List.iter
    (fun text ->
      match Json.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted malformed " ^ text))
    bad

(* --- protocol --- *)

let proto_round_trip () =
  let req =
    {
      Protocol.id = Some "req-1";
      op =
        Protocol.Check
          {
            Protocol.domain = Some "example.com";
            pem = Some "-----BEGIN CERTIFICATE-----\nAAAA\n-----END CERTIFICATE-----\n";
            scenario = None;
            certmsg = None;
            format = None;
            aia = false;
            store = Protocol.Program Root_store.Mozilla;
            clients = Some [ Chaoschain_core.Clients.Openssl;
                             Chaoschain_core.Clients.Firefox ];
          };
    }
  in
  match Protocol.of_frame (Protocol.to_frame req) with
  | Error e -> Alcotest.fail ("round-trip rejected: " ^ e.Protocol.message)
  | Ok req' ->
      Alcotest.(check string) "round-trip" (Protocol.to_frame req)
        (Protocol.to_frame req');
      (match req'.Protocol.op with
      | Protocol.Check c ->
          Alcotest.(check bool) "aia off" false c.Protocol.aia;
          Alcotest.(check string) "store" "mozilla"
            (Protocol.store_choice_to_string c.Protocol.store)
      | _ -> Alcotest.fail "op changed")

let proto_certmsg_round_trip () =
  let req =
    {
      Protocol.id = Some "req-2";
      op =
        Protocol.Check
          {
            Protocol.domain = Some "example.com";
            pem = None;
            scenario = None;
            certmsg = Some "FgMDAAA=";
            format = Some Certmsg.Tls13;
            aia = true;
            store = Protocol.Union;
            clients = None;
          };
    }
  in
  match Protocol.of_frame (Protocol.to_frame req) with
  | Error e -> Alcotest.fail ("round-trip rejected: " ^ e.Protocol.message)
  | Ok req' -> (
      Alcotest.(check string) "round-trip" (Protocol.to_frame req)
        (Protocol.to_frame req');
      match req'.Protocol.op with
      | Protocol.Check c ->
          Alcotest.(check (option string)) "certmsg" (Some "FgMDAAA=")
            c.Protocol.certmsg;
          Alcotest.(check bool) "format" true
            (c.Protocol.format = Some Certmsg.Tls13)
      | _ -> Alcotest.fail "op changed")

let proto_rejects_malformed () =
  let expect_code frame code =
    match Protocol.of_frame frame with
    | Error e -> Alcotest.(check string) frame code e.Protocol.code
    | Ok _ -> Alcotest.fail ("accepted " ^ frame)
  in
  expect_code "not json" "malformed_frame";
  expect_code "{}" "malformed_frame";
  expect_code {|{"op":"launch"}|} "malformed_frame";
  expect_code {|{"op":"check"}|} "malformed_frame";
  expect_code {|{"op":"check","pem":"x","scenario":"y","domain":"d"}|}
    "malformed_frame";
  expect_code {|{"op":"check","pem":"x"}|} "malformed_frame";
  expect_code {|{"op":"check","scenario":"s","clients":["netscape"]}|}
    "malformed_frame";
  expect_code {|{"op":"check","scenario":"s","store":"curl"}|} "malformed_frame";
  (* the certmsg source obeys the same exclusivity and domain rules *)
  expect_code {|{"op":"check","certmsg":"AAAA","scenario":"s"}|}
    "malformed_frame";
  expect_code {|{"op":"check","certmsg":"AAAA","pem":"x","domain":"d"}|}
    "malformed_frame";
  expect_code {|{"op":"check","certmsg":"AAAA"}|} "malformed_frame";
  expect_code {|{"op":"check","certmsg":"AAAA","domain":"d","format":"1.4"}|}
    "malformed_frame";
  expect_code {|{"op":"check","scenario":"s","format":"1.3"}|}
    "malformed_frame";
  (* a parsed id is echoed in the error *)
  match Protocol.of_frame {|{"id":"e1","op":"check"}|} with
  | Error e -> Alcotest.(check (option string)) "id echoed" (Some "e1") e.Protocol.err_id
  | Ok _ -> Alcotest.fail "accepted op-less check"

(* --- LRU --- *)

let lru_capacity_bound () =
  let l = S.Lru.create ~capacity:3 in
  List.iter (fun k -> S.Lru.add l k (String.length k)) [ "a"; "bb"; "ccc"; "dddd"; "eeeee" ];
  Alcotest.(check int) "size bounded" 3 (S.Lru.size l);
  Alcotest.(check int) "evictions" 2 (S.Lru.evictions l);
  Alcotest.(check bool) "oldest gone" false (S.Lru.mem l "a");
  Alcotest.(check bool) "newest kept" true (S.Lru.mem l "eeeee")

let lru_eviction_order () =
  let l = S.Lru.create ~capacity:3 in
  S.Lru.add l "a" 1;
  S.Lru.add l "b" 2;
  S.Lru.add l "c" 3;
  (* touch "a": now LRU order (mru-first) is a, c, b *)
  Alcotest.(check (option int)) "find refreshes" (Some 1) (S.Lru.find l "a");
  Alcotest.(check (list string)) "mru order" [ "a"; "c"; "b" ]
    (S.Lru.keys_mru_first l);
  S.Lru.add l "d" 4;
  Alcotest.(check bool) "b (LRU) evicted" false (S.Lru.mem l "b");
  Alcotest.(check bool) "a survived via touch" true (S.Lru.mem l "a");
  (* re-adding an existing key updates in place, no eviction *)
  S.Lru.add l "c" 33;
  Alcotest.(check int) "still 3 entries" 3 (S.Lru.size l);
  Alcotest.(check (option int)) "updated value" (Some 33) (S.Lru.find l "c");
  Alcotest.(check int) "one eviction total" 1 (S.Lru.evictions l)

(* --- engine fixtures --- *)

let lab = lazy (Population.generate ~scale:0.001 ())

let fixture_record () =
  let pop = Lazy.force lab in
  pop.Population.domains.(0)

let make_env () =
  let pop = Lazy.force lab in
  let u = pop.Population.universe in
  let r = fixture_record () in
  {
    Engine.diff_env = Population.env pop;
    union_store = Universe.union_store u;
    program_store = Universe.store u;
    aia = Universe.aia u;
    find_scenario =
      (fun needle ->
        if needle = "fixture" then Some (r.Population.domain, r.Population.chain)
        else None);
  }

let check_frame ?(id = "q") ?domain ?pem ?scenario ?certmsg ?format () =
  let opt k = function Some v -> [ (k, Json.String v) ] | None -> [] in
  Json.to_string
    (Json.Obj
       ([ ("id", Json.String id); ("op", Json.String "check") ]
       @ opt "domain" domain @ opt "pem" pem @ opt "scenario" scenario
       @ opt "certmsg" certmsg @ opt "format" format))

let fixture_pem () = Chaoschain_deployment.Pem.encode_certs (fixture_record ()).Population.chain

let response_field response key =
  match Json.of_string response with
  | Ok json -> Json.member key json
  | Error e -> Alcotest.fail ("unparseable response: " ^ e)

let expect_error response code =
  (match response_field response "ok" with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail ("expected ok:false in " ^ response));
  match response_field response "code" with
  | Some (Json.String c) -> Alcotest.(check string) "error code" code c
  | _ -> Alcotest.fail ("no code in " ^ response)

(* --- engine: error replies --- *)

let engine_error_replies () =
  let t = Engine.create ~env:(make_env ()) () in
  expect_error
    (Engine.handle_frame t (check_frame ~domain:"a.example" ~pem:"not pem at all" ()))
    "malformed_pem";
  expect_error
    (Engine.handle_frame t
       (check_frame ~domain:"a.example"
          ~pem:"-----BEGIN CERTIFICATE-----\n!!!!\n-----END CERTIFICATE-----\n" ()))
    "malformed_pem";
  expect_error (Engine.handle_frame t (check_frame ~scenario:"no-such-lab" ())) "unknown_scenario";
  expect_error (Engine.handle_frame t "{{{{") "malformed_frame";
  Engine.shutdown t;
  let m = Engine.metrics t in
  Alcotest.(check int) "errors counted" 4 m.S.Metrics.errors;
  Alcotest.(check int) "no verdicts cached" 0 (Engine.cache_size t)

(* --- engine: cache hit is byte-identical to the cold miss --- *)

let engine_hit_identical () =
  let t = Engine.create ~env:(make_env ()) () in
  let r = fixture_record () in
  let frame = check_frame ~domain:r.Population.domain ~pem:(fixture_pem ()) () in
  let cold = Engine.handle_frame t frame in
  let warm = Engine.handle_frame t frame in
  Alcotest.(check string) "hit == miss bytes" cold warm;
  let m = Engine.metrics t in
  Alcotest.(check int) "one miss" 1 m.S.Metrics.misses;
  Alcotest.(check int) "one hit" 1 m.S.Metrics.hits;
  Alcotest.(check int) "one cached verdict" 1 (Engine.cache_size t);
  (* the scenario spelling of the same chain+domain also hits the cache *)
  let via_scenario = Engine.handle_frame t (check_frame ~scenario:"fixture" ()) in
  Alcotest.(check string) "scenario serves same verdict" cold via_scenario;
  Alcotest.(check int) "second hit" 2 (Engine.metrics t).S.Metrics.hits;
  Engine.shutdown t

(* --- engine: certmsg checks, both framings, byte-identical verdicts --- *)

let fixture_certmsg fmt =
  Base64.encode
    (Certmsg.encode (Certmsg.of_certs fmt (fixture_record ()).Population.chain))

let engine_certmsg_both_framings () =
  let t = Engine.create ~env:(make_env ()) () in
  let r = fixture_record () in
  let domain = r.Population.domain in
  (* Same chain, two wire encodings, same request id: the responses must be
     byte-identical, and the second must be a cache hit (one shared verdict
     key regardless of framing). *)
  let r12 =
    Engine.handle_frame t
      (check_frame ~domain ~certmsg:(fixture_certmsg Certmsg.Tls12)
         ~format:"1.2" ())
  in
  let r13 =
    Engine.handle_frame t
      (check_frame ~domain ~certmsg:(fixture_certmsg Certmsg.Tls13)
         ~format:"1.3" ())
  in
  Alcotest.(check string) "verdicts byte-identical across framings" r12 r13;
  (* auto-detection (no "format") resolves both encodings too *)
  let auto12 =
    Engine.handle_frame t
      (check_frame ~domain ~certmsg:(fixture_certmsg Certmsg.Tls12) ())
  in
  let auto13 =
    Engine.handle_frame t
      (check_frame ~domain ~certmsg:(fixture_certmsg Certmsg.Tls13) ())
  in
  Alcotest.(check string) "auto-detected 1.2" r12 auto12;
  Alcotest.(check string) "auto-detected 1.3" r12 auto13;
  (* and the PEM spelling of the same chain joins the same cache entry *)
  let via_pem = Engine.handle_frame t (check_frame ~domain ~pem:(fixture_pem ()) ()) in
  Alcotest.(check string) "pem serves same verdict" r12 via_pem;
  let m = Engine.metrics t in
  Alcotest.(check int) "one miss" 1 m.S.Metrics.misses;
  Alcotest.(check int) "four hits" 4 m.S.Metrics.hits;
  Alcotest.(check int) "one cached verdict" 1 (Engine.cache_size t);
  Engine.shutdown t

let engine_certmsg_errors () =
  let t = Engine.create ~env:(make_env ()) () in
  let expect frame = expect_error (Engine.handle_frame t frame) "malformed_certmsg" in
  (* not base64 *)
  expect (check_frame ~domain:"d.example" ~certmsg:"!!!" ());
  (* base64 of garbage bytes *)
  expect (check_frame ~domain:"d.example" ~certmsg:(Base64.encode "garbage") ());
  (* a valid message of zero certificates *)
  expect
    (check_frame ~domain:"d.example"
       ~certmsg:(Base64.encode (Certmsg.encode (Certmsg.of_certs Certmsg.Tls12 [])))
       ());
  (* declared framing contradicts the bytes *)
  expect
    (check_frame ~domain:"d.example" ~certmsg:(fixture_certmsg Certmsg.Tls13)
       ~format:"1.2" ());
  Engine.shutdown t

let engine_certmsg_default_format () =
  (* An engine pinned to 1.2 parses undeclared certmsg checks under that
     framing only; an explicit "format" still overrides. *)
  let t = Engine.create ~env:(make_env ()) ~default_format:Certmsg.Tls12 () in
  let r = fixture_record () in
  let domain = r.Population.domain in
  let ok =
    Engine.handle_frame t
      (check_frame ~domain ~certmsg:(fixture_certmsg Certmsg.Tls12) ())
  in
  (match response_field ok "ok" with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail ("1.2 certmsg under 1.2 default failed: " ^ ok));
  expect_error
    (Engine.handle_frame t
       (check_frame ~domain ~certmsg:(fixture_certmsg Certmsg.Tls13) ()))
    "malformed_certmsg";
  let explicit =
    Engine.handle_frame t
      (check_frame ~domain ~certmsg:(fixture_certmsg Certmsg.Tls13)
         ~format:"1.3" ())
  in
  Alcotest.(check string) "explicit format overrides the default" ok explicit;
  Engine.shutdown t

(* --- engine: verdict content sanity --- *)

let engine_verdict_fields () =
  let t = Engine.create ~env:(make_env ()) () in
  let response = Engine.handle_frame t (check_frame ~scenario:"fixture" ()) in
  (match response_field response "ok" with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail ("not ok: " ^ response));
  (match response_field response "verdict" with
  | Some verdict ->
      let has k =
        match Json.member k verdict with
        | Some _ -> ()
        | None -> Alcotest.fail ("verdict lacks " ^ k)
      in
      List.iter has [ "domain"; "chain"; "options"; "compliance"; "difftest"; "recommend" ];
      (match Json.member "difftest" verdict with
      | Some d -> (
          match Option.bind (Json.member "clients" d) Json.get_list with
          | Some clients ->
              Alcotest.(check int) "eight clients" 8 (List.length clients)
          | None -> Alcotest.fail "difftest.clients missing")
      | None -> assert false)
  | None -> Alcotest.fail "no verdict");
  Engine.shutdown t

(* --- engine: micro-batch coalescing + jobs invariance --- *)

let batch_frames () =
  let r = fixture_record () in
  let pem = fixture_pem () in
  [ check_frame ~id:"b1" ~domain:r.Population.domain ~pem ();
    check_frame ~id:"b2" ~domain:r.Population.domain ~pem ();  (* same key *)
    check_frame ~id:"b3" ~domain:"other.example" ~pem ();       (* new key *)
    check_frame ~id:"b4" ~scenario:"fixture" () ]               (* same as b1 *)

let run_batch ~jobs =
  let t = Engine.create ~env:(make_env ()) ~batch:8 ~jobs () in
  List.iter
    (fun f ->
      match Engine.admit t f with
      | `Admitted -> ()
      | `Rejected _ -> Alcotest.fail "unexpected rejection")
    (batch_frames ());
  let responses = Engine.drain t in
  let m = Engine.metrics t in
  Engine.shutdown t;
  (responses, m)

let engine_batch_coalesces () =
  let responses, m = run_batch ~jobs:1 in
  Alcotest.(check int) "all answered" 4 (List.length responses);
  (* b1/b2/b4 share one verdict computation; b3 is distinct *)
  Alcotest.(check int) "two misses" 2 m.S.Metrics.misses;
  Alcotest.(check int) "two coalesced hits" 2 m.S.Metrics.hits;
  let verdict_of r =
    match response_field r "verdict" with
    | Some v -> Json.to_string v
    | None -> Alcotest.fail ("no verdict in " ^ r)
  in
  match responses with
  | [ r1; r2; _r3; r4 ] ->
      Alcotest.(check string) "coalesced identical" (verdict_of r1) (verdict_of r2);
      Alcotest.(check string) "scenario joined too" (verdict_of r1) (verdict_of r4)
  | _ -> Alcotest.fail "response count"

let engine_jobs_invariant () =
  let r1, m1 = run_batch ~jobs:1 in
  let r4, m4 = run_batch ~jobs:4 in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string) (Printf.sprintf "response %d" i) a b)
    (List.combine r1 r4 |> List.map (fun x -> x));
  Alcotest.(check int) "same hits" m1.S.Metrics.hits m4.S.Metrics.hits;
  Alcotest.(check int) "same misses" m1.S.Metrics.misses m4.S.Metrics.misses

(* --- engine: admission-queue overload --- *)

let engine_overload_rejects () =
  let t = Engine.create ~env:(make_env ()) ~queue_capacity:2 ~batch:8 () in
  let frame i = check_frame ~id:(Printf.sprintf "o%d" i) ~scenario:"fixture" () in
  (match Engine.admit t (frame 1) with `Admitted -> () | _ -> Alcotest.fail "1st");
  (match Engine.admit t (frame 2) with `Admitted -> () | _ -> Alcotest.fail "2nd");
  (match Engine.admit t (frame 3) with
  | `Rejected response ->
      expect_error response "overloaded";
      (match response_field response "id" with
      | Some (Json.String id) -> Alcotest.(check string) "id echoed" "o3" id
      | _ -> Alcotest.fail "no id in rejection")
  | `Admitted -> Alcotest.fail "queue bound not enforced");
  Alcotest.(check int) "two pending" 2 (Engine.pending t);
  let responses = Engine.drain t in
  Alcotest.(check int) "both served after drain" 2 (List.length responses);
  Alcotest.(check int) "queue empty" 0 (Engine.pending t);
  (* capacity is free again *)
  (match Engine.admit t (frame 4) with `Admitted -> () | _ -> Alcotest.fail "4th");
  let m = Engine.metrics t in
  Alcotest.(check int) "one reject" 1 m.S.Metrics.rejects;
  Alcotest.(check int) "admissions counted" 3 m.S.Metrics.requests;
  Engine.shutdown t

(* --- serve loop over the in-memory transport --- *)

let serve_loop_mem () =
  let t = Engine.create ~env:(make_env ()) ~batch:2 ~jobs:2 () in
  let frames =
    [ check_frame ~id:"m1" ~scenario:"fixture" ();
      check_frame ~id:"m2" ~scenario:"fixture" ();
      "garbage frame";
      Json.to_string (Json.Obj [ ("id", Json.String "m3"); ("op", Json.String "stats") ]) ]
  in
  let conn = S.Transport.Mem.make frames in
  Engine.serve t (module S.Transport.Mem) conn;
  Engine.shutdown t;
  let out = S.Transport.Mem.output conn in
  Alcotest.(check int) "four replies" 4 (List.length out);
  (* stats is the last reply and reflects the whole stream *)
  let stats = List.nth out 3 in
  (match response_field stats "stats" with
  | Some s ->
      let get k =
        match Json.member k s with
        | Some (Json.Int i) -> i
        | _ -> Alcotest.fail ("stats lacks " ^ k)
      in
      Alcotest.(check int) "hits" 1 (get "hits");
      Alcotest.(check int) "misses" 1 (get "misses");
      Alcotest.(check int) "errors" 1 (get "errors");
      Alcotest.(check int) "rejects" 0 (get "rejects")
  | None -> Alcotest.fail ("no stats in " ^ stats));
  match out with
  | r1 :: r2 :: rbad :: _ ->
      Alcotest.(check string) "m1/m2 verdicts identical"
        (Json.to_string (Option.get (response_field r1 "verdict")))
        (Json.to_string (Option.get (response_field r2 "verdict")));
      expect_error rbad "malformed_frame"
  | _ -> Alcotest.fail "reply order"

(* --- pipeline pool (tentpole refactor): reuse across batches --- *)

let pool_reusable () =
  let pool = Pipeline.Pool.create ~jobs:4 in
  let total = ref 0 in
  let lock = Mutex.create () in
  for round = 1 to 5 do
    let n = 100 * round in
    let acc = Array.make n 0 in
    Pipeline.Pool.run pool n (fun i -> acc.(i) <- i + round);
    let sum = Array.fold_left ( + ) 0 acc in
    Mutex.lock lock;
    total := !total + sum;
    Mutex.unlock lock;
    Alcotest.(check int)
      (Printf.sprintf "round %d" round)
      ((n * (n - 1) / 2) + (n * round))
      sum
  done;
  (* exceptions surface from run and do not poison the pool *)
  (match Pipeline.Pool.run pool 8 (fun i -> if i = 3 then failwith "boom") with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure msg -> Alcotest.(check string) "propagated" "boom" msg);
  let arr = Array.make 16 0 in
  Pipeline.Pool.run pool 16 (fun i -> arr.(i) <- 1);
  Alcotest.(check int) "pool still works" 16 (Array.fold_left ( + ) 0 arr);
  Pipeline.Pool.shutdown pool

(* --- satellite: degenerate LRU capacities --- *)

let lru_degenerate_capacities () =
  (* capacity 0: a valid cache that never holds anything *)
  let l0 = S.Lru.create ~capacity:0 in
  S.Lru.add l0 "k" 1;
  S.Lru.add l0 "k" 2;
  Alcotest.(check int) "cap 0 stays empty" 0 (S.Lru.size l0);
  Alcotest.(check (option int)) "cap 0 always misses" None (S.Lru.find l0 "k");
  Alcotest.(check int) "cap 0 never evicts" 0 (S.Lru.evictions l0);
  (* capacity 1: every insert of a new key displaces the old one *)
  let l1 = S.Lru.create ~capacity:1 in
  S.Lru.add l1 "a" 1;
  Alcotest.(check (option int)) "single entry" (Some 1) (S.Lru.find l1 "a");
  S.Lru.add l1 "b" 2;
  Alcotest.(check int) "still one entry" 1 (S.Lru.size l1);
  Alcotest.(check bool) "a displaced" false (S.Lru.mem l1 "a");
  S.Lru.add l1 "b" 22;
  Alcotest.(check (option int)) "update in place" (Some 22) (S.Lru.find l1 "b");
  Alcotest.(check int) "one eviction" 1 (S.Lru.evictions l1);
  Alcotest.(check (list string)) "mru list" [ "b" ] (S.Lru.keys_mru_first l1);
  match S.Lru.create ~capacity:(-1) with
  | _ -> Alcotest.fail "negative capacity accepted"
  | exception Invalid_argument _ -> ()

(* --- satellite: astral-plane JSON round-trips --- *)

let utf8_of_astral cp =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (0xF0 lor (cp lsr 18)));
  Bytes.set b 1 (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
  Bytes.set b 2 (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
  Bytes.set b 3 (Char.chr (0x80 lor (cp land 0x3F)));
  Bytes.to_string b

let qcheck_json_astral =
  QCheck.Test.make ~name:"astral code points survive surrogate decoding"
    ~count:300
    QCheck.(int_range 0x10000 0x10FFFF)
    (fun cp ->
      let u = cp - 0x10000 in
      let hi = 0xD800 lor (u lsr 10) and lo = 0xDC00 lor (u land 0x3FF) in
      let text = Printf.sprintf "\"\\u%04x\\u%04x\"" hi lo in
      match Json.of_string text with
      | Ok (Json.String s) ->
          (* the surrogate pair decodes to the 4-byte UTF-8 sequence ... *)
          String.equal s (utf8_of_astral cp)
          (* ... and the encoder emits something that parses back to it *)
          && (match Json.of_string (Json.to_string (Json.String s)) with
             | Ok (Json.String s') -> String.equal s s'
             | _ -> false)
      | _ -> false)

(* --- satellite: scripted engine clock makes latency deterministic --- *)

let engine_scripted_clock () =
  let script = ref [ 100.0; 100.010; 200.0; 200.0025 ] in
  let now () =
    match !script with
    | [] -> Alcotest.fail "clock consulted more often than scripted"
    | t :: rest ->
        script := rest;
        t
  in
  let t = Engine.create ~env:(make_env ()) ~now () in
  (* miss: timed (ticks 1-2); hit: served without consulting the clock *)
  let cold = Engine.handle_frame t (check_frame ~scenario:"fixture" ()) in
  let hot = Engine.handle_frame t (check_frame ~scenario:"fixture" ()) in
  Alcotest.(check string) "clock does not leak into verdicts" cold hot;
  (* stats: timed (ticks 3-4) *)
  let _ =
    Engine.handle_frame t
      (Json.to_string (Json.Obj [ ("op", Json.String "stats") ]))
  in
  let m = Engine.metrics t in
  Engine.shutdown t;
  Alcotest.(check int) "two timed services" 2 m.S.Metrics.lat_count;
  Alcotest.(check (float 1e-6)) "mean from the script" 6.25 m.S.Metrics.lat_mean_ms;
  Alcotest.(check (float 1e-6)) "max from the script" 10.0 m.S.Metrics.lat_max_ms;
  Alcotest.(check bool) "script fully consumed" true (!script = [])

(* --- satellite: bounded request lines --- *)

let transport_overlong_mem () =
  let conn =
    S.Transport.Mem.make ~max_frame:8 [ "short"; "waaaay too long"; "ok" ]
  in
  let next () = S.Transport.Mem.recv conn ~block:false in
  (match next () with `Frame "short" -> () | _ -> Alcotest.fail "first frame");
  (match next () with `Overlong -> () | _ -> Alcotest.fail "overlong frame");
  (match next () with `Frame "ok" -> () | _ -> Alcotest.fail "after overlong");
  match next () with `Eof -> () | _ -> Alcotest.fail "eof"

let transport_overlong_fd () =
  let r, w = Unix.pipe () in
  let devnull = open_out Filename.null in
  let conn = S.Transport.Fd.make ~max_frame:32 r devnull in
  let wr s = ignore (Unix.write_substring w s 0 (String.length s)) in
  (* one line far past the bound, then a short one, then an overlong line
     assembled from two writes, then a short tail *)
  wr (String.make 200 'x');
  wr "\n";
  wr "hello\n";
  wr (String.make 40 'y');
  wr (String.make 40 'y');
  wr "\ntail\n";
  Unix.close w;
  let next () = S.Transport.Fd.recv conn ~block:true in
  (match next () with
  | `Overlong -> ()
  | _ -> Alcotest.fail "long line not reported");
  (match next () with
  | `Frame "hello" -> ()
  | _ -> Alcotest.fail "short line after overlong");
  (match next () with
  | `Overlong -> ()
  | _ -> Alcotest.fail "split overlong not reported");
  (match next () with
  | `Frame "tail" -> ()
  | _ -> Alcotest.fail "tail after second overlong");
  (match next () with `Eof -> () | _ -> Alcotest.fail "eof");
  (* a closed connection stays closed *)
  (match next () with `Eof -> () | _ -> Alcotest.fail "eof is sticky");
  close_out devnull;
  Unix.close r

let serve_overlong_reply () =
  let t = Engine.create ~env:(make_env ()) () in
  let frames =
    [ String.make 300 'z'; check_frame ~id:"s1" ~scenario:"fixture" () ]
  in
  let conn = S.Transport.Mem.make ~max_frame:200 frames in
  Engine.serve t (module S.Transport.Mem) conn;
  Engine.shutdown t;
  (match S.Transport.Mem.output conn with
  | [ r1; r2 ] ->
      expect_error r1 "overlong";
      (match response_field r2 "ok" with
      | Some (Json.Bool true) -> ()
      | _ -> Alcotest.fail "check after overlong failed")
  | out -> Alcotest.fail (Printf.sprintf "%d replies" (List.length out)));
  let m = Engine.metrics t in
  Alcotest.(check int) "overlong counted as error" 1 m.S.Metrics.errors;
  Alcotest.(check int) "check still served" 1 m.S.Metrics.misses

(* --- fd transport: peer disconnect must not kill the process --- *)

let transport_fd_disconnect () =
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.signal Sys.sigpipe prev))
    (fun () ->
      let in_r, in_w = Unix.pipe () in
      let out_r, out_w = Unix.pipe () in
      let out = Unix.out_channel_of_descr out_w in
      let conn = S.Transport.Fd.make in_r out in
      (* happy path first: a reply reaches the peer *)
      S.Transport.Fd.send conn "first";
      let buf = Bytes.create 64 in
      let n = Unix.read out_r buf 0 64 in
      Alcotest.(check string) "delivered" "first\n" (Bytes.sub_string buf 0 n);
      (* the peer hangs up; with SIGPIPE ignored the next write raises
         EPIPE, which must mark the connection dead instead of escaping *)
      Unix.close out_r;
      S.Transport.Fd.send conn "into the void";
      S.Transport.Fd.send conn "still no crash";
      (match S.Transport.Fd.recv conn ~block:false with
      | `Eof -> ()
      | _ -> Alcotest.fail "disconnected conn must answer Eof");
      ignore (Unix.write_substring in_w "late\n" 0 5);
      (match S.Transport.Fd.recv conn ~block:false with
      | `Eof -> ()
      | _ -> Alcotest.fail "Eof is sticky after disconnect");
      Unix.close in_r;
      Unix.close in_w;
      close_out_noerr out)

(* --- metrics: tail quantiles --- *)

let metrics_quantiles () =
  let m = S.Metrics.create () in
  (* 90 fast, 9 medium, 1 slow: the quantiles land in known buckets *)
  for _ = 1 to 90 do S.Metrics.observe_latency m 0.00004 done;
  for _ = 1 to 9 do S.Metrics.observe_latency m 0.0002 done;
  S.Metrics.observe_latency m 0.03;
  let s = S.Metrics.snapshot m in
  Alcotest.(check int) "count" 100 s.S.Metrics.lat_count;
  Alcotest.(check (float 1e-9)) "p50" 0.05 s.S.Metrics.lat_p50_ms;
  Alcotest.(check (float 1e-9)) "p90" 0.05 s.S.Metrics.lat_p90_ms;
  Alcotest.(check (float 1e-9)) "p95" 0.25 s.S.Metrics.lat_p95_ms;
  Alcotest.(check (float 1e-9)) "p99" 0.25 s.S.Metrics.lat_p99_ms;
  Alcotest.(check (float 1e-9)) "p999" 50.0 s.S.Metrics.lat_p999_ms;
  Alcotest.(check (float 1e-6)) "max" 30.0 s.S.Metrics.lat_max_ms;
  let empty = S.Metrics.snapshot (S.Metrics.create ()) in
  Alcotest.(check (float 0.0)) "empty p999" 0.0 empty.S.Metrics.lat_p999_ms

(* --- engine: tagged submission for the netd front end --- *)

let engine_tagged_submit () =
  let t = Engine.create ~env:(make_env ()) () in
  Alcotest.(check bool) "room before" true (Engine.can_admit t);
  let frame k = check_frame ~id:(Printf.sprintf "t%d" k) ~scenario:"fixture" () in
  List.iter
    (fun k ->
      match Engine.submit t ~tag:(100 + k) (frame k) with
      | `Admitted -> ()
      | `Rejected _ -> Alcotest.fail "unexpected rejection")
    [ 0; 1; 2 ];
  Alcotest.(check int) "pending" 3 (Engine.pending t);
  let replies = Engine.drain_tagged t in
  Alcotest.(check (list int)) "tags in request order" [ 100; 101; 102 ]
    (List.map fst replies);
  List.iteri
    (fun k (_, response) ->
      match response_field response "id" with
      | Some (Json.String id) ->
          Alcotest.(check string) "id echoed" (Printf.sprintf "t%d" k) id
      | _ -> Alcotest.fail "no id in tagged reply")
    replies;
  (* stats replies surface the new tail quantiles *)
  (match Engine.drain t with
  | [] -> ()
  | _ -> Alcotest.fail "queue should be empty");
  (match Engine.submit t ~tag:7 "{\"id\":\"s\",\"op\":\"stats\"}" with
  | `Admitted -> ()
  | `Rejected _ -> Alcotest.fail "stats rejected");
  (match Engine.drain_tagged t with
  | [ (7, response) ] ->
      let stats =
        match response_field response "stats" with
        | Some s -> s
        | None -> Alcotest.fail "no stats payload"
      in
      let lat =
        match Json.member "latency_ms" stats with
        | Some l -> l
        | None -> Alcotest.fail "no latency_ms block"
      in
      List.iter
        (fun key ->
          if Json.member key lat = None then
            Alcotest.fail ("stats latency block lacks " ^ key))
        [ "p50"; "p90"; "p95"; "p99"; "p999" ]
  | _ -> Alcotest.fail "tagged stats reply expected");
  expect_error (Engine.overlong_response t) "overlong";
  Engine.shutdown t

let suite =
  [ Alcotest.test_case "json round-trip" `Quick json_round_trip;
    Alcotest.test_case "json decode escapes" `Quick json_decode_escapes;
    Alcotest.test_case "json rejects malformed" `Quick json_rejects_malformed;
    Alcotest.test_case "protocol round-trip" `Quick proto_round_trip;
    Alcotest.test_case "protocol certmsg round-trip" `Quick proto_certmsg_round_trip;
    Alcotest.test_case "protocol rejects malformed" `Quick proto_rejects_malformed;
    Alcotest.test_case "lru capacity bound" `Quick lru_capacity_bound;
    Alcotest.test_case "lru eviction order" `Quick lru_eviction_order;
    Alcotest.test_case "engine error replies" `Slow engine_error_replies;
    Alcotest.test_case "cache hit byte-identical" `Slow engine_hit_identical;
    Alcotest.test_case "certmsg both framings" `Slow engine_certmsg_both_framings;
    Alcotest.test_case "certmsg error replies" `Slow engine_certmsg_errors;
    Alcotest.test_case "certmsg default format" `Slow engine_certmsg_default_format;
    Alcotest.test_case "verdict fields" `Slow engine_verdict_fields;
    Alcotest.test_case "micro-batch coalescing" `Slow engine_batch_coalesces;
    Alcotest.test_case "jobs-invariant responses" `Slow engine_jobs_invariant;
    Alcotest.test_case "overload rejection" `Slow engine_overload_rejects;
    Alcotest.test_case "serve loop (mem transport)" `Slow serve_loop_mem;
    Alcotest.test_case "pipeline pool reusable" `Quick pool_reusable;
    Alcotest.test_case "lru degenerate capacities" `Quick lru_degenerate_capacities;
    QCheck_alcotest.to_alcotest qcheck_json_astral;
    Alcotest.test_case "scripted engine clock" `Slow engine_scripted_clock;
    Alcotest.test_case "overlong line (mem transport)" `Quick transport_overlong_mem;
    Alcotest.test_case "overlong line (fd transport)" `Quick transport_overlong_fd;
    Alcotest.test_case "overlong reply from serve" `Slow serve_overlong_reply;
    Alcotest.test_case "fd transport survives disconnect" `Quick
      transport_fd_disconnect;
    Alcotest.test_case "metrics tail quantiles" `Quick metrics_quantiles;
    Alcotest.test_case "tagged submit/drain" `Slow engine_tagged_submit ]
