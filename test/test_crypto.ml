open Chaoschain_crypto

let check_hex = Alcotest.(check string)

(* FIPS 180-4 / NIST CAVS vectors. *)
let sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hexdigest "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hexdigest "abc");
  check_hex "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hexdigest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "896-bit two-block"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Sha256.hexdigest
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu");
  check_hex "million-a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hexdigest (String.make 1_000_000 'a'))

let sha256_streaming_splits () =
  (* Two-part feeds at every interesting split point equal the one-shot
     digest; exercises the partial-block, whole-block and tail paths of
     [feed_bytes]. *)
  let msg = String.init 300 (fun i -> Char.chr ((i * 11) land 0xFF)) in
  List.iter
    (fun cut ->
      let ctx = Sha256.init () in
      Sha256.feed ctx (String.sub msg 0 cut);
      Sha256.feed ctx (String.sub msg cut (String.length msg - cut));
      Alcotest.(check string)
        (Printf.sprintf "split at %d" cut)
        (Hex.encode (Sha256.digest msg))
        (Hex.encode (Sha256.finalize ctx)))
    [ 0; 1; 17; 55; 56; 63; 64; 65; 100; 128; 192; 256; 299; 300 ]

let sha256_digest_sub () =
  let s = String.init 200 (fun i -> Char.chr ((i * 13) land 0xFF)) in
  List.iter
    (fun (off, len) ->
      Alcotest.(check string)
        (Printf.sprintf "window %d+%d" off len)
        (Hex.encode (Sha256.digest (String.sub s off len)))
        (Hex.encode (Sha256.digest_sub s off len)))
    [ (0, 0); (0, 200); (1, 64); (3, 65); (100, 100); (199, 1) ];
  Alcotest.check_raises "negative offset" (Invalid_argument "Sha256.digest_sub")
    (fun () -> ignore (Sha256.digest_sub s (-1) 4));
  Alcotest.check_raises "overrun" (Invalid_argument "Sha256.digest_sub")
    (fun () -> ignore (Sha256.digest_sub s 150 51))

let sha256_block_boundaries () =
  (* Lengths straddling the 55/56/64-byte padding boundaries. *)
  List.iter
    (fun n ->
      let s = String.make n 'q' in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.feed ctx (String.make 1 c)) s;
      Alcotest.(check string)
        (Printf.sprintf "len %d incremental == one-shot" n)
        (Hex.encode (Sha256.digest s))
        (Hex.encode (Sha256.finalize ctx)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 127; 128; 129 ]

let sha256_feed_bytes_bounds () =
  let ctx = Sha256.init () in
  Alcotest.check_raises "negative offset" (Invalid_argument "Sha256.feed_bytes")
    (fun () -> Sha256.feed_bytes ctx (Bytes.create 4) (-1) 2);
  Alcotest.check_raises "overrun" (Invalid_argument "Sha256.feed_bytes") (fun () ->
      Sha256.feed_bytes ctx (Bytes.create 4) 2 3)

let sha256_finalize_once () =
  let ctx = Sha256.init () in
  Sha256.feed ctx "x";
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "reuse rejected"
    (Invalid_argument "Sha256: context already finalized") (fun () ->
      ignore (Sha256.finalize ctx))

let hex_roundtrip () =
  Alcotest.(check string) "encode" "00ff10ab" (Hex.encode "\x00\xff\x10\xab");
  Alcotest.(check string) "decode" "\x00\xff" (Hex.decode_exn "00FF");
  Alcotest.(check bool) "odd length" true (Result.is_error (Hex.decode "abc"));
  Alcotest.(check bool) "bad digit" true (Result.is_error (Hex.decode "zz"))

let prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done;
  let c = Prng.create 43L in
  Alcotest.(check bool) "different seed differs" true
    (Prng.next_int64 (Prng.create 42L) <> Prng.next_int64 c)

let prng_ranges () =
  let g = Prng.of_label "ranges" in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 7);
    let w = Prng.int_in g (-3) 3 in
    Alcotest.(check bool) "int_in range" true (w >= -3 && w <= 3);
    let f = Prng.float g in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let prng_shuffle_is_permutation () =
  let g = Prng.of_label "shuffle" in
  let original = List.init 50 Fun.id in
  let shuffled = Prng.shuffle_list g original in
  Alcotest.(check (list int)) "same multiset" original (List.sort compare shuffled)

let keys_sign_verify () =
  let g = Prng.of_label "keys" in
  let priv = Keys.generate g Keys.Rsa_2048 in
  let pub = Keys.public_of_private priv in
  let s = Keys.sign priv "hello" in
  Alcotest.(check bool) "verifies" true (Keys.verify pub "hello" s);
  Alcotest.(check bool) "wrong message" false (Keys.verify pub "hellp" s);
  let other = Keys.public_of_private (Keys.generate g Keys.Rsa_2048) in
  Alcotest.(check bool) "wrong key" false (Keys.verify other "hello" s);
  let forged = Keys.forge_garbage g Keys.Rsa_2048 in
  Alcotest.(check bool) "forged fails" false (Keys.verify pub "hello" forged)

let keys_import () =
  let g = Prng.of_label "import" in
  let pub = Keys.public_of_private (Keys.generate g Keys.Ecdsa_p256) in
  (match Keys.import_public Keys.Ecdsa_p256 pub.Keys.material with
  | Ok p -> Alcotest.(check bool) "same key" true (Keys.equal_public p pub)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "bad length rejected" true
    (Result.is_error (Keys.import_public Keys.Ecdsa_p256 "short"))

let keys_ids () =
  let g = Prng.of_label "ids" in
  let pub = Keys.public_of_private (Keys.generate g Keys.Rsa_4096) in
  Alcotest.(check int) "key id is 20 bytes" 20 (String.length (Keys.key_id pub));
  Alcotest.(check int) "fingerprint is 32 bytes" 32 (String.length (Keys.fingerprint pub));
  Alcotest.(check bool) "deprecated flag" true (Keys.algorithm_deprecated Keys.Rsa_1024);
  Alcotest.(check bool) "modern not deprecated" false
    (Keys.algorithm_deprecated Keys.Ecdsa_p384)

let qcheck_hex =
  QCheck.Test.make ~name:"hex decode . encode = id" ~count:200
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> Hex.decode_exn (Hex.encode s) = s)

let qcheck_b64_alphabet =
  QCheck.Test.make ~name:"sha256 output always 32 bytes" ~count:100
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s -> String.length (Sha256.digest s) = 32)

let suite =
  [ Alcotest.test_case "sha256 FIPS vectors" `Quick sha256_vectors;
    Alcotest.test_case "sha256 incremental boundaries" `Quick sha256_block_boundaries;
    Alcotest.test_case "sha256 streaming splits" `Quick sha256_streaming_splits;
    Alcotest.test_case "sha256 digest_sub" `Quick sha256_digest_sub;
    Alcotest.test_case "sha256 feed bounds" `Quick sha256_feed_bytes_bounds;
    Alcotest.test_case "sha256 finalize once" `Quick sha256_finalize_once;
    Alcotest.test_case "hex roundtrip and errors" `Quick hex_roundtrip;
    Alcotest.test_case "prng deterministic" `Quick prng_deterministic;
    Alcotest.test_case "prng ranges" `Quick prng_ranges;
    Alcotest.test_case "prng shuffle permutes" `Quick prng_shuffle_is_permutation;
    Alcotest.test_case "keys sign/verify" `Quick keys_sign_verify;
    Alcotest.test_case "keys import" `Quick keys_import;
    Alcotest.test_case "key identifiers" `Quick keys_ids;
    QCheck_alcotest.to_alcotest qcheck_hex;
    QCheck_alcotest.to_alcotest qcheck_b64_alphabet ]
