(* chainstore (lib/store): CRC-32 vectors, frame codec round-trip and
   damage taxonomy, Merkle proofs across tree shapes (layered tree and
   frontier pinned against the recursive RFC 6962 definition), offset-index
   round-trip and damage taxonomy (the segment always wins over its index),
   store writer/reader round-trip with content-address deduplication,
   random access and inclusion proofs with and without the persisted
   sidecars, certificate-segment compaction, corpus save -> load -> replay
   byte-identity (jobs-invariant), truncated-tail crash recovery via audit,
   and warm-store cache pre-fill. *)

open Chaoschain_measurement
module Store = Chaoschain_store.Store
module Frame = Chaoschain_store.Frame
module Merkle = Chaoschain_store.Merkle
module Crc32 = Chaoschain_store.Crc32
module Index = Chaoschain_store.Index
module Sha256 = Chaoschain_crypto.Sha256
module Hex = Chaoschain_crypto.Hex
module S = Chaoschain_service
module Engine = S.Engine

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "chainstore-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (try
       Array.iter
         (fun f -> Sys.remove (Filename.concat dir f))
         (Sys.readdir dir)
     with Sys_error _ -> ());
    dir

(* --- CRC-32 --- *)

let crc_vectors () =
  (* The standard check value, plus a couple of knowns. *)
  Alcotest.(check int) "empty" 0 (Crc32.digest "");
  Alcotest.(check int) "check value" 0xCBF43926 (Crc32.digest "123456789");
  Alcotest.(check int) "single byte" 0xE8B7BE43 (Crc32.digest "a");
  Alcotest.(check int) "sub = whole" (Crc32.digest "456")
    (Crc32.digest_sub "123456789" 3 3);
  (match Crc32.digest_sub "abc" 2 2 with
  | _ -> Alcotest.fail "out-of-range accepted"
  | exception Invalid_argument _ -> ())

let qcheck_crc_sub =
  QCheck.Test.make ~name:"digest_sub agrees with digest of the copy" ~count:200
    QCheck.(
      triple (string_of_size Gen.(0 -- 64)) small_nat small_nat)
    (fun (s, a, b) ->
      let n = String.length s in
      let off = if n = 0 then 0 else a mod (n + 1) in
      let len = if n - off = 0 then 0 else b mod (n - off + 1) in
      Crc32.digest_sub s off len = Crc32.digest (String.sub s off len))

(* --- frame codec --- *)

let frame_payloads = [ (1, ""); (1, "x"); (2, String.make 300 '\xff'); (3, "der bytes") ]

let frame_segment () =
  let b = Buffer.create 64 in
  List.iter (fun (kind, p) -> Frame.add b ~kind p) frame_payloads;
  Buffer.contents b

let frame_round_trip () =
  let seg = frame_segment () in
  let frames, tail =
    Frame.fold seg ~init:[] ~f:(fun acc ~kind ~payload -> (kind, payload) :: acc)
  in
  (match tail with Frame.Clean -> () | _ -> Alcotest.fail "tail not clean");
  Alcotest.(check (list (pair int string))) "payloads preserved" frame_payloads
    (List.rev frames);
  (* stepping by hand agrees with fold *)
  match Frame.read seg 0 with
  | Frame.Frame { kind; payload; next } ->
      Alcotest.(check int) "kind" 1 kind;
      Alcotest.(check string) "payload" "" payload;
      Alcotest.(check int) "next" Frame.header_size next
  | _ -> Alcotest.fail "first frame unreadable"

let frame_truncated_tail () =
  let seg = frame_segment () in
  (* every strictly-shorter prefix that cuts a frame reports Truncated_at
     with the offset of the last whole frame *)
  let cut = String.sub seg 0 (String.length seg - 3) in
  let n_whole = ref 0 in
  let _, tail =
    Frame.fold cut ~init:() ~f:(fun () ~kind:_ ~payload:_ -> incr n_whole)
  in
  (match tail with
  | Frame.Truncated_at off ->
      Alcotest.(check int) "three whole frames" 3 !n_whole;
      (* offset points at the start of the partial frame *)
      (match Frame.read seg off with
      | Frame.Frame { kind = 3; payload = "der bytes"; _ } -> ()
      | _ -> Alcotest.fail "offset does not resume at the cut frame")
  | _ -> Alcotest.fail "truncation not detected");
  (* a bare partial header is also a truncated tail, not corruption *)
  match Frame.fold (String.sub seg 0 4) ~init:() ~f:(fun () ~kind:_ ~payload:_ -> ()) with
  | (), Frame.Truncated_at 0 -> ()
  | _ -> Alcotest.fail "partial header"

let frame_corruption () =
  let seg = Bytes.of_string (frame_segment ()) in
  (* flip one payload byte of the third frame *)
  let off = (3 * Frame.header_size) + 1 + 20 in
  Bytes.set seg off (Char.chr (Char.code (Bytes.get seg off) lxor 0xFF));
  let _, tail =
    Frame.fold (Bytes.to_string seg) ~init:() ~f:(fun () ~kind:_ ~payload:_ -> ())
  in
  match tail with
  | Frame.Corrupt_at (_, _) -> ()
  | _ -> Alcotest.fail "CRC damage not detected"

(* --- Merkle tree --- *)

let merkle_proofs_all_shapes () =
  for n = 1 to 17 do
    let leaves =
      Array.init n (fun i -> Merkle.leaf_hash (Printf.sprintf "record %d" i))
    in
    let root = Merkle.root leaves in
    for i = 0 to n - 1 do
      let path = Merkle.proof leaves i in
      if not (Merkle.verify ~root ~index:i ~count:n leaves.(i) path) then
        Alcotest.fail (Printf.sprintf "proof %d/%d rejected" i n);
      (* the proof binds the index: the same path fails elsewhere *)
      if n > 1 then begin
        let j = (i + 1) mod n in
        if Merkle.verify ~root ~index:j ~count:n leaves.(i) path then
          Alcotest.fail (Printf.sprintf "proof %d/%d verified at index %d" i n j)
      end;
      (* ... and the leaf *)
      if
        Merkle.verify ~root ~index:i ~count:n
          (Merkle.leaf_hash "someone else") path
        && n > 1
      then Alcotest.fail "foreign leaf accepted"
    done
  done

let merkle_domain_separation () =
  (* leaf and node prefixes differ, so a 64-byte payload that happens to be
     a concatenation of two hashes cannot be replayed as an interior node *)
  let a = Merkle.leaf_hash "a" and b = Merkle.leaf_hash "b" in
  let as_leaf = Merkle.leaf_hash (a ^ b) in
  let as_node = Merkle.node_hash a b in
  Alcotest.(check bool) "prefixes separate" false (String.equal as_leaf as_node);
  (* empty tree is the hash of the empty string *)
  Alcotest.(check string) "empty tree"
    (Chaoschain_crypto.Hex.encode (Chaoschain_crypto.Sha256.digest ""))
    (Chaoschain_crypto.Hex.encode (Merkle.root [||]))

(* --- Merkle: layered tree vs the recursive RFC 6962 definition --- *)

(* Straight transcription of RFC 6962 section 2.1: MTH splits at the
   largest power of two strictly below n. The layered Tree and the
   incremental Frontier must agree with this for every shape. *)
let ref_split n =
  let rec go k = if 2 * k < n then go (2 * k) else k in
  go 1

let rec ref_root leaves lo hi =
  match hi - lo with
  | 0 -> Sha256.digest ""
  | 1 -> leaves.(lo)
  | n ->
      let k = ref_split n in
      Merkle.node_hash (ref_root leaves lo (lo + k)) (ref_root leaves (lo + k) hi)

let rec ref_path leaves m lo hi =
  if hi - lo <= 1 then []
  else begin
    let k = ref_split (hi - lo) in
    if m < lo + k then ref_path leaves m lo (lo + k) @ [ ref_root leaves (lo + k) hi ]
    else ref_path leaves m (lo + k) hi @ [ ref_root leaves lo (lo + k) ]
  end

let merkle_tree_matches_reference () =
  for n = 1 to 33 do
    let leaves =
      Array.init n (fun i -> Merkle.leaf_hash (Printf.sprintf "ref %d/%d" i n))
    in
    let tree = Merkle.Tree.of_leaf_hashes leaves in
    let expect = ref_root leaves 0 n in
    Alcotest.(check string)
      (Printf.sprintf "tree root n=%d" n)
      (Hex.encode expect)
      (Hex.encode (Merkle.Tree.root tree));
    Alcotest.(check string)
      (Printf.sprintf "frontier root n=%d" n)
      (Hex.encode expect)
      (Hex.encode (Merkle.root leaves));
    for i = 0 to n - 1 do
      let got = Merkle.Tree.proof tree i in
      let want = ref_path leaves i 0 n in
      if not (List.equal String.equal got want) then
        Alcotest.fail (Printf.sprintf "path %d/%d differs from RFC 6962" i n)
    done
  done

let qcheck_frontier_vs_rebuild =
  QCheck.Test.make ~name:"frontier root = full rebuild root" ~count:100
    QCheck.(list_of_size Gen.(0 -- 200) (string_of_size Gen.(0 -- 24)))
    (fun payloads ->
      let leaves = Array.of_list (List.map Merkle.leaf_hash payloads) in
      let f = Merkle.Frontier.create () in
      Array.iter (Merkle.Frontier.add f) leaves;
      Merkle.Frontier.count f = Array.length leaves
      && String.equal (Merkle.Frontier.root f)
           (Merkle.Tree.root (Merkle.Tree.of_leaf_hashes leaves)))

let merkle_proof_edges () =
  (* empty tree: hash of the empty string, no leaves, no valid proofs *)
  let empty = Merkle.Tree.of_leaf_hashes [||] in
  Alcotest.(check int) "empty leaf count" 0 (Merkle.Tree.leaf_count empty);
  Alcotest.(check string) "empty root"
    (Hex.encode (Sha256.digest ""))
    (Hex.encode (Merkle.Tree.root empty));
  (match Merkle.Tree.proof empty 0 with
  | _ -> Alcotest.fail "proof out of an empty tree"
  | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "count 0 never verifies" false
    (Merkle.verify ~root:(Merkle.Tree.root empty) ~index:0 ~count:0
       (Merkle.leaf_hash "x") []);
  (* single leaf: the leaf hash IS the root and the path is empty *)
  let leaf = Merkle.leaf_hash "only" in
  let one = Merkle.Tree.of_leaf_hashes [| leaf |] in
  Alcotest.(check string) "single-leaf root" (Hex.encode leaf)
    (Hex.encode (Merkle.Tree.root one));
  Alcotest.(check (list string)) "single-leaf path is empty" []
    (Merkle.Tree.proof one 0);
  Alcotest.(check bool) "single-leaf proof verifies" true
    (Merkle.verify ~root:leaf ~index:0 ~count:1 leaf []);
  Alcotest.(check bool) "foreign leaf rejected" false
    (Merkle.verify ~root:leaf ~index:0 ~count:1 (Merkle.leaf_hash "other") []);
  Alcotest.(check bool) "padded path rejected" false
    (Merkle.verify ~root:leaf ~index:0 ~count:1 leaf [ leaf ]);
  (* short path: chopping the last element must not verify *)
  let leaves = Array.init 5 (fun i -> Merkle.leaf_hash (string_of_int i)) in
  let tree = Merkle.Tree.of_leaf_hashes leaves in
  let root = Merkle.Tree.root tree in
  let path = Merkle.Tree.proof tree 2 in
  Alcotest.(check bool) "full path ok" true
    (Merkle.verify ~root ~index:2 ~count:5 leaves.(2) path);
  let short = List.filteri (fun i _ -> i < List.length path - 1) path in
  Alcotest.(check bool) "short path rejected" false
    (Merkle.verify ~root ~index:2 ~count:5 leaves.(2) short)

let merkle_parallel_build_identical () =
  (* large enough to clear Par.min_parallel so the sliced code path runs *)
  let n = 5000 in
  let payloads = Array.init n (fun i -> Printf.sprintf "payload %06d" i) in
  let seq_tree = Merkle.Tree.of_payloads payloads in
  let pool = Pipeline.Pool.create ~jobs:3 in
  let par_tree =
    Fun.protect
      ~finally:(fun () -> Pipeline.Pool.shutdown pool)
      (fun () -> Merkle.Tree.of_payloads ~par:(Pipeline.Pool.run pool) payloads)
  in
  Alcotest.(check string) "parallel build is byte-identical"
    (Merkle.Tree.serialize seq_tree)
    (Merkle.Tree.serialize par_tree);
  (* serialization round-trips, and shape damage is a decode error *)
  let wire = Merkle.Tree.serialize seq_tree in
  (match Merkle.Tree.deserialize wire with
  | Ok t ->
      Alcotest.(check string) "round-trip root"
        (Hex.encode (Merkle.Tree.root seq_tree))
        (Hex.encode (Merkle.Tree.root t))
  | Error e -> Alcotest.fail ("deserialize: " ^ e));
  match Merkle.Tree.deserialize (String.sub wire 0 (String.length wire - 7)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated tree accepted"

(* --- offset index: round-trip, damage taxonomy, agreement probe --- *)

let index_round_trip () =
  let b = Buffer.create 256 in
  for i = 0 to 9 do
    Frame.add b ~kind:2 (Printf.sprintf "record %d body %s" i (String.make i 'z'))
  done;
  let seg = Buffer.contents b in
  let idx, tail = Index.of_segment seg in
  (match tail with Frame.Clean -> () | _ -> Alcotest.fail "segment not clean");
  Alcotest.(check int) "count" 10 idx.Index.count;
  Alcotest.(check int) "seg_len" (String.length seg) idx.Index.seg_len;
  (* encode/decode round-trip *)
  (match Index.decode (Index.encode idx) with
  | Ok idx' ->
      Alcotest.(check bool) "decode = encode^-1" true
        (idx'.Index.count = idx.Index.count
        && idx'.Index.seg_len = idx.Index.seg_len
        && idx'.Index.offsets = idx.Index.offsets)
  | Error e -> Alcotest.fail ("decode: " ^ e));
  (* the probe accepts the truthful index and rejects every lie *)
  Alcotest.(check bool) "agrees" true (Index.agrees idx seg ~kind:2);
  Alcotest.(check bool) "kind mismatch" false (Index.agrees idx seg ~kind:1);
  let shifted =
    { idx with Index.offsets = Array.map (fun o -> o + 1) idx.Index.offsets }
  in
  Alcotest.(check bool) "shifted offsets" false (Index.agrees shifted seg ~kind:2);
  (* save/load validates length and structure *)
  let path = Filename.temp_file "chainstore-idx" ".idx" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Index.save path idx;
      (match Index.load path ~seg_len:(String.length seg) with
      | Ok idx' -> Alcotest.(check int) "loaded count" 10 idx'.Index.count
      | Error e -> Alcotest.fail ("load: " ^ e));
      (match Index.load path ~seg_len:(String.length seg - 1) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "stale seg_len accepted");
      (* truncated sidecar is an error, not a crash *)
      let data =
        let ic = open_in_bin path in
        let d = really_input_string ic (in_channel_length ic) in
        close_in ic;
        d
      in
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 (String.length data - 3));
      close_out oc;
      match Index.load path ~seg_len:(String.length seg) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated sidecar accepted");
  match Index.load "/nonexistent/never.idx" ~seg_len:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing sidecar accepted"

(* --- store round-trip --- *)

let fake_der i = Printf.sprintf "not-really-DER-%04d-%s" i (String.make 40 'q')

let store_round_trip () =
  let dir = tmp_dir () in
  let w = Store.create dir in
  let fp0 = Store.add_cert w (fake_der 0) in
  let fp1 = Store.add_cert w (fake_der 1) in
  let fp0' = Store.add_cert w (fake_der 0) in
  Alcotest.(check string) "dedup returns same fp" fp0 fp0';
  Store.add_obs w "obs one";
  Store.add_obs w "obs two";
  Store.add_env w "env entry";
  let root = Store.close w ~scale:0.125 in
  match Store.open_ dir with
  | Error e -> Alcotest.fail ("strict open failed: " ^ e)
  | Ok t ->
      Alcotest.(check int) "two certs (dedup)" 2 (Store.cert_count t);
      Alcotest.(check (array string)) "obs order" [| "obs one"; "obs two" |]
        (Store.observations t);
      Alcotest.(check (array string)) "env order" [| "env entry" |]
        (Store.env_entries t);
      Alcotest.(check (option string)) "find_cert" (Some (fake_der 1))
        (Store.find_cert t fp1);
      Alcotest.(check (option string)) "unknown fp" None
        (Store.find_cert t (String.make 32 '\x00'));
      Alcotest.(check string) "root echoed" root (Store.root_hex t);
      (* 0.125 is representable: the hex-float manifest round-trips it *)
      Alcotest.(check (float 0.)) "scale exact" 0.125 (Store.scale t)

let store_rejects_tampering () =
  let dir = tmp_dir () in
  let w = Store.create dir in
  ignore (Store.add_cert w (fake_der 7));
  Store.add_obs w "only record";
  let _ = Store.close w ~scale:1.0 in
  (* flip a payload byte in obs.seg: strict open must refuse *)
  let path = Filename.concat dir "obs.seg" in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  let b = Bytes.of_string data in
  Bytes.set b (len - 1) (Char.chr (Char.code (Bytes.get b (len - 1)) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  (match Store.open_ dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered segment opened");
  (* audit agrees: interior damage is unrecoverable and nothing is rewritten *)
  let rep = Store.audit ~repair:true dir in
  Alcotest.(check bool) "unrecoverable" false rep.Store.a_ok;
  Alcotest.(check bool) "no destructive repair" false rep.Store.a_repaired

(* --- derived sidecars: the segment always wins over its index --- *)

let mk_small_store ?(n_obs = 50) dir =
  let w = Store.create dir in
  let fps = List.init 3 (fun i -> Store.add_cert w (fake_der i)) in
  for i = 0 to n_obs - 1 do
    Store.add_obs w (Printf.sprintf "observation %04d %s" i (String.make (i mod 7) 'o'))
  done;
  Store.add_env w "environment";
  let root = Store.close w ~scale:1.0 in
  (fps, root)

let read_bin path =
  let ic = open_in_bin path in
  let d = really_input_string ic (in_channel_length ic) in
  close_in ic;
  d

let write_bin path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let store_index_missing_and_truncated () =
  let dir = tmp_dir () in
  let _ = mk_small_store dir in
  let baseline =
    match Store.open_ dir with
    | Ok t -> Store.observations t
    | Error e -> Alcotest.fail e
  in
  let idx = Filename.concat dir "obs.idx" in
  (* missing sidecar: open falls back to the sequential scan, silently *)
  Sys.remove idx;
  (match Store.open_ dir with
  | Ok t ->
      Alcotest.(check (array string)) "open without index" baseline
        (Store.observations t)
  | Error e -> Alcotest.fail ("open without index: " ^ e));
  (* random access falls back to the sequential walk and still agrees *)
  (match (Store.read_record_at dir Store.Obs 3, Store.read_record_seq dir Store.Obs 3) with
  | Ok a, Ok b ->
      Alcotest.(check string) "fallback = sequential" b a;
      Alcotest.(check string) "fallback = in-memory" baseline.(3) a
  | _ -> Alcotest.fail "record 3 unreadable without index");
  (* a dry-run audit names the loss but rewrites nothing *)
  let dry = Store.audit ~repair:false dir in
  Alcotest.(check bool) "sidecar loss is not damage" true dry.Store.a_ok;
  Alcotest.(check bool) "dry run leaves it missing" false
    (dry.Store.a_repaired || Sys.file_exists idx);
  Alcotest.(check bool) "dry run names the index" true
    (List.exists
       (fun m ->
         String.length m >= 7 && String.sub m 0 7 = "obs.idx")
       dry.Store.a_messages);
  (* repair rebuilds it from the frames *)
  let rep = Store.audit ~repair:true dir in
  Alcotest.(check bool) "rebuild happened" true
    (rep.Store.a_ok && rep.Store.a_repaired && Sys.file_exists idx);
  let again = Store.audit ~repair:true dir in
  Alcotest.(check bool) "stable after rebuild" true
    (again.Store.a_ok && not again.Store.a_repaired);
  (* truncated sidecar: same story *)
  let data = read_bin idx in
  write_bin idx (String.sub data 0 (String.length data / 2));
  (match Store.open_ dir with
  | Ok t ->
      Alcotest.(check (array string)) "open over truncated index" baseline
        (Store.observations t)
  | Error e -> Alcotest.fail ("open over truncated index: " ^ e));
  let rep = Store.audit ~repair:true dir in
  Alcotest.(check bool) "truncated sidecar rebuilt" true
    (rep.Store.a_ok && rep.Store.a_repaired);
  Alcotest.(check string) "sidecar restored byte-for-byte" data (read_bin idx)

let store_index_disagreement () =
  let dir = tmp_dir () in
  let _ = mk_small_store dir in
  let baseline =
    match Store.open_ dir with
    | Ok t -> Store.observations t
    | Error e -> Alcotest.fail e
  in
  (* forge a structurally valid sidecar (strictly increasing offsets,
     correct count and length) whose record-1 offset points into the
     middle of a frame. Structure checks pass; only the against-the-frames
     probe can catch it. *)
  let idx_path = Filename.concat dir "obs.idx" in
  let seg = read_bin (Filename.concat dir "obs.seg") in
  let good, tail = Index.of_segment seg in
  (match tail with Frame.Clean -> () | _ -> Alcotest.fail "fixture not clean");
  let forged = Array.copy good.Index.offsets in
  forged.(1) <- good.Index.offsets.(1) + 5;
  assert (forged.(1) < good.Index.offsets.(2));
  Index.save idx_path { good with Index.offsets = forged };
  (* the forged sidecar must not leak into reads: segment wins *)
  (match Store.open_ dir with
  | Ok t ->
      Alcotest.(check (array string)) "forged index ignored" baseline
        (Store.observations t)
  | Error e -> Alcotest.fail ("open over forged index: " ^ e));
  (match Store.read_record_at dir Store.Obs 1 with
  | Ok p -> Alcotest.(check string) "record 1 is record 1" baseline.(1) p
  | Error e -> Alcotest.fail e);
  (* audit rebuilds the sidecar and says so *)
  let rep = Store.audit ~repair:true dir in
  Alcotest.(check bool) "disagreement repaired" true
    (rep.Store.a_ok && rep.Store.a_repaired);
  Alcotest.(check bool) "message names the rebuild" true
    (List.exists
       (fun m ->
         let n = String.length m in
         let rec find i =
           i + 7 <= n && (String.sub m i 7 = "rebuilt" || find (i + 1))
         in
         String.length m >= 7 && String.sub m 0 7 = "obs.idx" && find 0)
       rep.Store.a_messages);
  match Index.load idx_path ~seg_len:(String.length seg) with
  | Ok idx ->
      Alcotest.(check bool) "rebuilt sidecar agrees" true
        (Index.agrees idx seg ~kind:2)
  | Error e -> Alcotest.fail ("rebuilt sidecar: " ^ e)

(* --- random access + inclusion proofs, with and without tree.mrk --- *)

let store_random_access_and_proofs () =
  let dir = tmp_dir () in
  let n_obs = 13 in
  let fps, root_hex = mk_small_store ~n_obs dir in
  let t = match Store.open_ dir with Ok t -> t | Error e -> Alcotest.fail e in
  let obs = Store.observations t in
  (* indexed random access returns exactly the in-memory arrays *)
  for i = 0 to n_obs - 1 do
    match Store.read_record_at dir Store.Obs i with
    | Ok p -> Alcotest.(check string) (Printf.sprintf "obs %d" i) obs.(i) p
    | Error e -> Alcotest.fail e
  done;
  (match Store.read_record_at dir Store.Certs 0 with
  | Ok der -> Alcotest.(check string) "cert 0 der" (fake_der 0) der
  | Error e -> Alcotest.fail e);
  (match Store.read_record_at dir Store.Env 0 with
  | Ok p -> Alcotest.(check string) "env 0" "environment" p
  | Error e -> Alcotest.fail e);
  (match Store.read_record_at dir Store.Obs n_obs with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range read accepted");
  ignore fps;
  let raw_root =
    match Hex.decode root_hex with
    | Ok r -> r
    | Error e -> Alcotest.fail ("root hex: " ^ e)
  in
  let check_proof label i =
    match Store.inclusion_proof dir i with
    | Error e -> Alcotest.fail (Printf.sprintf "%s: proof %d: %s" label i e)
    | Ok p ->
        Alcotest.(check string)
          (Printf.sprintf "%s: proof %d root" label i)
          root_hex p.Store.p_root_hex;
        Alcotest.(check int) "count" n_obs p.Store.p_count;
        Alcotest.(check string) "leaf binds payload"
          (Hex.encode (Merkle.leaf_hash obs.(i)))
          (Hex.encode p.Store.p_leaf);
        Alcotest.(check bool)
          (Printf.sprintf "%s: proof %d verifies" label i)
          true
          (Merkle.verify ~root:raw_root ~index:i ~count:n_obs p.Store.p_leaf
             p.Store.p_path)
  in
  for i = 0 to n_obs - 1 do
    check_proof "fast path" i
  done;
  (match Store.inclusion_proof dir n_obs with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "proof past the end accepted");
  (* without the persisted layers the proof rebuilds from obs.seg *)
  let mrk = Filename.concat dir "tree.mrk" in
  let mrk_data = read_bin mrk in
  Sys.remove mrk;
  check_proof "tree.mrk missing" 0;
  check_proof "tree.mrk missing" (n_obs - 1);
  (* a tampered tree.mrk is detected (CRC or verification) and ignored *)
  let b = Bytes.of_string mrk_data in
  let off = String.length mrk_data / 2 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
  write_bin mrk (Bytes.to_string b);
  check_proof "tree.mrk tampered" (n_obs / 2);
  (* audit restores the layers *)
  let rep = Store.audit ~repair:true dir in
  Alcotest.(check bool) "layers rebuilt" true
    (rep.Store.a_ok && rep.Store.a_repaired);
  Alcotest.(check string) "layers restored byte-for-byte" mrk_data (read_bin mrk);
  check_proof "after repair" 1

(* --- compaction: rewrite certs.seg without touching ROOT --- *)

let store_compaction () =
  let dir = tmp_dir () in
  let fps, root_hex = mk_small_store dir in
  let fp_dropped = List.nth fps 1 in
  let size_before = (Unix.stat (Filename.concat dir "certs.seg")).Unix.st_size in
  (match Store.compact ~live:(fun fp -> not (String.equal fp fp_dropped)) dir with
  | Error e -> Alcotest.fail ("compact: " ^ e)
  | Ok r ->
      Alcotest.(check int) "kept" 2 r.Store.c_kept;
      Alcotest.(check int) "dropped" 1 r.Store.c_dropped;
      Alcotest.(check int) "before" size_before r.Store.c_bytes_before;
      Alcotest.(check bool) "segment shrank" true
        (r.Store.c_bytes_after < r.Store.c_bytes_before));
  (match Store.open_ dir with
  | Error e -> Alcotest.fail ("post-compaction open: " ^ e)
  | Ok t ->
      Alcotest.(check int) "two certs survive" 2 (Store.cert_count t);
      Alcotest.(check (option string)) "dropped cert gone" None
        (Store.find_cert t fp_dropped);
      Alcotest.(check (option string)) "kept cert intact" (Some (fake_der 0))
        (Store.find_cert t (List.nth fps 0));
      Alcotest.(check (option string)) "order preserved" (Some (fake_der 2))
        (Store.find_cert t (List.nth fps 2));
      Alcotest.(check string) "ROOT untouched" root_hex (Store.root_hex t));
  (* the store stays audit-clean: sidecars were rewritten in step *)
  let rep = Store.audit ~repair:true dir in
  Alcotest.(check bool) "audit clean after compaction" true
    (rep.Store.a_ok && not rep.Store.a_repaired);
  (* all-live compaction is a no-op and rewrites nothing *)
  let stamp = read_bin (Filename.concat dir "certs.seg") in
  match Store.compact ~live:(fun _ -> true) dir with
  | Error e -> Alcotest.fail ("no-op compact: " ^ e)
  | Ok r ->
      Alcotest.(check int) "nothing dropped" 0 r.Store.c_dropped;
      Alcotest.(check int) "bytes stable" r.Store.c_bytes_before r.Store.c_bytes_after;
      Alcotest.(check string) "segment byte-stable" stamp
        (read_bin (Filename.concat dir "certs.seg"))

(* --- corpus: save -> load -> replay --- *)

let lab = lazy (Population.generate ~scale:0.001 ())

let render view =
  Experiments.scan_results view
  |> List.map Chaoschain_report.Report.to_text
  |> String.concat "\n"

let saved =
  lazy
    (let pop = Lazy.force lab in
     let analysis = Experiments.analyze ~jobs:2 pop in
     let dir = tmp_dir () in
     let summary = Corpus.save ~dir analysis in
     (analysis, dir, summary))

let corpus_replay_identical () =
  let analysis, dir, summary = Lazy.force saved in
  Alcotest.(check int) "one record per domain"
    (Array.length analysis.Experiments.dataset.Scanner.domains)
    summary.Corpus.s_records;
  match Corpus.load dir with
  | Error e -> Alcotest.fail ("load failed: " ^ e)
  | Ok loaded ->
      Alcotest.(check (float 0.)) "scale survives" 0.001 loaded.Corpus.l_scale;
      Alcotest.(check string) "root matches save" summary.Corpus.s_root_hex
        loaded.Corpus.l_root_hex;
      let live = render (Experiments.view analysis) in
      let replay1 = render (Corpus.analyze ~jobs:1 loaded) in
      Alcotest.(check string) "replay == live scan" live replay1;
      (* jobs-invariance of the replay path itself *)
      match Corpus.load dir with
      | Error e -> Alcotest.fail e
      | Ok loaded' ->
          Alcotest.(check string) "replay jobs-invariant" replay1
            (render (Corpus.analyze ~jobs:4 loaded'))

let corpus_save_deterministic () =
  let analysis, _, summary = Lazy.force saved in
  (* a second save of the same analysis lands on the identical Merkle root *)
  let dir2 = tmp_dir () in
  let summary2 = Corpus.save ~dir:dir2 analysis in
  Alcotest.(check string) "byte-identical store" summary.Corpus.s_root_hex
    summary2.Corpus.s_root_hex;
  (* ... and so does a save of a fresh analysis at different parallelism *)
  let analysis3 = Experiments.analyze ~jobs:3 (Lazy.force lab) in
  let dir3 = tmp_dir () in
  let summary3 = Corpus.save ~dir:dir3 analysis3 in
  Alcotest.(check string) "jobs-invariant store" summary.Corpus.s_root_hex
    summary3.Corpus.s_root_hex

let corpus_truncated_tail_recovery () =
  let _, dir0, _ = Lazy.force saved in
  (* work on a copy so the shared fixture stays intact *)
  let dir = tmp_dir () in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter
    (fun f ->
      let src = Filename.concat dir0 f and dst = Filename.concat dir f in
      let ic = open_in_bin src in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin dst in
      output_string oc data;
      close_out oc)
    (Sys.readdir dir0);
  let obs = Filename.concat dir "obs.seg" in
  let full = (Unix.stat obs).Unix.st_size in
  Unix.truncate obs (full - 5);
  (* strict open refuses the crashed store *)
  (match Store.open_ dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated store opened");
  (* audit without repair detects but does not touch the files *)
  let dry = Store.audit ~repair:false dir in
  Alcotest.(check bool) "tail is recoverable" true dry.Store.a_ok;
  Alcotest.(check bool) "dry run repairs nothing" false dry.Store.a_repaired;
  Alcotest.(check int) "file untouched" (full - 5) (Unix.stat obs).Unix.st_size;
  (* repair truncates back and re-anchors *)
  let rep = Store.audit ~repair:true dir in
  Alcotest.(check bool) "repaired ok" true rep.Store.a_ok;
  Alcotest.(check bool) "repair happened" true rep.Store.a_repaired;
  match (Store.open_ dir, Store.open_ dir0) with
  | Ok t, Ok t0 ->
      Alcotest.(check int) "one record lost"
        (Array.length (Store.observations t0) - 1)
        (Array.length (Store.observations t));
      (* follow-up audit is clean and silent about repairs *)
      let again = Store.audit ~repair:true dir in
      Alcotest.(check bool) "stable after repair" true
        (again.Store.a_ok && not again.Store.a_repaired)
  | _ -> Alcotest.fail "repaired store does not open"

(* --- warm-store: cache pre-fill makes the first request a hit --- *)

let corpus_warm_engine () =
  let _, dir, _ = Lazy.force saved in
  match Corpus.load dir with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
      let pop = Lazy.force lab in
      let u = pop.Population.universe in
      let r = pop.Population.domains.(0) in
      let env =
        {
          Engine.diff_env = loaded.Corpus.l_env;
          union_store = loaded.Corpus.l_union_store;
          program_store = Chaoschain_pki.Universe.store u;
          aia = Chaoschain_pki.Universe.aia u;
          find_scenario = (fun _ -> None);
        }
      in
      let domains = Array.to_list loaded.Corpus.l_dataset.Scanner.domains in
      let t = Engine.create ~env ~jobs:2 () in
      let warmed = Engine.warm t domains in
      Alcotest.(check bool) "warm fill bounded" true
        (warmed > 0 && warmed <= Engine.cache_capacity t);
      Alcotest.(check int) "cache holds the fill" warmed (Engine.cache_size t);
      (* metrics untouched: a warmed engine looks cold from the outside *)
      let m = Engine.metrics t in
      Alcotest.(check int) "no hits yet" 0 m.S.Metrics.hits;
      Alcotest.(check int) "no misses yet" 0 m.S.Metrics.misses;
      (* first live request for a stored domain is served from the cache *)
      let frame =
        S.Json.to_string
          (S.Json.Obj
             [ ("id", S.Json.String "w1");
               ("op", S.Json.String "check");
               ("domain", S.Json.String r.Population.domain);
               ( "pem",
                 S.Json.String
                   (Chaoschain_deployment.Pem.encode_certs r.Population.chain)
               ) ])
      in
      let response = Engine.handle_frame t frame in
      let m = Engine.metrics t in
      Alcotest.(check int) "hit from warm fill" 1 m.S.Metrics.hits;
      Alcotest.(check int) "no miss" 0 m.S.Metrics.misses;
      (match S.Json.of_string response with
      | Ok j -> (
          match S.Json.member "ok" j with
          | Some (S.Json.Bool true) -> ()
          | _ -> Alcotest.fail "warm reply not ok")
      | Error e -> Alcotest.fail e);
      (* a zero-capacity engine accepts but skips the warm fill *)
      let t0 = Engine.create ~env ~cache_capacity:0 () in
      Alcotest.(check int) "cap 0 warms nothing" 0 (Engine.warm t0 domains);
      Engine.shutdown t0;
      Engine.shutdown t

(* --- corpus diff: per-cell deltas between two persisted stores --- *)

let corpus_diff () =
  let module R = Chaoschain_report.Report in
  let analysis, dir_a, _ = Lazy.force saved in
  let results dir =
    match Corpus.load dir with
    | Error e -> Alcotest.fail e
    | Ok l -> Experiments.table_results (Corpus.analyze ~jobs:2 l)
  in
  (* identical corpora (a second save of the same analysis): empty diff *)
  let dir_b = tmp_dir () in
  ignore (Corpus.save ~dir:dir_b analysis);
  Alcotest.(check int) "identical corpora diff empty" 0
    (List.length (R.diff (results dir_a) (results dir_b)));
  (* perturbed corpus: append a duplicate of one domain's leaf certificate,
     re-scan and re-save — an order violation appears, leaf placement does
     not change *)
  let pop = Lazy.force lab in
  let victim = pop.Population.domains.(0).Population.domain in
  let pop' =
    { pop with
      Population.domains =
        Array.map
          (fun r ->
            if r.Population.domain = victim then
              { r with
                Population.chain =
                  r.Population.chain @ [ List.hd r.Population.chain ] }
            else r)
          pop.Population.domains }
  in
  let dir_c = tmp_dir () in
  ignore (Corpus.save ~dir:dir_c (Experiments.analyze ~jobs:2 pop'));
  let deltas = R.diff (results dir_a) (results dir_c) in
  let in_table prefix d =
    let n = String.length prefix in
    String.length d.R.d_path >= n && String.sub d.R.d_path 0 n = prefix
  in
  Alcotest.(check bool) "perturbation shows up" true (deltas <> []);
  Alcotest.(check bool) "table5 duplicate cells changed" true
    (List.exists (in_table "table5/Duplicate Certificates") deltas);
  List.iter
    (fun d ->
      Alcotest.(check bool) (d.R.d_path ^ " outside table3") false
        (in_table "table3" d))
    deltas

let suite =
  [ Alcotest.test_case "crc32 vectors" `Quick crc_vectors;
    QCheck_alcotest.to_alcotest qcheck_crc_sub;
    Alcotest.test_case "frame round-trip" `Quick frame_round_trip;
    Alcotest.test_case "frame truncated tail" `Quick frame_truncated_tail;
    Alcotest.test_case "frame corruption" `Quick frame_corruption;
    Alcotest.test_case "merkle proofs n=1..17" `Quick merkle_proofs_all_shapes;
    Alcotest.test_case "merkle domain separation" `Quick merkle_domain_separation;
    Alcotest.test_case "merkle tree = RFC 6962 reference" `Quick
      merkle_tree_matches_reference;
    QCheck_alcotest.to_alcotest qcheck_frontier_vs_rebuild;
    Alcotest.test_case "merkle proof edges" `Quick merkle_proof_edges;
    Alcotest.test_case "merkle parallel build identical" `Quick
      merkle_parallel_build_identical;
    Alcotest.test_case "index round-trip and damage" `Quick index_round_trip;
    Alcotest.test_case "store round-trip" `Quick store_round_trip;
    Alcotest.test_case "store rejects tampering" `Quick store_rejects_tampering;
    Alcotest.test_case "index missing and truncated" `Quick
      store_index_missing_and_truncated;
    Alcotest.test_case "index disagreement: segment wins" `Quick
      store_index_disagreement;
    Alcotest.test_case "random access and inclusion proofs" `Quick
      store_random_access_and_proofs;
    Alcotest.test_case "compaction preserves ROOT" `Quick store_compaction;
    Alcotest.test_case "corpus replay byte-identical" `Slow corpus_replay_identical;
    Alcotest.test_case "corpus save deterministic" `Slow corpus_save_deterministic;
    Alcotest.test_case "truncated-tail recovery" `Slow corpus_truncated_tail_recovery;
    Alcotest.test_case "warm-store pre-fill" `Slow corpus_warm_engine;
    Alcotest.test_case "corpus diff" `Slow corpus_diff ]
