open Chaoschain_x509
module Prng = Chaoschain_crypto.Prng
module Keys = Chaoschain_crypto.Keys

(* --- Vtime --- *)

let vtime_calendar () =
  let t = Vtime.make ~y:2024 ~m:2 ~d:29 ~hh:12 ~mm:30 ~ss:45 () in
  Alcotest.(check (triple int int int)) "ymd" (2024, 2, 29) (Vtime.ymd t);
  Alcotest.(check (triple int int int)) "hms" (12, 30, 45) (Vtime.hms t);
  Alcotest.check_raises "bad day" (Invalid_argument "Vtime.make: day") (fun () ->
      ignore (Vtime.make ~y:2023 ~m:2 ~d:29 ()));
  Alcotest.check_raises "bad month" (Invalid_argument "Vtime.make: month") (fun () ->
      ignore (Vtime.make ~y:2023 ~m:13 ~d:1 ()))

let vtime_arithmetic () =
  let t = Vtime.make ~y:2024 ~m:2 ~d:29 () in
  Alcotest.(check (triple int int int)) "leap clamp" (2025, 2, 28)
    (Vtime.ymd (Vtime.add_years t 1));
  Alcotest.(check (triple int int int)) "month clamp" (2024, 4, 30)
    (Vtime.ymd (Vtime.add_months (Vtime.make ~y:2024 ~m:3 ~d:31 ()) 1));
  Alcotest.(check int) "diff days across leap" 366
    (Vtime.diff_days (Vtime.make ~y:2025 ~m:1 ~d:1 ()) (Vtime.make ~y:2024 ~m:1 ~d:1 ()));
  Alcotest.(check (triple int int int)) "add_days across year" (2025, 1, 2)
    (Vtime.ymd (Vtime.add_days (Vtime.make ~y:2024 ~m:12 ~d:31 ()) 2))

let vtime_codec () =
  let t = Vtime.make ~y:2024 ~m:3 ~d:14 ~hh:1 ~mm:2 ~ss:3 () in
  Alcotest.(check string) "utctime" "240314010203Z" (Vtime.to_utctime t);
  (match Vtime.of_utctime "240314010203Z" with
  | Ok t' -> Alcotest.(check bool) "utc roundtrip" true (Vtime.equal t t')
  | Error e -> Alcotest.fail e);
  (match Vtime.of_utctime "490101000000Z" with
  | Ok t' -> Alcotest.(check (triple int int int)) "2049 window" (2049, 1, 1) (Vtime.ymd t')
  | Error e -> Alcotest.fail e);
  (match Vtime.of_utctime "500101000000Z" with
  | Ok t' -> Alcotest.(check (triple int int int)) "1950 window" (1950, 1, 1) (Vtime.ymd t')
  | Error e -> Alcotest.fail e);
  let far = Vtime.make ~y:2051 ~m:1 ~d:1 () in
  Alcotest.(check string) "generalized for 2051" "20510101000000Z" (Vtime.to_generalized far);
  (match Vtime.of_der_time (Vtime.to_der_time far) with
  | Ok t' -> Alcotest.(check bool) "der time roundtrip" true (Vtime.equal far t')
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "reject bad utc" true (Result.is_error (Vtime.of_utctime "nope"));
  Alcotest.(check bool) "reject month 13" true
    (Result.is_error (Vtime.of_utctime "241314010203Z"))

let qcheck_vtime_roundtrip =
  QCheck.Test.make ~name:"civil<->days roundtrip" ~count:500
    QCheck.(triple (int_range 1950 2049) (int_range 1 12) (int_range 1 28))
    (fun (y, m, d) ->
      let t = Vtime.make ~y ~m ~d () in
      Vtime.ymd t = (y, m, d)
      && Result.get_ok (Vtime.of_utctime (Vtime.to_utctime t)) |> Vtime.equal t)

(* --- Dn --- *)

let dn_basics () =
  let dn = Dn.make ~c:"US" ~o:"DigiCert Inc" ~cn:"DigiCert TLS RSA SHA256 2020 CA1" () in
  Alcotest.(check (option string)) "cn" (Some "DigiCert TLS RSA SHA256 2020 CA1")
    (Dn.common_name dn);
  Alcotest.(check (option string)) "o" (Some "DigiCert Inc") (Dn.organization dn);
  Alcotest.(check string) "render" "C=US, O=DigiCert Inc, CN=DigiCert TLS RSA SHA256 2020 CA1"
    (Dn.to_string dn)

let dn_equality () =
  let a = Dn.make ~o:"Example  Corp" ~cn:"Foo" () in
  let b = Dn.make ~o:"example corp" ~cn:"FOO" () in
  Alcotest.(check bool) "loose equal" true (Dn.equal a b);
  Alcotest.(check bool) "strict differs" false (Dn.equal_strict a b);
  Alcotest.(check bool) "strict equal to itself" true (Dn.equal_strict a a);
  let c = Dn.make ~o:"Example Corp" ~cn:"Bar" () in
  Alcotest.(check bool) "different cn" false (Dn.equal a c);
  Alcotest.(check bool) "structure matters" false (Dn.equal a (Dn.make ~cn:"Foo" ()))

let dn_der_roundtrip () =
  let dn = Dn.make ~c:"TW" ~st:"Taipei" ~l:"Taipei" ~o:"TAIWAN-CA" ~ou:"SSL" ~cn:"TWCA Root" () in
  match Dn.of_der (Dn.to_der dn) with
  | Ok dn' -> Alcotest.(check bool) "roundtrip" true (Dn.equal_strict dn dn')
  | Error e -> Alcotest.fail e

(* --- Extensions --- *)

let ext_roundtrip e =
  match Extension.of_der (Extension.to_der e) with
  | Ok e' -> e' = e
  | Error _ -> false

let extension_roundtrips () =
  List.iter
    (fun (name, e) -> Alcotest.(check bool) name true (ext_roundtrip e))
    [ ("bc ca", Extension.basic_constraints ~ca:true ~path_len:3 ());
      ("bc leaf", Extension.basic_constraints ~ca:false ());
      ("bc no pathlen", Extension.basic_constraints ~ca:true ());
      ("ku", Extension.key_usage [ Extension.Key_cert_sign; Extension.Crl_sign ]);
      ("ku one bit", Extension.key_usage [ Extension.Digital_signature ]);
      ("ku 9th bit", Extension.key_usage [ Extension.Decipher_only ]);
      ("eku", Extension.ext_key_usage [ Chaoschain_der.Oid.eku_server_auth ]);
      ("san", Extension.subject_alt_name
                [ Extension.Dns "a.example"; Extension.Dns "*.a.example";
                  Extension.Ip "192.0.2.1" ]);
      ("skid", Extension.subject_key_id (String.make 20 'k'));
      ("akid keyid", Extension.authority_key_id (String.make 20 'a'));
      ("akid by name", Extension.authority_key_id_by_name (Dn.make ~cn:"X" ()) "\x01\x02");
      ("aia", Extension.authority_info_access
                ~ocsp:[ "http://ocsp.example" ] ~ca_issuers:[ "http://ca.example/i.crt" ] ()) ]

let extension_lookup () =
  let exts =
    [ Extension.basic_constraints ~ca:true ();
      Extension.subject_key_id "01234567890123456789" ]
  in
  Alcotest.(check bool) "find bc" true
    (Extension.find Chaoschain_der.Oid.ext_basic_constraints exts <> None);
  Alcotest.(check bool) "missing aia" true
    (Extension.find Chaoschain_der.Oid.ext_authority_info_access exts = None)

(* --- Cert / Issue / Relation --- *)

let now = Vtime.make ~y:2024 ~m:6 ~d:1 ()

let mini_pki label =
  let rng = Prng.of_label label in
  let root =
    Issue.self_signed rng
      (Issue.spec ~is_ca:true ~not_before:(Vtime.add_years now (-5))
         ~not_after:(Vtime.add_years now 15)
         (Dn.make ~o:"T" ~cn:("Root " ^ label) ()))
  in
  let inter =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~path_len:0 ~not_before:(Vtime.add_years now (-1))
         ~not_after:(Vtime.add_years now 9)
         ~aia_ca_issuers:[ "http://aia.t/root.crt" ]
         (Dn.make ~o:"T" ~cn:("Inter " ^ label) ()))
  in
  let leaf =
    Issue.issue rng ~parent:inter
      (Issue.spec ~san:[ Extension.Dns "www.pki.example"; Extension.Dns "*.cdn.pki.example" ]
         (Dn.make ~cn:"www.pki.example" ()))
  in
  (rng, root, inter, leaf)

let cert_der_roundtrip () =
  let _, root, inter, leaf = mini_pki "roundtrip" in
  List.iter
    (fun (name, c) ->
      match Cert.of_der (Cert.to_der c) with
      | Ok c' ->
          Alcotest.(check bool) (name ^ " equal") true (Cert.equal c c');
          Alcotest.(check bool) (name ^ " fp") true
            (Cert.fingerprint c = Cert.fingerprint c');
          Alcotest.(check bool) (name ^ " skid") true
            (Cert.subject_key_id c = Cert.subject_key_id c');
          Alcotest.(check bool) (name ^ " tbs bytes") true
            (Cert.tbs_der c = Cert.tbs_der c')
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    [ ("root", root.Issue.cert); ("inter", inter.Issue.cert); ("leaf", leaf.Issue.cert) ]

let cert_accessors () =
  let _, root, inter, leaf = mini_pki "accessors" in
  Alcotest.(check bool) "root self-signed" true (Cert.is_self_signed root.Issue.cert);
  Alcotest.(check bool) "root is ca" true (Cert.is_ca root.Issue.cert);
  Alcotest.(check bool) "inter not self-signed" false (Cert.is_self_signed inter.Issue.cert);
  Alcotest.(check bool) "leaf not ca" false (Cert.is_ca leaf.Issue.cert);
  Alcotest.(check bool) "inter aia" true
    (Cert.aia_ca_issuers inter.Issue.cert = [ "http://aia.t/root.crt" ]);
  (match Cert.basic_constraints inter.Issue.cert with
  | Some { Extension.ca = true; path_len = Some 0 } -> ()
  | _ -> Alcotest.fail "inter basic constraints");
  Alcotest.(check bool) "leaf valid now" true (Cert.valid_at leaf.Issue.cert now);
  Alcotest.(check bool) "leaf not valid in past" false
    (Cert.valid_at leaf.Issue.cert (Vtime.add_years now (-2)))

let cert_hostname_matching () =
  let _, _, _, leaf = mini_pki "hostnames" in
  let c = leaf.Issue.cert in
  Alcotest.(check bool) "exact" true (Cert.matches_hostname c "www.pki.example");
  Alcotest.(check bool) "case" true (Cert.matches_hostname c "WWW.PKI.Example");
  Alcotest.(check bool) "wildcard one label" true (Cert.matches_hostname c "a.cdn.pki.example");
  Alcotest.(check bool) "wildcard not two labels" false
    (Cert.matches_hostname c "a.b.cdn.pki.example");
  Alcotest.(check bool) "wildcard not bare" false (Cert.matches_hostname c "cdn.pki.example");
  Alcotest.(check bool) "unrelated" false (Cert.matches_hostname c "pki.example")

let cert_self_signed_vs_self_issued () =
  let rng = Prng.of_label "ss" in
  let a = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"Same" ())) in
  (* Same subject/issuer DN but signature by an unrelated key: self-issued,
     not self-signed. *)
  let b = Issue.issue rng ~parent:a (Issue.spec ~is_ca:true (Dn.make ~cn:"Same" ())) in
  Alcotest.(check bool) "self-issued" true (Cert.is_self_issued b.Issue.cert);
  Alcotest.(check bool) "not self-signed" false (Cert.is_self_signed b.Issue.cert)

let relation_basics () =
  let _, root, inter, leaf = mini_pki "relation" in
  let r = root.Issue.cert and i = inter.Issue.cert and l = leaf.Issue.cert in
  Alcotest.(check bool) "root issued inter" true (Relation.issued ~issuer:r ~child:i);
  Alcotest.(check bool) "inter issued leaf" true (Relation.issued ~issuer:i ~child:l);
  Alcotest.(check bool) "root did not issue leaf" false (Relation.issued ~issuer:r ~child:l);
  Alcotest.(check bool) "name chains" true (Relation.name_chains ~issuer:i ~child:l);
  Alcotest.(check bool) "kid match" true
    (Relation.kid_status ~issuer:i ~child:l = Relation.Kid_match);
  Alcotest.(check bool) "sig alg compatible" true (Relation.sig_alg_compatible ~issuer:i ~child:l)

let relation_kid_states () =
  let rng = Prng.of_label "kid-states" in
  let root = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"KR" ())) in
  let inter = Issue.issue rng ~parent:root (Issue.spec ~is_ca:true (Dn.make ~cn:"KI" ())) in
  let leaf = Issue.issue rng ~parent:inter (Issue.spec (Dn.make ~cn:"kid.example" ())) in
  let wrong_skid =
    Issue.cross_sign rng ~parent:root ~existing:inter ~faults:[ Issue.Wrong_skid ] ()
  in
  let no_skid =
    Issue.cross_sign rng ~parent:root ~existing:inter ~faults:[ Issue.No_skid ] ()
  in
  Alcotest.(check string) "mismatch" "mismatch"
    (Relation.kid_status_to_string (Relation.kid_status ~issuer:wrong_skid ~child:leaf.Issue.cert));
  Alcotest.(check string) "absent" "absent"
    (Relation.kid_status_to_string (Relation.kid_status ~issuer:no_skid ~child:leaf.Issue.cert))

let relation_flexible_rule () =
  let rng = Prng.of_label "flexible" in
  let root = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"FR" ())) in
  (* An intermediate whose AKID is wrong but whose name chains: the flexible
     rule still links it to its child via criterion 2. *)
  let inter =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~faults:[ Issue.Wrong_skid ] (Dn.make ~cn:"FI" ()))
  in
  let leaf = Issue.issue rng ~parent:inter (Issue.spec (Dn.make ~cn:"f.example" ())) in
  Alcotest.(check bool) "issued despite kid mismatch" true
    (Relation.issued ~issuer:inter.Issue.cert ~child:leaf.Issue.cert);
  (* Broken signature always fails criterion 1. *)
  let broken =
    Issue.issue rng ~parent:inter
      (Issue.spec ~faults:[ Issue.Broken_signature ] (Dn.make ~cn:"f2.example" ()))
  in
  Alcotest.(check bool) "broken signature not issued" false
    (Relation.issued ~issuer:inter.Issue.cert ~child:broken.Issue.cert)

let issue_faults () =
  let rng = Prng.of_label "faults" in
  let root = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"F" ())) in
  let with_faults faults = Issue.issue_cert rng ~parent:root (Issue.spec ~is_ca:true ~faults (Dn.make ~cn:"FX" ())) in
  Alcotest.(check bool) "no skid" true (Cert.subject_key_id (with_faults [ Issue.No_skid ]) = None);
  Alcotest.(check bool) "no akid" true (Cert.authority_key_id (with_faults [ Issue.No_akid ]) = None);
  Alcotest.(check bool) "not a ca" false (Cert.is_ca (with_faults [ Issue.Not_a_ca ]));
  Alcotest.(check bool) "no bc" true
    (Cert.basic_constraints (with_faults [ Issue.No_basic_constraints ]) = None);
  Alcotest.(check bool) "no ku" true (Cert.key_usage (with_faults [ Issue.No_key_usage ]) = None);
  (match Cert.key_usage (with_faults [ Issue.Wrong_key_usage ]) with
  | Some flags ->
      Alcotest.(check bool) "wrong ku lacks certsign" false
        (List.mem Extension.Key_cert_sign flags)
  | None -> Alcotest.fail "expected key usage");
  let expired = with_faults [ Issue.Expired ] in
  Alcotest.(check bool) "expired" false (Cert.valid_at expired now);
  Alcotest.(check bool) "expired is in past" true Vtime.(Cert.not_after expired < now);
  let future = with_faults [ Issue.Not_yet_valid ] in
  Alcotest.(check bool) "future" true Vtime.(now < Cert.not_before future)

let cross_sign_properties () =
  let rng = Prng.of_label "cross" in
  let r1 = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"R1" ())) in
  let r2 = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"R2" ())) in
  let inter = Issue.issue rng ~parent:r1 (Issue.spec ~is_ca:true (Dn.make ~cn:"XS" ())) in
  let cross = Issue.cross_sign rng ~parent:r2 ~existing:inter () in
  Alcotest.(check bool) "same subject" true
    (Dn.equal (Cert.subject cross) (Cert.subject inter.Issue.cert));
  Alcotest.(check bool) "same skid" true
    (Cert.subject_key_id cross = Cert.subject_key_id inter.Issue.cert);
  Alcotest.(check bool) "different issuer" false
    (Dn.equal (Cert.issuer cross) (Cert.issuer inter.Issue.cert));
  Alcotest.(check bool) "r2 issued cross" true
    (Relation.issued ~issuer:r2.Issue.cert ~child:cross);
  (* Both variants certify the same key, so both validate children. *)
  let leaf = Issue.issue rng ~parent:inter (Issue.spec (Dn.make ~cn:"x.example" ())) in
  Alcotest.(check bool) "cross verifies child too" true
    (Relation.signature_ok ~issuer:cross ~child:leaf.Issue.cert)

let qcheck_cert_fp_unique =
  QCheck.Test.make ~name:"distinct serial => distinct fingerprint" ~count:30
    QCheck.unit
    (fun () ->
      let rng = Prng.of_label "fp-unique" in
      let root = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"U" ())) in
      let a = Issue.issue_cert rng ~parent:root (Issue.spec (Dn.make ~cn:"same.example" ())) in
      let b = Issue.issue_cert rng ~parent:root (Issue.spec (Dn.make ~cn:"same.example" ())) in
      not (Cert.equal a b))

let suite =
  [ Alcotest.test_case "vtime calendar" `Quick vtime_calendar;
    Alcotest.test_case "vtime arithmetic" `Quick vtime_arithmetic;
    Alcotest.test_case "vtime codec" `Quick vtime_codec;
    QCheck_alcotest.to_alcotest qcheck_vtime_roundtrip;
    Alcotest.test_case "dn basics" `Quick dn_basics;
    Alcotest.test_case "dn equality" `Quick dn_equality;
    Alcotest.test_case "dn der roundtrip" `Quick dn_der_roundtrip;
    Alcotest.test_case "extension roundtrips" `Quick extension_roundtrips;
    Alcotest.test_case "extension lookup" `Quick extension_lookup;
    Alcotest.test_case "cert der roundtrip" `Quick cert_der_roundtrip;
    Alcotest.test_case "cert accessors" `Quick cert_accessors;
    Alcotest.test_case "hostname matching" `Quick cert_hostname_matching;
    Alcotest.test_case "self-signed vs self-issued" `Quick cert_self_signed_vs_self_issued;
    Alcotest.test_case "relation basics" `Quick relation_basics;
    Alcotest.test_case "relation kid states" `Quick relation_kid_states;
    Alcotest.test_case "relation flexible rule" `Quick relation_flexible_rule;
    Alcotest.test_case "issuance faults" `Quick issue_faults;
    Alcotest.test_case "cross-sign properties" `Quick cross_sign_properties;
    QCheck_alcotest.to_alcotest qcheck_cert_fp_unique ]
