open Chaoschain_core
open Chaoschain_measurement
module C = Calibration

(* --- stats --- *)

let commas () =
  Alcotest.(check string) "906336" "906,336" (Stats.with_commas 906_336);
  Alcotest.(check string) "small" "42" (Stats.with_commas 42);
  Alcotest.(check string) "negative" "-1,234" (Stats.with_commas (-1234))

let percents () =
  Alcotest.(check string) "92.5%" "92.5%" (Stats.pct 838_354 906_336);
  Alcotest.(check string) "~0%" "~0%" (Stats.pct 1 906_336);
  Alcotest.(check string) "zero numerator" "0.0%" (Stats.pct 0 906_336);
  Alcotest.(check string) "zero denominator" "n/a" (Stats.pct 5 0)

let apportion_exact () =
  let shares = Stats.apportion ~total:100 ~weights:[ ("a", 1); ("b", 1); ("c", 1) ] in
  Alcotest.(check int) "sums" 100 (List.fold_left (fun acc (_, n) -> acc + n) 0 shares);
  let uneven = Stats.apportion ~total:10 ~weights:[ ("a", 7); ("b", 2); ("c", 1) ] in
  Alcotest.(check (list (pair string int))) "proportional"
    [ ("a", 7); ("b", 2); ("c", 1) ] uneven;
  Alcotest.(check (list (pair string int))) "zero weights get zero"
    [ ("a", 5); ("b", 0) ]
    (Stats.apportion ~total:5 ~weights:[ ("a", 3); ("b", 0) ])

let qcheck_apportion =
  QCheck.Test.make ~name:"apportion always sums to total" ~count:200
    QCheck.(pair (int_range 0 10_000) (list_of_size Gen.(1 -- 8) (int_range 0 50)))
    (fun (total, ws) ->
      let weights = List.mapi (fun i w -> (string_of_int i, w)) ws in
      let shares = Stats.apportion ~total ~weights in
      let sum = List.fold_left (fun acc (_, n) -> acc + n) 0 shares in
      let wsum = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
      List.for_all (fun (_, n) -> n >= 0) shares
      && if wsum = 0 then sum = 0 else sum = total)

let table_render () =
  let module R = Chaoschain_report.Report in
  let t = R.Table.create ~title:"T" ~header:[ "a"; "bb" ] in
  R.Table.row t [ R.text "1"; R.text "2" ];
  R.Table.sep t;
  R.Table.row t [ R.text "333"; R.text "4" ];
  let s = R.render_table (R.Table.table t) in
  Alcotest.(check bool) "contains title" true (String.length s > 0 && s.[0] = 'T')

(* --- calibration ledger invariants: the paper's aggregates --- *)

let sum_if p =
  List.fold_left (fun acc (s, n) -> if p s then acc + n else acc) 0 C.ledger

let ledger_total () =
  Alcotest.(check int) "sums to 906,336" C.full_population (sum_if (fun _ -> true))

let is_dup = function
  | C.Dup_leaf_front | C.Dup_leaf_scattered | C.Dup_intermediate _ | C.Dup_root
  | C.Dup_leaf_and_intermediate | C.Dup_and_irrelevant | C.Fig_ns3 | C.Fig_serpro ->
      true
  | _ -> false

let is_irr = function
  | C.Irr_self_signed_extra | C.Irr_root_attached | C.Irr_stale_leaves _
  | C.Irr_extra_leaf_distinct | C.Irr_foreign_chain | C.Irr_lone_intermediate
  | C.Dup_and_irrelevant -> true
  | _ -> false

let is_multi = function
  | C.Multi_cross_ok | C.Multi_cross_expired | C.Multi_cross_reversed
  | C.Multi_validity_variants | C.Fig_moex -> true
  | _ -> false

let is_rev = function
  | C.Rev_merge_1int | C.Rev_noroot_2int | C.Rev_merge_2int | C.Rev_full_deep
  | C.Rev_and_incomplete | C.Multi_cross_reversed | C.Fig_moex -> true
  | _ -> false

let is_inc = function
  | C.Inc_missing1 | C.Inc_missing2 | C.Inc_no_aia | C.Inc_aia_fail | C.Inc_wrong_aia
  | C.Rev_and_incomplete -> true
  | _ -> false

let ledger_matches_table5 () =
  Alcotest.(check int) "duplicates (Table 5)" 5_974 (sum_if is_dup);
  Alcotest.(check int) "irrelevant (Table 5)" 3_032 (sum_if is_irr);
  Alcotest.(check int) "multiple paths (Table 5)" 246 (sum_if is_multi);
  Alcotest.(check int) "reversed (Table 5)" 8_566 (sum_if is_rev)

let ledger_matches_table7 () =
  Alcotest.(check int) "incomplete (Table 7)" 12_087 (sum_if is_inc)

let ledger_matches_noncompliant_total () =
  let order s = is_dup s || is_irr s || is_multi s || is_rev s in
  let nc s = order s || is_inc s in
  Alcotest.(check int) "26,361 non-compliant domains" 26_361 (sum_if nc)

let ledger_matches_table8 () =
  let sum scenarios = sum_if (fun s -> List.mem s scenarios) in
  Alcotest.(check int) "Mozilla no-AIA additional" 225_608
    (sum
       [ C.Ok_no_akid; C.Ok_restricted C.R_mc_recoverable;
         C.Ok_restricted C.R_mc_dead_end ]);
  Alcotest.(check int) "Microsoft no-AIA additional" 225_538
    (sum
       [ C.Ok_no_akid; C.Ok_restricted C.R_ms_recoverable;
         C.Ok_restricted C.R_ms_dead_end ]);
  Alcotest.(check int) "Apple no-AIA additional" 225_360
    (sum
       [ C.Ok_no_akid; C.Ok_restricted C.R_apple_recoverable;
         C.Ok_restricted C.R_apple_dead_end ])

let scaled_ledger_properties () =
  let scaled = C.scale_ledger 0.01 in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 scaled in
  Alcotest.(check int) "scaled total" 9_063 total;
  (* Singletons survive scaling. *)
  List.iter
    (fun s ->
      let n = List.assoc s scaled in
      Alcotest.(check bool) (C.scenario_to_string s ^ " alive") true (n >= 1))
    [ C.Fig_moex; C.Fig_serpro; C.Inc_wrong_aia; C.Leaf_incorrect_placed ];
  Alcotest.check_raises "scale 0 rejected" (Invalid_argument "Calibration.scale_ledger")
    (fun () -> ignore (C.scale_ledger 0.0));
  Alcotest.(check bool) "scale 1.0 is identity" true (C.scale_ledger 1.0 == C.ledger)

let vendor_weights_shape () =
  List.iter
    (fun (s, n) ->
      if n > 0 then begin
        let ws = C.vendor_weights s in
        Alcotest.(check bool)
          (C.scenario_to_string s ^ " has positive vendor weight")
          true
          (List.exists (fun (_, w) -> w > 0) ws);
        let sws = C.server_weights s in
        Alcotest.(check bool)
          (C.scenario_to_string s ^ " has positive server weight")
          true
          (List.exists (fun (_, w) -> w > 0) sws)
      end)
    C.ledger

(* --- population --- *)

let pop = lazy (Population.generate ~scale:0.005 ())

let population_deterministic () =
  let a = Population.generate ~scale:0.002 ~seed:5L () in
  let b = Population.generate ~scale:0.002 ~seed:5L () in
  Alcotest.(check int) "same size" (Population.size a) (Population.size b);
  Array.iter2
    (fun ra rb ->
      Alcotest.(check string) "same domain" ra.Population.domain rb.Population.domain;
      Alcotest.(check bool) "same chain" true
        (List.equal Chaoschain_x509.Cert.equal ra.Population.chain rb.Population.chain))
    a.Population.domains b.Population.domains

let population_scenarios_classify () =
  (* Spot-check that realised scenarios land in their intended classification
     buckets. *)
  let p = Lazy.force pop in
  let check_one scenario pred name =
    match
      Array.to_list p.Population.domains
      |> List.find_opt (fun r -> r.Population.scenario = scenario)
    with
    | None -> Alcotest.fail (name ^ " absent from population")
    | Some r ->
        let rep = Population.compliance_report p r in
        Alcotest.(check bool) name true (pred rep)
  in
  check_one C.Ok_plain Compliance.compliant "plain chain compliant";
  check_one (C.Dup_intermediate 1)
    (fun rep -> Order_check.has_duplicates rep.Compliance.order)
    "dup intermediate detected";
  check_one C.Rev_merge_1int
    (fun rep -> Order_check.has_reversed rep.Compliance.order)
    "reversed merge detected";
  check_one C.Inc_missing1
    (fun rep ->
      rep.Compliance.completeness.Completeness.verdict = Completeness.Incomplete
      && rep.Compliance.completeness.Completeness.cause
         = Some (Completeness.Recoverable 1))
    "missing one recoverable";
  check_one C.Inc_no_aia
    (fun rep -> rep.Compliance.completeness.Completeness.cause = Some Completeness.Aia_missing)
    "aia missing cause";
  check_one C.Inc_wrong_aia
    (fun rep -> rep.Compliance.completeness.Completeness.cause = Some Completeness.Aia_wrong_cert)
    "wrong aia cause";
  check_one C.Multi_cross_reversed
    (fun rep ->
      rep.Compliance.order.Order_check.multiple_paths
      && Order_check.has_reversed rep.Compliance.order)
    "cross reversed is multipath+reversed";
  check_one C.Ok_no_akid
    (fun rep ->
      Compliance.compliant rep && rep.Compliance.completeness.Completeness.via_aia)
    "no-akid completes only via AIA";
  check_one C.Fig_serpro
    (fun rep -> Topology.list_length rep.Compliance.topology = 17)
    "serpro has 17 certificates";
  check_one C.Fig_ns3
    (fun rep -> Topology.list_length rep.Compliance.topology = 29)
    "ns3 has 29 certificates"

let population_blemish_share () =
  let p = Lazy.force pop in
  let inc, inc_blemished =
    Array.fold_left
      (fun (n, b) r ->
        if r.Population.scenario = C.Inc_missing1 then
          (n + 1, b + if r.Population.blemish = Population.Expired_leaf then 1 else 0)
        else (n, b))
      (0, 0) p.Population.domains
  in
  Alcotest.(check bool) "half of missing-1 blemished (+-1)" true
    (abs ((2 * inc_blemished) - inc) <= 2)

let experiments_smoke () =
  let p = Population.generate ~scale:0.002 () in
  let a = Experiments.analyze p in
  let results = Experiments.run_all a in
  Alcotest.(check int) "19 experiment artefacts" 19 (List.length results);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Experiments.id ^ " non-empty") true
        (String.length (Chaoschain_report.Report.to_text r) > 0))
    results

(* The golden test: the committed rendering of [run_all] on the seed
   population (scale 0.002, jobs 2) — the pre-IR sprintf output, captured
   byte-for-byte. [Report.to_text] must keep reproducing it exactly; any
   renderer or experiment change that shifts a byte fails here first. The
   framing matches `chaoscheck reproduce`: each body, then a blank line. *)
let experiments_golden () =
  (* cwd is test/ under `dune runtest`, the workspace root under
     `dune exec test/test_main.exe` *)
  let golden_path =
    List.find Sys.file_exists
      [ "golden/experiments_scale0.002.txt";
        "test/golden/experiments_scale0.002.txt" ]
  in
  let golden = In_channel.with_open_bin golden_path In_channel.input_all in
  let p = Population.generate ~scale:0.002 () in
  let a = Experiments.analyze ~jobs:2 p in
  let rendered =
    Experiments.run_all a
    |> List.map (fun r -> Chaoschain_report.Report.to_text r ^ "\n\n")
    |> String.concat ""
  in
  Alcotest.(check int) "golden length" (String.length golden)
    (String.length rendered);
  Alcotest.(check string) "golden bytes" golden rendered

let scanner_union () =
  let p = Population.generate ~scale:0.002 () in
  let d = Scanner.scan p in
  Alcotest.(check int) "union covers population" (Population.size p)
    (Array.length d.Scanner.domains);
  List.iter
    (fun v ->
      Alcotest.(check bool) (v.Scanner.name ^ " misses a little") true
        (v.Scanner.reached < Population.size p
        && v.Scanner.reached > Population.size p * 90 / 100))
    d.Scanner.vantages

let classify_dataset () =
  let p = Population.generate ~scale:0.002 () in
  let d = Scanner.scan p in
  let c = Classify.run d.Scanner.domains in
  Alcotest.(check int) "every domain classified" (Population.size p) c.Classify.domains;
  Alcotest.(check int) "chain dedup agrees with scanner" d.Scanner.unique_chains
    c.Classify.unique_chains;
  Alcotest.(check int) "cert dedup agrees with scanner" d.Scanner.unique_certs
    c.Classify.unique_certs;
  (* ordered/unordered partition the unique chains; so do the
     buildability classes. *)
  Alcotest.(check int) "ordered + unordered" c.Classify.unique_chains
    (c.Classify.ordered.Classify.cs_chains + c.Classify.unordered.Classify.cs_chains);
  Alcotest.(check int) "self-contained + transvalid + unbuildable"
    c.Classify.unique_chains
    (c.Classify.self_contained.Classify.cs_chains
    + c.Classify.transvalid.Classify.cs_chains
    + c.Classify.unbuildable.Classify.cs_chains);
  (* the population plants unordered and duplicate scenarios, and most
     chains omit their root (transvalid once the corpus supplies it) *)
  Alcotest.(check bool) "unordered chains present" true
    (c.Classify.unordered.Classify.cs_chains > 0);
  Alcotest.(check bool) "duplicate chains present" true
    (c.Classify.with_duplicates.Classify.cs_chains > 0);
  Alcotest.(check bool) "transvalid dominates" true
    (c.Classify.transvalid.Classify.cs_chains
    > c.Classify.self_contained.Classify.cs_chains);
  (* both framings decode every chain to the same certificates *)
  let a = c.Classify.agreement in
  Alcotest.(check int) "all chains round-tripped" c.Classify.unique_chains
    a.Classify.fa_chains;
  Alcotest.(check int) "full decode agreement" a.Classify.fa_chains
    a.Classify.fa_agree;
  (* 1.3 framing adds 1 context byte + 2 ext-block bytes per entry, minus
     the shared 3-byte outer header difference: strictly larger overall *)
  Alcotest.(check bool) "1.3 wire strictly larger" true
    (a.Classify.fa_bytes13 > a.Classify.fa_bytes12);
  (* rendering is total *)
  Alcotest.(check bool) "report renders" true
    (String.length (Chaoschain_report.Report.to_text (Classify.report c)) > 0)

let suite =
  [ Alcotest.test_case "comma formatting" `Quick commas;
    Alcotest.test_case "percent formatting" `Quick percents;
    Alcotest.test_case "apportion exact" `Quick apportion_exact;
    QCheck_alcotest.to_alcotest qcheck_apportion;
    Alcotest.test_case "table render" `Quick table_render;
    Alcotest.test_case "ledger totals 906,336" `Quick ledger_total;
    Alcotest.test_case "ledger matches Table 5" `Quick ledger_matches_table5;
    Alcotest.test_case "ledger matches Table 7" `Quick ledger_matches_table7;
    Alcotest.test_case "ledger matches 26,361" `Quick ledger_matches_noncompliant_total;
    Alcotest.test_case "ledger matches Table 8" `Quick ledger_matches_table8;
    Alcotest.test_case "scaled ledger" `Quick scaled_ledger_properties;
    Alcotest.test_case "weights shape" `Quick vendor_weights_shape;
    Alcotest.test_case "population deterministic" `Slow population_deterministic;
    Alcotest.test_case "scenario classifications" `Slow population_scenarios_classify;
    Alcotest.test_case "blemish share" `Slow population_blemish_share;
    Alcotest.test_case "experiments smoke" `Slow experiments_smoke;
    Alcotest.test_case "experiments golden" `Slow experiments_golden;
    Alcotest.test_case "scanner union" `Slow scanner_union;
    Alcotest.test_case "classify dataset" `Slow classify_dataset ]
