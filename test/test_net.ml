(* lib/net: incremental framing (chunk-boundary invariance, overlong
   discard/resume), the netloop event loop (fairness, per-connection reply
   order, graceful drain) and its glue to the real engine (many concurrent
   connections answered byte-identically to the serial path), plus the
   loadgen sample statistics. *)

open Chaoschain_net
module S = Chaoschain_service
module Engine = S.Engine
module Netd = S.Netd

(* --- framing --- *)

(* Pull everything the machine can deliver right now; overlong reports
   become the "<overlong>" marker so orderings are assertable. *)
let drain_frames t =
  let rec go acc =
    match Framing.next t with
    | `Frame f -> go (f :: acc)
    | `Overlong -> go ("<overlong>" :: acc)
    | `Await | `Eof -> List.rev acc
  in
  go []

let frames_of ~chunks ?(max_frame = Framing.default_max_frame) () =
  let t = Framing.create ~max_frame () in
  let out =
    List.concat_map
      (fun chunk ->
        Framing.feed_string t chunk;
        drain_frames t)
      chunks
  in
  Framing.eof t;
  out @ drain_frames t

let framing_every_split () =
  let input = "alpha\nbb\n\nlong-line-0123456789\nz" in
  let expected = [ "alpha"; "bb"; ""; "long-line-0123456789"; "z" ] in
  for cut = 0 to String.length input do
    let a = String.sub input 0 cut in
    let b = String.sub input cut (String.length input - cut) in
    Alcotest.(check (list string))
      (Printf.sprintf "split at %d" cut)
      expected
      (frames_of ~chunks:[ a; b ] ())
  done;
  (* byte-at-a-time: the most hostile chunking *)
  let bytes = List.init (String.length input) (fun i -> String.make 1 input.[i]) in
  Alcotest.(check (list string)) "byte at a time" expected
    (frames_of ~chunks:bytes ())

let framing_multi_frame_chunk () =
  let t = Framing.create () in
  Framing.feed_string t "a\nb\nc\nrest";
  Alcotest.(check (list string)) "three at once" [ "a"; "b"; "c" ]
    (drain_frames t);
  Framing.feed_string t "1\n";
  Alcotest.(check (list string)) "partial completed" [ "rest1" ]
    (drain_frames t);
  Framing.eof t;
  Alcotest.(check (list string)) "nothing at eof" [] (drain_frames t);
  Alcotest.(check bool) "at eof" true (Framing.at_eof t)

let framing_overlong_resume () =
  (* a 20-byte line against an 8-byte bound, split into 3-byte chunks:
     exactly one overlong report, then framing resumes cleanly *)
  let input = "0123456789abcdefghij\nok\n" in
  let rec chop s =
    if String.length s <= 3 then [ s ]
    else String.sub s 0 3 :: chop (String.sub s 3 (String.length s - 3))
  in
  Alcotest.(check (list string)) "overlong then resume"
    [ "<overlong>"; "ok" ]
    (frames_of ~chunks:(chop input) ~max_frame:8 ());
  (* boundary: an 8-byte line passes, a 9-byte line does not *)
  Alcotest.(check (list string)) "at the bound"
    [ "12345678"; "<overlong>"; "x" ]
    (frames_of ~chunks:[ "12345678\n123456789\nx\n" ] ~max_frame:8 ())

let framing_bounded_buffer () =
  (* an endless newline-free stream must not accumulate memory *)
  let t = Framing.create ~max_frame:16 () in
  let chunk = String.make 64 'a' in
  let overlongs = ref 0 in
  for _ = 1 to 100 do
    Framing.feed_string t chunk;
    List.iter
      (fun f -> if f = "<overlong>" then incr overlongs)
      (drain_frames t)
  done;
  Alcotest.(check int) "one report" 1 !overlongs;
  Alcotest.(check bool) "buffer bounded"
    true
    (Framing.buffered t <= 16 + 64 + 1)

(* --- loadgen statistics --- *)

let loadgen_quantiles () =
  let samples = Array.init 100 (fun i -> Float.of_int (100 - i)) in
  Alcotest.(check (float 0.0)) "p50" 50.0 (Loadgen.quantile samples 0.5);
  Alcotest.(check (float 0.0)) "p90" 90.0 (Loadgen.quantile samples 0.9);
  Alcotest.(check (float 0.0)) "p99" 99.0 (Loadgen.quantile samples 0.99);
  Alcotest.(check (float 0.0)) "p999" 100.0 (Loadgen.quantile samples 0.999);
  Alcotest.(check (float 0.0)) "empty" 0.0 (Loadgen.quantile [||] 0.5);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Loadgen.mean samples)

(* --- netd address parsing --- *)

let netd_parse_addr () =
  (match Netd.parse_addr "unix:/tmp/x.sock" with
  | Ok (Netd.Unix_path "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix: prefix");
  (match Netd.parse_addr "tcp:127.0.0.1:4433" with
  | Ok (Netd.Tcp ("127.0.0.1", 4433)) -> ()
  | _ -> Alcotest.fail "tcp: prefix");
  (match Netd.parse_addr "localhost:8080" with
  | Ok (Netd.Tcp ("localhost", 8080)) -> ()
  | _ -> Alcotest.fail "host:port");
  (match Netd.parse_addr "/var/run/chaind.sock" with
  | Ok (Netd.Unix_path "/var/run/chaind.sock") -> ()
  | _ -> Alcotest.fail "bare path");
  match Netd.parse_addr "tcp:nohost" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tcp: without port must be rejected"

(* --- netloop harness --- *)

let socket_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "chaos-netloop-%d-%d.sock" (Unix.getpid ()) !counter)

(* Netloop installs no signal handlers (serve_listen does); the test drives
   the loop directly, so writes to vanished peers must not kill the runner. *)
let with_listener f =
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let path = socket_path () in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match Netd.listen_socket (Netd.Unix_path path) with
  | Error e -> Alcotest.fail e
  | Ok listen ->
      Fun.protect
        ~finally:(fun () ->
          ignore (Sys.signal Sys.sigpipe prev);
          (try Unix.unlink path with Unix.Unix_error _ -> ()))
        (fun () -> f path listen)

let dial path = Netd.dial (Netd.Unix_path path)

(* A deterministic single-batch echo sink. *)
let echo_sink () =
  let q = Queue.create () in
  {
    Netloop.can_admit = (fun () -> Queue.length q < 8);
    submit =
      (fun ~tag frame ->
        Queue.add (tag, frame) q;
        `Admitted);
    drain =
      (fun () ->
        let out = ref [] in
        for _ = 1 to min 4 (Queue.length q) do
          let tag, frame = Queue.pop q in
          out := (tag, "echo:" ^ frame) :: !out
        done;
        List.rev !out);
    pending = (fun () -> Queue.length q);
    overlong_reply = (fun () -> "OVERLONG");
  }

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;               (* reply bytes not yet split into lines *)
  mutable replies : string list;  (* completed reply lines, reversed *)
}

let client_pump cl =
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read cl.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes cl.buf chunk 0 n;
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ();
  let s = Buffer.contents cl.buf in
  match String.rindex_opt s '\n' with
  | None -> ()
  | Some last ->
      Buffer.clear cl.buf;
      Buffer.add_substring cl.buf s (last + 1) (String.length s - last - 1);
      String.split_on_char '\n' (String.sub s 0 last)
      |> List.iter (fun line -> cl.replies <- line :: cl.replies)

let drive ?(max_iters = 10_000) loop clients done_yet =
  let iters = ref 0 in
  while (not (done_yet ())) && !iters < max_iters do
    incr iters;
    ignore (Netloop.step ~timeout:0.01 loop);
    List.iter client_pump clients
  done;
  if not (done_yet ()) then Alcotest.fail "event loop made no progress"

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

(* --- poller conformance ---

   One suite, every available backend: the two implementations must be
   observationally interchangeable (level-triggered readiness, interest
   masking, deregistration, timeout semantics) for netloop/loadgen to be
   backend-agnostic. *)

let available_backends =
  List.filter Poller.available [ Poller.Select; Poller.Epoll ]

let with_poller backend f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  let p = Poller.create backend in
  Fun.protect
    ~finally:(fun () ->
      Poller.close p;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
    (fun () -> f p a b)

(* The events reported for [fd], folded into one (readable, writable). *)
let ready_for fd events =
  List.fold_left
    (fun (ar, aw) (efd, r, w) ->
      if efd = fd then (ar || r, aw || w) else (ar, aw))
    (false, false) events

let poller_transitions backend () =
  with_poller backend @@ fun p a b ->
  Poller.set p a ~read:true ~write:false;
  Alcotest.(check int) "one registered" 1 (Poller.registered p);
  Alcotest.(check (pair bool bool))
    "idle: nothing readable" (false, false)
    (ready_for a (Poller.wait p ~timeout:0.0));
  write_all b "x";
  Alcotest.(check (pair bool bool))
    "readable, not writable (write interest off)" (true, false)
    (ready_for a (Poller.wait p ~timeout:1.0));
  (* still readable: level-triggered, the byte was not consumed *)
  Alcotest.(check (pair bool bool))
    "still readable" (true, false)
    (ready_for a (Poller.wait p ~timeout:1.0));
  Poller.set p a ~read:true ~write:true;
  Alcotest.(check (pair bool bool))
    "readable and writable" (true, true)
    (ready_for a (Poller.wait p ~timeout:1.0));
  (* consume the byte: only writability remains *)
  ignore (Unix.read a (Bytes.create 8) 0 8);
  Alcotest.(check (pair bool bool))
    "drained: writable only" (false, true)
    (ready_for a (Poller.wait p ~timeout:1.0));
  (* a pending byte under write-only interest must not surface as read *)
  write_all b "y";
  Poller.set p a ~read:false ~write:true;
  Alcotest.(check (pair bool bool))
    "interest masks readiness" (false, true)
    (ready_for a (Poller.wait p ~timeout:1.0));
  (* no interest at all: silence, even with data pending *)
  Poller.set p a ~read:false ~write:false;
  Alcotest.(check (pair bool bool))
    "no interest, no events" (false, false)
    (ready_for a (Poller.wait p ~timeout:0.0))

let poller_deregister backend () =
  with_poller backend @@ fun p a b ->
  Poller.set p a ~read:true ~write:false;
  Poller.set p b ~read:true ~write:false;
  Alcotest.(check int) "two registered" 2 (Poller.registered p);
  write_all b "x";
  (* deregister-then-close must be clean: no event for b afterwards, and
     the removal of an already-closed fd is harmless *)
  Poller.remove p b;
  Unix.close b;
  Poller.remove p b;
  Alcotest.(check int) "one registered" 1 (Poller.registered p);
  let events = Poller.wait p ~timeout:1.0 in
  Alcotest.(check bool) "no events for the removed fd" false
    (List.exists (fun (fd, _, _) -> fd = b) events);
  Alcotest.(check (pair bool bool))
    "survivor still reported" (true, false)
    (ready_for a events);
  Poller.remove p a;
  Alcotest.(check int) "empty" 0 (Poller.registered p);
  Alcotest.(check (list unit)) "no events at all" []
    (List.map (fun _ -> ()) (Poller.wait p ~timeout:0.0))

let poller_timeout backend () =
  with_poller backend @@ fun p a b ->
  Poller.set p a ~read:true ~write:false;
  (* zero timeout: an immediate empty poll *)
  let t0 = Unix.gettimeofday () in
  Alcotest.(check (pair bool bool))
    "zero-timeout poll" (false, false)
    (ready_for a (Poller.wait p ~timeout:0.0));
  Alcotest.(check bool) "zero timeout returns immediately" true
    (Unix.gettimeofday () -. t0 < 0.5);
  (* a positive timeout actually blocks when nothing is ready *)
  let t0 = Unix.gettimeofday () in
  Alcotest.(check (pair bool bool))
    "idle wait times out empty" (false, false)
    (ready_for a (Poller.wait p ~timeout:0.2));
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "waited >= 0.1s (got %.3f)" dt)
    true (dt >= 0.1);
  (* pending readiness preempts a long timeout *)
  write_all b "x";
  let t0 = Unix.gettimeofday () in
  Alcotest.(check (pair bool bool))
    "readiness preempts the timeout" (true, false)
    (ready_for a (Poller.wait p ~timeout:10.0));
  Alcotest.(check bool) "returned well before the timeout" true
    (Unix.gettimeofday () -. t0 < 5.0)

(* 40 connections, 5 frames each, every frame delivered in two halves with
   all connections interleaved between the halves: replies must come back on
   the right connection, in that connection's request order. *)
let netloop_interleaved_echo () =
  with_listener @@ fun path listen ->
  let loop = Netloop.create ~listen (echo_sink ()) in
  let n = 40 and per = 5 in
  let clients =
    List.init n (fun _ ->
        let fd = dial path in
        Unix.set_nonblock fd;
        { fd; buf = Buffer.create 256; replies = [] })
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun cl -> try Unix.close cl.fd with Unix.Unix_error _ -> ())
        clients)
    (fun () ->
      let msg i j = Printf.sprintf "conn%02d-msg%d" i j in
      for j = 0 to per - 1 do
        (* first halves of everyone's j-th frame ... *)
        List.iteri
          (fun i cl ->
            let m = msg i j in
            write_all cl.fd (String.sub m 0 (String.length m / 2)))
          clients;
        (* ... a few loop iterations on the half-delivered frames ... *)
        for _ = 1 to 3 do
          ignore (Netloop.step loop)
        done;
        (* ... then the second halves *)
        List.iteri
          (fun i cl ->
            let m = msg i j in
            let h = String.length m / 2 in
            write_all cl.fd (String.sub m h (String.length m - h) ^ "\n"))
          clients
      done;
      drive loop clients (fun () ->
          List.for_all (fun cl -> List.length cl.replies = per) clients);
      List.iteri
        (fun i cl ->
          Alcotest.(check (list string))
            (Printf.sprintf "connection %d reply order" i)
            (List.init per (fun j -> "echo:" ^ msg i j))
            (List.rev cl.replies))
        clients;
      Netloop.stop loop;
      drive loop clients (fun () -> Netloop.finished loop);
      let s = Netloop.stats loop in
      Alcotest.(check int) "accepted" n s.Netloop.accepted;
      Alcotest.(check int) "frames" (n * per) s.Netloop.frames;
      Alcotest.(check int) "live after drain" 0 s.Netloop.live_conns)

(* Overlong lines answered with the sink's canned reply, framing resumes. *)
let netloop_overlong () =
  with_listener @@ fun path listen ->
  let config = { Netloop.default_config with Netloop.max_frame = 32 } in
  let loop = Netloop.create ~config ~listen (echo_sink ()) in
  let fd = dial path in
  Unix.set_nonblock fd;
  let cl = { fd; buf = Buffer.create 256; replies = [] } in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd (String.make 100 'x' ^ "\nafter\n");
      drive loop [ cl ] (fun () -> List.length cl.replies = 2);
      Alcotest.(check (list string)) "overlong reply then echo"
        [ "OVERLONG"; "echo:after" ]
        (List.rev cl.replies);
      Alcotest.(check int) "one overlong" 1 (Netloop.stats loop).Netloop.overlong;
      Netloop.stop loop;
      drive loop [ cl ] (fun () -> Netloop.finished loop))

(* A client that disconnects with replies still in flight must not take the
   loop (or the other connections) down. *)
let netloop_disconnect_survival () =
  with_listener @@ fun path listen ->
  let loop = Netloop.create ~listen (echo_sink ()) in
  let goner = dial path in
  let stayer = dial path in
  Unix.set_nonblock stayer;
  let cl = { fd = stayer; buf = Buffer.create 256; replies = [] } in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ stayer ])
    (fun () ->
      write_all goner "doomed\n";
      write_all stayer "alive\n";
      (* let the loop accept and read both, then vanish mid-conversation *)
      ignore (Netloop.step loop);
      Unix.close goner;
      drive loop [ cl ] (fun () -> List.length cl.replies = 1);
      Alcotest.(check (list string)) "survivor answered" [ "echo:alive" ]
        (List.rev cl.replies);
      Netloop.stop loop;
      drive loop [ cl ] (fun () -> Netloop.finished loop))

(* --- the whole stack: netloop + engine, many connections --- *)

(* 300 concurrent connections each send two identified requests through the
   event loop; every reply must be byte-identical to the serial
   [handle_frame] path on an engine with the same environment, and arrive
   in its connection's request order. *)
let netloop_engine_byte_identity () =
  let env = Test_service.make_env () in
  let engine = Engine.create ~env () in
  let serial = Engine.create ~env () in
  Fun.protect
    ~finally:(fun () ->
      Engine.shutdown engine;
      Engine.shutdown serial)
    (fun () ->
      with_listener @@ fun path listen ->
      let loop = Netloop.create ~listen (Netd.sink engine) in
      let n = 300 in
      let frame i k =
        Test_service.check_frame
          ~id:(Printf.sprintf "conn%03d-%d" i k)
          ~scenario:"fixture" ()
      in
      let expected i k = Engine.handle_frame serial (frame i k) in
      let clients =
        (* step the loop while dialing: 300 connects would otherwise
           overrun the listener backlog and block *)
        List.init n (fun i ->
            let fd = dial path in
            Unix.set_nonblock fd;
            write_all fd (frame i 0 ^ "\n" ^ frame i 1 ^ "\n");
            ignore (Netloop.step loop);
            { fd; buf = Buffer.create 4096; replies = [] })
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun cl -> try Unix.close cl.fd with Unix.Unix_error _ -> ())
            clients)
        (fun () ->
          drive loop clients (fun () ->
              List.for_all (fun cl -> List.length cl.replies = 2) clients);
          List.iteri
            (fun i cl ->
              Alcotest.(check (list string))
                (Printf.sprintf "connection %d byte-identical" i)
                [ expected i 0; expected i 1 ]
                (List.rev cl.replies))
            clients;
          Netloop.stop loop;
          drive loop clients (fun () -> Netloop.finished loop);
          let s = Netloop.stats loop in
          Alcotest.(check int) "accepted" n s.Netloop.accepted;
          Alcotest.(check int) "frames" (2 * n) s.Netloop.frames))

(* Two shards behind one listener (the dispatcher topology serve_listen
   uses for Unix sockets): shard 0 owns the listener and deals every other
   accepted connection to a second loop running on its own Domain, each
   loop feeding its own engine. Every reply must still be byte-identical
   to the serial [handle_frame] path, both loops must drain on stop, and
   the aggregated stats must account for every connection and frame. *)
let netloop_sharded_byte_identity () =
  let env = Test_service.make_env () in
  let e0 = Engine.create ~env () in
  let e1 = Engine.create ~env () in
  let serial = Engine.create ~env () in
  Engine.link_shards [ e0; e1 ];
  Fun.protect
    ~finally:(fun () -> List.iter Engine.shutdown [ e0; e1; serial ])
    (fun () ->
      with_listener @@ fun path listen ->
      let follower = Netloop.create (Netd.sink e1) in
      let rr = ref 0 in
      let dispatch fd =
        let mine = !rr land 1 = 1 in
        incr rr;
        mine && Netloop.offer follower fd
      in
      let loop0 = Netloop.create ~listen ~dispatch (Netd.sink e0) in
      let follower_domain = Domain.spawn (fun () -> Netloop.run follower) in
      let n = 60 in
      let frame i k =
        Test_service.check_frame
          ~id:(Printf.sprintf "conn%03d-%d" i k)
          ~scenario:"fixture" ()
      in
      let expected i k = Engine.handle_frame serial (frame i k) in
      let clients =
        List.init n (fun i ->
            let fd = dial path in
            Unix.set_nonblock fd;
            write_all fd (frame i 0 ^ "\n" ^ frame i 1 ^ "\n");
            ignore (Netloop.step loop0);
            { fd; buf = Buffer.create 4096; replies = [] })
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun cl -> try Unix.close cl.fd with Unix.Unix_error _ -> ())
            clients)
        (fun () ->
          drive loop0 clients (fun () ->
              List.for_all (fun cl -> List.length cl.replies = 2) clients);
          List.iteri
            (fun i cl ->
              Alcotest.(check (list string))
                (Printf.sprintf "connection %d byte-identical" i)
                [ expected i 0; expected i 1 ]
                (List.rev cl.replies))
            clients;
          Netloop.stop loop0;
          Netloop.stop follower;
          drive loop0 clients (fun () -> Netloop.finished loop0);
          Domain.join follower_domain;
          let s0 = Netloop.stats loop0 and s1 = Netloop.stats follower in
          Alcotest.(check bool) "follower adopted connections" true
            (s1.Netloop.accepted > 0);
          let agg = Netloop.aggregate_stats [ s0; s1 ] in
          Alcotest.(check int) "accepted across shards" n
            agg.Netloop.accepted;
          Alcotest.(check int) "frames across shards" (2 * n)
            agg.Netloop.frames;
          Alcotest.(check int) "no one left live" 0 agg.Netloop.live_conns;
          (* linked engines advertise the group in stats replies *)
          let stats_text = S.Json.to_string (Engine.stats_json e0) in
          let contains hay needle =
            let nl = String.length needle and hl = String.length hay in
            let rec go i =
              i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "stats carry the shard count" true
            (contains stats_text "\"shards\":2")))

let suite =
  let per_backend name f =
    List.map
      (fun b ->
        Alcotest.test_case
          (Printf.sprintf "%s (%s)" name (Poller.backend_name b))
          `Quick (f b))
      available_backends
  in
  per_backend "poller readiness transitions" poller_transitions
  @ per_backend "poller closed-fd deregistration" poller_deregister
  @ per_backend "poller timeout semantics" poller_timeout
  @ [ Alcotest.test_case "framing split everywhere" `Quick framing_every_split;
    Alcotest.test_case "framing multi-frame chunk" `Quick
      framing_multi_frame_chunk;
    Alcotest.test_case "framing overlong resume" `Quick
      framing_overlong_resume;
    Alcotest.test_case "framing bounded buffer" `Quick framing_bounded_buffer;
    Alcotest.test_case "loadgen quantiles" `Quick loadgen_quantiles;
    Alcotest.test_case "netd address parsing" `Quick netd_parse_addr;
    Alcotest.test_case "netloop interleaved echo" `Quick
      netloop_interleaved_echo;
    Alcotest.test_case "netloop overlong reply" `Quick netloop_overlong;
    Alcotest.test_case "netloop disconnect survival" `Quick
      netloop_disconnect_survival;
    Alcotest.test_case "netloop engine 300-conn byte-identity" `Slow
      netloop_engine_byte_identity;
    Alcotest.test_case "netloop sharded 2-loop byte-identity" `Slow
      netloop_sharded_byte_identity ]
