let () =
  Alcotest.run "chaoschain"
    [ ("crypto", Test_crypto.suite);
      ("der", Test_der.suite);
      ("derfuzz", Test_derfuzz.suite);
      ("x509", Test_x509.suite);
      ("pki", Test_pki.suite);
      ("core-server", Test_core_server.suite);
      ("core-client", Test_core_client.suite);
      ("deployment", Test_deployment.suite);
      ("tlssim", Test_tlssim.suite);
      ("report", Test_report.suite);
      ("measurement", Test_measurement.suite);
      ("pipeline", Test_pipeline.suite);
      ("difftest", Test_difftest.suite);
      ("extensions", Test_extensions_modules.suite);
      ("store", Test_store.suite);
      ("service", Test_service.suite);
      ("net", Test_net.suite);
      ("edge-cases", Test_edge_cases.suite) ]
