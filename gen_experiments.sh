#!/bin/sh
# Regenerate EXPERIMENTS.md: the hand-written commentary in
# doc/EXPERIMENTS.head.md followed by the Markdown rendering of every
# experiment report at the seed scale. CI regenerates into a temp file and
# fails if the committed copy differs (see ci.sh).
#
# Usage: ./gen_experiments.sh [output-file]   (default: EXPERIMENTS.md)
set -eu

cd "$(dirname "$0")"
out="${1:-EXPERIMENTS.md}"

dune build bin/chaoscheck.exe

{
  cat doc/EXPERIMENTS.head.md
  echo
  dune exec --no-build bin/chaoscheck.exe -- reproduce --scale 0.002 --jobs 2 --format md
} > "$out"
