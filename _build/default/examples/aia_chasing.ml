(* AIA completion (capability 3 / finding I-4): a server forgets its
   intermediate; only clients that fetch the issuer via the AIA caIssuers URI
   (or hold it in a cache) can still build the path.

     dune exec examples/aia_chasing.exe *)

open Chaoschain_pki
open Chaoschain_core
open Chaoschain_measurement

let () =
  let pop = Population.generate ~scale:0.001 () in
  let u = pop.Population.universe in
  let domain = "incomplete.example" in
  let leaf = Universe.mint_leaf u Universe.Digicert ~domain () in
  let served = [ leaf.Chaoschain_x509.Issue.cert ] in

  (* Server side: the completeness analysis flags the chain but confirms the
     missing certificate is recoverable through recursive AIA. *)
  let report =
    Compliance.analyze ~store:(Universe.union_store u) ~aia:(Universe.aia u)
      ~domain served
  in
  Printf.printf "completeness: %s%s\n\n"
    (Completeness.verdict_to_string report.Compliance.completeness.Completeness.verdict)
    (match report.Compliance.completeness.Completeness.cause with
    | Some c -> " — " ^ Completeness.incomplete_cause_to_string c
    | None -> "");

  (* Client side: who recovers? *)
  let env = Population.env pop in
  let case = Difftest.run_case env ~domain served in
  List.iter
    (fun r ->
      let via =
        match r.Difftest.outcome.Engine.accepted_attempt with
        | Some a when a.Path_builder.used_aia -> "  (completed via AIA)"
        | Some a when a.Path_builder.used_cache -> "  (completed via cache)"
        | _ -> ""
      in
      Printf.printf "%-14s %s%s\n" r.Difftest.client.Clients.name r.Difftest.message via)
    case.Difftest.results;

  (* The AIA repository counted the fetches — the privacy cost the paper
     mentions is visible here. *)
  Printf.printf "\nAIA fetches performed during this experiment: %d\n"
    (Aia_repo.fetch_count (Universe.aia u))
