examples/aia_chasing.mli:
