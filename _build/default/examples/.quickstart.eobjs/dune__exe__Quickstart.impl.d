examples/quickstart.ml: Aia_repo Chaoschain_core Chaoschain_crypto Chaoschain_pki Chaoschain_tlssim Chaoschain_x509 Clients Compliance Difftest Dn Extension Format Issue List Printf Root_store Vtime
