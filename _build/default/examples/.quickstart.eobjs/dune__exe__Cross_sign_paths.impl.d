examples/cross_sign_paths.ml: Cert Chaoschain_core Chaoschain_measurement Chaoschain_pki Chaoschain_x509 Clients Difftest Engine Issue List Population Printf Topology Universe
