examples/cross_sign_paths.mli:
