examples/revocation.ml: Build_params Chaoschain_core Chaoschain_crypto Chaoschain_pki Chaoschain_x509 Crl Crl_registry Dn Engine Extension Issue List Path_builder Printf Root_store Vtime
