examples/quickstart.mli:
