examples/audit_deployment.mli:
