examples/revocation.mli:
