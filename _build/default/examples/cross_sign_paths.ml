(* Figure 4 replayed: a chain with several candidate paths, one through an
   untrusted root. Non-backtracking clients commit to the bad path; clients
   with backtracking recover; MbedTLS's verdict flips with the server's
   certificate order.

     dune exec examples/cross_sign_paths.exe *)

open Chaoschain_x509
open Chaoschain_pki
open Chaoschain_core
open Chaoschain_measurement

let show env ~domain label chain =
  Printf.printf "--- %s ---\n%s" label (Topology.render (Topology.build chain));
  let case = Difftest.run_case env ~domain chain in
  List.iter
    (fun r ->
      let attempts = r.Difftest.outcome.Engine.attempts in
      Printf.printf "%-14s %s%s\n" r.Difftest.client.Clients.name r.Difftest.message
        (if attempts > 1 then Printf.sprintf " (after %d attempts)" attempts else ""))
    case.Difftest.results;
  print_newline ()

let () =
  let pop = Population.generate ~scale:0.001 () in
  let u = pop.Population.universe in
  let env = Population.env pop in
  let domain = "moex.gov.tw" in
  let leaf =
    Universe.mint_leaf u (Universe.Other_ca 0) ~domain
      ~hierarchy:(Universe.gov_grca_hierarchy u) ()
  in
  let hidden = (Universe.gov_hidden_root u).Issue.cert in
  let cross = Universe.gov_moex_cross_by_hidden u in
  let moex = (Universe.gov_moex_intermediate u).Issue.cert in
  let grca =
    List.find Cert.is_self_signed
      (Universe.gov_grca_hierarchy u).Universe.above
  in
  (* The paper's order: leaf, untrusted root, cross, trusted intermediate,
     trusted root. *)
  show env ~domain "original order (Figure 4)"
    [ leaf.Issue.cert; hidden; cross; moex; grca ];
  (* Swap nodes 1 and 2 — MbedTLS now walks into the untrusted root. *)
  show env ~domain "nodes 1 and 2 swapped"
    [ leaf.Issue.cert; cross; hidden; moex; grca ]
