(* Revocation meets chain construction (the paper's named limitation, made
   concrete): the same revoked leaf produces three different client
   behaviours depending on where revocation checking is integrated —
   nowhere, after construction (OpenSSL style), or during construction
   (MbedTLS style, section 3.2).

     dune exec examples/revocation.exe *)

open Chaoschain_x509
open Chaoschain_pki
open Chaoschain_core
module Prng = Chaoschain_crypto.Prng

let () =
  let rng = Prng.of_label "revocation-example" in
  let now = Vtime.make ~y:2024 ~m:6 ~d:1 () in
  let root =
    Issue.self_signed rng
      (Issue.spec ~is_ca:true ~not_before:(Vtime.add_years now (-10))
         ~not_after:(Vtime.add_years now 10)
         (Dn.make ~o:"Revocation Demo" ~cn:"Demo Root" ()))
  in
  let inter =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~not_before:(Vtime.add_years now (-3))
         ~not_after:(Vtime.add_years now 7)
         (Dn.make ~o:"Revocation Demo" ~cn:"Demo Issuing CA" ()))
  in
  let leaf =
    Issue.issue rng ~parent:inter
      (Issue.spec ~san:[ Extension.Dns "revoked.example" ]
         (Dn.make ~cn:"revoked.example" ()))
  in
  let store = Root_store.make "demo" [ root.Issue.cert ] in

  (* The CA discovers a key compromise and publishes a CRL. *)
  let crls = Crl_registry.create () in
  Crl_registry.revoke rng crls ~issuer:inter ~now ~reason:Crl.Key_compromise
    leaf.Issue.cert;
  Printf.printf "CRL status of the leaf: %s\n\n"
    (Crl.status_to_string
       (Crl_registry.status crls ~issuer:inter.Issue.cert ~now leaf.Issue.cert));

  let chain = [ leaf.Issue.cert; inter.Issue.cert ] in
  List.iter
    (fun (label, mode) ->
      let params = { Build_params.default with Build_params.revocation = mode } in
      let ctx = Path_builder.context ~crls ~now ~params store in
      let outcome = Engine.run ctx ~host:(Some "revoked.example") chain in
      Printf.printf "%-28s -> %s  (constructed a path: %b)\n" label
        (match outcome.Engine.result with
        | Ok _ -> "accepted"
        | Error e -> Engine.error_to_string e)
        (outcome.Engine.constructed <> None))
    [ ("no revocation checking", Build_params.No_revocation);
      ("check during validation", Build_params.During_validation);
      ("check during construction", Build_params.During_construction) ]
