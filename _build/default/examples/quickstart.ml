(* Quickstart: mint a small PKI, serve a disordered chain, and watch the
   server-side compliance analyzer and the eight client models react.

     dune exec examples/quickstart.exe *)

open Chaoschain_x509
open Chaoschain_pki
open Chaoschain_core
module Prng = Chaoschain_crypto.Prng

let () =
  let rng = Prng.of_label "quickstart" in
  let now = Vtime.make ~y:2024 ~m:6 ~d:1 () in

  (* 1. A root CA, an intermediate, and a leaf for quick.example. *)
  let root =
    Issue.self_signed rng
      (Issue.spec ~is_ca:true
         ~not_before:(Vtime.add_years now (-10)) ~not_after:(Vtime.add_years now 15)
         (Dn.make ~c:"US" ~o:"Quickstart" ~cn:"Quickstart Root CA" ()))
  in
  let intermediate =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~path_len:0
         ~not_before:(Vtime.add_years now (-2)) ~not_after:(Vtime.add_years now 8)
         (Dn.make ~c:"US" ~o:"Quickstart" ~cn:"Quickstart DV CA" ()))
  in
  let leaf =
    Issue.issue rng ~parent:intermediate
      (Issue.spec ~san:[ Extension.Dns "quick.example" ]
         ~not_before:(Vtime.add_months now (-1)) ~not_after:(Vtime.add_months now 11)
         (Dn.make ~cn:"quick.example" ()))
  in

  (* 2. The server sends the chain in the wrong order (root in the middle). *)
  let served = [ leaf.Issue.cert; root.Issue.cert; intermediate.Issue.cert ] in

  (* 3. Server-side: is this deployment structurally compliant? *)
  let store = Root_store.make "demo" [ root.Issue.cert ] in
  let aia = Aia_repo.create () in
  let report = Compliance.analyze ~store ~aia ~domain:"quick.example" served in
  Format.printf "%a@.@." Compliance.pp_report report;

  (* 4. Client-side: which of the paper's eight clients still validate it? *)
  let env =
    { Difftest.store_of = (fun _ -> store); aia; firefox_cache = [];
      os_store = []; now }
  in
  let case = Difftest.run_case env ~domain:"quick.example" served in
  List.iter
    (fun r -> Printf.printf "%-14s %s\n" r.Difftest.client.Clients.name r.Difftest.message)
    case.Difftest.results;

  (* 5. And as a user would experience it, over a simulated handshake. *)
  let srv = Chaoschain_tlssim.Handshake.server ~name:"quick.example" ~chain:served in
  print_newline ();
  List.iter
    (fun (client, outcome) ->
      Printf.printf "%-14s %s\n" client.Clients.name
        (Chaoschain_tlssim.Handshake.outcome_to_string outcome))
    (Chaoschain_tlssim.Handshake.availability_impact env srv)
