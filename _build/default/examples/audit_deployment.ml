(* The section 4.2 story, end to end: a reseller delivers its ca-bundle in
   reverse order; a naive administrator merges the files verbatim; the
   resulting deployment is non-compliant; a careful merge fixes it; and
   Azure's duplicate-leaf check catches the classic Apache two-file mistake.

     dune exec examples/audit_deployment.exe *)

open Chaoschain_pki
open Chaoschain_core
open Chaoschain_deployment
open Chaoschain_measurement

let audit pop label chain ~domain =
  let u = pop.Population.universe in
  let report =
    Compliance.analyze ~store:(Universe.union_store u) ~aia:(Universe.aia u)
      ~domain chain
  in
  Printf.printf "--- %s ---\n" label;
  Printf.printf "verdict: %s%s\n\n"
    (if Compliance.compliant report then "COMPLIANT" else "NON-COMPLIANT")
    (match Compliance.non_compliance_reasons report with
    | [] -> ""
    | rs -> " (" ^ String.concat "; " rs ^ ")")

let () =
  let pop = Population.generate ~scale:0.001 () in
  let u = pop.Population.universe in
  let domain = "shop.audit.example" in

  (* GoGetSSL issues a certificate and ships its characteristic two files. *)
  let leaf_signer = Universe.mint_leaf u Universe.Gogetssl ~domain () in
  let delivery = Ca_vendor.issue u Universe.Gogetssl ~leaf:leaf_signer.Chaoschain_x509.Issue.cert in
  Printf.printf "GoGetSSL delivery: bundle order compliant = %b, includes root = %b\n\n"
    delivery.Ca_vendor.bundle_order_compliant delivery.Ca_vendor.includes_root;

  (* A naive merge on Nginx preserves the reversed order. *)
  (match Admin.deploy_to Http_server.Nginx u delivery ~leaf_signer ~ops:[ Admin.Merge_naive ] with
  | Ok served -> audit pop "naive merge on Nginx" served ~domain
  | Error e -> Printf.printf "deployment refused: %s\n" e);

  (* The careful administrator reorders the bundle first. *)
  (match
     Admin.deploy_to Http_server.Nginx u delivery ~leaf_signer
       ~ops:[ Admin.Merge_corrected ]
   with
  | Ok served -> audit pop "corrected merge on Nginx" served ~domain
  | Error e -> Printf.printf "deployment refused: %s\n" e);

  (* The Apache two-file confusion: pasting the leaf into the chain file too.
     Apache accepts it (duplicate leaf served); Azure rejects at upload. *)
  let ops = [ Admin.Merge_corrected; Admin.Leaf_into_chain_file ] in
  (match Admin.deploy_to Http_server.Apache_pre_2_4_8 u delivery ~leaf_signer ~ops with
  | Ok served -> audit pop "leaf pasted twice, Apache <2.4.8" served ~domain
  | Error e -> Printf.printf "Apache refused: %s\n\n" e);
  match Admin.deploy_to Http_server.Azure_app_gateway u delivery ~leaf_signer ~ops with
  | Ok served -> audit pop "leaf pasted twice, Azure" served ~domain
  | Error e -> Printf.printf "--- leaf pasted twice, Azure ---\nupload rejected: %s\n" e
