(* Tests for the extension modules: revocation (CRLs and both integration
   styles), the section 6 recommendations engine, and the structural
   fuzzer. *)

open Chaoschain_x509
open Chaoschain_pki
open Chaoschain_core
open Chaoschain_measurement
module Prng = Chaoschain_crypto.Prng

let now = Vtime.make ~y:2024 ~m:6 ~d:1 ()

let mk label =
  let rng = Prng.of_label ("ext:" ^ label) in
  let root =
    Issue.self_signed rng
      (Issue.spec ~is_ca:true ~not_before:(Vtime.add_years now (-10))
         ~not_after:(Vtime.add_years now 10) (Dn.make ~o:"E" ~cn:("Root " ^ label) ()))
  in
  let inter =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~not_before:(Vtime.add_years now (-4))
         ~not_after:(Vtime.add_years now 6) (Dn.make ~o:"E" ~cn:("I " ^ label) ()))
  in
  let leaf =
    Issue.issue rng ~parent:inter
      (Issue.spec ~san:[ Extension.Dns "ext.example" ] (Dn.make ~cn:"ext.example" ()))
  in
  (rng, root, inter, leaf)

(* --- CRL --- *)

let crl_basics () =
  let rng, _, inter, leaf = mk "crl" in
  let crl =
    Crl.issue rng ~issuer:inter ~this_update:now
      [ { Crl.serial = Cert.serial leaf.Issue.cert; revoked_at = now;
          reason = Crl.Key_compromise } ]
  in
  Alcotest.(check bool) "signed by issuer" true (Crl.signed_by crl inter.Issue.cert);
  Alcotest.(check bool) "fresh" false (Crl.is_stale crl now);
  Alcotest.(check bool) "stale after nextUpdate" true
    (Crl.is_stale crl (Vtime.add_days now 31));
  (match Crl.check ~crl:(Some crl) ~issuer:inter.Issue.cert ~now leaf.Issue.cert with
  | Crl.Revoked e ->
      Alcotest.(check string) "reason" "keyCompromise" (Crl.reason_to_string e.Crl.reason)
  | s -> Alcotest.fail (Crl.status_to_string s));
  (* A different certificate of the same issuer is good. *)
  let other =
    Issue.issue rng ~parent:inter (Issue.spec (Dn.make ~cn:"other.example" ()))
  in
  Alcotest.(check string) "other is good" "good"
    (Crl.status_to_string
       (Crl.check ~crl:(Some crl) ~issuer:inter.Issue.cert ~now other.Issue.cert));
  (* No CRL / foreign signer are unknown. *)
  Alcotest.(check bool) "no crl unknown" true
    (match Crl.check ~crl:None ~issuer:inter.Issue.cert ~now leaf.Issue.cert with
    | Crl.Unknown_status _ -> true
    | _ -> false);
  let _, _, stranger, _ = mk "crl-stranger" in
  Alcotest.(check bool) "foreign signer unknown" true
    (match Crl.check ~crl:(Some crl) ~issuer:stranger.Issue.cert ~now leaf.Issue.cert with
    | Crl.Unknown_status _ -> true
    | _ -> false)

let crl_registry () =
  let rng, _, inter, leaf = mk "registry" in
  let reg = Crl_registry.create () in
  Alcotest.(check bool) "empty lookup" true
    (Crl_registry.lookup_for reg ~issuer:inter.Issue.cert = None);
  Crl_registry.revoke rng reg ~issuer:inter ~now leaf.Issue.cert;
  (match Crl_registry.status reg ~issuer:inter.Issue.cert ~now leaf.Issue.cert with
  | Crl.Revoked _ -> ()
  | s -> Alcotest.fail (Crl.status_to_string s));
  (* Re-revoking another cert keeps the first entry. *)
  let second = Issue.issue rng ~parent:inter (Issue.spec (Dn.make ~cn:"b.example" ())) in
  Crl_registry.revoke rng reg ~issuer:inter ~now second.Issue.cert;
  (match Crl_registry.lookup_for reg ~issuer:inter.Issue.cert with
  | Some crl -> Alcotest.(check int) "two entries" 2 (List.length (Crl.entries crl))
  | None -> Alcotest.fail "CRL expected")

let revocation_during_validation () =
  let rng, root, inter, leaf = mk "reval" in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  let reg = Crl_registry.create () in
  Crl_registry.revoke rng reg ~issuer:inter ~now leaf.Issue.cert;
  let chain = [ leaf.Issue.cert; inter.Issue.cert ] in
  let params = Build_params.default in
  let run crls =
    Engine.run
      (Path_builder.context ~crls:(Option.get crls) ~now ~params store
       |> fun c -> if crls = None then { c with Path_builder.crls = None } else c)
      ~host:(Some "ext.example") chain
  in
  ignore run;
  let ctx = Path_builder.context ~crls:reg ~now ~params store in
  (match (Engine.run ctx ~host:(Some "ext.example") chain).Engine.result with
  | Error (Engine.Validate (Path_validate.Revoked 0)) -> ()
  | Ok _ -> Alcotest.fail "revoked leaf accepted"
  | Error e -> Alcotest.fail (Engine.error_to_string e));
  (* Without a registry the same chain validates (soft fail). *)
  let ctx2 = Path_builder.context ~now ~params store in
  Alcotest.(check bool) "no CRLs -> accepted" true
    (Engine.accepted (Engine.run ctx2 ~host:(Some "ext.example") chain))

let revocation_during_construction () =
  (* The three integration styles give three different observable outcomes on
     a revoked leaf: ignored / rejected at validation / never constructed. *)
  let rng, root, inter, leaf = mk "rcons" in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  let reg = Crl_registry.create () in
  Crl_registry.revoke rng reg ~issuer:inter ~now leaf.Issue.cert;
  let chain = [ leaf.Issue.cert; inter.Issue.cert ] in
  let run mode =
    let params = { Build_params.default with Build_params.revocation = mode } in
    Engine.run
      (Path_builder.context ~crls:reg ~now ~params store)
      ~host:(Some "ext.example") chain
  in
  Alcotest.(check bool) "ignored when revocation is off" true
    (Engine.accepted (run Build_params.No_revocation));
  (match (run Build_params.During_validation).Engine.result with
  | Error (Engine.Validate (Path_validate.Revoked 0)) -> ()
  | _ -> Alcotest.fail "expected a Revoked validation error");
  (* MbedTLS style: the revoked link never forms, so construction dead-ends
     before any path exists. *)
  let constructed = run Build_params.During_construction in
  (match constructed.Engine.result with
  | Error (Engine.Build (Path_builder.No_issuer_found _)) -> ()
  | Ok _ -> Alcotest.fail "revoked chain accepted"
  | Error e -> Alcotest.fail (Engine.error_to_string e));
  Alcotest.(check bool) "no path was ever constructed" true
    (constructed.Engine.constructed = None)

(* --- Recommend --- *)

let pop = lazy (Population.generate ~scale:0.002 ())

let report_for scenario =
  let p = Lazy.force pop in
  let r =
    Array.to_list p.Population.domains
    |> List.find (fun r -> r.Population.scenario = scenario)
  in
  (p, r, Population.compliance_report p r)

let advice_for_reversed () =
  let _, _, rep = report_for Calibration.Rev_merge_1int in
  let advice = Recommend.server_advice rep in
  Alcotest.(check bool) "mentions reordering" true
    (List.exists
       (fun a ->
         a.Recommend.audience = Recommend.For_administrator
         && a.Recommend.severity = `Must)
       advice);
  Alcotest.(check bool) "blames the CA too" true
    (List.exists (fun a -> a.Recommend.audience = Recommend.For_ca) advice)

let advice_empty_for_compliant () =
  let _, _, rep = report_for Calibration.Ok_plain in
  Alcotest.(check int) "no advice" 0 (List.length (Recommend.server_advice rep))

let corrected_chain_works () =
  let p, r, rep = report_for Calibration.Rev_merge_1int in
  match Recommend.corrected_chain rep with
  | None -> Alcotest.fail "correction expected"
  | Some fixed ->
      let u = p.Population.universe in
      let rep' =
        Compliance.analyze ~store:(Universe.union_store u) ~aia:(Universe.aia u)
          ~domain:r.Population.domain fixed
      in
      Alcotest.(check bool) "corrected chain compliant" true (Compliance.compliant rep')

let corrected_chain_refuses_incomplete () =
  let _, _, rep = report_for Calibration.Inc_missing1 in
  Alcotest.(check bool) "no correction for missing certs" true
    (Recommend.corrected_chain rep = None)

let ablation_monotone () =
  let p = Lazy.force pop in
  let env = Population.env p in
  let corpus =
    Array.to_list p.Population.domains
    |> List.filteri (fun i _ -> i mod 11 = 0)
    |> List.map (fun r -> (r.Population.domain, r.Population.chain))
  in
  let steps =
    Recommend.capability_ablation
      ~store:(env.Difftest.store_of Root_store.Mozilla)
      ~aia:env.Difftest.aia ~now:env.Difftest.now corpus
  in
  Alcotest.(check int) "five rungs" 5 (List.length steps);
  let accepted = List.map (fun s -> s.Recommend.accepted) steps in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "acceptance never decreases up the ladder" true
    (monotone accepted)

let ambiguity_stats () =
  let p = Lazy.force pop in
  let chains =
    Array.to_list p.Population.domains
    |> List.map (fun r -> (r.Population.domain, r.Population.chain))
  in
  let stats =
    Recommend.ambiguity_statistics
      ~store:(Universe.union_store p.Population.universe) chains
  in
  Alcotest.(check bool) "ties found" true (stats.Recommend.chains_with_ties > 0);
  Alcotest.(check bool) "subsets bounded" true
    (stats.Recommend.tie_with_trusted_root <= stats.Recommend.chains_with_ties
    && stats.Recommend.tie_validity_variants <= stats.Recommend.chains_with_ties)

(* --- Fuzzer --- *)

let fuzzer_mutations_shape () =
  let _, root, inter, leaf = mk "fuzz" in
  let chain = [ leaf.Issue.cert; inter.Issue.cert; root.Issue.cert ] in
  let pool = [ (Issue.self_signed (Prng.of_label "fuzz-pool") (Issue.spec ~is_ca:true (Dn.make ~cn:"P" ()))).Issue.cert ] in
  Alcotest.(check int) "drop" 2 (List.length (Fuzzer.apply ~pool chain (Fuzzer.Drop 1)));
  Alcotest.(check int) "dup" 4 (List.length (Fuzzer.apply ~pool chain (Fuzzer.Duplicate 0)));
  Alcotest.(check int) "inject" 4
    (List.length (Fuzzer.apply ~pool chain (Fuzzer.Inject_unrelated 2)));
  Alcotest.(check int) "truncate" 1 (List.length (Fuzzer.apply ~pool chain (Fuzzer.Truncate 1)));
  (* Out-of-range mutations are identity. *)
  Alcotest.(check bool) "oob drop id" true
    (List.equal Cert.equal chain (Fuzzer.apply ~pool chain (Fuzzer.Drop 99)));
  Alcotest.(check bool) "swap same index id" true
    (List.equal Cert.equal chain (Fuzzer.apply ~pool chain (Fuzzer.Swap (1, 1))));
  let rev = Fuzzer.apply ~pool chain Fuzzer.Reverse_tail in
  Alcotest.(check bool) "reverse keeps leaf first" true
    (Cert.equal (List.hd rev) leaf.Issue.cert)

let fuzzer_run_no_crashes () =
  let p = Lazy.force pop in
  let env = Population.env p in
  let seeds =
    Array.to_list p.Population.domains
    |> List.filteri (fun i _ -> i mod 97 = 0)
    |> List.map (fun r -> (r.Population.domain, r.Population.chain))
  in
  let rng = Prng.of_label "fuzz-run" in
  let report = Fuzzer.run ~env ~rng ~iterations:150 seeds in
  Alcotest.(check int) "iterations recorded" 150 report.Fuzzer.iterations;
  Alcotest.(check (list (pair (list reject) string))) "no crashes" []
    (List.map (fun (ms, e) -> (List.map (fun _ -> ()) ms, e)) report.Fuzzer.crashes
     |> List.map (fun (us, e) -> (us, e)));
  Alcotest.(check bool) "divergences found" true (report.Fuzzer.divergences <> []);
  (* Divergences really diverge. *)
  List.iter
    (fun d ->
      let oks = List.filter snd d.Fuzzer.verdicts in
      Alcotest.(check bool) "mixed verdicts" true
        (oks <> [] && List.length oks < List.length d.Fuzzer.verdicts))
    report.Fuzzer.divergences

let fuzzer_deterministic () =
  let p = Lazy.force pop in
  let env = Population.env p in
  let seeds =
    [ (let r = p.Population.domains.(0) in (r.Population.domain, r.Population.chain)) ]
  in
  let a = Fuzzer.run ~env ~rng:(Prng.create 7L) ~iterations:50 seeds in
  let b = Fuzzer.run ~env ~rng:(Prng.create 7L) ~iterations:50 seeds in
  Alcotest.(check int) "same divergence count"
    (List.length a.Fuzzer.divergences)
    (List.length b.Fuzzer.divergences)

let suite =
  [ Alcotest.test_case "crl basics" `Quick crl_basics;
    Alcotest.test_case "crl registry" `Quick crl_registry;
    Alcotest.test_case "revocation during validation" `Quick revocation_during_validation;
    Alcotest.test_case "revocation during construction" `Quick revocation_during_construction;
    Alcotest.test_case "advice for reversed" `Slow advice_for_reversed;
    Alcotest.test_case "no advice when compliant" `Slow advice_empty_for_compliant;
    Alcotest.test_case "corrected chain compliant" `Slow corrected_chain_works;
    Alcotest.test_case "no correction when incomplete" `Slow corrected_chain_refuses_incomplete;
    Alcotest.test_case "ablation monotone" `Slow ablation_monotone;
    Alcotest.test_case "ambiguity statistics" `Slow ambiguity_stats;
    Alcotest.test_case "fuzzer mutations" `Quick fuzzer_mutations_shape;
    Alcotest.test_case "fuzzer finds divergences, no crashes" `Slow fuzzer_run_no_crashes;
    Alcotest.test_case "fuzzer deterministic" `Slow fuzzer_deterministic ]
