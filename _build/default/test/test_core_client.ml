(* Client-side engine: path building knobs, validation, the eight client
   profiles, capability inference (Table 9) and differential testing. *)

open Chaoschain_x509
open Chaoschain_pki
open Chaoschain_core
module Prng = Chaoschain_crypto.Prng

let now = Vtime.make ~y:2024 ~m:6 ~d:1 ()

let mk label =
  let rng = Prng.of_label ("client:" ^ label) in
  let root =
    Issue.self_signed rng
      (Issue.spec ~is_ca:true ~not_before:(Vtime.add_years now (-10))
         ~not_after:(Vtime.add_years now 10) (Dn.make ~o:"C" ~cn:("Root " ^ label) ()))
  in
  let i2 =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~not_before:(Vtime.add_years now (-5))
         ~not_after:(Vtime.add_years now 5) (Dn.make ~o:"C" ~cn:("I2 " ^ label) ()))
  in
  let i1 =
    Issue.issue rng ~parent:i2
      (Issue.spec ~is_ca:true ~path_len:0 ~not_before:(Vtime.add_years now (-4))
         ~not_after:(Vtime.add_years now 4) (Dn.make ~o:"C" ~cn:("I1 " ^ label) ()))
  in
  let leaf =
    Issue.issue rng ~parent:i1
      (Issue.spec ~san:[ Extension.Dns "cli.example" ] (Dn.make ~cn:"cli.example" ()))
  in
  (rng, root, i2, i1, leaf)

let ctx ?(params = Build_params.default) ?(cache = []) ?aia store =
  { Path_builder.params; store; aia; cache; crls = None; now }

let run ?(params = Build_params.default) ?cache ?aia ~store chain =
  Engine.run (ctx ~params ?cache ?aia store) ~host:(Some "cli.example") chain

let accepted o = Engine.accepted o

(* --- builder knobs --- *)

let builder_reorder_flag () =
  let _, root, i2, i1, leaf = mk "reorder" in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  let reversed = [ leaf.Issue.cert; i2.Issue.cert; i1.Issue.cert ] in
  Alcotest.(check bool) "reorder succeeds" true (accepted (run ~store reversed));
  let no_reorder = { Build_params.default with Build_params.reorder = false } in
  Alcotest.(check bool) "forward-only fails" false
    (accepted (run ~params:no_reorder ~store reversed));
  (* ...but passes when only later positions are needed. *)
  Alcotest.(check bool) "forward-only ordered ok" true
    (accepted (run ~params:no_reorder ~store [ leaf.Issue.cert; i1.Issue.cert; i2.Issue.cert ]))

let builder_input_vs_constructed_limit () =
  let _, root, i2, i1, leaf = mk "limits" in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  let chain = [ leaf.Issue.cert; i1.Issue.cert; i2.Issue.cert ] in
  let junk = mk "limits-junk" in
  let _, _, _, _, junk_leaf = junk in
  (* Input-list semantics (GnuTLS): irrelevant certs count against the cap. *)
  let padded = chain @ List.init 3 (fun _ -> junk_leaf.Issue.cert) in
  let input4 = { Build_params.default with Build_params.length_limit = Build_params.Max_input_list 4 } in
  Alcotest.(check bool) "input limit trips on padding" false
    (accepted (run ~params:input4 ~store padded));
  (match (run ~params:input4 ~store padded).Engine.result with
  | Error (Engine.Build (Path_builder.Input_list_too_long { limit = 4; got = 6 })) -> ()
  | _ -> Alcotest.fail "expected Input_list_too_long {4, 6}");
  (* Constructed semantics tolerates the same padding. *)
  let built4 = { Build_params.default with Build_params.length_limit = Build_params.Max_constructed 4 } in
  Alcotest.(check bool) "constructed limit ignores padding" true
    (accepted (run ~params:built4 ~store padded));
  let built3 = { Build_params.default with Build_params.length_limit = Build_params.Max_constructed 3 } in
  Alcotest.(check bool) "constructed limit of 3 too small" false
    (accepted (run ~params:built3 ~store chain))

let builder_self_signed_leaf () =
  let rng = Prng.of_label "ssl-leaf" in
  let es =
    Issue.self_signed rng
      (Issue.spec ~san:[ Extension.Dns "cli.example" ] (Dn.make ~cn:"cli.example" ()))
  in
  let store = Root_store.make "s" [] in
  let forbid = run ~store [ es.Issue.cert ] in
  (match forbid.Engine.result with
  | Error (Engine.Build Path_builder.Self_signed_leaf_rejected) -> ()
  | _ -> Alcotest.fail "expected rejection");
  let allow =
    { Build_params.default with Build_params.allow_self_signed_leaf = true }
  in
  (match (run ~params:allow ~store [ es.Issue.cert ]).Engine.result with
  | Error (Engine.Validate Path_validate.Self_signed_leaf) -> ()
  | _ -> Alcotest.fail "expected self-signed-leaf validation error")

let builder_aia_and_cache () =
  let _, root, i2, i1, _ = mk "fetch" in
  let rng = Prng.of_label "client:fetch2" in
  let leaf =
    Issue.issue rng ~parent:i1
      (Issue.spec ~san:[ Extension.Dns "cli.example" ]
         ~aia_ca_issuers:[ "http://f/i1.crt" ] (Dn.make ~cn:"cli.example" ()))
  in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  let aia = Aia_repo.create () in
  Aia_repo.publish aia ~uri:"http://f/i1.crt" i1.Issue.cert;
  Aia_repo.publish aia ~uri:"http://f/i2.crt" i2.Issue.cert;
  (* i1's own AIA needs to point at i2 for recursive completion; rebuild i1
     would change keys, so serve chain missing only i2 instead. *)
  let missing_i2 = [ leaf.Issue.cert; i1.Issue.cert ] in
  let no_fetch = run ~store missing_i2 in
  Alcotest.(check bool) "no sources fails" false (accepted no_fetch);
  let with_cache =
    { Build_params.default with Build_params.intermediate_cache = true }
  in
  let cached = run ~params:with_cache ~cache:[ i2.Issue.cert ] ~store missing_i2 in
  Alcotest.(check bool) "cache completes" true (accepted cached);
  (match cached.Engine.accepted_attempt with
  | Some a -> Alcotest.(check bool) "used cache flag" true a.Path_builder.used_cache
  | None -> Alcotest.fail "expected accepted attempt");
  (* Cache disabled by the knob even when provided. *)
  Alcotest.(check bool) "cache knob gates the cache" false
    (accepted (run ~cache:[ i2.Issue.cert ] ~store missing_i2));
  (* The leaf's AIA finds i1; i1 has no AIA of its own, so the cache supplies
     i2 and the store anchors the path. *)
  Alcotest.(check bool) "aia + cache combine" true
    (let o = run ~params:with_cache ~aia ~store ~cache:[ i2.Issue.cert ] [ leaf.Issue.cert ] in
     accepted o
     && match o.Engine.accepted_attempt with
        | Some a -> a.Path_builder.used_aia && a.Path_builder.used_cache
        | None -> false)

let builder_backtracking () =
  let rng = Prng.of_label "backtrack" in
  let trusted = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"BT Trusted" ())) in
  let hidden = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"BT Hidden" ())) in
  let inter = Issue.issue rng ~parent:trusted (Issue.spec ~is_ca:true (Dn.make ~cn:"BT I" ())) in
  let cross = Issue.cross_sign rng ~parent:hidden ~existing:inter () in
  let leaf =
    Issue.issue rng ~parent:inter
      (Issue.spec ~san:[ Extension.Dns "cli.example" ] (Dn.make ~cn:"cli.example" ()))
  in
  let store = Root_store.make "s" [ trusted.Issue.cert ] in
  (* The bad branch first in list order. *)
  let chain = [ leaf.Issue.cert; cross; hidden.Issue.cert; inter.Issue.cert; trusted.Issue.cert ] in
  let no_bt =
    { Build_params.default with Build_params.backtracking = false;
      prefer_trusted_root = false; prefer_self_signed = false;
      kid_priority = Build_params.KP_none; validity_priority = Build_params.VP_none }
  in
  let committed = run ~params:no_bt ~store chain in
  Alcotest.(check bool) "committed path fails" false (accepted committed);
  Alcotest.(check int) "single attempt" 1 committed.Engine.attempts;
  let bt = { no_bt with Build_params.backtracking = true } in
  let recovered = run ~params:bt ~store chain in
  Alcotest.(check bool) "backtracking recovers" true (accepted recovered);
  Alcotest.(check bool) "needed >1 attempt" true (recovered.Engine.attempts > 1)

let builder_partial_validation () =
  let rng = Prng.of_label "partial" in
  let root = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"PV Root" ())) in
  let real = Issue.issue rng ~parent:root (Issue.spec ~is_ca:true (Dn.make ~cn:"PV I" ())) in
  (* An impostor with the same subject DN but an unrelated key. *)
  let impostor_parent = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"PV Root" ())) in
  let impostor =
    Issue.issue rng ~parent:impostor_parent (Issue.spec ~is_ca:true (Dn.make ~cn:"PV I" ()))
  in
  let leaf =
    Issue.issue rng ~parent:real
      (Issue.spec ~san:[ Extension.Dns "cli.example" ] (Dn.make ~cn:"cli.example" ()))
  in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  let chain = [ leaf.Issue.cert; impostor.Issue.cert; real.Issue.cert; root.Issue.cert ] in
  (* Without partial validation and without KID ranking, the impostor (first
     in list) is chosen and the committed path fails on signatures. *)
  let naive =
    { Build_params.default with Build_params.partial_validation = false;
      backtracking = false; kid_priority = Build_params.KP_none;
      validity_priority = Build_params.VP_none; prefer_trusted_root = false;
      prefer_self_signed = false }
  in
  Alcotest.(check bool) "naive picks impostor and fails" false
    (accepted (run ~params:naive ~store chain));
  let partial = { naive with Build_params.partial_validation = true } in
  Alcotest.(check bool) "partial validation skips impostor" true
    (accepted (run ~params:partial ~store chain))

let builder_dead_end_reporting () =
  let _, root, _, i1, leaf = mk "deadend" in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  match (run ~store [ leaf.Issue.cert; i1.Issue.cert ]).Engine.result with
  | Error (Engine.Build (Path_builder.No_issuer_found dn)) ->
      Alcotest.(check bool) "dead end names i1's issuer" true
        (Dn.equal dn (Cert.issuer i1.Issue.cert))
  | _ -> Alcotest.fail "expected No_issuer_found"

(* --- validation --- *)

let validate_errors () =
  let rng = Prng.of_label "validate" in
  let root = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"V Root" ())) in
  let i1 = Issue.issue rng ~parent:root (Issue.spec ~is_ca:true ~path_len:0 (Dn.make ~cn:"V I" ())) in
  let leaf =
    Issue.issue rng ~parent:i1
      (Issue.spec ~san:[ Extension.Dns "v.example" ] (Dn.make ~cn:"v.example" ()))
  in
  let store = Root_store.make "s" [ root.Issue.cert ] in
  let path = [ leaf.Issue.cert; i1.Issue.cert; root.Issue.cert ] in
  let ok = Path_validate.validate ~store ~now ~host:(Some "v.example") path in
  Alcotest.(check bool) "valid path" true (Result.is_ok ok);
  Alcotest.(check bool) "hostname mismatch" true
    (Path_validate.validate ~store ~now ~host:(Some "other.example") path
    = Error (Path_validate.Hostname_mismatch "other.example"));
  Alcotest.(check bool) "untrusted when store empty" true
    (match Path_validate.validate ~store:(Root_store.make "e" []) ~now ~host:None path with
    | Error (Path_validate.Untrusted_root _) -> true
    | _ -> false);
  let expired_leaf =
    Issue.issue rng ~parent:i1
      (Issue.spec ~faults:[ Issue.Expired ] ~san:[ Extension.Dns "v.example" ]
         (Dn.make ~cn:"v.example" ()))
  in
  Alcotest.(check bool) "expired leaf" true
    (Path_validate.validate ~store ~now ~host:None
       [ expired_leaf.Issue.cert; i1.Issue.cert; root.Issue.cert ]
    = Error (Path_validate.Expired 0));
  (* pathLen violation: i1 has pathLen 0 but another CA sits below it. *)
  let sub = Issue.issue rng ~parent:i1 (Issue.spec ~is_ca:true (Dn.make ~cn:"V Sub" ())) in
  let deep_leaf =
    Issue.issue rng ~parent:sub
      (Issue.spec ~san:[ Extension.Dns "v.example" ] (Dn.make ~cn:"v.example" ()))
  in
  Alcotest.(check bool) "path length exceeded" true
    (Path_validate.validate ~store ~now ~host:None
       [ deep_leaf.Issue.cert; sub.Issue.cert; i1.Issue.cert; root.Issue.cert ]
    = Error (Path_validate.Path_len_exceeded 2));
  (* keyCertSign missing on an intermediate. *)
  let badku =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~faults:[ Issue.Wrong_key_usage ] (Dn.make ~cn:"V KU" ()))
  in
  let ku_leaf =
    Issue.issue rng ~parent:badku
      (Issue.spec ~san:[ Extension.Dns "v.example" ] (Dn.make ~cn:"v.example" ()))
  in
  Alcotest.(check bool) "bad key usage" true
    (Path_validate.validate ~store ~now ~host:None
       [ ku_leaf.Issue.cert; badku.Issue.cert; root.Issue.cert ]
    = Error (Path_validate.Bad_key_usage 1));
  (* Not-a-CA intermediate. *)
  let notca =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~faults:[ Issue.Not_a_ca ] (Dn.make ~cn:"V NC" ()))
  in
  let nc_leaf =
    Issue.issue rng ~parent:notca
      (Issue.spec ~san:[ Extension.Dns "v.example" ] (Dn.make ~cn:"v.example" ()))
  in
  Alcotest.(check bool) "not a ca" true
    (Path_validate.validate ~store ~now ~host:None
       [ nc_leaf.Issue.cert; notca.Issue.cert; root.Issue.cert ]
    = Error (Path_validate.Not_a_ca 1))

(* --- Table 9 regression: the headline client result --- *)

let table9_regression () =
  List.iter
    (fun client ->
      List.iter
        (fun test ->
          Alcotest.(check string)
            (Printf.sprintf "%s / %s" client.Clients.name (Capability.test_name test))
            (Capability.table9_expected client.Clients.id test)
            (Capability.evaluate client test))
        Capability.all_tests)
    Clients.all

let reference_client_all_capable () =
  (* The RFC 4158 reference builder passes every basic capability. *)
  List.iter
    (fun test ->
      Alcotest.(check string)
        (Capability.test_name test)
        "yes"
        (Capability.evaluate Clients.reference test))
    [ Capability.Order_reorganization; Capability.Redundancy_elimination;
      Capability.Aia_completion ]

let client_error_rendering () =
  let fx = Capability.fixture Capability.Aia_completion in
  let mbed = Capability.run_client (Clients.by_id Clients.Mbedtls) fx in
  (match mbed.Engine.result with
  | Error e ->
      Alcotest.(check string) "mbedtls vocabulary" "X509_BADCERT_NOT_TRUSTED"
        (Clients.render_error (Clients.by_id Clients.Mbedtls) e)
  | Ok _ -> Alcotest.fail "MbedTLS should fail the AIA test");
  let ff = Capability.run_client (Clients.by_id Clients.Firefox) fx in
  match ff.Engine.result with
  | Error e ->
      Alcotest.(check string) "firefox vocabulary" "SEC_ERROR_UNKNOWN_ISSUER"
        (Clients.render_error (Clients.by_id Clients.Firefox) e)
  | Ok _ -> Alcotest.fail "Firefox (empty cache) should fail the AIA test"

let clients_registry () =
  Alcotest.(check int) "eight clients" 8 (List.length Clients.all);
  Alcotest.(check int) "four libraries" 4 (List.length Clients.libraries);
  Alcotest.(check int) "four browsers" 4 (List.length Clients.browsers);
  Alcotest.(check string) "lookup" "GnuTLS" (Clients.by_id Clients.Gnutls).Clients.name

(* --- permutation property: a fully-capable client is order-insensitive --- *)

let qcheck_permutation_insensitive =
  QCheck.Test.make ~name:"reorder-capable builder is permutation-insensitive" ~count:40
    QCheck.(int_bound 1000)
    (fun seed ->
      let _, root, i2, i1, leaf = mk "perm" in
      let store = Root_store.make "s" [ root.Issue.cert ] in
      let g = Prng.create (Int64.of_int seed) in
      let arr = [| leaf.Issue.cert; i1.Issue.cert; i2.Issue.cert; root.Issue.cert |] in
      let tail = Array.sub arr 1 3 in
      Prng.shuffle g tail;
      let chain = arr.(0) :: Array.to_list tail in
      accepted (run ~store chain))

let suite =
  [ Alcotest.test_case "builder reorder flag" `Quick builder_reorder_flag;
    Alcotest.test_case "builder length limits" `Quick builder_input_vs_constructed_limit;
    Alcotest.test_case "builder self-signed leaf" `Quick builder_self_signed_leaf;
    Alcotest.test_case "builder aia and cache" `Quick builder_aia_and_cache;
    Alcotest.test_case "builder backtracking" `Quick builder_backtracking;
    Alcotest.test_case "builder partial validation" `Quick builder_partial_validation;
    Alcotest.test_case "builder dead-end reporting" `Quick builder_dead_end_reporting;
    Alcotest.test_case "path validation errors" `Quick validate_errors;
    Alcotest.test_case "Table 9 regression (72 cells)" `Slow table9_regression;
    Alcotest.test_case "reference client fully capable" `Quick reference_client_all_capable;
    Alcotest.test_case "client error vocabulary" `Quick client_error_rendering;
    Alcotest.test_case "clients registry" `Quick clients_registry;
    QCheck_alcotest.to_alcotest qcheck_permutation_insensitive ]
