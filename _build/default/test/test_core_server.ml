(* Server-side analyses: topology graphs, leaf placement, issuance order,
   completeness, combined compliance. *)

open Chaoschain_x509
open Chaoschain_pki
open Chaoschain_core
module Prng = Chaoschain_crypto.Prng

let now = Vtime.make ~y:2024 ~m:6 ~d:1 ()

type pki = {
  root : Issue.signer;
  i2 : Issue.signer;  (* upper intermediate *)
  i1 : Issue.signer;  (* issuing intermediate *)
  leaf : Issue.signer;
  store : Root_store.t;
  aia : Aia_repo.t;
}

let mk label =
  let rng = Prng.of_label ("server:" ^ label) in
  let root =
    Issue.self_signed rng
      (Issue.spec ~is_ca:true ~not_before:(Vtime.add_years now (-10))
         ~not_after:(Vtime.add_years now 10) (Dn.make ~o:"S" ~cn:("Root " ^ label) ()))
  in
  let aia = Aia_repo.create () in
  Aia_repo.publish aia ~uri:"http://s/root.crt" root.Issue.cert;
  let i2 =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~not_before:(Vtime.add_years now (-5))
         ~not_after:(Vtime.add_years now 5) ~aia_ca_issuers:[ "http://s/root.crt" ]
         (Dn.make ~o:"S" ~cn:("I2 " ^ label) ()))
  in
  Aia_repo.publish aia ~uri:"http://s/i2.crt" i2.Issue.cert;
  let i1 =
    Issue.issue rng ~parent:i2
      (Issue.spec ~is_ca:true ~path_len:0 ~not_before:(Vtime.add_years now (-4))
         ~not_after:(Vtime.add_years now 4) ~aia_ca_issuers:[ "http://s/i2.crt" ]
         (Dn.make ~o:"S" ~cn:("I1 " ^ label) ()))
  in
  Aia_repo.publish aia ~uri:"http://s/i1.crt" i1.Issue.cert;
  let leaf =
    Issue.issue rng ~parent:i1
      (Issue.spec ~san:[ Extension.Dns "srv.example" ]
         ~aia_ca_issuers:[ "http://s/i1.crt" ] (Dn.make ~cn:"srv.example" ()))
  in
  { root; i2; i1; leaf; store = Root_store.make "s" [ root.Issue.cert ]; aia }

let certs p which =
  List.map
    (fun w ->
      match w with
      | `L -> p.leaf.Issue.cert
      | `I1 -> p.i1.Issue.cert
      | `I2 -> p.i2.Issue.cert
      | `R -> p.root.Issue.cert)
    which

(* --- Topology --- *)

let topology_basic () =
  let p = mk "topo" in
  let t = Topology.build (certs p [ `L; `I1; `I2; `R ]) in
  Alcotest.(check int) "4 nodes" 4 (Topology.node_count t);
  Alcotest.(check int) "4 in list" 4 (Topology.list_length t);
  Alcotest.(check int) "one path" 1 (List.length (Topology.paths t));
  Alcotest.(check int) "path length" 4 (List.length (List.hd (Topology.paths t)));
  Alcotest.(check int) "no duplicates" 0 (List.length (Topology.duplicates t));
  Alcotest.(check int) "no irrelevant" 0 (List.length (Topology.irrelevant t))

let topology_duplicates () =
  let p = mk "dups" in
  let t = Topology.build (certs p [ `L; `I1; `I1; `R; `I1 ]) in
  Alcotest.(check int) "3 unique nodes" 3 (Topology.node_count t);
  (match Topology.duplicates t with
  | [ node ] ->
      Alcotest.(check (list int)) "occurrences" [ 1; 2; 4 ] node.Topology.occurrences
  | _ -> Alcotest.fail "expected exactly one duplicated node");
  Alcotest.(check bool) "render shows relabel" true
    (let r = Topology.render t in
     String.length r > 0
     &&
     let rec contains i =
       i + 4 <= String.length r && (String.sub r i 4 = "1[1]" || contains (i + 1))
     in
     contains 0)

let topology_irrelevant_and_paths () =
  let p = mk "irr" in
  let q = mk "irr-other" in
  let t =
    Topology.build
      (certs p [ `L; `I1; `I2 ] @ [ q.i1.Issue.cert; q.root.Issue.cert ])
  in
  Alcotest.(check int) "two irrelevant" 2 (List.length (Topology.irrelevant t));
  Alcotest.(check int) "still one leaf path" 1 (List.length (Topology.paths t))

let topology_cycle_terminates () =
  (* Two CAs cross-signing each other: the CVE-2024-0567 loop shape. *)
  let rng = Prng.of_label "cycle" in
  let a = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"CycleA" ())) in
  let b = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"CycleB" ())) in
  let a_by_b = Issue.cross_sign rng ~parent:b ~existing:a () in
  let b_by_a = Issue.cross_sign rng ~parent:a ~existing:b () in
  let leaf = Issue.issue rng ~parent:a (Issue.spec (Dn.make ~cn:"cyc.example" ())) in
  let t = Topology.build [ leaf.Issue.cert; a_by_b; b_by_a ] in
  (* Must terminate and produce finite paths. *)
  Alcotest.(check bool) "paths finite" true (List.length (Topology.paths t) >= 1)

let topology_empty_rejected () =
  Alcotest.check_raises "empty list"
    (Invalid_argument "Topology.build: empty certificate list") (fun () ->
      ignore (Topology.build []))

(* --- Leaf check --- *)

let leaf_domain_shapes () =
  Alcotest.(check bool) "domain" true (Leaf_check.is_domain_shaped "www.example.com");
  Alcotest.(check bool) "wildcard" true (Leaf_check.is_domain_shaped "*.example.com");
  Alcotest.(check bool) "single label" false (Leaf_check.is_domain_shaped "localhost");
  Alcotest.(check bool) "underscore" false
    (Leaf_check.is_domain_shaped "SophosApplianceCertificate_4C1D");
  Alcotest.(check bool) "numeric tld" false (Leaf_check.is_domain_shaped "example.123");
  Alcotest.(check bool) "empty" false (Leaf_check.is_domain_shaped "");
  Alcotest.(check bool) "ip" true (Leaf_check.is_ip_shaped "192.0.2.7");
  Alcotest.(check bool) "bad ip octet" false (Leaf_check.is_ip_shaped "300.0.2.7");
  Alcotest.(check bool) "not ip" false (Leaf_check.is_ip_shaped "a.b.c.d")

let leaf_classification () =
  let p = mk "leaf" in
  let check name domain chain expected =
    Alcotest.(check string) name
      (Leaf_check.verdict_to_string expected)
      (Leaf_check.verdict_to_string (Leaf_check.classify ~domain chain))
  in
  check "matched" "srv.example" (certs p [ `L; `I1 ]) Leaf_check.Correct_matched;
  check "mismatched" "other.example" (certs p [ `L; `I1 ]) Leaf_check.Correct_mismatched;
  check "incorrectly placed, matched" "srv.example" (certs p [ `I1; `L ])
    Leaf_check.Incorrect_matched;
  (* CA-only chains have O/CN names that are not domain shaped. *)
  check "other" "srv.example"
    [ (Issue.self_signed (Prng.of_label "plesk") (Issue.spec (Dn.make ~cn:"Plesk" ()))).Issue.cert ]
    Leaf_check.Other;
  Alcotest.(check bool) "compliance split" true
    (Leaf_check.compliant Leaf_check.Correct_mismatched
    && not (Leaf_check.compliant Leaf_check.Incorrect_matched))

(* --- Order check --- *)

let order_report chain = Order_check.analyze (Topology.build chain)

let order_compliant () =
  let p = mk "order-ok" in
  let r = order_report (certs p [ `L; `I1; `I2; `R ]) in
  Alcotest.(check bool) "ordered" true r.Order_check.ordered;
  Alcotest.(check (list string)) "no violations" [] (Order_check.violations r);
  let no_root = order_report (certs p [ `L; `I1; `I2 ]) in
  Alcotest.(check bool) "root omission still ordered" true no_root.Order_check.ordered

let order_reversed () =
  let p = mk "order-rev" in
  let r = order_report (certs p [ `L; `I2; `I1 ]) in
  Alcotest.(check bool) "reversed detected" true (Order_check.has_reversed r);
  Alcotest.(check bool) "all paths reversed" true r.Order_check.all_paths_reversed;
  Alcotest.(check bool) "not ordered" false r.Order_check.ordered

let order_duplicate_kinds () =
  let p = mk "order-dup" in
  let r = order_report (certs p [ `L; `L; `I1; `I2; `R; `R ]) in
  let kinds = List.map fst r.Order_check.duplicates in
  Alcotest.(check bool) "dup leaf" true (List.mem Order_check.Dup_leaf kinds);
  Alcotest.(check bool) "dup root" true (List.mem Order_check.Dup_root kinds);
  Alcotest.(check bool) "no dup intermediate" false
    (List.mem Order_check.Dup_intermediate kinds)

let order_irrelevant_kinds () =
  let p = mk "order-irr" in
  let q = mk "order-irr2" in
  let r =
    order_report (certs p [ `L; `I1; `I2 ] @ [ q.root.Issue.cert ])
  in
  (match r.Order_check.irrelevant with
  | [ (Order_check.Irr_self_signed, _) ] -> ()
  | _ -> Alcotest.fail "expected one unrelated self-signed");
  let foreign =
    order_report (certs p [ `L; `I1; `I2 ] @ [ q.i1.Issue.cert; q.i2.Issue.cert ])
  in
  Alcotest.(check bool) "foreign chain recognised" true
    (List.for_all
       (fun (k, _) -> k = Order_check.Irr_foreign_chain)
       foreign.Order_check.irrelevant)

let order_multiple_paths_cross () =
  (* The Figure 2c shape: the intermediate's parent exists self-signed and as
     a cross-sign under a legacy root, giving the leaf two candidate paths. *)
  let rng = Prng.of_label "order-multi" in
  let r1 = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"MR1" ())) in
  let legacy = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"MR legacy" ())) in
  let r1_cross = Issue.cross_sign rng ~parent:legacy ~existing:r1 () in
  let inter = Issue.issue rng ~parent:r1 (Issue.spec ~is_ca:true (Dn.make ~cn:"MI" ())) in
  let leaf = Issue.issue rng ~parent:inter (Issue.spec (Dn.make ~cn:"m.example" ())) in
  let ordered =
    order_report [ leaf.Issue.cert; inter.Issue.cert; r1.Issue.cert; r1_cross ]
  in
  Alcotest.(check bool) "multiple paths" true ordered.Order_check.multiple_paths;
  Alcotest.(check bool) "cross-sign structure recognised" true
    ordered.Order_check.cross_sign_paths;
  Alcotest.(check bool) "no inversion in this arrangement" false
    (Order_check.has_reversed ordered);
  let reversed =
    order_report [ leaf.Issue.cert; r1_cross; inter.Issue.cert; r1.Issue.cert ]
  in
  Alcotest.(check bool) "cross before issuer reverses a path" true
    (Order_check.has_reversed reversed)

(* --- Completeness --- *)

let completeness_cases () =
  let p = mk "complete" in
  let analyze chain =
    Completeness.analyze ~store:p.store ~aia:p.aia (Topology.build chain)
  in
  let v chain = (analyze chain).Completeness.verdict in
  Alcotest.(check string) "with root" "complete chain w/ root"
    (Completeness.verdict_to_string (v (certs p [ `L; `I1; `I2; `R ])));
  Alcotest.(check string) "without root" "complete chain w/o root"
    (Completeness.verdict_to_string (v (certs p [ `L; `I1; `I2 ])));
  let inc = analyze (certs p [ `L; `I1 ]) in
  Alcotest.(check string) "missing I2" "incomplete chain"
    (Completeness.verdict_to_string inc.Completeness.verdict);
  Alcotest.(check bool) "recoverable with one missing" true
    (inc.Completeness.cause = Some (Completeness.Recoverable 1));
  let inc2 = analyze (certs p [ `L ]) in
  Alcotest.(check bool) "two missing" true
    (inc2.Completeness.cause = Some (Completeness.Recoverable 2))

let completeness_no_aia_support () =
  let p = mk "complete-noaia" in
  (* Terminal I2's AKID matches the root in the store: complete without AIA. *)
  let r =
    Completeness.analyze ~aia_enabled:false ~store:p.store ~aia:p.aia
      (Topology.build (certs p [ `L; `I1; `I2 ]))
  in
  Alcotest.(check bool) "store match suffices" true (Completeness.compliant r);
  Alcotest.(check bool) "not via AIA" false r.Completeness.via_aia;
  (* But a missing intermediate cannot be recovered without AIA. *)
  let r2 =
    Completeness.analyze ~aia_enabled:false ~store:p.store ~aia:p.aia
      (Topology.build (certs p [ `L; `I1 ]))
  in
  Alcotest.(check bool) "incomplete without AIA" false (Completeness.compliant r2)

let completeness_akid_absent_needs_aia () =
  let rng = Prng.of_label "akid-absent" in
  let root = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"NA Root" ())) in
  let aia = Aia_repo.create () in
  Aia_repo.publish aia ~uri:"http://na/root.crt" root.Issue.cert;
  let inter =
    Issue.issue rng ~parent:root
      (Issue.spec ~is_ca:true ~faults:[ Issue.No_akid ]
         ~aia_ca_issuers:[ "http://na/root.crt" ] (Dn.make ~cn:"NA I" ()))
  in
  let leaf = Issue.issue rng ~parent:inter (Issue.spec (Dn.make ~cn:"na.example" ())) in
  let store = Root_store.make "na" [ root.Issue.cert ] in
  let topo = Topology.build [ leaf.Issue.cert; inter.Issue.cert ] in
  let with_aia = Completeness.analyze ~store ~aia topo in
  Alcotest.(check bool) "complete via AIA" true (Completeness.compliant with_aia);
  Alcotest.(check bool) "flagged via_aia" true with_aia.Completeness.via_aia;
  let without = Completeness.analyze ~aia_enabled:false ~store ~aia topo in
  Alcotest.(check bool) "incomplete without AIA" false (Completeness.compliant without)

let completeness_failure_causes () =
  let rng = Prng.of_label "causes" in
  let root = Issue.self_signed rng (Issue.spec ~is_ca:true (Dn.make ~cn:"C Root" ())) in
  let inter = Issue.issue rng ~parent:root (Issue.spec ~is_ca:true (Dn.make ~cn:"C I" ())) in
  let aia = Aia_repo.create () in
  let store = Root_store.make "c" [ root.Issue.cert ] in
  let cause leaf_spec =
    let leaf = Issue.issue rng ~parent:inter leaf_spec in
    (Completeness.analyze ~store ~aia (Topology.build [ leaf.Issue.cert ])).Completeness.cause
  in
  Alcotest.(check bool) "aia missing" true
    (cause (Issue.spec (Dn.make ~cn:"c1.example" ())) = Some Completeness.Aia_missing);
  Alcotest.(check bool) "aia fetch failed" true
    (cause (Issue.spec ~aia_ca_issuers:[ "http://c/gone.crt" ] (Dn.make ~cn:"c2.example" ()))
    = Some Completeness.Aia_fetch_failed);
  (* Self-serving URI: wrong certificate. *)
  let selfish =
    Issue.issue rng ~parent:inter
      (Issue.spec ~aia_ca_issuers:[ "http://c/self.crt" ] (Dn.make ~cn:"c3.example" ()))
  in
  Aia_repo.publish aia ~uri:"http://c/self.crt" selfish.Issue.cert;
  Alcotest.(check bool) "wrong cert" true
    ((Completeness.analyze ~store ~aia (Topology.build [ selfish.Issue.cert ])).Completeness.cause
    = Some Completeness.Aia_wrong_cert)

(* --- Compliance (combined) --- *)

let compliance_combined () =
  let p = mk "comp" in
  let analyze chain = Compliance.analyze ~store:p.store ~aia:p.aia ~domain:"srv.example" chain in
  Alcotest.(check bool) "good chain compliant" true
    (Compliance.compliant (analyze (certs p [ `L; `I1; `I2 ])));
  let bad = analyze (certs p [ `L; `I2; `I1 ]) in
  Alcotest.(check bool) "reversed not compliant" false (Compliance.compliant bad);
  Alcotest.(check bool) "reasons mention order" true
    (List.exists
       (fun r ->
         String.length r >= 8 && String.sub r 0 8 = "reversed")
       (Compliance.non_compliance_reasons bad));
  (* The report pretty-printer runs without exception. *)
  Alcotest.(check bool) "report renders" true
    (String.length (Format.asprintf "%a" Compliance.pp_report bad) > 0)

let suite =
  [ Alcotest.test_case "topology basic" `Quick topology_basic;
    Alcotest.test_case "topology duplicates" `Quick topology_duplicates;
    Alcotest.test_case "topology irrelevant" `Quick topology_irrelevant_and_paths;
    Alcotest.test_case "topology cross-sign cycle terminates" `Quick topology_cycle_terminates;
    Alcotest.test_case "topology rejects empty" `Quick topology_empty_rejected;
    Alcotest.test_case "leaf domain shapes" `Quick leaf_domain_shapes;
    Alcotest.test_case "leaf classification" `Quick leaf_classification;
    Alcotest.test_case "order compliant" `Quick order_compliant;
    Alcotest.test_case "order reversed" `Quick order_reversed;
    Alcotest.test_case "order duplicate kinds" `Quick order_duplicate_kinds;
    Alcotest.test_case "order irrelevant kinds" `Quick order_irrelevant_kinds;
    Alcotest.test_case "order multiple paths" `Quick order_multiple_paths_cross;
    Alcotest.test_case "completeness cases" `Quick completeness_cases;
    Alcotest.test_case "completeness without AIA" `Quick completeness_no_aia_support;
    Alcotest.test_case "completeness AKID-absent needs AIA" `Quick completeness_akid_absent_needs_aia;
    Alcotest.test_case "completeness failure causes" `Quick completeness_failure_causes;
    Alcotest.test_case "compliance combined" `Quick compliance_combined ]
