open Chaoschain_x509
open Chaoschain_pki
open Chaoschain_core
open Chaoschain_tlssim

let lab = lazy (Universe.create ~seed:11L ())

let sample_chain n =
  let u = Lazy.force lab in
  let h = Universe.hierarchy u Universe.Digicert in
  let leaf = Universe.mint_leaf u Universe.Digicert ~domain:"tls.example" () in
  let base = [ leaf.Issue.cert; h.Universe.issuing.Issue.cert ] in
  let rec pad k acc = if k = 0 then acc else pad (k - 1) (acc @ [ h.Universe.issuing.Issue.cert ]) in
  pad (max 0 (n - 2)) base

let certmsg_tls12_roundtrip () =
  let chain = sample_chain 3 in
  match Certmsg.decode_tls12 (Certmsg.encode_tls12 chain) with
  | Ok chain' ->
      Alcotest.(check int) "count" 3 (List.length chain');
      List.iter2 (fun a b -> Alcotest.(check bool) "identical" true (Cert.equal a b)) chain chain'
  | Error e -> Alcotest.fail e

let certmsg_tls13_roundtrip () =
  let chain = sample_chain 2 in
  match Certmsg.decode_tls13 (Certmsg.encode_tls13 ~context:"ctx!" chain) with
  | Ok (ctx, chain') ->
      Alcotest.(check string) "context" "ctx!" ctx;
      Alcotest.(check int) "count" 2 (List.length chain')
  | Error e -> Alcotest.fail e

let certmsg_empty_list () =
  match Certmsg.decode_tls12 (Certmsg.encode_tls12 []) with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty list must round-trip"

let certmsg_errors () =
  let good = Certmsg.encode_tls12 (sample_chain 2) in
  let truncated = String.sub good 0 (String.length good - 5) in
  Alcotest.(check bool) "truncated rejected" true
    (Result.is_error (Certmsg.decode_tls12 truncated));
  Alcotest.(check bool) "garbage appended rejected" true
    (Result.is_error (Certmsg.decode_tls12 (good ^ "xx")));
  Alcotest.(check bool) "empty input rejected" true
    (Result.is_error (Certmsg.decode_tls12 ""))

let env () =
  let u = Lazy.force lab in
  { Difftest.store_of = (fun p -> Universe.store u p);
    aia = Universe.aia u;
    firefox_cache = [];
    os_store = [];
    now = Universe.now u }

let handshake_outcomes () =
  let chain = sample_chain 2 in
  let srv = Handshake.server ~name:"tls.example" ~chain in
  let e = env () in
  let t = Handshake.connect e ~client:(Clients.by_id Clients.Chrome) srv in
  Alcotest.(check bool) "chrome connects" true
    (t.Handshake.client_outcome = Handshake.Connection_established);
  Alcotest.(check bool) "message non-empty" true (t.Handshake.certificate_msg_bytes > 100);
  (* A broken chain: browsers warn, libraries refuse. *)
  let broken = [ List.hd chain ] in
  let bad_srv = Handshake.server ~name:"tls.example" ~chain:broken in
  (match (Handshake.connect e ~client:(Clients.by_id Clients.Openssl) bad_srv).Handshake.client_outcome with
  | Handshake.Connection_refused _ -> ()
  | _ -> Alcotest.fail "library should refuse");
  match (Handshake.connect e ~client:(Clients.by_id Clients.Firefox) bad_srv).Handshake.client_outcome with
  | Handshake.Warning_page _ -> ()
  | _ -> Alcotest.fail "browser should warn"

let handshake_both_versions_agree () =
  let chain = sample_chain 2 in
  let srv = Handshake.server ~name:"tls.example" ~chain in
  let e = env () in
  let t12 = Handshake.connect e ~client:(Clients.by_id Clients.Safari) ~version:Handshake.Tls12 srv in
  let t13 = Handshake.connect e ~client:(Clients.by_id Clients.Safari) ~version:Handshake.Tls13 srv in
  Alcotest.(check bool) "same verdict across versions" true
    (t12.Handshake.client_outcome = t13.Handshake.client_outcome)

let availability_impact_shape () =
  let srv = Handshake.server ~name:"tls.example" ~chain:(sample_chain 2) in
  Alcotest.(check int) "eight clients" 8
    (List.length (Handshake.availability_impact (env ()) srv))

let qcheck_certmsg =
  QCheck.Test.make ~name:"certificate message roundtrip at any width" ~count:15
    QCheck.(int_range 1 8)
    (fun n ->
      let chain = sample_chain n in
      match Certmsg.decode_tls12 (Certmsg.encode_tls12 chain) with
      | Ok chain' -> List.length chain' = List.length chain
      | Error _ -> false)

let suite =
  [ Alcotest.test_case "tls12 roundtrip" `Quick certmsg_tls12_roundtrip;
    Alcotest.test_case "tls13 roundtrip" `Quick certmsg_tls13_roundtrip;
    Alcotest.test_case "empty list" `Quick certmsg_empty_list;
    Alcotest.test_case "wire errors" `Quick certmsg_errors;
    Alcotest.test_case "handshake outcomes" `Quick handshake_outcomes;
    Alcotest.test_case "versions agree" `Quick handshake_both_versions_agree;
    Alcotest.test_case "availability impact" `Quick availability_impact_shape;
    QCheck_alcotest.to_alcotest qcheck_certmsg ]
