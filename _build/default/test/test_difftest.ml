(* Differential testing: planted scenarios must be attributed to the paper's
   findings I-1..I-4. *)

open Chaoschain_core
open Chaoschain_measurement
module C = Calibration

let pop = lazy (Population.generate ~scale:0.002 ())

let case_for scenario =
  let p = Lazy.force pop in
  let env = Population.env p in
  match
    Array.to_list p.Population.domains
    |> List.find_opt (fun r ->
           r.Population.scenario = scenario
           && r.Population.blemish = Population.Pristine)
  with
  | None -> None
  | Some r -> Some (Difftest.run_case env ~domain:r.Population.domain r.Population.chain)

let require scenario =
  match case_for scenario with
  | Some c -> c
  | None -> Alcotest.fail ("no pristine instance of scenario in lab population")

let i1_reversed_noroot () =
  let case = require C.Rev_noroot_2int in
  Alcotest.(check bool) "MbedTLS fails" false (Difftest.accepted_by case Clients.Mbedtls);
  Alcotest.(check bool) "OpenSSL passes" true (Difftest.accepted_by case Clients.Openssl);
  Alcotest.(check bool) "attributed to I-1" true
    (List.mem Difftest.I1_no_reorder (Difftest.classify case))

let i2_long_list () =
  let case = require C.Fig_ns3 in
  Alcotest.(check bool) "GnuTLS fails on 29 certs" false
    (Difftest.accepted_by case Clients.Gnutls);
  Alcotest.(check bool) "Chrome passes" true (Difftest.accepted_by case Clients.Chrome);
  Alcotest.(check bool) "attributed to I-2" true
    (List.mem Difftest.I2_list_limit (Difftest.classify case))

let i3_backtracking () =
  let case = require C.Fig_moex in
  Alcotest.(check bool) "OpenSSL commits to the bad path" false
    (Difftest.accepted_by case Clients.Openssl);
  Alcotest.(check bool) "CryptoAPI backtracks" true
    (Difftest.accepted_by case Clients.Cryptoapi);
  Alcotest.(check bool) "MbedTLS survives via forward order" true
    (Difftest.accepted_by case Clients.Mbedtls);
  Alcotest.(check bool) "attributed to I-3" true
    (List.mem Difftest.I3_no_backtracking (Difftest.classify case))

let i4_missing_intermediate () =
  let case = require C.Inc_missing1 in
  Alcotest.(check bool) "OpenSSL fails" false (Difftest.accepted_by case Clients.Openssl);
  Alcotest.(check bool) "MbedTLS fails" false (Difftest.accepted_by case Clients.Mbedtls);
  Alcotest.(check bool) "Chrome fetches via AIA" true (Difftest.accepted_by case Clients.Chrome);
  Alcotest.(check bool) "attributed to I-4" true
    (List.mem Difftest.I4_no_aia (Difftest.classify case))

let agreement_on_compliant () =
  let case = require C.Ok_plain in
  Alcotest.(check bool) "everyone passes" true
    (Difftest.all_browsers_pass case && Difftest.all_libraries_pass case);
  Alcotest.(check (list string)) "no causes" []
    (List.map Difftest.cause_to_string (Difftest.classify case))

let restricted_store_difference () =
  match case_for (C.Ok_restricted C.R_mc_dead_end) with
  | None -> Alcotest.fail "no restricted instance"
  | Some case ->
      (* Trusted by Microsoft/Apple clients, unknown to Mozilla-store ones. *)
      Alcotest.(check bool) "CryptoAPI passes" true (Difftest.accepted_by case Clients.Cryptoapi);
      Alcotest.(check bool) "Safari passes" true (Difftest.accepted_by case Clients.Safari);
      Alcotest.(check bool) "OpenSSL fails" false (Difftest.accepted_by case Clients.Openssl);
      Alcotest.(check bool) "attributed to store difference" true
        (List.mem Difftest.Store_difference (Difftest.classify case))

let summary_consistency () =
  let p = Lazy.force pop in
  let env = Population.env p in
  let cases =
    Array.to_list p.Population.domains
    |> List.filteri (fun i _ -> i mod 37 = 0)
    |> List.map (fun r -> Difftest.run_case env ~domain:r.Population.domain r.Population.chain)
  in
  let s = Difftest.summarize cases in
  Alcotest.(check int) "total" (List.length cases) s.Difftest.total;
  Alcotest.(check bool) "passes bounded by total" true
    (s.Difftest.browsers_all_pass <= s.Difftest.total
    && s.Difftest.libraries_all_pass <= s.Difftest.total);
  Alcotest.(check bool) "discrepancies bounded" true
    (s.Difftest.browser_discrepancies <= s.Difftest.total
    && s.Difftest.library_discrepancies <= s.Difftest.total)

let suite =
  [ Alcotest.test_case "I-1 attribution" `Slow i1_reversed_noroot;
    Alcotest.test_case "I-2 attribution" `Slow i2_long_list;
    Alcotest.test_case "I-3 attribution" `Slow i3_backtracking;
    Alcotest.test_case "I-4 attribution" `Slow i4_missing_intermediate;
    Alcotest.test_case "compliant chains agree" `Slow agreement_on_compliant;
    Alcotest.test_case "store-difference attribution" `Slow restricted_store_difference;
    Alcotest.test_case "summary consistency" `Slow summary_consistency ]
