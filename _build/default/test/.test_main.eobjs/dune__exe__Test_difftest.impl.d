test/test_difftest.ml: Alcotest Array Calibration Chaoschain_core Chaoschain_measurement Clients Difftest Lazy List Population
