test/test_pki.ml: Aia_repo Alcotest Cert Chaoschain_crypto Chaoschain_pki Chaoschain_x509 Dn Issue List Printf Relation Result Root_store String Universe Vtime
