test/test_crypto.ml: Alcotest Bytes Chaoschain_crypto Fun Gen Hex Keys List Printf Prng QCheck QCheck_alcotest Result Sha256 String
