test/test_tlssim.ml: Alcotest Cert Certmsg Chaoschain_core Chaoschain_pki Chaoschain_tlssim Chaoschain_x509 Clients Difftest Handshake Issue Lazy List QCheck QCheck_alcotest Result String Universe
