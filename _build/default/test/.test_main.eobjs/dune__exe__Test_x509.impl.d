test/test_x509.ml: Alcotest Cert Chaoschain_crypto Chaoschain_der Chaoschain_x509 Dn Extension Issue List QCheck QCheck_alcotest Relation Result String Vtime
