test/test_der.ml: Alcotest Chaoschain_der Der List Oid QCheck QCheck_alcotest Result String
