lib/measurement/scanner.mli: Cert Chaoschain_x509 Population
