lib/measurement/scanner.ml: Array Cert Chaoschain_crypto Chaoschain_tlssim Chaoschain_x509 Hashtbl List Population String
