lib/measurement/stats.mli:
