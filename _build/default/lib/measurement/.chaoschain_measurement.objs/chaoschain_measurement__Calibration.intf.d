lib/measurement/calibration.mli:
