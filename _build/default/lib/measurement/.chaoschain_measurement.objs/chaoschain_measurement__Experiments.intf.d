lib/measurement/experiments.mli: Chaoschain_core Compliance Population Scanner
