lib/measurement/population.mli: Calibration Cert Chaoschain_core Chaoschain_pki Chaoschain_x509 Compliance Difftest Universe
