lib/measurement/calibration.ml: Float List Printf Stats
