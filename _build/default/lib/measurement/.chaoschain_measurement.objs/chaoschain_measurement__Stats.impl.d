lib/measurement/stats.ml: Array Buffer Float Int List Printf String
