(** Counting and ASCII table rendering shared by the experiment suite. *)

val pct : int -> int -> string
(** [pct part whole] like ["92.5%"]; ["~0%"] for tiny non-zero shares. *)

val count_pct : int -> int -> string
(** ["838,354 (92.5%)"]. *)

val with_commas : int -> string
(** Thousands separators. *)

val apportion : total:int -> weights:(string * int) list -> (string * int) list
(** Largest-remainder apportionment of [total] across the weighted buckets;
    the result sums exactly to [total]. Weights of zero receive zero. *)

type table

val table : title:string -> header:string list -> table
val add_row : table -> string list -> unit
val add_separator : table -> unit
val render : table -> string
(** Column-aligned ASCII with a title banner. *)
