open Chaoschain_x509
open Chaoschain_core
open Chaoschain_pki
module Prng = Chaoschain_crypto.Prng
module C = Calibration

type blemish = Pristine | Expired_leaf

type record = {
  rank : int;
  domain : string;
  vendor : C.vendor_key;
  universe_vendor : Universe.vendor;
  software : C.server_key;
  scenario : C.scenario;
  blemish : blemish;
  chain : Cert.t list;
}

type t = {
  universe : Universe.t;
  scale : float;
  domains : record array;
  firefox_cache : Cert.t list;
  os_store : Cert.t list;
}

let blemish_fraction_incomplete = 0.50
let blemish_fraction_order = 0.15

let size t = Array.length t.domains

(* --- vendor-key -> universe-vendor --- *)

let universe_vendor_of rng = function
  | C.V_lets_encrypt -> Universe.Lets_encrypt
  | C.V_digicert -> Universe.Digicert
  | C.V_sectigo -> Universe.Sectigo
  | C.V_zerossl -> Universe.Zerossl
  | C.V_gogetssl -> Universe.Gogetssl
  | C.V_taiwan_ca -> Universe.Taiwan_ca
  | C.V_cyber_folks -> Universe.Cyber_folks
  | C.V_trustico -> Universe.Trustico
  | C.V_other -> Universe.Other_ca (Prng.int rng Universe.other_ca_count)

(* --- helpers over hierarchies --- *)

let intermediates (h : Universe.hierarchy) =
  h.Universe.issuing.Issue.cert
  :: List.filter (fun c -> not (Cert.is_self_signed c)) h.Universe.above

let root_of (h : Universe.hierarchy) =
  List.find Cert.is_self_signed (List.rev h.Universe.above)

(* The standard, compliant served list: leaf + intermediates (root omitted). *)
let fullchain leaf h = leaf :: intermediates h

let leaf_faults = function Pristine -> [] | Expired_leaf -> [ Issue.Expired ]

(* --- scenario realisation --- *)

type ctx = {
  u : Universe.t;
  rng : Prng.t;
  foreign_block_twca : Cert.t list Lazy.t;
  foreign_block_epki : Cert.t list Lazy.t;
  other_leaf_cache : (int, Issue.signer) Hashtbl.t;
}

let mint ctx vendor ~domain ?hierarchy ?(faults = []) ?no_aia () =
  Universe.mint_leaf ctx.u vendor ~domain ?hierarchy ~faults ?no_aia ()

(* An intermediate guaranteed unrelated to [vendor]'s chain. *)
let unrelated_intermediate ctx vendor =
  let other =
    match vendor with
    | Universe.Other_ca 3 -> Universe.Other_ca 4
    | _ -> Universe.Other_ca 3
  in
  (Universe.hierarchy ctx.u other).Universe.issuing.Issue.cert

let unrelated_root ctx vendor =
  let other =
    match vendor with
    | Universe.Other_ca 5 -> Universe.Other_ca 6
    | _ -> Universe.Other_ca 5
  in
  root_of (Universe.hierarchy ctx.u other)

let unrelated_leaf ctx rank =
  let idx = rank mod 40 in
  match Hashtbl.find_opt ctx.other_leaf_cache idx with
  | Some s -> s.Issue.cert
  | None ->
      let s =
        mint ctx (Universe.Other_ca (idx mod Universe.other_ca_count))
          ~domain:(Printf.sprintf "parked-%d.hosting.sim" idx) ()
      in
      Hashtbl.replace ctx.other_leaf_cache idx s;
      s.Issue.cert

let stale_leaf ctx (h : Universe.hierarchy) leaf_signer k =
  let nb = Vtime.add_months (Cert.not_before leaf_signer.Issue.cert) (-13 * k) in
  let na = Vtime.add_months nb 12 in
  Issue.reissue ctx.rng ~parent:h.Universe.issuing ~existing:leaf_signer ~not_before:nb
    ~not_after:na

let self_signed_leaf ctx ~cn ~san =
  (Issue.self_signed ctx.rng
     (Issue.spec
        ~san
        ~not_before:(Vtime.add_months (Universe.now ctx.u) (-2))
        ~not_after:(Vtime.add_months (Universe.now ctx.u) 10)
        (match cn with
        | Some cn -> Dn.make ~cn ()
        | None -> Dn.make ~o:"Default Company Ltd" ())))
    .Issue.cert

let cross_pair_or_sectigo ctx vendor =
  match Universe.cross_pair ctx.u vendor with
  | Some pair -> (vendor, pair)
  | None -> (Universe.Sectigo, Option.get (Universe.cross_pair ctx.u Universe.Sectigo))

let realize ctx ~rank ~domain ~vendor ~blemish scenario =
  let faults = leaf_faults blemish in
  let std = Universe.hierarchy ctx.u vendor in
  let leaf ?hierarchy ?no_aia () = mint ctx vendor ~domain ?hierarchy ~faults ?no_aia () in
  match scenario with
  | C.Ok_plain -> fullchain (leaf ()).Issue.cert std
  | C.Ok_with_root -> fullchain (leaf ()).Issue.cert std @ [ root_of std ]
  | C.Ok_leaf_mismatched ->
      let s =
        mint ctx vendor ~domain:(Printf.sprintf "vhost%d.parking-pages.sim" (rank mod 97))
          ~faults ()
      in
      fullchain s.Issue.cert std
  | C.Ok_leaf_other ->
      let cn =
        match rank mod 4 with
        | 0 -> Some "Plesk"
        | 1 -> Some "localhost"
        | 2 -> Some "testexp"
        | _ -> None
      in
      [ self_signed_leaf ctx ~cn ~san:[] ]
  | C.Leaf_incorrect_placed ->
      let www = "www." ^ domain in
      let ss =
        Issue.self_signed ctx.rng
          (Issue.spec ~san:[ Extension.Dns www ]
             ~not_before:(Vtime.add_months (Universe.now ctx.u) (-2))
             ~not_after:(Vtime.add_months (Universe.now ctx.u) 10)
             (Dn.make ~cn:www ()))
      in
      let appliance =
        Issue.issue ctx.rng ~parent:ss
          (Issue.spec (Dn.make ~cn:"SophosApplianceCertificate_4C1D" ()))
      in
      [ appliance.Issue.cert; ss.Issue.cert ]
  | C.Ok_no_akid ->
      let h = Universe.hierarchy_no_akid ctx.u vendor in
      fullchain (leaf ~hierarchy:h ()).Issue.cert h
  | C.Ok_restricted kind ->
      let r =
        match kind with
        | C.R_mc_recoverable -> Universe.restricted_mc_recoverable ctx.u
        | C.R_mc_dead_end -> Universe.restricted_mc_dead_end ctx.u
        | C.R_ms_recoverable -> Universe.restricted_ms_recoverable ctx.u
        | C.R_ms_dead_end -> Universe.restricted_ms_dead_end ctx.u
        | C.R_apple_recoverable -> Universe.restricted_apple_recoverable ctx.u
        | C.R_apple_dead_end -> Universe.restricted_apple_dead_end ctx.u
      in
      let h = r.Universe.r_hierarchy in
      fullchain (leaf ~hierarchy:h ()).Issue.cert h
  | C.Dup_leaf_front ->
      let l = (leaf ()).Issue.cert in
      (l :: l :: intermediates std)
  | C.Dup_leaf_scattered ->
      let l = (leaf ()).Issue.cert in
      (l :: intermediates std) @ [ l ]
  | C.Dup_intermediate n ->
      let l = (leaf ()).Issue.cert in
      let inters = intermediates std in
      let rec paste k acc = if k = 0 then acc else paste (k - 1) (acc @ inters) in
      l :: paste n inters
  | C.Dup_root ->
      let r = root_of std in
      fullchain (leaf ()).Issue.cert std @ [ r; r ]
  | C.Dup_leaf_and_intermediate ->
      let l = (leaf ()).Issue.cert in
      let inters = intermediates std in
      (l :: l :: inters) @ inters
  | C.Dup_and_irrelevant ->
      let l = (leaf ()).Issue.cert in
      (l :: l :: intermediates std) @ [ unrelated_intermediate ctx vendor ]
  | C.Irr_self_signed_extra ->
      [ self_signed_leaf ctx ~cn:(Some domain) ~san:[ Extension.Dns domain ];
        unrelated_root ctx vendor ]
  | C.Irr_root_attached ->
      fullchain (leaf ()).Issue.cert std @ [ unrelated_root ctx vendor ]
  | C.Irr_stale_leaves n ->
      let s = leaf () in
      let stales = List.init n (fun i -> (stale_leaf ctx std s (i + 1))) in
      (s.Issue.cert :: stales) @ intermediates std
  | C.Irr_extra_leaf_distinct ->
      let l = (leaf ()).Issue.cert in
      (l :: [ unrelated_leaf ctx rank ]) @ intermediates std
  | C.Irr_foreign_chain ->
      let foreign =
        match vendor with
        | Universe.Taiwan_ca -> Lazy.force ctx.foreign_block_epki
        | _ -> Lazy.force ctx.foreign_block_twca
      in
      fullchain (leaf ()).Issue.cert std @ foreign
  | C.Irr_lone_intermediate ->
      fullchain (leaf ()).Issue.cert std @ [ unrelated_intermediate ctx vendor ]
  | C.Multi_cross_ok ->
      let v, (self, cross) = cross_pair_or_sectigo ctx vendor in
      let h = Universe.hierarchy ctx.u v in
      let l = (mint ctx v ~domain ~faults ()).Issue.cert in
      [ l; h.Universe.issuing.Issue.cert; self; cross ]
  | C.Multi_cross_expired ->
      let h = Universe.hierarchy ctx.u Universe.Sectigo in
      let l = (mint ctx Universe.Sectigo ~domain ~faults ()).Issue.cert in
      [ l; h.Universe.issuing.Issue.cert;
        Universe.sectigo_usertrust_self ctx.u;
        Universe.sectigo_usertrust_cross_expired ctx.u ]
  | C.Multi_cross_reversed ->
      let v, (self, cross) = cross_pair_or_sectigo ctx vendor in
      let h = Universe.hierarchy ctx.u v in
      let l = (mint ctx v ~domain ~faults ()).Issue.cert in
      [ l; cross; h.Universe.issuing.Issue.cert; self ]
  | C.Multi_validity_variants ->
      let l = (mint ctx Universe.Digicert ~domain ~faults ()).Issue.cert in
      let h = Universe.hierarchy ctx.u Universe.Digicert in
      [ l; Universe.digicert_ca1_old ctx.u; Universe.digicert_ca1_recent ctx.u;
        root_of h ]
  | C.Rev_merge_1int ->
      (* Naive merge of a reversed (root-first) bundle: [E; root; I1; ...]. *)
      let l = (leaf ()).Issue.cert in
      l :: List.rev (intermediates std @ [ root_of std ])
  | C.Rev_noroot_2int ->
      let h =
        if List.length (intermediates std) >= 2 then std
        else Universe.hierarchy_deep ctx.u vendor
      in
      let l = (leaf ~hierarchy:h ()).Issue.cert in
      l :: List.rev (intermediates h)
  | C.Rev_merge_2int ->
      (* [E; I1; root; I2]: direct issuer first, then a reversed remainder. *)
      let h = Universe.hierarchy_deep ctx.u vendor in
      let l = (leaf ~hierarchy:h ()).Issue.cert in
      (match intermediates h with
      | i1 :: rest -> (l :: [ i1 ]) @ List.rev (rest @ [ root_of h ])
      | [] -> assert false)
  | C.Rev_full_deep ->
      (* [E; root; I1; I2]: intermediates ordered but the root first. *)
      let h = Universe.hierarchy_deep ctx.u vendor in
      let l = (leaf ~hierarchy:h ()).Issue.cert in
      (l :: [ root_of h ]) @ intermediates h
  | C.Rev_and_incomplete ->
      (* [E; I2; I1] from a 4-intermediate hierarchy: reversed and missing
         the two upper tiers (both AIA-recoverable). *)
      let h = Universe.hierarchy_deep4 ctx.u vendor in
      let l = (leaf ~hierarchy:h ()).Issue.cert in
      (match intermediates h with
      | i1 :: i2 :: _ -> [ l; i2; i1 ]
      | _ -> assert false)
  | C.Inc_missing1 -> (
      match vendor with
      | Universe.Taiwan_ca ->
          (* [E; Secure], omitting "TWCA Global Root CA" (appendix C). *)
          [ (leaf ()).Issue.cert; std.Universe.issuing.Issue.cert ]
      | _ -> [ (leaf ()).Issue.cert ])
  | C.Inc_missing2 ->
      let h = Universe.hierarchy_deep ctx.u vendor in
      [ (leaf ~hierarchy:h ()).Issue.cert ]
  | C.Inc_no_aia -> [ (leaf ~no_aia:true ()).Issue.cert ]
  | C.Inc_aia_fail ->
      let broken =
        if rank mod 2 = 0 then Universe.broken_aia_uri_404 ctx.u
        else Universe.broken_aia_uri_timeout ctx.u
      in
      let h = { std with Universe.issuing_aia_uri = broken } in
      [ (leaf ~hierarchy:h ()).Issue.cert ]
  | C.Inc_wrong_aia ->
      let class3_signer = Universe.cacert_leaf_signer ctx.u in
      let h =
        { Universe.issuing = class3_signer;
          above = [];
          issuing_aia_uri = "http://www.cacert.sim/class3.crt" }
      in
      [ (leaf ~hierarchy:h ()).Issue.cert; Universe.cacert_class3 ctx.u ]
  | C.Fig_serpro ->
      (* 17 certificates with heavy duplication; the valid path survives, but
         the list exceeds GnuTLS's input limit of 16 (Figure 3's point). *)
      let h = Universe.hierarchy_deep ctx.u vendor in
      let l = (leaf ~hierarchy:h ()).Issue.cert in
      (match intermediates h with
      | issuing :: tier :: _ ->
          (l :: issuing :: List.init 7 (fun _ -> issuing))
          @ (tier :: List.init 6 (fun _ -> tier))
          @ [ root_of h ]
      | _ -> assert false)
  | C.Fig_ns3 ->
      (* Two Let's Encrypt intermediates duplicated thirteen times over: a
         29-certificate tower (the ns3.link shape). *)
      let h = Universe.hierarchy_deep ctx.u Universe.Lets_encrypt in
      let l = (mint ctx Universe.Lets_encrypt ~domain ~faults ~hierarchy:h ()).Issue.cert in
      (match intermediates h with
      | i1 :: t1 :: _ ->
          let rec dups k acc = if k = 0 then acc else dups (k - 1) (acc @ [ i1; t1 ]) in
          l :: i1 :: t1 :: dups 13 []
      | _ -> assert false)
  | C.Fig_moex ->
      let grca = Universe.gov_grca_hierarchy ctx.u in
      let l = (leaf ~hierarchy:grca ()).Issue.cert in
      [ l;
        (Universe.gov_hidden_root ctx.u).Issue.cert;
        Universe.gov_moex_cross_by_hidden ctx.u;
        (Universe.gov_moex_intermediate ctx.u).Issue.cert;
        root_of grca ]

(* --- blemish quotas --- *)

let blemish_for ~index scenario =
  let p =
    match scenario with
    | C.Inc_missing1 | C.Inc_missing2 | C.Inc_no_aia | C.Inc_aia_fail
    | C.Inc_wrong_aia | C.Rev_and_incomplete -> blemish_fraction_incomplete
    | C.Dup_leaf_front | C.Dup_leaf_scattered | C.Dup_intermediate _ | C.Dup_root
    | C.Dup_leaf_and_intermediate | C.Dup_and_irrelevant | C.Irr_root_attached
    | C.Irr_extra_leaf_distinct | C.Irr_foreign_chain | C.Irr_lone_intermediate
    | C.Multi_cross_ok | C.Multi_cross_reversed | C.Multi_validity_variants
    | C.Rev_merge_1int | C.Rev_noroot_2int | C.Rev_merge_2int | C.Rev_full_deep ->
        blemish_fraction_order
    | _ -> 0.0
  in
  (* Bresenham-style deterministic interleaving: the blemished share of every
     class is exact and evenly spread, so small classes are neither wiped out
     nor spared by sampling noise. *)
  let f = float_of_int in
  if int_of_float (f (index + 1) *. p) > int_of_float (f index *. p) then Expired_leaf
  else Pristine

(* --- special domain names for the planted case studies --- *)

let named_domain scenario ~rank ~default =
  match scenario with
  | C.Fig_serpro -> "assiste6.serpro.gov.br"
  | C.Fig_moex -> "moex.gov.tw"
  | C.Fig_ns3 ->
      List.nth [ "ns3.link"; "ns3.com"; "ns3.cx"; "n0.eu" ] (rank mod 4)
  | C.Leaf_incorrect_placed -> "mot.gov.ps"
  | C.Inc_wrong_aia -> "community.cacert.example"
  | _ -> default

let firefox_cached_vendor = function
  | Universe.Taiwan_ca | Universe.Cyber_folks | Universe.Other_ca 7 -> false
  | _ -> true

let build_firefox_cache u =
  let vendors =
    Universe.named_vendors
    @ List.init Universe.other_ca_count (fun i -> Universe.Other_ca i)
  in
  List.concat_map
    (fun v ->
      if not (firefox_cached_vendor v) then []
      else begin
        (* The deep4 tiers are deliberately absent: they model the rare
           intermediates Firefox has never seen, behind its
           SEC_ERROR_UNKNOWN_ISSUER gap versus Chrome/Edge. *)
        let hs =
          [ Universe.hierarchy u v; Universe.hierarchy_no_akid u v;
            Universe.hierarchy_deep u v ]
        in
        List.concat_map
          (fun (h : Universe.hierarchy) ->
            h.Universe.issuing.Issue.cert
            :: List.filter (fun c -> not (Cert.is_self_signed c)) h.Universe.above)
          hs
      end)
    vendors

let generate ?(seed = 20240315L) ?(scale = 0.05) () =
  let universe = Universe.create ~seed () in
  let rng = Prng.create (Int64.add seed 7L) in
  let ctx =
    { u = universe;
      rng;
      foreign_block_twca =
        lazy
          (let tw = Universe.hierarchy universe Universe.Taiwan_ca in
           (Universe.taiwan_global universe).Issue.cert
           :: tw.Universe.issuing.Issue.cert
           :: []);
      foreign_block_epki =
        lazy
          (let e = Universe.epki_hierarchy universe in
           [ e.Universe.issuing.Issue.cert; root_of e ]);
      other_leaf_cache = Hashtbl.create 64 }
  in
  Aia_repo.inject_failure (Universe.aia universe)
    ~uri:(Universe.broken_aia_uri_timeout universe) `Timeout;
  let ledger = C.scale_ledger scale in
  let records = ref [] in
  let rank = ref 0 in
  List.iter
    (fun (scenario, count) ->
      if count > 0 then begin
        let vendors =
          Stats.apportion ~total:count
            ~weights:
              (List.map
                 (fun (k, w) -> (C.vendor_key_to_string k, w))
                 (C.vendor_weights scenario))
          |> List.concat_map (fun (name, n) ->
                 let key =
                   List.find
                     (fun (k, _) -> C.vendor_key_to_string k = name)
                     (C.vendor_weights scenario)
                   |> fst
                 in
                 List.init n (fun _ -> key))
        in
        let servers =
          Stats.apportion ~total:count
            ~weights:
              (List.map
                 (fun (k, w) -> (C.server_key_to_string k, w))
                 (C.server_weights scenario))
          |> List.concat_map (fun (name, n) ->
                 let key =
                   List.find
                     (fun (k, _) -> C.server_key_to_string k = name)
                     (C.server_weights scenario)
                   |> fst
                 in
                 List.init n (fun _ -> key))
        in
        let class_index = ref 0 in
        List.iter2
          (fun vkey skey ->
            let r = !rank in
            incr rank;
            let i = !class_index in
            incr class_index;
            let domain =
              named_domain scenario ~rank:r
                ~default:(Printf.sprintf "site-%06d.tranco.sim" r)
            in
            let uv = universe_vendor_of rng vkey in
            let blemish = blemish_for ~index:i scenario in
            let chain = realize ctx ~rank:r ~domain ~vendor:uv ~blemish scenario in
            records :=
              { rank = r; domain; vendor = vkey; universe_vendor = uv;
                software = skey; scenario; blemish; chain }
              :: !records)
          vendors servers
      end)
    ledger;
  let domains = Array.of_list (List.rev !records) in
  { universe;
    scale;
    domains;
    firefox_cache = build_firefox_cache universe;
    os_store =
      [ (Universe.taiwan_global universe).Issue.cert;
        (Universe.hierarchy universe Universe.Taiwan_ca).Universe.issuing.Issue.cert ] }

let env t =
  { Difftest.store_of = (fun program -> Universe.store t.universe program);
    aia = Universe.aia t.universe;
    firefox_cache = t.firefox_cache;
    os_store = t.os_store;
    now = Universe.now t.universe }

let compliance_report t record =
  Compliance.analyze ~store:(Universe.union_store t.universe)
    ~aia:(Universe.aia t.universe) ~domain:record.domain record.chain
