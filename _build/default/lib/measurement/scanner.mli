(** The simulated ZGrab-style collection (section 3.1): two vantage points
    scan the population over TLS 1.2, each missing a small, partially
    overlapping fraction of domains (network noise); the analysis dataset is
    the union. Certificate messages travel through the real wire codec. *)

open Chaoschain_x509

type vantage = { name : string; reached : int; unreachable : int }

type dataset = {
  vantages : vantage list;
  domains : (string * Cert.t list) array;  (** the union dataset *)
  unique_chains : int;
  unique_certs : int;
  tls12_tls13_identical_pct : float;
      (** share of domains answering both versions with the same chain *)
}

val scan : Population.t -> dataset
(** Deterministic per population. Every served chain is encoded into a TLS
    Certificate message and re-parsed, so the dataset contains exactly what
    the wire carried. *)
