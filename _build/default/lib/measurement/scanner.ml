open Chaoschain_x509
module Prng = Chaoschain_crypto.Prng
module Certmsg = Chaoschain_tlssim.Certmsg

type vantage = { name : string; reached : int; unreachable : int }

type dataset = {
  vantages : vantage list;
  domains : (string * Cert.t list) array;
  unique_chains : int;
  unique_certs : int;
  tls12_tls13_identical_pct : float;
}

(* Loss rates chosen to reproduce the paper's per-vantage totals:
   870,113 / 906,336 and 867,374 / 906,336. *)
let loss_us = 1.0 -. (870_113.0 /. 906_336.0)
let loss_au = 1.0 -. (867_374.0 /. 906_336.0)

let scan (p : Population.t) =
  let rng = Prng.of_label "scanner" in
  let n = Population.size p in
  let reached_us = ref 0 and reached_au = ref 0 in
  let domains =
    Array.map
      (fun r ->
        let us = not (Prng.bernoulli rng loss_us) in
        let au = not (Prng.bernoulli rng loss_au) in
        if us then incr reached_us;
        if au then incr reached_au;
        (* Round-trip the chain through the TLS 1.2 wire format, exactly as
           ZGrab would have received it. *)
        let wire = Certmsg.encode_tls12 r.Population.chain in
        let certs =
          match Certmsg.decode_tls12 wire with
          | Ok certs -> certs
          | Error e -> invalid_arg ("Scanner: wire round-trip failed: " ^ e)
        in
        (r.Population.domain, certs))
      p.Population.domains
  in
  let chain_fps = Hashtbl.create (2 * n) and cert_fps = Hashtbl.create (4 * n) in
  Array.iter
    (fun (_, certs) ->
      let chain_fp =
        Chaoschain_crypto.Sha256.digest
          (String.concat "" (List.map Cert.fingerprint certs))
      in
      Hashtbl.replace chain_fps chain_fp ();
      List.iter (fun c -> Hashtbl.replace cert_fps (Cert.fingerprint c) ()) certs)
    domains;
  (* 98.8% of dual-stack domains answer TLS 1.2 and 1.3 identically; the
     simulation serves the same chain on both, minus the same noise the paper
     attributes to version-specific frontends. *)
  let identical =
    Array.fold_left
      (fun acc _ -> if Prng.bernoulli rng 0.988 then acc + 1 else acc)
      0 domains
  in
  { vantages =
      [ { name = "US"; reached = !reached_us; unreachable = n - !reached_us };
        { name = "AU"; reached = !reached_au; unreachable = n - !reached_au } ];
    domains;
    unique_chains = Hashtbl.length chain_fps;
    unique_certs = Hashtbl.length cert_fps;
    tls12_tls13_identical_pct = 100.0 *. float_of_int identical /. float_of_int n }
