(** The quota ledger that calibrates the synthetic Tranco population to the
    paper's measured distributions.

    Every deployment scenario the paper reports corresponds to a class here,
    with its full-scale (906,336-domain) count. The counts satisfy, by
    construction, every aggregate the paper states: Tables 3, 5, 7, 8, 10 and
    11, the 26,361-domain non-compliance total and its 64.3% / 45.9%
    order/completeness split, and the figure case studies (which are planted
    as singleton classes). DESIGN.md section 2 documents the derivations,
    including the inclusion-exclusion overlaps (665 duplicate-and-irrelevant
    chains, 201 reversed multi-path chains, 2,678 reversed-and-incomplete
    chains). The population generator realises each class mechanically via
    the CA-delivery and administrator models. *)

type restricted_kind =
  | R_mc_recoverable   (** root absent from Mozilla/Chrome; AIA present *)
  | R_mc_dead_end      (** root absent from Mozilla/Chrome; no AIA *)
  | R_ms_recoverable
  | R_ms_dead_end
  | R_apple_recoverable
  | R_apple_dead_end

type scenario =
  (* Structurally compliant deployments. *)
  | Ok_plain                    (** leaf + intermediates, root omitted *)
  | Ok_with_root
  | Ok_leaf_mismatched          (** compliant chain for the wrong name *)
  | Ok_leaf_other               (** self-signed test certificate (Plesk, ...) *)
  | Leaf_incorrect_placed       (** the single mot.gov.ps-style chain *)
  | Ok_no_akid                  (** terminating intermediate without AKID —
                                    the Table 8 no-AIA sensitivity group *)
  | Ok_restricted of restricted_kind
  (* Issuance-order violations (Table 5). *)
  | Dup_leaf_front              (** leaf appears twice at the front *)
  | Dup_leaf_scattered
  | Dup_intermediate of int     (** intermediate block pasted [n] extra times *)
  | Dup_root
  | Dup_leaf_and_intermediate
  | Dup_and_irrelevant          (** duplicate leaf + a foreign certificate *)
  | Irr_self_signed_extra       (** self-signed leaf + an unrelated public root *)
  | Irr_root_attached           (** normal chain + an unrelated root *)
  | Irr_stale_leaves of int     (** [n] expired previous leaves (webcanny) *)
  | Irr_extra_leaf_distinct     (** an unrelated second leaf *)
  | Irr_foreign_chain           (** (part of) another site's chain appended *)
  | Irr_lone_intermediate
  | Multi_cross_ok              (** cross-sign pair, compliant insertion *)
  | Multi_cross_expired         (** the cross-signed variant has expired *)
  | Multi_cross_reversed        (** cross inserted before its alternative *)
  | Multi_validity_variants     (** same subject+issuer, differing validity *)
  | Rev_merge_1int              (** \[E; root; I1\] — structure 1->2->0 *)
  | Rev_noroot_2int             (** \[E; I2; I1\] — structure 1->2->0 *)
  | Rev_merge_2int              (** \[E; root; I2; I1\] — structure 1->2->3->0 *)
  | Rev_full_deep               (** other reversed structures *)
  | Rev_and_incomplete          (** reversed and missing two intermediates *)
  (* Completeness violations (Table 7). *)
  | Inc_missing1                (** recoverable, one certificate short *)
  | Inc_missing2
  | Inc_no_aia
  | Inc_aia_fail
  | Inc_wrong_aia               (** the CAcert self-reference *)
  (* Planted figure case studies. *)
  | Fig_serpro                  (** Figure 3: 17 certificates, GnuTLS limit *)
  | Fig_ns3                     (** 29-certificate duplicate towers *)
  | Fig_moex                    (** Figure 4: backtracking scenario *)

val scenario_to_string : scenario -> string

val ledger : (scenario * int) list
(** Full-scale class sizes; sums to 906,336. *)

val full_population : int

val scale_ledger : float -> (scenario * int) list
(** Scale every class, keeping singleton case studies alive (count >= 1 for
    any class that is non-zero at full scale) and preserving tiny classes'
    proportions via largest-remainder rounding of the rest. *)

(** {1 Attribution weights} *)

type vendor_key =
  | V_lets_encrypt | V_digicert | V_sectigo | V_zerossl | V_gogetssl
  | V_taiwan_ca | V_cyber_folks | V_trustico | V_other

val vendor_key_to_string : vendor_key -> string

val vendor_totals : (vendor_key * int) list
(** Table 11's bottom row (with the remainder under [V_other]). *)

val vendor_weights : scenario -> (vendor_key * int) list
(** How a class's chains distribute over CAs, from the matching Table 11
    row, restricted to vendors structurally able to produce the class. *)

type server_key =
  | S_apache | S_nginx | S_azure | S_cloudflare | S_iis | S_aws_elb | S_other
  | S_unfingerprinted

val server_key_to_string : server_key -> string

val server_weights : scenario -> (server_key * int) list
(** How a class's chains distribute over HTTP servers, from the matching
    Table 10 row; the unfingerprinted share is the gap between Table 5/7
    totals and Table 10 row totals. *)
