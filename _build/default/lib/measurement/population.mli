(** The synthetic Tranco Top-1M population.

    [generate] expands the calibration ledger into concrete domains: each
    domain gets a CA (per Table 11 weights), an HTTP-server fingerprint (per
    Table 10 weights), a deployment scenario and — mechanically realised from
    those — the certificate list its server sends. An orthogonal "blemish"
    dimension reproduces the real-world fact that structurally broken sites
    are often also operationally broken (expired leaves), which drives the
    section 5.2 pass-rate gaps. *)

open Chaoschain_x509
open Chaoschain_core
open Chaoschain_pki

type blemish = Pristine | Expired_leaf

type record = {
  rank : int;
  domain : string;
  vendor : Calibration.vendor_key;
  universe_vendor : Universe.vendor;
  software : Calibration.server_key;
  scenario : Calibration.scenario;
  blemish : blemish;
  chain : Cert.t list;
}

type t = {
  universe : Universe.t;
  scale : float;
  domains : record array;
  firefox_cache : Cert.t list;
  os_store : Cert.t list;
}

val generate : ?seed:int64 -> ?scale:float -> unit -> t
(** [scale] defaults to 0.05 (45,317 domains); 1.0 is the paper's full
    population. Deterministic in [seed]. *)

val size : t -> int

val env : t -> Difftest.env
(** The differential-testing environment backed by this population's
    universe, cache and OS store. *)

val compliance_report : t -> record -> Compliance.report
(** Run the server-side compliance analysis for one domain (union store,
    AIA enabled — the paper's baseline). *)

val blemish_fraction_incomplete : float
(** Fraction of incomplete-class chains whose leaf has also expired. *)

val blemish_fraction_order : float
