type restricted_kind =
  | R_mc_recoverable
  | R_mc_dead_end
  | R_ms_recoverable
  | R_ms_dead_end
  | R_apple_recoverable
  | R_apple_dead_end

type scenario =
  | Ok_plain
  | Ok_with_root
  | Ok_leaf_mismatched
  | Ok_leaf_other
  | Leaf_incorrect_placed
  | Ok_no_akid
  | Ok_restricted of restricted_kind
  | Dup_leaf_front
  | Dup_leaf_scattered
  | Dup_intermediate of int
  | Dup_root
  | Dup_leaf_and_intermediate
  | Dup_and_irrelevant
  | Irr_self_signed_extra
  | Irr_root_attached
  | Irr_stale_leaves of int
  | Irr_extra_leaf_distinct
  | Irr_foreign_chain
  | Irr_lone_intermediate
  | Multi_cross_ok
  | Multi_cross_expired
  | Multi_cross_reversed
  | Multi_validity_variants
  | Rev_merge_1int
  | Rev_noroot_2int
  | Rev_merge_2int
  | Rev_full_deep
  | Rev_and_incomplete
  | Inc_missing1
  | Inc_missing2
  | Inc_no_aia
  | Inc_aia_fail
  | Inc_wrong_aia
  | Fig_serpro
  | Fig_ns3
  | Fig_moex

let restricted_to_string = function
  | R_mc_recoverable -> "restricted(Moz/Chrome, recoverable)"
  | R_mc_dead_end -> "restricted(Moz/Chrome, dead-end)"
  | R_ms_recoverable -> "restricted(Microsoft, recoverable)"
  | R_ms_dead_end -> "restricted(Microsoft, dead-end)"
  | R_apple_recoverable -> "restricted(Apple, recoverable)"
  | R_apple_dead_end -> "restricted(Apple, dead-end)"

let scenario_to_string = function
  | Ok_plain -> "compliant (root omitted)"
  | Ok_with_root -> "compliant (root included)"
  | Ok_leaf_mismatched -> "compliant, leaf name mismatch"
  | Ok_leaf_other -> "test certificate (Other leaf)"
  | Leaf_incorrect_placed -> "leaf incorrectly placed"
  | Ok_no_akid -> "compliant, terminating intermediate lacks AKID"
  | Ok_restricted r -> restricted_to_string r
  | Dup_leaf_front -> "duplicate leaf at front"
  | Dup_leaf_scattered -> "duplicate leaf elsewhere"
  | Dup_intermediate n -> Printf.sprintf "duplicate intermediates (x%d)" n
  | Dup_root -> "duplicate root"
  | Dup_leaf_and_intermediate -> "duplicate leaf and intermediate"
  | Dup_and_irrelevant -> "duplicate leaf + irrelevant certificate"
  | Irr_self_signed_extra -> "self-signed leaf + unrelated public root"
  | Irr_root_attached -> "unrelated root appended"
  | Irr_stale_leaves n -> Printf.sprintf "%d stale leaves kept" n
  | Irr_extra_leaf_distinct -> "unrelated extra leaf"
  | Irr_foreign_chain -> "foreign chain appended"
  | Irr_lone_intermediate -> "unrelated lone intermediate"
  | Multi_cross_ok -> "multiple paths (cross-sign, ordered)"
  | Multi_cross_expired -> "multiple paths (expired cross-sign)"
  | Multi_cross_reversed -> "multiple paths (cross-sign, reversed)"
  | Multi_validity_variants -> "multiple paths (validity variants)"
  | Rev_merge_1int -> "reversed merge, one intermediate (1->2->0)"
  | Rev_noroot_2int -> "reversed, two intermediates, no root (1->2->0)"
  | Rev_merge_2int -> "reversed merge with root (1->2->3->0)"
  | Rev_full_deep -> "reversed, other structure"
  | Rev_and_incomplete -> "reversed and missing two intermediates"
  | Inc_missing1 -> "incomplete: one intermediate missing (recoverable)"
  | Inc_missing2 -> "incomplete: two intermediates missing (recoverable)"
  | Inc_no_aia -> "incomplete: AIA missing"
  | Inc_aia_fail -> "incomplete: AIA URI fails"
  | Inc_wrong_aia -> "incomplete: AIA serves wrong certificate"
  | Fig_serpro -> "figure 3 case (17 certificates)"
  | Fig_ns3 -> "29-certificate duplicate tower"
  | Fig_moex -> "figure 4 case (backtracking)"

let full_population = 906_336

(* Full-scale class sizes. The arithmetic behind these (overlaps, the
   complete-with-root budget, the Table 8 decomposition) is laid out in
   DESIGN.md; the unit tests in test_calibration assert every paper aggregate
   against this ledger. *)
let ledger =
  [ (Ok_leaf_mismatched, 62_536);
    (Ok_leaf_other, 5_445);
    (Leaf_incorrect_placed, 1);
    (Ok_no_akid, 225_294);
    (Ok_restricted R_mc_recoverable, 248);
    (Ok_restricted R_mc_dead_end, 66);
    (Ok_restricted R_ms_recoverable, 239);
    (Ok_restricted R_ms_dead_end, 5);
    (Ok_restricted R_apple_recoverable, 62);
    (Ok_restricted R_apple_dead_end, 4);
    (Ok_with_root, 67_260);
    (Dup_leaf_front, 3_055);
    (Dup_leaf_scattered, 499);
    (Dup_intermediate 1, 833);
    (Dup_intermediate 16, 5);
    (Dup_root, 401);
    (Dup_leaf_and_intermediate, 511);
    (Dup_and_irrelevant, 665);
    (Irr_self_signed_extra, 159);
    (Irr_root_attached, 66);
    (Irr_stale_leaves 2, 200);
    (Irr_stale_leaves 4, 138);
    (Irr_extra_leaf_distinct, 106);
    (Irr_foreign_chain, 840);
    (Irr_lone_intermediate, 858);
    (Multi_cross_ok, 11);
    (Multi_cross_expired, 29);
    (Multi_cross_reversed, 200);
    (Multi_validity_variants, 5);
    (Rev_merge_1int, 2_519);
    (Rev_noroot_2int, 51);
    (Rev_merge_2int, 1_769);
    (Rev_full_deep, 1_348);
    (Rev_and_incomplete, 2_678);
    (Inc_missing1, 8_729);
    (Inc_missing2, 12);
    (Inc_no_aia, 579);
    (Inc_aia_fail, 88);
    (Inc_wrong_aia, 1);
    (Fig_serpro, 1);
    (Fig_ns3, 4);
    (Fig_moex, 1);
    (Ok_plain, 518_815) ]

let scale_ledger scale =
  if scale <= 0.0 || scale > 1.0 then invalid_arg "Calibration.scale_ledger";
  if scale = 1.0 then ledger
  else begin
    let total = int_of_float (Float.round (float_of_int full_population *. scale)) in
    let keyed = List.mapi (fun i (s, n) -> ((i, s), n)) ledger in
    let weights = List.map (fun ((i, _), n) -> (string_of_int i, n)) keyed in
    let shares = Stats.apportion ~total ~weights in
    let scaled =
      List.map2
        (fun ((_, s), full) (_, n) -> (s, full, n))
        keyed shares
    in
    (* Keep every non-empty class alive at small scales; balance by taking
       the bumps out of the (huge) Ok_plain class. *)
    let bumps = ref 0 in
    let adjusted =
      List.map
        (fun (s, full, n) ->
          if full > 0 && n = 0 then begin
            incr bumps;
            (s, 1)
          end
          else (s, n))
        scaled
    in
    List.map
      (fun (s, n) -> if s = Ok_plain then (s, max 0 (n - !bumps)) else (s, n))
      adjusted
  end

type vendor_key =
  | V_lets_encrypt | V_digicert | V_sectigo | V_zerossl | V_gogetssl
  | V_taiwan_ca | V_cyber_folks | V_trustico | V_other

let vendor_key_to_string = function
  | V_lets_encrypt -> "Let's Encrypt"
  | V_digicert -> "DigiCert"
  | V_sectigo -> "Sectigo Limited"
  | V_zerossl -> "ZeroSSL"
  | V_gogetssl -> "GoGetSSL"
  | V_taiwan_ca -> "TAIWAN-CA"
  | V_cyber_folks -> "cyber_Folks S.A."
  | V_trustico -> "Trustico"
  | V_other -> "Other"

let vendor_totals =
  [ (V_lets_encrypt, 400_737); (V_digicert, 60_894); (V_sectigo, 48_042);
    (V_zerossl, 8_219); (V_gogetssl, 1_617); (V_taiwan_ca, 492);
    (V_cyber_folks, 142); (V_trustico, 108); (V_other, 386_085) ]

(* Table 11 rows; the [V_other] entry absorbs the gap to the Table 5/7
   totals. *)
let row_duplicate =
  [ (V_lets_encrypt, 3_259); (V_digicert, 771); (V_sectigo, 639); (V_zerossl, 86);
    (V_gogetssl, 41); (V_taiwan_ca, 7); (V_cyber_folks, 3); (V_trustico, 1);
    (V_other, 1_167) ]

let row_irrelevant =
  [ (V_lets_encrypt, 400); (V_digicert, 726); (V_sectigo, 496); (V_zerossl, 35);
    (V_gogetssl, 34); (V_taiwan_ca, 8); (V_cyber_folks, 8); (V_trustico, 1);
    (V_other, 1_324) ]

let row_multiple =
  [ (V_lets_encrypt, 51); (V_digicert, 6); (V_sectigo, 134); (V_zerossl, 0);
    (V_gogetssl, 7); (V_taiwan_ca, 0); (V_cyber_folks, 0); (V_trustico, 0);
    (V_other, 48) ]

let row_reversed =
  [ (V_lets_encrypt, 81); (V_digicert, 1_736); (V_sectigo, 2_537); (V_zerossl, 2);
    (V_gogetssl, 125); (V_taiwan_ca, 47); (V_cyber_folks, 86); (V_trustico, 67);
    (V_other, 3_885) ]

let row_incomplete =
  [ (V_lets_encrypt, 1_155); (V_digicert, 2_245); (V_sectigo, 1_998); (V_zerossl, 120);
    (V_gogetssl, 112); (V_taiwan_ca, 206); (V_cyber_folks, 8); (V_trustico, 4);
    (V_other, 6_239) ]

let only keys row = List.filter (fun (k, _) -> List.mem k keys) row
let no_akid_vendors = [ V_lets_encrypt; V_digicert; V_sectigo; V_other ]

let vendor_weights = function
  | Ok_plain | Ok_with_root | Ok_leaf_mismatched -> vendor_totals
  | Ok_leaf_other | Leaf_incorrect_placed -> [ (V_other, 1) ]
  | Ok_no_akid -> only no_akid_vendors vendor_totals
  | Ok_restricted _ -> [ (V_other, 1) ]
  | Dup_leaf_front | Dup_leaf_scattered | Dup_intermediate _ | Dup_root
  | Dup_leaf_and_intermediate | Dup_and_irrelevant -> row_duplicate
  | Irr_self_signed_extra -> [ (V_other, 1) ]
  | Irr_root_attached | Irr_stale_leaves _ | Irr_extra_leaf_distinct
  | Irr_foreign_chain | Irr_lone_intermediate -> row_irrelevant
  | Multi_cross_ok | Multi_cross_reversed -> row_multiple
  | Multi_cross_expired -> [ (V_sectigo, 1) ]
  | Multi_validity_variants -> [ (V_digicert, 1) ]
  | Rev_noroot_2int ->
      (* The I-1 chains: dominated by Taiwan-government deployments. *)
      [ (V_taiwan_ca, 47); (V_other, 4) ]
  | Rev_merge_1int | Rev_merge_2int | Rev_full_deep | Rev_and_incomplete ->
      row_reversed
  | Inc_missing1 | Inc_missing2 | Inc_no_aia | Inc_aia_fail -> row_incomplete
  | Inc_wrong_aia -> [ (V_other, 1) ]
  | Fig_serpro -> [ (V_other, 1) ]
  | Fig_ns3 -> [ (V_lets_encrypt, 1) ]
  | Fig_moex -> [ (V_other, 1) ]

type server_key =
  | S_apache | S_nginx | S_azure | S_cloudflare | S_iis | S_aws_elb | S_other
  | S_unfingerprinted

let server_key_to_string = function
  | S_apache -> "Apache"
  | S_nginx -> "Nginx"
  | S_azure -> "Microsoft-Azure-Application-Gateway"
  | S_cloudflare -> "cloudflare"
  | S_iis -> "IIS"
  | S_aws_elb -> "AWS ELB"
  | S_other -> "Other"
  | S_unfingerprinted -> "(unfingerprinted)"

(* Table 10 rows, each padded with the unfingerprinted remainder so the row
   reproduces both the Table 10 counts and the Table 5/7 totals. *)
let srow ~apache ~nginx ~azure ~cf ~iis ~aws ~other ~unfp =
  [ (S_apache, apache); (S_nginx, nginx); (S_azure, azure); (S_cloudflare, cf);
    (S_iis, iis); (S_aws_elb, aws); (S_other, other); (S_unfingerprinted, unfp) ]

let srow_dup_leaf =
  srow ~apache:2_086 ~nginx:548 ~azure:0 ~cf:106 ~iis:57 ~aws:201 ~other:300 ~unfp:1_432

let srow_dup_inter =
  srow ~apache:104 ~nginx:328 ~azure:9 ~cf:26 ~iis:34 ~aws:9 ~other:116 ~unfp:728

let srow_dup_root =
  srow ~apache:42 ~nginx:121 ~azure:5 ~cf:5 ~iis:33 ~aws:12 ~other:38 ~unfp:145

let srow_irrelevant =
  srow ~apache:1_023 ~nginx:633 ~azure:18 ~cf:65 ~iis:29 ~aws:27 ~other:135 ~unfp:1_102

let srow_multiple =
  srow ~apache:38 ~nginx:59 ~azure:0 ~cf:3 ~iis:3 ~aws:1 ~other:13 ~unfp:129

let srow_reversed =
  srow ~apache:1_219 ~nginx:2_015 ~azure:750 ~cf:171 ~iis:210 ~aws:139 ~other:764
    ~unfp:3_298

let srow_incomplete =
  srow ~apache:2_633 ~nginx:2_689 ~azure:145 ~cf:202 ~iis:199 ~aws:117 ~other:669
    ~unfp:5_433

let srow_generic =
  srow ~apache:30 ~nginx:30 ~azure:3 ~cf:12 ~iis:4 ~aws:4 ~other:10 ~unfp:7

let server_weights = function
  | Dup_leaf_front | Dup_leaf_scattered | Dup_leaf_and_intermediate
  | Dup_and_irrelevant -> srow_dup_leaf
  | Dup_intermediate _ | Fig_ns3 | Fig_serpro -> srow_dup_inter
  | Dup_root -> srow_dup_root
  | Irr_self_signed_extra | Irr_root_attached | Irr_stale_leaves _
  | Irr_extra_leaf_distinct | Irr_foreign_chain | Irr_lone_intermediate ->
      srow_irrelevant
  | Multi_cross_ok | Multi_cross_expired | Multi_cross_reversed
  | Multi_validity_variants | Fig_moex -> srow_multiple
  | Rev_merge_1int | Rev_noroot_2int | Rev_merge_2int | Rev_full_deep
  | Rev_and_incomplete -> srow_reversed
  | Inc_missing1 | Inc_missing2 | Inc_no_aia | Inc_aia_fail | Inc_wrong_aia ->
      srow_incomplete
  | Ok_plain | Ok_with_root | Ok_leaf_mismatched | Ok_leaf_other
  | Leaf_incorrect_placed | Ok_no_akid | Ok_restricted _ -> srow_generic
