let with_commas n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pct part whole =
  if whole = 0 then "0%"
  else begin
    let p = 100.0 *. float_of_int part /. float_of_int whole in
    if part > 0 && p < 0.05 then "~0%" else Printf.sprintf "%.1f%%" p
  end

let count_pct part whole = Printf.sprintf "%s (%s)" (with_commas part) (pct part whole)

let apportion ~total ~weights =
  let wsum = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  if wsum = 0 then List.map (fun (k, _) -> (k, 0)) weights
  else begin
    let exact =
      List.map
        (fun (k, w) ->
          let share = float_of_int total *. float_of_int w /. float_of_int wsum in
          (k, int_of_float share, share -. Float.of_int (int_of_float share)))
        weights
    in
    let floor_sum = List.fold_left (fun acc (_, fl, _) -> acc + fl) 0 exact in
    let leftover = total - floor_sum in
    (* Give one extra unit to the largest remainders. *)
    let order =
      List.mapi (fun i (k, fl, rem) -> (i, k, fl, rem)) exact
      |> List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare b a)
    in
    let bumped =
      List.mapi (fun rank (i, k, fl, _) -> (i, k, if rank < leftover then fl + 1 else fl)) order
      |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
    in
    List.map (fun (_, k, v) -> (k, v)) bumped
  end

type table = {
  title : string;
  header : string list;
  mutable rows : [ `Row of string list | `Sep ] list;
}

let table ~title ~header = { title; header; rows = [] }
let add_row t cells = t.rows <- `Row cells :: t.rows
let add_separator t = t.rows <- `Sep :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.header :: List.filter_map (function `Row r -> Some r | `Sep -> None) rows
  in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all_cell_rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun r ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) r)
    all_cell_rows;
  let buf = Buffer.create 1024 in
  let total_width =
    Array.fold_left ( + ) 0 widths + (3 * (max 1 ncols - 1))
  in
  let hline = String.make (max total_width (String.length t.title)) '-' in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf hline;
  Buffer.add_char buf '\n';
  let emit_row r =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf cell;
        if i < List.length r - 1 then begin
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' ');
          Buffer.add_string buf "   "
        end)
      r;
    Buffer.add_char buf '\n'
  in
  emit_row t.header;
  Buffer.add_string buf hline;
  Buffer.add_char buf '\n';
  List.iter
    (function
      | `Row r -> emit_row r
      | `Sep ->
          Buffer.add_string buf hline;
          Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
