open Chaoschain_x509
open Chaoschain_pki
module Prng = Chaoschain_crypto.Prng

type test_id =
  | Order_reorganization
  | Redundancy_elimination
  | Aia_completion
  | Validity_priority
  | Kid_priority
  | Keyusage_priority
  | Basic_constraints_priority
  | Path_length_constraint
  | Self_signed_leaf

let all_tests =
  [ Order_reorganization; Redundancy_elimination; Aia_completion; Validity_priority;
    Kid_priority; Keyusage_priority; Basic_constraints_priority;
    Path_length_constraint; Self_signed_leaf ]

let test_name = function
  | Order_reorganization -> "Order Reorganization"
  | Redundancy_elimination -> "Redundancy Elimination"
  | Aia_completion -> "AIA Completion"
  | Validity_priority -> "Validity Priority"
  | Kid_priority -> "KID Matching Priority"
  | Keyusage_priority -> "KeyUsage Correctness Priority"
  | Basic_constraints_priority -> "Basic Constraints Priority"
  | Path_length_constraint -> "Path Length Constraint"
  | Self_signed_leaf -> "Self-signed Leaf Certificate"

let test_description = function
  | Order_reorganization ->
      "Provide a chain with disordered certificates to test the client's \
       construction capabilities."
  | Redundancy_elimination ->
      "Provide a chain containing irrelevant certificates to test the client's \
       ability to eliminate redundancies."
  | Aia_completion ->
      "Provide a chain missing intermediate certificates and test if the client \
       can use AIA to construct the chain correctly."
  | Validity_priority ->
      "Priority decision among issuer certificates with differing validity periods."
  | Kid_priority ->
      "Priority decision among issuer certificates with varying KID statuses."
  | Keyusage_priority ->
      "Priority decision among issuer certificates with differing KeyUsage settings."
  | Basic_constraints_priority ->
      "Priority decision based on correct or incorrect path length constraints."
  | Path_length_constraint -> "Maximum chain length the client can construct."
  | Self_signed_leaf ->
      "Whether the client allows a self-signed certificate as a leaf in chain \
       construction."

let test_case_notation = function
  | Order_reorganization -> "{E, I2, I1, R}"
  | Redundancy_elimination -> "{E, X, I, R}"
  | Aia_completion -> "{E, I1}; I1's AIA caIssuers points to I2"
  | Validity_priority -> "{E, I1, I, I2, I3, R}; same subject, differing validity"
  | Kid_priority -> "{E, I1, I2, I, R}; KID match / mismatch / absent"
  | Keyusage_priority -> "{E, I1, I2, I, R}; KeyUsage correct / incorrect / absent"
  | Basic_constraints_priority -> "{E, I1, I3, I2, R}; pathLen correct vs incorrect"
  | Path_length_constraint -> "{E, I1, ..., In, R}"
  | Self_signed_leaf -> "{ES, E, I, R}; same subject, ES self-signed"

type fixture = {
  host : string;
  served : Cert.t list;
  store : Root_store.t;
  aia : Aia_repo.t;
  cache : Cert.t list;
  now : Vtime.t;
  labelled : (string * Cert.t) list;
}

let now = Vtime.make ~y:2024 ~m:6 ~d:1 ~hh:12 ()
let host = "test.chain.example"

(* A small laboratory: root + helpers, deterministic per test label. *)
type lab = {
  rng : Prng.t;
  root : Issue.signer;
  root_store : Root_store.t;
  repo : Aia_repo.t;
}

let make_lab label =
  let rng = Prng.of_label ("capability:" ^ label) in
  let root =
    Issue.self_signed rng
      (Issue.spec ~is_ca:true
         ~not_before:(Vtime.add_years now (-10))
         ~not_after:(Vtime.add_years now 15)
         (Dn.make ~c:"US" ~o:"Capability Lab" ~cn:("Lab Root " ^ label) ()))
  in
  { rng;
    root;
    root_store = Root_store.make "lab" [ root.Issue.cert ];
    repo = Aia_repo.create () }

let intermediate ?(faults = []) ?path_len ?not_before ?not_after ?aia lab ~parent ~cn =
  let not_before = Option.value not_before ~default:(Vtime.add_years now (-2)) in
  let not_after = Option.value not_after ~default:(Vtime.add_years now 8) in
  Issue.issue lab.rng ~parent
    (Issue.spec ~is_ca:true ?path_len ~not_before ~not_after
       ~aia_ca_issuers:(match aia with None -> [] | Some u -> [ u ])
       ~faults
       (Dn.make ~c:"US" ~o:"Capability Lab" ~cn ()))

let leaf ?(faults = []) lab ~parent =
  Issue.issue lab.rng ~parent
    (Issue.spec
       ~san:[ Extension.Dns host ]
       ~not_before:(Vtime.add_months now (-2))
       ~not_after:(Vtime.add_months now 10)
       ~faults
       (Dn.make ~cn:host ()))

let base_fixture lab ~served ~labelled =
  { host; served; store = lab.root_store; aia = lab.repo; cache = []; now; labelled }

(* Re-certify [existing]'s subject + key under [parent] with altered fields;
   the workhorse for same-subject candidate families. *)
let variant lab ~parent ~existing ?(faults = []) ?not_before ?not_after () =
  Issue.cross_sign lab.rng ~parent ~existing ~faults
    ~not_before:(Option.value not_before ~default:(Vtime.add_years now (-2)))
    ~not_after:(Option.value not_after ~default:(Vtime.add_years now 8))
    ()

let fixture_order () =
  let lab = make_lab "order" in
  let i2 = intermediate lab ~parent:lab.root ~cn:"Order I2" in
  let i1 = intermediate lab ~parent:i2 ~cn:"Order I1" in
  let e = leaf lab ~parent:i1 in
  base_fixture lab
    ~served:[ e.Issue.cert; i2.Issue.cert; i1.Issue.cert; lab.root.Issue.cert ]
    ~labelled:[ ("E", e.Issue.cert); ("I1", i1.Issue.cert); ("I2", i2.Issue.cert) ]

let fixture_redundancy () =
  let lab = make_lab "redundancy" in
  let other = make_lab "redundancy-other" in
  let x = intermediate other ~parent:other.root ~cn:"Unrelated X" in
  let i = intermediate lab ~parent:lab.root ~cn:"Redundancy I" in
  let e = leaf lab ~parent:i in
  base_fixture lab
    ~served:[ e.Issue.cert; x.Issue.cert; i.Issue.cert; lab.root.Issue.cert ]
    ~labelled:[ ("E", e.Issue.cert); ("X", x.Issue.cert); ("I", i.Issue.cert) ]

let fixture_aia () =
  let lab = make_lab "aia" in
  let i2_uri = "http://aia.lab.example/i2.crt" in
  let root_uri = "http://aia.lab.example/root.crt" in
  let i2 = intermediate lab ~parent:lab.root ~cn:"AIA I2" ~aia:root_uri in
  let i1 = intermediate lab ~parent:i2 ~cn:"AIA I1" ~aia:i2_uri in
  let e = leaf lab ~parent:i1 in
  Aia_repo.publish lab.repo ~uri:i2_uri i2.Issue.cert;
  Aia_repo.publish lab.repo ~uri:root_uri lab.root.Issue.cert;
  base_fixture lab
    ~served:[ e.Issue.cert; i1.Issue.cert ]
    ~labelled:[ ("E", e.Issue.cert); ("I1", i1.Issue.cert); ("I2", i2.Issue.cert) ]

let fixture_validity () =
  let lab = make_lab "validity" in
  let i = intermediate lab ~parent:lab.root ~cn:"Validity I"
      ~not_before:(Vtime.add_months now (-6))
      ~not_after:(Vtime.add_months now 6) in
  (* Same subject and key, different validity windows. *)
  let i1 =
    variant lab ~parent:lab.root ~existing:i
      ~not_before:(Vtime.add_years now (-3)) ~not_after:(Vtime.add_years now (-1)) ()
  in
  let i2 =
    variant lab ~parent:lab.root ~existing:i
      ~not_before:(Vtime.add_months now (-1)) ~not_after:(Vtime.add_months now 11) ()
  in
  let i3 =
    variant lab ~parent:lab.root ~existing:i
      ~not_before:(Vtime.add_months now (-6)) ~not_after:(Vtime.add_years now 9) ()
  in
  let e = leaf lab ~parent:i in
  base_fixture lab
    ~served:[ e.Issue.cert; i1; i.Issue.cert; i2; i3; lab.root.Issue.cert ]
    ~labelled:
      [ ("E", e.Issue.cert); ("I", i.Issue.cert); ("I1-expired", i1);
        ("I2-recent", i2); ("I3-long", i3) ]

let fixture_kid () =
  let lab = make_lab "kid" in
  let i = intermediate lab ~parent:lab.root ~cn:"KID I" in
  let i1 = variant lab ~parent:lab.root ~existing:i ~faults:[ Issue.Wrong_skid ] () in
  let i2 = variant lab ~parent:lab.root ~existing:i ~faults:[ Issue.No_skid ] () in
  let e = leaf lab ~parent:i in
  base_fixture lab
    ~served:[ e.Issue.cert; i1; i2; i.Issue.cert; lab.root.Issue.cert ]
    ~labelled:
      [ ("E", e.Issue.cert); ("I-match", i.Issue.cert); ("I1-mismatch", i1);
        ("I2-absent", i2) ]

let fixture_keyusage () =
  let lab = make_lab "keyusage" in
  let i = intermediate lab ~parent:lab.root ~cn:"KU I" in
  let i1 = variant lab ~parent:lab.root ~existing:i ~faults:[ Issue.Wrong_key_usage ] () in
  let i2 = variant lab ~parent:lab.root ~existing:i ~faults:[ Issue.No_key_usage ] () in
  let e = leaf lab ~parent:i in
  base_fixture lab
    ~served:[ e.Issue.cert; i1; i2; i.Issue.cert; lab.root.Issue.cert ]
    ~labelled:
      [ ("E", e.Issue.cert); ("I-correct", i.Issue.cert); ("I1-incorrect", i1);
        ("I2-absent", i2) ]

let fixture_basic_constraints () =
  let lab = make_lab "bc" in
  let i2 = intermediate lab ~parent:lab.root ~cn:"BC Upper" ~path_len:1 in
  let i3 = variant lab ~parent:lab.root ~existing:i2 ~faults:[ Issue.Wrong_path_len 0 ] () in
  let i1 = intermediate lab ~parent:i2 ~cn:"BC Lower" ~path_len:0 in
  let e = leaf lab ~parent:i1 in
  base_fixture lab
    ~served:[ e.Issue.cert; i1.Issue.cert; i3; i2.Issue.cert; lab.root.Issue.cert ]
    ~labelled:
      [ ("E", e.Issue.cert); ("I1", i1.Issue.cert); ("I2-correct", i2.Issue.cert);
        ("I3-incorrect", i3) ]

let length_fixture n =
  let lab = make_lab (Printf.sprintf "length-%d" n) in
  let rec chain parent acc k =
    if k > n then (parent, acc)
    else
      let i = intermediate lab ~parent ~cn:(Printf.sprintf "Len I%d" k) in
      chain i (i.Issue.cert :: acc) (k + 1)
  in
  let last, intermediates_rev = chain lab.root [] 1 in
  let e = leaf lab ~parent:last in
  (* [intermediates_rev] accumulated deepest-first, which is exactly the
     compliant leaf-to-root serving order. *)
  base_fixture lab
    ~served:(e.Issue.cert :: (intermediates_rev @ [ lab.root.Issue.cert ]))
    ~labelled:[ ("E", e.Issue.cert) ]

let fixture_self_signed () =
  let lab = make_lab "self-signed-leaf" in
  let i = intermediate lab ~parent:lab.root ~cn:"SSL I" in
  let e = leaf lab ~parent:i in
  let es =
    Issue.self_signed lab.rng
      (Issue.spec
         ~san:[ Extension.Dns host ]
         ~not_before:(Vtime.add_months now (-2))
         ~not_after:(Vtime.add_months now 10)
         (Dn.make ~cn:host ()))
  in
  base_fixture lab
    ~served:[ es.Issue.cert; e.Issue.cert; i.Issue.cert; lab.root.Issue.cert ]
    ~labelled:[ ("ES", es.Issue.cert); ("E", e.Issue.cert); ("I", i.Issue.cert) ]

let fixture = function
  | Order_reorganization -> fixture_order ()
  | Redundancy_elimination -> fixture_redundancy ()
  | Aia_completion -> fixture_aia ()
  | Validity_priority -> fixture_validity ()
  | Kid_priority -> fixture_kid ()
  | Keyusage_priority -> fixture_keyusage ()
  | Basic_constraints_priority -> fixture_basic_constraints ()
  | Path_length_constraint -> length_fixture 40
  | Self_signed_leaf -> fixture_self_signed ()

let run_client client fx =
  let ctx = Clients.context client ~store:fx.store ~aia:fx.aia ~cache:fx.cache ~now:fx.now in
  Engine.run ctx ~host:(Some fx.host) fx.served

(* Which labelled certificate appears at path position 1 (the chosen direct
   issuer of the leaf)? *)
let chosen_issuer fx outcome =
  match outcome.Engine.constructed with
  | Some (_ :: chosen :: _) ->
      List.find_map
        (fun (name, cert) -> if Cert.equal cert chosen then Some name else None)
        fx.labelled
  | _ -> None

let yes_no = function true -> "yes" | false -> "no"

let evaluate_basic client test =
  let fx = fixture test in
  yes_no (Engine.accepted (run_client client fx))

let evaluate_validity client =
  let fx = fixture Validity_priority in
  match chosen_issuer fx (run_client client fx) with
  | Some "I1-expired" -> "-"
  | Some "I" -> "VP1"
  | Some "I2-recent" -> "VP2"
  | Some other -> "?" ^ other
  | None -> "fail"

let evaluate_kid client =
  let fx = fixture Kid_priority in
  match chosen_issuer fx (run_client client fx) with
  | Some "I1-mismatch" -> "-"
  | Some "I2-absent" -> "KP1"
  | Some "I-match" -> "KP2"
  | Some other -> "?" ^ other
  | None -> "fail"

let evaluate_keyusage client =
  let fx = fixture Keyusage_priority in
  match chosen_issuer fx (run_client client fx) with
  | Some "I1-incorrect" -> "-"
  | Some ("I2-absent" | "I-correct") -> "KUP"
  | Some other -> "?" ^ other
  | None -> "fail"

(* For BC the discriminating choice is the issuer of I1 (path position 2). *)
let evaluate_bc client =
  let fx = fixture Basic_constraints_priority in
  let outcome = run_client client fx in
  match outcome.Engine.constructed with
  | Some (_ :: _ :: chosen :: _) -> (
      match
        List.find_map
          (fun (name, cert) -> if Cert.equal cert chosen then Some name else None)
          fx.labelled
      with
      | Some "I3-incorrect" -> "-"
      | Some "I2-correct" -> "BP"
      | Some other -> "?" ^ other
      | None -> "fail")
  | _ -> "fail"

let evaluate_length client =
  (* Find the largest n (number of intermediates) that validates, probing the
     interesting thresholds the paper reports plus a >52 sentinel. *)
  let passes n = Engine.accepted (run_client client (length_fixture n)) in
  if passes 51 then ">52"
  else begin
    (* Binary search the threshold in [0, 51]. *)
    let rec search lo hi =
      (* invariant: passes lo, not (passes hi) *)
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if passes mid then search mid hi else search lo mid
    in
    let max_n = if passes 0 then search 0 51 else -1 in
    if max_n < 0 then "=0"
    else
      (* Chain length = leaf + n intermediates + root. *)
      Printf.sprintf "=%d" (max_n + 2)
  end

let evaluate_self_signed client =
  let fx = fixture Self_signed_leaf in
  let outcome = run_client client fx in
  match outcome.Engine.result with
  | Error (Engine.Build Path_builder.Self_signed_leaf_rejected) -> "no"
  | Error (Engine.Validate Path_validate.Self_signed_leaf) -> "yes"
  | _ -> (
      match outcome.Engine.constructed with
      | Some [ single ] when Cert.is_self_signed single -> "yes"
      | _ -> "no")

let evaluate client test =
  match test with
  | Order_reorganization | Redundancy_elimination | Aia_completion ->
      evaluate_basic client test
  | Validity_priority -> evaluate_validity client
  | Kid_priority -> evaluate_kid client
  | Keyusage_priority -> evaluate_keyusage client
  | Basic_constraints_priority -> evaluate_bc client
  | Path_length_constraint -> evaluate_length client
  | Self_signed_leaf -> evaluate_self_signed client

let evaluate_all client = List.map (fun t -> (t, evaluate client t)) all_tests

let table9_expected id test =
  let open Clients in
  match (test, id) with
  | Order_reorganization, Mbedtls -> "no"
  | Order_reorganization, _ -> "yes"
  | Redundancy_elimination, _ -> "yes"
  | Aia_completion, (Cryptoapi | Chrome | Edge | Safari) -> "yes"
  | Aia_completion, _ -> "no"
  | Validity_priority, (Openssl | Mbedtls | Firefox) -> "VP1"
  | Validity_priority, Gnutls -> "-"
  | Validity_priority, _ -> "VP2"
  | Kid_priority, (Openssl | Gnutls | Safari) -> "KP1"
  | Kid_priority, (Cryptoapi | Chrome | Edge) -> "KP2"
  | Kid_priority, (Mbedtls | Firefox) -> "-"
  | Keyusage_priority, (Openssl | Gnutls) -> "-"
  | Keyusage_priority, _ -> "KUP"
  | Basic_constraints_priority, (Openssl | Gnutls) -> "-"
  | Basic_constraints_priority, _ -> "BP"
  | Path_length_constraint, (Openssl | Chrome | Safari) -> ">52"
  | Path_length_constraint, Gnutls -> "=16"
  | Path_length_constraint, Mbedtls -> "=10"
  | Path_length_constraint, Cryptoapi -> "=13"
  | Path_length_constraint, Edge -> "=21"
  | Path_length_constraint, Firefox -> "=8"
  | Self_signed_leaf, (Mbedtls | Safari) -> "yes"
  | Self_signed_leaf, _ -> "no"

type coverage = { capability : string; better_tls : bool; this_work : bool }

let betterlts_comparison =
  [ { capability = "ORDER_REORGANIZATION"; better_tls = false; this_work = true };
    { capability = "REDUNDANCY_ELIMINATION"; better_tls = false; this_work = true };
    { capability = "AIA_COMPLETION"; better_tls = false; this_work = true };
    { capability = "EXPIRED"; better_tls = true; this_work = true };
    { capability = "NAME_CONSTRAINTS"; better_tls = true; this_work = false };
    { capability = "BAD_EKU"; better_tls = true; this_work = false };
    { capability = "MISS_BASIC_CONSTRAINTS"; better_tls = true; this_work = false };
    { capability = "NOT_A_CA"; better_tls = true; this_work = false };
    { capability = "DEPRECATED_CRYPTO"; better_tls = true; this_work = false };
    { capability = "BAD_PATH_LENGTH"; better_tls = false; this_work = true };
    { capability = "BAD_KID"; better_tls = false; this_work = true };
    { capability = "BAD_KU"; better_tls = false; this_work = true };
    { capability = "PATH_LENGTH_CONSTRAINT"; better_tls = false; this_work = true };
    { capability = "SELF_SIGNED_LEAF_CERT"; better_tls = false; this_work = true } ]
