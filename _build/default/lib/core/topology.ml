open Chaoschain_x509

type node = { index : int; cert : Cert.t; occurrences : int list }

type t = {
  certs : Cert.t list;
  nodes : node array;              (* unique certs, first-occurrence order *)
  edges : int list array;          (* node idx -> issuer node idxs *)
  leaf_paths : int list list Lazy.t;
}

let build_edges nodes =
  let n = Array.length nodes in
  let edges = Array.make n [] in
  for child = 0 to n - 1 do
    let out = ref [] in
    for issuer = 0 to n - 1 do
      if issuer <> child
         && Relation.issued ~issuer:nodes.(issuer).cert ~child:nodes.(child).cert
      then out := issuer :: !out
    done;
    edges.(child) <- List.rev !out
  done;
  edges

(* All maximal simple paths from node 0 following issuer edges. A self-signed
   certificate ends a path; already-visited nodes are skipped, which makes
   cross-sign cycles terminate. *)
let compute_paths nodes edges =
  let acc = ref [] in
  let rec go path current =
    let path = current :: path in
    let stop_here = Cert.is_self_signed nodes.(current).cert in
    let nexts =
      if stop_here then []
      else List.filter (fun i -> not (List.mem i path)) edges.(current)
    in
    match nexts with
    | [] -> acc := List.rev path :: !acc
    | nexts -> List.iter (go path) nexts
  in
  go [] 0;
  List.rev !acc

let build certs =
  if certs = [] then invalid_arg "Topology.build: empty certificate list";
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iteri
    (fun pos cert ->
      let fp = Cert.fingerprint cert in
      match Hashtbl.find_opt tbl fp with
      | Some node -> Hashtbl.replace tbl fp { node with occurrences = node.occurrences @ [ pos ] }
      | None ->
          Hashtbl.replace tbl fp { index = pos; cert; occurrences = [ pos ] };
          order := fp :: !order)
    certs;
  let nodes =
    Array.of_list (List.rev_map (fun fp -> Hashtbl.find tbl fp) !order)
  in
  let edges = build_edges nodes in
  { certs; nodes; edges; leaf_paths = lazy (compute_paths nodes edges) }

let certs t = t.certs
let nodes t = Array.to_list t.nodes
let node_count t = Array.length t.nodes
let list_length t = List.length t.certs
let duplicates t = List.filter (fun n -> List.length n.occurrences > 1) (nodes t)
let leaf t = t.nodes.(0)

let node_pos t node =
  let rec find i =
    if i >= Array.length t.nodes then invalid_arg "Topology: foreign node"
    else if t.nodes.(i).index = node.index then i
    else find (i + 1)
  in
  find 0

let issuer_edges t node = List.map (fun i -> t.nodes.(i)) t.edges.(node_pos t node)
let paths t = List.map (List.map (fun i -> t.nodes.(i))) (Lazy.force t.leaf_paths)

let reachable_from_leaf t =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun path -> List.iter (fun n -> Hashtbl.replace seen n.index ()) path)
    (paths t);
  List.filter (fun n -> Hashtbl.mem seen n.index) (nodes t)

let irrelevant t =
  let reachable = reachable_from_leaf t in
  List.filter
    (fun n -> not (List.exists (fun r -> r.index = n.index) reachable))
    (nodes t)

let render_label t node =
  ignore t;
  string_of_int node.index

let render t =
  let buf = Buffer.create 256 in
  let label_of_pos pos =
    (* A duplicate occurrence renders as first[i]. *)
    let node =
      Array.to_list t.nodes
      |> List.find (fun n -> List.mem pos n.occurrences)
    in
    if node.index = pos then string_of_int pos
    else
      let occurrence =
        let rec idx i = function
          | [] -> assert false
          | p :: _ when p = pos -> i
          | _ :: rest -> idx (i + 1) rest
        in
        idx 0 node.occurrences
      in
      Printf.sprintf "%d[%d]" node.index occurrence
  in
  Buffer.add_string buf "list:  ";
  List.iteri
    (fun pos _ ->
      if pos > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (label_of_pos pos))
    t.certs;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i node ->
      List.iter
        (fun issuer ->
          Buffer.add_string buf
            (Printf.sprintf "edge:  %d -> %d   (%s issued by %s)\n" node.index
               t.nodes.(issuer).index
               (match Dn.common_name (Cert.subject node.cert) with
               | Some cn -> cn
               | None -> "?")
               (match Dn.common_name (Cert.subject t.nodes.(issuer).cert) with
               | Some cn -> cn
               | None -> "?")))
        t.edges.(i))
    t.nodes;
  List.iter
    (fun path ->
      Buffer.add_string buf
        (Printf.sprintf "path:  %s\n"
           (String.concat " -> " (List.map (fun n -> string_of_int n.index) path))))
    (paths t);
  Buffer.contents buf
