open Chaoschain_x509
open Chaoschain_pki

type error =
  | Empty_chain
  | Input_list_too_long of { limit : int; got : int }
  | Self_signed_leaf_rejected
  | No_issuer_found of Dn.t
  | Path_too_long of { limit : int }

let error_to_string = function
  | Empty_chain -> "empty certificate list"
  | Input_list_too_long { limit; got } ->
      Printf.sprintf "certificate list too long (%d > limit %d)" got limit
  | Self_signed_leaf_rejected -> "self-signed leaf certificate rejected"
  | No_issuer_found dn ->
      Printf.sprintf "unable to get issuer certificate for '%s'" (Dn.to_string dn)
  | Path_too_long { limit } ->
      Printf.sprintf "constructed path exceeds maximum length %d" limit

type context = {
  params : Build_params.t;
  store : Root_store.t;
  aia : Aia_repo.t option;
  cache : Cert.t list;
  crls : Crl_registry.t option;
  now : Vtime.t;
}

let context ?aia ?(cache = []) ?crls ?(now = Vtime.make ~y:2024 ~m:6 ~d:1 ())
    ~params store =
  { params; store; aia; cache; crls; now }

type attempt = {
  path : Cert.t list;
  anchored : bool;
  used_aia : bool;
  used_cache : bool;
}

type source = From_list of int | From_store | From_cache | From_aia

type candidate = { cert : Cert.t; source : source }

let source_position = function
  | From_list p -> p
  | From_store -> 1000
  | From_cache -> 2000
  | From_aia -> 3000

let epoch = Vtime.make ~y:1970 ~m:1 ~d:1 ()

(* Smaller key sorts first. *)
let rank_key ctx ~child cand =
  let p = ctx.params in
  let c = cand.cert in
  let kid_rank =
    match (p.Build_params.kid_priority, Relation.kid_status ~issuer:c ~child) with
    | Build_params.KP_none, _ -> 0
    | _, Relation.Kid_match -> 0
    | Build_params.KP1, Relation.Kid_absent -> 0
    | Build_params.KP2, Relation.Kid_absent -> 1
    | _, Relation.Kid_mismatch -> 2
  in
  let trusted_rank =
    if p.Build_params.prefer_trusted_root && Root_store.mem ctx.store c then 0 else 1
  in
  let self_signed_rank =
    if p.Build_params.prefer_self_signed && Cert.is_self_signed c then 0 else 1
  in
  let ku_rank =
    if not p.Build_params.ku_priority then 0
    else
      match Cert.key_usage c with
      | None -> 0
      | Some flags -> if List.mem Extension.Key_cert_sign flags then 0 else 1
  in
  let bc_rank =
    if not p.Build_params.bc_priority then 0
    else
      match Cert.basic_constraints c with
      | Some { Extension.ca = true; path_len } -> (
          (* Intermediates already below the candidate, excluding the leaf. *)
          match path_len with
          | None -> 0
          | Some n -> if n >= 0 && n + 1 >= 1 then 0 else 1)
      | Some { Extension.ca = false; _ } -> 1
      | None -> 1
  in
  let sig_alg_rank =
    if p.Build_params.check_sig_alg && not (Relation.sig_alg_compatible ~issuer:c ~child)
    then 1
    else 0
  in
  let validity_ranks =
    match p.Build_params.validity_priority with
    | Build_params.VP_none -> [ 0; 0; 0 ]
    | Build_params.VP_first_valid ->
        [ (if Cert.valid_at c ctx.now then 0 else 1); 0; 0 ]
    | Build_params.VP_recent_longest ->
        [ (if Cert.valid_at c ctx.now then 0 else 1);
          - Vtime.diff_days (Cert.not_before c) epoch;
          - Cert.validity_days c ]
  in
  [ kid_rank; trusted_rank; self_signed_rank; ku_rank; bc_rank; sig_alg_rank ]
  @ validity_ranks
  @ [ source_position cand.source ]

(* bc_rank needs the depth of the candidate in the path; recompute properly. *)
let bc_rank_at_depth cand ~intermediates_below =
  match Cert.basic_constraints cand.cert with
  | Some { Extension.ca = true; path_len = None } -> 0
  | Some { Extension.ca = true; path_len = Some n } ->
      if n >= intermediates_below then 0 else 1
  | Some { Extension.ca = false; _ } -> 1
  | None -> 1

let compare_keys = List.compare Int.compare

let rank_candidates ctx ~child ~path_len_so_far cands =
  let keyed =
    List.map
      (fun cand ->
        let base = rank_key ctx ~child cand in
        let key =
          if ctx.params.Build_params.bc_priority then
            (* Replace the coarse bc rank (index 4) with the depth-aware one:
               intermediates below the candidate = certificates already in
               the path except the leaf. *)
            List.mapi
              (fun i v ->
                if i = 4 then bc_rank_at_depth cand ~intermediates_below:(path_len_so_far - 1)
                else v)
              base
          else base
        in
        (key, cand))
      cands
  in
  List.stable_sort (fun (a, _) (b, _) -> compare_keys a b) keyed |> List.map snd

let name_chains_to ~candidate ~child = Relation.issued_by_name ~issuer:candidate ~child

let in_list_candidates ctx positions ~used ~cur_pos ~child =
  List.filter_map
    (fun (pos, cert) ->
      let eligible_pos = ctx.params.Build_params.reorder || pos > cur_pos in
      if eligible_pos
         && (not (Hashtbl.mem used (Cert.fingerprint cert)))
         && (not (Cert.equal cert child))
         && name_chains_to ~candidate:cert ~child
      then Some { cert; source = From_list pos }
      else None)
    positions

let store_candidates ctx ~used ~child =
  List.filter_map
    (fun cert ->
      if (not (Hashtbl.mem used (Cert.fingerprint cert))) && not (Cert.equal cert child)
      then Some { cert; source = From_store }
      else None)
    (Root_store.issuer_candidates ctx.store child)

let cache_candidates ctx ~used ~child =
  if not ctx.params.Build_params.intermediate_cache then []
  else
    List.filter_map
      (fun cert ->
        if (not (Hashtbl.mem used (Cert.fingerprint cert)))
           && (not (Cert.equal cert child))
           && name_chains_to ~candidate:cert ~child
        then Some { cert; source = From_cache }
        else None)
      ctx.cache

let aia_candidates ctx ~used ~child =
  match ctx.aia with
  | None -> []
  | Some repo when ctx.params.Build_params.aia_fetch -> (
      match Cert.aia_ca_issuers child with
      | [] -> []
      | uri :: _ -> (
          match Aia_repo.fetch repo uri with
          | Aia_repo.Served cert
            when (not (Hashtbl.mem used (Cert.fingerprint cert)))
                 && (not (Cert.equal cert child))
                 && name_chains_to ~candidate:cert ~child ->
              [ { cert; source = From_aia } ]
          | _ -> []))
  | Some _ -> []

let dedup_by_fingerprint cands =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun cand ->
      let fp = Cert.fingerprint cand.cert in
      if Hashtbl.mem seen fp then false
      else begin
        Hashtbl.add seen fp ();
        true
      end)
    cands

(* The DFS. [on_dead_end] observes the first dead-end issuer DN. *)
let explore ctx positions ~on_dead_end leaf : attempt Seq.t =
  let max_len =
    match ctx.params.Build_params.length_limit with
    | Build_params.Max_constructed n -> Some n
    | _ -> None
  in
  let rec step rev_path used cur_pos flags () =
    let child = List.hd rev_path in
    let path_complete =
      Cert.is_self_signed child || Root_store.mem ctx.store child
    in
    if path_complete then
      let used_aia, used_cache = flags in
      Seq.Cons
        ( { path = List.rev rev_path;
            anchored = Root_store.mem ctx.store child;
            used_aia;
            used_cache },
          Seq.empty )
    else begin
      let list_cands = in_list_candidates ctx positions ~used ~cur_pos ~child in
      let store_cands = store_candidates ctx ~used ~child in
      let cache_cands = cache_candidates ctx ~used ~child in
      let primary = dedup_by_fingerprint (list_cands @ store_cands @ cache_cands) in
      let cands =
        if primary = [] then aia_candidates ctx ~used ~child else primary
      in
      let cands =
        if ctx.params.Build_params.partial_validation then
          List.filter (fun c -> Relation.signature_ok ~issuer:c.cert ~child) cands
        else cands
      in
      (* MbedTLS-style revocation-during-construction: drop a candidate when
         its CRL says the child is revoked (unknown status is tolerated). *)
      let cands =
        match (ctx.params.Build_params.revocation, ctx.crls) with
        | Build_params.During_construction, Some registry ->
            List.filter
              (fun c ->
                match Crl_registry.status registry ~issuer:c.cert ~now:ctx.now child with
                | Crl.Revoked _ -> false
                | Crl.Good | Crl.Unknown_status _ -> true)
              cands
        | _ -> cands
      in
      let cands =
        match max_len with
        | Some limit when List.length rev_path + 1 > limit -> []
        | _ -> cands
      in
      let cands =
        rank_candidates ctx ~child ~path_len_so_far:(List.length rev_path) cands
      in
      if cands = [] then begin
        on_dead_end (Cert.issuer child);
        Seq.Nil
      end
      else
        let branches =
          List.to_seq cands
          |> Seq.flat_map (fun cand ->
                 let used' = Hashtbl.copy used in
                 Hashtbl.replace used' (Cert.fingerprint cand.cert) ();
                 let used_aia, used_cache = flags in
                 let flags' =
                   ( used_aia || cand.source = From_aia,
                     used_cache || cand.source = From_cache )
                 in
                 let pos =
                   match cand.source with From_list p -> p | _ -> cur_pos
                 in
                 step (cand.cert :: rev_path) used' pos flags')
        in
        branches ()
    end
  in
  let used = Hashtbl.create 8 in
  Hashtbl.replace used (Cert.fingerprint leaf) ();
  fun () -> step [ leaf ] used 0 (false, false) ()

let prepare ctx certs =
  match certs with
  | [] -> Error Empty_chain
  | leaf :: _ -> (
      match ctx.params.Build_params.length_limit with
      | Build_params.Max_input_list limit when List.length certs > limit ->
          Error (Input_list_too_long { limit; got = List.length certs })
      | _ ->
          if Cert.is_self_signed leaf
             && not ctx.params.Build_params.allow_self_signed_leaf
          then Error Self_signed_leaf_rejected
          else Ok leaf)

let build ctx certs =
  match prepare ctx certs with
  | Error e -> Error e
  | Ok leaf ->
      let positions = List.mapi (fun i c -> (i, c)) certs in
      Ok (explore ctx positions ~on_dead_end:(fun _ -> ()) leaf)

let first_dead_end ctx certs =
  match prepare ctx certs with
  | Error _ -> None
  | Ok leaf ->
      let positions = List.mapi (fun i c -> (i, c)) certs in
      let result = ref None in
      let record dn = if !result = None then result := Some dn in
      (* Force at most the first element so only the best-ranked branch (and
         its dead ends) are explored. *)
      (match (explore ctx positions ~on_dead_end:record leaf) () with
      | Seq.Nil | Seq.Cons _ -> ());
      !result
