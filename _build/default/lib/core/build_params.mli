(** The capability knobs of the parameterized chain builder.

    Every TLS implementation the paper tests is expressed as a value of
    {!t}; the knobs map one-to-one onto the capability rows of Table 9 plus
    the empirical notes of sections 3.2 and 5 (MbedTLS's forward-only
    candidate scan and partial validation, GnuTLS's input-list length limit,
    Firefox's intermediate cache, CryptoAPI's backtracking and OS
    intermediate store, Chromium's self-signed preference, OpenSSL's
    signature-algorithm check). *)

type validity_priority =
  | VP_none          (** no validity-based ranking: first listed wins *)
  | VP_first_valid   (** VP1: first currently-valid candidate *)
  | VP_recent_longest(** VP2: valid first, then most recent notBefore, then
                         longest validity period *)

val validity_priority_to_string : validity_priority -> string

type kid_priority =
  | KP_none  (** no KID-based ranking *)
  | KP1      (** match and absence tie, both above mismatch *)
  | KP2      (** match above absence above mismatch *)

val kid_priority_to_string : kid_priority -> string

type length_limit =
  | Unlimited
  | Max_constructed of int  (** certificates in the built path *)
  | Max_input_list of int   (** certificates in the server-provided list —
                                the GnuTLS semantics behind finding I-2 *)

val length_limit_to_string : length_limit -> string

type revocation_mode =
  | No_revocation           (** never consult CRLs *)
  | During_construction
      (** check the child's status against each candidate issuer's CRL while
          selecting, dropping candidates that reveal a revocation — the
          MbedTLS integration style from section 3.2 *)
  | During_validation       (** classic RFC 5280 step-2 checking *)

val revocation_mode_to_string : revocation_mode -> string

type t = {
  reorder : bool;
  (** When false, issuer candidates are only sought at later list positions
      than the current certificate (the forward-only scan that makes MbedTLS
      fail reversed chains yet pass redundancy elimination). *)
  aia_fetch : bool;
  intermediate_cache : bool;
  (** Consult the client's cached/OS intermediate store when the list has no
      candidate (Firefox's cache, CryptoAPI's Windows store). *)
  validity_priority : validity_priority;
  kid_priority : kid_priority;
  ku_priority : bool;   (** correct-or-missing KeyUsage above incorrect *)
  bc_priority : bool;   (** correct BasicConstraints/pathLen above incorrect *)
  prefer_trusted_root : bool;
  (** Rank candidates present in the trust store first (recommended by
      section 6.2; CryptoAPI and browsers behave this way). *)
  prefer_self_signed : bool;   (** Chromium's second-stage preference *)
  check_sig_alg : bool;        (** OpenSSL's algorithm-compatibility check *)
  length_limit : length_limit;
  allow_self_signed_leaf : bool;
  backtracking : bool;
  (** Try the next structurally complete path after validation fails.
      Distinct from the universal within-construction dead-end retry. *)
  partial_validation : bool;
  (** Verify the candidate's signature over the child during selection and
      drop non-verifying candidates (MbedTLS). *)
  revocation : revocation_mode;
  max_attempts : int;  (** bound on structurally complete paths explored *)
}

val default : t
(** A fully-capable reference builder: every capability on, KP2/VP2
    priorities, unlimited length, backtracking — essentially the RFC 4158
    recommendations plus section 6.2's advice. *)

val rfc4158 : t
(** Alias of {!default}, under the name used in documentation. *)
