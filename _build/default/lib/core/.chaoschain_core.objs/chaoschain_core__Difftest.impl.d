lib/core/difftest.ml: Aia_repo Cert Chaoschain_pki Chaoschain_x509 Clients Engine List Path_builder Path_validate Root_store Vtime
