lib/core/topology.ml: Array Buffer Cert Chaoschain_x509 Dn Hashtbl Lazy List Printf Relation String
