lib/core/build_params.mli:
