lib/core/completeness.ml: Aia_repo Cert Chaoschain_pki Chaoschain_x509 Extension List Printf Relation Root_store Topology
