lib/core/fuzzer.ml: Array Cert Chaoschain_crypto Chaoschain_x509 Clients Difftest Format List Printexc Printf String
