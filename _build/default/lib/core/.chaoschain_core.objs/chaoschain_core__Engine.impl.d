lib/core/engine.ml: Build_params Cert Chaoschain_x509 Path_builder Path_validate Result Seq
