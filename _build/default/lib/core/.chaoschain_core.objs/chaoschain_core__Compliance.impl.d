lib/core/compliance.ml: Completeness Format Leaf_check Order_check Printf String Topology
