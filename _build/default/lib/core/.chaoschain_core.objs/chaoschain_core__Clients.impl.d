lib/core/clients.ml: Build_params Chaoschain_pki Engine List Path_builder Path_validate Root_store
