lib/core/path_validate.mli: Cert Chaoschain_pki Chaoschain_x509 Crl_registry Dn Root_store Vtime
