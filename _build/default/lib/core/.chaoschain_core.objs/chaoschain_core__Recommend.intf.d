lib/core/recommend.mli: Aia_repo Build_params Cert Chaoschain_pki Chaoschain_x509 Compliance Root_store Vtime
