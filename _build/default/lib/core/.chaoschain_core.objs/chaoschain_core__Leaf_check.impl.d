lib/core/leaf_check.ml: Cert Chaoschain_x509 Dn Extension List String
