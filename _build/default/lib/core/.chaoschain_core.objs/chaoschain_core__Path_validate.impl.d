lib/core/path_validate.ml: Array Cert Chaoschain_pki Chaoschain_x509 Crl Crl_registry Dn Extension List Printf Relation Result Root_store Vtime
