lib/core/path_builder.mli: Aia_repo Build_params Cert Chaoschain_pki Chaoschain_x509 Crl_registry Dn Root_store Seq Vtime
