lib/core/path_builder.ml: Aia_repo Build_params Cert Chaoschain_pki Chaoschain_x509 Crl Crl_registry Dn Extension Hashtbl Int List Printf Relation Root_store Seq Vtime
