lib/core/capability.ml: Aia_repo Cert Chaoschain_crypto Chaoschain_pki Chaoschain_x509 Clients Dn Engine Extension Issue List Option Path_builder Path_validate Printf Root_store Vtime
