lib/core/order_check.ml: Cert Chaoschain_x509 Dn List Printf Relation String Topology
