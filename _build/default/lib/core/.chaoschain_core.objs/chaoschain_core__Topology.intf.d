lib/core/topology.mli: Cert Chaoschain_x509
