lib/core/difftest.mli: Aia_repo Cert Chaoschain_pki Chaoschain_x509 Clients Engine Root_store Vtime
