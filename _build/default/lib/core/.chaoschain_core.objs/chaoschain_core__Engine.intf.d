lib/core/engine.mli: Cert Chaoschain_x509 Path_builder Path_validate
