lib/core/build_params.ml: Printf
