lib/core/compliance.mli: Aia_repo Cert Chaoschain_pki Chaoschain_x509 Completeness Format Leaf_check Order_check Root_store Topology
