lib/core/leaf_check.mli: Cert Chaoschain_x509
