lib/core/order_check.mli: Topology
