lib/core/clients.mli: Aia_repo Build_params Cert Chaoschain_pki Chaoschain_x509 Crl_registry Engine Path_builder Root_store Vtime
