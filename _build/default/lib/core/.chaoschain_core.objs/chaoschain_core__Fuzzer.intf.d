lib/core/fuzzer.mli: Cert Chaoschain_crypto Chaoschain_x509 Clients Difftest Format
