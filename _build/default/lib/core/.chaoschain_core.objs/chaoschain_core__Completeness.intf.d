lib/core/completeness.mli: Aia_repo Chaoschain_pki Root_store Topology
