lib/core/recommend.ml: Build_params Cert Chaoschain_pki Chaoschain_x509 Completeness Compliance Dn Engine Leaf_check List Order_check Path_builder Relation Root_store Topology Vtime
