(** Frankencert-style differential fuzzing of chain construction.

    Brubaker et al.'s frankencerts mutated certificate *contents*; the
    paper's subject is the chain *structure*, so this fuzzer mutates served
    certificate lists — dropping, duplicating, swapping, reversing and
    contaminating them — and reports inputs on which the client models
    disagree. It is both a test amplifier for this repository and a
    demonstration of the kind of tooling the paper's findings motivate. *)

open Chaoschain_x509

type mutation =
  | Drop of int            (** remove the certificate at this position *)
  | Duplicate of int       (** repeat the certificate at this position *)
  | Swap of int * int
  | Reverse_tail           (** reverse everything after the leaf *)
  | Rotate_tail            (** rotate the non-leaf part by one *)
  | Inject_unrelated of int(** insert a foreign certificate at a position *)
  | Truncate of int        (** keep only the first n certificates *)

val mutation_to_string : mutation -> string

val apply : pool:Cert.t list -> Cert.t list -> mutation -> Cert.t list
(** Apply one mutation ([pool] supplies foreign certificates for
    {!Inject_unrelated}). Out-of-range positions leave the list unchanged. *)

val random_mutation :
  Chaoschain_crypto.Prng.t -> pool:Cert.t list -> Cert.t list -> mutation

type verdicts = (Clients.id * bool) list
(** Accept/reject per client. *)

type divergence = {
  domain : string;
  seed_chain : Cert.t list;
  mutations : mutation list;
  mutated_chain : Cert.t list;
  verdicts : verdicts;
}

type report = {
  iterations : int;
  divergences : divergence list;
      (** inputs on which at least two clients disagreed *)
  crashes : (mutation list * string) list;
      (** mutations that raised an exception anywhere in the pipeline —
          always a bug in this repository, never expected *)
}

val run :
  env:Difftest.env ->
  rng:Chaoschain_crypto.Prng.t ->
  ?clients:Clients.t list ->
  ?max_mutations:int ->
  iterations:int ->
  (string * Cert.t list) list ->
  report
(** Fuzz: per iteration, pick a seed (domain, chain), apply 1..[max_mutations]
    (default 3) random mutations, validate in every client (default: all
    eight), and record divergences. Foreign certificates for injection are
    drawn from the other seeds. Deterministic in [rng]. *)

val pp_divergence : Format.formatter -> divergence -> unit
