open Chaoschain_x509
open Chaoschain_pki

type verdict = Complete_with_root | Complete_without_root | Incomplete

let verdict_to_string = function
  | Complete_with_root -> "complete chain w/ root"
  | Complete_without_root -> "complete chain w/o root"
  | Incomplete -> "incomplete chain"

type incomplete_cause =
  | Recoverable of int
  | Aia_missing
  | Aia_fetch_failed
  | Aia_wrong_cert

let incomplete_cause_to_string = function
  | Recoverable n -> Printf.sprintf "recoverable via AIA (%d missing)" n
  | Aia_missing -> "AIA field missing"
  | Aia_fetch_failed -> "AIA URI access failed"
  | Aia_wrong_cert -> "AIA serves wrong certificate"

type report = {
  verdict : verdict;
  cause : incomplete_cause option;
  missing_count : int;
  via_aia : bool;
}

type path_result =
  | P_with_root
  | P_without_root of { via_aia : bool }
  | P_incomplete of incomplete_cause

(* Recursive AIA chase from [cert], counting downloaded non-self-signed
   intermediates until a self-signed certificate appears. *)
let chase_recoverability aia cert =
  let rec go current missing seen depth =
    if depth > 8 then P_incomplete Aia_fetch_failed
    else
      match Cert.aia_ca_issuers current with
      | [] -> P_incomplete Aia_missing
      | uri :: _ -> (
          match Aia_repo.fetch aia uri with
          | Aia_repo.Http_not_found | Aia_repo.Timeout -> P_incomplete Aia_fetch_failed
          | Aia_repo.Served fetched ->
              if Cert.equal fetched current || List.exists (Cert.equal fetched) seen then
                P_incomplete Aia_wrong_cert
              else if not (Relation.issued_by_name ~issuer:fetched ~child:current) then
                P_incomplete Aia_wrong_cert
              else if Cert.is_self_signed fetched then
                if missing = 0 then P_without_root { via_aia = true }
                else P_incomplete (Recoverable missing)
              else go fetched (missing + 1) (fetched :: seen) (depth + 1))
  in
  go cert 0 [ cert ] 0

let analyze_path ~aia_enabled ~store ~aia path =
  let terminal = List.nth path (List.length path - 1) in
  let cert = terminal.Topology.cert in
  if Cert.is_self_signed cert then P_with_root
  else
    let akid_matches_store =
      match Cert.authority_key_id cert with
      | Some { Extension.akid_key_id = Some kid; _ } -> Root_store.mem_skid store kid
      | _ -> false
    in
    if akid_matches_store then P_without_root { via_aia = false }
    else if not aia_enabled then
      P_incomplete
        (match Cert.aia_ca_issuers cert with [] -> Aia_missing | _ -> Aia_fetch_failed)
    else chase_recoverability aia cert

let better a b =
  let rank = function
    | P_with_root -> 3
    | P_without_root _ -> 2
    | P_incomplete (Recoverable _) -> 1
    | P_incomplete _ -> 0
  in
  if rank a >= rank b then a else b

let analyze ?(aia_enabled = true) ~store ~aia topo =
  let results =
    List.map (analyze_path ~aia_enabled ~store ~aia) (Topology.paths topo)
  in
  let best = List.fold_left better (List.hd results) (List.tl results) in
  match best with
  | P_with_root ->
      { verdict = Complete_with_root; cause = None; missing_count = 0; via_aia = false }
  | P_without_root { via_aia } ->
      { verdict = Complete_without_root; cause = None; missing_count = 0; via_aia }
  | P_incomplete cause ->
      { verdict = Incomplete;
        cause = Some cause;
        missing_count = (match cause with Recoverable n -> n | _ -> 0);
        via_aia = false }

let compliant r = r.verdict <> Incomplete
