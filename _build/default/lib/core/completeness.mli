(** Certificate-chain completeness (section 4.3 / Tables 7 and 8).

    For the terminal certificate of every leaf path the paper's algorithm
    runs: self-signed => complete with root; AKID matches a root-store SKID
    => complete without root; otherwise try to download the issuer via AIA
    and accept when the download is self-signed; anything else is an
    incomplete chain (missing intermediates). Recoverability of incomplete
    chains is judged by recursively chasing AIA until a self-signed
    certificate appears. *)

open Chaoschain_pki

type verdict =
  | Complete_with_root
  | Complete_without_root
  | Incomplete

val verdict_to_string : verdict -> string

type incomplete_cause =
  | Recoverable of int     (** AIA chase reaches a root; the int counts the
                               missing intermediate certificates downloaded *)
  | Aia_missing            (** the terminal certificate carries no caIssuers *)
  | Aia_fetch_failed       (** 404 / timeout along the chase *)
  | Aia_wrong_cert         (** the URI serves a non-issuer (e.g. itself) *)

val incomplete_cause_to_string : incomplete_cause -> string

type report = {
  verdict : verdict;
  cause : incomplete_cause option;  (** set when [verdict = Incomplete] *)
  missing_count : int;              (** 0 unless incomplete-and-recoverable *)
  via_aia : bool;                   (** completeness was confirmed only by an
                                        AIA download (the Table 8 no-AIA
                                        sensitivity) *)
}

val analyze :
  ?aia_enabled:bool -> store:Root_store.t -> aia:Aia_repo.t -> Topology.t -> report
(** [aia_enabled] defaults to [true]. The best verdict over all leaf paths
    wins (with-root > without-root > incomplete); among incomplete paths the
    most recoverable cause is reported. *)

val compliant : report -> bool
(** Complete (with or without root) chains satisfy the completeness rule. *)
