open Chaoschain_x509
open Chaoschain_pki

type error =
  | Untrusted_root of Dn.t
  | Self_signed_leaf
  | Expired of int
  | Not_yet_valid of int
  | Bad_signature of int
  | Not_a_ca of int
  | Path_len_exceeded of int
  | Bad_key_usage of int
  | Revoked of int
  | Hostname_mismatch of string

let error_to_string = function
  | Untrusted_root dn -> Printf.sprintf "untrusted root '%s'" (Dn.to_string dn)
  | Self_signed_leaf -> "self-signed leaf certificate"
  | Expired i -> Printf.sprintf "certificate %d has expired" i
  | Not_yet_valid i -> Printf.sprintf "certificate %d is not yet valid" i
  | Bad_signature i -> Printf.sprintf "certificate %d has an invalid signature" i
  | Not_a_ca i -> Printf.sprintf "certificate %d is not a CA" i
  | Path_len_exceeded i ->
      Printf.sprintf "certificate %d violates its path length constraint" i
  | Bad_key_usage i -> Printf.sprintf "certificate %d lacks keyCertSign" i
  | Revoked i -> Printf.sprintf "certificate %d has been revoked" i
  | Hostname_mismatch host -> Printf.sprintf "hostname '%s' does not match" host

let ( let* ) = Result.bind

let check_anchor ~store path =
  let n = List.length path in
  let terminal = List.nth path (n - 1) in
  if Root_store.mem store terminal then Ok ()
  else if n = 1 && Cert.is_self_signed terminal then Error Self_signed_leaf
  else Error (Untrusted_root (Cert.subject terminal))

let check_signatures path =
  let rec go i = function
    | child :: (issuer :: _ as rest) ->
        if Relation.signature_ok ~issuer ~child then go (i + 1) rest
        else Error (Bad_signature i)
    | _ -> Ok ()
  in
  go 0 path

let check_validity ~now path =
  let n = List.length path in
  let rec go i = function
    | [] -> Ok ()
    | cert :: rest ->
        (* Trust anchors are exempt: clients trust the store entry itself. *)
        if i = n - 1 then Ok ()
        else if Vtime.(Cert.not_after cert < now) then Error (Expired i)
        else if Vtime.(now < Cert.not_before cert) then Error (Not_yet_valid i)
        else go (i + 1) rest
  in
  go 0 path

(* Every non-leaf certificate must be a CA with keyCertSign (when KeyUsage is
   present) and must satisfy its pathLenConstraint: at most [path_len]
   non-self-issued intermediates may follow it towards the leaf. *)
let check_ca_constraints path =
  let arr = Array.of_list path in
  let n = Array.length arr in
  let rec go i =
    if i >= n then Ok ()
    else begin
      let cert = arr.(i) in
      match Cert.basic_constraints cert with
      | None -> Error (Not_a_ca i)
      | Some { Extension.ca = false; _ } -> Error (Not_a_ca i)
      | Some { Extension.ca = true; path_len } -> (
          let* () =
            match Cert.key_usage cert with
            | Some flags when not (List.mem Extension.Key_cert_sign flags) ->
                Error (Bad_key_usage i)
            | _ -> Ok ()
          in
          match path_len with
          | Some limit ->
              (* Intermediates strictly between this certificate and the
                 leaf (indices 1..i-1). *)
              let intermediates_below = i - 1 in
              if intermediates_below > limit then Error (Path_len_exceeded i)
              else go (i + 1)
          | None -> go (i + 1))
    end
  in
  if n <= 1 then Ok () else go 1

let check_hostname ~host path =
  match (host, path) with
  | None, _ | _, [] -> Ok ()
  | Some host, leaf :: _ ->
      if Cert.matches_hostname leaf host then Ok () else Error (Hostname_mismatch host)

(* Unknown status (no CRL, stale, unverifiable) soft-fails, matching default
   client behaviour; only a positive revocation verdict rejects. *)
let check_revocation ~crls ~now path =
  match crls with
  | None -> Ok ()
  | Some registry ->
      let rec go i = function
        | child :: (issuer :: _ as rest) -> (
            match Crl_registry.status registry ~issuer ~now child with
            | Crl.Revoked _ -> Error (Revoked i)
            | Crl.Good | Crl.Unknown_status _ -> go (i + 1) rest)
        | _ -> Ok ()
      in
      go 0 path

let validate ?crls ~store ~now ~host path =
  match path with
  | [] -> Error (Untrusted_root Dn.empty)
  | _ ->
      let* () = check_anchor ~store path in
      let* () = check_signatures path in
      let* () = check_validity ~now path in
      let* () = check_ca_constraints path in
      let* () = check_revocation ~crls ~now path in
      check_hostname ~host path
