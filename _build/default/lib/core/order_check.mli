(** Issuance-order compliance (section 4.2 / Table 5).

    A chain violates the ordering requirement when it contains duplicates,
    certificates irrelevant to the leaf, more than one candidate path, or a
    path in which an issuer appears before its subject. One chain can exhibit
    several violation types at once, as in the paper's overlapping counts. *)


type duplicate_kind = Dup_leaf | Dup_intermediate | Dup_root

val duplicate_kind_to_string : duplicate_kind -> string

type irrelevant_kind =
  | Irr_extra_leaf       (** a second, distinct leaf-like certificate *)
  | Irr_self_signed      (** an unconnected self-signed (root) certificate *)
  | Irr_foreign_chain    (** irrelevant certs with issuance relations among
                             themselves — (part of) another chain *)
  | Irr_lone             (** a single unconnected intermediate *)

val irrelevant_kind_to_string : irrelevant_kind -> string

type report = {
  duplicates : (duplicate_kind * Topology.node) list;
  irrelevant : (irrelevant_kind * Topology.node) list;
  path_count : int;
  multiple_paths : bool;
  cross_sign_paths : bool;    (** multiple paths caused by same-subject,
                                  same-SKID, different-issuer certificates *)
  reversed_paths : int;       (** paths containing an inversion *)
  all_paths_reversed : bool;
  ordered : bool;             (** the overall Table 5 verdict: no violation *)
}

val analyze : Topology.t -> report

val has_duplicates : report -> bool
val has_irrelevant : report -> bool
val has_reversed : report -> bool

val violations : report -> string list
(** Human-readable violation list, empty when [ordered]. *)
