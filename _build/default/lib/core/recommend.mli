(** Section 6 of the paper, made executable: remediation advice for a
    non-compliant deployment, prioritization advice for builders, and the
    capability ablation behind the claim that clients with reordering, AIA
    completion and backtracking validate significantly more real chains. *)

open Chaoschain_x509
open Chaoschain_pki

(** {1 Server-side (section 6.1)} *)

type audience = For_ca | For_http_server | For_administrator

val audience_to_string : audience -> string

type advice = {
  audience : audience;
  severity : [ `Must | `Should ];
  text : string;
}

val server_advice : Compliance.report -> advice list
(** Concrete remediation steps for each violation the report contains (plus
    the standing automation advice when anything is wrong at all). Empty for
    a compliant deployment. *)

val corrected_chain : Compliance.report -> Cert.t list option
(** A compliant re-serialisation of the deployment when one is derivable from
    the served certificates alone: the first valid path, leaf first, with the
    trust anchor kept if the server originally included a root. [None] when
    certificates are missing (completeness advice applies instead). *)

(** {1 Client-side (section 6.2)} *)

val recommended_params : Build_params.t
(** The paper's recommended configuration: reordering, AIA completion,
    backtracking, KID priority match > absent > mismatch, trusted-root
    preference, recency preference among validity variants. *)

type ablation_step = {
  label : string;
  params : Build_params.t;
  accepted : int;
  total : int;
}

val capability_ablation :
  store:Root_store.t -> aia:Aia_repo.t -> now:Vtime.t ->
  (string * Cert.t list) list -> ablation_step list
(** Validate every (domain, chain) pair under a ladder of configurations —
    none of the three key capabilities, then +reordering, +AIA completion,
    +backtracking, and finally the full recommended profile — returning the
    acceptance count at each rung. This is the experiment behind the section
    6.2 claim. *)

(** {1 Prioritization statistics (section 6.2)} *)

type ambiguity_stats = {
  chains_with_ties : int;
      (** chains where some certificate has several candidate issuers with
          identical subject DN and matching KID *)
  tie_with_trusted_root : int;
      (** ties where one candidate is a trusted self-signed root — prefer it *)
  tie_validity_variants : int;
      (** ties between intermediates differing only in validity — prefer the
          most recently issued *)
}

val ambiguity_statistics :
  store:Root_store.t -> (string * Cert.t list) list -> ambiguity_stats
(** The paper's 785 / 744 / 42 analysis over a chain corpus. *)
