(** Forward certification-path construction (the client-side engine).

    All implementations the paper studied build forward from the leaf toward
    a trust anchor, differing in how they pick among candidate issuers and in
    what resources they consult; this engine realises that shared skeleton,
    parameterized by {!Build_params.t}.

    At each step the candidate issuers of the path's current tail are drawn
    from (a) the remaining server-provided certificates — all of them when
    [reorder], only later list positions otherwise, (b) trust-store roots
    whose subject chains, (c) the client's intermediate cache, and, when the
    other sources are empty, (d) an AIA download. Candidates are ranked by
    the client's priority comparators and explored depth-first; running out
    of candidates at one level falls back to the next candidate at the
    previous level (universal in real clients — distinct from
    [backtracking], which retries *after validation* and is handled by
    {!Engine}). Structurally complete paths are produced lazily in
    exploration order. *)

open Chaoschain_x509
open Chaoschain_pki

type error =
  | Empty_chain
  | Input_list_too_long of { limit : int; got : int }  (** GnuTLS semantics *)
  | Self_signed_leaf_rejected
  | No_issuer_found of Dn.t
      (** construction dead-ended; the DN is the issuer that could not be
          located (OpenSSL's "unable to get local issuer certificate") *)
  | Path_too_long of { limit : int }

val error_to_string : error -> string

type context = {
  params : Build_params.t;
  store : Root_store.t;
  aia : Aia_repo.t option;     (** [None] disconnects the network *)
  cache : Cert.t list;         (** intermediate cache / OS cert store *)
  crls : Crl_registry.t option;
      (** CRL distribution; consulted per [params.revocation] *)
  now : Vtime.t;
}

val context :
  ?aia:Aia_repo.t -> ?cache:Cert.t list -> ?crls:Crl_registry.t ->
  ?now:Vtime.t -> params:Build_params.t -> Root_store.t -> context
(** Convenience constructor; [now] defaults to 2024-06-01. *)

type attempt = {
  path : Cert.t list;          (** leaf first, trust-anchor-most last *)
  anchored : bool;             (** terminal is in the trust store *)
  used_aia : bool;
  used_cache : bool;
}

val build : context -> Cert.t list -> (attempt Seq.t, error) result
(** Lazily enumerate structurally complete paths for the given server list,
    best-ranked first. [Ok Seq.empty] means construction dead-ended
    everywhere without an outright input error; {!Engine} converts that into
    {!No_issuer_found}. *)

val first_dead_end : context -> Cert.t list -> Dn.t option
(** The issuer DN at which the highest-ranked exploration dead-ends (used for
    error reporting when no complete path exists). *)
