open Chaoschain_x509

type duplicate_kind = Dup_leaf | Dup_intermediate | Dup_root

let duplicate_kind_to_string = function
  | Dup_leaf -> "duplicate leaf"
  | Dup_intermediate -> "duplicate intermediate"
  | Dup_root -> "duplicate root"

type irrelevant_kind = Irr_extra_leaf | Irr_self_signed | Irr_foreign_chain | Irr_lone

let irrelevant_kind_to_string = function
  | Irr_extra_leaf -> "extra leaf"
  | Irr_self_signed -> "unrelated self-signed"
  | Irr_foreign_chain -> "foreign chain"
  | Irr_lone -> "lone intermediate"

type report = {
  duplicates : (duplicate_kind * Topology.node) list;
  irrelevant : (irrelevant_kind * Topology.node) list;
  path_count : int;
  multiple_paths : bool;
  cross_sign_paths : bool;
  reversed_paths : int;
  all_paths_reversed : bool;
  ordered : bool;
}

let role_of_node topo (node : Topology.node) =
  if Cert.is_self_signed node.Topology.cert then Dup_root
  else if node.Topology.index = (Topology.leaf topo).Topology.index
          || not (Cert.is_ca node.Topology.cert)
  then Dup_leaf
  else Dup_intermediate

let leaf_like (node : Topology.node) =
  (not (Cert.is_ca node.Topology.cert)) && not (Cert.is_self_signed node.Topology.cert)

let classify_irrelevant irr =
  let issuance_among a b =
    Relation.issued ~issuer:a.Topology.cert ~child:b.Topology.cert
    || Relation.issued ~issuer:b.Topology.cert ~child:a.Topology.cert
  in
  List.map
    (fun node ->
      let kind =
        if leaf_like node then Irr_extra_leaf
        else if Cert.is_self_signed node.Topology.cert then
          (* Distinguish a root participating in a foreign chain from a lone
             unrelated root. *)
          if List.exists (fun other -> other.Topology.index <> node.Topology.index
                                       && issuance_among node other) irr
          then Irr_foreign_chain
          else Irr_self_signed
        else if List.exists (fun other -> other.Topology.index <> node.Topology.index
                                          && issuance_among node other) irr
        then Irr_foreign_chain
        else Irr_lone
      in
      (kind, node))
    irr

(* A path is reversed when some certificate's issuer occurs earlier in the
   server-provided list than the certificate itself. The leaf-first path
   [n0; n1; ...] is compliant when list positions strictly increase. *)
let path_reversed path =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if b.Topology.index < a.Topology.index then true else go rest
    | _ -> false
  in
  go path

(* Cross-sign detection: two distinct nodes sharing subject DN and SKID but
   with different issuers (Figure 2c's nodes 2 and 3). *)
let has_cross_signs nodes =
  let rec pairs = function
    | [] -> false
    | a :: rest ->
        List.exists
          (fun b ->
            Dn.equal (Cert.subject a.Topology.cert) (Cert.subject b.Topology.cert)
            && (not (Dn.equal (Cert.issuer a.Topology.cert) (Cert.issuer b.Topology.cert)))
            &&
            match (Cert.subject_key_id a.Topology.cert, Cert.subject_key_id b.Topology.cert) with
            | Some x, Some y -> String.equal x y
            | _ -> false)
          rest
        || pairs rest
  in
  pairs nodes

let analyze topo =
  let duplicates =
    List.map (fun n -> (role_of_node topo n, n)) (Topology.duplicates topo)
  in
  let irrelevant = classify_irrelevant (Topology.irrelevant topo) in
  let paths = Topology.paths topo in
  let path_count = List.length paths in
  let multiple_paths = path_count > 1 in
  let cross_sign_paths =
    multiple_paths && has_cross_signs (Topology.reachable_from_leaf topo)
  in
  let reversed = List.filter path_reversed paths in
  let reversed_paths = List.length reversed in
  let all_paths_reversed = path_count > 0 && reversed_paths = path_count in
  let ordered =
    duplicates = [] && irrelevant = [] && (not multiple_paths) && reversed_paths = 0
  in
  { duplicates; irrelevant; path_count; multiple_paths; cross_sign_paths;
    reversed_paths; all_paths_reversed; ordered }

let has_duplicates r = r.duplicates <> []
let has_irrelevant r = r.irrelevant <> []
let has_reversed r = r.reversed_paths > 0

let violations r =
  (if has_duplicates r then
     [ Printf.sprintf "duplicate certificates (%d)" (List.length r.duplicates) ]
   else [])
  @ (if has_irrelevant r then
       [ Printf.sprintf "irrelevant certificates (%d)" (List.length r.irrelevant) ]
     else [])
  @ (if r.multiple_paths then
       [ Printf.sprintf "multiple paths (%d)" r.path_count ]
     else [])
  @
  if has_reversed r then
    [ Printf.sprintf "reversed sequences (%d of %d paths)" r.reversed_paths r.path_count ]
  else []
