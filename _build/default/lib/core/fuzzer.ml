open Chaoschain_x509
module Prng = Chaoschain_crypto.Prng

type mutation =
  | Drop of int
  | Duplicate of int
  | Swap of int * int
  | Reverse_tail
  | Rotate_tail
  | Inject_unrelated of int
  | Truncate of int

let mutation_to_string = function
  | Drop i -> Printf.sprintf "drop@%d" i
  | Duplicate i -> Printf.sprintf "dup@%d" i
  | Swap (i, j) -> Printf.sprintf "swap@%d,%d" i j
  | Reverse_tail -> "reverse-tail"
  | Rotate_tail -> "rotate-tail"
  | Inject_unrelated i -> Printf.sprintf "inject@%d" i
  | Truncate n -> Printf.sprintf "truncate@%d" n

let apply ~pool chain mutation =
  let n = List.length chain in
  match mutation with
  | Drop i when i >= 0 && i < n && n > 1 -> List.filteri (fun j _ -> j <> i) chain
  | Duplicate i when i >= 0 && i < n ->
      List.concat_map
        (fun (j, c) -> if j = i then [ c; c ] else [ c ])
        (List.mapi (fun j c -> (j, c)) chain)
  | Swap (i, j) when i >= 0 && j >= 0 && i < n && j < n && i <> j ->
      let arr = Array.of_list chain in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp;
      Array.to_list arr
  | Reverse_tail when n > 2 -> List.hd chain :: List.rev (List.tl chain)
  | Rotate_tail when n > 2 -> (
      match List.tl chain with
      | first :: rest -> (List.hd chain :: rest) @ [ first ]
      | [] -> chain)
  | Inject_unrelated i when pool <> [] && i >= 0 && i <= n ->
      let foreign = List.hd pool in
      List.filteri (fun j _ -> j < i) chain
      @ [ foreign ]
      @ List.filteri (fun j _ -> j >= i) chain
  | Truncate k when k >= 1 && k < n -> List.filteri (fun j _ -> j < k) chain
  | _ -> chain

let random_mutation rng ~pool chain =
  let n = max 1 (List.length chain) in
  match Prng.int rng (if pool = [] then 6 else 7) with
  | 0 -> Drop (Prng.int rng n)
  | 1 -> Duplicate (Prng.int rng n)
  | 2 -> Swap (Prng.int rng n, Prng.int rng n)
  | 3 -> Reverse_tail
  | 4 -> Rotate_tail
  | 5 -> Truncate (1 + Prng.int rng n)
  | _ -> Inject_unrelated (Prng.int rng (n + 1))

type verdicts = (Clients.id * bool) list

type divergence = {
  domain : string;
  seed_chain : Cert.t list;
  mutations : mutation list;
  mutated_chain : Cert.t list;
  verdicts : verdicts;
}

type report = {
  iterations : int;
  divergences : divergence list;
  crashes : (mutation list * string) list;
}

let run ~env ~rng ?(clients = Clients.all) ?(max_mutations = 3) ~iterations seeds =
  if seeds = [] then invalid_arg "Fuzzer.run: no seeds";
  let seed_array = Array.of_list seeds in
  let divergences = ref [] and crashes = ref [] in
  for _ = 1 to iterations do
    let domain, seed_chain = Prng.pick rng seed_array in
    (* Foreign certificates come from a different seed. *)
    let pool =
      let _, other = Prng.pick rng seed_array in
      List.filter (fun c -> not (List.exists (Cert.equal c) seed_chain)) other
    in
    let k = 1 + Prng.int rng max_mutations in
    let mutations = ref [] in
    let chain = ref seed_chain in
    for _ = 1 to k do
      let m = random_mutation rng ~pool !chain in
      mutations := m :: !mutations;
      chain := apply ~pool !chain m
    done;
    let mutations = List.rev !mutations in
    if !chain <> [] then begin
      match
        List.map
          (fun client ->
            let case = Difftest.run_case_clients env [ client ] ~domain !chain in
            (client.Clients.id, Difftest.accepted_by case client.Clients.id))
          clients
      with
      | exception exn ->
          crashes := (mutations, Printexc.to_string exn) :: !crashes
      | verdicts ->
          let accepts = List.filter snd verdicts and rejects = List.filter (fun (_, v) -> not v) verdicts in
          if accepts <> [] && rejects <> [] then
            divergences :=
              { domain; seed_chain; mutations; mutated_chain = !chain; verdicts }
              :: !divergences
    end
  done;
  { iterations; divergences = List.rev !divergences; crashes = List.rev !crashes }

let pp_divergence ppf d =
  Format.fprintf ppf "@[<v 2>%s: %d certs -> %d certs via [%s]@,%s@]" d.domain
    (List.length d.seed_chain)
    (List.length d.mutated_chain)
    (String.concat "; " (List.map mutation_to_string d.mutations))
    (String.concat "  "
       (List.map
          (fun (id, ok) ->
            Printf.sprintf "%s:%s" (Clients.by_id id).Clients.name
              (if ok then "OK" else "FAIL"))
          d.verdicts))
