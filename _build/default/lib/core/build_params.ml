type validity_priority = VP_none | VP_first_valid | VP_recent_longest

let validity_priority_to_string = function
  | VP_none -> "-"
  | VP_first_valid -> "VP1"
  | VP_recent_longest -> "VP2"

type kid_priority = KP_none | KP1 | KP2

let kid_priority_to_string = function
  | KP_none -> "-"
  | KP1 -> "KP1"
  | KP2 -> "KP2"

type length_limit = Unlimited | Max_constructed of int | Max_input_list of int

let length_limit_to_string = function
  | Unlimited -> ">52"
  | Max_constructed n -> Printf.sprintf "=%d" n
  | Max_input_list n -> Printf.sprintf "=%d (input list)" n

type revocation_mode = No_revocation | During_construction | During_validation

let revocation_mode_to_string = function
  | No_revocation -> "none"
  | During_construction -> "during construction"
  | During_validation -> "during validation"

type t = {
  reorder : bool;
  aia_fetch : bool;
  intermediate_cache : bool;
  validity_priority : validity_priority;
  kid_priority : kid_priority;
  ku_priority : bool;
  bc_priority : bool;
  prefer_trusted_root : bool;
  prefer_self_signed : bool;
  check_sig_alg : bool;
  length_limit : length_limit;
  allow_self_signed_leaf : bool;
  backtracking : bool;
  partial_validation : bool;
  revocation : revocation_mode;
  max_attempts : int;
}

let default =
  {
    reorder = true;
    aia_fetch = true;
    intermediate_cache = false;
    validity_priority = VP_recent_longest;
    kid_priority = KP2;
    ku_priority = true;
    bc_priority = true;
    prefer_trusted_root = true;
    prefer_self_signed = true;
    check_sig_alg = true;
    length_limit = Unlimited;
    allow_self_signed_leaf = false;
    backtracking = true;
    partial_validation = false;
    revocation = During_validation;
    max_attempts = 64;
  }

let rfc4158 = default
