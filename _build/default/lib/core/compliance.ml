
type report = {
  domain : string;
  leaf : Leaf_check.verdict;
  order : Order_check.report;
  completeness : Completeness.report;
  topology : Topology.t;
}

let analyze ?(aia_enabled = true) ~store ~aia ~domain certs =
  let topology = Topology.build certs in
  { domain;
    leaf = Leaf_check.classify ~domain certs;
    order = Order_check.analyze topology;
    completeness = Completeness.analyze ~aia_enabled ~store ~aia topology;
    topology }

let compliant r =
  Leaf_check.compliant r.leaf && r.order.Order_check.ordered
  && Completeness.compliant r.completeness

let non_compliance_reasons r =
  (if Leaf_check.compliant r.leaf then []
   else [ "leaf placement: " ^ Leaf_check.verdict_to_string r.leaf ])
  @ Order_check.violations r.order
  @
  if Completeness.compliant r.completeness then []
  else
    [ Printf.sprintf "incomplete chain%s"
        (match r.completeness.Completeness.cause with
        | Some c -> " (" ^ Completeness.incomplete_cause_to_string c ^ ")"
        | None -> "") ]

let pp_report ppf r =
  Format.fprintf ppf "@[<v>domain: %s@,certificates: %d (%d unique)@,"
    r.domain
    (Topology.list_length r.topology)
    (Topology.node_count r.topology);
  Format.fprintf ppf "leaf placement: %s@," (Leaf_check.verdict_to_string r.leaf);
  Format.fprintf ppf "issuance order: %s@,"
    (if r.order.Order_check.ordered then "compliant"
     else String.concat "; " (Order_check.violations r.order));
  Format.fprintf ppf "completeness: %s%s@,"
    (Completeness.verdict_to_string r.completeness.Completeness.verdict)
    (match r.completeness.Completeness.cause with
    | Some c -> " — " ^ Completeness.incomplete_cause_to_string c
    | None -> "");
  Format.fprintf ppf "verdict: %s@,@,%s@]"
    (if compliant r then "COMPLIANT" else "NON-COMPLIANT")
    (Topology.render r.topology)
